/** @file Gradient-checked tests of the tiny MLP and the Adam optimizer. */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nerf/adam.h"
#include "nerf/mlp.h"
#include "nerf/sh_encoding.h"

namespace fusion3d::nerf
{
namespace
{

TEST(Mlp, ShapesAndParamCount)
{
    Mlp mlp({4, 8, 3});
    EXPECT_EQ(mlp.inputDim(), 4);
    EXPECT_EQ(mlp.outputDim(), 3);
    EXPECT_EQ(mlp.layerCount(), 2);
    EXPECT_EQ(mlp.paramCount(), 4u * 8 + 8 + 8 * 3 + 3);
    EXPECT_EQ(mlp.forwardMacs(), 4u * 8 + 8 * 3);
}

TEST(Mlp, ForwardDeterministic)
{
    Mlp mlp({3, 5, 2}, 42);
    MlpWorkspace ws = mlp.makeWorkspace();
    const std::vector<float> in{0.1f, -0.2f, 0.3f};
    const auto out1 = mlp.forward(in, ws);
    const float a = out1[0], b = out1[1];
    const auto out2 = mlp.forward(in, ws);
    EXPECT_FLOAT_EQ(out2[0], a);
    EXPECT_FLOAT_EQ(out2[1], b);
}

TEST(Mlp, LinearNetworkComputesAffine)
{
    // Single layer = affine map; plant known weights.
    Mlp mlp({2, 2});
    auto p = mlp.params();
    // Weights row-major [out][in]: y0 = 1*x0 + 2*x1 + b0.
    p[0] = 1.0f;
    p[1] = 2.0f;
    p[2] = 3.0f;
    p[3] = 4.0f;
    p[4] = 0.5f;  // b0
    p[5] = -0.5f; // b1
    MlpWorkspace ws = mlp.makeWorkspace();
    const std::vector<float> in{1.0f, 1.0f};
    const auto out = mlp.forward(in, ws);
    EXPECT_FLOAT_EQ(out[0], 3.5f);
    EXPECT_FLOAT_EQ(out[1], 6.5f);
}

TEST(Mlp, ReluClampsHidden)
{
    Mlp mlp({1, 1, 1});
    auto p = mlp.params();
    p[0] = -1.0f; // hidden weight
    p[1] = 0.0f;  // hidden bias
    p[2] = 1.0f;  // output weight
    p[3] = 0.0f;  // output bias
    MlpWorkspace ws = mlp.makeWorkspace();
    const std::vector<float> pos{1.0f};
    EXPECT_FLOAT_EQ(mlp.forward(pos, ws)[0], 0.0f); // relu(-1) = 0
    const std::vector<float> neg{-1.0f};
    EXPECT_FLOAT_EQ(mlp.forward(neg, ws)[0], 1.0f); // relu(1) = 1
}

/** Property: backward() gradients match central finite differences. */
TEST(Mlp, GradientCheckWeights)
{
    Mlp mlp({5, 7, 4, 3}, 17);
    MlpWorkspace ws = mlp.makeWorkspace();
    Pcg32 rng(18);

    std::vector<float> input(5);
    for (float &v : input)
        v = rng.nextRange(-1.0f, 1.0f);
    std::vector<float> dout(3);
    for (float &v : dout)
        v = rng.nextRange(-1.0f, 1.0f);

    const auto loss = [&]() {
        const auto out = mlp.forward(input, ws);
        float acc = 0.0f;
        for (int i = 0; i < 3; ++i)
            acc += out[static_cast<std::size_t>(i)] * dout[static_cast<std::size_t>(i)];
        return acc;
    };

    mlp.zeroGrads();
    mlp.forward(input, ws);
    mlp.backward(dout, ws);

    int checked = 0;
    for (std::size_t i = 0; i < mlp.paramCount(); i += 7) {
        const float g = mlp.grads()[i];
        const float eps = 1e-3f;
        const float orig = mlp.params()[i];
        mlp.params()[i] = orig + eps;
        const float lp = loss();
        mlp.params()[i] = orig - eps;
        const float lm = loss();
        mlp.params()[i] = orig;
        EXPECT_NEAR(g, (lp - lm) / (2.0f * eps), 2e-2f) << "param " << i;
        ++checked;
    }
    EXPECT_GT(checked, 10);
}

/** Property: input gradients match finite differences. */
TEST(Mlp, GradientCheckInput)
{
    Mlp mlp({4, 6, 2}, 23);
    MlpWorkspace ws = mlp.makeWorkspace();
    Pcg32 rng(24);
    std::vector<float> input(4);
    for (float &v : input)
        v = rng.nextRange(-1.0f, 1.0f);
    const std::vector<float> dout{0.7f, -0.3f};

    mlp.zeroGrads();
    mlp.forward(input, ws);
    mlp.backward(dout, ws);
    const std::vector<float> dinput = ws.dinput;

    for (int i = 0; i < 4; ++i) {
        const float eps = 1e-3f;
        std::vector<float> in_p = input;
        in_p[static_cast<std::size_t>(i)] += eps;
        std::vector<float> in_m = input;
        in_m[static_cast<std::size_t>(i)] -= eps;
        const auto lp = [&](const std::vector<float> &in) {
            const auto out = mlp.forward(in, ws);
            return out[0] * dout[0] + out[1] * dout[1];
        };
        const float fd = (lp(in_p) - lp(in_m)) / (2.0f * eps);
        EXPECT_NEAR(dinput[static_cast<std::size_t>(i)], fd, 2e-2f);
    }
}

TEST(Mlp, GradsAccumulateAcrossSamples)
{
    Mlp mlp({2, 3, 1}, 31);
    MlpWorkspace ws = mlp.makeWorkspace();
    const std::vector<float> in{0.5f, -0.5f};
    const std::vector<float> dout{1.0f};

    mlp.zeroGrads();
    mlp.forward(in, ws);
    mlp.backward(dout, ws);
    const float g1 = mlp.grads()[0];

    mlp.forward(in, ws);
    mlp.backward(dout, ws);
    EXPECT_NEAR(mlp.grads()[0], 2.0f * g1, 1e-5f);
}

/**
 * Batched forward is bit-exact with the scalar path: per sample the
 * accumulation order (bias first, fan-in ascending) is identical, so
 * every column of the batch output equals the scalar result exactly.
 * n = 70 crosses the internal 64-sample blocking boundary.
 */
TEST(Mlp, ForwardBatchMatchesScalarBitExact)
{
    Mlp mlp({5, 9, 4}, 51);
    MlpWorkspace sws = mlp.makeWorkspace();
    MlpBatchWorkspace bws = mlp.makeBatchWorkspace();
    Pcg32 rng(52);

    const std::size_t n = 70;
    std::vector<float> input(5 * n);
    for (float &v : input)
        v = rng.nextRange(-1.0f, 1.0f);

    const auto out = mlp.forwardBatch(input, n, bws);
    ASSERT_EQ(out.size(), 4 * n);

    std::vector<float> col(5);
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < 5; ++i)
            col[i] = input[i * n + j];
        const auto ref = mlp.forward(col, sws);
        for (std::size_t o = 0; o < 4; ++o)
            EXPECT_EQ(out[o * n + j], ref[o]) << "sample " << j << " out " << o;
    }
}

/**
 * Batched backward: input gradients are bit-exact per column; weight
 * and bias gradients equal the scalar per-sample accumulation (same
 * pairwise additions, so in fact bit-exact here too — but tolerance
 * guards against future reassociation of the batch reduction).
 */
TEST(Mlp, BackwardBatchMatchesScalarAccumulation)
{
    Mlp batched({4, 6, 2}, 61);
    Mlp scalar({4, 6, 2}, 61); // identical weights (same seed)
    Pcg32 rng(62);

    const std::size_t n = 37;
    std::vector<float> input(4 * n), dout(2 * n);
    for (float &v : input)
        v = rng.nextRange(-1.0f, 1.0f);
    for (float &v : dout)
        v = rng.nextRange(-1.0f, 1.0f);

    // Scalar reference: per-sample forward/backward, grads accumulate.
    MlpWorkspace sws = scalar.makeWorkspace();
    scalar.zeroGrads();
    std::vector<float> ref_dinput(4 * n);
    std::vector<float> col(4), dcol(2);
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < 4; ++i)
            col[i] = input[i * n + j];
        for (std::size_t o = 0; o < 2; ++o)
            dcol[o] = dout[o * n + j];
        scalar.forward(col, sws);
        scalar.backward(dcol, sws);
        for (std::size_t i = 0; i < 4; ++i)
            ref_dinput[i * n + j] = sws.dinput[i];
    }

    MlpBatchWorkspace bws = batched.makeBatchWorkspace();
    batched.zeroGrads();
    batched.forwardBatch(input, n, bws);
    batched.backwardBatch(dout, n, bws);

    for (std::size_t i = 0; i < batched.paramCount(); ++i) {
        const float ref = scalar.grads()[i];
        EXPECT_NEAR(batched.grads()[i], ref, 1e-5f + 1e-4f * std::fabs(ref))
            << "param " << i;
    }
    for (std::size_t i = 0; i < 4 * n; ++i)
        EXPECT_FLOAT_EQ(bws.dinput[i], ref_dinput[i]) << "dinput " << i;
}

/** A reused batch workspace gives the same answers after growing. */
TEST(Mlp, BatchWorkspaceReuseAcrossSizes)
{
    Mlp mlp({3, 5, 2}, 71);
    MlpWorkspace sws = mlp.makeWorkspace();
    MlpBatchWorkspace bws = mlp.makeBatchWorkspace();
    Pcg32 rng(72);

    for (const std::size_t n : {std::size_t{4}, std::size_t{129}, std::size_t{1}}) {
        std::vector<float> input(3 * n);
        for (float &v : input)
            v = rng.nextRange(-1.0f, 1.0f);
        const auto out = mlp.forwardBatch(input, n, bws);
        std::vector<float> col(3);
        for (std::size_t j = 0; j < n; ++j) {
            for (std::size_t i = 0; i < 3; ++i)
                col[i] = input[i * n + j];
            const auto ref = mlp.forward(col, sws);
            for (std::size_t o = 0; o < 2; ++o)
                EXPECT_EQ(out[o * n + j], ref[o]);
        }
    }
}

TEST(Adam, ConvergesOnQuadratic)
{
    // Minimize (x-3)^2 + (y+1)^2.
    std::vector<float> params{0.0f, 0.0f};
    AdamConfig cfg;
    cfg.lr = 0.1f;
    Adam adam(2, cfg);
    for (int i = 0; i < 500; ++i) {
        const std::vector<float> grads{2.0f * (params[0] - 3.0f),
                                       2.0f * (params[1] + 1.0f)};
        adam.step(params, grads);
    }
    EXPECT_NEAR(params[0], 3.0f, 1e-2f);
    EXPECT_NEAR(params[1], -1.0f, 1e-2f);
}

TEST(Adam, SkipZeroGradLeavesParamUntouched)
{
    AdamConfig cfg;
    cfg.lr = 0.1f;
    cfg.skipZeroGrad = true;
    Adam adam(2, cfg);
    std::vector<float> params{1.0f, 1.0f};
    // First step gives param 0 momentum.
    adam.step(params, std::vector<float>{1.0f, 0.0f});
    EXPECT_NE(params[0], 1.0f);
    EXPECT_FLOAT_EQ(params[1], 1.0f);
    // With skipZeroGrad the momentum does not keep dragging param 0.
    const float after_one = params[0];
    adam.step(params, std::vector<float>{0.0f, 0.0f});
    EXPECT_FLOAT_EQ(params[0], after_one);
}

TEST(ShEncoding, Degree1IsConstant)
{
    float out[1];
    shEncode({0.0f, 0.0f, 1.0f}, 1, out);
    EXPECT_NEAR(out[0], 0.2820948f, 1e-6f);
}

TEST(ShEncoding, KnownBand1Values)
{
    float out[4];
    shEncode({0.0f, 0.0f, 1.0f}, 2, out);
    EXPECT_NEAR(out[1], 0.0f, 1e-6f);
    EXPECT_NEAR(out[2], 0.4886025f, 1e-6f);
    EXPECT_NEAR(out[3], 0.0f, 1e-6f);
}

/** Band-energy rotation invariance: sum of squares per band is
 *  direction-independent for real spherical harmonics. */
TEST(ShEncoding, BandEnergyRotationInvariant)
{
    Pcg32 rng(91);
    float ref[16];
    shEncode(rng.nextUnitVector(), 4, ref);
    const auto band_energy = [](const float *v, int band) {
        float acc = 0.0f;
        for (int m = band * band; m < (band + 1) * (band + 1); ++m)
            acc += v[m] * v[m];
        return acc;
    };
    const float e0 = band_energy(ref, 0);
    const float e1 = band_energy(ref, 1);
    const float e2 = band_energy(ref, 2);
    const float e3 = band_energy(ref, 3);
    for (int i = 0; i < 50; ++i) {
        float out[16];
        shEncode(rng.nextUnitVector(), 4, out);
        EXPECT_NEAR(band_energy(out, 0), e0, 1e-4f);
        EXPECT_NEAR(band_energy(out, 1), e1, 1e-4f);
        EXPECT_NEAR(band_energy(out, 2), e2, 1e-4f);
        EXPECT_NEAR(band_energy(out, 3), e3, 1e-4f);
    }
}

} // namespace
} // namespace fusion3d::nerf
