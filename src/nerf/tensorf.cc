#include "nerf/tensorf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/quant.h"
#include "common/rng.h"
#include "nerf/sh_encoding.h"

namespace fusion3d::nerf
{

namespace
{

/** Samples per cache block of the batched factor gathers/reductions:
 *  bounds one block's gathered-row working set to a few KB so the
 *  rank reduction re-reads hot lines. Fixed, so results are identical
 *  at every batch size. */
constexpr std::size_t kFactorBlock = 64;

/** Numerically safe softplus and its derivative. */
float
softplus(float x)
{
    if (x > 15.0f)
        return x;
    if (x < -15.0f)
        return 0.0f;
    return std::log1p(std::exp(x));
}

float
softplusGrad(float x)
{
    if (x > 15.0f)
        return 1.0f;
    if (x < -15.0f)
        return 0.0f;
    const float e = std::exp(x);
    return e / (1.0f + e);
}

AdamConfig
adamFor(float lr)
{
    AdamConfig cfg;
    cfg.lr = lr;
    cfg.beta1 = 0.9f;
    cfg.beta2 = 0.99f;
    cfg.epsilon = 1e-15f;
    return cfg;
}

} // namespace

TensorfModel::TensorfModel(const TensorfModelConfig &cfg, std::uint64_t seed)
    : cfg_(cfg)
{
    if (cfg.densityRank < 1 || cfg.appearanceRank < 1 || cfg.lineResolution < 2)
        fatal("TensorfModel: invalid rank/resolution configuration");

    const std::size_t density_floats =
        3ull * cfg.densityRank * cfg.lineResolution;
    const std::size_t app_floats = 3ull * cfg.appearanceRank * cfg.lineResolution;
    const std::size_t basis_floats =
        static_cast<std::size_t>(cfg.appearanceDim) * cfg.appearanceRank;
    params_.resize(density_floats + app_floats + basis_floats);
    grads_.assign(params_.size(), 0.0f);

    Pcg32 rng(seed, 0x7f4a7c159e3779b9ULL);
    // Line factors start near a small positive constant so rank
    // products are non-degenerate; the basis starts small-random.
    for (std::size_t i = 0; i < density_floats + app_floats; ++i)
        params_[i] = 0.2f + 0.05f * rng.nextGaussian();
    for (std::size_t i = density_floats + app_floats; i < params_.size(); ++i)
        params_[i] = 0.1f * rng.nextGaussian();

    color_net_ = std::make_unique<Mlp>(
        std::vector<int>{cfg.appearanceDim + cfg.shDims(), cfg.colorHidden, 3},
        seed + 5);

    adam_factors_ = Adam(params_.size(), adamFor(2e-2f));
    adam_net_ = Adam(color_net_->paramCount(), adamFor(2e-3f));

    sh_.resize(static_cast<std::size_t>(cfg.shDims()));
    color_in_.resize(static_cast<std::size_t>(cfg.appearanceDim + cfg.shDims()));
    dcolor_out_.resize(3);
    app_prod_.resize(static_cast<std::size_t>(cfg.appearanceRank) * 3);
    color_ws_ = color_net_->makeWorkspace();
}

std::size_t
TensorfModel::densityOffset(int axis) const
{
    return static_cast<std::size_t>(axis) * cfg_.densityRank * cfg_.lineResolution;
}

std::size_t
TensorfModel::appearanceOffset(int axis) const
{
    return 3ull * cfg_.densityRank * cfg_.lineResolution +
           static_cast<std::size_t>(axis) * cfg_.appearanceRank * cfg_.lineResolution;
}

std::size_t
TensorfModel::basisOffset() const
{
    return 3ull * cfg_.densityRank * cfg_.lineResolution +
           3ull * cfg_.appearanceRank * cfg_.lineResolution;
}

namespace
{

/** Sample a line factor with linear interpolation. */
inline float
sampleLine(const float *line, int res, float u)
{
    const float x = std::clamp(u, 0.0f, 1.0f) * static_cast<float>(res - 1);
    const int i0 = std::min(static_cast<int>(x), res - 2);
    const float f = x - static_cast<float>(i0);
    return line[i0] * (1.0f - f) + line[i0 + 1] * f;
}

/** Scatter a gradient into the two supports of a line factor. */
inline void
scatterLine(float *gline, int res, float u, float g)
{
    const float x = std::clamp(u, 0.0f, 1.0f) * static_cast<float>(res - 1);
    const int i0 = std::min(static_cast<int>(x), res - 2);
    const float f = x - static_cast<float>(i0);
    gline[i0] += g * (1.0f - f);
    gline[i0 + 1] += g * f;
}

} // namespace

void
TensorfModel::lineBackward(std::size_t block_offset, int r, float u, float g)
{
    const int res = cfg_.lineResolution;
    scatterLine(grads_.data() + block_offset + static_cast<std::size_t>(r) * res, res,
                u, g);
}

float
TensorfModel::queryDensity(const Vec3f &pos)
{
    const int res = cfg_.lineResolution;
    float raw = 0.0f;
    for (int r = 0; r < cfg_.densityRank; ++r) {
        float prod = 1.0f;
        for (int axis = 0; axis < 3; ++axis) {
            const float *line = params_.data() + densityOffset(axis) +
                                static_cast<std::size_t>(r) * res;
            prod *= sampleLine(line, res, pos[axis]);
        }
        raw += prod;
    }
    raw_sigma_ = raw - cfg_.densityShift;
    return softplus(raw_sigma_) * cfg_.densityScale;
}

PointEval
TensorfModel::forwardPoint(const Vec3f &pos, const Vec3f &dir)
{
    PointEval pe;
    pe.sigma = queryDensity(pos);

    const int res = cfg_.lineResolution;
    // Appearance rank products, cached per axis for backward reuse.
    for (int r = 0; r < cfg_.appearanceRank; ++r) {
        for (int axis = 0; axis < 3; ++axis) {
            const float *line = params_.data() + appearanceOffset(axis) +
                                static_cast<std::size_t>(r) * res;
            app_prod_[static_cast<std::size_t>(r) * 3 + axis] =
                sampleLine(line, res, pos[axis]);
        }
    }

    const float *basis = params_.data() + basisOffset();
    for (int c = 0; c < cfg_.appearanceDim; ++c) {
        float acc = 0.0f;
        for (int r = 0; r < cfg_.appearanceRank; ++r) {
            const float prod = app_prod_[static_cast<std::size_t>(r) * 3] *
                               app_prod_[static_cast<std::size_t>(r) * 3 + 1] *
                               app_prod_[static_cast<std::size_t>(r) * 3 + 2];
            acc += basis[static_cast<std::size_t>(c) * cfg_.appearanceRank + r] * prod;
        }
        color_in_[static_cast<std::size_t>(c)] = acc;
    }
    shEncode(dir, cfg_.shDegree, sh_);
    for (int i = 0; i < cfg_.shDims(); ++i)
        color_in_[static_cast<std::size_t>(cfg_.appearanceDim + i)] =
            sh_[static_cast<std::size_t>(i)];

    const std::span<const float> out = color_net_->forward(color_in_, color_ws_);
    for (int i = 0; i < 3; ++i) {
        const float r = out[static_cast<std::size_t>(i)];
        pe.rgb.at(i) = r >= 0.0f ? 1.0f / (1.0f + std::exp(-r))
                                 : std::exp(r) / (1.0f + std::exp(r));
    }
    return pe;
}

void
TensorfModel::backwardPoint(const Vec3f &pos, const Vec3f &dir, float dsigma,
                            const Vec3f &drgb)
{
    const PointEval pe = forwardPoint(pos, dir); // recompute caches
    const int res = cfg_.lineResolution;

    // --- Color path ---
    for (int i = 0; i < 3; ++i) {
        const float s = pe.rgb[i];
        dcolor_out_[static_cast<std::size_t>(i)] = drgb[i] * s * (1.0f - s);
    }
    color_net_->backward(dcolor_out_, color_ws_);

    // d(features): the color net's input gradient feeds basis + lines.
    const float *basis = params_.data() + basisOffset();
    float *gbasis = grads_.data() + basisOffset();
    for (int r = 0; r < cfg_.appearanceRank; ++r) {
        const float px = app_prod_[static_cast<std::size_t>(r) * 3];
        const float py = app_prod_[static_cast<std::size_t>(r) * 3 + 1];
        const float pz = app_prod_[static_cast<std::size_t>(r) * 3 + 2];
        const float prod = px * py * pz;
        float dprod = 0.0f;
        for (int c = 0; c < cfg_.appearanceDim; ++c) {
            const float dfeat = color_ws_.dinput[static_cast<std::size_t>(c)];
            gbasis[static_cast<std::size_t>(c) * cfg_.appearanceRank + r] +=
                dfeat * prod;
            dprod += dfeat * basis[static_cast<std::size_t>(c) * cfg_.appearanceRank + r];
        }
        // Product rule into each axis line.
        lineBackward(appearanceOffset(0), r, pos.x, dprod * py * pz);
        lineBackward(appearanceOffset(1), r, pos.y, dprod * px * pz);
        lineBackward(appearanceOffset(2), r, pos.z, dprod * px * py);
    }

    // --- Density path ---
    const float draw = dsigma * cfg_.densityScale * softplusGrad(raw_sigma_);
    for (int r = 0; r < cfg_.densityRank; ++r) {
        float axis_val[3];
        for (int axis = 0; axis < 3; ++axis) {
            const float *line = params_.data() + densityOffset(axis) +
                                static_cast<std::size_t>(r) * res;
            axis_val[axis] = sampleLine(line, res, pos[axis]);
        }
        lineBackward(densityOffset(0), r, pos.x, draw * axis_val[1] * axis_val[2]);
        lineBackward(densityOffset(1), r, pos.y, draw * axis_val[0] * axis_val[2]);
        lineBackward(densityOffset(2), r, pos.z, draw * axis_val[0] * axis_val[1]);
    }
}

void
TensorfModel::queryDensityBatch(std::span<const Vec3f> pos, BatchWorkspace &ws,
                                std::span<float> sigmas) const
{
    const std::size_t n = pos.size();
    if (sigmas.size() < n)
        panic("TensorfModel::queryDensityBatch: output span too small");
    const int res = cfg_.lineResolution;
    const std::size_t dr = static_cast<std::size_t>(cfg_.densityRank);

    // Level-major gathers, blocked over samples so the gathered rows of
    // one block stay cache-resident through the rank reduction (the
    // rows live dr*3 cache-line strides apart at full batch width; a
    // 64-sample block's working set is a few KB). Each sample's
    // arithmetic is unchanged, so the blocking affects neither
    // bit-exactness nor batch-size invariance.
    if (ws.denLines.size() < dr * 3 * n)
        ws.denLines.resize(dr * 3 * n);
    if (ws.rawSigma.size() < n)
        ws.rawSigma.resize(n);
    for (std::size_t b0 = 0; b0 < n; b0 += kFactorBlock) {
        const std::size_t b1 = std::min(n, b0 + kFactorBlock);
        for (std::size_t r = 0; r < dr; ++r) {
            for (int axis = 0; axis < 3; ++axis) {
                const float *line = params_.data() + densityOffset(axis) +
                                    r * static_cast<std::size_t>(res);
                float *out = ws.denLines.data() +
                             (r * 3 + static_cast<std::size_t>(axis)) * n;
                for (std::size_t s = b0; s < b1; ++s)
                    out[s] = sampleLine(line, res, pos[s][axis]);
            }
        }

        // Per-sample reduction in the scalar accumulation order (rank
        // ascending, axes multiplied x*y*z), so each sigma is bit-exact
        // with queryDensity().
        for (std::size_t s = b0; s < b1; ++s) {
            float raw = 0.0f;
            for (std::size_t r = 0; r < dr; ++r) {
                float prod = 1.0f;
                for (int axis = 0; axis < 3; ++axis)
                    prod *=
                        ws.denLines[(r * 3 + static_cast<std::size_t>(axis)) * n + s];
                raw += prod;
            }
            ws.rawSigma[s] = raw - cfg_.densityShift;
            sigmas[s] = softplus(ws.rawSigma[s]) * cfg_.densityScale;
        }
    }
}

void
TensorfModel::forwardPointBatch(std::span<const Vec3f> pos,
                                std::span<const Vec3f> dirs, BatchWorkspace &ws,
                                std::span<float> sigmas, std::span<Vec3f> rgbs) const
{
    const std::size_t n = pos.size();
    if (dirs.size() < n || sigmas.size() < n || rgbs.size() < n)
        panic("TensorfModel::forwardPointBatch: span size mismatch");

    queryDensityBatch(pos, ws, sigmas);

    const int res = cfg_.lineResolution;
    const std::size_t ar = static_cast<std::size_t>(cfg_.appearanceRank);
    const std::size_t ad = static_cast<std::size_t>(cfg_.appearanceDim);
    const std::size_t shd = static_cast<std::size_t>(cfg_.shDims());
    if (ws.appLines.size() < ar * 3 * n)
        ws.appLines.resize(ar * 3 * n);
    if (ws.colorIn.size() < (ad + shd) * n)
        ws.colorIn.resize((ad + shd) * n);
    if (ws.sh.size() < shd)
        ws.sh.resize(shd);
    if (ws.appProd.size() < ar)
        ws.appProd.resize(ar);
    const float *basis = params_.data() + basisOffset();

    // Appearance gathers + basis reduction, blocked like the density
    // path so each block's gathered rows stay cache-resident.
    for (std::size_t b0 = 0; b0 < n; b0 += kFactorBlock) {
        const std::size_t b1 = std::min(n, b0 + kFactorBlock);
        for (std::size_t r = 0; r < ar; ++r) {
            for (int axis = 0; axis < 3; ++axis) {
                const float *line = params_.data() + appearanceOffset(axis) +
                                    r * static_cast<std::size_t>(res);
                float *out = ws.appLines.data() +
                             (r * 3 + static_cast<std::size_t>(axis)) * n;
                for (std::size_t s = b0; s < b1; ++s)
                    out[s] = sampleLine(line, res, pos[s][axis]);
            }
        }

        for (std::size_t s = b0; s < b1; ++s) {
            // The rank products are the same multiply chain at every
            // feature; hoisting them out of the c-loop keeps the
            // reduction reading a hot appearanceRank-float cache (as
            // the scalar path does) without changing any value.
            for (std::size_t r = 0; r < ar; ++r)
                ws.appProd[r] = ws.appLines[(r * 3) * n + s] *
                                ws.appLines[(r * 3 + 1) * n + s] *
                                ws.appLines[(r * 3 + 2) * n + s];
            for (std::size_t c = 0; c < ad; ++c) {
                float acc = 0.0f;
                for (std::size_t r = 0; r < ar; ++r)
                    acc += basis[c * ar + r] * ws.appProd[r];
                ws.colorIn[c * n + s] = acc;
            }
            shEncode(dirs[s], cfg_.shDegree, ws.sh);
            for (std::size_t i = 0; i < shd; ++i)
                ws.colorIn[(ad + i) * n + s] = ws.sh[i];
        }
    }

    const std::span<const float> out =
        color_net_->forwardBatch({ws.colorIn.data(), (ad + shd) * n}, n, ws.colorWs);
    for (std::size_t s = 0; s < n; ++s) {
        for (int i = 0; i < 3; ++i) {
            const float r = out[static_cast<std::size_t>(i) * n + s];
            rgbs[s].at(i) = r >= 0.0f ? 1.0f / (1.0f + std::exp(-r))
                                      : std::exp(r) / (1.0f + std::exp(r));
        }
    }
}

void
TensorfModel::scatterFactorGradients(std::span<const Vec3f> pos,
                                     std::span<const float> dsigmas,
                                     const BatchWorkspace &ws,
                                     std::span<float> factor_grads) const
{
    const std::size_t n = pos.size();
    const int res = cfg_.lineResolution;
    const std::size_t ar = static_cast<std::size_t>(cfg_.appearanceRank);
    const std::size_t ad = static_cast<std::size_t>(cfg_.appearanceDim);
    const float *basis = params_.data() + basisOffset();
    float *gbasis = factor_grads.data() + basisOffset();

    for (std::size_t s = 0; s < n; ++s) {
        // --- Color path (scalar backwardPoint order) ---
        for (std::size_t r = 0; r < ar; ++r) {
            const float px = ws.appLines[(r * 3) * n + s];
            const float py = ws.appLines[(r * 3 + 1) * n + s];
            const float pz = ws.appLines[(r * 3 + 2) * n + s];
            const float prod = px * py * pz;
            float dprod = 0.0f;
            for (std::size_t c = 0; c < ad; ++c) {
                const float dfeat = ws.colorWs.dinput[c * n + s];
                gbasis[c * ar + r] += dfeat * prod;
                dprod += dfeat * basis[c * ar + r];
            }
            scatterLine(factor_grads.data() + appearanceOffset(0) +
                            r * static_cast<std::size_t>(res),
                        res, pos[s].x, dprod * py * pz);
            scatterLine(factor_grads.data() + appearanceOffset(1) +
                            r * static_cast<std::size_t>(res),
                        res, pos[s].y, dprod * px * pz);
            scatterLine(factor_grads.data() + appearanceOffset(2) +
                            r * static_cast<std::size_t>(res),
                        res, pos[s].z, dprod * px * py);
        }

        // --- Density path ---
        const float draw =
            dsigmas[s] * cfg_.densityScale * softplusGrad(ws.rawSigma[s]);
        const std::size_t dr = static_cast<std::size_t>(cfg_.densityRank);
        for (std::size_t r = 0; r < dr; ++r) {
            const float vx = ws.denLines[(r * 3) * n + s];
            const float vy = ws.denLines[(r * 3 + 1) * n + s];
            const float vz = ws.denLines[(r * 3 + 2) * n + s];
            scatterLine(factor_grads.data() + densityOffset(0) +
                            r * static_cast<std::size_t>(res),
                        res, pos[s].x, draw * vy * vz);
            scatterLine(factor_grads.data() + densityOffset(1) +
                            r * static_cast<std::size_t>(res),
                        res, pos[s].y, draw * vx * vz);
            scatterLine(factor_grads.data() + densityOffset(2) +
                            r * static_cast<std::size_t>(res),
                        res, pos[s].z, draw * vx * vy);
        }
    }
}

void
TensorfModel::backwardPointBatch(std::span<const Vec3f> pos,
                                 std::span<const Vec3f> dirs,
                                 std::span<const float> dsigmas,
                                 std::span<const Vec3f> drgbs, BatchWorkspace &ws)
{
    const std::size_t n = pos.size();
    if (ws.fwdSigmas.size() < n)
        ws.fwdSigmas.resize(n);
    if (ws.fwdRgbs.size() < n)
        ws.fwdRgbs.resize(n);
    forwardPointBatch(pos, dirs, ws, ws.fwdSigmas, ws.fwdRgbs);

    if (ws.dColorOut.size() < 3 * n)
        ws.dColorOut.resize(3 * n);
    for (std::size_t s = 0; s < n; ++s) {
        for (int i = 0; i < 3; ++i) {
            const float sv = ws.fwdRgbs[s][i];
            ws.dColorOut[static_cast<std::size_t>(i) * n + s] =
                drgbs[s][i] * sv * (1.0f - sv);
        }
    }
    color_net_->backwardBatch({ws.dColorOut.data(), 3 * n}, n, ws.colorWs);
    scatterFactorGradients(pos, dsigmas, ws, grads_);
}

void
TensorfModel::backwardPointBatchInto(std::span<const Vec3f> pos,
                                     std::span<const Vec3f> dirs,
                                     std::span<const float> dsigmas,
                                     std::span<const Vec3f> drgbs, BatchWorkspace &ws,
                                     std::span<float> grads) const
{
    const std::size_t n = pos.size();
    if (grads.size() < gradCount())
        panic("TensorfModel::backwardPointBatchInto: gradient span too small");
    if (ws.fwdSigmas.size() < n)
        ws.fwdSigmas.resize(n);
    if (ws.fwdRgbs.size() < n)
        ws.fwdRgbs.resize(n);
    forwardPointBatch(pos, dirs, ws, ws.fwdSigmas, ws.fwdRgbs);

    if (ws.dColorOut.size() < 3 * n)
        ws.dColorOut.resize(3 * n);
    for (std::size_t s = 0; s < n; ++s) {
        for (int i = 0; i < 3; ++i) {
            const float sv = ws.fwdRgbs[s][i];
            ws.dColorOut[static_cast<std::size_t>(i) * n + s] =
                drgbs[s][i] * sv * (1.0f - sv);
        }
    }
    color_net_->backwardBatchInto({ws.dColorOut.data(), 3 * n}, n, ws.colorWs,
                                  grads.subspan(params_.size()));
    scatterFactorGradients(pos, dsigmas, ws, grads.first(params_.size()));
}

void
TensorfModel::accumulateGradients(std::span<const float> grads)
{
    if (grads.size() < gradCount())
        panic("TensorfModel::accumulateGradients: gradient span too small");
    for (std::size_t i = 0; i < grads_.size(); ++i)
        grads_[i] += grads[i];
    const std::span<float> cg = color_net_->grads();
    const std::size_t off = grads_.size();
    for (std::size_t i = 0; i < cg.size(); ++i)
        cg[i] += grads[off + i];
}

void
TensorfModel::zeroGrads()
{
    std::fill(grads_.begin(), grads_.end(), 0.0f);
    color_net_->zeroGrads();
}

void
TensorfModel::optimizerStep(float lr_factors, float lr_net)
{
    adam_factors_.setLearningRate(lr_factors);
    adam_net_.setLearningRate(lr_net);
    adam_factors_.step(params_, grads_);
    adam_net_.step(color_net_->params(), color_net_->grads());
}

void
TensorfModel::quantizeWeights()
{
    fakeQuantizeInPlace(params_);
    fakeQuantizeInPlace(color_net_->params());
}

std::size_t
TensorfModel::paramCount() const
{
    return params_.size() + color_net_->paramCount();
}

} // namespace fusion3d::nerf
