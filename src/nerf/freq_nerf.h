/**
 * @file
 * Frequency-encoded (vanilla) NeRF: sinusoidal positional encoding into
 * a pure-MLP radiance field — the algorithm family MetaVRain [13]
 * accelerates ("NeRF Algorithm: MLP" in Table III). Included so the
 * algorithm-comparison bench can show *why* the hash-grid pipeline is
 * the right substrate for instant training: the MLP field needs far
 * more compute per point and converges far slower.
 */

#ifndef FUSION3D_NERF_FREQ_NERF_H_
#define FUSION3D_NERF_FREQ_NERF_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/vec.h"
#include "nerf/adam.h"
#include "nerf/field.h"
#include "nerf/mlp.h"
#include "nerf/nerf_model.h"
#include "nerf/point_pipeline.h"

namespace fusion3d::nerf
{

/** Architecture of the frequency-encoded model. */
struct FreqNerfConfig
{
    /** Positional-encoding octaves for positions (NeRF uses 10). */
    int posFrequencies = 6;
    /** Hidden width of the density trunk. */
    int hidden = 64;
    /** Hidden layers of the density trunk (vanilla NeRF uses 8). */
    int trunkLayers = 3;
    /** Geometry features handed to the color head. */
    int geoFeatures = 15;
    /** Hidden width of the color head. */
    int colorHidden = 32;
    /** Spherical-harmonics degree for view directions. */
    int shDegree = 2;

    int shDims() const { return shCoefficientCount(shDegree); }
    /** Encoded position dimensionality: identity + sin/cos pairs. */
    int posDims() const { return 3 + 3 * 2 * posFrequencies; }
};

/**
 * Sinusoidal positional encoding: gamma(p) = (p, sin(2^k pi p),
 * cos(2^k pi p)) for k in [0, frequencies).
 */
void freqEncode(const Vec3f &p, int frequencies, std::span<float> out);

/**
 * Batched-evaluation scratch of FreqNerfModel; reuse across calls. All
 * matrices are feature-major ([dim][N], sample index fastest) to match
 * MlpBatchWorkspace; buffers grow on demand and never shrink.
 */
struct FreqNerfBatchWorkspace
{
    /** Encoded positions, [posDims][N]. */
    std::vector<float> encoded;
    /** Per-point SH scratch (shDims values, reused point by point). */
    std::vector<float> sh;
    /** Color-net input, [geoFeatures + shDims][N]. */
    std::vector<float> colorIn;
    /** Raw (pre-activation) trunk density outputs, [N]. */
    std::vector<float> rawSigma;
    /** dL/d(trunk output), [1 + geoFeatures][N]. */
    std::vector<float> dTrunkOut;
    /** dL/d(color-net output), [3][N]. */
    std::vector<float> dColorOut;
    /** Recomputed activations used by the batched backward. */
    std::vector<float> fwdSigmas;
    std::vector<Vec3f> fwdRgbs;
    MlpBatchWorkspace trunkWs;
    MlpBatchWorkspace colorWs;
};

/** The pure-MLP radiance model (PointPipeline-compatible). */
class FreqNerfModel
{
  public:
    using Config = FreqNerfConfig;
    using BatchWorkspace = FreqNerfBatchWorkspace;
    static constexpr BackendKind kBackendKind = BackendKind::freqNerf;

    explicit FreqNerfModel(const FreqNerfConfig &cfg, std::uint64_t seed = 41);

    const FreqNerfConfig &config() const { return cfg_; }

    PointEval forwardPoint(const Vec3f &pos, const Vec3f &dir);
    float queryDensity(const Vec3f &pos);
    void backwardPoint(const Vec3f &pos, const Vec3f &dir, float dsigma,
                       const Vec3f &drgb);
    void zeroGrads();
    void optimizerStep(float lr_trunk, float lr_color);
    void quantizeWeights();
    std::size_t paramCount() const;

    /** Allocate a batch workspace for the batched entry points. */
    BatchWorkspace makeBatchWorkspace() const { return BatchWorkspace{}; }

    /**
     * Batched forward: vectorizable frequency encode into a
     * feature-major matrix, one trunk Mlp::forwardBatch, SH encode +
     * feature gather, one color-net forwardBatch. Per sample the
     * arithmetic matches forwardPoint() bit-exactly; const and
     * workspace-local, so shards may run concurrently.
     */
    void forwardPointBatch(std::span<const Vec3f> pos, std::span<const Vec3f> dirs,
                           BatchWorkspace &ws, std::span<float> sigmas,
                           std::span<Vec3f> rgbs) const;

    /** Batched density-only forward; bit-exact with queryDensity(). */
    void queryDensityBatch(std::span<const Vec3f> pos, BatchWorkspace &ws,
                           std::span<float> sigmas) const;

    /**
     * Batched backward into the internal gradient accumulators.
     * Recomputes the forward internally (recompute-in-backward); weight
     * gradients are summed sample-ascending.
     */
    void backwardPointBatch(std::span<const Vec3f> pos, std::span<const Vec3f> dirs,
                            std::span<const float> dsigmas,
                            std::span<const Vec3f> drgbs, BatchWorkspace &ws);

    /** Length of the flat gradient vector backwardPointBatchInto fills:
     *  trunk grads first, then color-net grads. */
    std::size_t gradCount() const { return paramCount(); }

    /**
     * Shard entry point of parallel training: like backwardPointBatch
     * but const, accumulating into a caller-provided flat buffer
     * (gradCount() floats, trunk block then color block) instead of the
     * model. Shards own private buffers; accumulateGradients() merges
     * them in fixed shard order.
     */
    void backwardPointBatchInto(std::span<const Vec3f> pos,
                                std::span<const Vec3f> dirs,
                                std::span<const float> dsigmas,
                                std::span<const Vec3f> drgbs, BatchWorkspace &ws,
                                std::span<float> grads) const;

    /** Add one shard's flat gradient buffer into the internal grads. */
    void accumulateGradients(std::span<const float> grads);

    /** MLP MACs per point — the compute-cost gap vs hash-grid NeRF. */
    std::uint64_t macsPerPoint() const;

    const Mlp &trunk() const { return *trunk_; }
    Mlp &trunk() { return *trunk_; }
    const Mlp &colorNet() const { return *color_net_; }
    Mlp &colorNet() { return *color_net_; }

  private:
    FreqNerfConfig cfg_;
    std::unique_ptr<Mlp> trunk_;
    std::unique_ptr<Mlp> color_net_;
    Adam adam_trunk_;
    Adam adam_color_;

    std::vector<float> encoded_;
    std::vector<float> sh_;
    std::vector<float> color_in_;
    std::vector<float> dtrunk_out_;
    std::vector<float> dcolor_out_;
    MlpWorkspace trunk_ws_;
    MlpWorkspace color_ws_;
    float raw_sigma_ = 0.0f;
};

/** Vanilla-NeRF pipeline: generic point pipeline over the MLP model. */
using FreqPipelineConfig = PointPipelineConfig<FreqNerfConfig>;
using FreqPipeline = PointPipeline<FreqNerfModel>;

/** Serveable-field wrapper over the MLP model. */
using FreqServeField = PointServeField<FreqNerfModel>;

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_FREQ_NERF_H_
