/**
 * @file
 * Serving metrics, built on the sim::Stats package the cycle-level
 * models already use: per-outcome counters, a submit-to-completion
 * latency distribution plus a log2-microsecond histogram, queue-depth
 * and batch-size distributions. All recording methods are thread-safe;
 * RenderServer::drain() leaves the block consistent for printing.
 */

#ifndef FUSION3D_SERVE_SERVER_STATS_H_
#define FUSION3D_SERVE_SERVER_STATS_H_

#include <cstdint>
#include <mutex>
#include <ostream>

#include "serve/serve.h"
#include "sim/stats.h"

namespace fusion3d::serve
{

/** Thread-safe statistics block of one RenderServer. */
class ServerStats
{
  public:
    ServerStats();

    /** Record a request entering submit(), and the queue depth it saw. */
    void recordSubmitted(std::size_t queue_depth);

    /** Record a request leaving the server. */
    void recordOutcome(Outcome outcome, double latency_ms);

    /** Record one dispatched batch of @p size same-model requests. */
    void recordBatch(int size);

    /** Requests that entered submit(). */
    std::uint64_t submitted() const;

    /** Requests that finished with @p outcome. */
    std::uint64_t count(Outcome outcome) const;

    /** Completed = all outcomes, rejected or rendered. */
    std::uint64_t completed() const;

    /** Requests served degraded (half resolution or warped). */
    std::uint64_t degraded() const;

    /** Requests shed (queue full, deadline, unknown model). */
    std::uint64_t shed() const;

    double meanLatencyMs() const;
    double maxLatencyMs() const;
    double meanBatchSize() const;

    /** Dump every stat in the StatGroup text format. */
    void dump(std::ostream &os) const;

  private:
    static constexpr int kOutcomes = 6;

    mutable std::mutex mutex_;
    sim::StatGroup group_;
    sim::Counter &submitted_;
    sim::Counter *outcomes_[kOutcomes];
    sim::Distribution &latency_ms_;
    sim::Distribution &queue_depth_;
    sim::Distribution &batch_size_;
    sim::Histogram &latency_log2us_;
};

} // namespace fusion3d::serve

#endif // FUSION3D_SERVE_SERVER_STATS_H_
