#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace fusion3d
{

namespace
{

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

} // namespace

std::string
strprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    std::fprintf(stdout, "info: %s\n", s.c_str());
}

} // namespace fusion3d
