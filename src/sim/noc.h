/**
 * @file
 * On-chip interconnect models for Stage-II feature routing:
 *
 *  - Crossbar: any of N requesters can reach any of B banks; correct for
 *    arbitrary (hash-random) bank mappings but expensive in wiring area
 *    and arbitration latency.
 *  - DirectConnect: a fixed one-to-one requester->bank wiring, valid only
 *    when the mapping guarantees bank-uniqueness per group — which the
 *    Level-2/3 hash tiling of Technique T4 provides. This is the
 *    crossbar-elimination saving of Fig. 12(b)/(c).
 */

#ifndef FUSION3D_SIM_NOC_H_
#define FUSION3D_SIM_NOC_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/types.h"
#include "sim/stats.h"

namespace fusion3d::sim
{

/** Cost/latency summary of an interconnect configuration. */
struct InterconnectProfile
{
    /** Extra pipeline latency (cycles) a request pays to traverse. */
    Cycles traversalLatency = 0;
    /** Relative wiring+arbiter area in unit-gate equivalents. */
    double areaUnits = 0.0;
};

/** Full N-to-B crossbar with per-cycle arbitration. */
class Crossbar
{
  public:
    Crossbar(std::uint32_t ports, std::uint32_t banks, const std::string &name = "xbar");

    /**
     * Route one group of requests (one per port, bank id each).
     * @return cycles consumed: arbitration serializes same-bank requests,
     * plus the traversal latency of the switch fabric.
     */
    Cycles routeGroup(std::span<const std::uint32_t> banks);

    /** Area/latency of this crossbar instance. */
    InterconnectProfile profile() const;

    std::uint32_t ports() const { return ports_; }
    std::uint32_t banks() const { return banks_; }
    std::uint64_t groupsRouted() const { return groups_.value(); }

  private:
    std::uint32_t ports_;
    std::uint32_t banks_;
    StatGroup stats_;
    Counter &groups_;
    std::vector<std::uint32_t> scratch_;
};

/** Fixed one-to-one wiring; requires bank-unique groups. */
class DirectConnect
{
  public:
    explicit DirectConnect(std::uint32_t ports, const std::string &name = "direct");

    /**
     * Route one group; port i must target bank i (the tiled mapping
     * guarantees this). A violating request panics: it would be a
     * functional bug in the tiler, not a performance event.
     */
    Cycles routeGroup(std::span<const std::uint32_t> banks);

    InterconnectProfile profile() const;

    std::uint32_t ports() const { return ports_; }
    std::uint64_t groupsRouted() const { return groups_.value(); }

  private:
    std::uint32_t ports_;
    StatGroup stats_;
    Counter &groups_;
};

} // namespace fusion3d::sim

#endif // FUSION3D_SIM_NOC_H_
