#include "nerf/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace fusion3d::nerf
{

namespace
{

constexpr char kMagic[4] = {'F', '3', 'D', 'M'};
constexpr std::uint32_t kVersion = 1;

struct Header
{
    char magic[4];
    std::uint32_t version;
    std::int32_t levels;
    std::int32_t featuresPerLevel;
    std::int32_t log2TableSize;
    std::int32_t baseResolution;
    std::int32_t maxResolution;
    std::int32_t geoFeatures;
    std::int32_t densityHidden;
    std::int32_t colorHidden;
    std::int32_t shDegree;
    std::uint64_t encodingParams;
    std::uint64_t densityParams;
    std::uint64_t colorParams;
};

bool
writeBlock(std::FILE *f, std::span<const float> data)
{
    return std::fwrite(data.data(), sizeof(float), data.size(), f) == data.size();
}

bool
readBlock(std::FILE *f, std::span<float> data)
{
    return std::fread(data.data(), sizeof(float), data.size(), f) == data.size();
}

} // namespace

bool
saveModel(const NerfModel &model, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;

    const NerfModelConfig &cfg = model.config();
    Header h{};
    std::memcpy(h.magic, kMagic, 4);
    h.version = kVersion;
    h.levels = cfg.grid.levels;
    h.featuresPerLevel = cfg.grid.featuresPerLevel;
    h.log2TableSize = cfg.grid.log2TableSize;
    h.baseResolution = cfg.grid.baseResolution;
    h.maxResolution = cfg.grid.maxResolution;
    h.geoFeatures = cfg.geoFeatures;
    h.densityHidden = cfg.densityHidden;
    h.colorHidden = cfg.colorHidden;
    h.shDegree = cfg.shDegree;
    h.encodingParams = model.encoding().paramCount();
    h.densityParams = model.densityNet().paramCount();
    h.colorParams = model.colorNet().paramCount();

    bool ok = std::fwrite(&h, sizeof(h), 1, f) == 1;
    ok = ok && writeBlock(f, model.encoding().params());
    ok = ok && writeBlock(f, model.densityNet().params());
    ok = ok && writeBlock(f, model.colorNet().params());
    std::fclose(f);
    return ok;
}

std::unique_ptr<NerfModel>
loadModel(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return nullptr;

    Header h{};
    if (std::fread(&h, sizeof(h), 1, f) != 1 || std::memcmp(h.magic, kMagic, 4) != 0 ||
        h.version != kVersion) {
        std::fclose(f);
        return nullptr;
    }

    NerfModelConfig cfg;
    cfg.grid.levels = h.levels;
    cfg.grid.featuresPerLevel = h.featuresPerLevel;
    cfg.grid.log2TableSize = h.log2TableSize;
    cfg.grid.baseResolution = h.baseResolution;
    cfg.grid.maxResolution = h.maxResolution;
    cfg.geoFeatures = h.geoFeatures;
    cfg.densityHidden = h.densityHidden;
    cfg.colorHidden = h.colorHidden;
    cfg.shDegree = h.shDegree;

    auto model = std::make_unique<NerfModel>(cfg);
    if (model->encoding().paramCount() != h.encodingParams ||
        model->densityNet().paramCount() != h.densityParams ||
        model->colorNet().paramCount() != h.colorParams) {
        warn("loadModel: parameter counts in '%s' do not match its header",
             path.c_str());
        std::fclose(f);
        return nullptr;
    }

    bool ok = readBlock(f, model->encoding().params());
    ok = ok && readBlock(f, model->densityNet().params());
    ok = ok && readBlock(f, model->colorNet().params());
    std::fclose(f);
    if (!ok)
        return nullptr;
    return model;
}

std::size_t
modelFootprintBytes(const NerfModel &model, int bytes_per_param)
{
    return sizeof(Header) +
           model.paramCount() * static_cast<std::size_t>(bytes_per_param);
}

} // namespace fusion3d::nerf
