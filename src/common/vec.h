/**
 * @file
 * Minimal fixed-size vector types used throughout the NeRF pipeline and the
 * hardware models. Header-only and constexpr-friendly; only what the
 * project needs, no general linear-algebra framework.
 */

#ifndef FUSION3D_COMMON_VEC_H_
#define FUSION3D_COMMON_VEC_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace fusion3d
{

/** A 3-component single-precision vector (points, directions, colors). */
struct Vec3f
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3f() = default;
    constexpr Vec3f(float xv, float yv, float zv) : x(xv), y(yv), z(zv) {}
    /** Broadcast constructor: all three components set to @p v. */
    constexpr explicit Vec3f(float v) : x(v), y(v), z(v) {}

    constexpr float operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }

    /** Mutable component access by axis index (0=x, 1=y, 2=z). */
    constexpr float &
    at(int i)
    {
        return i == 0 ? x : (i == 1 ? y : z);
    }

    constexpr Vec3f operator+(const Vec3f &o) const { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3f operator-(const Vec3f &o) const { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3f operator*(float s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3f operator/(float s) const { return {x / s, y / s, z / s}; }
    constexpr Vec3f operator-() const { return {-x, -y, -z}; }

    /** Component-wise (Hadamard) product. */
    constexpr Vec3f operator*(const Vec3f &o) const { return {x * o.x, y * o.y, z * o.z}; }
    /** Component-wise division. */
    constexpr Vec3f operator/(const Vec3f &o) const { return {x / o.x, y / o.y, z / o.z}; }

    constexpr Vec3f &
    operator+=(const Vec3f &o)
    {
        x += o.x; y += o.y; z += o.z;
        return *this;
    }

    constexpr Vec3f &
    operator-=(const Vec3f &o)
    {
        x -= o.x; y -= o.y; z -= o.z;
        return *this;
    }

    constexpr Vec3f &
    operator*=(float s)
    {
        x *= s; y *= s; z *= s;
        return *this;
    }

    constexpr bool operator==(const Vec3f &o) const = default;
};

constexpr Vec3f operator*(float s, const Vec3f &v) { return v * s; }

constexpr float dot(const Vec3f &a, const Vec3f &b) { return a.x * b.x + a.y * b.y + a.z * b.z; }

constexpr Vec3f
cross(const Vec3f &a, const Vec3f &b)
{
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

constexpr float lengthSquared(const Vec3f &v) { return dot(v, v); }

inline float length(const Vec3f &v) { return std::sqrt(lengthSquared(v)); }

/** Return @p v scaled to unit length; zero vectors are returned unchanged. */
inline Vec3f
normalize(const Vec3f &v)
{
    const float len = length(v);
    return len > 0.0f ? v / len : v;
}

constexpr Vec3f
compMin(const Vec3f &a, const Vec3f &b)
{
    return {std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)};
}

constexpr Vec3f
compMax(const Vec3f &a, const Vec3f &b)
{
    return {std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z)};
}

constexpr float minComp(const Vec3f &v) { return std::min(v.x, std::min(v.y, v.z)); }
constexpr float maxComp(const Vec3f &v) { return std::max(v.x, std::max(v.y, v.z)); }

/** Linear interpolation: (1-t)*a + t*b. */
constexpr Vec3f lerp(const Vec3f &a, const Vec3f &b, float t) { return a + (b - a) * t; }

/** Clamp every component of @p v into [lo, hi]. */
constexpr Vec3f
clamp(const Vec3f &v, float lo, float hi)
{
    return {std::clamp(v.x, lo, hi), std::clamp(v.y, lo, hi), std::clamp(v.z, lo, hi)};
}

/** A 3-component signed integer vector (grid coordinates). */
struct Vec3i
{
    std::int32_t x = 0;
    std::int32_t y = 0;
    std::int32_t z = 0;

    constexpr Vec3i() = default;
    constexpr Vec3i(std::int32_t xv, std::int32_t yv, std::int32_t zv) : x(xv), y(yv), z(zv) {}

    constexpr std::int32_t operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }

    constexpr Vec3i operator+(const Vec3i &o) const { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3i operator-(const Vec3i &o) const { return {x - o.x, y - o.y, z - o.z}; }
    constexpr bool operator==(const Vec3i &o) const = default;
};

/** Truncate each float component toward negative infinity onto the grid. */
inline Vec3i
floorToInt(const Vec3f &v)
{
    return {static_cast<std::int32_t>(std::floor(v.x)),
            static_cast<std::int32_t>(std::floor(v.y)),
            static_cast<std::int32_t>(std::floor(v.z))};
}

inline Vec3f
toFloat(const Vec3i &v)
{
    return {static_cast<float>(v.x), static_cast<float>(v.y), static_cast<float>(v.z)};
}

} // namespace fusion3d

#endif // FUSION3D_COMMON_VEC_H_
