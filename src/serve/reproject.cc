#include "serve/reproject.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace fusion3d::serve
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

double
secondsSince(SteadyClock::time_point t0)
{
    return std::chrono::duration<double>(SteadyClock::now() - t0).count();
}

/** Full-render fallback shared by every bail-out path. */
ReprojectOutput
fullRender(const nerf::ServeableField &model, const nerf::OccupancyGrid *grid,
           const nerf::Camera &camera, const nerf::TiledRenderConfig &render_cfg,
           const ReprojectConfig &cfg, ThreadPool *pool, const char *why,
           ReprojectStats partial)
{
    F3D_TRACE_SPAN("serve", "reproject_fallback");
    const auto t0 = SteadyClock::now();
    ReprojectOutput out;
    out.frame = nerf::renderDepthFrameTiled(model, grid, camera, render_cfg, pool);
    out.tileAge = freshTileAges(camera, cfg.tileSize, cfg.maxTileAge);
    out.stats = partial;
    out.stats.reprojected = false;
    out.stats.fallback = why;
    out.stats.raysRendered =
        static_cast<std::uint64_t>(camera.width()) * camera.height();
    out.stats.raysSaved = 0;
    out.stats.renderSeconds += secondsSince(t0);
    return out;
}

} // namespace

std::vector<std::uint16_t>
freshTileAges(const nerf::Camera &camera, int tile_size, int max_tile_age)
{
    const int tiles_x = (camera.width() + tile_size - 1) / tile_size;
    const int tiles_y = (camera.height() + tile_size - 1) / tile_size;
    std::vector<std::uint16_t> ages(static_cast<std::size_t>(tiles_x) * tiles_y,
                                    0);
    // Stagger the birth ages so tiles do not all reach maxTileAge on
    // the same frame: with all-equal ages the whole grid would expire
    // at once and every maxTileAge-th frame would degrade to a full
    // render instead of refreshing ~1/maxTileAge of the tiles per
    // frame, round-robin.
    if (max_tile_age > 1) {
        for (int ty = 0; ty < tiles_y; ++ty)
            for (int tx = 0; tx < tiles_x; ++tx)
                ages[static_cast<std::size_t>(ty) * tiles_x + tx] =
                    static_cast<std::uint16_t>((tx * 7 + ty * 13) %
                                               max_tile_age);
    }
    return ages;
}

ReprojectOutput
reprojectRender(const nerf::ServeableField &model, const nerf::OccupancyGrid *grid,
                const nerf::Camera &camera, const SessionFrame &prev,
                const nerf::TiledRenderConfig &render_cfg,
                const ReprojectConfig &cfg, ThreadPool *pool)
{
    F3D_TRACE_SPAN("serve", "reproject");
    ReprojectStats stats;
    const std::uint64_t total_pixels =
        static_cast<std::uint64_t>(camera.width()) * camera.height();

    if (cfg.tileSize < 1)
        fatal("reprojectRender: tile size must be positive, got %d",
              cfg.tileSize);
    if (!prev.frame || prev.frame->color.empty())
        return fullRender(model, grid, camera, render_cfg, cfg, pool,
                          "no_frame", stats);
    // The cached age grid must describe this request's tiling; a
    // resolution or tile-size change re-seeds the session instead of
    // guessing how old the reused pixels are.
    const int tiles_x = (camera.width() + cfg.tileSize - 1) / cfg.tileSize;
    const int tiles_y = (camera.height() + cfg.tileSize - 1) / cfg.tileSize;
    if (prev.tileSize != cfg.tileSize ||
        prev.tileAge.size() != static_cast<std::size_t>(tiles_x) * tiles_y)
        return fullRender(model, grid, camera, render_cfg, cfg, pool, "shape",
                          stats);

    // Warp the session's previous frame into the requested view.
    const auto t_warp = SteadyClock::now();
    nerf::WarpOptions wopt;
    wopt.depthTolerance = cfg.depthTolerance;
    nerf::WarpResult warped;
    {
        F3D_TRACE_SPAN("serve", "reproject_warp");
        warped = nerf::forwardWarp(*prev.frame, camera, wopt);
    }
    const nerf::WarpTileStats tiles = nerf::warpTileStats(warped, cfg.tileSize);
    stats.warpSeconds = secondsSince(t_warp);
    stats.warpCoverage = warped.coverage;
    stats.tilesTotal = tiles.tiles();

    // Classify: which tiles survive as warped pixels?
    std::vector<nerf::TileRect> invalid;
    std::vector<std::uint16_t> age(prev.tileAge.size(), 0);
    for (int ty = 0; ty < tiles.tilesY; ++ty) {
        for (int tx = 0; tx < tiles.tilesX; ++tx) {
            const std::size_t t =
                static_cast<std::size_t>(ty) * tiles.tilesX + tx;
            const int next_age = static_cast<int>(prev.tileAge[t]) + 1;
            const bool valid = tiles.coverage[t] >= cfg.tileCoverageMin &&
                               tiles.conflict[t] <= cfg.tileConflictMax &&
                               next_age < cfg.maxTileAge;
            if (valid) {
                age[t] = static_cast<std::uint16_t>(next_age);
                continue;
            }
            nerf::TileRect rect;
            rect.x0 = tx * cfg.tileSize;
            rect.y0 = ty * cfg.tileSize;
            rect.x1 = std::min(rect.x0 + cfg.tileSize, camera.width());
            rect.y1 = std::min(rect.y0 + cfg.tileSize, camera.height());
            invalid.push_back(rect);
        }
    }
    stats.tilesRerendered = static_cast<int>(invalid.size());

    const double valid_fraction =
        stats.tilesTotal
            ? 1.0 - static_cast<double>(invalid.size()) / stats.tilesTotal
            : 0.0;
    if (valid_fraction < cfg.minValidFraction)
        return fullRender(model, grid, camera, render_cfg, cfg, pool,
                          "coverage", stats);

    // Patch the invalid tiles through the batched tile renderer. Any
    // failure here (including the injected chaos fault) degrades to a
    // full render: a served frame never contains a hole.
    ReprojectOutput out;
    out.frame.camera = camera;
    out.frame.color = std::move(warped.image);
    out.frame.depth = std::move(warped.depth);
    const auto t_render = SteadyClock::now();
    try {
        if (F3D_FAULT_POINT("serve.reproject.tiles"))
            throw std::runtime_error(
                "injected tile-render fault (serve.reproject.tiles)");
        F3D_TRACE_SPAN_ARG("serve", "reproject_tiles", invalid.size());
        stats.raysRendered =
            nerf::renderTilesInto(model, grid, camera, render_cfg, invalid,
                                  pool, out.frame.color, out.frame.depth.data());
    } catch (const std::exception &e) {
        warn("reprojectRender: tile pass failed (%s); degrading to full render",
             e.what());
        stats.renderSeconds = secondsSince(t_render);
        return fullRender(model, grid, camera, render_cfg, cfg, pool,
                          "tile_fault", stats);
    }
    stats.renderSeconds = secondsSince(t_render);

    // Holes can only exist when tileCoverageMin was lowered below 1;
    // paint them background so the served frame is still complete.
    if (cfg.tileCoverageMin < 1.0) {
        std::size_t idx = 0;
        for (int y = 0; y < camera.height(); ++y) {
            for (int x = 0; x < camera.width(); ++x, ++idx) {
                const std::size_t t =
                    (static_cast<std::size_t>(y) / cfg.tileSize) * tiles.tilesX +
                    (static_cast<std::size_t>(x) / cfg.tileSize);
                if (age[t] == 0)
                    continue; // re-rendered tile, fully painted
                if (!warped.covered[idx]) {
                    out.frame.color.at(x, y) = render_cfg.render.background;
                    out.frame.depth[idx] = render_cfg.farDepth;
                }
            }
        }
    }

    stats.reprojected = true;
    stats.raysSaved = total_pixels - stats.raysRendered;
    out.tileAge = std::move(age);
    out.stats = stats;
    return out;
}

} // namespace fusion3d::serve
