/** @file Tests of the pinhole camera model. */

#include <cmath>

#include <gtest/gtest.h>

#include "nerf/camera.h"

namespace fusion3d::nerf
{
namespace
{

TEST(Camera, CenterPixelLooksAtTarget)
{
    const Vec3f eye{0.5f, 0.5f, -2.0f};
    const Vec3f target{0.5f, 0.5f, 0.5f};
    const Camera cam(eye, target, {0.0f, 1.0f, 0.0f}, 45.0f, 64, 64);
    const Ray r = cam.rayForPixel(32, 32, 0.0f, 0.0f); // exact center
    const Vec3f expect = normalize(target - eye);
    EXPECT_NEAR(r.dir.x, expect.x, 1e-5f);
    EXPECT_NEAR(r.dir.y, expect.y, 1e-5f);
    EXPECT_NEAR(r.dir.z, expect.z, 1e-5f);
    EXPECT_EQ(r.origin, eye);
}

TEST(Camera, RaysAreUnitLength)
{
    const Camera cam({0.0f, 1.0f, -1.5f}, {0.5f, 0.5f, 0.5f}, {0.0f, 1.0f, 0.0f},
                     60.0f, 17, 13);
    for (int y = 0; y < 13; ++y) {
        for (int x = 0; x < 17; ++x)
            EXPECT_NEAR(length(cam.rayForPixel(x, y).dir), 1.0f, 1e-5f);
    }
}

TEST(Camera, FovControlsSpread)
{
    const Vec3f eye{0.5f, 0.5f, -2.0f};
    const Vec3f target{0.5f, 0.5f, 0.5f};
    const Camera narrow(eye, target, {0, 1, 0}, 20.0f, 32, 32);
    const Camera wide(eye, target, {0, 1, 0}, 90.0f, 32, 32);
    const float d_narrow = dot(narrow.rayForPixel(0, 0).dir,
                               narrow.rayForPixel(31, 31).dir);
    const float d_wide = dot(wide.rayForPixel(0, 0).dir, wide.rayForPixel(31, 31).dir);
    // Wider FOV -> corner rays diverge more -> smaller dot product.
    EXPECT_LT(d_wide, d_narrow);
}

TEST(Camera, ImageYAxisPointsDown)
{
    const Camera cam({0.5f, 0.5f, -2.0f}, {0.5f, 0.5f, 0.5f}, {0, 1, 0}, 45.0f, 32, 32);
    // Top row rays point up relative to bottom row rays.
    EXPECT_GT(cam.rayForPixel(16, 0).dir.y, cam.rayForPixel(16, 31).dir.y);
}

TEST(Camera, OrbitGeometry)
{
    const Vec3f center{0.5f, 0.5f, 0.5f};
    for (float azim : {0.0f, 90.0f, 180.0f, 270.0f}) {
        const Camera cam = Camera::orbit(center, 1.3f, azim, 25.0f, 45.0f, 16, 16);
        EXPECT_NEAR(length(cam.position() - center), 1.3f, 1e-4f);
        // Center ray points back at the orbit center.
        const Ray r = cam.rayForPixel(8, 8, 0.0f, 0.0f);
        const float along = dot(r.dir, normalize(center - cam.position()));
        EXPECT_NEAR(along, 1.0f, 1e-4f);
    }
}

TEST(Camera, OrbitElevationRaisesEye)
{
    const Vec3f center{0.5f, 0.5f, 0.5f};
    const Camera low = Camera::orbit(center, 1.0f, 30.0f, 5.0f, 45.0f, 8, 8);
    const Camera high = Camera::orbit(center, 1.0f, 30.0f, 60.0f, 45.0f, 8, 8);
    EXPECT_GT(high.position().y, low.position().y);
}

TEST(Camera, JitterStaysInsidePixel)
{
    const Camera cam({0.5f, 0.5f, -2.0f}, {0.5f, 0.5f, 0.5f}, {0, 1, 0}, 45.0f, 8, 8);
    const Ray lo = cam.rayForPixel(4, 4, 0.0f, 0.0f);
    const Ray hi = cam.rayForPixel(4, 4, 0.999f, 0.999f);
    const Ray next = cam.rayForPixel(5, 5, 0.0f, 0.0f);
    // Jittered extremes bracket the pixel but do not reach the next one.
    EXPECT_LT(std::fabs(hi.dir.x - lo.dir.x) + 1e-7f,
              std::fabs(next.dir.x - lo.dir.x) + 1e-4f);
}

} // namespace
} // namespace fusion3d::nerf
