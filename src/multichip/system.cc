#include "multichip/system.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace fusion3d::multichip
{

MultiChipSystem::MultiChipSystem(const SystemConfig &cfg)
    : cfg_(cfg)
{
    if (cfg.numChips < 1)
        fatal("MultiChipSystem needs at least one chip");
}

double
MultiChipSystem::totalPowerW() const
{
    return cfg_.chip.typicalPowerW * cfg_.numChips +
           cfg_.io.powerW(cfg_.chip, cfg_.numChips);
}

double
MultiChipSystem::totalAreaMm2() const
{
    return cfg_.chip.dieAreaMm2 * cfg_.numChips + cfg_.io.areaMm2(cfg_.chip, cfg_.numChips);
}

double
MultiChipSystem::totalSramKb() const
{
    return static_cast<double>(cfg_.chip.totalSramKb()) * cfg_.numChips +
           cfg_.io.sramKb(cfg_.chip, cfg_.numChips);
}

SystemRunResult
MultiChipSystem::run(nerf::MoeNerf &moe, const std::vector<Ray> &rays, bool training,
                     std::uint64_t full_rays) const
{
    const int chips = cfg_.numChips;
    if (moe.numExperts() != chips)
        fatal("MoeNerf has %d experts but the system has %d chips", moe.numExperts(),
              chips);

    const chip::Chip chip_model(cfg_.chip);
    Pcg32 rng(321, 0x2545f4914f6cdd1dULL);

    // Per-expert trace capture: each expert's Stage-II accesses land on
    // its own chip's interpolation module.
    std::vector<std::unique_ptr<chip::InterpModule>> interps;
    std::vector<std::vector<nerf::RayWorkload>> workloads(
        static_cast<std::size_t>(chips));
    std::vector<std::uint64_t> candidates(static_cast<std::size_t>(chips), 0);
    std::vector<std::uint64_t> valid(static_cast<std::size_t>(chips), 0);
    std::vector<std::uint64_t> composited(static_cast<std::size_t>(chips), 0);

    for (int k = 0; k < chips; ++k) {
        interps.push_back(std::make_unique<chip::InterpModule>(
            cfg_.chip, chip::BankPolicy::TwoLevelTiling));
        moe.expert(k).setVertexVisitor(interps.back().get());
        workloads[static_cast<std::size_t>(k)].reserve(rays.size());
    }

    // Rays an expert actually contributed to (non-empty partials): only
    // these cross back to the I/O module.
    std::vector<std::uint64_t> touched(static_cast<std::size_t>(chips), 0);

    for (const Ray &ray : rays) {
        for (int k = 0; k < chips; ++k) {
            nerf::RayWorkload wl;
            const nerf::RayEval ev =
                moe.expert(k).traceRay(ray, rng, /*record=*/false, &wl);
            candidates[static_cast<std::size_t>(k)] +=
                static_cast<std::uint64_t>(ev.candidates);
            valid[static_cast<std::size_t>(k)] += static_cast<std::uint64_t>(ev.samples);
            composited[static_cast<std::size_t>(k)] +=
                static_cast<std::uint64_t>(ev.composited);
            if (ev.samples > 0)
                ++touched[static_cast<std::size_t>(k)];
            workloads[static_cast<std::size_t>(k)].push_back(std::move(wl));
        }
    }
    for (int k = 0; k < chips; ++k)
        moe.expert(k).setVertexVisitor(nullptr);

    SystemRunResult result;
    const double scale =
        static_cast<double>(full_rays) / std::max<double>(1.0, static_cast<double>(rays.size()));

    double max_seconds = 0.0;
    double sum_seconds = 0.0;
    for (int k = 0; k < chips; ++k) {
        const auto idx = static_cast<std::size_t>(k);
        ChipSlice slice;
        const chip::SamplingModule sampling(cfg_.chip, chip::SamplingSchedule::Dynamic);
        slice.stage1 = sampling.run(workloads[idx]);
        slice.stage2 = interps[idx]->stats();

        chip::WorkloadProfile wl;
        wl.rays = full_rays;
        wl.candidates =
            static_cast<std::uint64_t>(static_cast<double>(candidates[idx]) * scale);
        wl.validPoints =
            static_cast<std::uint64_t>(static_cast<double>(valid[idx]) * scale);
        wl.compositedPoints =
            static_cast<std::uint64_t>(static_cast<double>(composited[idx]) * scale);
        wl.levels = moe.expert(k).model().config().grid.levels;
        wl.macsPerPoint = moe.expert(k).model().macsPerPoint();
        wl.avgGroupCycles = slice.stage2.groups ? slice.stage2.meanGroupLatency : 1.0;
        slice.workload = wl;

        slice.perf = training ? chip_model.perfModel().training(wl, slice.stage1)
                              : chip_model.perfModel().inference(wl, slice.stage1);
        max_seconds = std::max(max_seconds, slice.perf.seconds);
        sum_seconds += slice.perf.seconds;
        result.totalPoints += wl.validPoints;
        result.chips.push_back(slice);
    }

    result.computeSeconds = max_seconds;
    result.imbalance =
        sum_seconds > 0.0 ? max_seconds / (sum_seconds / chips) : 1.0;

    // --- Communication accounting (full-scale workload) ---
    // MoE: each chip owns a full Stage-I sampler, so the I/O module
    // broadcasts only the camera pose (not per-ray data) and receives
    // one tagged partial pixel (RGB+T fp16 + ray index, 10 B) per ray
    // an expert actually contributed to -- the occupancy gate makes
    // most (ray, expert) pairs empty. Training returns the 6-B pixel
    // gradient to the same touched set.
    std::uint64_t touched_full = 0;
    for (int k = 0; k < chips; ++k) {
        touched_full += static_cast<std::uint64_t>(
            static_cast<double>(touched[static_cast<std::size_t>(k)]) * scale);
    }
    std::uint64_t moe_bytes = 64 * static_cast<std::uint64_t>(chips) +
                              touched_full * 10;
    if (training)
        moe_bytes += touched_full * 6;
    result.moeCommBytes = moe_bytes;

    // Layer-split alternative: every sampled point's features cross a
    // chip boundary (fp16 features per level), twice when training
    // (gradients return).
    const int levels = moe.expert(0).model().config().grid.levels;
    const int fpl = moe.expert(0).model().config().grid.featuresPerLevel;
    const std::uint64_t act_bytes =
        static_cast<std::uint64_t>(levels) * fpl * 2 + 8;
    result.layerSplitCommBytes =
        result.totalPoints * act_bytes * (training ? 2 : 1);

    // PCB links run in parallel, one per chip; the I/O module fuses the
    // arriving partials at its own rate. Transfer and fusion overlap
    // with each other but follow compute (the final batch must land).
    const double link_bw = cfg_.chipToChipBytesPerSec * chips;
    result.commSeconds = static_cast<double>(moe_bytes) / link_bw;
    result.fusionSeconds = static_cast<double>(touched_full) / cfg_.ioFusionRate;
    result.seconds =
        result.computeSeconds + std::max(result.commSeconds, result.fusionSeconds);

    result.energyJ = totalPowerW() * result.seconds +
                     static_cast<double>(moe_bytes) * cfg_.chipToChipEnergyPerByte;
    return result;
}

SystemRunResult
MultiChipSystem::evaluateInference(nerf::MoeNerf &moe, const nerf::Camera &camera,
                                   int trace_rays, std::uint64_t seed) const
{
    Pcg32 rng(seed, 0x6c8e9cf570932bd5ULL);
    std::vector<Ray> rays;
    rays.reserve(static_cast<std::size_t>(trace_rays));
    const std::uint32_t pixels =
        static_cast<std::uint32_t>(camera.width()) * camera.height();
    for (int i = 0; i < trace_rays; ++i) {
        const std::uint32_t pick = rng.nextBounded(pixels);
        rays.push_back(camera.rayForPixel(static_cast<int>(pick % camera.width()),
                                          static_cast<int>(pick / camera.width())));
    }
    return run(moe, rays, /*training=*/false, pixels);
}

SystemRunResult
MultiChipSystem::evaluateTraining(nerf::MoeNerf &moe, const nerf::Dataset &dataset,
                                  int rays_per_batch, std::uint64_t seed) const
{
    if (dataset.train.empty())
        fatal("MultiChipSystem::evaluateTraining: no training views");
    Pcg32 rng(seed, 0x8d2f43c9a1b7e655ULL);
    std::vector<Ray> rays;
    rays.reserve(static_cast<std::size_t>(rays_per_batch));
    for (int i = 0; i < rays_per_batch; ++i) {
        const nerf::TrainView &view = dataset.train[rng.nextBounded(
            static_cast<std::uint32_t>(dataset.train.size()))];
        const int px = static_cast<int>(
            rng.nextBounded(static_cast<std::uint32_t>(view.image.width())));
        const int py = static_cast<int>(
            rng.nextBounded(static_cast<std::uint32_t>(view.image.height())));
        rays.push_back(view.camera.rayForPixel(px, py, rng.nextFloat(), rng.nextFloat()));
    }
    return run(moe, rays, /*training=*/true,
               static_cast<std::uint64_t>(rays_per_batch));
}

} // namespace fusion3d::multichip
