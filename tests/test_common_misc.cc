/** @file Tests for RNG, image/PSNR, quantization, op counting, logging. */

#include <array>
#include <cmath>

#include <gtest/gtest.h>

#include "common/image.h"
#include "common/logging.h"
#include "common/op_counter.h"
#include "common/quant.h"
#include "common/rng.h"

namespace fusion3d
{
namespace
{

TEST(Pcg32, Deterministic)
{
    Pcg32 a(42, 1);
    Pcg32 b(42, 1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextUint(), b.nextUint());
}

TEST(Pcg32, StreamsDiffer)
{
    Pcg32 a(42, 1);
    Pcg32 b(42, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.nextUint() == b.nextUint()) ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Pcg32, FloatRange)
{
    Pcg32 rng(1);
    for (int i = 0; i < 10000; ++i) {
        const float f = rng.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(Pcg32, BoundedStaysInBound)
{
    Pcg32 rng(2);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Pcg32, UniformMeanRoughlyHalf)
{
    Pcg32 rng(3);
    double acc = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        acc += rng.nextFloat();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Pcg32, GaussianMoments)
{
    Pcg32 rng(4);
    double sum = 0.0, sum2 = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Pcg32, UnitVectorsOnSphere)
{
    Pcg32 rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_NEAR(length(rng.nextUnitVector()), 1.0f, 1e-5f);
}

TEST(Image, FillAndAccess)
{
    Image img(4, 3, Vec3f(0.25f));
    EXPECT_EQ(img.width(), 4);
    EXPECT_EQ(img.height(), 3);
    EXPECT_EQ(img.pixelCount(), 12);
    EXPECT_EQ(img.at(3, 2), Vec3f(0.25f));
    img.at(1, 1) = Vec3f(1.0f, 0.0f, 0.0f);
    EXPECT_EQ(img.at(1, 1), Vec3f(1.0f, 0.0f, 0.0f));
}

TEST(Image, PsnrIdenticalIsInfinite)
{
    Image a(8, 8, Vec3f(0.5f));
    EXPECT_TRUE(std::isinf(psnr(a, a)));
}

TEST(Image, PsnrKnownValue)
{
    Image a(10, 10, Vec3f(0.0f));
    Image b(10, 10, Vec3f(0.1f));
    // MSE = 0.01 -> PSNR = 20 dB.
    EXPECT_NEAR(psnr(a, b), 20.0, 1e-6);
    EXPECT_NEAR(mse(a, b), 0.01, 1e-8);
}

TEST(Image, PsnrSymmetric)
{
    Image a(6, 6, Vec3f(0.2f));
    Image b(6, 6, Vec3f(0.7f));
    EXPECT_DOUBLE_EQ(psnr(a, b), psnr(b, a));
}

TEST(Image, WritePpmProducesFile)
{
    Image img(4, 4, Vec3f(0.5f, 0.25f, 1.0f));
    const std::string path = ::testing::TempDir() + "/f3d_test.ppm";
    ASSERT_TRUE(img.writePpm(path));
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char magic[2] = {};
    ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
    EXPECT_EQ(magic[0], 'P');
    EXPECT_EQ(magic[1], '6');
    std::fclose(f);
}

TEST(Quant, RoundTripBounds)
{
    const std::array<float, 5> vals{-1.0f, -0.5f, 0.0f, 0.5f, 1.0f};
    const QuantScale qs = computeScale(vals);
    const auto q = quantize(vals, qs);
    const auto back = dequantize(q, qs);
    for (std::size_t i = 0; i < vals.size(); ++i)
        EXPECT_NEAR(back[i], vals[i], qs.scale);
}

TEST(Quant, ScaleMapsMaxTo127)
{
    const std::array<float, 3> vals{0.1f, -2.54f, 1.0f};
    const QuantScale qs = computeScale(vals);
    const auto q = quantize(vals, qs);
    EXPECT_EQ(q[1], -127);
}

TEST(Quant, FakeQuantizeIdempotent)
{
    std::vector<float> vals{0.3f, -0.7f, 0.9f, -0.1f, 0.0f};
    fakeQuantizeInPlace(vals);
    std::vector<float> once = vals;
    fakeQuantizeInPlace(vals);
    for (std::size_t i = 0; i < vals.size(); ++i)
        EXPECT_NEAR(vals[i], once[i], 1e-6f);
}

TEST(Quant, RmseSmallForSmoothTensor)
{
    std::vector<float> vals;
    for (int i = 0; i < 1000; ++i)
        vals.push_back(std::sin(0.01f * static_cast<float>(i)));
    const double rmse = quantizationRmse(vals);
    EXPECT_GT(rmse, 0.0);
    EXPECT_LT(rmse, 1.0 / 127.0);
}

TEST(OpCounter, AccumulationAndCost)
{
    OpCounter a;
    a.divs = 2;
    a.muls = 3;
    OpCounter b;
    b.adds = 4;
    b.macs = 5;
    const OpCounter c = a + b;
    EXPECT_EQ(c.total(), 14u);
    EXPECT_EQ(c.weightedCost(), 2 * 12u + 3 * 3u + 4u + 5 * 4u);
    OpCounter d = c;
    d.reset();
    EXPECT_EQ(d.total(), 0u);
}

TEST(Logging, Strprintf)
{
    EXPECT_EQ(strprintf("x=%d y=%.1f %s", 3, 2.5, "z"), "x=3 y=2.5 z");
    EXPECT_EQ(strprintf("no args"), "no args");
}

} // namespace
} // namespace fusion3d
