/** @file Robustness tests of the .f3dm model artifact reader/writer:
 *  round-trip equality, clean diagnosable failures on truncated,
 *  magic-corrupted, wrong-version, and checksum-corrupted files
 *  (truncation probed at every section boundary), injected I/O faults,
 *  and the crash-safety of the atomic checkpoint writer. */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/fault.h"
#include "nerf/field.h"
#include "nerf/freq_nerf.h"
#include "nerf/nerf_model.h"
#include "nerf/serialize.h"
#include "nerf/tensorf.h"

namespace fusion3d::nerf
{
namespace
{

NerfModelConfig
tinyConfig()
{
    NerfModelConfig cfg;
    cfg.grid.levels = 4;
    cfg.grid.featuresPerLevel = 2;
    cfg.grid.log2TableSize = 9;
    cfg.grid.baseResolution = 4;
    cfg.grid.maxResolution = 32;
    cfg.geoFeatures = 7;
    cfg.densityHidden = 16;
    cfg.colorHidden = 16;
    cfg.shDegree = 2;
    return cfg;
}

std::string
tmpPath(const char *name)
{
    return testing::TempDir() + name;
}

std::vector<unsigned char>
readAll(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::vector<unsigned char> bytes;
    unsigned char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    return bytes;
}

void
writeAll(const std::string &path, const std::vector<unsigned char> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
}

void
expectSpansEqual(std::span<const float> a, std::span<const float> b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "param " << i;
}

TEST(Serialize, RoundTripIsBitExact)
{
    const NerfModel model(tinyConfig(), /*seed=*/99);
    const std::string path = tmpPath("roundtrip.f3dm");
    ASSERT_TRUE(saveModel(model, path));

    const LoadResult r = loadModelVerbose(path);
    ASSERT_TRUE(static_cast<bool>(r)) << r.message;
    EXPECT_EQ(r.status, LoadStatus::ok);
    ASSERT_NE(r.model, nullptr);
    expectSpansEqual(model.encoding().params(), r.model->encoding().params());
    expectSpansEqual(model.densityNet().params(), r.model->densityNet().params());
    expectSpansEqual(model.colorNet().params(), r.model->colorNet().params());
}

TEST(Serialize, MissingFileIsIoError)
{
    const LoadResult r = loadModelVerbose(tmpPath("does_not_exist.f3dm"));
    EXPECT_EQ(r.status, LoadStatus::ioError);
    EXPECT_EQ(r.model, nullptr);
    EXPECT_FALSE(r.message.empty());
    EXPECT_EQ(loadModel(tmpPath("does_not_exist.f3dm")), nullptr);
}

TEST(Serialize, CorruptedMagicIsDiagnosed)
{
    const NerfModel model(tinyConfig());
    const std::string path = tmpPath("badmagic.f3dm");
    ASSERT_TRUE(saveModel(model, path));

    std::vector<unsigned char> bytes = readAll(path);
    bytes[0] = 'X';
    writeAll(path, bytes);

    const LoadResult r = loadModelVerbose(path);
    EXPECT_EQ(r.status, LoadStatus::badMagic);
    EXPECT_EQ(r.model, nullptr);
}

TEST(Serialize, WrongVersionIsDiagnosed)
{
    const NerfModel model(tinyConfig());
    const std::string path = tmpPath("badversion.f3dm");
    ASSERT_TRUE(saveModel(model, path));

    // The u32 format version sits directly after the 4 magic bytes.
    std::vector<unsigned char> bytes = readAll(path);
    bytes[4] = 0xfe;
    bytes[5] = 0xff;
    writeAll(path, bytes);

    const LoadResult r = loadModelVerbose(path);
    EXPECT_EQ(r.status, LoadStatus::badVersion);
    EXPECT_EQ(r.model, nullptr);
}

TEST(Serialize, TruncatedPayloadIsDiagnosed)
{
    const NerfModel model(tinyConfig());
    const std::string path = tmpPath("truncated.f3dm");
    ASSERT_TRUE(saveModel(model, path));

    std::vector<unsigned char> bytes = readAll(path);
    ASSERT_GT(bytes.size(), 200u);
    bytes.resize(bytes.size() / 2); // header intact, payload cut short
    writeAll(path, bytes);

    const LoadResult r = loadModelVerbose(path);
    EXPECT_EQ(r.status, LoadStatus::truncated);
    EXPECT_EQ(r.model, nullptr);
}

TEST(Serialize, TruncatedHeaderIsDiagnosed)
{
    const NerfModel model(tinyConfig());
    const std::string path = tmpPath("shortheader.f3dm");
    ASSERT_TRUE(saveModel(model, path));

    std::vector<unsigned char> bytes = readAll(path);
    bytes.resize(10); // shorter than the header itself
    writeAll(path, bytes);

    const LoadResult r = loadModelVerbose(path);
    EXPECT_EQ(r.status, LoadStatus::truncated);
    EXPECT_EQ(r.model, nullptr);
}

TEST(Serialize, InsaneHeaderDimensionsAreRejected)
{
    const NerfModel model(tinyConfig());
    const std::string path = tmpPath("badheader.f3dm");
    ASSERT_TRUE(saveModel(model, path));

    // Stomp the levels field (first i32 after magic+version) with a
    // value saveModel could never have written.
    std::vector<unsigned char> bytes = readAll(path);
    bytes[8] = 0xff;
    bytes[9] = 0xff;
    bytes[10] = 0xff;
    bytes[11] = 0x7f;
    writeAll(path, bytes);

    const LoadResult r = loadModelVerbose(path);
    EXPECT_EQ(r.status, LoadStatus::headerMismatch);
    EXPECT_EQ(r.model, nullptr);
}

TEST(Serialize, LoadStatusNamesAreStable)
{
    EXPECT_STREQ(loadStatusName(LoadStatus::ok), "ok");
    EXPECT_STREQ(loadStatusName(LoadStatus::badMagic), "bad magic");
    EXPECT_STREQ(loadStatusName(LoadStatus::truncated), "truncated");
    EXPECT_STREQ(loadStatusName(LoadStatus::badChecksum), "checksum mismatch");
}

TEST(Serialize, TruncationAtEverySectionBoundaryIsDiagnosed)
{
    const NerfModel model(tinyConfig());
    const std::string path = tmpPath("boundaries.f3dm");
    ASSERT_TRUE(saveModel(model, path));
    const std::vector<unsigned char> whole = readAll(path);

    // Section boundaries of the v2 layout: empty file, mid-header,
    // header only, header + encoding block, header + encoding +
    // density block. Every cut must read as `truncated`, never crash.
    const std::size_t header = 72; // sizeof the on-disk header
    const std::size_t enc =
        model.encoding().params().size() * sizeof(float);
    const std::size_t dens =
        model.densityNet().params().size() * sizeof(float);
    const std::size_t cuts[] = {0, 10, header, header + enc,
                                header + enc + dens};
    for (const std::size_t cut : cuts) {
        SCOPED_TRACE(cut);
        ASSERT_LT(cut, whole.size());
        std::vector<unsigned char> bytes = whole;
        bytes.resize(cut);
        writeAll(path, bytes);
        const LoadResult r = loadModelVerbose(path);
        EXPECT_EQ(r.status, LoadStatus::truncated);
        EXPECT_EQ(r.model, nullptr);
    }
}

TEST(Serialize, PayloadCorruptionFailsChecksum)
{
    const NerfModel model(tinyConfig(), /*seed=*/11);
    const std::string path = tmpPath("bitflip.f3dm");
    ASSERT_TRUE(saveModel(model, path));

    // Flip one bit in the last payload byte: header and sizes are
    // intact, so only the CRC can catch it.
    std::vector<unsigned char> bytes = readAll(path);
    bytes.back() ^= 0x01;
    writeAll(path, bytes);

    const LoadResult r = loadModelVerbose(path);
    EXPECT_EQ(r.status, LoadStatus::badChecksum);
    EXPECT_EQ(r.model, nullptr);
    EXPECT_FALSE(r.message.empty());
}

TEST(Serialize, CrcFieldCorruptionFailsChecksum)
{
    const NerfModel model(tinyConfig(), /*seed=*/12);
    const std::string path = tmpPath("badcrc.f3dm");
    ASSERT_TRUE(saveModel(model, path));

    // The u32 paramCrc sits after the nine i32 dimension fields
    // (offset 4 + 4 + 9*4 = 44).
    std::vector<unsigned char> bytes = readAll(path);
    bytes[44] ^= 0xff;
    writeAll(path, bytes);

    EXPECT_EQ(loadModelVerbose(path).status, LoadStatus::badChecksum);
}

/** Injected-fault serialize tests leave the injector disarmed. */
class SerializeFaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(SerializeFaultTest, InjectedLoadFaultsMapToTheirStatuses)
{
    const NerfModel model(tinyConfig(), /*seed=*/13);
    const std::string path = tmpPath("loadfaults.f3dm");
    ASSERT_TRUE(saveModel(model, path));

    ASSERT_TRUE(
        FaultInjector::instance().configureFromSpec("nerf.load.open=once"));
    EXPECT_EQ(loadModelVerbose(path).status, LoadStatus::ioError);

    ASSERT_TRUE(
        FaultInjector::instance().configureFromSpec("nerf.load.read=once"));
    EXPECT_EQ(loadModelVerbose(path).status, LoadStatus::truncated);

    ASSERT_TRUE(
        FaultInjector::instance().configureFromSpec("nerf.load.crc=once"));
    EXPECT_EQ(loadModelVerbose(path).status, LoadStatus::badChecksum);

    // Each was a one-shot: the same artifact now loads clean, armed
    // or not.
    EXPECT_EQ(loadModelVerbose(path).status, LoadStatus::ok);
    FaultInjector::instance().reset();
    EXPECT_EQ(loadModelVerbose(path).status, LoadStatus::ok);
}

TEST_F(SerializeFaultTest, InjectedLoadIntoFaultLeavesDstUntouched)
{
    const NerfModel src(tinyConfig(), /*seed=*/14);
    NerfModel dst(tinyConfig(), /*seed=*/15);
    const float before = dst.encoding().params()[0];

    ASSERT_TRUE(
        FaultInjector::instance().configureFromSpec("nerf.loadinto=once"));
    EXPECT_FALSE(loadInto(dst, src));
    EXPECT_EQ(dst.encoding().params()[0], before);
    EXPECT_TRUE(loadInto(dst, src)); // one-shot: the retry works
}

TEST_F(SerializeFaultTest, InjectedSaveWriteFaultFailsCleanly)
{
    const NerfModel model(tinyConfig(), /*seed=*/16);
    const std::string path = tmpPath("savefault.f3dm");

    ASSERT_TRUE(
        FaultInjector::instance().configureFromSpec("nerf.save.write=once"));
    EXPECT_FALSE(saveModel(model, path));
    FaultInjector::instance().reset();
    EXPECT_TRUE(saveModel(model, path));
    EXPECT_EQ(loadModelVerbose(path).status, LoadStatus::ok);
}

TEST_F(SerializeFaultTest, AtomicSaveRoundTripsAndLeavesNoTempFile)
{
    const NerfModel model(tinyConfig(), /*seed=*/17);
    const std::string path = tmpPath("atomic.f3dm");
    ASSERT_TRUE(saveModelAtomic(model, path));

    const LoadResult r = loadModelVerbose(path);
    ASSERT_EQ(r.status, LoadStatus::ok);
    expectSpansEqual(model.encoding().params(), r.model->encoding().params());

    // No temp debris after a clean save.
    std::FILE *tmp = std::fopen((path + ".tmp").c_str(), "rb");
    EXPECT_EQ(tmp, nullptr);
    if (tmp)
        std::fclose(tmp);
}

TEST_F(SerializeFaultTest, CrashDuringCheckpointNeverYieldsALoadableFile)
{
    // First checkpoint lands; a crash during the second must leave the
    // destination exactly as the first wrote it, and whatever partial
    // temp file the crash left must never load.
    const NerfModel good(tinyConfig(), /*seed=*/18);
    const std::string path = tmpPath("crashsafe.f3dm");
    ASSERT_TRUE(saveModelAtomic(good, path));

    const NerfModel newer(tinyConfig(), /*seed=*/19);
    ASSERT_TRUE(
        FaultInjector::instance().configureFromSpec("trainer.ckpt.write=once"));
    EXPECT_FALSE(saveModelAtomic(newer, path));

    // Destination: still the *first* model, bit-exact.
    const LoadResult r = loadModelVerbose(path);
    ASSERT_EQ(r.status, LoadStatus::ok) << r.message;
    expectSpansEqual(good.encoding().params(), r.model->encoding().params());
    expectSpansEqual(good.densityNet().params(), r.model->densityNet().params());
    expectSpansEqual(good.colorNet().params(), r.model->colorNet().params());

    // The simulated crash cut the temp file mid-payload: loading it
    // diagnoses truncation instead of accepting half a model.
    EXPECT_EQ(loadModelVerbose(path + ".tmp").status, LoadStatus::truncated);

    // An injected open failure also leaves the destination intact.
    ASSERT_TRUE(
        FaultInjector::instance().configureFromSpec("trainer.ckpt.open=once"));
    EXPECT_FALSE(saveModelAtomic(newer, path));
    EXPECT_EQ(loadModelVerbose(path).status, LoadStatus::ok);
}

// ---------------------------------------------------------------------------
// Backend-polymorphic v3 container + v2 compatibility.
// ---------------------------------------------------------------------------

FreqNerfConfig
tinyFreqConfig()
{
    FreqNerfConfig cfg;
    cfg.posFrequencies = 4;
    cfg.hidden = 24;
    cfg.trunkLayers = 2;
    cfg.geoFeatures = 7;
    cfg.colorHidden = 16;
    return cfg;
}

TensorfModelConfig
tinyTensorfConfig()
{
    TensorfModelConfig cfg;
    cfg.densityRank = 6;
    cfg.appearanceRank = 8;
    cfg.lineResolution = 48;
    cfg.appearanceDim = 8;
    cfg.colorHidden = 16;
    return cfg;
}

/** The two fields evaluate bit-identically on a random batch — the
 *  round-trip equality check that matters to the serve layer. */
void
expectFieldsEvalIdentical(const ServeableField &a, const ServeableField &b)
{
    const std::size_t n = 40;
    Pcg32 rng(404);
    std::vector<Vec3f> pos(n), dirs(n);
    for (std::size_t j = 0; j < n; ++j) {
        pos[j] = clamp(rng.nextVec3(), 0.01f, 0.99f);
        dirs[j] = rng.nextUnitVector();
    }
    std::vector<float> sig_a(n), sig_b(n), den_a(n), den_b(n);
    std::vector<Vec3f> rgb_a(n), rgb_b(n);
    a.evalBatch(pos, dirs, sig_a, rgb_a);
    b.evalBatch(pos, dirs, sig_b, rgb_b);
    a.evalDensityBatch(pos, den_a);
    b.evalDensityBatch(pos, den_b);
    for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(sig_a[j], sig_b[j]) << "sample " << j;
        ASSERT_EQ(rgb_a[j], rgb_b[j]) << "sample " << j;
        ASSERT_EQ(den_a[j], den_b[j]) << "sample " << j;
    }
}

TEST(SerializeV3, V2ByteStreamStillLoadsAsHashGrid)
{
    // Golden-format guard: the v2 writer's output starts with the
    // frozen magic + version prefix, and the polymorphic loader maps it
    // to a hash-grid field bit-exactly (v2 artifacts written by older
    // builds keep loading unchanged).
    const NerfModel model(tinyConfig(), /*seed=*/31);
    const std::string path = tmpPath("v2compat.f3dm");
    ASSERT_TRUE(saveModel(model, path));

    const std::vector<unsigned char> bytes = readAll(path);
    ASSERT_GE(bytes.size(), 8u);
    EXPECT_EQ(bytes[0], 'F');
    EXPECT_EQ(bytes[1], '3');
    EXPECT_EQ(bytes[2], 'D');
    EXPECT_EQ(bytes[3], 'M');
    EXPECT_EQ(bytes[4], 2u); // little-endian u32 version == 2
    EXPECT_EQ(bytes[5], 0u);
    EXPECT_EQ(bytes[6], 0u);
    EXPECT_EQ(bytes[7], 0u);

    const FieldLoadResult r = loadFieldVerbose(path);
    ASSERT_TRUE(static_cast<bool>(r)) << r.message;
    EXPECT_EQ(r.status, LoadStatus::ok);
    ASSERT_NE(r.field, nullptr);
    EXPECT_EQ(r.field->kind(), BackendKind::hashGrid);
    EXPECT_EQ(r.field->paramCount(), model.paramCount());
    const HashGridServeField hash_field(model);
    expectFieldsEvalIdentical(hash_field, *r.field);
}

TEST(SerializeV3, FreqRoundTripIsBitExact)
{
    const FreqNerfModel model(tinyFreqConfig(), /*seed=*/61);
    const FreqServeField field(model);
    const std::string path = tmpPath("freq_v3.f3dm");
    ASSERT_TRUE(saveField(field, path));

    const FieldLoadResult r = loadFieldVerbose(path);
    ASSERT_TRUE(static_cast<bool>(r)) << r.message;
    EXPECT_EQ(r.status, LoadStatus::ok);
    EXPECT_EQ(r.field->kind(), BackendKind::freqNerf);
    EXPECT_EQ(r.field->paramCount(), model.paramCount());
    expectFieldsEvalIdentical(field, *r.field);
}

TEST(SerializeV3, TensorfRoundTripIsBitExact)
{
    const TensorfModel model(tinyTensorfConfig(), /*seed=*/62);
    const TensorfServeField field(model);
    const std::string path = tmpPath("tensorf_v3.f3dm");
    ASSERT_TRUE(saveField(field, path));

    const FieldLoadResult r = loadFieldVerbose(path);
    ASSERT_TRUE(static_cast<bool>(r)) << r.message;
    EXPECT_EQ(r.status, LoadStatus::ok);
    EXPECT_EQ(r.field->kind(), BackendKind::tensorf);
    EXPECT_EQ(r.field->paramCount(), model.paramCount());
    expectFieldsEvalIdentical(field, *r.field);

    // Atomic save round-trips too and leaves no temp debris.
    const std::string atomic_path = tmpPath("tensorf_v3_atomic.f3dm");
    ASSERT_TRUE(saveFieldAtomic(field, atomic_path));
    EXPECT_EQ(loadFieldVerbose(atomic_path).status, LoadStatus::ok);
    std::FILE *tmp = std::fopen((atomic_path + ".tmp").c_str(), "rb");
    EXPECT_EQ(tmp, nullptr);
    if (tmp)
        std::fclose(tmp);
}

TEST(SerializeV3, UnknownOrMismatchedKindTagIsBadBackend)
{
    const TensorfModel model(tinyTensorfConfig(), /*seed=*/63);
    const TensorfServeField field(model);
    const std::string path = tmpPath("badkind.f3dm");
    ASSERT_TRUE(saveField(field, path));
    const std::vector<unsigned char> whole = readAll(path);

    // The u32 backend-kind tag sits directly after magic + version.
    std::vector<unsigned char> bytes = whole;
    bytes[8] = 0x7f; // no such backend
    writeAll(path, bytes);
    FieldLoadResult r = loadFieldVerbose(path);
    EXPECT_EQ(r.status, LoadStatus::badBackend);
    EXPECT_EQ(r.field, nullptr);
    EXPECT_FALSE(r.message.empty());

    // kind == hashGrid inside a v3 container is a tag mismatch: the
    // hash-grid payload is the v2 layout, a v3 file cannot carry it.
    bytes = whole;
    bytes[8] = 0x00;
    writeAll(path, bytes);
    EXPECT_EQ(loadFieldVerbose(path).status, LoadStatus::badBackend);

    EXPECT_STREQ(loadStatusName(LoadStatus::badBackend), "unknown backend");
}

TEST(SerializeV3, TruncatedBackendSectionsAreDiagnosed)
{
    const FreqNerfModel model(tinyFreqConfig(), /*seed=*/64);
    const FreqServeField field(model);
    const std::string path = tmpPath("v3trunc.f3dm");
    ASSERT_TRUE(saveField(field, path));
    const std::vector<unsigned char> whole = readAll(path);

    // Cuts: inside the kind tag, inside the per-backend dimension
    // header, inside the CRC/count fields, and inside the payload.
    const std::size_t cuts[] = {9, 20, 40, whole.size() / 2};
    for (const std::size_t cut : cuts) {
        SCOPED_TRACE(cut);
        ASSERT_LT(cut, whole.size());
        std::vector<unsigned char> bytes = whole;
        bytes.resize(cut);
        writeAll(path, bytes);
        const FieldLoadResult r = loadFieldVerbose(path);
        EXPECT_EQ(r.status, LoadStatus::truncated);
        EXPECT_EQ(r.field, nullptr);
    }
}

TEST(SerializeV3, PayloadCorruptionFailsChecksum)
{
    const TensorfModel model(tinyTensorfConfig(), /*seed=*/65);
    const TensorfServeField field(model);
    const std::string path = tmpPath("v3bitflip.f3dm");
    ASSERT_TRUE(saveField(field, path));

    // Flip one bit in the last payload byte: sizes stay plausible, so
    // only the section CRC can catch it — proving the CRC covers the
    // new per-backend sections.
    std::vector<unsigned char> bytes = readAll(path);
    bytes.back() ^= 0x01;
    writeAll(path, bytes);

    const FieldLoadResult r = loadFieldVerbose(path);
    EXPECT_EQ(r.status, LoadStatus::badChecksum);
    EXPECT_EQ(r.field, nullptr);
    EXPECT_FALSE(r.message.empty());
}

TEST(SerializeV3, InsaneBackendDimensionsAreRejected)
{
    const FreqNerfModel model(tinyFreqConfig(), /*seed=*/66);
    const FreqServeField field(model);
    const std::string path = tmpPath("v3baddims.f3dm");
    ASSERT_TRUE(saveField(field, path));

    // Stomp the first dimension field (directly after the kind tag)
    // with a value the writer could never produce.
    std::vector<unsigned char> bytes = readAll(path);
    bytes[12] = 0xff;
    bytes[13] = 0xff;
    bytes[14] = 0xff;
    bytes[15] = 0x7f;
    writeAll(path, bytes);
    EXPECT_EQ(loadFieldVerbose(path).status, LoadStatus::headerMismatch);
}

TEST(LoadInto, CopiesAllParameterBlocks)
{
    const NerfModel src(tinyConfig(), /*seed=*/7);
    NerfModel dst(tinyConfig(), /*seed=*/8);
    ASSERT_NE(src.encoding().params()[0], dst.encoding().params()[0]);

    ASSERT_TRUE(loadInto(dst, src));
    expectSpansEqual(src.encoding().params(), dst.encoding().params());
    expectSpansEqual(src.densityNet().params(), dst.densityNet().params());
    expectSpansEqual(src.colorNet().params(), dst.colorNet().params());
}

TEST(LoadInto, RejectsMismatchedArchitectures)
{
    const NerfModel src(tinyConfig());
    NerfModelConfig other = tinyConfig();
    other.densityHidden = 24;
    NerfModel dst(other, /*seed=*/3);
    const float before = dst.densityNet().params()[0];

    EXPECT_FALSE(loadInto(dst, src));
    EXPECT_EQ(dst.densityNet().params()[0], before); // nothing copied
}

} // namespace
} // namespace fusion3d::nerf
