/**
 * @file
 * The complete single-model NeRF pipeline: Stage I (sampling through the
 * occupancy gate), Stage II (hash-grid feature interpolation), and
 * Stage III (MLP + volumetric compositing), with training support.
 * This is the workload one Fusion-3D chip executes end to end.
 */

#ifndef FUSION3D_NERF_PIPELINE_H_
#define FUSION3D_NERF_PIPELINE_H_

#include <memory>
#include <vector>

#include "nerf/adam.h"
#include "nerf/nerf_model.h"
#include "nerf/occupancy_grid.h"
#include "nerf/radiance_field.h"
#include "nerf/renderer.h"
#include "nerf/sampler.h"

namespace fusion3d::nerf
{

/** Pipeline-level configuration. */
struct PipelineConfig
{
    NerfModelConfig model;
    SamplerConfig sampler;
    RenderParams render;
    int occupancyResolution = 48;
    float occupancyThreshold = 0.01f;
    float lrEncoding = 1e-2f;
    float lrNet = 2e-3f;
    std::uint64_t seed = 7;
};

/** Single-model pipeline implementing the RadianceField interface. */
class NerfPipeline : public RadianceField
{
  public:
    using Config = PipelineConfig;

    explicit NerfPipeline(const PipelineConfig &cfg);

    const PipelineConfig &config() const { return cfg_; }
    NerfModel &model() { return *model_; }
    const NerfModel &model() const { return *model_; }
    OccupancyGrid &grid() { return grid_; }
    const OccupancyGrid &grid() const { return grid_; }
    const RaySampler &sampler() const { return sampler_; }

    /**
     * Stage-II access-trace observer applied during traceRay. The chip
     * model installs one to replay hash accesses through the banked-SRAM
     * simulation. Pass nullptr to detach.
     */
    void setVertexVisitor(VertexVisitor *v) { visitor_ = v; }

    RayEval traceRay(const Ray &ray, Pcg32 &rng, bool record,
                     RayWorkload *workload = nullptr) override;
    void backwardLastRay(const Vec3f &dcolor) override;
    void zeroGrads() override;
    void optimizerStep() override;
    void updateOccupancy(Pcg32 &rng) override;
    void quantizeWeights() override;
    std::size_t paramCount() const override;

  private:
    PipelineConfig cfg_;
    VertexVisitor *visitor_ = nullptr;
    std::unique_ptr<NerfModel> model_;
    OccupancyGrid grid_;
    RaySampler sampler_;
    PointWorkspace ws_;

    Adam adam_encoding_;
    Adam adam_density_;
    Adam adam_color_;

    // Tape of the last recorded ray.
    std::vector<RaySample> tape_samples_;
    std::vector<float> tape_sigmas_;
    std::vector<Vec3f> tape_rgbs_;
    std::vector<float> tape_dts_;
    std::vector<float> tape_dsigmas_;
    std::vector<Vec3f> tape_drgbs_;
    Vec3f tape_dir_;
    CompositeResult tape_result_;
    bool tape_valid_ = false;

    std::vector<RaySample> scratch_samples_;
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_PIPELINE_H_
