/**
 * @file
 * Default batch entry points of RadianceField: a per-ray loop over the
 * scalar traceRay()/backwardLastRay() pair. Fields without a native
 * batch path (the PointPipeline family) inherit these, so every
 * consumer can target the batch interface unconditionally.
 */

#include "nerf/radiance_field.h"

#include "common/logging.h"

namespace fusion3d::nerf
{

void
RadianceField::traceRays(std::span<const Ray> rays, Pcg32 &rng, bool record,
                         std::span<RayEval> out, RayWorkload *workload)
{
    if (out.size() < rays.size())
        panic("RadianceField::traceRays: output span too small (%zu < %zu)",
              out.size(), rays.size());
    if (workload) {
        workload->pairs.clear();
        workload->totalCandidates = 0;
        workload->totalValid = 0;
        workload->ddaSteps = 0;
        workload->intersectionOps.reset();
    }

    if (record) {
        fallback_rays_.assign(rays.begin(), rays.end());
        fallback_rngs_.clear();
        fallback_rngs_.reserve(rays.size());
    }

    RayWorkload per_ray;
    for (std::size_t r = 0; r < rays.size(); ++r) {
        if (record) {
            // Snapshot BEFORE the trace so backwardRays can replay the
            // exact jitter sequence of this ray.
            fallback_rngs_.push_back(rng);
        }
        out[r] = traceRay(rays[r], rng, /*record=*/false,
                          workload ? &per_ray : nullptr);
        if (workload)
            workload->mergeFrom(per_ray);
    }
    if (record)
        fallback_valid_ = true;
}

void
RadianceField::backwardRays(std::span<const Vec3f> dcolors)
{
    if (!fallback_valid_)
        panic("RadianceField::backwardRays without a recorded traceRays");
    if (dcolors.size() < fallback_rays_.size())
        panic("RadianceField::backwardRays: gradient span too small (%zu < %zu)",
              dcolors.size(), fallback_rays_.size());

    for (std::size_t r = 0; r < fallback_rays_.size(); ++r) {
        // Re-trace with record=true from the snapshot (the snapshot
        // reproduces the forward jitter bit for bit), then run the
        // scalar backward. Costs one extra forward per ray; fields with
        // a native tape override this.
        Pcg32 rng = fallback_rngs_[r];
        traceRay(fallback_rays_[r], rng, /*record=*/true);
        backwardLastRay(dcolors[r]);
    }
    fallback_valid_ = false;
}

} // namespace fusion3d::nerf
