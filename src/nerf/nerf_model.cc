#include "nerf/nerf_model.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fusion3d::nerf
{

namespace
{

/** Process-wide batch-occupancy counters behind the nerf.batch.* metrics. */
struct BatchStats
{
    std::atomic<std::uint64_t> samples{0};
    std::atomic<std::uint64_t> calls{0};

    BatchStats()
    {
        obs::MetricsRegistry::global().registerCollector(
            "nerf.batch", [this](obs::MetricSink &sink) {
                const double s =
                    static_cast<double>(samples.load(std::memory_order_relaxed));
                const double c =
                    static_cast<double>(calls.load(std::memory_order_relaxed));
                sink.counter("nerf.batch.samples", s);
                sink.counter("nerf.batch.calls", c);
                sink.gauge("nerf.batch.avg_batch", c > 0.0 ? s / c : 0.0);
            });
    }
};

BatchStats &
batchStats()
{
    static BatchStats stats;
    return stats;
}

/** Process-wide parallel-training counters behind nerf.train.*. */
struct TrainStats
{
    std::atomic<std::uint64_t> shard_calls{0};
    std::atomic<std::uint64_t> shards{0};
    std::atomic<std::uint64_t> sharded_samples{0};
    std::atomic<std::uint64_t> reduces{0};

    TrainStats()
    {
        obs::MetricsRegistry::global().registerCollector(
            "nerf.train", [this](obs::MetricSink &sink) {
                const double calls = static_cast<double>(
                    shard_calls.load(std::memory_order_relaxed));
                const double sh =
                    static_cast<double>(shards.load(std::memory_order_relaxed));
                sink.counter("nerf.train.shard_calls", calls);
                sink.counter("nerf.train.shards", sh);
                sink.counter("nerf.train.sharded_samples",
                             static_cast<double>(sharded_samples.load(
                                 std::memory_order_relaxed)));
                sink.counter("nerf.train.reduces",
                             static_cast<double>(
                                 reduces.load(std::memory_order_relaxed)));
                sink.gauge("nerf.train.avg_shards",
                           calls > 0.0 ? sh / calls : 0.0);
            });
    }
};

TrainStats &
trainStats()
{
    static TrainStats stats;
    return stats;
}

/** Inclusive-begin shard boundary; depends only on n and shard count. */
inline std::size_t
shardBegin(std::size_t n, std::size_t num_shards, std::size_t s)
{
    return s * n / num_shards;
}

/** dst += src, elementwise. */
inline void
addInto(std::vector<float> &dst, const std::vector<float> &src)
{
    const std::size_t n = dst.size();
    for (std::size_t i = 0; i < n; ++i)
        dst[i] += src[i];
}

/**
 * Merge per-shard gradient buffers with a serial pairwise tree:
 * (0+1), (2+3), ... then (0+2), ... The combination order depends only
 * on the shard count, so a given shard partition always produces the
 * same floating-point sums regardless of thread count or scheduling.
 */
void
treeReduce(std::vector<NerfShardArena> &shards, std::size_t count,
           std::vector<float> NerfShardArena::*member)
{
    for (std::size_t stride = 1; stride < count; stride *= 2)
        for (std::size_t i = 0; i + stride < count; i += 2 * stride)
            addInto(shards[i].*member, shards[i + stride].*member);
}

} // namespace

NerfModel::NerfModel(const NerfModelConfig &cfg, std::uint64_t seed)
    : cfg_(cfg)
{
    if (cfg.geoFeatures < 1)
        fatal("NerfModel needs at least one geometry feature");
    encoding_ = std::make_unique<HashGridEncoding>(cfg.grid, seed);
    density_net_ = std::make_unique<Mlp>(
        std::vector<int>{cfg.grid.encodedDims(), cfg.densityHidden, 1 + cfg.geoFeatures},
        seed + 1);
    color_net_ = std::make_unique<Mlp>(
        std::vector<int>{cfg.geoFeatures + cfg.shDims(), cfg.colorHidden, 3}, seed + 2);
}

PointWorkspace
NerfModel::makeWorkspace() const
{
    PointWorkspace ws;
    ws.encoding.resize(static_cast<std::size_t>(cfg_.grid.encodedDims()));
    ws.sh.resize(static_cast<std::size_t>(cfg_.shDims()));
    ws.colorIn.resize(static_cast<std::size_t>(cfg_.geoFeatures + cfg_.shDims()));
    ws.dDensityOut.resize(static_cast<std::size_t>(1 + cfg_.geoFeatures));
    ws.dColorOut.resize(3);
    ws.densityWs = density_net_->makeWorkspace();
    ws.colorWs = color_net_->makeWorkspace();
    return ws;
}

NerfBatchWorkspace
NerfModel::makeBatchWorkspace(std::size_t capacity) const
{
    NerfBatchWorkspace ws;
    ws.sh.resize(static_cast<std::size_t>(cfg_.shDims()));
    ws.densityWs = density_net_->makeBatchWorkspace(capacity);
    ws.colorWs = color_net_->makeBatchWorkspace(capacity);
    if (capacity > 0) {
        ws.encoding.resize(static_cast<std::size_t>(cfg_.grid.encodedDims()) * capacity);
        ws.colorIn.resize(
            static_cast<std::size_t>(cfg_.geoFeatures + cfg_.shDims()) * capacity);
        ws.rawSigma.resize(capacity);
        ws.dDensityOut.resize(static_cast<std::size_t>(1 + cfg_.geoFeatures) * capacity);
        ws.dColorOut.resize(3 * capacity);
        ws.fwdSigmas.resize(capacity);
        ws.fwdRgbs.resize(capacity);
        ws.capacity = capacity;
    }
    return ws;
}

void
NerfModel::forwardBatch(std::span<const Vec3f> pos, std::span<const Vec3f> dirs,
                        NerfBatchWorkspace &ws, std::span<float> sigmas,
                        std::span<Vec3f> rgbs, VertexVisitor *visitor) const
{
    const std::size_t n = pos.size();
    if (n == 0)
        return;
    if (dirs.size() < n || sigmas.size() < n || rgbs.size() < n)
        panic("NerfModel::forwardBatch span sizes inconsistent with batch %zu", n);

    F3D_TRACE_SPAN_ARG("nerf", "forward_batch", n);
    BatchStats &stats = batchStats();
    stats.samples.fetch_add(n, std::memory_order_relaxed);
    stats.calls.fetch_add(1, std::memory_order_relaxed);

    if (n > ws.capacity) {
        ws.encoding.resize(static_cast<std::size_t>(cfg_.grid.encodedDims()) * n);
        ws.colorIn.resize(static_cast<std::size_t>(cfg_.geoFeatures + cfg_.shDims()) * n);
        ws.rawSigma.resize(n);
        ws.dDensityOut.resize(static_cast<std::size_t>(1 + cfg_.geoFeatures) * n);
        ws.dColorOut.resize(3 * n);
        ws.fwdSigmas.resize(n);
        ws.fwdRgbs.resize(n);
        ws.capacity = n;
    }
    ws.sh.resize(static_cast<std::size_t>(cfg_.shDims()));

    // Stage II: level-major batched hash gather.
    encoding_->encodeBatch(pos, ws.encoding, visitor);

    // Stage III, density: one GEMM over the whole batch.
    const std::span<const float> enc{ws.encoding.data(),
                                     static_cast<std::size_t>(cfg_.grid.encodedDims()) * n};
    const std::span<const float> dens_out =
        density_net_->forwardBatch(enc, n, ws.densityWs);

    for (std::size_t j = 0; j < n; ++j) {
        ws.rawSigma[j] = dens_out[j];
        sigmas[j] = densityActivation(dens_out[j]);
    }

    // Color-net input: geometry feature rows are contiguous in the
    // feature-major density output (rows 1..geoFeatures), so they copy
    // in one block; SH rows scatter per sample.
    const std::size_t geo = static_cast<std::size_t>(cfg_.geoFeatures);
    std::copy_n(dens_out.begin() + n, geo * n, ws.colorIn.begin());
    const int sh_dims = cfg_.shDims();
    for (std::size_t j = 0; j < n; ++j) {
        shEncode(dirs[j], cfg_.shDegree, ws.sh);
        for (int i = 0; i < sh_dims; ++i)
            ws.colorIn[(geo + static_cast<std::size_t>(i)) * n + j] = ws.sh[i];
    }

    const std::span<const float> col_in{
        ws.colorIn.data(), (geo + static_cast<std::size_t>(sh_dims)) * n};
    const std::span<const float> col_out = color_net_->forwardBatch(col_in, n, ws.colorWs);

    for (std::size_t j = 0; j < n; ++j) {
        for (int i = 0; i < 3; ++i) {
            const float r = col_out[static_cast<std::size_t>(i) * n + j];
            // Numerically safe logistic sigmoid, as in forwardPoint.
            rgbs[j].at(i) = r >= 0.0f ? 1.0f / (1.0f + std::exp(-r))
                                      : std::exp(r) / (1.0f + std::exp(r));
        }
    }
}

void
NerfModel::backwardBatch(std::span<const Vec3f> pos, std::span<const Vec3f> dirs,
                         std::span<const float> dsigmas, std::span<const Vec3f> drgbs,
                         NerfBatchWorkspace &ws)
{
    const std::size_t n = pos.size();
    if (n == 0)
        return;
    if (dirs.size() < n || dsigmas.size() < n || drgbs.size() < n)
        panic("NerfModel::backwardBatch span sizes inconsistent with batch %zu", n);

    F3D_TRACE_SPAN_ARG("nerf", "backward_batch", n);

    // Recompute the batched forward to refresh the activation caches.
    // Size the recompute buffers before taking spans: forwardBatch's
    // capacity growth would reallocate them under a live span.
    if (ws.fwdSigmas.size() < n)
        ws.fwdSigmas.resize(n);
    if (ws.fwdRgbs.size() < n)
        ws.fwdRgbs.resize(n);
    forwardBatch(pos, dirs, ws, {ws.fwdSigmas.data(), n}, {ws.fwdRgbs.data(), n});

    // Color net: dL/draw = drgb * sigmoid'(raw).
    for (std::size_t j = 0; j < n; ++j) {
        for (int i = 0; i < 3; ++i) {
            const float s = ws.fwdRgbs[j][i];
            ws.dColorOut[static_cast<std::size_t>(i) * n + j] = drgbs[j][i] * s * (1.0f - s);
        }
    }
    color_net_->backwardBatch({ws.dColorOut.data(), 3 * n}, n, ws.colorWs);

    // Density net: raw-sigma row fused with the activation gradient,
    // geometry-feature rows come straight from the color net's input
    // gradient (contiguous rows 0..geoFeatures-1 of colorWs.dinput).
    for (std::size_t j = 0; j < n; ++j)
        ws.dDensityOut[j] =
            dsigmas[j] * densityActivationGrad(ws.rawSigma[j], ws.fwdSigmas[j]);
    const std::size_t geo = static_cast<std::size_t>(cfg_.geoFeatures);
    std::copy_n(ws.colorWs.dinput.begin(), geo * n, ws.dDensityOut.begin() + n);
    density_net_->backwardBatch(
        {ws.dDensityOut.data(), (1 + geo) * n}, n, ws.densityWs);

    // Encoding backward: level-major batched scatter into the tables.
    encoding_->backwardBatch(pos, {ws.densityWs.dinput.data(),
                                   static_cast<std::size_t>(cfg_.grid.encodedDims()) * n});
}

std::size_t
NerfModel::shardCount(std::size_t n)
{
    if (n == 0)
        return 0;
    return std::min(kMaxShards, (n + kShardGrain - 1) / kShardGrain);
}

void
NerfModel::forwardBatchParallel(std::span<const Vec3f> pos, std::span<const Vec3f> dirs,
                                NerfParallelWorkspace &ws, std::span<float> sigmas,
                                std::span<Vec3f> rgbs, ThreadPool *pool) const
{
    const std::size_t n = pos.size();
    if (n == 0)
        return;
    if (dirs.size() < n || sigmas.size() < n || rgbs.size() < n)
        panic("NerfModel::forwardBatchParallel span sizes inconsistent with batch %zu",
              n);

    const std::size_t num_shards = shardCount(n);
    if (ws.shards.size() < num_shards)
        ws.shards.resize(num_shards);

    TrainStats &stats = trainStats();
    stats.shard_calls.fetch_add(1, std::memory_order_relaxed);
    stats.shards.fetch_add(num_shards, std::memory_order_relaxed);
    stats.sharded_samples.fetch_add(n, std::memory_order_relaxed);

    const auto run_shard = [&](std::size_t s) {
        F3D_TRACE_SPAN_ARG("train", "shard", static_cast<std::int64_t>(s));
        const std::size_t b = shardBegin(n, num_shards, s);
        const std::size_t e = shardBegin(n, num_shards, s + 1);
        const std::size_t cnt = e - b;
        forwardBatch(pos.subspan(b, cnt), dirs.subspan(b, cnt), ws.shards[s].ws,
                     sigmas.subspan(b, cnt), rgbs.subspan(b, cnt));
    };
    if (pool && num_shards > 1) {
        pool->parallelFor(
            0, static_cast<int>(num_shards),
            [&](int b, int e) {
                for (int s = b; s < e; ++s)
                    run_shard(static_cast<std::size_t>(s));
            },
            1);
    } else {
        for (std::size_t s = 0; s < num_shards; ++s)
            run_shard(s);
    }
}

void
NerfModel::backwardShard(std::span<const Vec3f> pos, std::span<const Vec3f> dirs,
                         std::span<const float> dsigmas, std::span<const Vec3f> drgbs,
                         NerfShardArena &arena) const
{
    const std::size_t n = pos.size();
    NerfBatchWorkspace &ws = arena.ws;

    // Private MLP gradient buffers start at zero every call; assign()
    // on an already-sized vector reuses storage, so steady state is
    // allocation-free.
    arena.densityGrads.assign(density_net_->paramCount(), 0.0f);
    arena.colorGrads.assign(color_net_->paramCount(), 0.0f);

    // Recompute the shard's forward (recompute-in-backward), exactly as
    // backwardBatch does for the whole batch.
    if (ws.fwdSigmas.size() < n)
        ws.fwdSigmas.resize(n);
    if (ws.fwdRgbs.size() < n)
        ws.fwdRgbs.resize(n);
    forwardBatch(pos, dirs, ws, {ws.fwdSigmas.data(), n}, {ws.fwdRgbs.data(), n});

    for (std::size_t j = 0; j < n; ++j) {
        for (int i = 0; i < 3; ++i) {
            const float s = ws.fwdRgbs[j][i];
            ws.dColorOut[static_cast<std::size_t>(i) * n + j] =
                drgbs[j][i] * s * (1.0f - s);
        }
    }
    color_net_->backwardBatchInto({ws.dColorOut.data(), 3 * n}, n, ws.colorWs,
                                  arena.colorGrads);

    for (std::size_t j = 0; j < n; ++j)
        ws.dDensityOut[j] =
            dsigmas[j] * densityActivationGrad(ws.rawSigma[j], ws.fwdSigmas[j]);
    const std::size_t geo = static_cast<std::size_t>(cfg_.geoFeatures);
    std::copy_n(ws.colorWs.dinput.begin(), geo * n, ws.dDensityOut.begin() + n);
    density_net_->backwardBatchInto({ws.dDensityOut.data(), (1 + geo) * n}, n,
                                    ws.densityWs, arena.densityGrads);

    encoding_->backwardBatchInto(
        pos,
        {ws.densityWs.dinput.data(), static_cast<std::size_t>(cfg_.grid.encodedDims()) * n},
        arena.encodingGrads);
}

void
NerfModel::backwardBatchParallel(std::span<const Vec3f> pos, std::span<const Vec3f> dirs,
                                 std::span<const float> dsigmas,
                                 std::span<const Vec3f> drgbs, NerfParallelWorkspace &ws,
                                 ThreadPool *pool)
{
    const std::size_t n = pos.size();
    if (n == 0)
        return;
    if (dirs.size() < n || dsigmas.size() < n || drgbs.size() < n)
        panic("NerfModel::backwardBatchParallel span sizes inconsistent with batch %zu",
              n);

    F3D_TRACE_SPAN_ARG("nerf", "backward_batch", static_cast<std::int64_t>(n));

    const std::size_t num_shards = shardCount(n);
    if (ws.shards.size() < num_shards)
        ws.shards.resize(num_shards);

    TrainStats &stats = trainStats();
    stats.shard_calls.fetch_add(1, std::memory_order_relaxed);
    stats.shards.fetch_add(num_shards, std::memory_order_relaxed);
    stats.sharded_samples.fetch_add(n, std::memory_order_relaxed);

    const auto run_shard = [&](std::size_t s) {
        F3D_TRACE_SPAN_ARG("train", "shard", static_cast<std::int64_t>(s));
        const std::size_t b = shardBegin(n, num_shards, s);
        const std::size_t e = shardBegin(n, num_shards, s + 1);
        const std::size_t cnt = e - b;
        backwardShard(pos.subspan(b, cnt), dirs.subspan(b, cnt),
                      dsigmas.subspan(b, cnt), drgbs.subspan(b, cnt), ws.shards[s]);
    };
    if (pool && num_shards > 1) {
        pool->parallelFor(
            0, static_cast<int>(num_shards),
            [&](int b, int e) {
                for (int s = b; s < e; ++s)
                    run_shard(static_cast<std::size_t>(s));
            },
            1);
    } else {
        for (std::size_t s = 0; s < num_shards; ++s)
            run_shard(s);
    }

    // Deterministic reduction: serial pairwise tree over the MLP shard
    // buffers, then the level-major sparse merge for the hash grid. The
    // order depends only on the shard count, never on scheduling.
    {
        F3D_TRACE_SPAN_ARG("train", "reduce", static_cast<std::int64_t>(num_shards));
        stats.reduces.fetch_add(1, std::memory_order_relaxed);

        treeReduce(ws.shards, num_shards, &NerfShardArena::densityGrads);
        treeReduce(ws.shards, num_shards, &NerfShardArena::colorGrads);
        {
            const std::span<float> dg = density_net_->grads();
            const std::span<float> cg = color_net_->grads();
            const std::vector<float> &sd = ws.shards[0].densityGrads;
            const std::vector<float> &sc = ws.shards[0].colorGrads;
            for (std::size_t i = 0; i < dg.size(); ++i)
                dg[i] += sd[i];
            for (std::size_t i = 0; i < cg.size(); ++i)
                cg[i] += sc[i];
        }

        if (ws.accPtrs.size() < num_shards)
            ws.accPtrs.resize(num_shards);
        for (std::size_t s = 0; s < num_shards; ++s)
            ws.accPtrs[s] = &ws.shards[s].encodingGrads;
        encoding_->mergeGradShards({ws.accPtrs.data(), num_shards});
    }
}

void
NerfModel::queryDensityBatch(std::span<const Vec3f> pos, NerfBatchWorkspace &ws,
                             std::span<float> sigmas) const
{
    const std::size_t n = pos.size();
    if (n == 0)
        return;
    if (sigmas.size() < n)
        panic("NerfModel::queryDensityBatch output span too small");

    const std::size_t enc_dims = static_cast<std::size_t>(cfg_.grid.encodedDims());
    if (ws.encoding.size() < enc_dims * n)
        ws.encoding.resize(enc_dims * n);
    encoding_->encodeBatch(pos, ws.encoding);
    const std::span<const float> out = density_net_->forwardBatch(
        {ws.encoding.data(), enc_dims * n}, n, ws.densityWs);
    for (std::size_t j = 0; j < n; ++j)
        sigmas[j] = densityActivation(out[j]);
}

void
NerfModel::queryDensityBatchParallel(std::span<const Vec3f> pos,
                                     NerfParallelWorkspace &ws, std::span<float> sigmas,
                                     ThreadPool *pool) const
{
    const std::size_t n = pos.size();
    if (n == 0)
        return;
    if (sigmas.size() < n)
        panic("NerfModel::queryDensityBatchParallel output span too small");

    const std::size_t num_shards = shardCount(n);
    if (ws.shards.size() < num_shards)
        ws.shards.resize(num_shards);

    const auto run_shard = [&](std::size_t s) {
        const std::size_t b = shardBegin(n, num_shards, s);
        const std::size_t e = shardBegin(n, num_shards, s + 1);
        queryDensityBatch(pos.subspan(b, e - b), ws.shards[s].ws,
                          sigmas.subspan(b, e - b));
    };
    if (pool && num_shards > 1) {
        pool->parallelFor(
            0, static_cast<int>(num_shards),
            [&](int b, int e) {
                for (int s = b; s < e; ++s)
                    run_shard(static_cast<std::size_t>(s));
            },
            1);
    } else {
        for (std::size_t s = 0; s < num_shards; ++s)
            run_shard(s);
    }
}

float
NerfModel::densityActivation(float raw)
{
    // Exponential activation as in Instant-NGP, clamped for stability.
    return std::exp(std::clamp(raw, -15.0f, 10.0f));
}

float
NerfModel::densityActivationGrad(float raw, float sigma)
{
    // d/draw exp(raw) = exp(raw); zero outside the clamp range.
    if (raw <= -15.0f || raw >= 10.0f)
        return 0.0f;
    return sigma;
}

PointEval
NerfModel::forwardPoint(const Vec3f &pos, const Vec3f &dir, PointWorkspace &ws,
                        VertexVisitor *visitor) const
{
    encoding_->encode(pos, ws.encoding, visitor);
    const std::span<const float> dens_out = density_net_->forward(ws.encoding, ws.densityWs);

    ws.rawSigma = dens_out[0];
    PointEval pe;
    pe.sigma = densityActivation(ws.rawSigma);

    shEncode(dir, cfg_.shDegree, ws.sh);
    for (int i = 0; i < cfg_.geoFeatures; ++i)
        ws.colorIn[static_cast<std::size_t>(i)] = dens_out[static_cast<std::size_t>(i) + 1];
    for (int i = 0; i < cfg_.shDims(); ++i)
        ws.colorIn[static_cast<std::size_t>(cfg_.geoFeatures + i)] = ws.sh[i];

    const std::span<const float> col_out = color_net_->forward(ws.colorIn, ws.colorWs);
    for (int i = 0; i < 3; ++i) {
        ws.rawRgb[i] = col_out[static_cast<std::size_t>(i)];
        // Numerically safe logistic sigmoid.
        const float r = col_out[static_cast<std::size_t>(i)];
        pe.rgb.at(i) = r >= 0.0f ? 1.0f / (1.0f + std::exp(-r))
                                 : std::exp(r) / (1.0f + std::exp(r));
    }
    return pe;
}

float
NerfModel::queryDensity(const Vec3f &pos, PointWorkspace &ws) const
{
    encoding_->encode(pos, ws.encoding);
    const std::span<const float> out = density_net_->forward(ws.encoding, ws.densityWs);
    return densityActivation(out[0]);
}

void
NerfModel::backwardPoint(const Vec3f &pos, const Vec3f &dir, float dsigma,
                         const Vec3f &drgb, PointWorkspace &ws)
{
    // Recompute the forward pass to refresh the activation caches.
    const PointEval pe = forwardPoint(pos, dir, ws);

    // Color net backward: dL/draw = drgb * sigmoid'(raw).
    for (int i = 0; i < 3; ++i) {
        const float s = pe.rgb[i];
        ws.dColorOut[static_cast<std::size_t>(i)] = drgb[i] * s * (1.0f - s);
    }
    color_net_->backward(ws.dColorOut, ws.colorWs);

    // Density net backward: raw-sigma grad fused with the activation,
    // geometry features receive the color net's input gradient.
    ws.dDensityOut[0] = dsigma * densityActivationGrad(ws.rawSigma, pe.sigma);
    for (int i = 0; i < cfg_.geoFeatures; ++i)
        ws.dDensityOut[static_cast<std::size_t>(i) + 1] =
            ws.colorWs.dinput[static_cast<std::size_t>(i)];
    density_net_->backward(ws.dDensityOut, ws.densityWs);

    // Encoding backward: scatter into the hash tables.
    encoding_->backward(pos, ws.densityWs.dinput);
}

void
NerfModel::zeroGrads()
{
    encoding_->zeroGrads();
    density_net_->zeroGrads();
    color_net_->zeroGrads();
}

std::size_t
NerfModel::paramCount() const
{
    return encoding_->paramCount() + density_net_->paramCount() + color_net_->paramCount();
}

std::uint64_t
NerfModel::macsPerPoint() const
{
    return density_net_->forwardMacs() + color_net_->forwardMacs();
}

void
NerfModel::setInferenceQuant(QuantMode mode, bool dropFp32)
{
    encoding_->buildQuantized(mode);
    density_net_->buildQuantized(mode);
    color_net_->buildQuantized(mode);
    if (dropFp32 && mode != QuantMode::fp32) {
        encoding_->dropFp32Weights();
        density_net_->dropFp32Weights();
        color_net_->dropFp32Weights();
    }
}

std::size_t
NerfModel::residentParamBytes() const
{
    return encoding_->residentParamBytes() +
           density_net_->residentParamBytes() +
           color_net_->residentParamBytes();
}

} // namespace fusion3d::nerf
