/**
 * @file
 * A small fully connected network with ReLU hidden activations, exactly
 * the "tiny MLP" of the Instant-NGP pipeline that Stage III evaluates
 * per sampled point. Forward caches activations in a caller-provided
 * workspace so backward can run sample-by-sample without heap churn.
 */

#ifndef FUSION3D_NERF_MLP_H_
#define FUSION3D_NERF_MLP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/quant.h"

namespace fusion3d::nerf
{

/** Per-sample activation cache reused across forward/backward calls. */
struct MlpWorkspace
{
    /** Post-activation of every layer; [0] is the input copy. */
    std::vector<std::vector<float>> activations;
    /** Pre-activation (z) of every non-input layer. */
    std::vector<std::vector<float>> preacts;
    /** dL/d(input), filled by backward(). */
    std::vector<float> dinput;
    /** Scratch delta buffers. */
    std::vector<float> delta_a;
    std::vector<float> delta_b;
};

/**
 * Activation cache for a whole batch of N samples. All matrices are
 * stored feature-major — value of feature i for sample n lives at
 * [i * N + n] — so the GEMM inner loops stream contiguous samples while
 * each weight is loaded once and reused across the batch. Buffers grow
 * on demand and are never shrunk, so a reused workspace allocates only
 * on its largest batch.
 */
struct MlpBatchWorkspace
{
    /** Allocated batch capacity (samples). */
    std::size_t capacity = 0;
    /** Batch size of the last forwardBatch() on this workspace. */
    std::size_t count = 0;
    /** Post-activations per layer, feature-major; [0] is the input copy. */
    std::vector<std::vector<float>> activations;
    /** Pre-activations (z) per non-input layer, feature-major. */
    std::vector<std::vector<float>> preacts;
    /** dL/d(input), feature-major [inputDim][N]; filled by backwardBatch(). */
    std::vector<float> dinput;
    /** Scratch delta matrices, [widest][N]. */
    std::vector<float> delta_a;
    std::vector<float> delta_b;
    /** Per-layer weight dequantization scratch of the quantized
     *  inference path (largest layer's weight count; batch-independent). */
    std::vector<float> wdequant;
};

/**
 * Fully connected network. Layer sizes include input and output, e.g.
 * {32, 64, 16} is one hidden layer of 64. Hidden layers use ReLU, the
 * output layer is linear (callers apply their own output nonlinearity
 * so its gradient can fuse with the loss).
 */
class Mlp
{
  public:
    /**
     * @param layer_sizes Sizes including input and output (>= 2 entries).
     * @param seed        Weight-init RNG seed.
     */
    explicit Mlp(std::vector<int> layer_sizes, std::uint64_t seed = 2);

    int inputDim() const { return sizes_.front(); }
    int outputDim() const { return sizes_.back(); }
    int layerCount() const { return static_cast<int>(sizes_.size()) - 1; }

    /** Allocate a workspace sized for this network. */
    MlpWorkspace makeWorkspace() const;

    /** Allocate a batch workspace with room for @p capacity samples. */
    MlpBatchWorkspace makeBatchWorkspace(std::size_t capacity = 0) const;

    /**
     * Forward one sample.
     * @param input Input vector (inputDim values).
     * @param ws    Workspace; activations cached for backward().
     * @return View of the output activation (valid until next forward).
     */
    std::span<const float> forward(std::span<const float> input, MlpWorkspace &ws) const;

    /**
     * Backward one sample; must follow a forward() on the same workspace.
     * Accumulates weight/bias gradients into the internal gradient vector
     * and leaves dL/d(input) in ws.dinput.
     * @param dout dL/d(output), outputDim values.
     */
    void backward(std::span<const float> dout, MlpWorkspace &ws);

    /**
     * Forward a batch of @p n samples as a blocked GEMM: every weight
     * row is loaded once and broadcast across the batch, the inner loop
     * runs over contiguous samples. Per sample the accumulation order
     * is identical to forward() (bias first, then fan-in ascending), so
     * each column of the result is bit-exact with the scalar path and
     * independent of the batch it rides in.
     *
     * @param input Feature-major [inputDim][n] input matrix.
     * @param n     Batch size.
     * @param ws    Batch workspace; grown as needed, cached for backward.
     * @return View of the feature-major [outputDim][n] output matrix
     *         (valid until the next forwardBatch on @p ws).
     */
    std::span<const float> forwardBatch(std::span<const float> input, std::size_t n,
                                        MlpBatchWorkspace &ws) const;

    /**
     * Backward a batch; must follow a forwardBatch() on the same
     * workspace. Weight/bias gradients accumulate the whole batch's
     * outer products (summed sample-ascending) into the internal
     * gradient vector; dL/d(input) is left feature-major in ws.dinput.
     *
     * @param dout Feature-major [outputDim][n] output gradients.
     * @param n    Batch size; must equal ws.count.
     */
    void backwardBatch(std::span<const float> dout, std::size_t n, MlpBatchWorkspace &ws);

    /**
     * backwardBatch variant that accumulates into a caller-provided
     * gradient vector (same layout/length as grads()) instead of the
     * internal one, leaving the network state untouched. This is the
     * shard entry point of parallel training: each worker owns a
     * private gradient buffer, and the shard buffers are merged in a
     * fixed order afterwards, so no two threads ever write the same
     * accumulator.
     */
    void backwardBatchInto(std::span<const float> dout, std::size_t n,
                           MlpBatchWorkspace &ws, std::span<float> grads) const;

    /** Flat parameters: per layer, weights row-major [out][in] then biases. */
    std::span<float> params() { return params_; }
    std::span<const float> params() const { return params_; }
    std::span<float> grads() { return grads_; }

    void zeroGrads();
    std::size_t paramCount() const { return param_count_; }

    /** Multiply-accumulate count of one forward pass (for op accounting). */
    std::uint64_t forwardMacs() const;

    /**
     * Build the packed inference weight image for @p mode from the fp32
     * master weights (binary16 for fp16; per-layer-tensor symmetric
     * INT8 + scale for int8; biases stay fp32 in both). Afterwards
     * forwardBatch() dequantizes each layer into workspace scratch and
     * runs the same kernels, so the quantized path is bitwise identical
     * to a dequantize-then-fp32 oracle. fp32 discards any packed image
     * and restores the master-weight path. Scalar forward() and the
     * backward paths always use the fp32 master weights.
     */
    void buildQuantized(QuantMode mode);

    /** Numeric format the batched inference path reads weights in. */
    QuantMode quantMode() const { return quant_mode_; }

    /**
     * Release the fp32 master weights and gradients (the memory win of
     * a quantized serve replica). Requires a packed image (quantMode()
     * != fp32); afterwards the scalar forward() and every backward
     * entry point panic, and buildQuantized() can no longer change mode.
     */
    void dropFp32Weights();

    /** True until dropFp32Weights(). */
    bool hasFp32Weights() const { return has_fp32_; }

    /** Bytes of resident weight storage (fp32 master + packed image). */
    std::size_t residentParamBytes() const;

    /**
     * The params()-layout weight image the batched inference path
     * evaluates: a copy of params() in fp32 mode, otherwise the packed
     * image dequantized (what a dequantize-then-fp32 oracle would use).
     */
    std::vector<float> dequantizedParams() const;

  private:
    std::size_t weightOffset(int layer) const { return w_offsets_[layer]; }
    std::size_t biasOffset(int layer) const { return b_offsets_[layer]; }

    std::vector<int> sizes_;
    std::vector<std::size_t> w_offsets_;
    std::vector<std::size_t> b_offsets_;
    std::vector<float> params_;
    std::vector<float> grads_;

    /** Logical parameter count (stable across dropFp32Weights). */
    std::size_t param_count_ = 0;
    QuantMode quant_mode_ = QuantMode::fp32;
    bool has_fp32_ = true;
    /** Packed weight images (weights only, per-layer contiguous at
     *  qw_offsets_); biases stay fp32 in qbias_ at qb_offsets_. */
    std::vector<std::size_t> qw_offsets_;
    std::vector<std::size_t> qb_offsets_;
    std::vector<std::uint16_t> qw_fp16_;
    std::vector<std::int8_t> qw_int8_;
    std::vector<QuantScale> qscales_;
    std::vector<float> qbias_;
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_MLP_H_
