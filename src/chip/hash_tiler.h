/**
 * @file
 * Two-level hash tiling (Technique T4, Fig. 7(b)/(c)): the bank-mapping
 * policy that makes the eight vertex-feature fetches of every sampled
 * point land on eight *distinct* SRAM banks, deterministically.
 *
 * Level 2 ("interpolation level tiling"): the feature table is split
 * into four SRAM groups keyed by the vertex's (y, z) coordinate
 * parities. A point's eight corners take (y+dy, z+dz) with dy,dz in
 * {0,1}, so the four YZ-offset pairs land in the four distinct groups.
 *
 * Level 3 ("parity level tiling"): within a group, the two corners
 * differ only by +1 in x, and the Instant-NGP hash (x-prime = 1, other
 * primes odd, power-of-two table) flips the address parity under
 * x -> x+1; even/odd addresses live in separate banks.
 *
 * Together: corner (dx, dy, dz) -> bank, a bijection onto 8 banks for
 * every query point, eliminating all conflicts and allowing the
 * crossbar to be replaced by one-to-one wiring (Fig. 12(b)-(e)).
 *
 * The baseline policy is plain address interleaving (addr mod banks),
 * which suffers 1..8-cycle conflicts exactly as Sec. V-B describes.
 */

#ifndef FUSION3D_CHIP_HASH_TILER_H_
#define FUSION3D_CHIP_HASH_TILER_H_

#include <cstdint>

#include "common/vec.h"

namespace fusion3d::chip
{

/** Bank-mapping policy for Stage-II feature SRAM. */
enum class BankPolicy
{
    /** Baseline: bank = hash address mod number of banks. */
    ModuloInterleave,
    /** Level 2 + Level 3 tiling: YZ-parity group, X/address parity. */
    TwoLevelTiling,
};

/** Computes the SRAM bank of one vertex access. */
class HashTiler
{
  public:
    HashTiler(BankPolicy policy, std::uint32_t num_banks)
        : policy_(policy), num_banks_(num_banks)
    {}

    BankPolicy policy() const { return policy_; }
    std::uint32_t numBanks() const { return num_banks_; }

    /**
     * Bank of a vertex access.
     * @param coord   Integer vertex coordinate.
     * @param address Table-entry index (dense or hashed).
     */
    std::uint32_t
    bankOf(const Vec3i &coord, std::uint32_t address) const
    {
        if (policy_ == BankPolicy::ModuloInterleave)
            return address % num_banks_;
        // Level 2: YZ coordinate-parity group (2 bits).
        const std::uint32_t group =
            ((static_cast<std::uint32_t>(coord.y) & 1u) << 1) |
            (static_cast<std::uint32_t>(coord.z) & 1u);
        // Level 3: address parity (== x parity within a group).
        const std::uint32_t parity = address & 1u;
        return (group << 1) | parity;
    }

    /**
     * Row within the bank, for capacity accounting: the tiled layout
     * stores each parity/group partition contiguously.
     */
    std::uint32_t
    rowOf(std::uint32_t address) const
    {
        if (policy_ == BankPolicy::ModuloInterleave)
            return address / num_banks_;
        return address >> 1; // per-parity sub-table
    }

  private:
    BankPolicy policy_;
    std::uint32_t num_banks_;
};

} // namespace fusion3d::chip

#endif // FUSION3D_CHIP_HASH_TILER_H_
