/**
 * @file
 * Example: explore the off-chip bandwidth design space — the deployment
 * question the paper opens with. For a model size and a coverage
 * boundary of your choice, report the bandwidth a 2-second training run
 * needs and whether it fits common edge interfaces, plus the
 * voltage/frequency operating points that trade power for speed.
 *
 * Usage: bandwidth_explorer [log2_table_size] [levels]
 */

#include <cstdio>
#include <string>

#include "chip/config.h"
#include "chip/perf_model.h"
#include "chip/tech_model.h"
#include "common/logging.h"

using namespace fusion3d;

int
main(int argc, char **argv)
{
    const int log2_table = argc > 1 ? std::atoi(argv[1]) : 16;
    const int levels = argc > 2 ? std::atoi(argv[2]) : 16;

    chip::BandwidthModel bm;
    bm.levels = levels;
    const double table_bytes =
        static_cast<double>(levels) * (1ull << log2_table) * 2.0 * 2.0;

    inform("model: %d levels x 2^%d entries x 2 fp16 features = %.2f MB of tables",
           levels, log2_table, table_bytes / (1024.0 * 1024.0));
    inform("on-chip table SRAM: %.0f KB", bm.onchipTableBytes / 1024.0);

    struct InterfaceRow
    {
        const char *name;
        double gbs;
    };
    const InterfaceRow interfaces[] = {
        {"USB 3.2 Gen 1 (5 Gbps)", 0.625},
        {"USB 3.2 Gen 2 (10 Gbps)", 1.25},
        {"LPDDR4-1600", 17.0},
        {"LPDDR4X-4266", 34.1},
        {"GDDR6X", 231.0},
        {"HBM2", 510.0},
    };

    const struct
    {
        const char *name;
        chip::CoverageBoundary boundary;
    } boundaries[] = {
        {"end-to-end (this work)", chip::CoverageBoundary::EndToEnd},
        {"stages II+III on-chip", chip::CoverageBoundary::Stage23},
        {"stage II only", chip::CoverageBoundary::Stage2Only},
    };

    std::printf("\n%-26s %14s   fits...\n", "Coverage boundary", "needs GB/s");
    for (const auto &b : boundaries) {
        const double need = bm.requiredBandwidthGBs(b.boundary, table_bytes);
        std::printf("%-26s %14.2f   ", b.name, need);
        bool any = false;
        for (const InterfaceRow &itf : interfaces) {
            if (need <= itf.gbs) {
                std::printf("%s", itf.name);
                any = true;
                break;
            }
        }
        if (!any)
            std::printf("nothing in the list");
        std::printf("\n");
    }

    // Frequency/voltage trade-off at fixed work.
    const chip::ChipConfig cfg = chip::ChipConfig::scaledUp();
    const chip::TechModel tech(cfg);
    std::printf("\nOperating points (scaled-up chip):\n");
    std::printf("%8s %10s %10s %16s\n", "V", "MHz", "W", "rel. energy/op");
    const double base_epo = cfg.typicalPowerW / cfg.clockHz;
    for (double v : {0.7, 0.8, 0.9, 0.95, 1.0, 1.05}) {
        const double f = tech.frequencyAtVoltage(v);
        const double p = tech.powerAt(v, f);
        std::printf("%8.2f %10.0f %10.2f %16.2f\n", v, f / 1e6, p, (p / f) / base_epo);
    }
    return 0;
}
