#include "chip/fiem.h"

#include <cmath>
#include <limits>

namespace fusion3d::chip
{

float
fiemMultiply(Half feature, std::int32_t weight)
{
    const bool neg = (feature.signBit() != 0) != (weight < 0);

    if (feature.isNan())
        return std::numeric_limits<float>::quiet_NaN();
    if (feature.isInf()) {
        if (weight == 0)
            return std::numeric_limits<float>::quiet_NaN(); // inf * 0
        return neg ? -std::numeric_limits<float>::infinity()
                   : std::numeric_limits<float>::infinity();
    }
    if (weight == 0 || feature.isZero())
        return neg ? -0.0f : 0.0f;

    // Significand x |integer|: at most 11 x 31 bits; for the hardware's
    // 8-bit weights this is <= 19 bits and therefore exact in float.
    const std::uint64_t mag =
        static_cast<std::uint64_t>(weight < 0 ? -static_cast<std::int64_t>(weight)
                                              : weight);
    const std::uint64_t product = static_cast<std::uint64_t>(feature.significand()) * mag;

    // Exponent combine: significand is sig * 2^(e-10).
    const int exp = feature.unbiasedExponent() - 10;
    const float magnitude = std::ldexp(static_cast<float>(product), exp);
    return neg ? -magnitude : magnitude;
}

Half
fiemMultiplyHalf(Half feature, std::int32_t weight)
{
    // The normalize/round output stage: round-to-nearest-even into
    // binary16, exactly what Half::fromFloat implements.
    return Half::fromFloat(fiemMultiply(feature, weight));
}

} // namespace fusion3d::chip
