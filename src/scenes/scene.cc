#include "scenes/scene.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fusion3d::scenes
{

namespace
{

float
sdfSphere(const Vec3f &p, const Vec3f &c, float r)
{
    return length(p - c) - r;
}

float
sdfBox(const Vec3f &p, const Vec3f &lo, const Vec3f &hi)
{
    const Vec3f c = (lo + hi) * 0.5f;
    const Vec3f h = (hi - lo) * 0.5f;
    const Vec3f q{std::fabs(p.x - c.x) - h.x, std::fabs(p.y - c.y) - h.y,
                  std::fabs(p.z - c.z) - h.z};
    const Vec3f qpos = compMax(q, Vec3f(0.0f));
    return length(qpos) + std::min(maxComp(q), 0.0f);
}

float
sdfTorus(const Vec3f &p, const Vec3f &c, float major, float minor)
{
    const float dx = p.x - c.x;
    const float dz = p.z - c.z;
    const float ring = std::sqrt(dx * dx + dz * dz) - major;
    const float dy = p.y - c.y;
    return std::sqrt(ring * ring + dy * dy) - minor;
}

float
sdfCylinderY(const Vec3f &p, const Vec3f &c, float radius, float half_height)
{
    const float dx = p.x - c.x;
    const float dz = p.z - c.z;
    const float radial = std::sqrt(dx * dx + dz * dz) - radius;
    const float axial = std::fabs(p.y - c.y) - half_height;
    const float ro = std::max(radial, 0.0f);
    const float ao = std::max(axial, 0.0f);
    return std::sqrt(ro * ro + ao * ao) + std::min(std::max(radial, axial), 0.0f);
}

} // namespace

float
Primitive::signedDistance(const Vec3f &p) const
{
    switch (type) {
      case Type::Sphere:
        return sdfSphere(p, a, b.x);
      case Type::Box:
        return sdfBox(p, a, b);
      case Type::Torus:
        return sdfTorus(p, a, b.x, b.y);
      case Type::CylinderY:
        return sdfCylinderY(p, a, b.x, b.y);
    }
    panic("Primitive::signedDistance: bad type");
}

float
Primitive::densityAt(const Vec3f &p) const
{
    const float d = signedDistance(p);
    // Logistic falloff across the surface: full density well inside,
    // zero well outside, smooth (and thus learnable) in between.
    const float t = -d / softness;
    if (t > 8.0f)
        return density;
    if (t < -8.0f)
        return 0.0f;
    return density / (1.0f + std::exp(-t));
}

Scene::Scene(std::string name, std::vector<Primitive> prims)
    : name_(std::move(name)), prims_(std::move(prims))
{
}

float
Scene::density(const Vec3f &p) const
{
    float acc = 0.0f;
    for (const Primitive &prim : prims_)
        acc += prim.densityAt(p);
    return acc;
}

Vec3f
Scene::albedo(const Vec3f &p) const
{
    float total = 0.0f;
    Vec3f color(0.0f);
    for (const Primitive &prim : prims_) {
        const float w = prim.densityAt(p);
        total += w;
        color += prim.color * w;
    }
    if (total <= 1e-6f)
        return Vec3f{1.0f, 1.0f, 1.0f};
    return color / total;
}

double
Scene::occupiedFraction(int res, float threshold) const
{
    std::size_t hits = 0;
    const float inv = 1.0f / static_cast<float>(res);
    for (int z = 0; z < res; ++z) {
        for (int y = 0; y < res; ++y) {
            for (int x = 0; x < res; ++x) {
                const Vec3f p{(static_cast<float>(x) + 0.5f) * inv,
                              (static_cast<float>(y) + 0.5f) * inv,
                              (static_cast<float>(z) + 0.5f) * inv};
                if (density(p) > threshold)
                    ++hits;
            }
        }
    }
    const double cells = static_cast<double>(res) * res * res;
    return static_cast<double>(hits) / cells;
}

} // namespace fusion3d::scenes
