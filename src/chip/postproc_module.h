/**
 * @file
 * Timing model of the Post-Processing Module (Stage III): the MLP
 * engine evaluating density/color per sampled point and the volumetric
 * rendering unit compositing samples into pixels. Sized (Sec. VI-C,
 * "Speedup Breakdown") so its throughput matches Stage II.
 */

#ifndef FUSION3D_CHIP_POSTPROC_MODULE_H_
#define FUSION3D_CHIP_POSTPROC_MODULE_H_

#include <cstdint>

#include "chip/config.h"
#include "common/types.h"

namespace fusion3d::chip
{

/** Stage-III cycle estimate. */
struct PostprocRunStats
{
    Cycles mlpCycles = 0;
    Cycles renderCycles = 0;
    Cycles totalCycles = 0; // MLP and render are pipelined: the max
    std::uint64_t macs = 0;
};

/** Stage-III timing model. */
class PostprocModule
{
  public:
    /**
     * @param cfg            Chip configuration (MAC count, render rate).
     * @param macs_per_point MLP multiply-accumulates per sampled point
     *                       (density + color networks, forward).
     */
    PostprocModule(const ChipConfig &cfg, std::uint64_t macs_per_point)
        : cfg_(cfg), macs_per_point_(macs_per_point)
    {}

    std::uint64_t macsPerPoint() const { return macs_per_point_; }

    /**
     * Inference cost: one forward MLP pass per point plus compositing.
     * @param points     Valid samples entering Stage III.
     * @param composited Samples actually composited (early termination
     *                   makes this <= points).
     */
    PostprocRunStats inference(std::uint64_t points, std::uint64_t composited) const;

    /**
     * Training cost: forward + input-gradient + weight-gradient passes
     * (3x the MACs) plus the compositing forward/backward sweeps.
     */
    PostprocRunStats training(std::uint64_t points, std::uint64_t composited) const;

  private:
    PostprocRunStats run(std::uint64_t points, std::uint64_t composited,
                         int mlp_passes, int render_passes) const;

    ChipConfig cfg_;
    std::uint64_t macs_per_point_;
};

} // namespace fusion3d::chip

#endif // FUSION3D_CHIP_POSTPROC_MODULE_H_
