#include "nerf/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/half.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/simd.h"

namespace fusion3d::nerf
{

Mlp::Mlp(std::vector<int> layer_sizes, std::uint64_t seed)
    : sizes_(std::move(layer_sizes))
{
    if (sizes_.size() < 2)
        fatal("Mlp needs at least input and output layers");
    for (int s : sizes_) {
        if (s < 1)
            fatal("Mlp layer sizes must be positive");
    }

    std::size_t total = 0;
    w_offsets_.resize(layerCount());
    b_offsets_.resize(layerCount());
    for (int l = 0; l < layerCount(); ++l) {
        const std::size_t fan_in = static_cast<std::size_t>(sizes_[l]);
        const std::size_t fan_out = static_cast<std::size_t>(sizes_[l + 1]);
        w_offsets_[l] = total;
        total += fan_in * fan_out;
        b_offsets_[l] = total;
        total += fan_out;
    }
    params_.resize(total);
    grads_.assign(total, 0.0f);
    param_count_ = total;

    // He-uniform init for the ReLU layers.
    Pcg32 rng(seed, 0xcafef00dd15ea5e5ULL);
    for (int l = 0; l < layerCount(); ++l) {
        const int fan_in = sizes_[l];
        const int fan_out = sizes_[l + 1];
        const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
        float *w = params_.data() + w_offsets_[l];
        for (int i = 0; i < fan_out * fan_in; ++i)
            w[i] = rng.nextRange(-bound, bound);
        float *b = params_.data() + b_offsets_[l];
        std::fill(b, b + fan_out, 0.0f);
    }
}

namespace
{

/** Grow @p ws to hold @p n samples; never shrinks. */
void
growBatchWorkspace(const std::vector<int> &sizes, MlpBatchWorkspace &ws, std::size_t n)
{
    if (n <= ws.capacity && !ws.activations.empty())
        return;
    const std::size_t layers = sizes.size() - 1;
    const std::size_t cap = std::max(n, ws.capacity);
    ws.activations.resize(sizes.size());
    ws.preacts.resize(layers);
    for (std::size_t i = 0; i < sizes.size(); ++i)
        ws.activations[i].resize(static_cast<std::size_t>(sizes[i]) * cap);
    for (std::size_t l = 0; l < layers; ++l)
        ws.preacts[l].resize(static_cast<std::size_t>(sizes[l + 1]) * cap);
    ws.dinput.resize(static_cast<std::size_t>(sizes.front()) * cap);
    const int widest = *std::max_element(sizes.begin(), sizes.end());
    ws.delta_a.resize(static_cast<std::size_t>(widest) * cap);
    ws.delta_b.resize(static_cast<std::size_t>(widest) * cap);
    ws.capacity = cap;
}

} // namespace

MlpWorkspace
Mlp::makeWorkspace() const
{
    MlpWorkspace ws;
    ws.activations.resize(sizes_.size());
    ws.preacts.resize(layerCount());
    for (std::size_t i = 0; i < sizes_.size(); ++i)
        ws.activations[i].resize(static_cast<std::size_t>(sizes_[i]));
    for (int l = 0; l < layerCount(); ++l)
        ws.preacts[l].resize(static_cast<std::size_t>(sizes_[l + 1]));
    ws.dinput.resize(static_cast<std::size_t>(sizes_.front()));
    const int widest = *std::max_element(sizes_.begin(), sizes_.end());
    ws.delta_a.resize(static_cast<std::size_t>(widest));
    ws.delta_b.resize(static_cast<std::size_t>(widest));
    return ws;
}

MlpBatchWorkspace
Mlp::makeBatchWorkspace(std::size_t capacity) const
{
    MlpBatchWorkspace ws;
    growBatchWorkspace(sizes_, ws, capacity);
    return ws;
}

std::span<const float>
Mlp::forwardBatch(std::span<const float> input, std::size_t n, MlpBatchWorkspace &ws) const
{
    if (n == 0) {
        ws.count = 0;
        return {};
    }
    if (input.size() < static_cast<std::size_t>(inputDim()) * n)
        panic("Mlp::forwardBatch input too small (%zu < %zu)", input.size(),
              static_cast<std::size_t>(inputDim()) * n);

    growBatchWorkspace(sizes_, ws, n);
    ws.count = n;
    std::copy_n(input.begin(), static_cast<std::size_t>(inputDim()) * n,
                ws.activations[0].begin());

    // One dispatch lookup per call; lanes map to samples, so every
    // variant preserves each column's accumulation order (bias first,
    // then fan-in ascending — the exact order of the scalar forward()).
    const simd::Kernels &kern = simd::kernels();
    const bool quantized = quant_mode_ != QuantMode::fp32;
    if (!quantized && !has_fp32_)
        panic("Mlp::forwardBatch fp32 weights dropped without a packed image");

    // All matrices are feature-major with stride n for this call.
    for (int l = 0; l < layerCount(); ++l) {
        const int fan_in = sizes_[l];
        const int fan_out = sizes_[l + 1];
        const float *w;
        const float *b;
        if (quantized) {
            // Dequantize the layer's weight matrix into scratch and run
            // the same fp32 kernel: bitwise identical to evaluating the
            // dequantized image directly, at one extra pass per layer
            // over a few KB of weights (amortized across the batch).
            const std::size_t wcount =
                static_cast<std::size_t>(fan_in) * fan_out;
            if (ws.wdequant.size() < wcount)
                ws.wdequant.resize(wcount);
            if (quant_mode_ == QuantMode::fp16) {
                const std::uint16_t *q = qw_fp16_.data() + qw_offsets_[l];
                for (std::size_t k = 0; k < wcount; ++k)
                    ws.wdequant[k] = simd::halfBitsToFloat(q[k]);
            } else {
                const std::int8_t *q = qw_int8_.data() + qw_offsets_[l];
                const float s = qscales_[l].scale;
                for (std::size_t k = 0; k < wcount; ++k)
                    ws.wdequant[k] = static_cast<float>(q[k]) * s;
            }
            w = ws.wdequant.data();
            b = qbias_.data() + qb_offsets_[l];
        } else {
            w = params_.data() + w_offsets_[l];
            b = params_.data() + b_offsets_[l];
        }
        const float *x = ws.activations[l].data();
        float *z = ws.preacts[l].data();
        float *a = ws.activations[l + 1].data();
        const bool hidden = l != layerCount() - 1;
        kern.mlpLayer(w, b, x, z, a, fan_in, fan_out, n, hidden);
    }
    return {ws.activations.back().data(), static_cast<std::size_t>(outputDim()) * n};
}

void
Mlp::backwardBatch(std::span<const float> dout, std::size_t n, MlpBatchWorkspace &ws)
{
    backwardBatchInto(dout, n, ws, grads_);
}

void
Mlp::backwardBatchInto(std::span<const float> dout, std::size_t n,
                       MlpBatchWorkspace &ws, std::span<float> grads) const
{
    if (n == 0)
        return;
    if (n != ws.count)
        panic("Mlp::backwardBatch batch size mismatch (%zu != %zu)", n, ws.count);
    if (dout.size() < static_cast<std::size_t>(outputDim()) * n)
        panic("Mlp::backwardBatch gradient too small");
    if (!has_fp32_)
        panic("Mlp::backwardBatchInto requires fp32 weights (dropped)");
    if (grads.size() != param_count_)
        panic("Mlp::backwardBatchInto gradient vector mismatch (%zu != %zu)",
              grads.size(), param_count_);

    float *delta = ws.delta_a.data();
    float *next_delta = ws.delta_b.data();
    std::copy_n(dout.begin(), static_cast<std::size_t>(outputDim()) * n, delta);

    for (int l = layerCount() - 1; l >= 0; --l) {
        const int fan_in = sizes_[l];
        const int fan_out = sizes_[l + 1];
        const float *w = params_.data() + w_offsets_[l];
        float *gw = grads.data() + w_offsets_[l];
        float *gb = grads.data() + b_offsets_[l];
        const float *x = ws.activations[l].data();
        const float *z = ws.preacts[l].data();
        const bool hidden = l != layerCount() - 1;

        if (hidden) {
            const std::size_t count = static_cast<std::size_t>(fan_out) * n;
            for (std::size_t k = 0; k < count; ++k) {
                if (z[k] <= 0.0f)
                    delta[k] = 0.0f;
            }
        }

        std::fill_n(next_delta, static_cast<std::size_t>(fan_in) * n, 0.0f);
        for (int o = 0; o < fan_out; ++o) {
            const float *drow = delta + static_cast<std::size_t>(o) * n;
            float bias_acc = 0.0f;
            for (std::size_t j = 0; j < n; ++j)
                bias_acc += drow[j];
            gb[o] += bias_acc;

            const float *wrow = w + static_cast<std::size_t>(o) * fan_in;
            float *gwrow = gw + static_cast<std::size_t>(o) * fan_in;
            for (int i = 0; i < fan_in; ++i) {
                const float *xrow = x + static_cast<std::size_t>(i) * n;
                float *ndrow = next_delta + static_cast<std::size_t>(i) * n;
                const float wv = wrow[i];
                float gacc = 0.0f;
                for (std::size_t j = 0; j < n; ++j) {
                    gacc += drow[j] * xrow[j];
                    ndrow[j] += drow[j] * wv;
                }
                gwrow[i] += gacc;
            }
        }
        std::swap(delta, next_delta);
    }

    std::copy_n(delta, static_cast<std::size_t>(inputDim()) * n, ws.dinput.begin());
}

std::span<const float>
Mlp::forward(std::span<const float> input, MlpWorkspace &ws) const
{
    if (input.size() < static_cast<std::size_t>(inputDim()))
        panic("Mlp::forward input too small (%zu < %d)", input.size(), inputDim());
    if (!has_fp32_)
        panic("Mlp::forward requires fp32 weights (dropped)");

    std::copy_n(input.begin(), inputDim(), ws.activations[0].begin());

    for (int l = 0; l < layerCount(); ++l) {
        const int fan_in = sizes_[l];
        const int fan_out = sizes_[l + 1];
        const float *w = params_.data() + w_offsets_[l];
        const float *b = params_.data() + b_offsets_[l];
        const float *x = ws.activations[l].data();
        float *z = ws.preacts[l].data();
        float *a = ws.activations[l + 1].data();
        const bool hidden = l != layerCount() - 1;

        for (int o = 0; o < fan_out; ++o) {
            const float *wrow = w + static_cast<std::size_t>(o) * fan_in;
            float acc = b[o];
            for (int i = 0; i < fan_in; ++i)
                acc += wrow[i] * x[i];
            z[o] = acc;
            a[o] = hidden ? std::max(acc, 0.0f) : acc;
        }
    }
    return {ws.activations.back().data(), static_cast<std::size_t>(outputDim())};
}

void
Mlp::backward(std::span<const float> dout, MlpWorkspace &ws)
{
    if (dout.size() < static_cast<std::size_t>(outputDim()))
        panic("Mlp::backward gradient too small");
    if (!has_fp32_)
        panic("Mlp::backward requires fp32 weights (dropped)");

    float *delta = ws.delta_a.data();
    float *next_delta = ws.delta_b.data();
    std::copy_n(dout.begin(), outputDim(), delta);

    for (int l = layerCount() - 1; l >= 0; --l) {
        const int fan_in = sizes_[l];
        const int fan_out = sizes_[l + 1];
        const float *w = params_.data() + w_offsets_[l];
        float *gw = grads_.data() + w_offsets_[l];
        float *gb = grads_.data() + b_offsets_[l];
        const float *x = ws.activations[l].data();
        const float *z = ws.preacts[l].data();
        const bool hidden = l != layerCount() - 1;

        // Fold the ReLU derivative into delta for hidden layers.
        if (hidden) {
            for (int o = 0; o < fan_out; ++o) {
                if (z[o] <= 0.0f)
                    delta[o] = 0.0f;
            }
        }

        std::fill_n(next_delta, fan_in, 0.0f);
        for (int o = 0; o < fan_out; ++o) {
            const float d = delta[o];
            if (d == 0.0f)
                continue;
            const float *wrow = w + static_cast<std::size_t>(o) * fan_in;
            float *gwrow = gw + static_cast<std::size_t>(o) * fan_in;
            gb[o] += d;
            for (int i = 0; i < fan_in; ++i) {
                gwrow[i] += d * x[i];
                next_delta[i] += d * wrow[i];
            }
        }
        std::swap(delta, next_delta);
    }

    std::copy_n(delta, inputDim(), ws.dinput.begin());
}

void
Mlp::zeroGrads()
{
    std::fill(grads_.begin(), grads_.end(), 0.0f);
}

void
Mlp::buildQuantized(QuantMode mode)
{
    if (!has_fp32_)
        panic("Mlp::buildQuantized requires fp32 master weights (dropped)");
    qw_offsets_.assign(layerCount(), 0);
    qb_offsets_.assign(layerCount(), 0);
    qw_fp16_.clear();
    qw_int8_.clear();
    qscales_.clear();
    qbias_.clear();
    quant_mode_ = mode;
    if (mode == QuantMode::fp32)
        return;

    std::size_t wtotal = 0, btotal = 0;
    for (int l = 0; l < layerCount(); ++l) {
        qw_offsets_[l] = wtotal;
        qb_offsets_[l] = btotal;
        wtotal += static_cast<std::size_t>(sizes_[l]) * sizes_[l + 1];
        btotal += static_cast<std::size_t>(sizes_[l + 1]);
    }
    qbias_.resize(btotal);
    qscales_.resize(layerCount());
    if (mode == QuantMode::fp16)
        qw_fp16_.resize(wtotal);
    else
        qw_int8_.resize(wtotal);

    for (int l = 0; l < layerCount(); ++l) {
        const std::size_t wcount =
            static_cast<std::size_t>(sizes_[l]) * sizes_[l + 1];
        const float *w = params_.data() + w_offsets_[l];
        const float *b = params_.data() + b_offsets_[l];
        std::copy_n(b, static_cast<std::size_t>(sizes_[l + 1]),
                    qbias_.begin() + qb_offsets_[l]);
        if (mode == QuantMode::fp16) {
            std::uint16_t *q = qw_fp16_.data() + qw_offsets_[l];
            for (std::size_t k = 0; k < wcount; ++k)
                q[k] = Half::fromFloat(w[k]).bits();
        } else {
            const QuantScale qs = computeScale({w, wcount});
            qscales_[l] = qs;
            const std::vector<std::int8_t> q = quantize({w, wcount}, qs);
            std::copy(q.begin(), q.end(), qw_int8_.begin() + qw_offsets_[l]);
        }
    }
}

void
Mlp::dropFp32Weights()
{
    if (quant_mode_ == QuantMode::fp32)
        panic("Mlp::dropFp32Weights needs a packed image (quantMode fp32)");
    params_.clear();
    params_.shrink_to_fit();
    grads_.clear();
    grads_.shrink_to_fit();
    has_fp32_ = false;
}

std::size_t
Mlp::residentParamBytes() const
{
    return params_.size() * sizeof(float) +
           qw_fp16_.size() * sizeof(std::uint16_t) +
           qw_int8_.size() * sizeof(std::int8_t) +
           qbias_.size() * sizeof(float) + qscales_.size() * sizeof(QuantScale);
}

std::vector<float>
Mlp::dequantizedParams() const
{
    if (quant_mode_ == QuantMode::fp32) {
        if (!has_fp32_)
            panic("Mlp::dequantizedParams fp32 weights dropped");
        return params_;
    }
    std::vector<float> out(param_count_, 0.0f);
    for (int l = 0; l < layerCount(); ++l) {
        const std::size_t wcount =
            static_cast<std::size_t>(sizes_[l]) * sizes_[l + 1];
        float *w = out.data() + w_offsets_[l];
        if (quant_mode_ == QuantMode::fp16) {
            const std::uint16_t *q = qw_fp16_.data() + qw_offsets_[l];
            for (std::size_t k = 0; k < wcount; ++k)
                w[k] = simd::halfBitsToFloat(q[k]);
        } else {
            const std::int8_t *q = qw_int8_.data() + qw_offsets_[l];
            const float s = qscales_[l].scale;
            for (std::size_t k = 0; k < wcount; ++k)
                w[k] = static_cast<float>(q[k]) * s;
        }
        std::copy_n(qbias_.begin() + qb_offsets_[l],
                    static_cast<std::size_t>(sizes_[l + 1]),
                    out.begin() + b_offsets_[l]);
    }
    return out;
}

std::uint64_t
Mlp::forwardMacs() const
{
    std::uint64_t macs = 0;
    for (int l = 0; l < layerCount(); ++l)
        macs += static_cast<std::uint64_t>(sizes_[l]) * sizes_[l + 1];
    return macs;
}

} // namespace fusion3d::nerf
