/**
 * @file
 * Minimal cycle-driven simulation kernel. Modules derive from Clocked
 * and are advanced in registration order once per cycle by a Simulator.
 * Fusion-3D's hardware models are trace-driven pipelines, so a simple
 * synchronous tick loop (rather than a full discrete-event queue) is
 * sufficient and keeps single-core simulation fast.
 */

#ifndef FUSION3D_SIM_CLOCKED_H_
#define FUSION3D_SIM_CLOCKED_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace fusion3d::sim
{

class Simulator;

/** Base class for anything advanced by the clock. */
class Clocked
{
  public:
    explicit Clocked(std::string name) : name_(std::move(name)) {}
    virtual ~Clocked() = default;

    Clocked(const Clocked &) = delete;
    Clocked &operator=(const Clocked &) = delete;

    /** Advance one cycle. @p now is the cycle number being executed. */
    virtual void tick(Cycles now) = 0;

    /** @return true once the module has drained all outstanding work. */
    virtual bool done() const = 0;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

/**
 * Synchronous simulator: ticks every registered module each cycle until
 * all modules report done() or a cycle limit is hit.
 */
class Simulator
{
  public:
    /** Register a module; the caller retains ownership. */
    void add(Clocked *m) { modules_.push_back(m); }

    /**
     * Run until every module is done.
     * @param max_cycles Safety limit; exceeding it aborts the run.
     * @return Number of cycles executed.
     */
    Cycles run(Cycles max_cycles = 1'000'000'000ULL);

    /** Run exactly @p n cycles regardless of done() status. */
    void runFor(Cycles n);

    Cycles now() const { return now_; }

  private:
    bool allDone() const;

    std::vector<Clocked *> modules_;
    Cycles now_ = 0;
};

} // namespace fusion3d::sim

#endif // FUSION3D_SIM_CLOCKED_H_
