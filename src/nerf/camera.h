/**
 * @file
 * Pinhole camera in the normalized model space. Stage I of the NeRF
 * pipeline generates one ray per rendered pixel from such a camera.
 */

#ifndef FUSION3D_NERF_CAMERA_H_
#define FUSION3D_NERF_CAMERA_H_

#include "common/ray.h"
#include "common/vec.h"

namespace fusion3d::nerf
{

/** A look-at pinhole camera. */
class Camera
{
  public:
    Camera() = default;

    /**
     * @param position     Eye position (normalized model coordinates).
     * @param target       Look-at point.
     * @param up           Approximate up vector.
     * @param vfov_degrees Vertical field of view.
     * @param width        Image width in pixels.
     * @param height       Image height in pixels.
     */
    Camera(const Vec3f &position, const Vec3f &target, const Vec3f &up,
           float vfov_degrees, int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }
    const Vec3f &position() const { return position_; }

    /**
     * Ray through pixel (x, y); @p jx, @p jy in [0,1) offset the sample
     * within the pixel (0.5/0.5 is the pixel center).
     */
    Ray rayForPixel(int x, int y, float jx = 0.5f, float jy = 0.5f) const;

    /**
     * Project a world-space point onto the image plane.
     * @param world Point to project.
     * @param px    Receives the (continuous) pixel x coordinate.
     * @param py    Receives the pixel y coordinate.
     * @param depth Receives the view-space depth along forward.
     * @return false if the point is behind the camera or outside the
     *         image bounds.
     */
    bool project(const Vec3f &world, float &px, float &py, float &depth) const;

    /**
     * Copy of this camera rendering at a different resolution (same
     * pose and vertical field of view). The serving layer's degrade
     * ladder uses this to halve resolution under deadline pressure.
     */
    Camera withResolution(int width, int height) const;

    /**
     * A camera orbiting the point @p center at distance @p radius,
     * elevation @p elev_deg, azimuth @p azim_deg — the standard rig the
     * synthetic datasets use.
     */
    static Camera orbit(const Vec3f &center, float radius, float azim_deg,
                        float elev_deg, float vfov_degrees, int width, int height);

  private:
    Vec3f position_{0.5f, 0.5f, -1.5f};
    Vec3f forward_{0.0f, 0.0f, 1.0f};
    Vec3f right_{1.0f, 0.0f, 0.0f};
    Vec3f up_{0.0f, 1.0f, 0.0f};
    float tan_half_fov_ = 0.5f;
    int width_ = 64;
    int height_ = 64;
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_CAMERA_H_
