#include "obs/slo.h"

#include <algorithm>
#include <chrono>

namespace fusion3d::obs
{

namespace
{

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

SloMonitor::SloMonitor(const SloConfig &config, BreachCallback on_breach)
    : config_(config), on_breach_(std::move(on_breach))
{
}

SloMonitor::~SloMonitor()
{
    if (registry_)
        registry_->unregisterCollector(collector_name_);
}

void
SloMonitor::record(double latency_ms, bool error, std::uint64_t request_id)
{
    recordAt(steadyNowNs(), latency_ms, error, request_id);
}

void
SloMonitor::recordAt(std::uint64_t now_ns, double latency_ms, bool error,
                     std::uint64_t request_id)
{
    SloWindowReport closed;
    bool breached = false;
    {
        std::lock_guard<std::mutex> lock(lock_);
        const std::uint64_t window_ns =
            static_cast<std::uint64_t>(config_.windowSeconds * 1e9);
        if (!window_open_) {
            window_open_ = true;
            window_end_ns_ = now_ns + window_ns;
        } else if (now_ns >= window_end_ns_) {
            breached = closeWindowLocked(closed);
            window_open_ = true;
            window_end_ns_ = now_ns + window_ns;
        }
        ++window_requests_;
        ++total_requests_;
        if (error) {
            ++window_errors_;
            ++total_errors_;
        }
        if (latency_ms > config_.targetP99Ms) {
            ++window_over_target_;
            ++total_over_target_;
        }
        window_latency_.sample(latency_ms);
        if (latency_ms >= window_worst_ms_) {
            window_worst_ms_ = latency_ms;
            window_worst_id_ = request_id;
        }
    }
    // Invoke outside the lock: the callback may dump the flight
    // recorder or log, both of which take their own locks.
    if (breached && on_breach_)
        on_breach_(closed);
}

void
SloMonitor::closeWindow()
{
    SloWindowReport closed;
    bool breached = false;
    {
        std::lock_guard<std::mutex> lock(lock_);
        if (!window_open_ || window_requests_ == 0)
            return;
        breached = closeWindowLocked(closed);
        window_open_ = false;
    }
    if (breached && on_breach_)
        on_breach_(closed);
}

bool
SloMonitor::closeWindowLocked(SloWindowReport &report)
{
    report.requests = window_requests_;
    report.errors = window_errors_;
    report.overTarget = window_over_target_;
    report.p99Ms = window_latency_.quantile(0.99);
    report.worstRequestId = window_worst_id_;
    report.worstLatencyMs = window_worst_ms_;
    const double n = static_cast<double>(std::max<std::uint64_t>(
        window_requests_, 1));
    report.latencyBurn = config_.latencyBudget > 0.0
                             ? (static_cast<double>(window_over_target_) / n) /
                                   config_.latencyBudget
                             : 0.0;
    report.errorBurn = config_.errorBudget > 0.0
                           ? (static_cast<double>(window_errors_) / n) /
                                 config_.errorBudget
                           : 0.0;
    report.breached =
        window_requests_ >= config_.minWindowRequests &&
        (report.latencyBurn >= config_.burnThreshold ||
         report.errorBurn >= config_.burnThreshold);
    ++windows_;
    if (report.breached)
        ++breaches_;
    last_ = report;
    window_requests_ = 0;
    window_errors_ = 0;
    window_over_target_ = 0;
    window_worst_id_ = 0;
    window_worst_ms_ = 0.0;
    window_latency_.reset();
    return report.breached;
}

std::uint64_t
SloMonitor::windowsClosed() const
{
    std::lock_guard<std::mutex> lock(lock_);
    return windows_;
}

std::uint64_t
SloMonitor::breaches() const
{
    std::lock_guard<std::mutex> lock(lock_);
    return breaches_;
}

SloWindowReport
SloMonitor::lastWindow() const
{
    std::lock_guard<std::mutex> lock(lock_);
    return last_;
}

void
SloMonitor::registerWith(MetricsRegistry &registry, const std::string &name)
{
    registry_ = &registry;
    collector_name_ = name;
    registry.registerCollector(name,
                               [this](MetricSink &sink) { collect(sink); });
}

void
SloMonitor::collect(MetricSink &sink) const
{
    std::lock_guard<std::mutex> lock(lock_);
    sink.gauge("slo.target_p99_ms", config_.targetP99Ms);
    sink.gauge("slo.budget.latency", config_.latencyBudget);
    sink.gauge("slo.budget.error", config_.errorBudget);
    sink.counter("slo.requests", static_cast<double>(total_requests_));
    sink.counter("slo.errors", static_cast<double>(total_errors_));
    sink.counter("slo.over_target", static_cast<double>(total_over_target_));
    sink.counter("slo.windows", static_cast<double>(windows_));
    sink.counter("slo.breaches", static_cast<double>(breaches_));
    sink.gauge("slo.last.latency_burn_rate", last_.latencyBurn);
    sink.gauge("slo.last.error_burn_rate", last_.errorBurn);
    sink.gauge("slo.last.p99_ms", last_.p99Ms);
    sink.gauge("slo.last.requests", static_cast<double>(last_.requests));
}

} // namespace fusion3d::obs
