/**
 * @file
 * Model-fleet serving bench: a 64-model fleet under zipf(1.1) traffic,
 * served twice through the RenderServer — once unconstrained (every
 * model resident, the per-tenant latency baseline) and once under a
 * registry memory budget that fits ~25 % of the fleet, where the tail
 * of the popularity curve is LRU-evicted and reloaded on demand.
 *
 * Reports the eviction hit-rate (acquires answered by a resident entry
 * vs reloads), reloads/s, eviction count, and per-tenant p99 latency
 * for both phases, plus one machine-readable JSON summary line
 * (prefixed "JSON:"). Exits non-zero when the fleet gates fail:
 *
 *  - hit-rate under the 25 % budget must stay >= 0.70 (zipf(1.1) puts
 *    ~0.76 of the mass on the top quarter of 64 models, so LRU keeping
 *    the head resident clears this with margin — a broken LRU or
 *    accounting bug does not);
 *  - no tenant's p99 may regress past 2x its unconstrained baseline
 *    (plus a small absolute floor to absorb scheduler noise on small
 *    CI runners): reload stalls must stay bounded and off the hot
 *    path, not serialize the fleet.
 *
 * Traffic is fully deterministic (PCG32 per tenant, identical request
 * sequences in both phases), so the two phases differ only in the
 * registry budget.
 *
 * Usage: bench_fleet [--quick] [requests_per_tenant]
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/simd.h"
#include "nerf/nerf_model.h"
#include "nerf/serialize.h"
#include "serve/model_registry.h"
#include "serve/scheduler.h"

using namespace fusion3d;

namespace
{

constexpr int kModels = 64;
constexpr int kBudgetModels = 16; // ~25 % of the fleet
constexpr int kTenants = 4;
constexpr double kZipfExponent = 1.1;
constexpr double kHitRateGate = 0.70;
constexpr double kP99Factor = 2.0;
/** Absolute slack on the p99 gate: tiny CI frames render in single-
 *  digit milliseconds, where one scheduler hiccup would otherwise
 *  dominate the ratio. */
constexpr double kP99FloorMs = 25.0;

nerf::NerfModelConfig
fleetModelConfig()
{
    nerf::NerfModelConfig mc;
    mc.grid.levels = 4;
    mc.grid.featuresPerLevel = 2;
    mc.grid.log2TableSize = 9;
    mc.grid.baseResolution = 4;
    mc.grid.maxResolution = 32;
    mc.geoFeatures = 7;
    mc.densityHidden = 16;
    mc.colorHidden = 16;
    mc.shDegree = 2;
    return mc;
}

std::string
modelName(int i)
{
    return strprintf("fleet%02d", i);
}

/** Zipf(kZipfExponent) sampler over model ranks [0, kModels). */
class ZipfSampler
{
  public:
    ZipfSampler()
    {
        cdf_.resize(kModels);
        double sum = 0.0;
        for (int k = 0; k < kModels; ++k) {
            sum += 1.0 / std::pow(static_cast<double>(k + 1), kZipfExponent);
            cdf_[static_cast<std::size_t>(k)] = sum;
        }
        for (double &c : cdf_)
            c /= sum;
    }

    int
    pick(Pcg32 &rng) const
    {
        const double u = static_cast<double>(rng.nextFloat());
        const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        return static_cast<int>(it - cdf_.begin());
    }

  private:
    std::vector<double> cdf_;
};

nerf::Camera
orbitFrame(int i, int size)
{
    return nerf::Camera::orbit({0.5f, 0.5f, 0.5f}, 1.4f, 35.0f, 20.0f,
                               static_cast<float>(i * 11 % 360), size, size);
}

serve::RegistryConfig
fleetRegistryConfig(std::size_t budget_bytes)
{
    serve::RegistryConfig rc;
    rc.occupancyResolution = 8;
    rc.backoffInitialMs = 0.1;
    rc.backoffMaxMs = 1.0;
    rc.memoryBudgetBytes = budget_bytes;
    return rc;
}

struct PhaseResult
{
    double seconds = 0.0;
    double fps = 0.0;
    double hitRate = 1.0;
    double reloadsPerS = 0.0;
    std::uint64_t reloads = 0;
    std::uint64_t evictions = 0;
    std::uint64_t rendered = 0;
    std::uint64_t failed = 0;
    /** p99 latency per tenant id, from the server's log2-bucket
     *  quantile estimator. */
    std::map<std::string, double> tenantP99Ms;
};

/**
 * Deploy the whole fleet from @p paths into a registry with
 * @p budget_bytes (0 = unconstrained), then replay the deterministic
 * zipf trace: kTenants closed-loop clients, @p per_tenant requests
 * each, sequences keyed by (seed, tenant) so both phases see byte-
 * identical traffic.
 */
PhaseResult
runPhase(const std::vector<std::string> &paths, std::size_t budget_bytes,
         int per_tenant, int size, std::uint64_t seed)
{
    serve::ModelRegistry registry(fleetRegistryConfig(budget_bytes));
    for (int i = 0; i < kModels; ++i)
        if (registry.addFromFile(modelName(i),
                                 paths[static_cast<std::size_t>(i)]) !=
            nerf::LoadStatus::ok)
            fatal("failed to deploy fleet model %d", i);

    serve::ServeConfig sc;
    sc.renderThreads = 2;
    sc.render.sampler.maxSamplesPerRay = 8;
    serve::RenderServer server(registry, sc);

    const ZipfSampler zipf;

    // Warm-up: the preload leaves the *last* deployed models resident,
    // not the zipf head, so a short unmeasured trace lets the LRU
    // converge before the hit-rate window opens (the gate is about
    // steady-state behaviour, not the one-off cold start).
    {
        Pcg32 rng(seed, 999);
        for (int i = 0; i < 80; ++i) {
            serve::RenderRequest req;
            req.model = modelName(zipf.pick(rng));
            req.tenant = "warmup";
            req.camera = orbitFrame(i, size);
            server.submit(req).get();
        }
    }

    const std::uint64_t hits0 = registry.acquireHits();
    const std::uint64_t reloads0 = registry.reloads();

    std::vector<std::uint64_t> rendered(kTenants, 0), failed(kTenants, 0);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int t = 0; t < kTenants; ++t) {
        clients.emplace_back([&, t]() {
            Pcg32 rng(seed, 100 + static_cast<std::uint64_t>(t));
            for (int i = 0; i < per_tenant; ++i) {
                serve::RenderRequest req;
                req.model = modelName(zipf.pick(rng));
                req.tenant = strprintf("tenant%d", t);
                req.camera = orbitFrame(i, size);
                const serve::Outcome out = server.submit(req).get().outcome;
                if (out == serve::Outcome::renderedFull ||
                    out == serve::Outcome::renderedHalf)
                    ++rendered[static_cast<std::size_t>(t)];
                else
                    ++failed[static_cast<std::size_t>(t)];
            }
        });
    }
    for (std::thread &c : clients)
        c.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    server.shutdown();

    PhaseResult r;
    r.seconds = seconds;
    r.fps = static_cast<double>(per_tenant * kTenants) / seconds;
    const std::uint64_t hits = registry.acquireHits() - hits0;
    r.reloads = registry.reloads() - reloads0;
    r.evictions = registry.evictions();
    r.hitRate = hits + r.reloads > 0
                    ? static_cast<double>(hits) /
                          static_cast<double>(hits + r.reloads)
                    : 1.0;
    r.reloadsPerS = static_cast<double>(r.reloads) / seconds;
    for (int t = 0; t < kTenants; ++t) {
        r.rendered += rendered[static_cast<std::size_t>(t)];
        r.failed += failed[static_cast<std::size_t>(t)];
        const std::string id = strprintf("tenant%d", t);
        r.tenantP99Ms[id] = server.stats().tenantLatencyQuantileMs(id, 0.99);
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    int per_tenant = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::atoi(argv[i]) > 0)
            per_tenant = std::atoi(argv[i]);
        else
            fatal("usage: %s [--quick] [requests_per_tenant]", argv[0]);
    }
    if (per_tenant == 0)
        per_tenant = quick ? 60 : 200;
    const int size = 16;
    const std::uint64_t seed = 0xf1ee7ULL;

    bench::banner("Model fleet: zipf(1.1) traffic, budgeted vs unconstrained");
    std::printf("%d models, budget fits %d, %d tenants x %d requests, "
                "%dx%d frames\n\n",
                kModels, kBudgetModels, kTenants, per_tenant, size, size);

    // Save the fleet's artifacts (tiny models, distinct weights).
    std::vector<std::string> paths;
    paths.reserve(kModels);
    for (int i = 0; i < kModels; ++i) {
        const nerf::NerfModel model(fleetModelConfig(),
                                    1000 + static_cast<std::uint64_t>(i));
        std::string path = strprintf("/tmp/f3d_bench_fleet_%02d.f3dm", i);
        if (!nerf::saveModel(model, path))
            fatal("cannot write fleet artifact %s", path.c_str());
        paths.push_back(std::move(path));
    }

    // Budget: kBudgetModels entries plus slack for one in flight, so
    // steady state keeps the zipf head resident.
    serve::ModelRegistry probe(fleetRegistryConfig(0));
    if (probe.addFromFile(modelName(0), paths[0]) != nerf::LoadStatus::ok)
        fatal("probe deploy failed");
    const std::size_t entry_bytes = probe.residentBytes();
    const std::size_t budget =
        static_cast<std::size_t>(kBudgetModels) * entry_bytes +
        entry_bytes / 2;

    const PhaseResult base = runPhase(paths, 0, per_tenant, size, seed);
    const PhaseResult fleet = runPhase(paths, budget, per_tenant, size, seed);

    std::printf("%-16s %12s %12s %10s %12s %10s\n", "phase", "frames/s",
                "hit rate", "reloads", "reloads/s", "evictions");
    bench::rule(78);
    std::printf("%-16s %12.2f %12.3f %10llu %12.2f %10llu\n", "unconstrained",
                base.fps, base.hitRate,
                static_cast<unsigned long long>(base.reloads), base.reloadsPerS,
                static_cast<unsigned long long>(base.evictions));
    std::printf("%-16s %12.2f %12.3f %10llu %12.2f %10llu\n", "budgeted-25%",
                fleet.fps, fleet.hitRate,
                static_cast<unsigned long long>(fleet.reloads),
                fleet.reloadsPerS,
                static_cast<unsigned long long>(fleet.evictions));
    std::printf("\n%-12s %18s %18s %10s\n", "tenant", "p99 base (ms)",
                "p99 budget (ms)", "ratio");
    bench::rule(62);

    bool fail = false;
    std::string tenants_json;
    for (const auto &[id, p99_base] : base.tenantP99Ms) {
        const double p99_fleet = fleet.tenantP99Ms.at(id);
        const double limit =
            std::max(kP99Factor * p99_base, p99_base + kP99FloorMs);
        const double ratio = p99_base > 0.0 ? p99_fleet / p99_base : 1.0;
        std::printf("%-12s %18.2f %18.2f %9.2fx%s\n", id.c_str(), p99_base,
                    p99_fleet, ratio, p99_fleet > limit ? "  REGRESSED" : "");
        if (p99_fleet > limit) {
            std::fprintf(stderr,
                         "FAIL: %s p99 %.2f ms vs baseline %.2f ms "
                         "(gate: <= max(%.1fx, +%.0f ms))\n",
                         id.c_str(), p99_fleet, p99_base, kP99Factor,
                         kP99FloorMs);
            fail = true;
        }
        tenants_json += strprintf(
            "%s\"%s\":{\"p99_baseline_ms\":%.3f,\"p99_budgeted_ms\":%.3f}",
            tenants_json.empty() ? "" : ",", id.c_str(), p99_base, p99_fleet);
    }
    bench::rule(62);

    if (fleet.hitRate < kHitRateGate) {
        std::fprintf(stderr, "FAIL: eviction hit-rate %.3f (gate: >= %.2f)\n",
                     fleet.hitRate, kHitRateGate);
        fail = true;
    }
    if (base.failed + fleet.failed > 0) {
        std::fprintf(stderr,
                     "FAIL: %llu request(s) not rendered on an unloaded "
                     "fleet\n",
                     static_cast<unsigned long long>(base.failed +
                                                     fleet.failed));
        fail = true;
    }

    std::printf("\nhit rate %.3f (gate >= %.2f), %llu reloads at %.2f/s, "
                "%llu evictions -> %s\n",
                fleet.hitRate, kHitRateGate,
                static_cast<unsigned long long>(fleet.reloads),
                fleet.reloadsPerS,
                static_cast<unsigned long long>(fleet.evictions),
                fail ? "FAILED" : "ok");

    std::printf(
        "JSON: {\"bench\":\"fleet\",\"dispatch\":\"%s\",\"quick\":%s,\"models\":%d,"
        "\"budget_models\":%d,\"budget_bytes\":%zu,\"tenants\":%d,"
        "\"requests_per_tenant\":%d,\"fps_baseline\":%.3f,"
        "\"fps_budgeted\":%.3f,\"hit_rate\":%.4f,\"hit_rate_gate\":%.2f,"
        "\"reloads\":%llu,\"reloads_per_s\":%.3f,\"evictions\":%llu,"
        "\"tenant_p99\":{%s},\"p99_factor_gate\":%.1f,\"ok\":%s}\n",
        simd::dispatchName(), quick ? "true" : "false", kModels, kBudgetModels,
        budget, kTenants,
        per_tenant, base.fps, fleet.fps, fleet.hitRate, kHitRateGate,
        static_cast<unsigned long long>(fleet.reloads), fleet.reloadsPerS,
        static_cast<unsigned long long>(fleet.evictions), tenants_json.c_str(),
        kP99Factor, fail ? "false" : "true");

    for (const std::string &p : paths)
        std::remove(p.c_str());
    return fail ? 1 : 0;
}
