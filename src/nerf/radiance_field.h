/**
 * @file
 * Abstract trainable radiance field. Both the single-model pipeline
 * (one chip) and the Mixture-of-Experts model (multi-chip, Technique T3)
 * implement this interface, so the Trainer and the evaluation harness
 * are agnostic to which one they drive.
 */

#ifndef FUSION3D_NERF_RADIANCE_FIELD_H_
#define FUSION3D_NERF_RADIANCE_FIELD_H_

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "common/ray.h"
#include "common/rng.h"
#include "common/vec.h"
#include "nerf/sampler.h"

namespace fusion3d
{
class Image;
class ThreadPool;
}

namespace fusion3d::nerf
{

class Camera;

/** Result of tracing one ray through a radiance field. */
struct RayEval
{
    Vec3f color;
    /** Valid (occupancy-surviving) samples evaluated. */
    int samples = 0;
    /** Candidate samples before occupancy filtering. */
    int candidates = 0;
    /** Samples actually composited before early termination. */
    int composited = 0;
    /** Remaining transmittance behind the last sample. */
    float transmittance = 1.0f;
    /** Ray parameter of the first valid sample (+inf if none). The
     *  multi-chip I/O module orders expert partials by this depth. */
    float firstHitT = std::numeric_limits<float>::infinity();
};

/** A differentiable, trainable radiance field. */
class RadianceField
{
  public:
    virtual ~RadianceField() = default;

    /**
     * Render one ray.
     * @param ray      Ray in normalized model coordinates.
     * @param rng      Source of sampling jitter.
     * @param record   Keep the evaluation tape so backwardLastRay() works.
     * @param workload Optional Stage-I trace sink for the hardware model.
     */
    virtual RayEval traceRay(const Ray &ray, Pcg32 &rng, bool record,
                             RayWorkload *workload = nullptr) = 0;

    /** Backpropagate dL/d(color) of the most recently recorded ray. */
    virtual void backwardLastRay(const Vec3f &dcolor) = 0;

    /**
     * Render a batch of rays. The base implementation loops traceRay()
     * per ray in order (so jitter streams match the scalar path) and,
     * when @p record is set, snapshots the rng per ray so the base
     * backwardRays() can re-trace each ray. Batch-native fields
     * (NerfPipeline, MoeField) override both with one flattened
     * SoA evaluation — every consumer of this entry point rides the
     * GEMM-shaped batch core.
     *
     * @param rays     Rays in normalized model coordinates.
     * @param rng      Source of sampling jitter, consumed ray by ray.
     * @param record   Keep the evaluation tape so backwardRays() works.
     * @param out      Receives one RayEval per ray (size >= rays.size()).
     * @param workload Optional aggregate Stage-I trace over the batch.
     */
    virtual void traceRays(std::span<const Ray> rays, Pcg32 &rng, bool record,
                           std::span<RayEval> out, RayWorkload *workload = nullptr);

    /**
     * Backpropagate per-ray dL/d(color) for the batch recorded by the
     * last traceRays(record=true). The base implementation re-traces
     * each ray from its rng snapshot (recompute-in-backward) and calls
     * backwardLastRay per ray.
     */
    virtual void backwardRays(std::span<const Vec3f> dcolors);

    /**
     * Zero all accumulated parameter gradients. Non-virtual template
     * method: first invalidates every recorded evaluation tape (a tape
     * recorded against the pre-step weights must not silently replay),
     * then dispatches to zeroGradsImpl().
     */
    void
    zeroGrads()
    {
        invalidateTapes();
        zeroGradsImpl();
    }

    /**
     * Apply one optimizer step using the accumulated gradients. Also
     * invalidates recorded tapes: a backwardRays() after the weights
     * moved would re-trace against the updated model and produce
     * silently wrong gradients, so it fails loudly instead.
     */
    void
    optimizerStep()
    {
        invalidateTapes();
        optimizerStepImpl();
    }

    /** Refresh the occupancy gate(s) from the current density field. */
    virtual void updateOccupancy(Pcg32 &rng) = 0;

    /** Fake-quantize all weights through INT8 (Table II experiment). */
    virtual void quantizeWeights() = 0;

    /** Total trainable parameter count. */
    virtual std::size_t paramCount() const = 0;

    /**
     * Attach a thread pool the field may use to parallelize batched
     * work (traceRays/backwardRays sharding, optimizerStep,
     * updateOccupancy). Null detaches; the pool must outlive the
     * field's use of it. With a pool attached, results are reproducible
     * for a given seed at ANY pool size — the shard partition and
     * gradient reduction order are fixed by batch size alone.
     */
    virtual void setThreadPool(ThreadPool *pool) { pool_ = pool; }
    ThreadPool *threadPool() const { return pool_; }

    /**
     * Render @p camera's view as parallel row-tiles on @p pool,
     * bit-identical regardless of tiling or thread count. Returns false
     * if this field has no tiled path (the base class doesn't); the
     * caller then falls back to its serial render loop.
     */
    virtual bool renderViewTiled(const Camera &camera, ThreadPool &pool, Image &out)
    {
        (void)camera;
        (void)pool;
        (void)out;
        return false;
    }

  protected:
    /** Zero all accumulated parameter gradients. */
    virtual void zeroGradsImpl() = 0;

    /** Apply one optimizer step using the accumulated gradients. */
    virtual void optimizerStepImpl() = 0;

    /**
     * Drop every recorded evaluation tape so a stale backwardRays() /
     * backwardLastRay() panics instead of re-tracing against updated
     * weights. Derived fields with native tapes extend this (calling
     * the base version) to clear theirs too.
     */
    virtual void invalidateTapes() { fallback_valid_ = false; }

    /** Pool attached via setThreadPool (null = serial). */
    ThreadPool *pool_ = nullptr;

  private:
    // Batch tape of the base traceRays()/backwardRays() fallback:
    // the rays and a per-ray rng snapshot (Pcg32 is a trivially
    // copyable value type), enough to re-trace each ray with identical
    // jitter during the backward pass.
    std::vector<Ray> fallback_rays_;
    std::vector<Pcg32> fallback_rngs_;
    bool fallback_valid_ = false;
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_RADIANCE_FIELD_H_
