/**
 * @file
 * The render server proper: admission control → priority queue →
 * batching dispatcher → work-sharing thread pool, with deadline
 * enforcement and graceful degradation.
 *
 * A request's life:
 *  1. submit() assigns an id and pushes it into the bounded queue; a
 *     full queue sheds it immediately (Outcome::rejectedQueueFull).
 *  2. The dispatcher thread pops batches of same-model requests,
 *     honouring a max-in-flight bound so overload backs up into the
 *     bounded queue (where admission control can see it) instead of
 *     into an unbounded pool backlog.
 *  3. Each request runs as a pool task that splits its frame into
 *     row-tiles on the same pool — idle workers help finish a
 *     neighbour's frame, so a single big frame still uses all cores.
 *  4. At render start the scheduler first tries the *accelerate* rung:
 *     a request carrying a session id whose previous frame is cached
 *     (same model, same deploy epoch, within TTL) is served by temporal
 *     reprojection — the cached frame is warped into the requested view
 *     and only the invalidated tiles are ray-marched (serve/reproject).
 *     Otherwise it compares the time left until the deadline with an
 *     online cost estimate (EWMA of measured per-pixel seconds) and
 *     walks the degrade ladder:
 *       full render → half-resolution render (upsampled) → reprojection
 *     of the model's last frame via image_warp → shed
 *     (Outcome::rejectedDeadline). Expired deadlines shed outright.
 *
 * Every outcome is counted in ServerStats; drain() blocks until all
 * admitted requests completed, so the stats block is consistent when
 * printed.
 */

#ifndef FUSION3D_SERVE_SCHEDULER_H_
#define FUSION3D_SERVE_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>

#include "common/thread_pool.h"
#include "nerf/image_warp.h"
#include "obs/slo.h"
#include "serve/model_registry.h"
#include "serve/reproject.h"
#include "serve/request_queue.h"
#include "serve/serve.h"
#include "serve/server_stats.h"
#include "serve/session.h"

namespace fusion3d::serve
{

/** A running render service over a ModelRegistry. */
class RenderServer
{
  public:
    /**
     * @param registry Deployed models; must outlive the server.
     *                 Non-const: serving an evicted model reloads it
     *                 on demand (ModelRegistry::acquireOrReload).
     * @param cfg      Queueing / threading / degrade parameters.
     */
    RenderServer(ModelRegistry &registry, const ServeConfig &cfg);

    /** Shuts down: rejects new work, completes admitted work, joins. */
    ~RenderServer();

    RenderServer(const RenderServer &) = delete;
    RenderServer &operator=(const RenderServer &) = delete;

    /**
     * Submit a render request. Never blocks: a full queue or a closed
     * server resolves the future immediately with a rejection.
     */
    std::future<RenderResponse> submit(RenderRequest request);

    /** Block until every admitted request has completed. */
    void drain();

    /** drain(), then print the ServerStats block to @p os. */
    void drainAndPrintStats(std::ostream &os);

    /** Stop admitting, drain, and join all serving threads. */
    void shutdown();

    /**
     * Fast shutdown: stop admitting and *shed* the queued backlog
     * (Outcome::rejectedShutdown) instead of rendering it, so every
     * submitted request still reaches a terminal outcome but no waiter
     * blocks on work the server will never do. In-flight renders are
     * completed. Idempotent, like shutdown().
     */
    void stop();

    const ServeConfig &config() const { return cfg_; }
    const ServerStats &stats() const { return stats_; }
    /** SLO watchdog; null unless cfg.slo.enabled. */
    const obs::SloMonitor *slo() const { return slo_.get(); }
    /** The per-session frame cache behind temporal reprojection. */
    const SessionStore &sessions() const { return sessions_; }
    std::size_t queueDepth() const { return queue_.depth(); }

    /** Current EWMA of measured render seconds per pixel (0 until the
     *  first frame completes). Exposed for tests and the load bench. */
    double estimatedSecondsPerPixel() const;

  private:
    void dispatchLoop();
    /** Resolve the model (pinning it; reload-on-demand if evicted),
     *  run the ladder, finish. Runs on a pool worker, so a reload
     *  stalls one request, not the dispatcher. */
    void executeRequest(QueuedRequest qr);
    RenderResponse runLadder(QueuedRequest &qr, const ModelEntry *entry);
    void finish(QueuedRequest &qr, RenderResponse &&response);
    void noteRenderCost(double seconds, std::uint64_t pixels);
    void cacheFrame(const std::string &model,
                    std::shared_ptr<const nerf::DepthFrame> frame);
    std::shared_ptr<const nerf::DepthFrame> cachedFrame(const std::string &model) const;
    /** Try the accelerate rung; true when @p response was produced. */
    bool tryReproject(QueuedRequest &qr, const ModelEntry *entry,
                      RenderResponse &response);
    /** Cache @p frame for both the warp-degrade rung and (when the
     *  request carries a session id) the session store. */
    void rememberFullFrame(const QueuedRequest &qr, const ModelEntry *entry,
                           nerf::DepthFrame &&frame);

    ModelRegistry &registry_;
    ServeConfig cfg_;
    ServerStats stats_;
    /** Created (and registered as a metrics collector) when
     *  cfg.slo.enabled; a breaching window dumps the flight recorder. */
    std::unique_ptr<obs::SloMonitor> slo_;
    SessionStore sessions_;
    RequestQueue queue_;
    ThreadPool pool_;

    std::atomic<std::uint64_t> next_id_{1};
    /** Set by stop(): the dispatcher sheds queued requests instead of
     *  rendering them. */
    std::atomic<bool> shed_on_close_{false};

    // Admitted-but-unfinished accounting (drain + dispatcher backpressure).
    mutable std::mutex flight_mutex_;
    std::condition_variable flight_cv_;
    std::uint64_t pending_ = 0;   ///< admitted, promise not yet set
    int in_flight_ = 0;           ///< handed to the pool, still running

    // Online cost model: EWMA of seconds per rendered pixel.
    mutable std::mutex estimate_mutex_;
    double est_seconds_per_pixel_ = 0.0;

    // Last full-resolution frame per model, the warp-degrade source.
    mutable std::mutex cache_mutex_;
    std::map<std::string, std::shared_ptr<const nerf::DepthFrame>> last_frames_;

    std::thread dispatcher_;
};

} // namespace fusion3d::serve

#endif // FUSION3D_SERVE_SCHEDULER_H_
