#include "chip/energy_model.h"

namespace fusion3d::chip
{

EnergyBreakdown
estimateEnergy(const WorkloadProfile &wl, const ChipRunResult &run, bool training,
               const EnergyCoefficients &coeff)
{
    EnergyBreakdown e;

    const double points = static_cast<double>(wl.validPoints);
    const double mac_passes = training ? 3.0 : 1.0;
    const double mac_energy = training ? coeff.macFp32J : coeff.macFp16J;

    // MLP engine: macsPerPoint per pass, plus the interpolation MAC
    // trees (8 lanes per level).
    const double mlp_macs = points * static_cast<double>(wl.macsPerPoint) * mac_passes;
    const double interp_macs = points * wl.levels * 8.0 * mac_passes;
    e.mlpJ = (mlp_macs + interp_macs) * mac_energy;

    // Feature SRAM: 8 vertex reads x feature bytes per level, plus the
    // write-back pass when training.
    const double feature_bytes = points * wl.levels * 8.0 * 4.0;
    e.sramJ = feature_bytes * (training ? 2.0 : 1.0) * coeff.sramByteJ;

    // NoC: inter-stage hand-offs (positions in, features through,
    // samples out).
    const double noc_bytes =
        points * (8.0 + wl.levels * 2.0 * 2.0) * (training ? 2.0 : 1.0);
    e.nocJ = noc_bytes * coeff.nocByteJ;

    e.staticJ = static_cast<double>(run.totalCycles) * coeff.idlePerCycleJ;
    return e;
}

} // namespace fusion3d::chip
