/**
 * @file
 * Low-overhead span tracer serializing to the Chrome trace-event JSON
 * format (loadable in Perfetto / chrome://tracing). Design points:
 *
 *  - *lock-free hot path*: each thread appends completed spans to its
 *    own fixed-capacity buffer; the only synchronization is one
 *    release-store of the buffer size per span, so concurrent readers
 *    (writeChromeTrace) see a consistent prefix without ever blocking
 *    a recording thread;
 *  - *cheap when disabled*: every instrumentation site first checks a
 *    relaxed atomic capture mask — one load and a predictable branch;
 *  - *request-scoped*: a thread-local TraceContext carries the owning
 *    request id and the innermost open span id, so every span lands in
 *    one causal tree per request (reassembled by tools/f3d_trace);
 *  - *compiled out entirely* with -DFUSION3D_TRACE_DISABLED, turning
 *    the F3D_TRACE_* macros into no-ops;
 *  - span category/name are `const char *` with static storage
 *    duration (string literals), so recording never allocates.
 *
 * The capture mask has two independent consumers: bit 0 is the full
 * tracer (thread buffers -> Chrome dump, off by default), bit 1 the
 * always-on FlightRecorder ring of recent history (see
 * obs/flight_recorder.h). A span is timed when either is on.
 *
 * `fusion3d::obs` is the bottom of the library dependency order: it
 * uses only the standard library, so even `common` (ThreadPool) can be
 * instrumented without a cycle.
 */

#ifndef FUSION3D_OBS_TRACE_H_
#define FUSION3D_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace fusion3d::obs
{

/** One completed span, timestamps in ns since the tracer epoch. */
struct TraceEvent
{
    const char *category = nullptr; ///< static string (literal)
    const char *name = nullptr;     ///< static string (literal)
    std::uint64_t t0Ns = 0;
    std::uint64_t t1Ns = 0;
    /** Optional numeric payload (batch size, row index, request id). */
    std::uint64_t arg = 0;
    bool hasArg = false;
    /** Owning request (0 = not request-scoped). */
    std::uint64_t requestId = 0;
    /** This span's id (0 = anonymous) and its parent span (0 = root). */
    std::uint64_t spanId = 0;
    std::uint64_t parentId = 0;
};

/**
 * Causal context of the current thread: which request the work belongs
 * to and which open span is the innermost parent. Minted by
 * RenderServer::submit, carried in RenderRequest, and captured /
 * restored across ThreadPool task boundaries so spans on worker
 * threads still attribute to the submitting request.
 */
struct TraceContext
{
    std::uint64_t requestId = 0;
    std::uint64_t parentSpanId = 0;
};

/** The calling thread's current context ({0,0} outside any request). */
const TraceContext &currentTraceContext();

/** Overwrite the calling thread's context (prefer ScopedTraceContext). */
void setCurrentTraceContext(const TraceContext &ctx);

/** Swap the innermost-parent span id, returning the previous value. */
std::uint64_t traceExchangeParent(std::uint64_t parent_span_id);

/** RAII: install @p ctx on this thread, restore the old context on exit. */
class ScopedTraceContext
{
  public:
    explicit ScopedTraceContext(const TraceContext &ctx)
        : prev_(currentTraceContext())
    {
        setCurrentTraceContext(ctx);
    }

    ~ScopedTraceContext() { setCurrentTraceContext(prev_); }

    ScopedTraceContext(const ScopedTraceContext &) = delete;
    ScopedTraceContext &operator=(const ScopedTraceContext &) = delete;

  private:
    TraceContext prev_;
};

/** Process-wide span collector. All methods are thread-safe. */
class Tracer
{
  public:
    /** Events each thread can hold; further spans are dropped. */
    static constexpr std::size_t kThreadCapacity = 1 << 16;

    /** Capture-mask bits (see file comment). */
    static constexpr unsigned kCaptureTrace = 1u;
    static constexpr unsigned kCaptureFlight = 2u;

    static Tracer &instance();

    /** Start/stop recording. Spans while disabled cost one atomic load. */
    void setEnabled(bool on) { setCaptureBit(kCaptureTrace, on); }

    bool
    enabled() const
    {
        return (capture_.load(std::memory_order_relaxed) & kCaptureTrace) != 0;
    }

    /** FlightRecorder feed (on by default; FlightRecorder::setEnabled). */
    void setFlightCapture(bool on) { setCaptureBit(kCaptureFlight, on); }

    /** True when any consumer (tracer or flight recorder) wants spans. */
    bool
    capturing() const
    {
        return capture_.load(std::memory_order_relaxed) != 0;
    }

    /** Fresh process-unique span id (never 0). */
    std::uint64_t
    nextSpanId()
    {
        return next_span_id_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Nanoseconds since the tracer epoch (steady clock). */
    std::uint64_t nowNs() const;

    /** Convert a steady_clock time_point to tracer-epoch nanoseconds. */
    std::uint64_t toNs(std::chrono::steady_clock::time_point tp) const;

    /**
     * Record one completed span on the calling thread's buffer.
     * @p category and @p name must have static storage duration.
     * No-op when disabled; drops (and counts) when the buffer is full.
     * The span is tagged with the thread's current TraceContext and a
     * fresh span id, parented to the innermost open scoped span.
     */
    void record(const char *category, const char *name, std::uint64_t t0_ns,
                std::uint64_t t1_ns);

    /** record() with a numeric payload serialized into "args". */
    void recordArg(const char *category, const char *name, std::uint64_t t0_ns,
                   std::uint64_t t1_ns, std::uint64_t arg);

    /**
     * Fully explicit variant: record a span with the given span/parent
     * ids (0 parent = tree root). Used by the serve scheduler to emit
     * the per-request root span with the id minted at submit time.
     */
    void recordSpan(const char *category, const char *name,
                    std::uint64_t t0_ns, std::uint64_t t1_ns,
                    std::uint64_t span_id, std::uint64_t parent_id,
                    std::uint64_t arg, bool has_arg);

    /**
     * Record a zero-duration marker span at "now" (e.g. a fault fire or
     * a breaker trip). One capturing() check when tracing is off.
     */
    void recordInstant(const char *category, const char *name);

    /** Spans currently buffered across all threads. */
    std::size_t eventCount() const;

    /** Spans dropped because a thread buffer was full. */
    std::uint64_t dropped() const;

    /**
     * Serialize every buffered span as Chrome trace-event JSON
     * ({"traceEvents":[...]}, "X" complete events, ts/dur in us).
     * Request-scoped spans carry "req"/"span"/"parent" in "args".
     * Safe to call while other threads record: each thread buffer's
     * published prefix is serialized.
     */
    void writeChromeTrace(std::ostream &os) const;

    /**
     * Copy of every published span (test/analysis hook; the in-process
     * equivalent of parsing the Chrome dump).
     */
    std::vector<TraceEvent> snapshot() const;

    /**
     * Discard all buffered spans. Call only while no other thread is
     * recording (e.g. between bench configurations).
     */
    void clear();

  private:
    struct ThreadBuffer
    {
        explicit ThreadBuffer(std::uint32_t tid_) : tid(tid_)
        {
            events.resize(kThreadCapacity);
        }

        std::uint32_t tid;
        std::vector<TraceEvent> events;
        /** Published event count: slots < size are immutable. */
        std::atomic<std::size_t> size{0};
    };

    Tracer();

    void
    setCaptureBit(unsigned bit, bool on)
    {
        if (on)
            capture_.fetch_or(bit, std::memory_order_relaxed);
        else
            capture_.fetch_and(~bit, std::memory_order_relaxed);
    }

    ThreadBuffer &localBuffer();

    /** Flight recorder starts enabled: the black box is always on. */
    std::atomic<unsigned> capture_{kCaptureFlight};
    std::atomic<std::uint64_t> next_span_id_{1};
    std::atomic<std::uint64_t> dropped_{0};
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex registry_mutex_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/** RAII span: opens at construction, records at destruction. */
class ScopedSpan
{
  public:
    ScopedSpan(const char *category, const char *name)
        : category_(category), name_(name)
    {
        Tracer &tracer = Tracer::instance();
        if (tracer.capturing()) {
            active_ = true;
            t0_ = tracer.nowNs();
            span_id_ = tracer.nextSpanId();
            // Become the innermost parent for spans opened inside us.
            parent_id_ = traceExchangeParent(span_id_);
        }
    }

    ScopedSpan(const char *category, const char *name, std::uint64_t arg)
        : ScopedSpan(category, name)
    {
        arg_ = arg;
        has_arg_ = true;
    }

    ~ScopedSpan()
    {
        if (!active_)
            return;
        traceExchangeParent(parent_id_);
        Tracer &tracer = Tracer::instance();
        tracer.recordSpan(category_, name_, t0_, tracer.nowNs(), span_id_,
                          parent_id_, arg_, has_arg_);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *category_;
    const char *name_;
    std::uint64_t t0_ = 0;
    std::uint64_t span_id_ = 0;
    std::uint64_t parent_id_ = 0;
    std::uint64_t arg_ = 0;
    bool active_ = false;
    bool has_arg_ = false;
};

} // namespace fusion3d::obs

#ifdef FUSION3D_TRACE_DISABLED
#define F3D_TRACE_CONCAT2(a, b) a##b
#define F3D_TRACE_CONCAT(a, b) F3D_TRACE_CONCAT2(a, b)
#define F3D_TRACE_SPAN(category, name) ((void)0)
#define F3D_TRACE_SPAN_ARG(category, name, arg) ((void)0)
#else
#define F3D_TRACE_CONCAT2(a, b) a##b
#define F3D_TRACE_CONCAT(a, b) F3D_TRACE_CONCAT2(a, b)
/** Trace the enclosing scope as one span. */
#define F3D_TRACE_SPAN(category, name)                                         \
    ::fusion3d::obs::ScopedSpan F3D_TRACE_CONCAT(f3d_trace_span_,              \
                                                 __COUNTER__)(category, name)
/** Trace the enclosing scope with a numeric payload. */
#define F3D_TRACE_SPAN_ARG(category, name, arg)                                \
    ::fusion3d::obs::ScopedSpan F3D_TRACE_CONCAT(f3d_trace_span_, __COUNTER__)(\
        category, name, static_cast<std::uint64_t>(arg))
#endif

#endif // FUSION3D_OBS_TRACE_H_
