/**
 * @file
 * Regenerates Table I: off-chip bandwidth requirements of prior NeRF
 * accelerators (as reported by their papers) versus the bandwidth
 * available on commercial edge platforms, versus this work's modeled
 * requirement under the end-to-end coverage boundary.
 */

#include <cstdio>

#include "baselines/platforms.h"
#include "bench/bench_util.h"
#include "chip/perf_model.h"
#include "multichip/host_link.h"

using namespace fusion3d;

int
main()
{
    bench::banner("Table I: off-chip bandwidth of prior accelerators vs edge platforms");

    std::printf("%-24s %-10s %-22s %12s\n", "Platform", "Training", "Connection",
                "BW (GB/s)");
    bench::rule();

    std::printf("-- Prior accelerators (reported values) --\n");
    for (const auto &p : baselines::bandwidthTableRows()) {
        std::printf("%-24s %-10s %-22s %12.1f\n", p.name.c_str(),
                    p.instantTraining ? "Yes" : "No", p.offChipType.c_str(),
                    p.offChipGBs.value_or(0.0));
    }

    std::printf("-- SOTA edge platforms (available accelerator bandwidth) --\n");
    for (const char *name : {"Nvidia XNX", "Meta Quest 2/3/Pro", "Samsung S24 Ultra"}) {
        std::printf("%-24s %-10s %-22s %12.3f\n", name, "-", "USB 3.2 Gen 1", 0.625);
    }

    std::printf("-- This work (modeled) --\n");
    chip::BandwidthModel bm;
    const double table_bytes = 640.0 * 1024.0; // all hash tables on-chip
    const double ours =
        bm.requiredBandwidthGBs(chip::CoverageBoundary::EndToEnd, table_bytes);
    std::printf("%-24s %-10s %-22s %12.2f\n", "Fusion-3D (end-to-end)", "Yes (Instant)",
                "USB 3.2 Gen 1", ours);

    bench::rule();
    std::printf("Paper: this work 0.6 GB/s, fits the 0.625 GB/s USB budget.\n");
    std::printf("Modeled: %.2f GB/s -> %s the USB budget.\n", ours,
                ours <= 0.625 ? "fits" : "EXCEEDS");

    // Context rows: what the same workload would demand with the
    // partial coverage boundaries of prior designs.
    const double i3d_table = (65536.0 + 262144.0) * 2.0 * 2.0;
    std::printf("Same workload, Stage II+III boundary (Instant-3D style): %.1f GB/s\n",
                bm.requiredBandwidthGBs(chip::CoverageBoundary::Stage23, i3d_table));
    std::printf("Same workload, Stage II-only boundary (NGPC style):      %.1f GB/s\n",
                bm.requiredBandwidthGBs(chip::CoverageBoundary::Stage2Only, i3d_table));

    // Sec. VI-D: the USB-drive integration timeline.
    const auto plan = multichip::planTrainingSession(bm.datasetGb * 1e9,
                                                     bm.modelOutGb * 1e9,
                                                     bm.trainSeconds);
    std::printf("\nSec. VI-D integration timeline over USB 3.2 Gen 1:\n");
    std::printf("  dataset in %.2f s (overlapped with %.1f s training), model out "
                "%.2f s -> session %.2f s; link %s training.\n",
                plan.datasetInSeconds, plan.trainSeconds, plan.modelOutSeconds,
                plan.totalSeconds, plan.linkKeepsUp ? "sustains" : "STALLS");
    return 0;
}
