/** @file Integration tests: the full pipeline trains on a toy scene,
 *  MoE partitions space, and the trainer's quantization hook bites. */

#include <gtest/gtest.h>

#include "nerf/freq_nerf.h"
#include "nerf/moe.h"
#include "nerf/pipeline.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"
#include "scenes/factory.h"

namespace fusion3d::nerf
{
namespace
{

PipelineConfig
tinyPipeline()
{
    PipelineConfig pc;
    pc.model.grid.levels = 6;
    pc.model.grid.log2TableSize = 12;
    pc.model.grid.baseResolution = 8;
    pc.model.grid.maxResolution = 64;
    pc.model.densityHidden = 24;
    pc.model.colorHidden = 24;
    pc.model.geoFeatures = 7;
    pc.model.shDegree = 2;
    pc.sampler.maxSamplesPerRay = 32;
    pc.occupancyResolution = 24;
    return pc;
}

Dataset
tinyDataset(const std::string &scene_name = "mic", int size = 24)
{
    const auto scene = scenes::makeSyntheticScene(scene_name);
    scenes::DatasetConfig dc = scenes::syntheticRig(size);
    dc.trainViews = 6;
    dc.testViews = 1;
    dc.reference.steps = 96;
    return scenes::makeDataset(*scene, dc);
}

TEST(Pipeline, TraceRayDeterministicWithoutJitter)
{
    PipelineConfig pc = tinyPipeline();
    pc.sampler.jitter = false;
    NerfPipeline pipe(pc);
    Pcg32 rng(1);
    const Ray ray({0.5f, 0.5f, -1.0f}, {0.0f, 0.0f, 1.0f});
    const RayEval a = pipe.traceRay(ray, rng, false);
    const RayEval b = pipe.traceRay(ray, rng, false);
    EXPECT_EQ(a.color, b.color);
    EXPECT_EQ(a.samples, b.samples);
}

TEST(Pipeline, BackwardRequiresRecordedRay)
{
    NerfPipeline pipe(tinyPipeline());
    EXPECT_DEATH(pipe.backwardLastRay({1.0f, 0.0f, 0.0f}), "without a recorded");
}

/**
 * The batched entry point is bit-exact with per-ray tracing: sampling
 * draws jitter in the same ray order, and the SoA forward evaluates
 * every sample with scalar-identical arithmetic.
 */
TEST(Pipeline, TraceRaysMatchesPerRayLoop)
{
    const PipelineConfig pc = tinyPipeline();
    NerfPipeline batched(pc);
    NerfPipeline scalar(pc); // same seed -> identical weights

    std::vector<Ray> rays;
    for (int i = 0; i < 6; ++i)
        rays.emplace_back(Vec3f{0.2f + 0.12f * static_cast<float>(i), 0.45f, -1.0f},
                          Vec3f{0.0f, 0.05f, 1.0f});

    Pcg32 rng_a(7), rng_b(7);
    std::vector<RayEval> evals(rays.size());
    RayWorkload wl_a;
    batched.traceRays(rays, rng_a, false, evals, &wl_a);

    RayWorkload wl_b;
    std::uint64_t candidates_b = 0;
    for (std::size_t r = 0; r < rays.size(); ++r) {
        RayWorkload wl;
        const RayEval ref = scalar.traceRay(rays[r], rng_b, false, &wl);
        candidates_b += static_cast<std::uint64_t>(wl.totalCandidates);
        EXPECT_EQ(evals[r].color, ref.color) << "ray " << r;
        EXPECT_EQ(evals[r].samples, ref.samples);
        EXPECT_EQ(evals[r].composited, ref.composited);
        EXPECT_EQ(evals[r].transmittance, ref.transmittance);
        EXPECT_EQ(evals[r].firstHitT, ref.firstHitT);
    }
    EXPECT_EQ(static_cast<std::uint64_t>(wl_a.totalCandidates), candidates_b);
}

/**
 * One recorded traceRays + backwardRays accumulates the same model
 * gradients as tracing and backpropagating each ray individually (up
 * to reassociation of the cross-ray gradient sums).
 */
TEST(Pipeline, BackwardRaysMatchesPerRayBackward)
{
    const PipelineConfig pc = tinyPipeline();
    NerfPipeline batched(pc);
    NerfPipeline scalar(pc);

    std::vector<Ray> rays;
    for (int i = 0; i < 4; ++i)
        rays.emplace_back(Vec3f{0.3f + 0.1f * static_cast<float>(i), 0.5f, -1.0f},
                          Vec3f{0.0f, 0.0f, 1.0f});
    const std::vector<Vec3f> dcolors{{0.5f, -0.25f, 0.125f},
                                     {-0.3f, 0.6f, 0.1f},
                                     {0.2f, 0.2f, -0.4f},
                                     {-0.1f, 0.05f, 0.3f}};

    Pcg32 rng_a(9);
    std::vector<RayEval> evals(rays.size());
    batched.model().zeroGrads();
    batched.traceRays(rays, rng_a, /*record=*/true, evals);
    batched.backwardRays(dcolors);

    Pcg32 rng_b(9);
    scalar.model().zeroGrads();
    for (std::size_t r = 0; r < rays.size(); ++r) {
        scalar.traceRay(rays[r], rng_b, /*record=*/true);
        scalar.backwardLastRay(dcolors[r]);
    }

    const auto check = [](std::span<float> got, std::span<float> want,
                          const char *what) {
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            ASSERT_NEAR(got[i], want[i], 1e-5f + 1e-4f * std::fabs(want[i]))
                << what << " grad " << i;
    };
    check(batched.model().densityNet().grads(), scalar.model().densityNet().grads(),
          "density");
    check(batched.model().colorNet().grads(), scalar.model().colorNet().grads(),
          "color");
    check(batched.model().encoding().grads(), scalar.model().encoding().grads(),
          "encoding");
}

/**
 * Pipelines built on the base-class fallback (here the frequency-
 * encoded NeRF) honor the same traceRays contract: identical results
 * to a per-ray loop, and a working recorded backward.
 */
TEST(Pipeline, FallbackTraceRaysMatchesPerRayLoop)
{
    FreqPipelineConfig fc;
    fc.model.posFrequencies = 4;
    fc.model.hidden = 16;
    fc.model.trunkLayers = 2;
    fc.model.geoFeatures = 7;
    fc.model.colorHidden = 16;
    fc.model.shDegree = 2;
    fc.occupancyResolution = 16;
    FreqPipeline batched(fc);
    FreqPipeline scalar(fc);

    std::vector<Ray> rays;
    for (int i = 0; i < 3; ++i)
        rays.emplace_back(Vec3f{0.35f + 0.1f * static_cast<float>(i), 0.5f, -1.0f},
                          Vec3f{0.0f, 0.0f, 1.0f});

    Pcg32 rng_a(13), rng_b(13);
    std::vector<RayEval> evals(rays.size());
    batched.traceRays(rays, rng_a, /*record=*/true, evals);
    for (std::size_t r = 0; r < rays.size(); ++r) {
        const RayEval ref = scalar.traceRay(rays[r], rng_b, false);
        EXPECT_EQ(evals[r].color, ref.color) << "ray " << r;
        EXPECT_EQ(evals[r].samples, ref.samples);
    }

    // The fallback's recorded backward re-traces from RNG snapshots;
    // it must accept a matching gradient batch without dying.
    const std::vector<Vec3f> dcolors(rays.size(), Vec3f{0.1f, 0.1f, 0.1f});
    batched.backwardRays(dcolors);
    batched.optimizerStep();
}

TEST(Pipeline, TrainingImprovesPsnr)
{
    const Dataset data = tinyDataset();
    NerfPipeline pipe(tinyPipeline());
    TrainerConfig tc;
    tc.iterations = 120;
    tc.raysPerBatch = 128;
    tc.occupancyWarmup = 40;
    tc.occupancyUpdateEvery = 40;
    Trainer trainer(pipe, data, tc);

    const double before = trainer.evalPsnr();
    const TrainResult result = trainer.run();
    EXPECT_GT(result.finalPsnr, before + 5.0);
    EXPECT_GT(result.finalPsnr, 18.0);
    EXPECT_EQ(result.iterationsRun, 120);
    EXPECT_EQ(result.totalRays, 120u * 128u);
    EXPECT_GT(result.totalSamples, 0u);
    EXPECT_GE(result.totalCandidates, result.totalSamples);
}

TEST(Pipeline, OccupancyUpdateShrinksWorkload)
{
    const Dataset data = tinyDataset("mic");
    PipelineConfig pc = tinyPipeline();
    // A higher gate threshold: empty space needs fewer iterations to
    // fall below it (sigma ~= 1 at init under the exp activation).
    pc.occupancyThreshold = 1.0f;
    NerfPipeline pipe(pc);
    TrainerConfig tc;
    tc.iterations = 160;
    tc.raysPerBatch = 96;
    tc.occupancyWarmup = 60;
    tc.occupancyUpdateEvery = 25;
    Trainer trainer(pipe, data, tc);
    trainer.run();
    // After training a sparse scene, the gate must be far below full.
    EXPECT_LT(pipe.grid().occupiedFraction(), 0.6);
    EXPECT_GT(pipe.grid().occupiedFraction(), 0.0);
}

TEST(Pipeline, QuantizedTrainingDegrades)
{
    const Dataset data = tinyDataset("lego");

    TrainerConfig tc;
    tc.iterations = 140;
    tc.raysPerBatch = 96;

    NerfPipeline full(tinyPipeline());
    Trainer full_trainer(full, data, tc);
    const double full_psnr = full_trainer.run().finalPsnr;

    TrainerConfig tq = tc;
    tq.quantizeEvery = 1; // quantize every iteration: must hurt badly
    NerfPipeline quant(tinyPipeline());
    Trainer quant_trainer(quant, data, tq);
    const double quant_psnr = quant_trainer.run().finalPsnr;

    EXPECT_GT(full_psnr, quant_psnr + 2.0);
}

TEST(Moe, RegionsPartitionSpace)
{
    MoeConfig mc;
    mc.numExperts = 4;
    mc.expert = tinyPipeline();
    MoeNerf moe(mc);

    Pcg32 rng(5);
    int counts[4] = {};
    for (int i = 0; i < 4000; ++i) {
        const int r = moe.regionOf(rng.nextVec3());
        ASSERT_GE(r, 0);
        ASSERT_LT(r, 4);
        ++counts[r];
    }
    for (int k = 0; k < 4; ++k)
        EXPECT_GT(counts[k], 400); // roughly balanced wedges
}

TEST(Moe, ExpertGatesAreDisjoint)
{
    MoeConfig mc;
    mc.numExperts = 4;
    mc.expert = tinyPipeline();
    MoeNerf moe(mc);

    Pcg32 rng(6);
    for (int i = 0; i < 500; ++i) {
        const Vec3f p = rng.nextVec3();
        int owners = 0;
        for (int k = 0; k < 4; ++k)
            owners += moe.expert(k).grid().occupiedAt(p) ? 1 : 0;
        EXPECT_LE(owners, 1) << "point owned by multiple experts";
    }
}

TEST(Moe, TraceFusesWeightedExpertPartials)
{
    MoeConfig mc;
    mc.numExperts = 2;
    mc.expert = tinyPipeline();
    mc.expert.sampler.jitter = false;
    MoeNerf moe(mc);
    Pcg32 rng(7);
    const Ray ray({0.5f, 0.5f, -1.0f}, {0.0f, 0.0f, 1.0f});
    const RayEval total = moe.traceRay(ray, rng, false);
    Vec3f fused(0.0f);
    int samples = 0;
    float tprod = 1.0f;
    for (int k = 0; k < moe.numExperts(); ++k) {
        const RayEval &p = moe.lastPartials()[static_cast<std::size_t>(k)];
        fused += p.color * moe.lastFusionWeights()[static_cast<std::size_t>(k)];
        samples += p.samples;
        tprod *= p.transmittance;
    }
    EXPECT_NEAR(total.color.x, fused.x, 1e-5f);
    EXPECT_NEAR(total.color.y, fused.y, 1e-5f);
    EXPECT_EQ(total.samples, samples);
    EXPECT_NEAR(total.transmittance, tprod, 1e-5f);
    // The depth-first expert carries weight 1; the later one is
    // attenuated by the first's transmittance.
    const auto &w = moe.lastFusionWeights();
    EXPECT_FLOAT_EQ(std::max(w[0], w[1]), 1.0f);
}

/**
 * MoE batches expert-major (each expert traces the whole ray batch),
 * so with jitter disabled — no RNG consumption — the fused result
 * matches the per-ray path exactly.
 */
TEST(Moe, TraceRaysMatchesPerRayWithoutJitter)
{
    MoeConfig mc;
    mc.numExperts = 2;
    mc.expert = tinyPipeline();
    mc.expert.sampler.jitter = false;

    MoeNerf batched(mc);
    MoeNerf scalar(mc);
    std::vector<Ray> rays;
    for (int i = 0; i < 5; ++i)
        rays.emplace_back(Vec3f{0.15f + 0.15f * static_cast<float>(i), 0.5f, -1.0f},
                          Vec3f{0.0f, 0.0f, 1.0f});

    Pcg32 rng_a(17), rng_b(17);
    std::vector<RayEval> evals(rays.size());
    batched.traceRays(rays, rng_a, false, evals);
    for (std::size_t r = 0; r < rays.size(); ++r) {
        const RayEval ref = scalar.traceRay(rays[r], rng_b, false);
        EXPECT_EQ(evals[r].color, ref.color) << "ray " << r;
        EXPECT_EQ(evals[r].samples, ref.samples);
        EXPECT_EQ(evals[r].firstHitT, ref.firstHitT);
    }
}

TEST(Moe, TrainsOnToyScene)
{
    const Dataset data = tinyDataset("lego");
    MoeConfig mc;
    mc.numExperts = 2;
    mc.expert = tinyPipeline();
    mc.expert.model.grid.log2TableSize = 11; // smaller experts
    MoeNerf moe(mc);

    TrainerConfig tc;
    tc.iterations = 120;
    tc.raysPerBatch = 96;
    tc.occupancyWarmup = 60;
    tc.occupancyUpdateEvery = 30;
    Trainer trainer(moe, data, tc);
    const double before = trainer.evalPsnr();
    const TrainResult result = trainer.run();
    EXPECT_GT(result.finalPsnr, before + 3.0);
}

} // namespace
} // namespace fusion3d::nerf
