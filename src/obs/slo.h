/**
 * @file
 * Windowed SLO burn-rate watchdog over the streaming quantile
 * estimator. The serving layer feeds it one (latency, error) sample
 * per finished request; the monitor closes fixed-duration windows and
 * computes two burn rates against the configured budgets:
 *
 *  - *latency burn*: fraction of window requests slower than the
 *    target p99, divided by the latency budget (0.01 = "1 % of
 *    requests may be over target"). A burn rate of 1.0 means the
 *    budget is being consumed exactly as provisioned; >= burnThreshold
 *    (default 2x) trips a breach.
 *  - *error burn*: window error rate divided by the error budget.
 *
 * A breach invokes the callback (outside the monitor lock) — the serve
 * scheduler wires it to a FlightRecorder dump so the spans of the
 * offending window are preserved — and everything is exported as
 * `slo.*` metrics through a MetricsRegistry collector.
 */

#ifndef FUSION3D_OBS_SLO_H_
#define FUSION3D_OBS_SLO_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "obs/quantiles.h"

namespace fusion3d::obs
{

/** Targets and budgets; carried in serve::ServeConfig. */
struct SloConfig
{
    bool enabled = false;
    /** Latency objective: p99 of completed requests <= this. */
    double targetP99Ms = 50.0;
    /** Fraction of requests allowed over target (1 - 0.99). */
    double latencyBudget = 0.01;
    /** Fraction of requests allowed to fail or be rejected. */
    double errorBudget = 0.001;
    /** Burn-rate evaluation window. */
    double windowSeconds = 5.0;
    /** Burn rate at or above which a window counts as a breach. */
    double burnThreshold = 2.0;
    /** Windows with fewer requests than this never breach (noise). */
    std::uint64_t minWindowRequests = 20;
};

/** Summary of one closed window, passed to the breach callback. */
struct SloWindowReport
{
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t overTarget = 0;
    double p99Ms = 0.0;
    double latencyBurn = 0.0;
    double errorBurn = 0.0;
    bool breached = false;
    /** Request id of the slowest request observed in the window. */
    std::uint64_t worstRequestId = 0;
    double worstLatencyMs = 0.0;
};

/** Thread-safe; one instance per RenderServer. */
class SloMonitor
{
  public:
    using BreachCallback = std::function<void(const SloWindowReport &)>;

    explicit SloMonitor(const SloConfig &config,
                        BreachCallback on_breach = nullptr);
    ~SloMonitor();

    /** Record one finished request (window timestamped "now"). */
    void record(double latency_ms, bool error, std::uint64_t request_id = 0);

    /** Deterministic-clock variant for tests: @p now_ns is an
     *  arbitrary monotonic nanosecond timestamp. */
    void recordAt(std::uint64_t now_ns, double latency_ms, bool error,
                  std::uint64_t request_id = 0);

    /** Force the current partial window closed (shutdown/tests). */
    void closeWindow();

    std::uint64_t windowsClosed() const;
    std::uint64_t breaches() const;
    SloWindowReport lastWindow() const;

    /** Register/unregister a `slo.*` collector with @p registry. */
    void registerWith(MetricsRegistry &registry, const std::string &name);
    void collect(MetricSink &sink) const;

    const SloConfig &config() const { return config_; }

  private:
    /** Close the window under lock_; returns true when it breached. */
    bool closeWindowLocked(SloWindowReport &report);

    const SloConfig config_;
    BreachCallback on_breach_;

    mutable std::mutex lock_;
    // Current window.
    bool window_open_ = false;
    std::uint64_t window_end_ns_ = 0;
    std::uint64_t window_requests_ = 0;
    std::uint64_t window_errors_ = 0;
    std::uint64_t window_over_target_ = 0;
    std::uint64_t window_worst_id_ = 0;
    double window_worst_ms_ = 0.0;
    Quantiles window_latency_{"slo_window"};
    // Lifetime totals.
    std::uint64_t total_requests_ = 0;
    std::uint64_t total_errors_ = 0;
    std::uint64_t total_over_target_ = 0;
    std::uint64_t windows_ = 0;
    std::uint64_t breaches_ = 0;
    SloWindowReport last_;

    MetricsRegistry *registry_ = nullptr;
    std::string collector_name_;
};

} // namespace fusion3d::obs

#endif // FUSION3D_OBS_SLO_H_
