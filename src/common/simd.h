/**
 * @file
 * Runtime-dispatched SIMD kernel table for the batched inference hot
 * loops. The feature-major [dim][N] layout of every batch matrix means
 * vector lanes map to *samples*: each sample's accumulation order
 * (bias first, then fan-in / corner ascending) is untouched by
 * vectorization, so every kernel variant here is bit-exact with the
 * scalar C++ loops the equivalence tests pin down.
 *
 * Variants are compiled per-function with target attributes (AVX2+FMA
 * on x86-64, NEON on aarch64, portable scalar everywhere) and selected
 * once at startup by runtime CPUID. Two deliberate contracts:
 *
 *  - The AVX2 kernels use separate multiply + add intrinsics, NOT
 *    fused multiply-add, even though FMA availability gates the
 *    dispatch: the scalar baseline compiles with -ffp-contract=off, so
 *    a single-rounding FMA would break scalar/SIMD bit-equality.
 *  - `FUSION3D_SIMD_DISABLED` (env, any non-empty value) or
 *    forceScalar(true) pins the dispatch to the scalar variants — the
 *    CI forced-scalar job and the bench `--simd off` axis use this.
 */

#ifndef FUSION3D_COMMON_SIMD_H_
#define FUSION3D_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace fusion3d::simd
{

/** CPU features detected at startup (compile-time on aarch64). */
struct Caps
{
    bool avx2 = false;
    bool fma = false;
    bool f16c = false;
    bool avx512f = false;
    bool neon = false;
};

/** Runtime CPU capabilities (detected once, cached). */
const Caps &caps();

/** Which kernel variant set the process dispatches to. */
enum class Dispatch
{
    scalar,
    avx2,
    neon,
};

/** Stable lowercase name of a dispatch path (logs, JSON, metrics). */
const char *dispatchName(Dispatch d);

/** The active dispatch: the widest supported variant, unless the
 *  FUSION3D_SIMD_DISABLED env var or forceScalar(true) pins scalar. */
Dispatch activeDispatch();

/** Name of activeDispatch() — the value bench JSON and metrics record. */
const char *dispatchName();

/**
 * Programmatically pin the dispatch to the scalar variants (true) or
 * restore CPUID selection (false). Used by the bench `--simd off` axis
 * and the SIMD equivalence tests; thread-safe.
 */
void forceScalar(bool on);

/** True if the env var or forceScalar() currently pins scalar. */
bool scalarForced();

/** Samples per gather block: the SoA corner index/weight staging the
 *  hash-encode hot loop hands to the gather kernels. */
inline constexpr std::size_t kGatherBlock = 64;

/**
 * The kernel table. All matrices are feature-major with the sample
 * index fastest; `idx`/`wts` of the gather kernels are corner-major
 * [8][kGatherBlock] blocks (corner c, sample j at c*kGatherBlock+j).
 */
struct Kernels
{
    /** dispatchName() of the variant set. */
    const char *name;

    /**
     * One dense layer over a feature-major batch:
     *   z[o*n+j] = b[o] + sum_i w[o*fan_in+i] * x[i*n+j]
     *   a[o*n+j] = relu ? max(z[o*n+j], 0) : z[o*n+j]
     * Per sample the accumulation is bias-first then fan-in ascending —
     * the exact order of Mlp::forward().
     */
    void (*mlpLayer)(const float *w, const float *b, const float *x, float *z,
                     float *a, int fan_in, int fan_out, std::size_t n,
                     bool relu);

    /**
     * 8-corner trilinear gather over a two-feature fp32 table:
     *   out0[j] = sum_c wts[c][j] * tab[idx[c][j]*2 + 0]
     *   out1[j] = sum_c wts[c][j] * tab[idx[c][j]*2 + 1]
     * accumulated corner-ascending per sample (nb <= kGatherBlock).
     */
    void (*gatherInterp2)(const float *tab, const std::uint32_t *idx,
                          const float *wts, std::size_t nb, float *out0,
                          float *out1);

    /** gatherInterp2 over a packed binary16 table (exact widening). */
    void (*gatherInterp2F16)(const std::uint16_t *tab, const std::uint32_t *idx,
                             const float *wts, std::size_t nb, float *out0,
                             float *out1);

    /**
     * gatherInterp2 over a packed INT8 table with a per-tensor scale;
     * each loaded feature dequantizes as float(q) * scale before the
     * weighted accumulation (identical to a dequantize-then-fp32 pass).
     * The table must be padded by >= 2 bytes past its last entry (the
     * AVX2 variant uses 32-bit gathers).
     */
    void (*gatherInterp2I8)(const std::int8_t *tab, float scale,
                            const std::uint32_t *idx, const float *wts,
                            std::size_t nb, float *out0, float *out1);
};

/** The kernel set of the active dispatch (honors forceScalar/env). */
const Kernels &kernels();

/**
 * Exact inline binary16 -> float32 widening (bit manipulation, no
 * libcall) used by the quantized scalar paths; agrees bit-for-bit with
 * Half::toFloat for all 65536 patterns (asserted by test_simd).
 */
inline float
halfBitsToFloat(std::uint16_t h)
{
    const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
    std::uint32_t exp = (h >> 10) & 0x1fu;
    std::uint32_t man = h & 0x3ffu;
    std::uint32_t bits;
    if (exp == 0) {
        if (man == 0) {
            bits = sign; // +-0
        } else {
            // Subnormal half: normalize into a float exponent.
            int e = -1;
            std::uint32_t m = man;
            do {
                ++e;
                m <<= 1;
            } while ((m & 0x400u) == 0);
            bits = sign | ((127u - 15u - static_cast<std::uint32_t>(e)) << 23) |
                   ((m & 0x3ffu) << 13);
        }
    } else if (exp == 0x1f) {
        bits = sign | 0x7f800000u | (man << 13); // inf / NaN
    } else {
        bits = sign | ((exp + (127u - 15u)) << 23) | (man << 13);
    }
    float out;
    __builtin_memcpy(&out, &bits, sizeof(out));
    return out;
}

} // namespace fusion3d::simd

#endif // FUSION3D_COMMON_SIMD_H_
