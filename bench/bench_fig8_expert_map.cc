/**
 * @file
 * Regenerates Fig. 8: the expert-specialization visualization on the
 * tractor scene. Each pixel is colored by the expert contributing the
 * most light; the upper-row adaptivity claim (workload re-partitions
 * automatically with the chip count) is shown by sweeping 2/4/8
 * experts and reporting each expert's pixel share. Writes
 * fig8_experts_<K>.ppm maps next to the binary.
 */

#include <cstdio>
#include <vector>

#include <string>

#include "bench/bench_util.h"
#include "common/image.h"
#include "nerf/camera.h"
#include "nerf/moe.h"

using namespace fusion3d;

int
main(int argc, char **argv)
{
    const int size = argc > 1 ? std::atoi(argv[1]) : 96;
    bench::banner("Fig. 8: MoE expert specialization on the tractor scene");

    const auto scene = scenes::makeSyntheticScene("tractor");
    std::printf("scene fill: %.1f%%\n\n", scene->occupiedFraction() * 100.0);

    const Vec3f palette[8] = {{1, 0.25f, 0.25f}, {0.25f, 1, 0.25f},
                              {0.3f, 0.45f, 1},  {1, 1, 0.3f},
                              {1, 0.3f, 1},      {0.3f, 1, 1},
                              {1, 0.65f, 0.25f}, {0.75f, 0.75f, 0.75f}};

    for (int experts : {2, 4, 8}) {
        nerf::MoeConfig mc;
        mc.numExperts = experts;
        mc.expert = bench::defaultPipeline();
        mc.expert.model.grid.log2TableSize = 13;
        mc.expert.sampler.maxSamplesPerRay = 48;
        nerf::MoeNerf moe(mc);
        bench::bootstrapMoeGates(moe, *scene);

        const nerf::Camera cam = nerf::Camera::orbit({0.5f, 0.42f, 0.5f}, 1.35f,
                                                     35.0f, 22.0f, 45.0f, size, size);
        Image map(size, size);
        std::vector<std::uint64_t> dominant(static_cast<std::size_t>(experts), 0);
        std::uint64_t content_pixels = 0;
        Pcg32 rng(14, 2);
        for (int y = 0; y < size; ++y) {
            for (int x = 0; x < size; ++x) {
                (void)moe.traceRay(cam.rayForPixel(x, y), rng, false);
                int best = -1;
                float best_opacity = 0.02f;
                for (int k = 0; k < experts; ++k) {
                    const nerf::RayEval &p =
                        moe.lastPartials()[static_cast<std::size_t>(k)];
                    const float opacity = 1.0f - p.transmittance;
                    if (opacity > best_opacity) {
                        best_opacity = opacity;
                        best = k;
                    }
                }
                if (best >= 0) {
                    ++dominant[static_cast<std::size_t>(best)];
                    ++content_pixels;
                    map.at(x, y) = palette[best % 8];
                }
            }
        }
        const std::string path = "fig8_experts_" + std::to_string(experts) + ".ppm";
        map.writePpm(path);

        std::printf("%d experts -> pixel share:", experts);
        for (int k = 0; k < experts; ++k) {
            std::printf(" %5.1f%%",
                        content_pixels
                            ? 100.0 * static_cast<double>(
                                          dominant[static_cast<std::size_t>(k)]) /
                                  static_cast<double>(content_pixels)
                            : 0.0);
        }
        std::printf("   (map: %s)\n", path.c_str());
    }
    bench::rule();
    std::printf("Paper: different regions are learned by different experts, and the "
                "assignment re-balances automatically as the chip count changes.\n");
    return 0;
}
