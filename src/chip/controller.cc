#include "chip/controller.h"

#include <algorithm>

#include "common/logging.h"

namespace fusion3d::chip
{

Cycles
pipelineCycles(std::span<const BatchCost> batches)
{
    // start[s] / finish[s] of the previous batch per stage, plus the
    // start of the downstream stage's previous batch (which frees the
    // ping-pong half this stage writes into).
    const std::size_t n = batches.size();
    if (n == 0)
        return 0;

    std::vector<Cycles> finish_prev(3, 0); // finish[s][b-1]
    std::vector<Cycles> start_prev(3, 0);  // start[s][b-1]
    Cycles last_finish = 0;

    for (std::size_t b = 0; b < n; ++b) {
        Cycles start[3];
        Cycles finish[3];
        for (int s = 0; s < 3; ++s) {
            if (batches[b].stage(s) == 0)
                fatal("pipelineCycles: stage costs must be >= 1 cycle");
            Cycles t = finish_prev[static_cast<std::size_t>(s)]; // self busy
            if (s > 0)
                t = std::max(t, finish[s - 1]); // upstream delivered
            if (s < 2 && b > 0) {
                // Output half frees when downstream started the
                // previous batch.
                t = std::max(t, start_prev[static_cast<std::size_t>(s + 1)]);
            }
            start[s] = t;
            finish[s] = t + batches[b].stage(s);
        }
        for (int s = 0; s < 3; ++s) {
            start_prev[static_cast<std::size_t>(s)] = start[s];
            finish_prev[static_cast<std::size_t>(s)] = finish[s];
        }
        last_finish = finish[2];
    }
    return last_finish;
}

PipelinedMachine::PipelinedMachine(std::vector<BatchCost> batches)
    : sim::Clocked("pipelined_machine"), batches_(std::move(batches))
{
    for (const BatchCost &b : batches_) {
        for (int s = 0; s < 3; ++s) {
            if (b.stage(s) == 0)
                fatal("PipelinedMachine: stage costs must be >= 1 cycle");
        }
    }
}

bool
PipelinedMachine::done() const
{
    return retired_ == batches_.size();
}

void
PipelinedMachine::tick(Cycles now)
{
    if (done())
        return;

    // Downstream first: a stage consuming this cycle frees the upstream
    // buffer, allowing an upstream start in the same cycle — matching
    // the analytic recurrence's start[s][b] >= start[s+1][b-1] with
    // equality allowed.
    for (int s = 2; s >= 0; --s) {
        StageState &st = stages_[s];

        // Try to start the next batch.
        if (st.remaining == 0 && st.next < batches_.size() && !st.outputFull) {
            const bool input_ready =
                s == 0 || (stages_[s - 1].outputFull &&
                           stages_[s - 1].next == st.next + 1);
            if (input_ready) {
                if (s > 0)
                    stages_[s - 1].outputFull = false;
                st.remaining = batches_[st.next].stage(s);
            }
        }

        // Work one cycle on the in-flight batch.
        if (st.remaining > 0) {
            --st.remaining;
            ++busy_[s];
            if (st.remaining == 0) {
                ++st.next;
                if (s < 2) {
                    st.outputFull = true;
                } else {
                    ++retired_;
                    finish_ = now + 1;
                }
            }
        }
    }
}

} // namespace fusion3d::chip
