/**
 * @file
 * Streaming quantile estimator over log2-spaced buckets, for the
 * tail-latency percentiles (p50/p95/p99/p99.9) the serving layer
 * reports. Lives in `obs` (stdlib-only, bottom of the dependency
 * order) so both the sim stats package and the SLO monitor can use it;
 * `sim::Quantiles` aliases this type.
 *
 * Each octave [2^k, 2^(k+1)) is split into kSubBuckets linear
 * sub-buckets (HdrHistogram-style log-linear layout), so a reported
 * quantile is off from the exact order statistic by at most one
 * sub-bucket width: a relative error bound of 1/kSubBuckets = 6.25 %
 * (the estimator returns bucket midpoints, halving the typical error).
 * Values are clamped to [2^kMinOctave, 2^kMaxOctave). Memory is a
 * fixed ~8 KB table; sample() is O(1) with no allocation.
 */

#ifndef FUSION3D_OBS_QUANTILES_H_
#define FUSION3D_OBS_QUANTILES_H_

#include <array>
#include <cstdint>
#include <string>

namespace fusion3d::obs
{

class Quantiles
{
  public:
    static constexpr int kSubBuckets = 16;
    static constexpr int kMinOctave = -32;
    static constexpr int kMaxOctave = 32;

    Quantiles() = default;
    explicit Quantiles(std::string name) : name_(std::move(name)) {}

    void sample(double v, std::uint64_t weight = 1);
    void reset();

    std::uint64_t count() const { return count_; }

    /**
     * Value at quantile @p q in [0, 1] (q=0.5 is the median), i.e. the
     * midpoint of the bucket holding the ceil(q*count)-th smallest
     * sample; 0 when empty.
     */
    double quantile(double q) const;

    const std::string &name() const { return name_; }

  private:
    static constexpr int kBuckets = (kMaxOctave - kMinOctave) * kSubBuckets;

    static int bucketIndex(double v);
    static double bucketMidpoint(int index);

    std::string name_;
    std::uint64_t count_ = 0;
    std::array<std::uint64_t, kBuckets> buckets_{};
};

} // namespace fusion3d::obs

#endif // FUSION3D_OBS_QUANTILES_H_
