/**
 * @file
 * Tests of parallel training (DESIGN.md §8): sharded forward/backward
 * across the ThreadPool with deterministic gradient reduction. The
 * contract under test: with a pool attached, a given seed reproduces
 * bit-identical weights and PSNR at ANY pool size, because the shard
 * partition and the reduction order depend only on the batch — never on
 * thread count or scheduling. The chaos test runs checkpoint faults
 * under parallel training and is part of the TSan CI job.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "nerf/freq_nerf.h"
#include "nerf/moe.h"
#include "nerf/pipeline.h"
#include "nerf/tensorf.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"
#include "scenes/factory.h"

namespace fusion3d::nerf
{
namespace
{

PipelineConfig
tinyPipeline()
{
    PipelineConfig pc;
    pc.model.grid.levels = 4;
    pc.model.grid.log2TableSize = 10;
    pc.model.grid.baseResolution = 4;
    pc.model.grid.maxResolution = 32;
    pc.model.densityHidden = 16;
    pc.model.colorHidden = 16;
    pc.model.geoFeatures = 7;
    pc.model.shDegree = 2;
    pc.sampler.maxSamplesPerRay = 16;
    pc.occupancyResolution = 12;
    return pc;
}

Dataset
tinyDataset()
{
    const auto scene = scenes::makeSyntheticScene("mic");
    scenes::DatasetConfig dc = scenes::syntheticRig(12);
    dc.trainViews = 4;
    dc.testViews = 1;
    dc.reference.steps = 48;
    return scenes::makeDataset(*scene, dc);
}

std::vector<float>
allParams(NerfPipeline &pipe)
{
    std::vector<float> out;
    const auto append = [&out](std::span<const float> s) {
        out.insert(out.end(), s.begin(), s.end());
    };
    append(pipe.model().encoding().params());
    append(pipe.model().densityNet().params());
    append(pipe.model().colorNet().params());
    return out;
}

struct TrainOutcome
{
    std::vector<float> params;
    double psnr = 0.0;
};

/** Train the tiny scene with @p pool; raysPerBatch is large enough that
 *  every iteration splits into multiple shards. */
TrainOutcome
trainWithPool(ThreadPool *pool, int evalEvery = 0)
{
    const Dataset data = tinyDataset();
    NerfPipeline pipe(tinyPipeline());
    TrainerConfig tc;
    tc.iterations = 12;
    tc.raysPerBatch = 64;
    tc.occupancyWarmup = 4;
    tc.occupancyUpdateEvery = 4;
    tc.evalEvery = evalEvery;
    tc.pool = pool;
    Trainer trainer(pipe, data, tc);
    TrainOutcome o;
    o.psnr = trainer.run().finalPsnr;
    o.params = allParams(pipe);
    return o;
}

TEST(ParallelTrain, SameSeedIdenticalWeightsAcrossPoolSizes)
{
    // Reference at one worker, compared against 2 and 7 workers plus a
    // zero-thread pool (parallelFor runs inline on the caller). All
    // four must agree bitwise: the issue's acceptance criterion.
    ThreadPool pool1(1);
    const TrainOutcome ref = trainWithPool(&pool1);
    ASSERT_FALSE(ref.params.empty());

    for (const int workers : {2, 7, 0}) {
        ThreadPool pool(workers);
        const TrainOutcome got = trainWithPool(&pool);
        ASSERT_EQ(got.params.size(), ref.params.size());
        std::size_t mismatches = 0;
        for (std::size_t i = 0; i < ref.params.size(); ++i)
            if (got.params[i] != ref.params[i])
                ++mismatches;
        EXPECT_EQ(mismatches, 0u) << "at " << workers << " workers";
        EXPECT_EQ(got.psnr, ref.psnr) << "at " << workers << " workers";
    }
}

TEST(ParallelTrain, InterleavedEvalDoesNotPerturbWeights)
{
    // Mid-training evals render through different paths (legacy row
    // loop vs tiled) depending on whether a pool is configured, and
    // neither may draw from the training RNG stream: interleaving
    // evals must leave the trained weights bitwise unchanged on both
    // paths.
    const TrainOutcome plain = trainWithPool(nullptr);
    const TrainOutcome serial_eval = trainWithPool(nullptr, /*evalEvery=*/4);
    ASSERT_EQ(serial_eval.params.size(), plain.params.size());
    for (std::size_t i = 0; i < plain.params.size(); ++i)
        ASSERT_EQ(serial_eval.params[i], plain.params[i]) << "at param " << i;

    ThreadPool pool(3);
    const TrainOutcome pooled = trainWithPool(&pool);
    const TrainOutcome pooled_eval = trainWithPool(&pool, /*evalEvery=*/4);
    ASSERT_EQ(pooled_eval.params.size(), pooled.params.size());
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < pooled.params.size(); ++i)
        if (pooled_eval.params[i] != pooled.params[i])
            ++mismatches;
    EXPECT_EQ(mismatches, 0u);
}

TEST(ParallelTrain, PoolForwardBitExactVsSerial)
{
    // Sharded forward is bit-exact with the serial no-pool path (the
    // batched GEMM is batch-size invariant per sample; compositing is
    // per-ray independent).
    NerfPipeline serial(tinyPipeline());
    NerfPipeline pooled(tinyPipeline());
    ThreadPool pool(3);
    pooled.setThreadPool(&pool);

    const Camera cam =
        Camera::orbit({0.5f, 0.5f, 0.5f}, 1.2f, 30.0f, 15.0f, 45.0f, 16, 12);
    std::vector<Ray> rays;
    for (int y = 0; y < cam.height(); ++y)
        for (int x = 0; x < cam.width(); ++x)
            rays.push_back(cam.rayForPixel(x, y));

    Pcg32 rng_a(5, 1), rng_b(5, 1);
    std::vector<RayEval> ev_a(rays.size()), ev_b(rays.size());
    serial.traceRays(rays, rng_a, /*record=*/false, ev_a);
    pooled.traceRays(rays, rng_b, /*record=*/false, ev_b);
    for (std::size_t r = 0; r < rays.size(); ++r) {
        EXPECT_EQ(ev_a[r].color.x, ev_b[r].color.x);
        EXPECT_EQ(ev_a[r].color.y, ev_b[r].color.y);
        EXPECT_EQ(ev_a[r].color.z, ev_b[r].color.z);
        EXPECT_EQ(ev_a[r].transmittance, ev_b[r].transmittance);
        EXPECT_EQ(ev_a[r].samples, ev_b[r].samples);
    }
}

TEST(ParallelTrain, OccupancyUpdateMatchesSerial)
{
    // The split update (serial jitter collection + sharded batched
    // density eval) must reproduce the serial grid update exactly and
    // consume the identical rng stream.
    NerfPipeline serial(tinyPipeline());
    NerfPipeline pooled(tinyPipeline());
    ThreadPool pool(3);
    pooled.setThreadPool(&pool);

    Pcg32 rng_a(7, 3), rng_b(7, 3);
    serial.updateOccupancy(rng_a);
    pooled.updateOccupancy(rng_b);

    ASSERT_EQ(serial.grid().cellCount(), pooled.grid().cellCount());
    for (std::size_t i = 0; i < serial.grid().cellCount(); ++i)
        ASSERT_EQ(serial.grid().occupiedCell(i), pooled.grid().occupiedCell(i));
    // Identical draw counts leave the streams in the same state.
    EXPECT_EQ(rng_a.nextUint(), rng_b.nextUint());
}

TEST(ParallelTrain, AdamPoolStepBitExact)
{
    // Big enough to exceed the parallel threshold (16384 params).
    const std::size_t n = 50000;
    std::vector<float> params_a(n), params_b(n), grads(n);
    Pcg32 rng(21, 2);
    for (std::size_t i = 0; i < n; ++i) {
        params_a[i] = rng.nextRange(-1.0f, 1.0f);
        grads[i] = rng.nextRange(-0.1f, 0.1f);
    }
    params_b = params_a;

    AdamConfig cfg;
    Adam serial(n, cfg), pooled(n, cfg);
    ThreadPool pool(4);
    for (int step = 0; step < 3; ++step) {
        serial.step(params_a, grads);
        pooled.step(params_b, grads, &pool);
    }
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(params_a[i], params_b[i]);
}

/** Pool-size determinism of the point-model backends: PointPipeline's
 *  shard partition and shard-ascending gradient merge depend only on
 *  the batch, so FreqNeRF and TensoRF training reproduces bit-identical
 *  weights at any pool size — the same contract the hash-grid pipeline
 *  guarantees above. */
template <class PipelineT, class CollectFn>
void
expectPointTrainingPoolInvariant(const typename PipelineT::Config &cfg,
                                 CollectFn &&collect)
{
    const auto train = [&](ThreadPool *pool) {
        const Dataset data = tinyDataset();
        PipelineT pipe(cfg);
        TrainerConfig tc;
        tc.iterations = 8;
        tc.raysPerBatch = 64;
        tc.occupancyWarmup = 4;
        tc.occupancyUpdateEvery = 4;
        tc.pool = pool;
        Trainer trainer(pipe, data, tc);
        trainer.run();
        return collect(pipe.model());
    };

    ThreadPool pool1(1);
    const std::vector<float> ref = train(&pool1);
    ASSERT_FALSE(ref.empty());
    for (const int workers : {3, 0}) {
        ThreadPool pool(workers);
        const std::vector<float> got = train(&pool);
        ASSERT_EQ(got.size(), ref.size());
        std::size_t mismatches = 0;
        for (std::size_t i = 0; i < ref.size(); ++i)
            if (got[i] != ref[i])
                ++mismatches;
        EXPECT_EQ(mismatches, 0u) << "at " << workers << " workers";
    }
}

TEST(ParallelTrain, FreqDeterministicAcrossPoolSizes)
{
    FreqPipelineConfig fc;
    fc.model.posFrequencies = 4;
    fc.model.hidden = 24;
    fc.model.trunkLayers = 2;
    fc.model.geoFeatures = 7;
    fc.model.colorHidden = 16;
    fc.lrFactors = 2e-3f;
    fc.sampler.maxSamplesPerRay = 16;
    fc.occupancyResolution = 12;
    expectPointTrainingPoolInvariant<FreqPipeline>(
        fc, [](const FreqNerfModel &m) {
            std::vector<float> out(m.trunk().params().begin(),
                                   m.trunk().params().end());
            out.insert(out.end(), m.colorNet().params().begin(),
                       m.colorNet().params().end());
            return out;
        });
}

TEST(ParallelTrain, TensorfDeterministicAcrossPoolSizes)
{
    TensorfPipelineConfig tc;
    tc.model.densityRank = 6;
    tc.model.appearanceRank = 8;
    tc.model.lineResolution = 48;
    tc.model.appearanceDim = 8;
    tc.model.colorHidden = 16;
    tc.sampler.maxSamplesPerRay = 16;
    tc.occupancyResolution = 12;
    expectPointTrainingPoolInvariant<TensorfPipeline>(
        tc, [](const TensorfModel &m) {
            std::vector<float> out(m.factorParams().begin(),
                                   m.factorParams().end());
            out.insert(out.end(), m.colorNet().params().begin(),
                       m.colorNet().params().end());
            return out;
        });
}

TEST(ParallelTrain, MoeDeterministicAcrossPoolSizes)
{
    // Expert-major parallel backward: each expert's gradients stay
    // thread-local in its own pipeline, so MoE training reproduces the
    // same weights at any pool size too.
    const auto train_moe = [](ThreadPool *pool) {
        const Dataset data = tinyDataset();
        MoeConfig mc;
        mc.numExperts = 2;
        mc.expert = tinyPipeline();
        MoeNerf moe(mc);
        TrainerConfig tc;
        tc.iterations = 6;
        tc.raysPerBatch = 48;
        tc.pool = pool;
        Trainer trainer(moe, data, tc);
        trainer.run();
        std::vector<float> params;
        for (int k = 0; k < moe.numExperts(); ++k) {
            const std::vector<float> p = allParams(moe.expert(k));
            params.insert(params.end(), p.begin(), p.end());
        }
        return params;
    };

    ThreadPool pool2(2), pool7(7);
    const std::vector<float> a = train_moe(&pool2);
    const std::vector<float> b = train_moe(&pool7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]);
}

/** Chaos run: checkpoint faults firing under parallel training. */
class ParallelTrainChaos : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(ParallelTrainChaos, CheckpointFaultsUnderParallelTraining)
{
    ASSERT_TRUE(FaultInjector::instance().configureFromSpec(
        "trainer.ckpt.write=every2;seed=9"));

    const Dataset data = tinyDataset();
    NerfPipeline pipe(tinyPipeline());
    ThreadPool pool(4);
    TrainerConfig tc;
    tc.iterations = 10;
    tc.raysPerBatch = 48;
    tc.checkpointEvery = 2;
    tc.checkpointPath = "parallel_chaos_ckpt.f3dm";
    tc.pool = &pool;
    Trainer trainer(pipe, data, tc);
    trainer.setCheckpointModel(&pipe.model());
    const TrainResult r = trainer.run();

    // 5 checkpoint attempts; every2 fails the 2nd and 4th. Training
    // survives every failure and the counters account for all attempts.
    EXPECT_EQ(trainer.checkpointsWritten() + trainer.checkpointsFailed(), 5u);
    EXPECT_EQ(trainer.checkpointsFailed(), 2u);
    EXPECT_EQ(r.iterationsRun, 10);
    EXPECT_TRUE(std::isfinite(r.finalPsnr));
}

} // namespace
} // namespace fusion3d::nerf
