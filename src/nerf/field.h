/**
 * @file
 * Backend-polymorphic serveable radiance field. The serve layer
 * (registry, scheduler, reprojection) and the const render paths
 * (parallel_render) talk to this interface instead of a concrete
 * `NerfModel`, so the hash-grid, frequency-encoded, and TensoRF
 * backends all ride the same deployment stack: registry load / retry /
 * breaker, hot-swap, LRU eviction + single-flight reload, the deadline
 * ladder, reprojection sessions, tracing, and per-tenant QoS.
 *
 * The contract is intentionally tiny: a backend tag, the parameter
 * count (memory accounting), and two *const, thread-safe* batched
 * evaluation entry points. Each call allocates its own scratch, which
 * matches the existing cost model — the tiled renderer already built a
 * fresh batch workspace per row-tile rect.
 */

#ifndef FUSION3D_NERF_FIELD_H_
#define FUSION3D_NERF_FIELD_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "common/quant.h"
#include "common/vec.h"

namespace fusion3d::nerf
{

class NerfModel;

/** Which radiance-field backend an artifact / serve entry holds. */
enum class BackendKind : std::uint32_t
{
    hashGrid = 0, ///< Instant-NGP hash-grid NerfModel (.f3dm v2 payload)
    freqNerf = 1, ///< frequency-encoded pure-MLP FreqNerfModel
    tensorf = 2,  ///< CP-factorized TensorfModel
};

/** Stable lowercase name of a backend kind (logs, JSON, bench output). */
const char *backendKindName(BackendKind kind);

/** A read-only radiance field any backend can expose for serving. */
class ServeableField
{
  public:
    virtual ~ServeableField() = default;

    virtual BackendKind kind() const = 0;

    /** Total trainable parameter count (registry memory accounting). */
    virtual std::size_t paramCount() const = 0;

    /**
     * Batched density+color evaluation. Thread-safe: the call uses only
     * call-local scratch, so any number of render tiles may evaluate
     * the same field concurrently. Per sample the arithmetic is
     * bit-exact with the backend's scalar forward path.
     *
     * @param positions Sample positions in [0,1]^3.
     * @param dirs      Unit view direction per sample (same length).
     * @param sigmas    Receives positions.size() activated densities.
     * @param rgbs      Receives positions.size() activated colors.
     */
    virtual void evalBatch(std::span<const Vec3f> positions,
                           std::span<const Vec3f> dirs, std::span<float> sigmas,
                           std::span<Vec3f> rgbs) const = 0;

    /**
     * Batched density-only evaluation (occupancy-gate rebuilds).
     * Thread-safe and bit-exact per sample with the scalar density
     * query, so a gate rebuilt through this path equals the gate the
     * training pipeline maintained.
     */
    virtual void evalDensityBatch(std::span<const Vec3f> positions,
                                  std::span<float> sigmas) const = 0;

    /**
     * Bytes of resident parameter storage — the registry's memory-
     * budget accounting unit. Defaults to fp32 (paramCount() * 4);
     * backends with packed weight images report their actual footprint.
     */
    virtual std::size_t residentBytes() const
    {
        return paramCount() * sizeof(float);
    }

    /** Numeric format evalBatch reads weights in (fp32 by default). */
    virtual QuantMode quantMode() const { return QuantMode::fp32; }

    /**
     * Switch this field's inference weights to @p mode, releasing the
     * fp32 masters for non-fp32 modes. Returns false if the backend
     * does not support quantization (the default) or the field borrows
     * its model; the field then keeps serving fp32.
     */
    virtual bool applyQuantMode(QuantMode mode)
    {
        return mode == QuantMode::fp32;
    }
};

/**
 * ServeableField over the hash-grid NerfModel. Owns the model when
 * constructed from a unique_ptr, or borrows a caller-owned model (the
 * borrowed model must outlive the field — used by the const render
 * overloads that still accept a bare `const NerfModel&`).
 */
class HashGridServeField : public ServeableField
{
  public:
    explicit HashGridServeField(std::unique_ptr<NerfModel> model);
    explicit HashGridServeField(const NerfModel &model);
    ~HashGridServeField() override;

    BackendKind kind() const override { return BackendKind::hashGrid; }
    std::size_t paramCount() const override;
    void evalBatch(std::span<const Vec3f> positions, std::span<const Vec3f> dirs,
                   std::span<float> sigmas, std::span<Vec3f> rgbs) const override;
    void evalDensityBatch(std::span<const Vec3f> positions,
                          std::span<float> sigmas) const override;
    std::size_t residentBytes() const override;
    QuantMode quantMode() const override;
    bool applyQuantMode(QuantMode mode) override;

    const NerfModel &
    model() const
    {
        return owned_ ? static_cast<const NerfModel &>(*owned_) : *borrowed_;
    }

  private:
    std::unique_ptr<NerfModel> owned_;
    const NerfModel *borrowed_ = nullptr;
};

/**
 * ServeableField over any PointPipeline-compatible model with the
 * batched contract (`makeBatchWorkspace` / `forwardPointBatch` /
 * `queryDensityBatch`, all const). Header-only so each backend
 * instantiates it next to its model type; `FreqServeField` and
 * `TensorfServeField` are the aliases the serve/serialize layers use.
 */
template <class ModelT>
class PointServeField : public ServeableField
{
  public:
    explicit PointServeField(std::unique_ptr<ModelT> model)
        : owned_(std::move(model))
    {}
    explicit PointServeField(const ModelT &model) : borrowed_(&model) {}

    BackendKind kind() const override { return ModelT::kBackendKind; }
    std::size_t paramCount() const override { return model().paramCount(); }

    void
    evalBatch(std::span<const Vec3f> positions, std::span<const Vec3f> dirs,
              std::span<float> sigmas, std::span<Vec3f> rgbs) const override
    {
        typename ModelT::BatchWorkspace ws = model().makeBatchWorkspace();
        model().forwardPointBatch(positions, dirs, ws, sigmas, rgbs);
    }

    void
    evalDensityBatch(std::span<const Vec3f> positions,
                     std::span<float> sigmas) const override
    {
        typename ModelT::BatchWorkspace ws = model().makeBatchWorkspace();
        model().queryDensityBatch(positions, ws, sigmas);
    }

    const ModelT &
    model() const
    {
        return owned_ ? static_cast<const ModelT &>(*owned_) : *borrowed_;
    }
    /** Owning fields only (artifact save paths); null when borrowing. */
    ModelT *mutableModel() { return owned_.get(); }

  private:
    std::unique_ptr<ModelT> owned_;
    const ModelT *borrowed_ = nullptr;
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_FIELD_H_
