/**
 * @file
 * Property-style invariant suite for the model-fleet mechanics
 * (ISSUE 8): registry memory accounting never exceeds the budget after
 * any add/evict/reload/swap/remove interleaving (seeded random op
 * sequences), an evicted-then-reloaded model renders bit-identically,
 * hot-swap mid-traffic never yields a torn read (every request is
 * all-old or all-new), and per-tenant QoS honours in-flight caps,
 * queue-share quotas, and aging-based anti-starvation. Expected to
 * pass under -DFUSION3D_SANITIZE=thread.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "nerf/nerf_model.h"
#include "nerf/parallel_render.h"
#include "nerf/serialize.h"
#include "nerf/tensorf.h"
#include "obs/metrics.h"
#include "serve/model_registry.h"
#include "serve/request_queue.h"
#include "serve/scheduler.h"

namespace fusion3d::serve
{
namespace
{

nerf::NerfModelConfig
tinyModelConfig()
{
    nerf::NerfModelConfig cfg;
    cfg.grid.levels = 4;
    cfg.grid.featuresPerLevel = 2;
    cfg.grid.log2TableSize = 9;
    cfg.grid.baseResolution = 4;
    cfg.grid.maxResolution = 32;
    cfg.geoFeatures = 7;
    cfg.densityHidden = 16;
    cfg.colorHidden = 16;
    cfg.shDegree = 2;
    return cfg;
}

nerf::Camera
testCamera(int size = 16)
{
    return nerf::Camera::orbit({0.5f, 0.5f, 0.5f}, 1.4f, 35.0f, 20.0f, 45.0f,
                               size, size);
}

/** Save a tiny model artifact (weights from @p seed), return its path. */
std::string
savedArtifact(const std::string &filename, std::uint64_t seed)
{
    const nerf::NerfModel model(tinyModelConfig(), seed);
    const std::string path = testing::TempDir() + filename;
    EXPECT_TRUE(nerf::saveModel(model, path));
    return path;
}

bool
imagesIdentical(const Image &a, const Image &b)
{
    if (a.width() != b.width() || a.height() != b.height())
        return false;
    for (int y = 0; y < a.height(); ++y) {
        for (int x = 0; x < a.width(); ++x) {
            const Vec3f pa = a.at(x, y);
            const Vec3f pb = b.at(x, y);
            if (pa.x != pb.x || pa.y != pb.y || pa.z != pb.z)
                return false;
        }
    }
    return true;
}

RegistryConfig
fleetRegistryConfig(std::size_t budget_bytes)
{
    RegistryConfig rc;
    rc.occupancyResolution = 8;
    rc.backoffInitialMs = 0.1;
    rc.backoffMaxMs = 1.0;
    rc.memoryBudgetBytes = budget_bytes;
    return rc;
}

/** Bytes one tiny-model entry costs, measured on a probe registry (all
 *  fleet models here share the config, so all entries weigh this). */
std::size_t
measuredEntryBytes(const std::string &path)
{
    ModelRegistry probe(fleetRegistryConfig(0));
    EXPECT_EQ(probe.addFromFile("probe000", path), nerf::LoadStatus::ok);
    return probe.residentBytes();
}

// ---------------------------------------------------------------------------
// Property 1: memory accounting vs the budget, under seeded random
// add / acquire / reload / swap / remove interleavings.
// ---------------------------------------------------------------------------

TEST(FleetBudget, AccountingNeverExceedsBudgetAcrossRandomOps)
{
    // All names are the same length, so every entry weighs the same.
    constexpr int kModels = 6;
    std::vector<std::string> paths;
    for (int i = 0; i < kModels; ++i)
        paths.push_back(savedArtifact(strprintf("fleet_ops_%d.f3dm", i),
                                      /*seed=*/100 + i));
    const std::size_t entry_bytes = measuredEntryBytes(paths[0]);
    ASSERT_GT(entry_bytes, 0u);
    // Budget fits 3 of 6 models (plus slack for the path string the
    // probe didn't have).
    const std::size_t budget = 3 * entry_bytes + 4096;

    for (const std::uint64_t seed : {7ull, 8ull, 9ull}) {
        SCOPED_TRACE(seed);
        ModelRegistry registry(fleetRegistryConfig(budget));
        Pcg32 rng(seed, 17);
        std::vector<ModelHandle> held; // pins some entries past eviction
        std::set<std::string> registered;

        auto name = [&](int i) { return strprintf("fleet%d", i); };

        for (int step = 0; step < 200; ++step) {
            const int pick = static_cast<int>(rng.nextUint() % kModels);
            switch (rng.nextUint() % 6) {
              case 0: // deploy / re-deploy from artifact
                ASSERT_EQ(registry.addFromFile(name(pick), paths[pick]),
                          nerf::LoadStatus::ok);
                registered.insert(name(pick));
                break;
              case 1: // pin via acquireOrReload (reloads if evicted)
                if (registered.count(name(pick))) {
                    const AcquireResult r =
                        registry.acquireOrReload(name(pick));
                    ASSERT_NE(r.entry, nullptr);
                    ASSERT_EQ(r.entry->name, name(pick));
                    held.push_back(r.entry);
                } else {
                    ASSERT_EQ(registry.acquireOrReload(name(pick)).entry,
                              nullptr);
                }
                break;
              case 2: // hot-swap onto a different artifact
                if (registered.count(name(pick))) {
                    ASSERT_EQ(registry.swap(name(pick),
                                            paths[(pick + 1) % kModels]),
                              nerf::LoadStatus::ok);
                } else {
                    // Never-registered names refuse to swap.
                    ASSERT_EQ(registry.swap(name(pick), paths[pick]),
                              nerf::LoadStatus::ioError);
                }
                break;
              case 3: // unload entirely
                EXPECT_EQ(registry.removeModel(name(pick)),
                          registered.count(name(pick)) > 0);
                registered.erase(name(pick));
                break;
              case 4: // drop a random pin
                if (!held.empty()) {
                    const std::size_t victim =
                        rng.nextUint() % held.size();
                    held.erase(held.begin() +
                               static_cast<std::ptrdiff_t>(victim));
                }
                break;
              case 5: // plain pin of a resident entry
                if (const ModelHandle h = registry.acquire(name(pick)))
                    held.push_back(h);
                break;
            }

            // Exact accounting: residentBytes is the sum of resident
            // entries' self-reported bytes, no drift across any op mix.
            std::size_t sum = 0;
            for (const std::string &n : registry.names()) {
                const ModelEntry *e = registry.find(n);
                ASSERT_NE(e, nullptr);
                sum += e->bytes;
            }
            ASSERT_EQ(registry.residentBytes(), sum);

            // Budget invariant: overshoot is bounded by the pinned
            // entries, which eviction must never touch.
            std::size_t pinned = 0;
            for (const ModelHandle &h : held)
                pinned += h->bytes;
            ASSERT_LE(registry.residentBytes(), budget + pinned);
        }

        // With every pin dropped, the next deploy settles the registry
        // back under its budget.
        held.clear();
        ASSERT_EQ(registry.addFromFile(name(0), paths[0]),
                  nerf::LoadStatus::ok);
        EXPECT_LE(registry.residentBytes(), budget);
        EXPECT_GT(registry.evictions(), 0u);
    }
}

// ---------------------------------------------------------------------------
// Property 2: an evicted-then-reloaded model renders bit-identically.
// ---------------------------------------------------------------------------

TEST(FleetBudget, EvictedThenReloadedModelRendersBitIdentically)
{
    const std::string path = savedArtifact("fleet_reload.f3dm", /*seed=*/41);
    const std::string path2 = savedArtifact("fleet_filler1.f3dm", /*seed=*/42);
    const std::string path3 = savedArtifact("fleet_filler2.f3dm", /*seed=*/43);
    const std::size_t entry_bytes = measuredEntryBytes(path);
    // Room for two entries: loading the two fillers evicts the idle
    // first model.
    ModelRegistry registry(fleetRegistryConfig(2 * entry_bytes + 4096));

    nerf::TiledRenderConfig rc;
    rc.sampler.maxSamplesPerRay = 8;
    const nerf::Camera cam = testCamera();

    ASSERT_EQ(registry.addFromFile("target00", path), nerf::LoadStatus::ok);
    Image before;
    {
        const ModelHandle h = registry.acquire("target00");
        ASSERT_NE(h, nullptr);
        before = nerf::renderImageTiled(*h->model, &h->grid, cam, rc, nullptr);
    } // pin dropped: target00 is evictable again
    const std::uint64_t epoch_before = registry.epoch("target00");

    ASSERT_EQ(registry.addFromFile("filler01", path2), nerf::LoadStatus::ok);
    ASSERT_EQ(registry.addFromFile("filler02", path3), nerf::LoadStatus::ok);
    EXPECT_GT(registry.evictions(), 0u);
    EXPECT_EQ(registry.find("target00"), nullptr) << "target00 must be evicted";
    // Eviction bumped the epoch: reprojection sessions keyed on the old
    // epoch stale-miss instead of warping a ghost frame.
    EXPECT_GT(registry.epoch("target00"), epoch_before);

    const AcquireResult r = registry.acquireOrReload("target00");
    ASSERT_NE(r.entry, nullptr);
    EXPECT_TRUE(r.reloaded);
    EXPECT_EQ(registry.reloads(), 1u);
    const Image after =
        nerf::renderImageTiled(*r.entry->model, &r.entry->grid, cam, rc, nullptr);
    EXPECT_TRUE(imagesIdentical(before, after))
        << "reload-from-artifact must reproduce the original render bit "
           "for bit (weights CRC-checked, occupancy gate rebuilt with a "
           "fixed seed)";
}

/** Save a tiny TensoRF v3 artifact (weights from @p seed). */
std::string
savedTensorfArtifact(const std::string &filename, std::uint64_t seed)
{
    nerf::TensorfModelConfig mc;
    mc.densityRank = 6;
    mc.appearanceRank = 8;
    mc.lineResolution = 48;
    mc.appearanceDim = 8;
    mc.colorHidden = 16;
    const nerf::TensorfModel model(mc, seed);
    const nerf::TensorfServeField field(model);
    const std::string path = testing::TempDir() + filename;
    EXPECT_TRUE(nerf::saveField(field, path));
    return path;
}

TEST(FleetBudget, TensorfSurvivesEvictReloadAndHotSwapInAMixedFleet)
{
    // The full backend-polymorphic lifecycle: a TensoRF v3 artifact
    // deploys next to hash-grid entries, hot-swaps onto a second
    // TensoRF version, is evicted by hash-grid fillers under budget
    // pressure, and reloads bit-identically.
    const std::string path_t1 = savedTensorfArtifact("fleet_t1.f3dm", 71);
    const std::string path_t2 = savedTensorfArtifact("fleet_t2.f3dm", 72);
    const std::string filler1 = savedArtifact("fleet_mix1.f3dm", 73);
    const std::string filler2 = savedArtifact("fleet_mix2.f3dm", 74);

    nerf::TiledRenderConfig rc;
    rc.sampler.maxSamplesPerRay = 8;
    const nerf::Camera cam = testCamera();

    // Budget sized to the *hash-grid* entry: the tiny TensoRF model is
    // far smaller, so two hash-grid fillers still evict it once idle.
    const std::size_t entry_bytes = measuredEntryBytes(filler1);
    ModelRegistry registry(fleetRegistryConfig(2 * entry_bytes + 4096));

    ASSERT_EQ(registry.addFromFile("tensorf0", path_t1), nerf::LoadStatus::ok);
    const ModelEntry *entry = registry.find("tensorf0");
    ASSERT_NE(entry, nullptr);
    ASSERT_EQ(entry->model->kind(), nerf::BackendKind::tensorf);
    const Image v1 =
        nerf::renderImageTiled(*entry->model, &entry->grid, cam, rc, nullptr);

    // Hot-swap onto the second version, then back: frames must track
    // the artifact exactly.
    ASSERT_EQ(registry.swap("tensorf0", path_t2), nerf::LoadStatus::ok);
    entry = registry.find("tensorf0");
    const Image v2 =
        nerf::renderImageTiled(*entry->model, &entry->grid, cam, rc, nullptr);
    ASSERT_FALSE(imagesIdentical(v1, v2));
    ASSERT_EQ(registry.swap("tensorf0", path_t1), nerf::LoadStatus::ok);
    entry = registry.find("tensorf0");
    ASSERT_TRUE(imagesIdentical(
        v1, nerf::renderImageTiled(*entry->model, &entry->grid, cam, rc,
                                   nullptr)));

    // Budget pressure from hash-grid fillers evicts the idle TensoRF
    // entry; acquireOrReload brings it back from the v3 artifact.
    ASSERT_EQ(registry.addFromFile("filler01", filler1), nerf::LoadStatus::ok);
    ASSERT_EQ(registry.addFromFile("filler02", filler2), nerf::LoadStatus::ok);
    ASSERT_EQ(registry.find("tensorf0"), nullptr)
        << "the idle TensoRF entry must be evicted";

    const AcquireResult r = registry.acquireOrReload("tensorf0");
    ASSERT_NE(r.entry, nullptr);
    EXPECT_TRUE(r.reloaded);
    EXPECT_EQ(r.entry->model->kind(), nerf::BackendKind::tensorf);
    const Image after =
        nerf::renderImageTiled(*r.entry->model, &r.entry->grid, cam, rc, nullptr);
    EXPECT_TRUE(imagesIdentical(v1, after))
        << "a reloaded TensoRF artifact must reproduce the original "
           "render bit for bit";
}

// ---------------------------------------------------------------------------
// Property 3: hot-swap mid-traffic never yields a torn read.
// ---------------------------------------------------------------------------

TEST(FleetSwap, HotSwapMidTrafficIsNeverTorn)
{
    const std::string path_a = savedArtifact("fleet_swap_a.f3dm", /*seed=*/101);
    const std::string path_b = savedArtifact("fleet_swap_b.f3dm", /*seed=*/202);

    ServeConfig sc;
    sc.renderThreads = 2;
    sc.render.sampler.maxSamplesPerRay = 8;
    const nerf::Camera cam = testCamera();

    // Expected frames per version, from a reference registry (the gate
    // rebuild is deterministic, so entries rebuilt elsewhere render
    // identically) — and the two versions must actually differ for the
    // all-old-or-all-new check to mean anything.
    Image img_a, img_b;
    {
        ModelRegistry reference(fleetRegistryConfig(0));
        ASSERT_EQ(reference.addFromFile("va", path_a), nerf::LoadStatus::ok);
        ASSERT_EQ(reference.addFromFile("vb", path_b), nerf::LoadStatus::ok);
        const ModelEntry *ea = reference.find("va");
        const ModelEntry *eb = reference.find("vb");
        img_a = nerf::renderImageTiled(*ea->model, &ea->grid, cam, sc.render,
                                       nullptr);
        img_b = nerf::renderImageTiled(*eb->model, &eb->grid, cam, sc.render,
                                       nullptr);
        ASSERT_FALSE(imagesIdentical(img_a, img_b));
    }

    ModelRegistry registry(fleetRegistryConfig(0));
    ASSERT_EQ(registry.addFromFile("live", path_a), nerf::LoadStatus::ok);
    RenderServer server(registry, sc);

    constexpr int kRequests = 24;
    std::vector<std::future<RenderResponse>> futures;
    std::thread client([&]() {
        for (int i = 0; i < kRequests; ++i) {
            RenderRequest req;
            req.model = "live";
            req.camera = cam;
            futures.push_back(server.submit(req));
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    });

    // Swap back and forth underneath the traffic.
    const char *versions[] = {path_b.c_str(), path_a.c_str()};
    for (int s = 0; s < 6; ++s) {
        ASSERT_EQ(registry.swap("live", versions[s % 2]), nerf::LoadStatus::ok);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    client.join();
    EXPECT_EQ(registry.swaps(), 6u);

    int from_a = 0, from_b = 0;
    for (auto &f : futures) {
        const RenderResponse r = f.get();
        ASSERT_EQ(r.outcome, Outcome::renderedFull);
        if (imagesIdentical(r.image, img_a))
            ++from_a;
        else if (imagesIdentical(r.image, img_b))
            ++from_b;
        else
            FAIL() << "torn read: request " << r.id
                   << " matches neither model version exactly";
    }
    EXPECT_EQ(from_a + from_b, kRequests);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Property 4: per-tenant quotas — in-flight caps, queue share, aging.
// ---------------------------------------------------------------------------

TEST(FleetQos, InFlightCapHoldsRequestsBackUntilRelease)
{
    QueueConfig qc;
    qc.capacity = 16;
    qc.qos.maxInFlightPerTenant = 2;
    RequestQueue queue(qc);

    for (int i = 0; i < 6; ++i) {
        QueuedRequest qr;
        qr.request.model = "m";
        qr.request.tenant = "hog";
        qr.id = static_cast<std::uint64_t>(i + 1);
        ASSERT_EQ(queue.push(std::move(qr)), PushResult::ok);
    }
    EXPECT_EQ(queue.tenantQueued("hog"), 6u);

    // A same-model batch of 8 still only takes 2: the tenant's cap.
    std::vector<QueuedRequest> batch;
    ASSERT_TRUE(queue.popBatch(batch, 8));
    EXPECT_EQ(batch.size(), 2u);
    EXPECT_EQ(queue.tenantInFlight("hog"), 2u);
    EXPECT_EQ(queue.tenantQueued("hog"), 4u);
    for (const QueuedRequest &qr : batch)
        EXPECT_TRUE(qr.tenantSlot);

    // One release frees exactly one slot.
    queue.release("hog");
    ASSERT_TRUE(queue.popBatch(batch, 8));
    EXPECT_EQ(batch.size(), 1u);
    EXPECT_EQ(queue.tenantInFlight("hog"), 2u);

    // An under-cap tenant dispatches even while "hog" is pinned at its
    // cap — the isolation property.
    QueuedRequest other;
    other.request.model = "m";
    other.request.tenant = "small";
    ASSERT_EQ(queue.push(std::move(other)), PushResult::ok);
    ASSERT_TRUE(queue.popBatch(batch, 8));
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch.front().request.tenant, "small");
}

TEST(FleetQos, QueueShareRejectsOnlyTheOverSubscribedTenant)
{
    QueueConfig qc;
    qc.capacity = 8;
    qc.qos.maxQueueShare = 0.25; // 2 of 8 slots per tenant
    RequestQueue queue(qc);

    auto pushFor = [&](const char *tenant) {
        QueuedRequest qr;
        qr.request.model = "m";
        qr.request.tenant = tenant;
        return queue.push(std::move(qr));
    };
    EXPECT_EQ(pushFor("hog"), PushResult::ok);
    EXPECT_EQ(pushFor("hog"), PushResult::ok);
    EXPECT_EQ(pushFor("hog"), PushResult::tenantQuota);
    EXPECT_EQ(queue.tenantQueued("hog"), 2u);
    // Other tenants are untouched by hog's quota.
    EXPECT_EQ(pushFor("small"), PushResult::ok);
    EXPECT_EQ(queue.depth(), 3u);
}

TEST(FleetQos, AgingGuaranteesEventualDispatchOfLowestPriorityTenant)
{
    QueueConfig qc;
    qc.capacity = 16;
    qc.qos.agingPriorityPerSecond = 1000.0;
    RequestQueue queue(qc);

    // enqueued is normally stamped by RenderServer::submit; direct
    // queue pushes must stamp it themselves for aging to measure wait.
    QueuedRequest starved;
    starved.request.model = "mSlow";
    starved.request.tenant = "patient";
    starved.request.priority = 0;
    starved.enqueued = Clock::now();
    starved.id = 1;
    ASSERT_EQ(queue.push(std::move(starved)), PushResult::ok);

    // Let the starved request accrue an aging bonus that overtakes the
    // fresh high-priority stream (>= 25 ms * 1000/s = +25 effective).
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    for (int i = 0; i < 4; ++i) {
        QueuedRequest fresh;
        fresh.request.model = "mFast";
        fresh.request.tenant = "heavy";
        fresh.request.priority = 5;
        fresh.enqueued = Clock::now();
        fresh.id = static_cast<std::uint64_t>(10 + i);
        ASSERT_EQ(queue.push(std::move(fresh)), PushResult::ok);
    }

    std::vector<QueuedRequest> batch;
    ASSERT_TRUE(queue.popBatch(batch, 8));
    EXPECT_EQ(batch.front().request.tenant, "patient")
        << "aging must let the longest-waiting low-priority request "
           "overtake a fresh priority-5 stream";

    // Without aging, strict static priority would have dispatched the
    // heavy tenant first — pin that contrast down.
    RequestQueue strict(QueueConfig{16, {}});
    QueuedRequest again;
    again.request.model = "mSlow";
    again.request.priority = 0;
    ASSERT_EQ(strict.push(std::move(again)), PushResult::ok);
    QueuedRequest vip;
    vip.request.model = "mFast";
    vip.request.priority = 5;
    ASSERT_EQ(strict.push(std::move(vip)), PushResult::ok);
    ASSERT_TRUE(strict.popBatch(batch, 1));
    EXPECT_EQ(batch.front().request.model, "mFast");
}

TEST(FleetQos, ServerEnforcesQuotaAndExportsTenantStats)
{
    ModelRegistry registry(fleetRegistryConfig(0));
    registry.add("m", std::make_unique<nerf::NerfModel>(tinyModelConfig(), 5));

    ServeConfig sc;
    sc.renderThreads = 1;
    sc.maxInFlight = 1;
    sc.queueCapacity = 4;
    sc.qos.maxQueueShare = 0.25; // 1 of 4 queue slots per tenant
    sc.qos.maxInFlightPerTenant = 1;
    sc.render.sampler.maxSamplesPerRay = 8;
    RenderServer server(registry, sc);

    std::vector<std::future<RenderResponse>> futures;
    for (int i = 0; i < 8; ++i) {
        RenderRequest req;
        req.model = "m";
        req.camera = testCamera();
        req.tenant = "hog";
        futures.push_back(server.submit(req));
    }
    RenderRequest other;
    other.model = "m";
    other.camera = testCamera();
    other.tenant = "small";
    auto small_future = server.submit(other);

    int quota = 0, rendered = 0;
    for (auto &f : futures) {
        const RenderResponse r = f.get();
        quota += r.outcome == Outcome::rejectedTenantQuota ? 1 : 0;
        rendered += isRejected(r.outcome) ? 0 : 1;
    }
    EXPECT_GT(quota, 0) << "an 8-burst into a 1-slot share must trip the quota";
    EXPECT_GT(rendered, 0);
    // The under-quota tenant suffered no collateral rejection.
    EXPECT_FALSE(isRejected(small_future.get().outcome));

    server.drain();
    EXPECT_EQ(server.stats().tenantQuotaRejected("hog"),
              static_cast<std::uint64_t>(quota));
    EXPECT_EQ(server.stats().tenantCompleted("hog"), 8u);
    EXPECT_EQ(server.stats().tenantCompleted("small"), 1u);
    EXPECT_EQ(server.stats().tenantShed("small"), 0u);
    EXPECT_GT(server.stats().tenantLatencyQuantileMs("hog", 0.99), 0.0);
    const std::vector<std::string> names = server.stats().tenantNames();
    EXPECT_EQ(names.size(), 2u);

    // serve.tenant.* lands in the process-wide metrics export.
    std::ostringstream os;
    obs::MetricsRegistry::global().exportJsonLine(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("serve.tenant.hog.quota_rejected"), std::string::npos)
        << json;
    EXPECT_NE(json.find("serve.tenant.small.completed"), std::string::npos)
        << json;
}

} // namespace
} // namespace fusion3d::serve
