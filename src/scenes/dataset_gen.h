/**
 * @file
 * Dataset generation: render posed ground-truth views of an analytic
 * scene with the reference renderer, producing the train/test splits the
 * NeRF pipeline consumes. Object scenes use an outward orbit rig (like
 * NeRF-Synthetic); 360 scenes an inside-the-scene orbit (like NeRF-360).
 */

#ifndef FUSION3D_SCENES_DATASET_GEN_H_
#define FUSION3D_SCENES_DATASET_GEN_H_

#include "nerf/dataset.h"
#include "scenes/reference_renderer.h"
#include "scenes/scene.h"

namespace fusion3d::scenes
{

/** Dataset-rig configuration. */
struct DatasetConfig
{
    int trainViews = 12;
    int testViews = 2;
    int width = 64;
    int height = 64;
    float vfovDegrees = 45.0f;
    /** Orbit radius; object rigs sit outside the cube (> ~0.9). */
    float orbitRadius = 1.4f;
    /** Orbit elevations alternate between these two values. */
    float elevLowDeg = 15.0f;
    float elevHighDeg = 35.0f;
    ReferenceConfig reference;
};

/** Defaults matching an object-centric (synthetic) capture. */
DatasetConfig syntheticRig(int image_size = 64);

/** Defaults matching an inside-out large-scene (360) capture. */
DatasetConfig nerf360Rig(int image_size = 64);

/** Render a dataset of @p scene with rig @p cfg. */
nerf::Dataset makeDataset(const Scene &scene, const DatasetConfig &cfg);

} // namespace fusion3d::scenes

#endif // FUSION3D_SCENES_DATASET_GEN_H_
