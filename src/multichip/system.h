/**
 * @file
 * The Fusion-3D multi-chip system (Sec. V): four scaled-up chips, each
 * holding one MoE expert, joined by a PCB with an I/O module. Captures
 * per-expert workload traces from a MoeNerf, runs each chip's cycle
 * models, and accounts chip-to-chip communication — both for the MoE
 * scheme (pixels only) and the conventional layer-split alternative
 * (activations), which is the 94% communication saving of Fig. 12(a).
 */

#ifndef FUSION3D_MULTICHIP_SYSTEM_H_
#define FUSION3D_MULTICHIP_SYSTEM_H_

#include <cstdint>
#include <vector>

#include "chip/chip.h"
#include "multichip/io_module.h"
#include "nerf/moe.h"

namespace fusion3d::multichip
{

/** System configuration. */
struct SystemConfig
{
    int numChips = 4;
    chip::ChipConfig chip = chip::ChipConfig::scaledUp();
    /** Per-link chip-to-chip bandwidth on the PCB, bytes/second. */
    double chipToChipBytesPerSec = 0.6e9;
    /** Off-board (host) bandwidth, bytes/second (the USB-class limit). */
    double offChipBytesPerSec = 0.6e9;
    /** Energy per byte moved chip-to-chip on the PCB, joules. */
    double chipToChipEnergyPerByte = 10e-12 * 8; // 10 pJ/bit
    /** Partial pixels the I/O module can fuse per second. */
    double ioFusionRate = 600e6;
    IoModule io;
};

/** Per-chip slice of a system run. */
struct ChipSlice
{
    chip::ChipRunResult perf;
    chip::SamplingRunStats stage1;
    chip::InterpRunStats stage2;
    chip::WorkloadProfile workload;
};

/** Result of a system-level run. */
struct SystemRunResult
{
    std::vector<ChipSlice> chips;
    /** Wall-clock of the slowest chip. */
    double computeSeconds = 0.0;
    /** Chip-to-chip communication time (overlappable; reported). */
    double commSeconds = 0.0;
    /** Time the I/O module spends fusing expert partials. */
    double fusionSeconds = 0.0;
    /** End-to-end seconds: compute (chips run in parallel) + fusion. */
    double seconds = 0.0;
    /** MoE chip-to-chip traffic: partial pixels + broadcast rays. */
    std::uint64_t moeCommBytes = 0;
    /** Hypothetical layer-split traffic: inter-chip activations. */
    std::uint64_t layerSplitCommBytes = 0;
    /** Total energy: chips + I/O module + communication. */
    double energyJ = 0.0;
    /** Total valid samples across chips. */
    std::uint64_t totalPoints = 0;
    /** Workload imbalance: slowest/average chip time. */
    double imbalance = 1.0;

    double throughputPointsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(totalPoints) / seconds : 0.0;
    }
    /** Fraction of layer-split traffic the MoE scheme eliminates. */
    double
    commSavingFraction() const
    {
        if (layerSplitCommBytes == 0)
            return 0.0;
        return 1.0 - static_cast<double>(moeCommBytes) /
                         static_cast<double>(layerSplitCommBytes);
    }
};

/** The multi-chip accelerator model. */
class MultiChipSystem
{
  public:
    explicit MultiChipSystem(const SystemConfig &cfg);

    const SystemConfig &config() const { return cfg_; }

    /** Total system power at nominal operation (chips + I/O module). */
    double totalPowerW() const;

    /** Total system die area (chips + I/O module), mm^2. */
    double totalAreaMm2() const;

    /** Total system SRAM (chips + I/O module), KB. */
    double totalSramKb() const;

    /**
     * Characterize rendering a frame with a MoeNerf whose expert count
     * matches numChips. Traces @p trace_rays rays; each expert's Stage
     * I/II work lands on its own chip.
     */
    SystemRunResult evaluateInference(nerf::MoeNerf &moe, const nerf::Camera &camera,
                                      int trace_rays = 1024,
                                      std::uint64_t seed = 55) const;

    /** Characterize one training iteration of @p rays_per_batch rays. */
    SystemRunResult evaluateTraining(nerf::MoeNerf &moe, const nerf::Dataset &dataset,
                                     int rays_per_batch = 2048,
                                     std::uint64_t seed = 55) const;

  private:
    SystemRunResult
    run(nerf::MoeNerf &moe, const std::vector<Ray> &rays, bool training,
        std::uint64_t full_rays) const;

    SystemConfig cfg_;
};

} // namespace fusion3d::multichip

#endif // FUSION3D_MULTICHIP_SYSTEM_H_
