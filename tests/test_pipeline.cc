/** @file Integration tests: the full pipeline trains on a toy scene,
 *  MoE partitions space, and the trainer's quantization hook bites. */

#include <gtest/gtest.h>

#include "nerf/moe.h"
#include "nerf/pipeline.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"
#include "scenes/factory.h"

namespace fusion3d::nerf
{
namespace
{

PipelineConfig
tinyPipeline()
{
    PipelineConfig pc;
    pc.model.grid.levels = 6;
    pc.model.grid.log2TableSize = 12;
    pc.model.grid.baseResolution = 8;
    pc.model.grid.maxResolution = 64;
    pc.model.densityHidden = 24;
    pc.model.colorHidden = 24;
    pc.model.geoFeatures = 7;
    pc.model.shDegree = 2;
    pc.sampler.maxSamplesPerRay = 32;
    pc.occupancyResolution = 24;
    return pc;
}

Dataset
tinyDataset(const std::string &scene_name = "mic", int size = 24)
{
    const auto scene = scenes::makeSyntheticScene(scene_name);
    scenes::DatasetConfig dc = scenes::syntheticRig(size);
    dc.trainViews = 6;
    dc.testViews = 1;
    dc.reference.steps = 96;
    return scenes::makeDataset(*scene, dc);
}

TEST(Pipeline, TraceRayDeterministicWithoutJitter)
{
    PipelineConfig pc = tinyPipeline();
    pc.sampler.jitter = false;
    NerfPipeline pipe(pc);
    Pcg32 rng(1);
    const Ray ray({0.5f, 0.5f, -1.0f}, {0.0f, 0.0f, 1.0f});
    const RayEval a = pipe.traceRay(ray, rng, false);
    const RayEval b = pipe.traceRay(ray, rng, false);
    EXPECT_EQ(a.color, b.color);
    EXPECT_EQ(a.samples, b.samples);
}

TEST(Pipeline, BackwardRequiresRecordedRay)
{
    NerfPipeline pipe(tinyPipeline());
    EXPECT_DEATH(pipe.backwardLastRay({1.0f, 0.0f, 0.0f}), "backwardLastRay");
}

TEST(Pipeline, TrainingImprovesPsnr)
{
    const Dataset data = tinyDataset();
    NerfPipeline pipe(tinyPipeline());
    TrainerConfig tc;
    tc.iterations = 120;
    tc.raysPerBatch = 128;
    tc.occupancyWarmup = 40;
    tc.occupancyUpdateEvery = 40;
    Trainer trainer(pipe, data, tc);

    const double before = trainer.evalPsnr();
    const TrainResult result = trainer.run();
    EXPECT_GT(result.finalPsnr, before + 5.0);
    EXPECT_GT(result.finalPsnr, 18.0);
    EXPECT_EQ(result.iterationsRun, 120);
    EXPECT_EQ(result.totalRays, 120u * 128u);
    EXPECT_GT(result.totalSamples, 0u);
    EXPECT_GE(result.totalCandidates, result.totalSamples);
}

TEST(Pipeline, OccupancyUpdateShrinksWorkload)
{
    const Dataset data = tinyDataset("mic");
    PipelineConfig pc = tinyPipeline();
    // A higher gate threshold: empty space needs fewer iterations to
    // fall below it (sigma ~= 1 at init under the exp activation).
    pc.occupancyThreshold = 1.0f;
    NerfPipeline pipe(pc);
    TrainerConfig tc;
    tc.iterations = 160;
    tc.raysPerBatch = 96;
    tc.occupancyWarmup = 60;
    tc.occupancyUpdateEvery = 25;
    Trainer trainer(pipe, data, tc);
    trainer.run();
    // After training a sparse scene, the gate must be far below full.
    EXPECT_LT(pipe.grid().occupiedFraction(), 0.6);
    EXPECT_GT(pipe.grid().occupiedFraction(), 0.0);
}

TEST(Pipeline, QuantizedTrainingDegrades)
{
    const Dataset data = tinyDataset("lego");

    TrainerConfig tc;
    tc.iterations = 140;
    tc.raysPerBatch = 96;

    NerfPipeline full(tinyPipeline());
    Trainer full_trainer(full, data, tc);
    const double full_psnr = full_trainer.run().finalPsnr;

    TrainerConfig tq = tc;
    tq.quantizeEvery = 1; // quantize every iteration: must hurt badly
    NerfPipeline quant(tinyPipeline());
    Trainer quant_trainer(quant, data, tq);
    const double quant_psnr = quant_trainer.run().finalPsnr;

    EXPECT_GT(full_psnr, quant_psnr + 2.0);
}

TEST(Moe, RegionsPartitionSpace)
{
    MoeConfig mc;
    mc.numExperts = 4;
    mc.expert = tinyPipeline();
    MoeNerf moe(mc);

    Pcg32 rng(5);
    int counts[4] = {};
    for (int i = 0; i < 4000; ++i) {
        const int r = moe.regionOf(rng.nextVec3());
        ASSERT_GE(r, 0);
        ASSERT_LT(r, 4);
        ++counts[r];
    }
    for (int k = 0; k < 4; ++k)
        EXPECT_GT(counts[k], 400); // roughly balanced wedges
}

TEST(Moe, ExpertGatesAreDisjoint)
{
    MoeConfig mc;
    mc.numExperts = 4;
    mc.expert = tinyPipeline();
    MoeNerf moe(mc);

    Pcg32 rng(6);
    for (int i = 0; i < 500; ++i) {
        const Vec3f p = rng.nextVec3();
        int owners = 0;
        for (int k = 0; k < 4; ++k)
            owners += moe.expert(k).grid().occupiedAt(p) ? 1 : 0;
        EXPECT_LE(owners, 1) << "point owned by multiple experts";
    }
}

TEST(Moe, TraceFusesWeightedExpertPartials)
{
    MoeConfig mc;
    mc.numExperts = 2;
    mc.expert = tinyPipeline();
    mc.expert.sampler.jitter = false;
    MoeNerf moe(mc);
    Pcg32 rng(7);
    const Ray ray({0.5f, 0.5f, -1.0f}, {0.0f, 0.0f, 1.0f});
    const RayEval total = moe.traceRay(ray, rng, false);
    Vec3f fused(0.0f);
    int samples = 0;
    float tprod = 1.0f;
    for (int k = 0; k < moe.numExperts(); ++k) {
        const RayEval &p = moe.lastPartials()[static_cast<std::size_t>(k)];
        fused += p.color * moe.lastFusionWeights()[static_cast<std::size_t>(k)];
        samples += p.samples;
        tprod *= p.transmittance;
    }
    EXPECT_NEAR(total.color.x, fused.x, 1e-5f);
    EXPECT_NEAR(total.color.y, fused.y, 1e-5f);
    EXPECT_EQ(total.samples, samples);
    EXPECT_NEAR(total.transmittance, tprod, 1e-5f);
    // The depth-first expert carries weight 1; the later one is
    // attenuated by the first's transmittance.
    const auto &w = moe.lastFusionWeights();
    EXPECT_FLOAT_EQ(std::max(w[0], w[1]), 1.0f);
}

TEST(Moe, TrainsOnToyScene)
{
    const Dataset data = tinyDataset("lego");
    MoeConfig mc;
    mc.numExperts = 2;
    mc.expert = tinyPipeline();
    mc.expert.model.grid.log2TableSize = 11; // smaller experts
    MoeNerf moe(mc);

    TrainerConfig tc;
    tc.iterations = 120;
    tc.raysPerBatch = 96;
    tc.occupancyWarmup = 60;
    tc.occupancyUpdateEvery = 30;
    Trainer trainer(moe, data, tc);
    const double before = trainer.evalPsnr();
    const TrainResult result = trainer.run();
    EXPECT_GT(result.finalPsnr, before + 3.0);
}

} // namespace
} // namespace fusion3d::nerf
