#include "nerf/trainer.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "nerf/camera.h"
#include "nerf/sampler.h"
#include "nerf/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fusion3d::nerf
{

namespace
{

/** Process-wide training-loop counters behind nerf.train.iterations/rays. */
struct TrainerStats
{
    std::atomic<std::uint64_t> iterations{0};
    std::atomic<std::uint64_t> rays{0};

    TrainerStats()
    {
        obs::MetricsRegistry::global().registerCollector(
            "nerf.trainer", [this](obs::MetricSink &sink) {
                sink.counter("nerf.train.iterations",
                             static_cast<double>(
                                 iterations.load(std::memory_order_relaxed)));
                sink.counter("nerf.train.rays",
                             static_cast<double>(
                                 rays.load(std::memory_order_relaxed)));
            });
    }
};

TrainerStats &
trainerStats()
{
    static TrainerStats stats;
    return stats;
}

} // namespace

Trainer::Trainer(RadianceField &field, const Dataset &data, const TrainerConfig &cfg)
    : field_(field), data_(data), cfg_(cfg), rng_(cfg.seed, 0x5851f42d4c957f2dULL)
{
    if (data.train.empty())
        fatal("Trainer: dataset has no training views");
    if (cfg_.pool)
        field_.setThreadPool(cfg_.pool);
}

void
Trainer::trainIteration()
{
    F3D_TRACE_SPAN_ARG("train", "iteration", iter_);
    field_.zeroGrads();

    RayWorkload workload;
    {
        F3D_TRACE_SPAN("train", "ray_batch");
        const std::size_t n = static_cast<std::size_t>(cfg_.raysPerBatch);
        batch_rays_.clear();
        batch_gts_.clear();
        batch_rays_.reserve(n);
        batch_gts_.reserve(n);
        for (int r = 0; r < cfg_.raysPerBatch; ++r) {
            const TrainView &view = data_.train[rng_.nextBounded(
                static_cast<std::uint32_t>(data_.train.size()))];
            const int px = static_cast<int>(rng_.nextBounded(
                static_cast<std::uint32_t>(view.image.width())));
            const int py = static_cast<int>(rng_.nextBounded(
                static_cast<std::uint32_t>(view.image.height())));
            batch_rays_.push_back(
                view.camera.rayForPixel(px, py, rng_.nextFloat(), rng_.nextFloat()));
            batch_gts_.push_back(view.image.at(px, py));
        }

        // The whole minibatch runs as ONE batched forward and ONE
        // batched backward through the field's SoA core.
        batch_evals_.resize(n);
        field_.traceRays(batch_rays_, rng_, /*record=*/true, batch_evals_, &workload);

        batch_dcolors_.resize(n);
        for (std::size_t r = 0; r < n; ++r) {
            const RayEval &ev = batch_evals_[r];
            ++total_rays_;
            total_samples_ += static_cast<std::uint64_t>(ev.samples);
            total_candidates_ += static_cast<std::uint64_t>(ev.candidates);
            batch_dcolors_[r] = ev.color - batch_gts_[r]; // d/dC of 0.5*|C-gt|^2
        }
        field_.backwardRays(batch_dcolors_);

        TrainerStats &stats = trainerStats();
        stats.iterations.fetch_add(1, std::memory_order_relaxed);
        stats.rays.fetch_add(n, std::memory_order_relaxed);
    }

    {
        F3D_TRACE_SPAN("train", "optimizer_step");
        field_.optimizerStep();
    }
    ++iter_;

    if (cfg_.occupancyUpdateEvery > 0 && iter_ >= cfg_.occupancyWarmup &&
        (iter_ - cfg_.occupancyWarmup) % cfg_.occupancyUpdateEvery == 0) {
        F3D_TRACE_SPAN("train", "occupancy_update");
        field_.updateOccupancy(rng_);
    }

    if (cfg_.quantizeEvery > 0 && iter_ % cfg_.quantizeEvery == 0) {
        F3D_TRACE_SPAN("train", "quantize_weights");
        field_.quantizeWeights();
    }

    if (cfg_.checkpointEvery > 0 && ckpt_model_ &&
        iter_ % cfg_.checkpointEvery == 0) {
        F3D_TRACE_SPAN("train", "checkpoint");
        if (saveModelAtomic(*ckpt_model_, cfg_.checkpointPath)) {
            ++ckpts_written_;
        } else {
            // The previous checkpoint (if any) is still intact at
            // checkpointPath; training continues.
            ++ckpts_failed_;
            warn("Trainer: checkpoint to '%s' failed at iteration %d",
                 cfg_.checkpointPath.c_str(), iter_);
        }
    }
}

Image
Trainer::renderView(const Camera &camera)
{
    F3D_TRACE_SPAN("train", "render_view");
    Image out(camera.width(), camera.height());
    // With a pool configured, fields with a tiled path (NerfPipeline)
    // render as parallel row-tiles — bit-identical at any thread count.
    if (cfg_.pool && field_.renderViewTiled(camera, *cfg_.pool, out))
        return out;
    const std::size_t width = static_cast<std::size_t>(camera.width());
    for (int y = 0; y < camera.height(); ++y) {
        // One ray batch per image row through the batched core. Rows
        // re-seed their own generator (the tiled renderer's scheme)
        // rather than drawing from rng_: evaluation must not perturb
        // the training stream, or interleaved evals would make weights
        // depend on the eval schedule and the render path taken.
        Pcg32 row_rng(cfg_.seed + static_cast<std::uint64_t>(y),
                      0x9e3779b97f4a7c15ULL);
        batch_rays_.clear();
        batch_rays_.reserve(width);
        for (int x = 0; x < camera.width(); ++x)
            batch_rays_.push_back(camera.rayForPixel(x, y));
        batch_evals_.resize(width);
        field_.traceRays(batch_rays_, row_rng, /*record=*/false, batch_evals_);
        for (int x = 0; x < camera.width(); ++x)
            out.at(x, y) = clamp(batch_evals_[static_cast<std::size_t>(x)].color,
                                 0.0f, 1.0f);
    }
    return out;
}

double
Trainer::evalPsnr(int max_views)
{
    F3D_TRACE_SPAN("train", "eval_psnr");
    if (data_.test.empty())
        fatal("Trainer::evalPsnr: dataset has no test views");
    const int views = std::min<int>(max_views, static_cast<int>(data_.test.size()));
    double acc = 0.0;
    for (int v = 0; v < views; ++v) {
        const Image rendered = renderView(data_.test[static_cast<std::size_t>(v)].camera);
        acc += psnr(rendered, data_.test[static_cast<std::size_t>(v)].image);
    }
    return acc / static_cast<double>(views);
}

TrainResult
Trainer::run()
{
    TrainResult result;
    for (int i = 0; i < cfg_.iterations; ++i) {
        trainIteration();
        if (cfg_.evalEvery > 0 && iter_ % cfg_.evalEvery == 0) {
            const double p = evalPsnr(cfg_.evalViews);
            result.history.emplace_back(iter_, p);
            if (result.itersTo25Psnr < 0 && p >= 25.0)
                result.itersTo25Psnr = iter_;
        }
    }
    result.finalPsnr = evalPsnr(cfg_.evalViews);
    result.history.emplace_back(iter_, result.finalPsnr);
    if (result.itersTo25Psnr < 0 && result.finalPsnr >= 25.0)
        result.itersTo25Psnr = iter_;
    result.iterationsRun = iter_;
    result.totalRays = total_rays_;
    result.totalSamples = total_samples_;
    result.totalCandidates = total_candidates_;
    return result;
}

} // namespace fusion3d::nerf
