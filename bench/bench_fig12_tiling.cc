/**
 * @file
 * Regenerates Fig. 12: the multi-chip/tiling ablations.
 *  (a) chip-to-chip communication saving of MoE Level-1 tiling (94%),
 *  (b) interconnect area saving from crossbar elimination,
 *  (c) feature-access latency saving of Level-2/3 tiling,
 *  (d) feature-fetch latency variance collapsing to zero,
 *  (e) the access pattern: per-bank request distribution of one group.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "chip/interp_module.h"
#include "multichip/system.h"
#include "nerf/moe.h"

using namespace fusion3d;

int
main(int argc, char **argv)
{
    const int trace_rays = argc > 1 ? std::atoi(argv[1]) : 600;

    // ---- (a) Level-1 (MoE) communication saving ----
    bench::banner("Fig. 12(a): chip-to-chip communication, MoE vs layer-split");
    {
        const auto scene = scenes::makeNerf360Scene("room");
        nerf::MoeConfig mc;
        mc.numExperts = 4;
        mc.expert = bench::defaultPipeline();
        mc.expert.model.grid.log2TableSize = 14;
        nerf::MoeNerf moe(mc);
        bench::bootstrapMoeGates(moe, *scene);

        const multichip::MultiChipSystem sys((multichip::SystemConfig()));
        const nerf::Camera cam = nerf::Camera::orbit({0.5f, 0.4f, 0.5f}, 0.38f, 30.0f,
                                                     15.0f, 70.0f, 800, 800);
        const auto r = sys.evaluateInference(moe, cam, trace_rays);
        std::printf("MoE (Level-1 tiling) traffic:   %10.2f MB/frame\n",
                    r.moeCommBytes / 1e6);
        std::printf("Layer-split alternative:        %10.2f MB/frame\n",
                    r.layerSplitCommBytes / 1e6);
        std::printf("Communication saving:           %10.1f%%  (paper: 94%%)\n\n",
                    r.commSavingFraction() * 100.0);
    }

    // ---- (b)-(e) Level-2/3 tiling on real hash-access traces ----
    bench::banner("Fig. 12(b)-(e): Level-2/3 hash tiling vs baseline banking");
    const auto scene = scenes::makeSyntheticScene("lego");
    auto pipe = bench::pipelineForScene(*scene);

    const chip::ChipConfig cfg = chip::ChipConfig::scaledUp();
    chip::InterpModule tiled(cfg, chip::BankPolicy::TwoLevelTiling);
    chip::InterpModule baseline(cfg, chip::BankPolicy::ModuloInterleave);

    const nerf::Camera cam =
        nerf::Camera::orbit({0.5f, 0.45f, 0.5f}, 1.4f, 20.0f, 25.0f, 45.0f, 256, 256);
    Pcg32 rng(4, 4);
    for (const auto *interp : {&tiled, &baseline}) {
        pipe->setVertexVisitor(const_cast<chip::InterpModule *>(interp));
        for (int i = 0; i < trace_rays; ++i) {
            const std::uint32_t pick = rng.nextBounded(256u * 256u);
            const Ray ray = cam.rayForPixel(static_cast<int>(pick % 256),
                                            static_cast<int>(pick / 256));
            (void)pipe->traceRay(ray, rng, false);
        }
    }
    pipe->setVertexVisitor(nullptr);

    const chip::InterpRunStats t = tiled.stats();
    const chip::InterpRunStats b = baseline.stats();

    std::printf("(b) Interconnect area: crossbar %.0f units -> one-to-one %.0f units "
                "(%.1fx smaller)\n",
                baseline.interconnectProfile().areaUnits,
                tiled.interconnectProfile().areaUnits,
                baseline.interconnectProfile().areaUnits /
                    tiled.interconnectProfile().areaUnits);
    std::printf("(c) Mean feature-access latency: baseline %.2f cycles -> tiled %.2f "
                "cycles (%.1f%% saving)\n",
                b.meanGroupLatency, t.meanGroupLatency,
                (1.0 - t.meanGroupLatency / b.meanGroupLatency) * 100.0);
    std::printf("(d) Latency variance: baseline %.3f -> tiled %.3f (zero => balanced "
                "chips)\n",
                b.latencyVariance, t.latencyVariance);
    std::printf("    Conflicts: baseline %llu, tiled %llu over %llu groups\n",
                static_cast<unsigned long long>(b.conflicts),
                static_cast<unsigned long long>(t.conflicts),
                static_cast<unsigned long long>(t.groups));

    std::printf("(e) Group-latency histogram (cycles : groups)\n");
    std::printf("    %-10s %12s %12s\n", "cycles", "baseline", "tiled");
    for (std::uint64_t c = 1; c <= 8; ++c) {
        std::printf("    %-10llu %12.2f%% %12.2f%%\n",
                    static_cast<unsigned long long>(c),
                    baseline.sram().latencyHistogram().fraction(c) * 100.0,
                    tiled.sram().latencyHistogram().fraction(c) * 100.0);
    }
    std::printf("\n    Per-bank load (tiled should be uniform):\n    bank:  ");
    for (std::uint32_t i = 0; i < 8; ++i)
        std::printf("%10u", i);
    std::printf("\n    tiled: ");
    for (const std::uint64_t l : tiled.sram().bankLoad())
        std::printf("%10llu", static_cast<unsigned long long>(l));
    std::printf("\n    base:  ");
    for (const std::uint64_t l : baseline.sram().bankLoad())
        std::printf("%10llu", static_cast<unsigned long long>(l));
    std::printf("\n\nPaper: variance -> 0; every access aligned to a single bank; "
                "crossbar replaced by one-to-one wires.\n");
    return 0;
}
