/** @file Bit-level tests of the software binary16 implementation. */

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "common/half.h"
#include "common/rng.h"

namespace fusion3d
{
namespace
{

TEST(Half, SpecialValues)
{
    EXPECT_TRUE(Half::fromBits(0x0000).isZero());
    EXPECT_TRUE(Half::fromBits(0x8000).isZero());
    EXPECT_TRUE(Half::fromBits(0x7c00).isInf());
    EXPECT_TRUE(Half::fromBits(0xfc00).isInf());
    EXPECT_TRUE(Half::fromBits(0x7c01).isNan());
    EXPECT_TRUE(Half::fromBits(0x0001).isSubnormal());
    EXPECT_FALSE(Half::fromBits(0x3c00).isSubnormal()); // 1.0
}

TEST(Half, KnownEncodings)
{
    EXPECT_EQ(Half::fromFloat(1.0f).bits(), 0x3c00);
    EXPECT_EQ(Half::fromFloat(-2.0f).bits(), 0xc000);
    EXPECT_EQ(Half::fromFloat(0.5f).bits(), 0x3800);
    EXPECT_EQ(Half::fromFloat(65504.0f).bits(), 0x7bff); // max normal
    EXPECT_EQ(Half::fromFloat(0.0f).bits(), 0x0000);
    EXPECT_EQ(Half::fromFloat(-0.0f).bits(), 0x8000);
}

TEST(Half, OverflowToInfinity)
{
    EXPECT_TRUE(Half::fromFloat(1e6f).isInf());
    EXPECT_TRUE(Half::fromFloat(-1e6f).isInf());
    EXPECT_EQ(Half::fromFloat(65520.0f).bits(), 0x7c00); // rounds up to inf
}

TEST(Half, UnderflowToZeroAndSubnormals)
{
    // Smallest subnormal is 2^-24.
    EXPECT_EQ(Half::fromFloat(std::ldexp(1.0f, -24)).bits(), 0x0001);
    // Half of that rounds to zero (ties-to-even).
    EXPECT_EQ(Half::fromFloat(std::ldexp(1.0f, -25)).bits(), 0x0000);
    // 1.5x rounds up to the smallest subnormal... (0x0001 is odd; tie
    // goes to even = 0x0002 for exactly 1.5 * 2^-24? No: 1.5*2^-24 =
    // 0x0001 + half an ulp -> ties-to-even rounds to 0x0002.)
    EXPECT_EQ(Half::fromFloat(1.5f * std::ldexp(1.0f, -24)).bits(), 0x0002);
}

TEST(Half, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly between 1.0 and 1+2^-10: ties to even (1.0).
    EXPECT_EQ(Half::fromFloat(1.0f + std::ldexp(1.0f, -11)).bits(), 0x3c00);
    // 1 + 3*2^-11 ties between 0x3c01 and 0x3c02: rounds to 0x3c02.
    EXPECT_EQ(Half::fromFloat(1.0f + 3.0f * std::ldexp(1.0f, -11)).bits(), 0x3c02);
    // Slightly above the tie rounds up.
    EXPECT_EQ(Half::fromFloat(1.0f + std::ldexp(1.0f, -11) + 1e-7f).bits(), 0x3c01);
}

/** Property: toFloat -> fromFloat is the identity on every bit pattern. */
TEST(Half, RoundTripExhaustive)
{
    for (std::uint32_t b = 0; b <= 0xffff; ++b) {
        const Half h = Half::fromBits(static_cast<std::uint16_t>(b));
        if (h.isNan()) {
            EXPECT_TRUE(Half::fromFloat(h.toFloat()).isNan());
            continue;
        }
        const Half back = Half::fromFloat(h.toFloat());
        EXPECT_EQ(back.bits(), h.bits()) << "pattern 0x" << std::hex << b;
    }
}

/** Property: conversion is monotonic over positive halves. */
TEST(Half, ToFloatMonotonic)
{
    float prev = Half::fromBits(0).toFloat();
    for (std::uint16_t b = 1; b < 0x7c00; ++b) {
        const float cur = Half::fromBits(b).toFloat();
        EXPECT_GT(cur, prev) << "pattern 0x" << std::hex << b;
        prev = cur;
    }
}

TEST(Half, SignificandDecomposition)
{
    const Half one = Half::fromFloat(1.0f);
    EXPECT_EQ(one.significand(), 0x400u); // implicit bit only
    EXPECT_EQ(one.unbiasedExponent(), 0);

    const Half h = Half::fromFloat(1.5f);
    EXPECT_EQ(h.significand(), 0x600u);

    // Value reconstruction: sig * 2^(e-10).
    for (std::uint16_t b = 0x0001; b < 0x7c00; b += 37) {
        const Half x = Half::fromBits(b);
        const float recon =
            std::ldexp(static_cast<float>(x.significand()), x.unbiasedExponent() - 10);
        EXPECT_FLOAT_EQ(recon, x.toFloat()) << "pattern 0x" << std::hex << b;
    }
}

TEST(Half, RoundToHalfQuantizes)
{
    EXPECT_FLOAT_EQ(roundToHalf(1.0f), 1.0f);
    const float q = roundToHalf(1.0001f);
    EXPECT_NE(q, 1.0001f);
    EXPECT_NEAR(q, 1.0001f, 1e-3f);
}

/** fromDouble agrees with fromFloat wherever the float is exact. */
TEST(Half, FromDoubleMatchesFromFloatOnExactInputs)
{
    for (std::uint32_t b = 0; b < 0x7c00; b += 3) {
        const Half h = Half::fromBits(static_cast<std::uint16_t>(b));
        const double d = static_cast<double>(h.toFloat());
        EXPECT_EQ(Half::fromDouble(d).bits(), h.bits());
        EXPECT_EQ(Half::fromDouble(-d).bits(), h.bits() | 0x8000);
    }
    EXPECT_TRUE(Half::fromDouble(1e10).isInf());
    EXPECT_TRUE(Half::fromDouble(std::nan("")).isNan());
    EXPECT_EQ(Half::fromDouble(1e-12).bits(), 0x0000);
}

TEST(Half, FromDoubleRoundsTiesToEven)
{
    // Exactly between 1.0 (0x3c00) and 1+2^-10 (0x3c01): ties to even.
    EXPECT_EQ(Half::fromDouble(1.0 + std::ldexp(1.0, -11)).bits(), 0x3c00);
    EXPECT_EQ(Half::fromDouble(1.0 + 3.0 * std::ldexp(1.0, -11)).bits(), 0x3c02);
    // Just above the tie rounds up.
    EXPECT_EQ(Half::fromDouble(1.0 + std::ldexp(1.0, -11) + 1e-12).bits(), 0x3c01);
}

/** Property: the arithmetic helpers are correctly rounded — the double
 *  intermediate is exact, so one RNE from double is the IEEE result. */
TEST(Half, ArithmeticCorrectlyRounded)
{
    Pcg32 rng(41);
    for (int trial = 0; trial < 20000; ++trial) {
        const Half a =
            Half::fromBits(static_cast<std::uint16_t>(rng.nextUint() & 0x7bff));
        const Half b =
            Half::fromBits(static_cast<std::uint16_t>(rng.nextUint() & 0x7bff));
        const double da = a.toFloat(), db = b.toFloat();
        EXPECT_EQ(halfAdd(a, b).bits(), Half::fromDouble(da + db).bits());
        EXPECT_EQ(halfMul(a, b).bits(), Half::fromDouble(da * db).bits());
        // FMA fuses: single rounding of the exact a*b + c.
        const Half c = b;
        EXPECT_EQ(halfFma(a, b, c).bits(), Half::fromDouble(da * db + db).bits());
    }
}

TEST(Half, ArithmeticIdentities)
{
    const Half one = Half::fromFloat(1.0f);
    const Half zero = Half::fromFloat(0.0f);
    Pcg32 rng(43);
    for (int i = 0; i < 500; ++i) {
        const Half x =
            Half::fromBits(static_cast<std::uint16_t>(rng.nextUint() & 0x7bff));
        EXPECT_EQ(halfMul(x, one).bits(), x.bits());
        EXPECT_EQ(halfAdd(x, zero).bits(), x.bits());
        EXPECT_EQ(halfAdd(x, x).bits(), halfMul(x, Half::fromFloat(2.0f)).bits());
    }
}

} // namespace
} // namespace fusion3d
