/**
 * @file
 * Offline analyzer for the tracer's Chrome trace-event dumps: loads a
 * trace JSON (written by Tracer::writeChromeTrace via serve_loadgen
 * --trace or bench --trace), reassembles the per-request causal span
 * trees from the "req"/"span"/"parent" args, and reports per-phase
 * attribution and the critical path of each request.
 *
 * Modes:
 *   f3d_trace dump.json                 human-readable report
 *   f3d_trace dump.json --json          machine-readable per-request JSON
 *   f3d_trace dump.json --check         CI gate: every completed request
 *                                       must form a single tree whose
 *                                       attributed phases cover
 *                                       >= --min-coverage (default 0.9)
 *                                       of its measured latency
 *   f3d_trace dump.json --request 17    print one request's span tree
 *   f3d_trace dump.json --top 3         show the 3 slowest requests
 *
 * Exit codes: 0 ok, 1 check failed, 2 parse/usage error.
 *
 * The parser is a minimal recursive-descent JSON reader (no external
 * dependencies, matching the repo's no-new-deps rule); it handles the
 * general JSON grammar, not just the tracer's output shape.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "serve/serve.h"

namespace
{

// --- Minimal JSON value + parser ---------------------------------------

struct JValue
{
    enum class Type
    {
        null,
        boolean,
        number,
        string,
        array,
        object,
    };

    Type type = Type::null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<JValue> arr;
    std::vector<std::pair<std::string, JValue>> obj;

    const JValue *
    find(const char *key) const
    {
        for (const auto &[k, v] : obj)
            if (k == key)
                return &v;
        return nullptr;
    }

    double
    numberOr(const char *key, double fallback) const
    {
        const JValue *v = find(key);
        return v && v->type == Type::number ? v->num : fallback;
    }

    std::string
    stringOr(const char *key, const std::string &fallback) const
    {
        const JValue *v = find(key);
        return v && v->type == Type::string ? v->str : fallback;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    bool
    parse(JValue &out, std::string &error)
    {
        pos_ = 0;
        if (!parseValue(out)) {
            error = error_ + " at offset " + std::to_string(pos_);
            return false;
        }
        skipSpace();
        if (pos_ != text_.size()) {
            error = "trailing characters at offset " + std::to_string(pos_);
            return false;
        }
        return true;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    fail(const char *message)
    {
        if (error_.empty())
            error_ = message;
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return fail("bad literal");
        pos_ += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("bad escape");
                const char e = text_[pos_++];
                switch (e) {
                case '"':
                case '\\':
                case '/':
                    out += e;
                    break;
                case 'n':
                    out += '\n';
                    break;
                case 't':
                    out += '\t';
                    break;
                case 'r':
                    out += '\r';
                    break;
                case 'b':
                case 'f':
                    out += ' ';
                    break;
                case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("bad \\u escape");
                    // Keep it simple: decode latin-1 range, replace the
                    // rest with '?' (trace names are ASCII literals).
                    const unsigned code = static_cast<unsigned>(
                        std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
                    out += code < 0x80 ? static_cast<char>(code) : '?';
                    pos_ += 4;
                    break;
                }
                default:
                    return fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(JValue &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.type = JValue::Type::object;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipSpace();
                std::string key;
                if (!parseString(key))
                    return false;
                skipSpace();
                if (pos_ >= text_.size() || text_[pos_++] != ':')
                    return fail("expected ':'");
                JValue v;
                if (!parseValue(v))
                    return false;
                out.obj.emplace_back(std::move(key), std::move(v));
                skipSpace();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                const char d = text_[pos_++];
                if (d == '}')
                    return true;
                if (d != ',')
                    return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos_;
            out.type = JValue::Type::array;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                JValue v;
                if (!parseValue(v))
                    return false;
                out.arr.push_back(std::move(v));
                skipSpace();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                const char d = text_[pos_++];
                if (d == ']')
                    return true;
                if (d != ',')
                    return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.type = JValue::Type::string;
            return parseString(out.str);
        }
        if (c == 't') {
            out.type = JValue::Type::boolean;
            out.b = true;
            return literal("true");
        }
        if (c == 'f') {
            out.type = JValue::Type::boolean;
            out.b = false;
            return literal("false");
        }
        if (c == 'n') {
            out.type = JValue::Type::null;
            return literal("null");
        }
        // Number.
        char *end = nullptr;
        out.num = std::strtod(text_.c_str() + pos_, &end);
        if (end == text_.c_str() + pos_)
            return fail("expected value");
        out.type = JValue::Type::number;
        pos_ = static_cast<std::size_t>(end - text_.c_str());
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

// --- Span model ---------------------------------------------------------

/** One trace event, times in milliseconds from the trace epoch. */
struct Span
{
    std::string cat;
    std::string name;
    double t0Ms = 0.0;
    double t1Ms = 0.0;
    std::uint64_t req = 0;
    std::uint64_t id = 0;
    std::uint64_t parent = 0;
    std::uint64_t value = 0;
    bool hasValue = false;
    int tid = 0;
};

/** One request's reassembled tree. */
struct RequestTree
{
    std::uint64_t req = 0;
    int rootIndex = -1; ///< index into spans, the "request" root span
    std::vector<Span> spans;
    std::map<std::uint64_t, std::vector<int>> children; ///< by parent id
    int roots = 0; ///< number of "request"-named spans seen (should be 1)

    double
    latencyMs() const
    {
        const Span &root = spans[static_cast<std::size_t>(rootIndex)];
        return root.t1Ms - root.t0Ms;
    }
};

/** Union length of [b,e) intervals, all clipped beforehand. */
double
unionLength(std::vector<std::pair<double, double>> intervals)
{
    std::sort(intervals.begin(), intervals.end());
    double total = 0.0, hi = -1e300;
    for (const auto &[b, e] : intervals) {
        if (e <= hi)
            continue;
        total += e - std::max(b, hi);
        hi = e;
    }
    return total;
}

/**
 * Fraction of the root span covered by the union of its direct
 * children (the request's attributed phases).
 */
double
coverage(const RequestTree &t)
{
    const Span &root = t.spans[static_cast<std::size_t>(t.rootIndex)];
    const double dur = root.t1Ms - root.t0Ms;
    if (dur <= 0.0)
        return 1.0;
    std::vector<std::pair<double, double>> intervals;
    const auto it = t.children.find(root.id);
    if (it != t.children.end()) {
        for (const int ci : it->second) {
            const Span &c = t.spans[static_cast<std::size_t>(ci)];
            const double b = std::max(c.t0Ms, root.t0Ms);
            const double e = std::min(c.t1Ms, root.t1Ms);
            if (e > b)
                intervals.emplace_back(b, e);
        }
    }
    return unionLength(std::move(intervals)) / dur;
}

/** Per-phase attribution: union of each depth-1 phase's intervals. */
std::map<std::string, double>
phaseBreakdown(const RequestTree &t)
{
    const Span &root = t.spans[static_cast<std::size_t>(t.rootIndex)];
    std::map<std::string, std::vector<std::pair<double, double>>> by_name;
    const auto it = t.children.find(root.id);
    if (it != t.children.end()) {
        for (const int ci : it->second) {
            const Span &c = t.spans[static_cast<std::size_t>(ci)];
            const double b = std::max(c.t0Ms, root.t0Ms);
            const double e = std::min(c.t1Ms, root.t1Ms);
            if (e > b)
                by_name[c.name].emplace_back(b, e);
        }
    }
    std::map<std::string, double> out;
    for (auto &[name, intervals] : by_name)
        out[name] = unionLength(std::move(intervals));
    return out;
}

/**
 * Critical-path attribution: walk the tree backwards through time from
 * the root's end, descending into whichever child span was running;
 * time no child covers is the current span's self-time. The returned
 * per-span-name totals sum to the root's duration.
 */
void
criticalPathWalk(const RequestTree &t, const Span &s, double t_begin,
                 double t_end, std::map<std::string, double> &attr)
{
    double cursor = t_end;
    const auto it = t.children.find(s.id);
    if (it != t.children.end()) {
        // Children sorted by end time, latest first.
        std::vector<int> kids = it->second;
        std::sort(kids.begin(), kids.end(), [&t](int a, int b) {
            return t.spans[static_cast<std::size_t>(a)].t1Ms >
                   t.spans[static_cast<std::size_t>(b)].t1Ms;
        });
        for (const int ci : kids) {
            const Span &c = t.spans[static_cast<std::size_t>(ci)];
            const double c0 = std::max(c.t0Ms, t_begin);
            const double c1 = std::min(c.t1Ms, cursor);
            if (c1 <= c0)
                continue; // does not overlap the remaining window
            attr[s.name] += cursor - c1; // gap: s itself on the path
            criticalPathWalk(t, c, c0, c1, attr);
            cursor = c0;
            if (cursor <= t_begin)
                break;
        }
    }
    if (cursor > t_begin)
        attr[s.name] += cursor - t_begin;
}

std::map<std::string, double>
criticalPath(const RequestTree &t)
{
    std::map<std::string, double> attr;
    const Span &root = t.spans[static_cast<std::size_t>(t.rootIndex)];
    criticalPathWalk(t, root, root.t0Ms, root.t1Ms, attr);
    return attr;
}

std::string
outcomeOf(const RequestTree &t)
{
    const Span &root = t.spans[static_cast<std::size_t>(t.rootIndex)];
    if (!root.hasValue ||
        root.value >= static_cast<std::uint64_t>(fusion3d::serve::kOutcomeCount))
        return "unknown";
    return fusion3d::serve::outcomeName(
        static_cast<fusion3d::serve::Outcome>(root.value));
}

void
printTree(const RequestTree &t, int span_index, int depth)
{
    const Span &s = t.spans[static_cast<std::size_t>(span_index)];
    std::printf("%*s%-24s %-12s %10.3f ms  [%.3f .. %.3f]\n", depth * 2, "",
                s.name.c_str(), s.cat.c_str(), s.t1Ms - s.t0Ms, s.t0Ms, s.t1Ms);
    const auto it = t.children.find(s.id);
    if (it == t.children.end())
        return;
    std::vector<int> kids = it->second;
    std::sort(kids.begin(), kids.end(), [&t](int a, int b) {
        return t.spans[static_cast<std::size_t>(a)].t0Ms <
               t.spans[static_cast<std::size_t>(b)].t0Ms;
    });
    for (const int ci : kids)
        printTree(t, ci, depth + 1);
}

double
exactQuantile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t rank = static_cast<std::size_t>(std::max(
        1.0, std::ceil(q * static_cast<double>(sorted.size()))));
    return sorted[std::min(rank, sorted.size()) - 1];
}

std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    bool check = false, json = false;
    double min_coverage = 0.9;
    std::uint64_t only_request = 0;
    int top = 5;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "f3d_trace: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--check")
            check = true;
        else if (arg == "--json")
            json = true;
        else if (arg == "--min-coverage")
            min_coverage = std::atof(next());
        else if (arg == "--request")
            only_request = std::strtoull(next(), nullptr, 10);
        else if (arg == "--top")
            top = std::atoi(next());
        else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: f3d_trace <trace.json> [--check] [--json]\n"
                "                 [--min-coverage F] [--request ID] [--top N]\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "f3d_trace: unknown flag %s\n", arg.c_str());
            return 2;
        } else {
            path = arg;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr, "usage: f3d_trace <trace.json> [--check] ...\n");
        return 2;
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "f3d_trace: cannot open %s\n", path.c_str());
        return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    JValue doc;
    std::string error;
    if (!JsonParser(text).parse(doc, error)) {
        std::fprintf(stderr, "f3d_trace: %s: JSON parse error: %s\n",
                     path.c_str(), error.c_str());
        return 2;
    }
    const JValue *events = doc.find("traceEvents");
    if (!events || events->type != JValue::Type::array) {
        std::fprintf(stderr, "f3d_trace: %s: no traceEvents array\n",
                     path.c_str());
        return 2;
    }
    const double dropped = doc.numberOr("f3dDroppedSpans", 0.0);

    // Bucket request-tagged spans by request id (ts/dur are us).
    std::map<std::uint64_t, RequestTree> trees;
    std::size_t total_events = 0, tagged = 0;
    for (const JValue &ev : events->arr) {
        if (ev.type != JValue::Type::object)
            continue;
        ++total_events;
        const JValue *args = ev.find("args");
        if (!args || args->type != JValue::Type::object)
            continue;
        const std::uint64_t req =
            static_cast<std::uint64_t>(args->numberOr("req", 0.0));
        if (req == 0)
            continue;
        ++tagged;
        Span s;
        s.cat = ev.stringOr("cat", "");
        s.name = ev.stringOr("name", "");
        s.t0Ms = ev.numberOr("ts", 0.0) / 1e3;
        s.t1Ms = s.t0Ms + ev.numberOr("dur", 0.0) / 1e3;
        s.req = req;
        s.id = static_cast<std::uint64_t>(args->numberOr("span", 0.0));
        s.parent = static_cast<std::uint64_t>(args->numberOr("parent", 0.0));
        s.tid = static_cast<int>(ev.numberOr("tid", 0.0));
        const JValue *value = args->find("value");
        if (value && value->type == JValue::Type::number) {
            s.value = static_cast<std::uint64_t>(value->num);
            s.hasValue = true;
        }
        RequestTree &t = trees[req];
        t.req = req;
        if (s.cat == "serve" && s.name == "request") {
            ++t.roots;
            t.rootIndex = static_cast<int>(t.spans.size());
        }
        t.spans.push_back(std::move(s));
    }
    for (auto &[req, t] : trees) {
        for (int i = 0; i < static_cast<int>(t.spans.size()); ++i) {
            if (i == t.rootIndex)
                continue;
            t.children[t.spans[static_cast<std::size_t>(i)].parent].push_back(i);
        }
    }

    // Completed requests have exactly one root "request" span; spans of
    // requests still in flight when the trace was written stay orphans.
    std::vector<const RequestTree *> completed;
    std::size_t incomplete = 0;
    for (const auto &[req, t] : trees) {
        if (t.rootIndex >= 0)
            completed.push_back(&t);
        else
            ++incomplete;
    }
    std::sort(completed.begin(), completed.end(),
              [](const RequestTree *a, const RequestTree *b) {
                  return a->latencyMs() > b->latencyMs();
              });

    if (only_request != 0) {
        const auto it = trees.find(only_request);
        if (it == trees.end() || it->second.rootIndex < 0) {
            std::fprintf(stderr, "f3d_trace: request %llu not in trace\n",
                         static_cast<unsigned long long>(only_request));
            return 2;
        }
        const RequestTree &t = it->second;
        std::printf("request %llu  outcome=%s  latency=%.3f ms  "
                    "coverage=%.1f%%\n",
                    static_cast<unsigned long long>(t.req),
                    outcomeOf(t).c_str(), t.latencyMs(), 100.0 * coverage(t));
        printTree(t, t.rootIndex, 0);
        return 0;
    }

    // --check: the CI gate behind the acceptance criterion.
    if (check) {
        int bad = 0;
        for (const RequestTree *t : completed) {
            const double cov = coverage(*t);
            if (t->roots != 1 || cov < min_coverage) {
                ++bad;
                std::fprintf(stderr,
                             "FAIL request %llu: roots=%d coverage=%.1f%% "
                             "(min %.1f%%) latency=%.3f ms\n",
                             static_cast<unsigned long long>(t->req), t->roots,
                             100.0 * cov, 100.0 * min_coverage,
                             t->latencyMs());
            }
        }
        if (completed.empty()) {
            std::fprintf(stderr, "FAIL: no completed requests in trace\n");
            return 1;
        }
        if (dropped > 0)
            std::fprintf(stderr,
                         "warning: tracer dropped %.0f spans (buffers full)\n",
                         dropped);
        std::printf("f3d_trace --check: %zu completed requests, %zu "
                    "incomplete, %d below %.0f%% coverage\n",
                    completed.size(), incomplete, bad, 100.0 * min_coverage);
        return bad == 0 ? 0 : 1;
    }

    // Aggregates.
    std::vector<double> latencies;
    double cov_min = 1.0, cov_sum = 0.0;
    std::map<std::string, double> phase_totals;
    std::map<std::string, double> crit_totals;
    for (const RequestTree *t : completed) {
        latencies.push_back(t->latencyMs());
        const double cov = coverage(*t);
        cov_min = std::min(cov_min, cov);
        cov_sum += cov;
        for (const auto &[name, ms] : phaseBreakdown(*t))
            phase_totals[name] += ms;
        for (const auto &[name, ms] : criticalPath(*t))
            crit_totals[name] += ms;
    }
    const double total_latency =
        std::accumulate(latencies.begin(), latencies.end(), 0.0);

    if (json) {
        std::printf("{\"requests\":[");
        bool first = true;
        for (const RequestTree *t : completed) {
            std::printf("%s{\"id\":%llu,\"outcome\":%s,\"latency_ms\":%.3f,"
                        "\"coverage\":%.4f,\"spans\":%zu,\"phases\":{",
                        first ? "" : ",",
                        static_cast<unsigned long long>(t->req),
                        jsonStr(outcomeOf(*t)).c_str(), t->latencyMs(),
                        coverage(*t), t->spans.size());
            bool pf = true;
            for (const auto &[name, ms] : phaseBreakdown(*t)) {
                std::printf("%s%s:%.3f", pf ? "" : ",", jsonStr(name).c_str(),
                            ms);
                pf = false;
            }
            std::printf("},\"critical_path\":{");
            pf = true;
            for (const auto &[name, ms] : criticalPath(*t)) {
                std::printf("%s%s:%.3f", pf ? "" : ",", jsonStr(name).c_str(),
                            ms);
                pf = false;
            }
            std::printf("}}");
            first = false;
        }
        std::printf("],\"summary\":{\"completed\":%zu,\"incomplete\":%zu,"
                    "\"events\":%zu,\"tagged\":%zu,\"dropped\":%.0f,"
                    "\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"coverage_min\":%.4f,"
                    "\"coverage_mean\":%.4f}}\n",
                    completed.size(), incomplete, total_events, tagged, dropped,
                    exactQuantile(latencies, 0.5), exactQuantile(latencies, 0.99),
                    completed.empty() ? 0.0 : cov_min,
                    completed.empty()
                        ? 0.0
                        : cov_sum / static_cast<double>(completed.size()));
        return 0;
    }

    // Human-readable report.
    std::printf("trace: %s\n", path.c_str());
    std::printf("  events %zu (request-tagged %zu, dropped %.0f), "
                "requests completed %zu, incomplete %zu\n",
                total_events, tagged, dropped, completed.size(), incomplete);
    if (completed.empty())
        return 0;
    std::printf("  latency: p50 %.3f ms  p99 %.3f ms  max %.3f ms\n",
                exactQuantile(latencies, 0.5), exactQuantile(latencies, 0.99),
                *std::max_element(latencies.begin(), latencies.end()));
    std::printf("  phase coverage: min %.1f%%  mean %.1f%%\n",
                100.0 * cov_min,
                100.0 * cov_sum / static_cast<double>(completed.size()));
    std::printf("\nper-phase attribution (union of depth-1 spans, all "
                "requests):\n");
    std::vector<std::pair<std::string, double>> phases(phase_totals.begin(),
                                                       phase_totals.end());
    std::sort(phases.begin(), phases.end(),
              [](const auto &a, const auto &b) { return a.second > b.second; });
    for (const auto &[name, ms] : phases)
        std::printf("  %-24s %10.3f ms  %5.1f%%\n", name.c_str(), ms,
                    total_latency > 0.0 ? 100.0 * ms / total_latency : 0.0);
    std::printf("\ncritical path (time attributed along the dominant "
                "chain):\n");
    std::vector<std::pair<std::string, double>> crit(crit_totals.begin(),
                                                     crit_totals.end());
    std::sort(crit.begin(), crit.end(),
              [](const auto &a, const auto &b) { return a.second > b.second; });
    for (const auto &[name, ms] : crit)
        std::printf("  %-24s %10.3f ms  %5.1f%%\n", name.c_str(), ms,
                    total_latency > 0.0 ? 100.0 * ms / total_latency : 0.0);
    const int show = std::min<int>(top, static_cast<int>(completed.size()));
    std::printf("\nslowest %d requests:\n", show);
    for (int i = 0; i < show; ++i) {
        const RequestTree &t = *completed[static_cast<std::size_t>(i)];
        std::printf("  request %llu  %s  %.3f ms  coverage %.1f%%\n",
                    static_cast<unsigned long long>(t.req),
                    outcomeOf(t).c_str(), t.latencyMs(), 100.0 * coverage(t));
        std::vector<std::pair<std::string, double>> breakdown;
        for (const auto &[name, ms] : phaseBreakdown(t))
            breakdown.emplace_back(name, ms);
        std::sort(breakdown.begin(), breakdown.end(),
                  [](const auto &a, const auto &b) {
                      return a.second > b.second;
                  });
        for (const auto &[name, ms] : breakdown)
            std::printf("      %-22s %10.3f ms\n", name.c_str(), ms);
    }
    return 0;
}
