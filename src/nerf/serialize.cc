#include "nerf/serialize.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <utility>

#include <unistd.h>

#include "common/fault.h"
#include "common/logging.h"
#include "nerf/freq_nerf.h"
#include "nerf/tensorf.h"

namespace fusion3d::nerf
{

namespace
{

constexpr char kMagic[4] = {'F', '3', 'D', 'M'};
// v2: the header carries a CRC32 of the parameter payload.
constexpr std::uint32_t kVersion = 2;

struct Header
{
    char magic[4];
    std::uint32_t version;
    std::int32_t levels;
    std::int32_t featuresPerLevel;
    std::int32_t log2TableSize;
    std::int32_t baseResolution;
    std::int32_t maxResolution;
    std::int32_t geoFeatures;
    std::int32_t densityHidden;
    std::int32_t colorHidden;
    std::int32_t shDegree;
    std::uint32_t paramCrc;
    std::uint64_t encodingParams;
    std::uint64_t densityParams;
    std::uint64_t colorParams;
};

/** CRC-32 (IEEE 802.3, reflected 0xEDB88320), incremental. */
std::uint32_t
crc32Update(std::uint32_t crc, const void *data, std::size_t size)
{
    static const auto table = []() {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    const auto *p = static_cast<const unsigned char *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
    return ~crc;
}

std::uint32_t
paramCrc(const NerfModel &model)
{
    std::uint32_t crc = 0;
    for (const auto block : {model.encoding().params(),
                             model.densityNet().params(),
                             model.colorNet().params()})
        crc = crc32Update(crc, block.data(), block.size_bytes());
    return crc;
}

Header
makeHeader(const NerfModel &model)
{
    const NerfModelConfig &cfg = model.config();
    Header h{};
    std::memcpy(h.magic, kMagic, 4);
    h.version = kVersion;
    h.levels = cfg.grid.levels;
    h.featuresPerLevel = cfg.grid.featuresPerLevel;
    h.log2TableSize = cfg.grid.log2TableSize;
    h.baseResolution = cfg.grid.baseResolution;
    h.maxResolution = cfg.grid.maxResolution;
    h.geoFeatures = cfg.geoFeatures;
    h.densityHidden = cfg.densityHidden;
    h.colorHidden = cfg.colorHidden;
    h.shDegree = cfg.shDegree;
    h.paramCrc = paramCrc(model);
    h.encodingParams = model.encoding().paramCount();
    h.densityParams = model.densityNet().paramCount();
    h.colorParams = model.colorNet().paramCount();
    return h;
}

bool
writeBlock(std::FILE *f, std::span<const float> data)
{
    return std::fwrite(data.data(), sizeof(float), data.size(), f) == data.size();
}

bool
readBlock(std::FILE *f, std::span<float> data)
{
    return std::fread(data.data(), sizeof(float), data.size(), f) == data.size();
}

// v4: quantized hash-grid artifacts (helpers live with the v3 section
// below; declared here so the v2 writer/reader can dispatch to them).
constexpr std::uint32_t kVersionV4 = 4;
bool writeModelV4To(std::FILE *f, const NerfModel &model);

/** Header + all three parameter blocks to an open stream. */
bool
writeModelTo(std::FILE *f, const NerfModel &model)
{
    // Quantized models have no fp32 masters to write in the v2 layout;
    // their artifacts carry a v4 quantized weight section instead.
    if (model.inferenceQuantMode() != QuantMode::fp32)
        return writeModelV4To(f, model);
    const Header h = makeHeader(model);
    bool ok = std::fwrite(&h, sizeof(h), 1, f) == 1;
    ok = ok && !F3D_FAULT_POINT("nerf.save.write");
    ok = ok && writeBlock(f, model.encoding().params());
    ok = ok && writeBlock(f, model.densityNet().params());
    ok = ok && writeBlock(f, model.colorNet().params());
    return ok;
}

} // namespace

bool
saveModel(const NerfModel &model, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const bool ok = writeModelTo(f, model);
    std::fclose(f);
    return ok;
}

bool
saveModelAtomic(const NerfModel &model, const std::string &path)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f =
        F3D_FAULT_POINT("trainer.ckpt.open") ? nullptr : std::fopen(tmp.c_str(), "wb");
    if (!f) {
        warn("saveModelAtomic: cannot open '%s'", tmp.c_str());
        return false;
    }

    if (F3D_FAULT_POINT("trainer.ckpt.write")) {
        // Simulated crash mid-write: the header and half of the first
        // parameter block land in the temp file, nothing is renamed,
        // and the destination keeps whatever it held before.
        const Header h = makeHeader(model);
        const auto enc = model.encoding().params();
        (void)std::fwrite(&h, sizeof(h), 1, f);
        (void)std::fwrite(enc.data(), sizeof(float), enc.size() / 2, f);
        std::fclose(f);
        warn("saveModelAtomic: injected crash while writing '%s'", tmp.c_str());
        return false;
    }

    bool ok = writeModelTo(f, model);
    ok = ok && std::fflush(f) == 0;
    // fsync before the rename: otherwise a real crash could leave the
    // new name pointing at not-yet-durable data.
    ok = ok && fsync(fileno(f)) == 0;
    std::fclose(f);
    if (!ok) {
        std::remove(tmp.c_str());
        warn("saveModelAtomic: write to '%s' failed", tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        warn("saveModelAtomic: cannot rename '%s' to '%s'", tmp.c_str(),
             path.c_str());
        return false;
    }
    return true;
}

const char *
loadStatusName(LoadStatus status)
{
    switch (status) {
      case LoadStatus::ok:
        return "ok";
      case LoadStatus::ioError:
        return "I/O error";
      case LoadStatus::badMagic:
        return "bad magic";
      case LoadStatus::badVersion:
        return "bad version";
      case LoadStatus::headerMismatch:
        return "header mismatch";
      case LoadStatus::truncated:
        return "truncated";
      case LoadStatus::badChecksum:
        return "checksum mismatch";
      case LoadStatus::badBackend:
        return "unknown backend";
    }
    return "?";
}

namespace
{

LoadResult
loadFailure(LoadStatus status, std::string message)
{
    LoadResult r;
    r.status = status;
    r.message = std::move(message);
    return r;
}

/** Reject headers whose dimensions could not have come from saveModel()
 *  before they reach the NerfModel constructor (and its allocations). */
bool
headerDimensionsSane(const Header &h)
{
    return h.levels >= 1 && h.levels <= 64 && h.featuresPerLevel >= 1 &&
           h.featuresPerLevel <= 16 && h.log2TableSize >= 1 &&
           h.log2TableSize <= 28 && h.baseResolution >= 1 &&
           h.baseResolution <= h.maxResolution && h.maxResolution <= 65536 &&
           h.geoFeatures >= 1 && h.geoFeatures <= 256 && h.densityHidden >= 1 &&
           h.densityHidden <= 4096 && h.colorHidden >= 1 &&
           h.colorHidden <= 4096 && h.shDegree >= 1 && h.shDegree <= 4;
}

LoadResult loadModelV4(std::FILE *f, const std::string &path);

} // namespace

LoadResult
loadModelVerbose(const std::string &path)
{
    std::FILE *f =
        F3D_FAULT_POINT("nerf.load.open") ? nullptr : std::fopen(path.c_str(), "rb");
    if (!f)
        return loadFailure(LoadStatus::ioError,
                           strprintf("cannot open '%s'", path.c_str()));

    Header h{};
    // Magic + version first: a v4 (quantized) artifact diverges from the
    // v2 header layout right after this 8-byte prefix.
    if (std::fread(&h, sizeof(h.magic) + sizeof(h.version), 1, f) != 1) {
        std::fclose(f);
        return loadFailure(
            LoadStatus::truncated,
            strprintf("'%s' is shorter than the 8-byte prefix", path.c_str()));
    }
    if (std::memcmp(h.magic, kMagic, 4) != 0) {
        std::fclose(f);
        return loadFailure(LoadStatus::badMagic,
                           strprintf("'%s' is not an F3DM artifact", path.c_str()));
    }
    if (h.version == kVersionV4) {
        LoadResult r = loadModelV4(f, path);
        std::fclose(f);
        return r;
    }
    if (h.version != kVersion) {
        std::fclose(f);
        return loadFailure(LoadStatus::badVersion,
                           strprintf("'%s' has format version %u, expected %u "
                                     "or %u",
                                     path.c_str(), h.version, kVersion,
                                     kVersionV4));
    }
    if (std::fread(reinterpret_cast<char *>(&h) + 8, sizeof(h) - 8, 1, f) != 1) {
        std::fclose(f);
        return loadFailure(
            LoadStatus::truncated,
            strprintf("'%s' is shorter than the %zu-byte header", path.c_str(),
                      sizeof(Header)));
    }
    if (!headerDimensionsSane(h)) {
        std::fclose(f);
        return loadFailure(
            LoadStatus::headerMismatch,
            strprintf("'%s' declares out-of-range model dimensions", path.c_str()));
    }

    NerfModelConfig cfg;
    cfg.grid.levels = h.levels;
    cfg.grid.featuresPerLevel = h.featuresPerLevel;
    cfg.grid.log2TableSize = h.log2TableSize;
    cfg.grid.baseResolution = h.baseResolution;
    cfg.grid.maxResolution = h.maxResolution;
    cfg.geoFeatures = h.geoFeatures;
    cfg.densityHidden = h.densityHidden;
    cfg.colorHidden = h.colorHidden;
    cfg.shDegree = h.shDegree;

    auto model = std::make_unique<NerfModel>(cfg);
    if (model->encoding().paramCount() != h.encodingParams ||
        model->densityNet().paramCount() != h.densityParams ||
        model->colorNet().paramCount() != h.colorParams) {
        std::fclose(f);
        return loadFailure(
            LoadStatus::headerMismatch,
            strprintf("parameter counts in '%s' do not match its declared "
                      "architecture",
                      path.c_str()));
    }

    bool ok = !F3D_FAULT_POINT("nerf.load.read");
    ok = ok && readBlock(f, model->encoding().params());
    ok = ok && readBlock(f, model->densityNet().params());
    ok = ok && readBlock(f, model->colorNet().params());
    std::fclose(f);
    if (!ok)
        return loadFailure(
            LoadStatus::truncated,
            strprintf("'%s' ends before its parameter blocks do", path.c_str()));

    // The payload arrived whole; now prove it arrived *intact*.
    if (paramCrc(*model) != h.paramCrc || F3D_FAULT_POINT("nerf.load.crc"))
        return loadFailure(
            LoadStatus::badChecksum,
            strprintf("parameter payload of '%s' fails its CRC32", path.c_str()));

    LoadResult r;
    r.model = std::move(model);
    r.status = LoadStatus::ok;
    return r;
}

std::unique_ptr<NerfModel>
loadModel(const std::string &path)
{
    LoadResult r = loadModelVerbose(path);
    if (!r)
        warn("loadModel: %s: %s", loadStatusName(r.status), r.message.c_str());
    return std::move(r.model);
}

bool
loadInto(NerfModel &dst, const NerfModel &src)
{
    if (F3D_FAULT_POINT("nerf.loadinto")) {
        warn("loadInto: injected fault (nerf.loadinto)");
        return false;
    }
    if (!src.encoding().hasFp32Weights() || !dst.encoding().hasFp32Weights()) {
        warn("loadInto: quantized model without fp32 masters");
        return false;
    }
    if (dst.encoding().paramCount() != src.encoding().paramCount() ||
        dst.densityNet().paramCount() != src.densityNet().paramCount() ||
        dst.colorNet().paramCount() != src.colorNet().paramCount()) {
        warn("loadInto: parameter-block sizes differ (dst %zu params, src %zu)",
             dst.paramCount(), src.paramCount());
        return false;
    }
    const auto copy_block = [](std::span<const float> from, std::span<float> to) {
        std::copy(from.begin(), from.end(), to.begin());
    };
    copy_block(src.encoding().params(), dst.encoding().params());
    copy_block(src.densityNet().params(), dst.densityNet().params());
    copy_block(src.colorNet().params(), dst.colorNet().params());
    return true;
}

std::size_t
modelFootprintBytes(const NerfModel &model, int bytes_per_param)
{
    return sizeof(Header) +
           model.paramCount() * static_cast<std::size_t>(bytes_per_param);
}

// ---------------------------------------------------------------------------
// v3: backend-polymorphic artifacts.
// ---------------------------------------------------------------------------

namespace
{

constexpr std::uint32_t kVersionV3 = 3;

// Field-by-field I/O (no struct padding ambiguity in the v3 sections).
bool
writeU32(std::FILE *f, std::uint32_t v)
{
    return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool
writeI32(std::FILE *f, std::int32_t v)
{
    return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool
writeF32(std::FILE *f, float v)
{
    return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool
writeU64(std::FILE *f, std::uint64_t v)
{
    return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool
readU32(std::FILE *f, std::uint32_t &v)
{
    return std::fread(&v, sizeof(v), 1, f) == 1;
}

bool
readI32(std::FILE *f, std::int32_t &v)
{
    return std::fread(&v, sizeof(v), 1, f) == 1;
}

bool
readF32(std::FILE *f, float &v)
{
    return std::fread(&v, sizeof(v), 1, f) == 1;
}

bool
readU64(std::FILE *f, std::uint64_t &v)
{
    return std::fread(&v, sizeof(v), 1, f) == 1;
}

std::uint32_t
blocksCrc(std::initializer_list<std::span<const float>> blocks)
{
    std::uint32_t crc = 0;
    for (const auto block : blocks)
        crc = crc32Update(crc, block.data(), block.size_bytes());
    return crc;
}

/** "F3DM", version 3, backend tag. */
bool
writeV3Prefix(std::FILE *f, BackendKind kind)
{
    return std::fwrite(kMagic, sizeof(kMagic), 1, f) == 1 &&
           writeU32(f, kVersionV3) &&
           writeU32(f, static_cast<std::uint32_t>(kind));
}

/** Freq section: 6 i32 dims, CRC32, 2 u64 counts, 2 payload blocks. */
bool
writeFreqSection(std::FILE *f, const FreqNerfModel &model)
{
    const FreqNerfConfig &cfg = model.config();
    bool ok = writeI32(f, cfg.posFrequencies) && writeI32(f, cfg.hidden) &&
              writeI32(f, cfg.trunkLayers) && writeI32(f, cfg.geoFeatures) &&
              writeI32(f, cfg.colorHidden) && writeI32(f, cfg.shDegree);
    ok = ok && writeU32(f, blocksCrc({model.trunk().params(),
                                      model.colorNet().params()}));
    ok = ok && writeU64(f, model.trunk().paramCount()) &&
         writeU64(f, model.colorNet().paramCount());
    ok = ok && !F3D_FAULT_POINT("nerf.save.write");
    ok = ok && writeBlock(f, model.trunk().params());
    ok = ok && writeBlock(f, model.colorNet().params());
    return ok;
}

/** TensoRF section: 6 i32 + 2 f32 dims, CRC32, 2 u64 counts, 2 blocks. */
bool
writeTensorfSection(std::FILE *f, const TensorfModel &model)
{
    const TensorfModelConfig &cfg = model.config();
    bool ok = writeI32(f, cfg.densityRank) && writeI32(f, cfg.appearanceRank) &&
              writeI32(f, cfg.lineResolution) && writeI32(f, cfg.appearanceDim) &&
              writeI32(f, cfg.colorHidden) && writeI32(f, cfg.shDegree);
    ok = ok && writeF32(f, cfg.densityShift) && writeF32(f, cfg.densityScale);
    ok = ok && writeU32(f, blocksCrc({model.factorParams(),
                                      model.colorNet().params()}));
    ok = ok && writeU64(f, model.factorParams().size()) &&
         writeU64(f, model.colorNet().paramCount());
    ok = ok && !F3D_FAULT_POINT("nerf.save.write");
    ok = ok && writeBlock(f, model.factorParams());
    ok = ok && writeBlock(f, model.colorNet().params());
    return ok;
}

/** Serialize @p field to an open stream in its backend's format. */
bool
writeFieldTo(std::FILE *f, const ServeableField &field)
{
    switch (field.kind()) {
      case BackendKind::hashGrid: {
        const auto *hg = dynamic_cast<const HashGridServeField *>(&field);
        if (!hg)
            return false;
        return writeModelTo(f, hg->model()); // v2 layout
      }
      case BackendKind::freqNerf: {
        const auto *pf = dynamic_cast<const FreqServeField *>(&field);
        if (!pf)
            return false;
        return writeV3Prefix(f, BackendKind::freqNerf) &&
               writeFreqSection(f, pf->model());
      }
      case BackendKind::tensorf: {
        const auto *pf = dynamic_cast<const TensorfServeField *>(&field);
        if (!pf)
            return false;
        return writeV3Prefix(f, BackendKind::tensorf) &&
               writeTensorfSection(f, pf->model());
      }
    }
    return false;
}

/**
 * v4: quantized hash-grid artifact. Layout: "F3DM", u32 version 4,
 * u32 backend tag (hash_grid), u32 quant mode, the nine architecture
 * dims, CRC32 over the three dequantized fp32 blocks, three u64
 * counts, and the three blocks. Weights are stored *dequantized*:
 * every stored value is exactly representable in the packed format
 * (fp16 bits, or int8 × per-tensor scale whose max-abs element always
 * requantizes to ±127), so the loader rebuilds a bit-identical packed
 * image via setInferenceQuant() and drops the fp32 masters — the
 * loaded replica is resident at quantized width even though the disk
 * format stays fp32-wide.
 */
bool
writeModelV4To(std::FILE *f, const NerfModel &model)
{
    const NerfModelConfig &cfg = model.config();
    const std::vector<float> enc = model.encoding().dequantizedParams();
    const std::vector<float> den = model.densityNet().dequantizedParams();
    const std::vector<float> col = model.colorNet().dequantizedParams();
    bool ok = std::fwrite(kMagic, sizeof(kMagic), 1, f) == 1 &&
              writeU32(f, kVersionV4) &&
              writeU32(f, static_cast<std::uint32_t>(BackendKind::hashGrid)) &&
              writeU32(f, static_cast<std::uint32_t>(model.inferenceQuantMode()));
    ok = ok && writeI32(f, cfg.grid.levels) &&
         writeI32(f, cfg.grid.featuresPerLevel) &&
         writeI32(f, cfg.grid.log2TableSize) &&
         writeI32(f, cfg.grid.baseResolution) &&
         writeI32(f, cfg.grid.maxResolution) && writeI32(f, cfg.geoFeatures) &&
         writeI32(f, cfg.densityHidden) && writeI32(f, cfg.colorHidden) &&
         writeI32(f, cfg.shDegree);
    ok = ok && writeU32(f, blocksCrc({enc, den, col}));
    ok = ok && writeU64(f, enc.size()) && writeU64(f, den.size()) &&
         writeU64(f, col.size());
    ok = ok && !F3D_FAULT_POINT("nerf.save.write");
    ok = ok && writeBlock(f, enc);
    ok = ok && writeBlock(f, den);
    ok = ok && writeBlock(f, col);
    return ok;
}

/** Body of a v4 artifact; the 8-byte prefix is already consumed. */
LoadResult
loadModelV4(std::FILE *f, const std::string &path)
{
    std::uint32_t kind = 0;
    std::uint32_t qmode = 0;
    Header h{}; // dimension fields only (sanity check + config build)
    if (!(readU32(f, kind) && readU32(f, qmode) && readI32(f, h.levels) &&
          readI32(f, h.featuresPerLevel) && readI32(f, h.log2TableSize) &&
          readI32(f, h.baseResolution) && readI32(f, h.maxResolution) &&
          readI32(f, h.geoFeatures) && readI32(f, h.densityHidden) &&
          readI32(f, h.colorHidden) && readI32(f, h.shDegree)))
        return loadFailure(
            LoadStatus::truncated,
            strprintf("'%s' ends inside its v4 section header", path.c_str()));
    if (static_cast<BackendKind>(kind) != BackendKind::hashGrid)
        return loadFailure(
            LoadStatus::badBackend,
            strprintf("'%s' tags backend kind %u in a v4 (quantized "
                      "hash_grid) container",
                      path.c_str(), kind));
    if (qmode > static_cast<std::uint32_t>(QuantMode::int8))
        return loadFailure(
            LoadStatus::headerMismatch,
            strprintf("'%s' declares unknown quant mode %u", path.c_str(),
                      qmode));
    if (!headerDimensionsSane(h))
        return loadFailure(
            LoadStatus::headerMismatch,
            strprintf("'%s' declares out-of-range model dimensions", path.c_str()));

    std::uint32_t crc = 0;
    std::uint64_t enc_n = 0;
    std::uint64_t den_n = 0;
    std::uint64_t col_n = 0;
    if (!(readU32(f, crc) && readU64(f, enc_n) && readU64(f, den_n) &&
          readU64(f, col_n)))
        return loadFailure(
            LoadStatus::truncated,
            strprintf("'%s' ends inside its v4 section header", path.c_str()));

    NerfModelConfig cfg;
    cfg.grid.levels = h.levels;
    cfg.grid.featuresPerLevel = h.featuresPerLevel;
    cfg.grid.log2TableSize = h.log2TableSize;
    cfg.grid.baseResolution = h.baseResolution;
    cfg.grid.maxResolution = h.maxResolution;
    cfg.geoFeatures = h.geoFeatures;
    cfg.densityHidden = h.densityHidden;
    cfg.colorHidden = h.colorHidden;
    cfg.shDegree = h.shDegree;

    auto model = std::make_unique<NerfModel>(cfg);
    if (model->encoding().paramCount() != enc_n ||
        model->densityNet().paramCount() != den_n ||
        model->colorNet().paramCount() != col_n)
        return loadFailure(
            LoadStatus::headerMismatch,
            strprintf("parameter counts in '%s' do not match its declared "
                      "architecture",
                      path.c_str()));

    bool ok = !F3D_FAULT_POINT("nerf.load.read");
    ok = ok && readBlock(f, model->encoding().params());
    ok = ok && readBlock(f, model->densityNet().params());
    ok = ok && readBlock(f, model->colorNet().params());
    if (!ok)
        return loadFailure(
            LoadStatus::truncated,
            strprintf("'%s' ends before its parameter blocks do", path.c_str()));

    if (paramCrc(*model) != crc || F3D_FAULT_POINT("nerf.load.crc"))
        return loadFailure(
            LoadStatus::badChecksum,
            strprintf("parameter payload of '%s' fails its CRC32", path.c_str()));

    // Rebuild the packed image the saver held (bit-identical: the
    // stored dequantized values requantize to the same bits and
    // scales), then drop the fp32 masters again.
    const QuantMode mode = static_cast<QuantMode>(qmode);
    if (mode != QuantMode::fp32)
        model->setInferenceQuant(mode);

    LoadResult r;
    r.model = std::move(model);
    r.status = LoadStatus::ok;
    return r;
}

FieldLoadResult
fieldFailure(LoadStatus status, std::string message)
{
    FieldLoadResult r;
    r.status = status;
    r.message = std::move(message);
    return r;
}

bool
freqDimensionsSane(const FreqNerfConfig &cfg)
{
    return cfg.posFrequencies >= 1 && cfg.posFrequencies <= 16 &&
           cfg.hidden >= 1 && cfg.hidden <= 4096 && cfg.trunkLayers >= 1 &&
           cfg.trunkLayers <= 16 && cfg.geoFeatures >= 1 &&
           cfg.geoFeatures <= 256 && cfg.colorHidden >= 1 &&
           cfg.colorHidden <= 4096 && cfg.shDegree >= 1 && cfg.shDegree <= 4;
}

bool
tensorfDimensionsSane(const TensorfModelConfig &cfg)
{
    return cfg.densityRank >= 1 && cfg.densityRank <= 256 &&
           cfg.appearanceRank >= 1 && cfg.appearanceRank <= 256 &&
           cfg.lineResolution >= 2 && cfg.lineResolution <= 4096 &&
           cfg.appearanceDim >= 1 && cfg.appearanceDim <= 256 &&
           cfg.colorHidden >= 1 && cfg.colorHidden <= 4096 && cfg.shDegree >= 1 &&
           cfg.shDegree <= 4 && cfg.densityShift >= -100.0f &&
           cfg.densityShift <= 100.0f && cfg.densityScale > 0.0f &&
           cfg.densityScale <= 1e6f;
}

FieldLoadResult
loadFreqSection(std::FILE *f, const std::string &path)
{
    FreqNerfConfig cfg;
    std::uint32_t crc = 0;
    std::uint64_t trunk_params = 0;
    std::uint64_t color_params = 0;
    if (!(readI32(f, cfg.posFrequencies) && readI32(f, cfg.hidden) &&
          readI32(f, cfg.trunkLayers) && readI32(f, cfg.geoFeatures) &&
          readI32(f, cfg.colorHidden) && readI32(f, cfg.shDegree) &&
          readU32(f, crc) && readU64(f, trunk_params) &&
          readU64(f, color_params)))
        return fieldFailure(
            LoadStatus::truncated,
            strprintf("'%s' ends inside its freq_nerf section header",
                      path.c_str()));
    if (!freqDimensionsSane(cfg))
        return fieldFailure(
            LoadStatus::headerMismatch,
            strprintf("'%s' declares out-of-range freq_nerf dimensions",
                      path.c_str()));

    auto model = std::make_unique<FreqNerfModel>(cfg);
    if (model->trunk().paramCount() != trunk_params ||
        model->colorNet().paramCount() != color_params)
        return fieldFailure(
            LoadStatus::headerMismatch,
            strprintf("parameter counts in '%s' do not match its declared "
                      "freq_nerf architecture",
                      path.c_str()));

    bool ok = !F3D_FAULT_POINT("nerf.load.read");
    ok = ok && readBlock(f, model->trunk().params());
    ok = ok && readBlock(f, model->colorNet().params());
    if (!ok)
        return fieldFailure(
            LoadStatus::truncated,
            strprintf("'%s' ends before its parameter blocks do", path.c_str()));

    if (blocksCrc({model->trunk().params(), model->colorNet().params()}) != crc ||
        F3D_FAULT_POINT("nerf.load.crc"))
        return fieldFailure(
            LoadStatus::badChecksum,
            strprintf("parameter payload of '%s' fails its CRC32", path.c_str()));

    FieldLoadResult r;
    r.field = std::make_unique<FreqServeField>(std::move(model));
    r.status = LoadStatus::ok;
    return r;
}

FieldLoadResult
loadTensorfSection(std::FILE *f, const std::string &path)
{
    TensorfModelConfig cfg;
    std::uint32_t crc = 0;
    std::uint64_t factor_params = 0;
    std::uint64_t net_params = 0;
    if (!(readI32(f, cfg.densityRank) && readI32(f, cfg.appearanceRank) &&
          readI32(f, cfg.lineResolution) && readI32(f, cfg.appearanceDim) &&
          readI32(f, cfg.colorHidden) && readI32(f, cfg.shDegree) &&
          readF32(f, cfg.densityShift) && readF32(f, cfg.densityScale) &&
          readU32(f, crc) && readU64(f, factor_params) && readU64(f, net_params)))
        return fieldFailure(
            LoadStatus::truncated,
            strprintf("'%s' ends inside its tensorf section header",
                      path.c_str()));
    if (!tensorfDimensionsSane(cfg))
        return fieldFailure(
            LoadStatus::headerMismatch,
            strprintf("'%s' declares out-of-range tensorf dimensions",
                      path.c_str()));

    auto model = std::make_unique<TensorfModel>(cfg);
    if (model->factorParams().size() != factor_params ||
        model->colorNet().paramCount() != net_params)
        return fieldFailure(
            LoadStatus::headerMismatch,
            strprintf("parameter counts in '%s' do not match its declared "
                      "tensorf architecture",
                      path.c_str()));

    bool ok = !F3D_FAULT_POINT("nerf.load.read");
    ok = ok && readBlock(f, model->factorParams());
    ok = ok && readBlock(f, model->colorNet().params());
    if (!ok)
        return fieldFailure(
            LoadStatus::truncated,
            strprintf("'%s' ends before its parameter blocks do", path.c_str()));

    if (blocksCrc({model->factorParams(), model->colorNet().params()}) != crc ||
        F3D_FAULT_POINT("nerf.load.crc"))
        return fieldFailure(
            LoadStatus::badChecksum,
            strprintf("parameter payload of '%s' fails its CRC32", path.c_str()));

    FieldLoadResult r;
    r.field = std::make_unique<TensorfServeField>(std::move(model));
    r.status = LoadStatus::ok;
    return r;
}

} // namespace

bool
saveField(const ServeableField &field, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const bool ok = writeFieldTo(f, field);
    std::fclose(f);
    return ok;
}

bool
saveFieldAtomic(const ServeableField &field, const std::string &path)
{
    if (field.kind() == BackendKind::hashGrid) {
        const auto *hg = dynamic_cast<const HashGridServeField *>(&field);
        return hg && saveModelAtomic(hg->model(), path);
    }

    const std::string tmp = path + ".tmp";
    std::FILE *f =
        F3D_FAULT_POINT("trainer.ckpt.open") ? nullptr : std::fopen(tmp.c_str(), "wb");
    if (!f) {
        warn("saveFieldAtomic: cannot open '%s'", tmp.c_str());
        return false;
    }
    bool ok = writeFieldTo(f, field);
    ok = ok && std::fflush(f) == 0;
    ok = ok && fsync(fileno(f)) == 0;
    std::fclose(f);
    if (!ok) {
        std::remove(tmp.c_str());
        warn("saveFieldAtomic: write to '%s' failed", tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        warn("saveFieldAtomic: cannot rename '%s' to '%s'", tmp.c_str(),
             path.c_str());
        return false;
    }
    return true;
}

FieldLoadResult
loadFieldVerbose(const std::string &path)
{
    std::FILE *f =
        F3D_FAULT_POINT("nerf.load.open") ? nullptr : std::fopen(path.c_str(), "rb");
    if (!f)
        return fieldFailure(LoadStatus::ioError,
                            strprintf("cannot open '%s'", path.c_str()));

    char magic[4] = {};
    std::uint32_t version = 0;
    if (std::fread(magic, sizeof(magic), 1, f) != 1 || !readU32(f, version)) {
        std::fclose(f);
        return fieldFailure(
            LoadStatus::truncated,
            strprintf("'%s' is shorter than the 8-byte prefix", path.c_str()));
    }
    if (std::memcmp(magic, kMagic, 4) != 0) {
        std::fclose(f);
        return fieldFailure(LoadStatus::badMagic,
                            strprintf("'%s' is not an F3DM artifact", path.c_str()));
    }

    if (version == kVersion || version == kVersionV4) {
        // Hash-grid artifact (v2 fp32 or v4 quantized): reuse the model
        // reader end to end so its diagnostics stay byte-for-byte
        // identical.
        std::fclose(f);
        LoadResult legacy = loadModelVerbose(path);
        FieldLoadResult r;
        r.status = legacy.status;
        r.message = std::move(legacy.message);
        if (legacy.model)
            r.field = std::make_unique<HashGridServeField>(std::move(legacy.model));
        return r;
    }
    if (version != kVersionV3) {
        std::fclose(f);
        return fieldFailure(LoadStatus::badVersion,
                            strprintf("'%s' has format version %u, expected %u "
                                      "or %u",
                                      path.c_str(), version, kVersion,
                                      kVersionV3));
    }

    std::uint32_t kind = 0;
    if (!readU32(f, kind)) {
        std::fclose(f);
        return fieldFailure(
            LoadStatus::truncated,
            strprintf("'%s' ends before its backend tag", path.c_str()));
    }

    FieldLoadResult r;
    switch (static_cast<BackendKind>(kind)) {
      case BackendKind::hashGrid:
        // v3 never carries a hash-grid section (those stay v2).
        r = fieldFailure(
            LoadStatus::badBackend,
            strprintf("'%s' tags a hash_grid section in a v3 container",
                      path.c_str()));
        break;
      case BackendKind::freqNerf:
        r = loadFreqSection(f, path);
        break;
      case BackendKind::tensorf:
        r = loadTensorfSection(f, path);
        break;
      default:
        r = fieldFailure(
            LoadStatus::badBackend,
            strprintf("'%s' declares unknown backend kind %u", path.c_str(),
                      kind));
        break;
    }
    std::fclose(f);
    return r;
}

std::unique_ptr<ServeableField>
loadField(const std::string &path)
{
    FieldLoadResult r = loadFieldVerbose(path);
    if (!r)
        warn("loadField: %s: %s", loadStatusName(r.status), r.message.c_str());
    return std::move(r.field);
}

std::size_t
fieldFootprintBytes(const ServeableField &field, int bytes_per_param)
{
    const std::size_t params =
        field.paramCount() * static_cast<std::size_t>(bytes_per_param);
    switch (field.kind()) {
      case BackendKind::hashGrid:
        return sizeof(Header) + params;
      case BackendKind::freqNerf:
        // prefix (12) + 6 i32 + crc + 2 u64.
        return 12 + 6 * 4 + 4 + 2 * 8 + params;
      case BackendKind::tensorf:
        // prefix (12) + 6 i32 + 2 f32 + crc + 2 u64.
        return 12 + 6 * 4 + 2 * 4 + 4 + 2 * 8 + params;
    }
    return params;
}

} // namespace fusion3d::nerf
