#include "common/fault.h"

#include <cerrno>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fusion3d
{

namespace
{

/** FNV-1a over the point name: a stable per-point PCG stream id. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
        s.remove_suffix(1);
    return s;
}

/** Parse one trigger value ("p0.1", "every5", "once", ...). */
bool
parseTrigger(std::string_view value, FaultRule &rule, std::string &error)
{
    if (value == "off" || value == "never") {
        rule.trigger = FaultTrigger::off;
        return true;
    }
    if (value == "always") {
        rule.trigger = FaultTrigger::always;
        return true;
    }
    if (value == "once") {
        rule.trigger = FaultTrigger::once;
        return true;
    }
    if (value.size() > 1 && value.front() == 'p') {
        const std::string num(value.substr(1));
        char *end = nullptr;
        errno = 0;
        const double p = std::strtod(num.c_str(), &end);
        if (errno != 0 || end != num.c_str() + num.size()) {
            error = strprintf("bad probability '%s'", std::string(value).c_str());
            return false;
        }
        if (p < 0.0 || p > 1.0) {
            error = strprintf("probability %g outside [0, 1]", p);
            return false;
        }
        rule.trigger = FaultTrigger::probability;
        rule.probability = p;
        return true;
    }
    constexpr std::string_view kEvery = "every";
    if (value.size() > kEvery.size() && value.substr(0, kEvery.size()) == kEvery) {
        const std::string num(value.substr(kEvery.size()));
        char *end = nullptr;
        errno = 0;
        // NB: strtoull wraps negative input instead of failing.
        const unsigned long long n =
            num.front() == '-' ? 0 : std::strtoull(num.c_str(), &end, 10);
        if (errno != 0 || end != num.c_str() + num.size() || n == 0) {
            error = strprintf("bad period '%s' (want every<N>, N >= 1)",
                              std::string(value).c_str());
            return false;
        }
        rule.trigger = FaultTrigger::everyNth;
        rule.n = n;
        return true;
    }
    error = strprintf("unknown trigger '%s' (want p<float>, every<N>, once, "
                      "always, or off)",
                      std::string(value).c_str());
    return false;
}

} // namespace

bool
FaultPlan::parse(const std::string &spec, FaultPlan &out, std::string &error)
{
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t sep = spec.find(';', pos);
        if (sep == std::string::npos)
            sep = spec.size();
        const std::string_view entry =
            trim(std::string_view(spec).substr(pos, sep - pos));
        pos = sep + 1;
        if (entry.empty())
            continue; // tolerate empty segments ("a=once;;b=off;")

        const std::size_t eq = entry.find('=');
        if (eq == std::string_view::npos) {
            error = strprintf("entry '%s' has no '='", std::string(entry).c_str());
            return false;
        }
        const std::string_view name = trim(entry.substr(0, eq));
        const std::string_view value = trim(entry.substr(eq + 1));
        if (name.empty()) {
            error = strprintf("entry '%s' has an empty point name",
                              std::string(entry).c_str());
            return false;
        }
        if (value.empty()) {
            error = strprintf("entry '%s' has an empty trigger",
                              std::string(entry).c_str());
            return false;
        }

        if (name == "seed") {
            const std::string num(value);
            char *end = nullptr;
            errno = 0;
            const unsigned long long seed = std::strtoull(num.c_str(), &end, 10);
            if (errno != 0 || num.front() == '-' ||
                end != num.c_str() + num.size()) {
                error = strprintf("bad seed '%s'", num.c_str());
                return false;
            }
            plan.seed = seed;
            continue;
        }

        FaultRule rule;
        if (!parseTrigger(value, rule, error))
            return false;
        plan.rules[std::string(name)] = rule; // later entries win
    }
    out = std::move(plan);
    error.clear();
    return true;
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::configure(const FaultPlan &plan)
{
    bool register_metrics = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        points_.clear();
        for (const auto &[name, rule] : plan.rules) {
            PointState ps;
            ps.rule = rule;
            ps.rng = Pcg32(plan.seed, fnv1a(name));
            points_.emplace(name, ps);
        }
        active_.store(!points_.empty(), std::memory_order_relaxed);
        if (!metrics_registered_) {
            metrics_registered_ = true;
            register_metrics = true;
        }
    }
    // Register outside mutex_: the collector locks mutex_ under the
    // registry's own mutex, so taking them here in the opposite order
    // would be a lock-order inversion.
    if (register_metrics) {
        obs::MetricsRegistry::global().registerCollector(
            "fault", [this](obs::MetricSink &sink) {
                std::lock_guard<std::mutex> lock(mutex_);
                sink.gauge("fault.active_points",
                           static_cast<double>(points_.size()));
                for (const auto &[name, ps] : points_) {
                    sink.counter("fault." + name + ".checks",
                                 static_cast<double>(ps.checks));
                    sink.counter("fault." + name + ".fires",
                                 static_cast<double>(ps.fires));
                }
            });
    }
}

bool
FaultInjector::configureFromSpec(const std::string &spec, std::string *error)
{
    FaultPlan plan;
    std::string why;
    if (!FaultPlan::parse(spec, plan, why)) {
        if (error)
            *error = why;
        return false;
    }
    configure(plan);
    return true;
}

void
FaultInjector::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    points_.clear();
    active_.store(false, std::memory_order_relaxed);
}

bool
FaultInjector::shouldFail(const char *point)
{
    if (!active_.load(std::memory_order_relaxed))
        return false;

    bool fired = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = points_.find(std::string_view(point));
        if (it == points_.end())
            return false;
        PointState &ps = it->second;
        ++ps.checks;
        switch (ps.rule.trigger) {
          case FaultTrigger::off:
            break;
          case FaultTrigger::always:
            fired = true;
            break;
          case FaultTrigger::once:
            fired = ps.fires == 0;
            break;
          case FaultTrigger::everyNth:
            fired = ps.checks % ps.rule.n == 0;
            break;
          case FaultTrigger::probability:
            fired = ps.rng.nextFloat() <
                    static_cast<float>(ps.rule.probability);
            break;
        }
        if (fired)
            ++ps.fires;
    }
    if (fired) {
        obs::Tracer::instance().recordInstant("fault", point);
        // Preserve the history leading up to the injected failure: the
        // black box is most valuable exactly when chaos fires.
        obs::FlightRecorder::instance().triggerDump(point);
    }
    return fired;
}

std::uint64_t
FaultInjector::checks(const std::string &point) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = points_.find(point);
    return it == points_.end() ? 0 : it->second.checks;
}

std::uint64_t
FaultInjector::fires(const std::string &point) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = points_.find(point);
    return it == points_.end() ? 0 : it->second.fires;
}

std::uint64_t
FaultInjector::totalFires() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t n = 0;
    for (const auto &[name, ps] : points_)
        n += ps.fires;
    return n;
}

std::vector<std::string>
FaultInjector::activePoints() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(points_.size());
    for (const auto &[name, ps] : points_)
        out.push_back(name);
    return out;
}

} // namespace fusion3d
