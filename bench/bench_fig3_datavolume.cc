/**
 * @file
 * Regenerates Fig. 3: the data volume of the three NeRF pipeline stages
 * during one full training run (paper: ~155 GB of intermediate data,
 * ~0.7 GB of true pipeline input/output), and the bandwidth the
 * different design boundaries therefore require for 2-second training.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "chip/perf_model.h"

using namespace fusion3d;

int
main()
{
    bench::banner("Fig. 3: training data volume per pipeline stage");

    chip::BandwidthModel bm; // paper-scale workload parameters

    const double inter_gb = bm.interStageGBs() * bm.trainSeconds;
    const double intra_gb = bm.intraStageGBs() * bm.trainSeconds;

    std::printf("Workload: %.0f M samples/s for %.1f s (training to 25 PSNR)\n",
                bm.samplesPerSec / 1e6, bm.trainSeconds);
    std::printf("Hash grid: %d levels x %d features; MLP hidden %d\n\n", bm.levels,
                bm.featuresPerLevel, bm.mlpHidden);

    std::printf("%-44s %12s\n", "Data band", "Volume (GB)");
    bench::rule(58);
    std::printf("%-44s %12.1f\n", "Inter-stage traffic (S1->S2, S2->S3)", inter_gb);
    std::printf("%-44s %12.1f\n", "Intra-stage traffic (updates, activations)",
                intra_gb);
    std::printf("%-44s %12.1f\n", "Total intermediate", inter_gb + intra_gb);
    std::printf("%-44s %12.2f\n", "Pipeline input (posed images)", bm.datasetGb);
    std::printf("%-44s %12.2f\n", "Pipeline output (trained model)", bm.modelOutGb);
    bench::rule(58);
    std::printf("Paper: 155 GB intermediate, 0.7 GB input+output.\n\n");

    std::printf("Bandwidth for 2 s training, per design boundary (Fig. 3 boxes):\n");
    const double table = 640.0 * 1024.0;
    std::printf("  %-38s %8.2f GB/s\n", "End-to-end (this work)",
                bm.requiredBandwidthGBs(chip::CoverageBoundary::EndToEnd, table));
    const double i3d_table = (65536.0 + 262144.0) * 2.0 * 2.0;
    std::printf("  %-38s %8.1f GB/s\n", "Stages II+III on-chip (Instant-3D)",
                bm.requiredBandwidthGBs(chip::CoverageBoundary::Stage23, i3d_table));
    std::printf("  %-38s %8.1f GB/s\n", "Stage II only (NGPC/NeuRex)",
                bm.requiredBandwidthGBs(chip::CoverageBoundary::Stage2Only, i3d_table));
    std::printf("Paper: ~12.5 GB/s inter-stage + ~77.5 GB/s intra-stage when "
                "crossing off-chip; 0.6 GB/s end-to-end.\n");
    return 0;
}
