/** @file Unit tests for the Vec3f/Vec3i math types. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/vec.h"

namespace fusion3d
{
namespace
{

TEST(Vec3f, BasicArithmetic)
{
    const Vec3f a{1.0f, 2.0f, 3.0f};
    const Vec3f b{4.0f, -5.0f, 6.0f};
    EXPECT_EQ(a + b, Vec3f(5.0f, -3.0f, 9.0f));
    EXPECT_EQ(a - b, Vec3f(-3.0f, 7.0f, -3.0f));
    EXPECT_EQ(a * 2.0f, Vec3f(2.0f, 4.0f, 6.0f));
    EXPECT_EQ(2.0f * a, a * 2.0f);
    EXPECT_EQ(a / 2.0f, Vec3f(0.5f, 1.0f, 1.5f));
    EXPECT_EQ(-a, Vec3f(-1.0f, -2.0f, -3.0f));
}

TEST(Vec3f, CompoundAssignment)
{
    Vec3f v{1.0f, 1.0f, 1.0f};
    v += Vec3f{1.0f, 2.0f, 3.0f};
    EXPECT_EQ(v, Vec3f(2.0f, 3.0f, 4.0f));
    v -= Vec3f{1.0f, 1.0f, 1.0f};
    EXPECT_EQ(v, Vec3f(1.0f, 2.0f, 3.0f));
    v *= 3.0f;
    EXPECT_EQ(v, Vec3f(3.0f, 6.0f, 9.0f));
}

TEST(Vec3f, HadamardOps)
{
    const Vec3f a{2.0f, 3.0f, 4.0f};
    const Vec3f b{5.0f, 6.0f, 7.0f};
    EXPECT_EQ(a * b, Vec3f(10.0f, 18.0f, 28.0f));
    EXPECT_EQ((a * b) / b, a);
}

TEST(Vec3f, DotAndCross)
{
    const Vec3f x{1.0f, 0.0f, 0.0f};
    const Vec3f y{0.0f, 1.0f, 0.0f};
    const Vec3f z{0.0f, 0.0f, 1.0f};
    EXPECT_FLOAT_EQ(dot(x, y), 0.0f);
    EXPECT_EQ(cross(x, y), z);
    EXPECT_EQ(cross(y, z), x);
    EXPECT_EQ(cross(z, x), y);
    EXPECT_FLOAT_EQ(dot(Vec3f(1, 2, 3), Vec3f(4, 5, 6)), 32.0f);
}

TEST(Vec3f, LengthAndNormalize)
{
    EXPECT_FLOAT_EQ(length(Vec3f(3.0f, 4.0f, 0.0f)), 5.0f);
    const Vec3f n = normalize(Vec3f(10.0f, 0.0f, 0.0f));
    EXPECT_FLOAT_EQ(n.x, 1.0f);
    // Zero vector passes through unchanged.
    EXPECT_EQ(normalize(Vec3f(0.0f)), Vec3f(0.0f));
}

TEST(Vec3f, NormalizeIsUnitLength)
{
    Pcg32 rng(7);
    for (int i = 0; i < 200; ++i) {
        const Vec3f v{rng.nextRange(-5, 5), rng.nextRange(-5, 5), rng.nextRange(-5, 5)};
        if (length(v) < 1e-3f)
            continue;
        EXPECT_NEAR(length(normalize(v)), 1.0f, 1e-5f);
    }
}

TEST(Vec3f, MinMaxComponents)
{
    const Vec3f a{1.0f, 5.0f, 3.0f};
    const Vec3f b{2.0f, 4.0f, 9.0f};
    EXPECT_EQ(compMin(a, b), Vec3f(1.0f, 4.0f, 3.0f));
    EXPECT_EQ(compMax(a, b), Vec3f(2.0f, 5.0f, 9.0f));
    EXPECT_FLOAT_EQ(minComp(a), 1.0f);
    EXPECT_FLOAT_EQ(maxComp(a), 5.0f);
}

TEST(Vec3f, LerpEndpointsAndMidpoint)
{
    const Vec3f a{0.0f, 0.0f, 0.0f};
    const Vec3f b{2.0f, 4.0f, 8.0f};
    EXPECT_EQ(lerp(a, b, 0.0f), a);
    EXPECT_EQ(lerp(a, b, 1.0f), b);
    EXPECT_EQ(lerp(a, b, 0.5f), Vec3f(1.0f, 2.0f, 4.0f));
}

TEST(Vec3f, ClampBounds)
{
    EXPECT_EQ(clamp(Vec3f(-1.0f, 0.5f, 2.0f), 0.0f, 1.0f), Vec3f(0.0f, 0.5f, 1.0f));
}

TEST(Vec3f, IndexingMatchesMembers)
{
    const Vec3f v{7.0f, 8.0f, 9.0f};
    EXPECT_FLOAT_EQ(v[0], 7.0f);
    EXPECT_FLOAT_EQ(v[1], 8.0f);
    EXPECT_FLOAT_EQ(v[2], 9.0f);
    Vec3f m;
    m.at(0) = 1.0f;
    m.at(1) = 2.0f;
    m.at(2) = 3.0f;
    EXPECT_EQ(m, Vec3f(1.0f, 2.0f, 3.0f));
}

TEST(Vec3i, ArithmeticAndFloor)
{
    const Vec3i a{1, 2, 3};
    const Vec3i b{4, 5, 6};
    EXPECT_EQ(a + b, Vec3i(5, 7, 9));
    EXPECT_EQ(b - a, Vec3i(3, 3, 3));
    EXPECT_EQ(floorToInt(Vec3f(1.9f, -0.1f, 2.0f)), Vec3i(1, -1, 2));
    EXPECT_EQ(toFloat(Vec3i(1, 2, 3)), Vec3f(1.0f, 2.0f, 3.0f));
}

} // namespace
} // namespace fusion3d
