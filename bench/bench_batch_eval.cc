/**
 * @file
 * Batched-vs-scalar field-evaluation bench across every backend:
 * samples/sec of the scalar forwardPoint loop against the batched SoA
 * core at batch sizes 1/32/256/2048. Covers the hash-grid NerfModel
 * (forwardBatch), the frequency-encoded FreqNerfModel, and the
 * CP-factorized TensorfModel (forwardPointBatch). Prints the usual
 * table per backend plus one machine-readable JSON summary line
 * (prefixed "JSON:", kept as the BENCH_backends.json CI artifact) and
 * exits non-zero if any selected backend's batched path is slower than
 * scalar at batch 256 — the CI smoke gate for the GEMM-shaped pipeline.
 *
 * Usage: bench_batch_eval [--quick] [--backend nerf|freq|tensorf|all]
 *                         [samples_per_config]
 *
 *  --quick    reduce the per-configuration sample budget for CI smoke
 *             runs (the speedup, not the absolute rate, is the gate).
 *  --backend  which backend(s) to measure (default all).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "nerf/freq_nerf.h"
#include "nerf/nerf_model.h"
#include "nerf/tensorf.h"

using namespace fusion3d;

namespace
{

struct EvalPoint
{
    std::size_t batch;
    double scalarSps;
    double batchedSps;
    double speedup;
};

struct BackendResult
{
    const char *backend;
    std::vector<EvalPoint> points;
    double speedup256 = 0.0;
};

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

void
fillInputs(std::size_t batch, std::vector<Vec3f> &pos, std::vector<Vec3f> &dirs)
{
    Pcg32 rng(2026);
    pos.resize(batch);
    dirs.resize(batch);
    for (std::size_t j = 0; j < batch; ++j) {
        pos[j] = clamp(rng.nextVec3(), 0.01f, 0.99f);
        dirs[j] = rng.nextUnitVector();
    }
}

EvalPoint
finishPoint(std::size_t batch, std::size_t reps, double scalar_s,
            double batched_s)
{
    EvalPoint p{};
    p.batch = batch;
    const double samples = static_cast<double>(reps * batch);
    p.scalarSps = samples / scalar_s;
    p.batchedSps = samples / batched_s;
    p.speedup = p.batchedSps / p.scalarSps;
    return p;
}

EvalPoint
measureNerf(const nerf::NerfModel &model, std::size_t batch, std::size_t budget)
{
    std::vector<Vec3f> pos, dirs;
    fillInputs(batch, pos, dirs);
    const std::size_t reps = std::max<std::size_t>(1, budget / batch);
    std::vector<float> sigmas(batch);
    std::vector<Vec3f> rgbs(batch);

    // Checksum keeps the optimizer from discarding the work; the two
    // paths are bit-exact, so it doubles as a cheap equivalence check.
    double sum_scalar = 0.0, sum_batched = 0.0;

    nerf::PointWorkspace pws = model.makeWorkspace();
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep)
        for (std::size_t j = 0; j < batch; ++j)
            sum_scalar += model.forwardPoint(pos[j], dirs[j], pws).sigma;
    const double scalar_s = secondsSince(t0);

    nerf::NerfBatchWorkspace bws = model.makeBatchWorkspace(batch);
    const auto t1 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
        model.forwardBatch(pos, dirs, bws, sigmas, rgbs);
        sum_batched += sigmas[rep % batch];
    }
    const double batched_s = secondsSince(t1);
    if (sum_scalar < 0.0 && sum_batched < 0.0) // sigmas are positive
        fatal("impossible checksum");
    return finishPoint(batch, reps, scalar_s, batched_s);
}

/** The point-model backends (FreqNeRF, TensoRF) share the batched
 *  contract, so one template measures both. */
template <class ModelT>
EvalPoint
measurePointModel(ModelT &model, std::size_t batch, std::size_t budget)
{
    std::vector<Vec3f> pos, dirs;
    fillInputs(batch, pos, dirs);
    const std::size_t reps = std::max<std::size_t>(1, budget / batch);
    std::vector<float> sigmas(batch);
    std::vector<Vec3f> rgbs(batch);

    double sum_scalar = 0.0, sum_batched = 0.0;

    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep)
        for (std::size_t j = 0; j < batch; ++j)
            sum_scalar += model.forwardPoint(pos[j], dirs[j]).sigma;
    const double scalar_s = secondsSince(t0);

    typename ModelT::BatchWorkspace ws = model.makeBatchWorkspace();
    const auto t1 = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
        model.forwardPointBatch(pos, dirs, ws, sigmas, rgbs);
        sum_batched += sigmas[rep % batch];
    }
    const double batched_s = secondsSince(t1);
    if (sum_scalar < 0.0 && sum_batched < 0.0) // sigmas are positive
        fatal("impossible checksum");
    return finishPoint(batch, reps, scalar_s, batched_s);
}

constexpr std::size_t kBatches[] = {1, 32, 256, 2048};

template <class MeasureFn>
BackendResult
runBackend(const char *backend, std::size_t budget, MeasureFn &&measure)
{
    bench::banner((std::string("Batched SoA field evaluation [") + backend +
                   "]: samples/s vs batch size")
                      .c_str());
    std::printf("%-12s %16s %16s %10s\n", "batch", "scalar (sm/s)",
                "batched (sm/s)", "speedup");

    BackendResult r;
    r.backend = backend;
    for (const std::size_t batch : kBatches) {
        r.points.push_back(measure(batch, budget));
        const EvalPoint &p = r.points.back();
        if (p.batch == 256)
            r.speedup256 = p.speedup;
        std::printf("%-12zu %16.0f %16.0f %9.2fx\n", p.batch, p.scalarSps,
                    p.batchedSps, p.speedup);
    }
    bench::rule();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t budget = 1u << 19;
    bool quick = false;
    std::string backend = "all";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc)
            backend = argv[++i];
        else if (std::atoll(argv[i]) > 0)
            budget = static_cast<std::size_t>(std::atoll(argv[i]));
        else
            fatal("usage: %s [--quick] [--backend nerf|freq|tensorf|all] "
                  "[samples_per_config]",
                  argv[0]);
    }
    if (backend != "all" && backend != "nerf" && backend != "freq" &&
        backend != "tensorf")
        fatal("unknown --backend '%s' (want nerf|freq|tensorf|all)",
              backend.c_str());
    if (quick)
        budget = std::min<std::size_t>(budget, 1u << 16);

    std::vector<BackendResult> results;
    if (backend == "all" || backend == "nerf") {
        const nerf::NerfModelConfig mc = bench::defaultPipeline().model;
        const nerf::NerfModel model(mc, 2024);
        results.push_back(runBackend(
            "hash_grid", budget, [&](std::size_t batch, std::size_t bgt) {
                return measureNerf(model, batch, bgt);
            }));
    }
    if (backend == "all" || backend == "freq") {
        nerf::FreqNerfModel model(nerf::FreqNerfConfig{}, 2024);
        results.push_back(runBackend(
            "freq_nerf", budget, [&](std::size_t batch, std::size_t bgt) {
                return measurePointModel(model, batch, bgt);
            }));
    }
    if (backend == "all" || backend == "tensorf") {
        nerf::TensorfModel model(nerf::TensorfModelConfig{}, 2024);
        results.push_back(runBackend(
            "tensorf", budget, [&](std::size_t batch, std::size_t bgt) {
                return measurePointModel(model, batch, bgt);
            }));
    }

    std::string json = "{\"bench\":\"batch_eval\",\"quick\":" +
                       std::string(quick ? "true" : "false") +
                       ",\"samples_per_config\":" + std::to_string(budget) +
                       ",\"backends\":[";
    char buf[192];
    for (std::size_t b = 0; b < results.size(); ++b) {
        const BackendResult &r = results[b];
        json += std::string(b ? "," : "") + "{\"backend\":\"" + r.backend +
                "\",\"points\":[";
        for (std::size_t i = 0; i < r.points.size(); ++i) {
            const EvalPoint &p = r.points[i];
            std::snprintf(buf, sizeof(buf),
                          "%s{\"batch\":%zu,\"scalar_sps\":%.0f,"
                          "\"batched_sps\":%.0f,\"speedup\":%.3f}",
                          i ? "," : "", p.batch, p.scalarSps, p.batchedSps,
                          p.speedup);
            json += buf;
        }
        std::snprintf(buf, sizeof(buf), "],\"speedup_256\":%.3f}", r.speedup256);
        json += buf;
    }
    json += "]}";
    std::printf("JSON: %s\n", json.c_str());

    bool failed = false;
    for (const BackendResult &r : results) {
        if (r.speedup256 < 1.0) {
            std::fprintf(stderr,
                         "FAIL: [%s] batched path slower than scalar at batch "
                         "256 (speedup %.3fx < 1.0x)\n",
                         r.backend, r.speedup256);
            failed = true;
        }
    }
    return failed ? 1 : 0;
}
