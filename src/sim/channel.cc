#include "sim/channel.h"

#include "common/logging.h"

namespace fusion3d::sim
{

BandwidthChannel::BandwidthChannel(const std::string &name, double bytes_per_second,
                                   double latency_seconds)
    : bytes_per_second_(bytes_per_second),
      latency_seconds_(latency_seconds),
      stats_(name),
      total_bytes_(stats_.addCounter("bytes")),
      transfers_(stats_.addCounter("transfers"))
{
    if (bytes_per_second <= 0.0)
        fatal("BandwidthChannel bandwidth must be positive");
}

double
BandwidthChannel::secondsFor(Bytes bytes) const
{
    return latency_seconds_ + static_cast<double>(bytes) / bytes_per_second_;
}

double
BandwidthChannel::transfer(Bytes bytes)
{
    const double t = secondsFor(bytes);
    total_bytes_.inc(bytes);
    transfers_.inc();
    busy_seconds_ += t;
    return t;
}

void
BandwidthChannel::resetStats()
{
    stats_.resetAll();
    busy_seconds_ = 0.0;
}

} // namespace fusion3d::sim
