/**
 * @file
 * Bounded MPMC request queue with admission control and per-tenant
 * QoS. Producers (any thread calling RenderServer::submit) push
 * without blocking — a full queue or an over-share tenant rejects
 * instead, which is the first stage of the server's load shedding. The
 * consumer side pops *batches*: the highest-priority dispatchable
 * request plus queued requests for the same model, so one dispatch
 * shares a model lookup and keeps its tiles hot.
 *
 * Ordering: priority desc, then deadline asc, then FIFO — modulated by
 * two tenant-fairness mechanisms when configured (TenantQosConfig):
 *
 *  - **In-flight caps.** A tenant at its maxInFlightPerTenant cap has
 *    its queued requests *passed over* at dispatch (not rejected);
 *    they become eligible again when the scheduler release()s a slot.
 *  - **Priority aging.** Effective priority grows with time queued
 *    (agingPriorityPerSecond), so a low-priority tenant behind a
 *    heavy high-priority one is guaranteed eventual dispatch.
 *
 * Queue-share admission (maxQueueShare) bounds how much of the
 * capacity one tenant may occupy; breaching it is the only QoS path
 * that rejects (PushResult::tenantQuota → Outcome::rejectedTenantQuota).
 */

#ifndef FUSION3D_SERVE_REQUEST_QUEUE_H_
#define FUSION3D_SERVE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/serve.h"

namespace fusion3d::serve
{

/** A request riding through the queue with its completion promise. */
struct QueuedRequest
{
    RenderRequest request;
    std::promise<RenderResponse> promise;
    Clock::time_point enqueued{};
    /** When the dispatcher popped it (set in dispatchLoop); the gap to
     *  execution start is traced as the "dispatch_wait" span. */
    Clock::time_point dispatched{};
    std::uint64_t id = 0;
    /** Set by popBatch: this request holds one of its tenant's
     *  in-flight slots, which the scheduler must release() when the
     *  request completes. False for requests rejected at admission. */
    bool tenantSlot = false;
};

/** Why push() declined (or didn't). */
enum class PushResult
{
    ok,
    /** The bounded queue is at capacity. */
    queueFull,
    /** The submitting tenant already holds its configured share of the
     *  queue (TenantQosConfig::maxQueueShare); other tenants admit. */
    tenantQuota,
    /** The queue was close()d. */
    closed,
};

/** Queue configuration: capacity plus the tenant QoS policy. */
struct QueueConfig
{
    std::size_t capacity = 64;
    TenantQosConfig qos;
};

/** Bounded multi-producer / multi-consumer priority queue. */
class RequestQueue
{
  public:
    /** Capacity-only shorthand (QoS disabled — single-tenant mode). */
    explicit RequestQueue(std::size_t capacity);

    explicit RequestQueue(const QueueConfig &cfg);

    /**
     * Admit @p qr. Never blocks.
     * @return PushResult::ok, or the rejection reason (@p qr is left
     *         intact so the caller can reject it properly).
     */
    PushResult push(QueuedRequest &&qr);

    /**
     * Pop a batch: block until a *dispatchable* request is available
     * (one whose tenant is under its in-flight cap), take the one with
     * the highest effective (aged) priority, then take up to
     * @p max_batch - 1 further dispatchable queued requests for the
     * same model, preserving queue order. Each popped request charges
     * one in-flight slot to its tenant; the scheduler must release()
     * the slot when the request completes (on every path).
     * @return false when the queue is closed and drained.
     */
    bool popBatch(std::vector<QueuedRequest> &out, int max_batch);

    /**
     * Return @p tenant's in-flight slot (one per popped request). Wakes
     * blocked popBatch callers whose head tenant was at its cap.
     */
    void release(const std::string &tenant);

    /** Current queued-request count. */
    std::size_t depth() const;

    /** Queued requests billed to @p tenant. */
    std::size_t tenantQueued(const std::string &tenant) const;

    /** Popped-but-not-released requests billed to @p tenant. */
    std::size_t tenantInFlight(const std::string &tenant) const;

    /** Close the queue: pushes fail, popBatch drains then returns false. */
    void close();

    bool closed() const;

  private:
    /** True if some queued request's tenant is under its in-flight
     *  cap. Caller holds mutex_. */
    bool dispatchableLocked() const;
    bool tenantAtCapLocked(const std::string &tenant) const;

    mutable std::mutex mutex_;
    std::condition_variable nonempty_;
    /** Kept sorted by (static priority desc, deadline asc, arrival);
     *  aging is applied at pop time by scanning effective priorities,
     *  so the stored order never changes under it. */
    std::list<QueuedRequest> items_;
    QueueConfig cfg_;
    /** Per-tenant queued / in-flight request counts (QoS accounting). */
    std::map<std::string, std::size_t> tenant_queued_;
    std::map<std::string, std::size_t> tenant_inflight_;
    bool closed_ = false;
};

} // namespace fusion3d::serve

#endif // FUSION3D_SERVE_REQUEST_QUEUE_H_
