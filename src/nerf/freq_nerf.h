/**
 * @file
 * Frequency-encoded (vanilla) NeRF: sinusoidal positional encoding into
 * a pure-MLP radiance field — the algorithm family MetaVRain [13]
 * accelerates ("NeRF Algorithm: MLP" in Table III). Included so the
 * algorithm-comparison bench can show *why* the hash-grid pipeline is
 * the right substrate for instant training: the MLP field needs far
 * more compute per point and converges far slower.
 */

#ifndef FUSION3D_NERF_FREQ_NERF_H_
#define FUSION3D_NERF_FREQ_NERF_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/vec.h"
#include "nerf/adam.h"
#include "nerf/mlp.h"
#include "nerf/nerf_model.h"
#include "nerf/point_pipeline.h"

namespace fusion3d::nerf
{

/** Architecture of the frequency-encoded model. */
struct FreqNerfConfig
{
    /** Positional-encoding octaves for positions (NeRF uses 10). */
    int posFrequencies = 6;
    /** Hidden width of the density trunk. */
    int hidden = 64;
    /** Hidden layers of the density trunk (vanilla NeRF uses 8). */
    int trunkLayers = 3;
    /** Geometry features handed to the color head. */
    int geoFeatures = 15;
    /** Hidden width of the color head. */
    int colorHidden = 32;
    /** Spherical-harmonics degree for view directions. */
    int shDegree = 2;

    int shDims() const { return shCoefficientCount(shDegree); }
    /** Encoded position dimensionality: identity + sin/cos pairs. */
    int posDims() const { return 3 + 3 * 2 * posFrequencies; }
};

/**
 * Sinusoidal positional encoding: gamma(p) = (p, sin(2^k pi p),
 * cos(2^k pi p)) for k in [0, frequencies).
 */
void freqEncode(const Vec3f &p, int frequencies, std::span<float> out);

/** The pure-MLP radiance model (PointPipeline-compatible). */
class FreqNerfModel
{
  public:
    using Config = FreqNerfConfig;

    explicit FreqNerfModel(const FreqNerfConfig &cfg, std::uint64_t seed = 41);

    const FreqNerfConfig &config() const { return cfg_; }

    PointEval forwardPoint(const Vec3f &pos, const Vec3f &dir);
    float queryDensity(const Vec3f &pos);
    void backwardPoint(const Vec3f &pos, const Vec3f &dir, float dsigma,
                       const Vec3f &drgb);
    void zeroGrads();
    void optimizerStep(float lr_trunk, float lr_color);
    void quantizeWeights();
    std::size_t paramCount() const;

    /** MLP MACs per point — the compute-cost gap vs hash-grid NeRF. */
    std::uint64_t macsPerPoint() const;

  private:
    FreqNerfConfig cfg_;
    std::unique_ptr<Mlp> trunk_;
    std::unique_ptr<Mlp> color_net_;
    Adam adam_trunk_;
    Adam adam_color_;

    std::vector<float> encoded_;
    std::vector<float> sh_;
    std::vector<float> color_in_;
    std::vector<float> dtrunk_out_;
    std::vector<float> dcolor_out_;
    MlpWorkspace trunk_ws_;
    MlpWorkspace color_ws_;
    float raw_sigma_ = 0.0f;
};

/** Vanilla-NeRF pipeline: generic point pipeline over the MLP model. */
using FreqPipelineConfig = PointPipelineConfig<FreqNerfConfig>;
using FreqPipeline = PointPipeline<FreqNerfModel>;

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_FREQ_NERF_H_
