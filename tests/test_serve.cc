/** @file Tests of the serving subsystem: bit-exact parallel tiled
 *  rendering (against both the single-threaded tiled path and the
 *  existing Trainer::renderView), the model registry, admission
 *  control, deadline shedding, and the drain/stats contract. Expected
 *  to pass under -DFUSION3D_SANITIZE=thread. */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <sstream>
#include <vector>

#include "common/thread_pool.h"
#include "nerf/parallel_render.h"
#include "nerf/pipeline.h"
#include "nerf/serialize.h"
#include "nerf/tensorf.h"
#include "nerf/trainer.h"
#include "serve/model_registry.h"
#include "serve/scheduler.h"

namespace fusion3d::serve
{
namespace
{

nerf::NerfModelConfig
tinyModelConfig()
{
    nerf::NerfModelConfig cfg;
    cfg.grid.levels = 4;
    cfg.grid.featuresPerLevel = 2;
    cfg.grid.log2TableSize = 9;
    cfg.grid.baseResolution = 4;
    cfg.grid.maxResolution = 32;
    cfg.geoFeatures = 7;
    cfg.densityHidden = 16;
    cfg.colorHidden = 16;
    cfg.shDegree = 2;
    return cfg;
}

nerf::Camera
testCamera(int size = 32)
{
    return nerf::Camera::orbit({0.5f, 0.5f, 0.5f}, 1.4f, 35.0f, 20.0f, 45.0f,
                               size, size);
}

void
expectImagesIdentical(const Image &a, const Image &b)
{
    ASSERT_EQ(a.width(), b.width());
    ASSERT_EQ(a.height(), b.height());
    for (int y = 0; y < a.height(); ++y) {
        for (int x = 0; x < a.width(); ++x) {
            const Vec3f pa = a.at(x, y);
            const Vec3f pb = b.at(x, y);
            ASSERT_EQ(pa.x, pb.x) << "(" << x << "," << y << ")";
            ASSERT_EQ(pa.y, pb.y) << "(" << x << "," << y << ")";
            ASSERT_EQ(pa.z, pb.z) << "(" << x << "," << y << ")";
        }
    }
}

TEST(ParallelRender, TiledIsBitIdenticalToSingleThread)
{
    const nerf::NerfModel model(tinyModelConfig(), /*seed=*/21);
    const nerf::OccupancyGrid grid(12); // fresh grid: everything occupied
    const nerf::Camera cam = testCamera();

    nerf::TiledRenderConfig rc;
    rc.sampler.maxSamplesPerRay = 16;
    rc.rowsPerTile = 3;

    const Image serial = nerf::renderImageTiled(model, &grid, cam, rc, nullptr);
    ThreadPool pool(3);
    const Image parallel = nerf::renderImageTiled(model, &grid, cam, rc, &pool);
    expectImagesIdentical(serial, parallel);
}

TEST(ParallelRender, JitteredTilesAreThreadCountInvariant)
{
    const nerf::NerfModel model(tinyModelConfig(), /*seed=*/22);
    const nerf::Camera cam = testCamera();

    nerf::TiledRenderConfig rc;
    rc.sampler.maxSamplesPerRay = 16;
    rc.sampler.jitter = true; // per-row streams keep this deterministic
    rc.seed = 5;
    rc.rowsPerTile = 1;

    const Image serial = nerf::renderImageTiled(model, nullptr, cam, rc, nullptr);
    ThreadPool pool(4);
    const Image parallel = nerf::renderImageTiled(model, nullptr, cam, rc, &pool);
    expectImagesIdentical(serial, parallel);
}

TEST(ParallelRender, MatchesTrainerRenderView)
{
    // The legacy single-threaded path: a pipeline rendered through the
    // Trainer. Jitter off on both sides makes the comparison exact.
    nerf::PipelineConfig pc;
    pc.model = tinyModelConfig();
    pc.sampler.maxSamplesPerRay = 16;
    pc.sampler.jitter = false;
    pc.occupancyResolution = 12;
    nerf::NerfPipeline pipe(pc);

    const nerf::Camera cam = testCamera();
    nerf::Dataset data;
    data.train.push_back({cam, Image(cam.width(), cam.height())});
    nerf::Trainer trainer(pipe, data, nerf::TrainerConfig{});
    const Image reference = trainer.renderView(cam);

    nerf::TiledRenderConfig rc;
    rc.sampler = pc.sampler;
    rc.render = pc.render;
    ThreadPool pool(3);
    const Image tiled =
        nerf::renderImageTiled(pipe.model(), &pipe.grid(), cam, rc, &pool);
    expectImagesIdentical(reference, tiled);
}

TEST(ModelRegistry, DeploysFromArtifactFile)
{
    const nerf::NerfModel model(tinyModelConfig(), /*seed=*/77);
    const std::string path = testing::TempDir() + "registry_model.f3dm";
    ASSERT_TRUE(nerf::saveModel(model, path));

    ModelRegistry registry(/*occupancy_resolution=*/8);
    EXPECT_EQ(registry.addFromFile("hotdog", path), nerf::LoadStatus::ok);
    EXPECT_EQ(registry.size(), 1u);

    const ModelEntry *entry = registry.find("hotdog");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->model->paramCount(), model.paramCount());
    EXPECT_EQ(entry->grid.resolution(), 8);
    EXPECT_EQ(registry.find("missing"), nullptr);

    EXPECT_EQ(registry.addFromFile("broken", testing::TempDir() + "nope.f3dm"),
              nerf::LoadStatus::ioError);
    EXPECT_EQ(registry.size(), 1u);
}

TEST(RenderServer, ServesFullResolutionBitExact)
{
    ModelRegistry registry(8);
    registry.add("m", std::make_unique<nerf::NerfModel>(tinyModelConfig(), 5));
    const ModelEntry *entry = registry.find("m");

    ServeConfig sc;
    sc.renderThreads = 2;
    sc.render.sampler.maxSamplesPerRay = 16;

    RenderServer server(registry, sc);
    RenderRequest req;
    req.model = "m";
    req.camera = testCamera();
    auto future = server.submit(req);
    const RenderResponse resp = future.get();

    EXPECT_EQ(resp.outcome, Outcome::renderedFull);
    EXPECT_GT(resp.id, 0u);
    EXPECT_GE(resp.latencyMs, 0.0);

    // End-to-end determinism: the served frame equals a direct tiled
    // render with the same configuration.
    const Image direct = nerf::renderImageTiled(*entry->model, &entry->grid,
                                                req.camera, sc.render, nullptr);
    expectImagesIdentical(resp.image, direct);

    server.shutdown();
    EXPECT_EQ(server.stats().count(Outcome::renderedFull), 1u);
    EXPECT_EQ(server.stats().completed(), server.stats().submitted());
}

TEST(RenderServer, ServesTensorfV3ArtifactEndToEnd)
{
    // Backend polymorphism through the whole serve path: a TensoRF
    // model saved as a v3 artifact deploys through the registry and
    // serves bit-exactly against a direct tiled render of the original.
    nerf::TensorfModelConfig mc;
    mc.densityRank = 6;
    mc.appearanceRank = 8;
    mc.lineResolution = 48;
    mc.appearanceDim = 8;
    mc.colorHidden = 16;
    const nerf::TensorfModel model(mc, /*seed=*/33);
    const nerf::TensorfServeField field(model);
    const std::string path = testing::TempDir() + "serve_tensorf.f3dm";
    ASSERT_TRUE(nerf::saveField(field, path));

    ModelRegistry registry(/*occupancy_resolution=*/8);
    ASSERT_EQ(registry.addFromFile("vt", path), nerf::LoadStatus::ok);
    const ModelEntry *entry = registry.find("vt");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->model->kind(), nerf::BackendKind::tensorf);
    EXPECT_EQ(entry->model->paramCount(), model.paramCount());

    ServeConfig sc;
    sc.renderThreads = 2;
    sc.render.sampler.maxSamplesPerRay = 16;
    RenderServer server(registry, sc);
    RenderRequest req;
    req.model = "vt";
    req.camera = testCamera();
    const RenderResponse resp = server.submit(req).get();
    ASSERT_EQ(resp.outcome, Outcome::renderedFull);

    const Image direct = nerf::renderImageTiled(*entry->model, &entry->grid,
                                                req.camera, sc.render, nullptr);
    expectImagesIdentical(resp.image, direct);
    server.shutdown();
}

TEST(RenderServer, RejectsUnknownModel)
{
    ModelRegistry registry(8);
    RenderServer server(registry, ServeConfig{});
    RenderRequest req;
    req.model = "ghost";
    req.camera = testCamera(8);
    EXPECT_EQ(server.submit(req).get().outcome, Outcome::rejectedUnknownModel);
}

TEST(RenderServer, ExpiredDeadlineIsShedNotBlocked)
{
    ModelRegistry registry(8);
    registry.add("m", std::make_unique<nerf::NerfModel>(tinyModelConfig(), 5));

    ServeConfig sc;
    sc.renderThreads = 1;
    sc.render.sampler.maxSamplesPerRay = 16;
    RenderServer server(registry, sc);

    RenderRequest req;
    req.model = "m";
    req.camera = testCamera();
    req.deadline = Clock::now() - std::chrono::milliseconds(1);
    const RenderResponse resp = server.submit(req).get();
    EXPECT_EQ(resp.outcome, Outcome::rejectedDeadline);
    EXPECT_TRUE(resp.image.empty());
    EXPECT_EQ(server.stats().shed(), 1u);
}

TEST(RenderServer, OverloadShedsAtAdmissionAndDrainsClean)
{
    ModelRegistry registry(8);
    registry.add("m", std::make_unique<nerf::NerfModel>(tinyModelConfig(), 5));

    ServeConfig sc;
    sc.renderThreads = 1;
    sc.queueCapacity = 2;
    sc.maxInFlight = 1;
    sc.render.sampler.maxSamplesPerRay = 16;
    RenderServer server(registry, sc);

    constexpr int kRequests = 24;
    std::vector<std::future<RenderResponse>> futures;
    for (int i = 0; i < kRequests; ++i) {
        RenderRequest req;
        req.model = "m";
        req.camera = testCamera();
        futures.push_back(server.submit(req));
    }

    int queue_full = 0, rendered = 0;
    for (auto &f : futures) {
        const RenderResponse r = f.get();
        queue_full += r.outcome == Outcome::rejectedQueueFull ? 1 : 0;
        rendered += isRejected(r.outcome) ? 0 : 1;
    }
    EXPECT_GT(queue_full, 0) << "a 2-deep queue must reject a 24-burst";
    EXPECT_GT(rendered, 0);

    server.drain();
    EXPECT_EQ(server.stats().completed(), server.stats().submitted());
    EXPECT_EQ(server.stats().count(Outcome::rejectedQueueFull),
              static_cast<std::uint64_t>(queue_full));
    EXPECT_EQ(server.queueDepth(), 0u);

    std::ostringstream os;
    server.drainAndPrintStats(os);
    EXPECT_NE(os.str().find("serve.rejected_queue_full"), std::string::npos);
    EXPECT_NE(os.str().find("serve.latency_ms"), std::string::npos);
}

TEST(RenderServer, RemoveDuringTrafficDrainsClean)
{
    // Unload-during-traffic lifecycle: a model is removed from the
    // registry while a client is mid-burst. In-flight renders hold
    // their pinned entry and complete; requests resolved after the
    // removal come back rejectedUnknownModel; nothing crashes, hangs,
    // or trips TSan.
    ModelRegistry registry(8);
    registry.add("doomed",
                 std::make_unique<nerf::NerfModel>(tinyModelConfig(), 5));
    registry.add("stays",
                 std::make_unique<nerf::NerfModel>(tinyModelConfig(), 6));

    ServeConfig sc;
    sc.renderThreads = 2;
    sc.render.sampler.maxSamplesPerRay = 8;
    RenderServer server(registry, sc);

    constexpr int kRequests = 16;
    std::vector<std::future<RenderResponse>> futures;
    for (int i = 0; i < kRequests; ++i) {
        RenderRequest req;
        req.model = i % 2 == 0 ? "doomed" : "stays";
        req.camera = testCamera(16);
        futures.push_back(server.submit(req));
        if (i == kRequests / 2) {
            EXPECT_TRUE(registry.removeModel("doomed"));
        }
    }

    int rendered = 0, unknown = 0;
    for (auto &f : futures) {
        const RenderResponse r = f.get();
        ASSERT_TRUE(!isRejected(r.outcome) ||
                    r.outcome == Outcome::rejectedUnknownModel)
            << outcomeName(r.outcome);
        rendered += isRejected(r.outcome) ? 0 : 1;
        unknown += r.outcome == Outcome::rejectedUnknownModel ? 1 : 0;
    }
    // The surviving model must have served its whole half.
    EXPECT_GE(rendered, kRequests / 2);
    EXPECT_EQ(rendered + unknown, kRequests);

    // Removed for good: no artifact path remembered, so a new request
    // is an unknown model, not a reload.
    RenderRequest req;
    req.model = "doomed";
    req.camera = testCamera(16);
    EXPECT_EQ(server.submit(req).get().outcome, Outcome::rejectedUnknownModel);

    server.drain();
    EXPECT_EQ(server.stats().completed(), server.stats().submitted());
    EXPECT_FALSE(registry.removeModel("never-registered"));
}

TEST(RenderServer, PriorityOrdersTheQueue)
{
    RequestQueue queue(8);
    for (int i = 0; i < 4; ++i) {
        QueuedRequest qr;
        qr.request.model = "m";
        qr.request.priority = i; // ascending: later pushes more urgent
        qr.id = static_cast<std::uint64_t>(i);
        ASSERT_EQ(queue.push(std::move(qr)), PushResult::ok);
    }
    std::vector<QueuedRequest> batch;
    ASSERT_TRUE(queue.popBatch(batch, 8));
    ASSERT_EQ(batch.size(), 4u);
    EXPECT_EQ(batch.front().request.priority, 3); // highest first
    EXPECT_EQ(batch.back().request.priority, 0);
}

TEST(RenderServer, QueueBatchesOnlyCompatibleRequests)
{
    RequestQueue queue(8);
    const char *models[] = {"a", "b", "a", "a", "b"};
    for (const char *m : models) {
        QueuedRequest qr;
        qr.request.model = m;
        ASSERT_EQ(queue.push(std::move(qr)), PushResult::ok);
    }
    std::vector<QueuedRequest> batch;
    ASSERT_TRUE(queue.popBatch(batch, 8));
    ASSERT_EQ(batch.size(), 3u); // the three 'a's, batched together
    for (const QueuedRequest &qr : batch)
        EXPECT_EQ(qr.request.model, "a");
    ASSERT_TRUE(queue.popBatch(batch, 8));
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(queue.depth(), 0u);
}

} // namespace
} // namespace fusion3d::serve
