/**
 * @file
 * End-to-end NeRF training loop over a RadianceField: per-iteration ray
 * batches, MSE photometric loss, periodic occupancy refresh, optional
 * periodic weight quantization (the Table-II experiment), and PSNR
 * evaluation on held-out views. The workload statistics it gathers
 * (rays, candidate and valid samples) feed the chip performance model.
 */

#ifndef FUSION3D_NERF_TRAINER_H_
#define FUSION3D_NERF_TRAINER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/image.h"
#include "nerf/dataset.h"
#include "nerf/radiance_field.h"

namespace fusion3d
{
class ThreadPool;
}

namespace fusion3d::nerf
{

class NerfModel;

/** Training-loop configuration. */
struct TrainerConfig
{
    int iterations = 1500;
    int raysPerBatch = 256;
    /** Refresh the occupancy gate every N iterations (0 disables). */
    int occupancyUpdateEvery = 48;
    /** Iterations before the first occupancy refresh. */
    int occupancyWarmup = 96;
    /** Fake-quantize all weights to INT8 every N iterations (0 = never). */
    int quantizeEvery = 0;
    /** Record PSNR every N iterations (0 = final only). */
    int evalEvery = 0;
    /** Test views used per evaluation (capped by the dataset). */
    int evalViews = 1;
    /**
     * Write an atomic checkpoint (saveModelAtomic) every N iterations
     * (0 = never). Requires setCheckpointModel(); a crash mid-write
     * never corrupts the artifact at checkpointPath.
     */
    int checkpointEvery = 0;
    /** Destination of periodic checkpoints. */
    std::string checkpointPath = "checkpoint.f3dm";
    std::uint64_t seed = 1234;
    /**
     * Thread pool for sharded forward/backward, the optimizer step, the
     * occupancy refresh, and tiled eval renders (null = serial, the
     * legacy path). Must outlive the trainer. With a pool attached, a
     * given seed reproduces bit-identical weights at ANY pool size —
     * the shard partition and gradient reduction order depend only on
     * the batch, never on thread count or scheduling.
     */
    ThreadPool *pool = nullptr;
};

/** Aggregate statistics of one training run. */
struct TrainResult
{
    /** (iteration, test PSNR) pairs, one per evaluation. */
    std::vector<std::pair<int, double>> history;
    double finalPsnr = 0.0;
    int iterationsRun = 0;
    /** Total rays traced during training (forward passes). */
    std::uint64_t totalRays = 0;
    /** Total valid samples evaluated (Stage II/III workload). */
    std::uint64_t totalSamples = 0;
    /** Total candidate samples before occupancy filtering (Stage I). */
    std::uint64_t totalCandidates = 0;
    /** First evaluated iteration whose PSNR reached 25 dB (-1 if never). */
    int itersTo25Psnr = -1;

    double
    avgSamplesPerRay() const
    {
        return totalRays ? static_cast<double>(totalSamples) /
                               static_cast<double>(totalRays)
                         : 0.0;
    }
};

/** Drives training of a RadianceField against a Dataset. */
class Trainer
{
  public:
    Trainer(RadianceField &field, const Dataset &data, const TrainerConfig &cfg);

    /** Run the configured number of iterations. */
    TrainResult run();

    /** One optimization step (one ray batch). */
    void trainIteration();

    /** Mean PSNR over up to @p max_views test views. */
    double evalPsnr(int max_views = 1);

    /** Render an arbitrary camera with the current model. */
    Image renderView(const Camera &camera);

    /**
     * Point periodic checkpointing (TrainerConfig::checkpointEvery) at
     * the model to serialize; the RadianceField interface is checkpoint-
     * agnostic, so the caller names the weights explicitly (e.g.
     * &pipeline.model()). Pass nullptr to detach. @p model must outlive
     * the trainer.
     */
    void setCheckpointModel(const NerfModel *model) { ckpt_model_ = model; }

    int iteration() const { return iter_; }
    std::uint64_t totalRays() const { return total_rays_; }
    std::uint64_t totalSamples() const { return total_samples_; }
    std::uint64_t totalCandidates() const { return total_candidates_; }
    std::uint64_t checkpointsWritten() const { return ckpts_written_; }
    std::uint64_t checkpointsFailed() const { return ckpts_failed_; }

  private:
    RadianceField &field_;
    const Dataset &data_;
    TrainerConfig cfg_;
    Pcg32 rng_;
    const NerfModel *ckpt_model_ = nullptr;
    int iter_ = 0;
    std::uint64_t total_rays_ = 0;
    std::uint64_t total_samples_ = 0;
    std::uint64_t total_candidates_ = 0;
    std::uint64_t ckpts_written_ = 0;
    std::uint64_t ckpts_failed_ = 0;

    // Minibatch scratch reused across iterations (traceRays batches).
    std::vector<Ray> batch_rays_;
    std::vector<Vec3f> batch_gts_;
    std::vector<RayEval> batch_evals_;
    std::vector<Vec3f> batch_dcolors_;
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_TRAINER_H_
