/**
 * @file
 * Tests of the fault-injection layer (src/common/fault): FaultPlan spec
 * parsing (valid and malformed), the trigger semantics (once / everyN /
 * always / off / probability), seed-deterministic replay, per-point
 * check/fire counters, thread safety of concurrent shouldFail() calls,
 * and the fault.* metrics export.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "obs/metrics.h"

using namespace fusion3d;

namespace
{

/** Every test leaves the process-wide injector disarmed. */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }
};

/** Fire pattern of the first @p checks checks of @p point, as a 0/1
 *  string — convenient to compare replays. */
std::string
firePattern(const char *point, int checks)
{
    std::string out;
    out.reserve(static_cast<std::size_t>(checks));
    for (int i = 0; i < checks; ++i)
        out.push_back(FaultInjector::instance().shouldFail(point) ? '1' : '0');
    return out;
}

TEST_F(FaultTest, EmptySpecIsValidEmptyPlan)
{
    FaultPlan plan;
    std::string error;
    ASSERT_TRUE(FaultPlan::parse("", plan, error)) << error;
    EXPECT_TRUE(plan.rules.empty());
    EXPECT_EQ(plan.seed, 1u);

    // Stray separators are tolerated too.
    ASSERT_TRUE(FaultPlan::parse(";;  ;", plan, error)) << error;
    EXPECT_TRUE(plan.rules.empty());
}

TEST_F(FaultTest, ParsesEveryTriggerKind)
{
    FaultPlan plan;
    std::string error;
    ASSERT_TRUE(FaultPlan::parse(
                    "a=p0.25; b=every3 ;c=once;d=always;e=off;seed=42", plan,
                    error))
        << error;
    EXPECT_EQ(plan.seed, 42u);
    ASSERT_EQ(plan.rules.size(), 5u);
    EXPECT_EQ(plan.rules.at("a").trigger, FaultTrigger::probability);
    EXPECT_DOUBLE_EQ(plan.rules.at("a").probability, 0.25);
    EXPECT_EQ(plan.rules.at("b").trigger, FaultTrigger::everyNth);
    EXPECT_EQ(plan.rules.at("b").n, 3u);
    EXPECT_EQ(plan.rules.at("c").trigger, FaultTrigger::once);
    EXPECT_EQ(plan.rules.at("d").trigger, FaultTrigger::always);
    EXPECT_EQ(plan.rules.at("e").trigger, FaultTrigger::off);
}

TEST_F(FaultTest, LaterEntriesWin)
{
    FaultPlan plan;
    std::string error;
    ASSERT_TRUE(FaultPlan::parse("x=once;x=every5", plan, error)) << error;
    ASSERT_EQ(plan.rules.size(), 1u);
    EXPECT_EQ(plan.rules.at("x").trigger, FaultTrigger::everyNth);
    EXPECT_EQ(plan.rules.at("x").n, 5u);
}

TEST_F(FaultTest, MalformedSpecsAreRejectedWithDiagnosis)
{
    const char *bad[] = {
        "noequals",      // entry without '='
        "=p0.5",         // empty point name
        "x=",            // empty trigger
        "x=p",           // probability without a number
        "x=p1.5",        // probability out of [0, 1]
        "x=p-0.1",       // negative probability
        "x=pexpr",       // junk after 'p'
        "x=every",       // period without a number
        "x=every0",      // period < 1
        "x=every2x",     // junk after the number
        "x=sometimes",   // unknown trigger word
        "seed=",         // empty seed
        "seed=banana",   // non-numeric seed
        "seed=-3",       // negative seed
    };
    for (const char *spec : bad) {
        FaultPlan plan;
        std::string error;
        EXPECT_FALSE(FaultPlan::parse(spec, plan, error))
            << "spec accepted: " << spec;
        EXPECT_FALSE(error.empty()) << "no diagnosis for: " << spec;
    }

    // A malformed spec arms nothing.
    std::string error;
    EXPECT_FALSE(FaultInjector::instance().configureFromSpec("x=p2", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(FaultInjector::instance().active());
}

TEST_F(FaultTest, DisarmedInjectorNeverFires)
{
    EXPECT_FALSE(FaultInjector::instance().active());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(FaultInjector::instance().shouldFail("some.point"));
    EXPECT_EQ(FaultInjector::instance().totalFires(), 0u);
}

TEST_F(FaultTest, UnarmedPointNeverFiresWhileOthersAreArmed)
{
    ASSERT_TRUE(FaultInjector::instance().configureFromSpec("armed=always"));
    EXPECT_TRUE(FaultInjector::instance().shouldFail("armed"));
    EXPECT_FALSE(FaultInjector::instance().shouldFail("not.armed"));
    EXPECT_EQ(FaultInjector::instance().checks("not.armed"), 0u);
}

TEST_F(FaultTest, TriggerSemantics)
{
    ASSERT_TRUE(FaultInjector::instance().configureFromSpec(
        "one=once;third=every3;all=always;none=off"));

    EXPECT_EQ(firePattern("one", 6), "100000");
    // everyN fires on checks N, 2N, 3N, ...
    EXPECT_EQ(firePattern("third", 9), "001001001");
    EXPECT_EQ(firePattern("all", 4), "1111");
    EXPECT_EQ(firePattern("none", 4), "0000");

    EXPECT_EQ(FaultInjector::instance().checks("third"), 9u);
    EXPECT_EQ(FaultInjector::instance().fires("third"), 3u);
    EXPECT_EQ(FaultInjector::instance().checks("none"), 4u);
    EXPECT_EQ(FaultInjector::instance().fires("none"), 0u);
    EXPECT_EQ(FaultInjector::instance().totalFires(), 1u + 3u + 4u);

    const std::vector<std::string> points =
        FaultInjector::instance().activePoints();
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0], "all"); // sorted
}

TEST_F(FaultTest, ProbabilityReplayIsDeterministic)
{
    const std::string spec = "p.a=p0.3;p.b=p0.3;seed=7";
    ASSERT_TRUE(FaultInjector::instance().configureFromSpec(spec));
    const std::string a1 = firePattern("p.a", 200);
    const std::string b1 = firePattern("p.b", 200);

    // Same plan, same check sequence -> identical decisions.
    ASSERT_TRUE(FaultInjector::instance().configureFromSpec(spec));
    EXPECT_EQ(firePattern("p.a", 200), a1);
    EXPECT_EQ(firePattern("p.b", 200), b1);

    // The two points draw from distinct streams.
    EXPECT_NE(a1, b1);

    // A different seed gives a different schedule.
    ASSERT_TRUE(
        FaultInjector::instance().configureFromSpec("p.a=p0.3;p.b=p0.3;seed=8"));
    EXPECT_NE(firePattern("p.a", 200), a1);

    // The empirical rate is in the right ballpark (200 draws at 0.3:
    // +-0.2 is > 6 sigma, so this cannot flake).
    const double rate =
        static_cast<double>(FaultInjector::instance().fires("p.a")) /
        static_cast<double>(FaultInjector::instance().checks("p.a"));
    EXPECT_NEAR(rate, 0.3, 0.2);
}

TEST_F(FaultTest, ProbabilityEdgeValues)
{
    ASSERT_TRUE(FaultInjector::instance().configureFromSpec("z=p0;o=p1"));
    EXPECT_EQ(firePattern("z", 50), std::string(50, '0'));
    EXPECT_EQ(firePattern("o", 50), std::string(50, '1'));
}

TEST_F(FaultTest, ResetDisarmsAndClearsCounters)
{
    ASSERT_TRUE(FaultInjector::instance().configureFromSpec("r=always"));
    EXPECT_TRUE(FaultInjector::instance().shouldFail("r"));
    FaultInjector::instance().reset();
    EXPECT_FALSE(FaultInjector::instance().active());
    EXPECT_FALSE(FaultInjector::instance().shouldFail("r"));
    EXPECT_EQ(FaultInjector::instance().checks("r"), 0u);
    EXPECT_EQ(FaultInjector::instance().totalFires(), 0u);
    EXPECT_TRUE(FaultInjector::instance().activePoints().empty());
}

TEST_F(FaultTest, ReconfigureZeroesCounters)
{
    ASSERT_TRUE(FaultInjector::instance().configureFromSpec("c=always"));
    firePattern("c", 10);
    ASSERT_TRUE(FaultInjector::instance().configureFromSpec("c=always"));
    EXPECT_EQ(FaultInjector::instance().checks("c"), 0u);
    EXPECT_EQ(FaultInjector::instance().fires("c"), 0u);
}

TEST_F(FaultTest, ConcurrentChecksAreSafeAndCounted)
{
    // Thread-safety: N threads hammer two points; every check must be
    // counted exactly once and the every4 point must fire on exactly a
    // quarter of its checks regardless of interleaving. Run under TSan
    // in CI.
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    ASSERT_TRUE(
        FaultInjector::instance().configureFromSpec("t.q=every4;t.p=p0.5"));

    std::atomic<std::uint64_t> observed_q{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&observed_q]() {
            for (int i = 0; i < kPerThread; ++i) {
                if (FaultInjector::instance().shouldFail("t.q"))
                    observed_q.fetch_add(1);
                FaultInjector::instance().shouldFail("t.p");
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    constexpr std::uint64_t kTotal =
        static_cast<std::uint64_t>(kThreads) * kPerThread;
    EXPECT_EQ(FaultInjector::instance().checks("t.q"), kTotal);
    EXPECT_EQ(FaultInjector::instance().checks("t.p"), kTotal);
    EXPECT_EQ(FaultInjector::instance().fires("t.q"), kTotal / 4);
    EXPECT_EQ(observed_q.load(), kTotal / 4);
    // 80k fair-coin draws: 0.5 +- 0.05 is > 25 sigma.
    const double rate =
        static_cast<double>(FaultInjector::instance().fires("t.p")) /
        static_cast<double>(kTotal);
    EXPECT_NEAR(rate, 0.5, 0.05);
}

TEST_F(FaultTest, MetricsExportCarriesFaultCounters)
{
    ASSERT_TRUE(FaultInjector::instance().configureFromSpec("m.x=always"));
    firePattern("m.x", 3);

    std::ostringstream os;
    obs::MetricsRegistry::global().exportJsonLine(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("fault.active_points"), std::string::npos) << json;
    EXPECT_NE(json.find("fault.m.x.checks"), std::string::npos) << json;
    EXPECT_NE(json.find("fault.m.x.fires"), std::string::npos) << json;
}

} // namespace
