#include "serve/model_registry.h"

#include <utility>

#include "common/logging.h"
#include "common/rng.h"

namespace fusion3d::serve
{

ModelRegistry::ModelRegistry(int occupancy_resolution, float occupancy_threshold)
    : grid_resolution_(occupancy_resolution), grid_threshold_(occupancy_threshold)
{
    if (occupancy_resolution < 1)
        fatal("ModelRegistry: occupancy resolution must be positive, got %d",
              occupancy_resolution);
}

const ModelEntry *
ModelRegistry::add(const std::string &name, std::unique_ptr<nerf::NerfModel> model)
{
    if (!model)
        fatal("ModelRegistry::add('%s'): null model", name.c_str());

    auto entry = std::make_unique<ModelEntry>(name, std::move(model),
                                              grid_resolution_, grid_threshold_);

    // Rebuild the inference gate from the deployed weights; decay 0
    // makes it exactly the current field's occupancy, like the benches'
    // scene bootstrap.
    nerf::PointWorkspace ws = entry->model->makeWorkspace();
    Pcg32 rng(0x5eedf00dULL, 41);
    const nerf::NerfModel *m = entry->model.get();
    entry->grid.update(
        [m, &ws](const Vec3f &p) { return m->queryDensity(p, ws); }, rng,
        /*decay=*/0.0f);

    const ModelEntry *raw = entry.get();
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<ModelEntry> &slot = entries_[name];
    if (slot)
        retired_.push_back(std::move(slot));
    slot = std::move(entry);
    return raw;
}

nerf::LoadStatus
ModelRegistry::addFromFile(const std::string &name, const std::string &path)
{
    nerf::LoadResult r = nerf::loadModelVerbose(path);
    if (!r) {
        warn("ModelRegistry: cannot deploy '%s' from '%s': %s (%s)", name.c_str(),
             path.c_str(), nerf::loadStatusName(r.status), r.message.c_str());
        return r.status;
    }
    add(name, std::move(r.model));
    inform("ModelRegistry: deployed '%s' from '%s' (%zu params)", name.c_str(),
           path.c_str(), find(name)->model->paramCount());
    return nerf::LoadStatus::ok;
}

const ModelEntry *
ModelRegistry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second.get();
}

std::size_t
ModelRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::vector<std::string>
ModelRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.push_back(name);
    return out;
}

} // namespace fusion3d::serve
