/**
 * @file
 * Parallel-training throughput bench: iterations/s and rays/s of the
 * sharded Trainer (DESIGN.md §8) at 1, 2, 4, and hardware-concurrency
 * threads on a synthetic scene. Every configuration trains a fresh
 * same-seed pipeline, so the work per iteration is identical; "1
 * thread" is the serial legacy path (no pool), and a t-thread
 * configuration runs a ThreadPool of t-1 workers plus the caller.
 * Prints the usual table plus one machine-readable JSON summary line
 * (prefixed "JSON:", captured as the BENCH_train.json CI artifact) and
 * exits non-zero if the best multi-threaded configuration is slower
 * than single-threaded — the CI smoke gate for the parallel path.
 *
 * Usage: bench_train_throughput [--quick] [iterations_per_config]
 *
 *  --quick  reduce the per-configuration iteration budget for CI smoke
 *           runs (the speedup, not the absolute rate, is the gate).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"

using namespace fusion3d;

namespace
{

constexpr int kRaysPerBatch = 1024;

struct TrainPoint
{
    int threads;
    double itersPerSec;
    double raysPerSec;
    double speedup; // vs the serial (1-thread) configuration
};

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

nerf::Dataset
benchDataset()
{
    const auto scene = scenes::makeSyntheticScene("mic");
    scenes::DatasetConfig dc = scenes::syntheticRig(24);
    dc.trainViews = 6;
    dc.testViews = 1;
    dc.reference.steps = 48;
    return scenes::makeDataset(*scene, dc);
}

/** Train a fresh same-seed pipeline at @p threads and time it. */
TrainPoint
measure(const nerf::Dataset &data, int threads, int iters)
{
    nerf::PipelineConfig pc = bench::defaultPipeline();
    pc.sampler.maxSamplesPerRay = 32;
    nerf::NerfPipeline pipe(pc);

    // threads == 1 is the serial legacy path; otherwise the caller
    // participates in parallelFor, so t threads = pool of t-1 workers.
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1)
        pool = std::make_unique<ThreadPool>(threads - 1);

    nerf::TrainerConfig tc;
    tc.iterations = iters;
    tc.raysPerBatch = kRaysPerBatch;
    tc.occupancyWarmup = 2;
    tc.occupancyUpdateEvery = 4;
    tc.pool = pool.get();
    nerf::Trainer trainer(pipe, data, tc);

    // Warmup: grow every arena so the timed loop is allocation-free.
    trainer.trainIteration();
    trainer.trainIteration();

    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        trainer.trainIteration();
    const double s = secondsSince(t0);

    TrainPoint p{};
    p.threads = threads;
    p.itersPerSec = static_cast<double>(iters) / s;
    p.raysPerSec = static_cast<double>(iters) * kRaysPerBatch / s;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    int iters = 30;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::atoi(argv[i]) > 0)
            iters = std::atoi(argv[i]);
        else
            fatal("usage: %s [--quick] [iterations_per_config]", argv[0]);
    }
    if (quick)
        iters = std::min(iters, 8);

    const int hw =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    std::vector<int> configs{1, 2, 4};
    if (hw > 4)
        configs.push_back(hw);

    const nerf::Dataset data = benchDataset();

    bench::banner("Parallel training throughput: sharded batches + "
                  "deterministic reduction");
    std::printf("%-10s %14s %16s %10s\n", "threads", "iters/s", "rays/s",
                "speedup");

    std::vector<TrainPoint> points;
    double serial_ips = 0.0, best_multi_ips = 0.0, speedup_4t = 0.0;
    for (const int threads : configs) {
        points.push_back(measure(data, threads, iters));
        TrainPoint &p = points.back();
        if (p.threads == 1)
            serial_ips = p.itersPerSec;
        else
            best_multi_ips = std::max(best_multi_ips, p.itersPerSec);
        p.speedup = serial_ips > 0.0 ? p.itersPerSec / serial_ips : 0.0;
        if (p.threads == 4)
            speedup_4t = p.speedup;
        std::printf("%-10d %14.2f %16.0f %9.2fx\n", p.threads, p.itersPerSec,
                    p.raysPerSec, p.speedup);
    }
    bench::rule();

    std::string json = "{\"bench\":\"train_throughput\",\"dispatch\":\"" +
                       std::string(simd::dispatchName()) +
                       "\",\"quick\":" + std::string(quick ? "true" : "false") +
                       ",\"iterations\":" + std::to_string(iters) +
                       ",\"rays_per_batch\":" + std::to_string(kRaysPerBatch) +
                       ",\"points\":[";
    char buf[192];
    for (std::size_t i = 0; i < points.size(); ++i) {
        const TrainPoint &p = points[i];
        std::snprintf(buf, sizeof(buf),
                      "%s{\"threads\":%d,\"iters_per_s\":%.3f,"
                      "\"rays_per_s\":%.0f,\"speedup\":%.3f}",
                      i ? "," : "", p.threads, p.itersPerSec, p.raysPerSec,
                      p.speedup);
        json += buf;
    }
    std::snprintf(buf, sizeof(buf), "],\"speedup_4t\":%.3f}", speedup_4t);
    json += buf;
    std::printf("JSON: %s\n", json.c_str());

    // The gate only means something when parallelism is physically
    // possible; a single-core machine can at best tie (and pays the
    // scheduling overhead), so it reports without failing.
    if (hw < 2) {
        std::printf("note: single hardware thread; speedup gate skipped\n");
        return 0;
    }
    if (best_multi_ips < serial_ips) {
        std::fprintf(stderr,
                     "FAIL: every multi-threaded configuration is slower than "
                     "single-threaded (%.2f < %.2f iters/s)\n",
                     best_multi_ips, serial_ips);
        return 1;
    }
    return 0;
}
