/**
 * @file
 * NeRF algorithm comparison — context for Table III's "NeRF Algorithm"
 * column. Trains the three families the paper's baselines use on the
 * same scene and budget:
 *   hash grid (Instant-NGP, this work / Instant-3D / NeuRex),
 *   CP-factorized grid (TensoRF, RT-NeRF), and
 *   frequency-encoded MLP (vanilla NeRF, MetaVRain),
 * and reports PSNR vs iteration plus the per-point MAC cost — showing
 * why the hash-grid substrate is the one that makes instant on-device
 * training feasible.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "nerf/freq_nerf.h"
#include "nerf/tensorf.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"

using namespace fusion3d;

namespace
{

struct Row
{
    std::string name;
    std::size_t params = 0;
    std::uint64_t macs_per_point = 0;
    std::vector<std::pair<int, double>> history;
};

Row
train(const std::string &name, nerf::RadianceField &field, std::size_t macs,
      const nerf::Dataset &data, int iterations)
{
    nerf::TrainerConfig tc;
    tc.iterations = iterations;
    tc.raysPerBatch = 128;
    tc.evalEvery = std::max(iterations / 5, 1);
    tc.occupancyWarmup = 96;
    tc.occupancyUpdateEvery = 48;
    nerf::Trainer trainer(field, data, tc);
    Row row;
    row.name = name;
    row.params = field.paramCount();
    row.macs_per_point = macs;
    row.history = trainer.run().history;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const int iterations = argc > 1 ? std::atoi(argv[1]) : 400;
    bench::banner("NeRF algorithm comparison (Table III context)");

    const auto scene = scenes::makeSyntheticScene("lego");
    scenes::DatasetConfig dc = scenes::syntheticRig(32);
    dc.reference.steps = 128;
    const nerf::Dataset data = scenes::makeDataset(*scene, dc);

    std::vector<Row> rows;

    {
        nerf::PipelineConfig pc = bench::defaultPipeline();
        pc.sampler.maxSamplesPerRay = 32;
        nerf::NerfPipeline hash(pc);
        std::printf("training hash-grid NeRF ...\n");
        rows.push_back(train("Hash grid (ours)", hash, hash.model().macsPerPoint(),
                             data, iterations));
    }
    {
        nerf::TensorfPipelineConfig tc;
        tc.model.densityRank = 16;
        tc.model.appearanceRank = 24;
        tc.sampler.maxSamplesPerRay = 32;
        nerf::TensorfPipeline cp(tc);
        std::printf("training TensoRF (CP) ...\n");
        // CP interpolation cost ~ 3 line lerps x (rank_d + rank_a).
        const std::uint64_t macs =
            3ull * 2ull * (tc.model.densityRank + tc.model.appearanceRank) +
            cp.model().colorNet().forwardMacs();
        rows.push_back(train("Dense grid (TensoRF)", cp, macs, data, iterations));
    }
    {
        nerf::FreqPipelineConfig fc;
        fc.lrFactors = 2e-3f; // pure MLP: both groups at net rates
        fc.sampler.maxSamplesPerRay = 32;
        nerf::FreqPipeline mlp(fc);
        std::printf("training frequency-encoded MLP NeRF ...\n");
        rows.push_back(train("MLP (vanilla/MetaVRain)", mlp,
                             mlp.model().macsPerPoint(), data, iterations));
    }

    std::printf("\n%-26s %10s %12s |", "algorithm", "params", "MACs/point");
    for (const auto &[iter, _] : rows[0].history)
        std::printf(" %7d", iter);
    std::printf("  (PSNR dB at iteration)\n");
    bench::rule(100);
    for (const Row &row : rows) {
        std::printf("%-26s %10zu %12llu |", row.name.c_str(), row.params,
                    static_cast<unsigned long long>(row.macs_per_point));
        for (const auto &[_, p] : row.history)
            std::printf(" %7.1f", p);
        std::printf("\n");
    }
    bench::rule(100);
    std::printf("The grid-based fields (hash, CP) match or beat the pure-MLP field\n"
                "while the MLP substrate (MetaVRain's) costs ~%.0fx more MACs per\n"
                "point -- the property Instant-3D/NeuRex/this work build on, and the\n"
                "reason MetaVRain leans on image warping for rate (cf. Table III and\n"
                "bench_ablation_warp).\n",
                static_cast<double>(rows[2].macs_per_point) /
                    static_cast<double>(rows[0].macs_per_point));
    return 0;
}
