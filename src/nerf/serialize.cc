#include "nerf/serialize.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <utility>

#include <unistd.h>

#include "common/fault.h"
#include "common/logging.h"

namespace fusion3d::nerf
{

namespace
{

constexpr char kMagic[4] = {'F', '3', 'D', 'M'};
// v2: the header carries a CRC32 of the parameter payload.
constexpr std::uint32_t kVersion = 2;

struct Header
{
    char magic[4];
    std::uint32_t version;
    std::int32_t levels;
    std::int32_t featuresPerLevel;
    std::int32_t log2TableSize;
    std::int32_t baseResolution;
    std::int32_t maxResolution;
    std::int32_t geoFeatures;
    std::int32_t densityHidden;
    std::int32_t colorHidden;
    std::int32_t shDegree;
    std::uint32_t paramCrc;
    std::uint64_t encodingParams;
    std::uint64_t densityParams;
    std::uint64_t colorParams;
};

/** CRC-32 (IEEE 802.3, reflected 0xEDB88320), incremental. */
std::uint32_t
crc32Update(std::uint32_t crc, const void *data, std::size_t size)
{
    static const auto table = []() {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    const auto *p = static_cast<const unsigned char *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
    return ~crc;
}

std::uint32_t
paramCrc(const NerfModel &model)
{
    std::uint32_t crc = 0;
    for (const auto block : {model.encoding().params(),
                             model.densityNet().params(),
                             model.colorNet().params()})
        crc = crc32Update(crc, block.data(), block.size_bytes());
    return crc;
}

Header
makeHeader(const NerfModel &model)
{
    const NerfModelConfig &cfg = model.config();
    Header h{};
    std::memcpy(h.magic, kMagic, 4);
    h.version = kVersion;
    h.levels = cfg.grid.levels;
    h.featuresPerLevel = cfg.grid.featuresPerLevel;
    h.log2TableSize = cfg.grid.log2TableSize;
    h.baseResolution = cfg.grid.baseResolution;
    h.maxResolution = cfg.grid.maxResolution;
    h.geoFeatures = cfg.geoFeatures;
    h.densityHidden = cfg.densityHidden;
    h.colorHidden = cfg.colorHidden;
    h.shDegree = cfg.shDegree;
    h.paramCrc = paramCrc(model);
    h.encodingParams = model.encoding().paramCount();
    h.densityParams = model.densityNet().paramCount();
    h.colorParams = model.colorNet().paramCount();
    return h;
}

bool
writeBlock(std::FILE *f, std::span<const float> data)
{
    return std::fwrite(data.data(), sizeof(float), data.size(), f) == data.size();
}

bool
readBlock(std::FILE *f, std::span<float> data)
{
    return std::fread(data.data(), sizeof(float), data.size(), f) == data.size();
}

/** Header + all three parameter blocks to an open stream. */
bool
writeModelTo(std::FILE *f, const NerfModel &model)
{
    const Header h = makeHeader(model);
    bool ok = std::fwrite(&h, sizeof(h), 1, f) == 1;
    ok = ok && !F3D_FAULT_POINT("nerf.save.write");
    ok = ok && writeBlock(f, model.encoding().params());
    ok = ok && writeBlock(f, model.densityNet().params());
    ok = ok && writeBlock(f, model.colorNet().params());
    return ok;
}

} // namespace

bool
saveModel(const NerfModel &model, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const bool ok = writeModelTo(f, model);
    std::fclose(f);
    return ok;
}

bool
saveModelAtomic(const NerfModel &model, const std::string &path)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f =
        F3D_FAULT_POINT("trainer.ckpt.open") ? nullptr : std::fopen(tmp.c_str(), "wb");
    if (!f) {
        warn("saveModelAtomic: cannot open '%s'", tmp.c_str());
        return false;
    }

    if (F3D_FAULT_POINT("trainer.ckpt.write")) {
        // Simulated crash mid-write: the header and half of the first
        // parameter block land in the temp file, nothing is renamed,
        // and the destination keeps whatever it held before.
        const Header h = makeHeader(model);
        const auto enc = model.encoding().params();
        (void)std::fwrite(&h, sizeof(h), 1, f);
        (void)std::fwrite(enc.data(), sizeof(float), enc.size() / 2, f);
        std::fclose(f);
        warn("saveModelAtomic: injected crash while writing '%s'", tmp.c_str());
        return false;
    }

    bool ok = writeModelTo(f, model);
    ok = ok && std::fflush(f) == 0;
    // fsync before the rename: otherwise a real crash could leave the
    // new name pointing at not-yet-durable data.
    ok = ok && fsync(fileno(f)) == 0;
    std::fclose(f);
    if (!ok) {
        std::remove(tmp.c_str());
        warn("saveModelAtomic: write to '%s' failed", tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        warn("saveModelAtomic: cannot rename '%s' to '%s'", tmp.c_str(),
             path.c_str());
        return false;
    }
    return true;
}

const char *
loadStatusName(LoadStatus status)
{
    switch (status) {
      case LoadStatus::ok:
        return "ok";
      case LoadStatus::ioError:
        return "I/O error";
      case LoadStatus::badMagic:
        return "bad magic";
      case LoadStatus::badVersion:
        return "bad version";
      case LoadStatus::headerMismatch:
        return "header mismatch";
      case LoadStatus::truncated:
        return "truncated";
      case LoadStatus::badChecksum:
        return "checksum mismatch";
    }
    return "?";
}

namespace
{

LoadResult
loadFailure(LoadStatus status, std::string message)
{
    LoadResult r;
    r.status = status;
    r.message = std::move(message);
    return r;
}

/** Reject headers whose dimensions could not have come from saveModel()
 *  before they reach the NerfModel constructor (and its allocations). */
bool
headerDimensionsSane(const Header &h)
{
    return h.levels >= 1 && h.levels <= 64 && h.featuresPerLevel >= 1 &&
           h.featuresPerLevel <= 16 && h.log2TableSize >= 1 &&
           h.log2TableSize <= 28 && h.baseResolution >= 1 &&
           h.baseResolution <= h.maxResolution && h.maxResolution <= 65536 &&
           h.geoFeatures >= 1 && h.geoFeatures <= 256 && h.densityHidden >= 1 &&
           h.densityHidden <= 4096 && h.colorHidden >= 1 &&
           h.colorHidden <= 4096 && h.shDegree >= 1 && h.shDegree <= 4;
}

} // namespace

LoadResult
loadModelVerbose(const std::string &path)
{
    std::FILE *f =
        F3D_FAULT_POINT("nerf.load.open") ? nullptr : std::fopen(path.c_str(), "rb");
    if (!f)
        return loadFailure(LoadStatus::ioError,
                           strprintf("cannot open '%s'", path.c_str()));

    Header h{};
    if (std::fread(&h, sizeof(h), 1, f) != 1) {
        std::fclose(f);
        return loadFailure(
            LoadStatus::truncated,
            strprintf("'%s' is shorter than the %zu-byte header", path.c_str(),
                      sizeof(Header)));
    }
    if (std::memcmp(h.magic, kMagic, 4) != 0) {
        std::fclose(f);
        return loadFailure(LoadStatus::badMagic,
                           strprintf("'%s' is not an F3DM artifact", path.c_str()));
    }
    if (h.version != kVersion) {
        std::fclose(f);
        return loadFailure(LoadStatus::badVersion,
                           strprintf("'%s' has format version %u, expected %u",
                                     path.c_str(), h.version, kVersion));
    }
    if (!headerDimensionsSane(h)) {
        std::fclose(f);
        return loadFailure(
            LoadStatus::headerMismatch,
            strprintf("'%s' declares out-of-range model dimensions", path.c_str()));
    }

    NerfModelConfig cfg;
    cfg.grid.levels = h.levels;
    cfg.grid.featuresPerLevel = h.featuresPerLevel;
    cfg.grid.log2TableSize = h.log2TableSize;
    cfg.grid.baseResolution = h.baseResolution;
    cfg.grid.maxResolution = h.maxResolution;
    cfg.geoFeatures = h.geoFeatures;
    cfg.densityHidden = h.densityHidden;
    cfg.colorHidden = h.colorHidden;
    cfg.shDegree = h.shDegree;

    auto model = std::make_unique<NerfModel>(cfg);
    if (model->encoding().paramCount() != h.encodingParams ||
        model->densityNet().paramCount() != h.densityParams ||
        model->colorNet().paramCount() != h.colorParams) {
        std::fclose(f);
        return loadFailure(
            LoadStatus::headerMismatch,
            strprintf("parameter counts in '%s' do not match its declared "
                      "architecture",
                      path.c_str()));
    }

    bool ok = !F3D_FAULT_POINT("nerf.load.read");
    ok = ok && readBlock(f, model->encoding().params());
    ok = ok && readBlock(f, model->densityNet().params());
    ok = ok && readBlock(f, model->colorNet().params());
    std::fclose(f);
    if (!ok)
        return loadFailure(
            LoadStatus::truncated,
            strprintf("'%s' ends before its parameter blocks do", path.c_str()));

    // The payload arrived whole; now prove it arrived *intact*.
    if (paramCrc(*model) != h.paramCrc || F3D_FAULT_POINT("nerf.load.crc"))
        return loadFailure(
            LoadStatus::badChecksum,
            strprintf("parameter payload of '%s' fails its CRC32", path.c_str()));

    LoadResult r;
    r.model = std::move(model);
    r.status = LoadStatus::ok;
    return r;
}

std::unique_ptr<NerfModel>
loadModel(const std::string &path)
{
    LoadResult r = loadModelVerbose(path);
    if (!r)
        warn("loadModel: %s: %s", loadStatusName(r.status), r.message.c_str());
    return std::move(r.model);
}

bool
loadInto(NerfModel &dst, const NerfModel &src)
{
    if (F3D_FAULT_POINT("nerf.loadinto")) {
        warn("loadInto: injected fault (nerf.loadinto)");
        return false;
    }
    if (dst.encoding().paramCount() != src.encoding().paramCount() ||
        dst.densityNet().paramCount() != src.densityNet().paramCount() ||
        dst.colorNet().paramCount() != src.colorNet().paramCount()) {
        warn("loadInto: parameter-block sizes differ (dst %zu params, src %zu)",
             dst.paramCount(), src.paramCount());
        return false;
    }
    const auto copy_block = [](std::span<const float> from, std::span<float> to) {
        std::copy(from.begin(), from.end(), to.begin());
    };
    copy_block(src.encoding().params(), dst.encoding().params());
    copy_block(src.densityNet().params(), dst.densityNet().params());
    copy_block(src.colorNet().params(), dst.colorNet().params());
    return true;
}

std::size_t
modelFootprintBytes(const NerfModel &model, int bytes_per_param)
{
    return sizeof(Header) +
           model.paramCount() * static_cast<std::size_t>(bytes_per_param);
}

} // namespace fusion3d::nerf
