/** @file Tests of the work-sharing ThreadPool: task completion,
 *  exception propagation, nested submission without deadlock, and the
 *  caller-participating parallelFor. Expected to pass under
 *  -DFUSION3D_SANITIZE=thread. */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace fusion3d
{
namespace
{

TEST(ThreadPool, CompletesAllSubmittedTasks)
{
    ThreadPool pool(3);
    std::atomic<int> done{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 200; ++i)
        futures.push_back(pool.submit([&done]() { done.fetch_add(1); }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, SubmitReturnsValues)
{
    ThreadPool pool(2);
    auto f = pool.submit([]() { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
    // The pool must survive a throwing task.
    EXPECT_EQ(pool.submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    for (const int grain : {1, 3, 16, 1000}) {
        std::vector<std::atomic<int>> hits(257);
        pool.parallelFor(
            0, 257,
            [&hits](int b, int e) {
                for (int i = b; i < e; ++i)
                    hits[static_cast<std::size_t>(i)].fetch_add(1);
            },
            grain);
        for (const auto &h : hits)
            ASSERT_EQ(h.load(), 1) << "grain " << grain;
    }
}

TEST(ThreadPool, ParallelForEmptyRangeIsANoop)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(5, 5, [&ran](int, int) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForRethrowsFirstException)
{
    ThreadPool pool(3);
    std::atomic<int> done{0};
    EXPECT_THROW(pool.parallelFor(0, 64,
                                  [&done](int b, int) {
                                      if (b == 7)
                                          throw std::runtime_error("chunk 7");
                                      done.fetch_add(1);
                                  }),
                 std::runtime_error);
    // All non-throwing chunks still ran (no chunk is abandoned).
    EXPECT_EQ(done.load(), 63);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    ThreadPool pool(2); // fewer threads than outer chunks
    std::atomic<int> done{0};
    pool.parallelFor(0, 8, [&pool, &done](int, int) {
        pool.parallelFor(0, 8, [&done](int, int) { done.fetch_add(1); });
    });
    EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, NestedSubmitWithWaitHelpingDoesNotDeadlock)
{
    // One worker: a task that blocked on its children would deadlock.
    ThreadPool pool(1);
    auto outer = pool.submit([&pool]() {
        int sum = 0;
        std::vector<std::future<int>> children;
        for (int i = 0; i < 8; ++i)
            children.push_back(pool.submit([i]() { return i; }));
        for (auto &c : children)
            sum += pool.waitHelping(c);
        return sum;
    });
    EXPECT_EQ(pool.waitHelping(outer), 28);
}

TEST(ThreadPool, ZeroThreadPoolRunsOnCaller)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 0);

    std::atomic<int> done{0};
    pool.parallelFor(0, 10, [&done](int b, int e) { done.fetch_add(e - b); });
    EXPECT_EQ(done.load(), 10);

    auto f = pool.submit([]() { return 5; });
    EXPECT_EQ(pool.waitHelping(f), 5);
}

TEST(ThreadPool, DestructorRunsPendingTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&done]() { done.fetch_add(1); });
    }
    EXPECT_EQ(done.load(), 50);
}

} // namespace
} // namespace fusion3d
