/**
 * @file
 * The Interface/Controller module (Fig. 4(a) item 5): top-level batch
 * sequencing of the three-stage macro-pipeline over the ping-pong
 * memory clusters. Two implementations of the same schedule:
 *
 *  - pipelineCycles(): the analytic recurrence
 *        t[s][b] = max(t[s][b-1], t[s-1][b]) + cost[s][b]
 *    (a stage starts a batch once it finished its previous batch and
 *    the upstream stage has filled the ping-pong buffer);
 *  - PipelinedMachine: a cycle-driven model built on sim::Clocked that
 *    executes the same schedule event by event. Tests assert the two
 *    agree cycle-exactly, validating the perf model's pipelining
 *    assumptions.
 */

#ifndef FUSION3D_CHIP_CONTROLLER_H_
#define FUSION3D_CHIP_CONTROLLER_H_

#include <span>
#include <vector>

#include "common/types.h"
#include "sim/clocked.h"

namespace fusion3d::chip
{

/** Per-batch cycle costs of the three pipeline stages. */
struct BatchCost
{
    Cycles stage1 = 0;
    Cycles stage2 = 0;
    Cycles stage3 = 0;

    Cycles stage(int s) const { return s == 0 ? stage1 : (s == 1 ? stage2 : stage3); }
};

/** Analytic completion time of the batch pipeline. */
Cycles pipelineCycles(std::span<const BatchCost> batches);

/**
 * Event-driven model of the same machine: three stages connected by
 * depth-1 ping-pong buffers, advanced by a sim::Simulator.
 */
class PipelinedMachine : public sim::Clocked
{
  public:
    explicit PipelinedMachine(std::vector<BatchCost> batches);

    void tick(Cycles now) override;
    bool done() const override;

    /** Cycle at which the last batch left stage 3 (valid once done). */
    Cycles finishCycle() const { return finish_; }

    /** Busy cycles of stage @p s, for utilization accounting. */
    Cycles busyCycles(int s) const { return busy_[static_cast<std::size_t>(s)]; }

  private:
    struct StageState
    {
        /** Next batch index this stage will accept. */
        std::size_t next = 0;
        /** Cycles remaining on the in-flight batch (0 = idle). */
        Cycles remaining = 0;
        /** True while the output ping-pong half holds a finished batch
         *  the downstream stage has not consumed yet. */
        bool outputFull = false;
    };

    std::vector<BatchCost> batches_;
    StageState stages_[3];
    Cycles busy_[3] = {0, 0, 0};
    std::size_t retired_ = 0;
    Cycles finish_ = 0;
};

} // namespace fusion3d::chip

#endif // FUSION3D_CHIP_CONTROLLER_H_
