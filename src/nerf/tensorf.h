/**
 * @file
 * TensoRF-style CP-factorized radiance field (Chen et al., ECCV 2022) —
 * the second NeRF algorithm the paper evaluates (Sec. VI-C "other NeRF
 * pipelines", the RT-NeRF baseline's substrate). Density and appearance
 * are rank-R sums of per-axis line-factor products:
 *
 *     sigma(p)  = softplus( sum_r  dx_r(x) * dy_r(y) * dz_r(z) )
 *     feat_c(p) =           sum_r  B[c][r] * ax_r(x) * ay_r(y) * az_r(z)
 *
 * with a small color MLP on (features, SH(view)). It reuses the Stage-I
 * sampler, occupancy gate and Stage-III renderer, demonstrating the
 * paper's claim that the proposed sampling/post-processing modules and
 * the MoE scheme transfer across NeRF pipelines.
 */

#ifndef FUSION3D_NERF_TENSORF_H_
#define FUSION3D_NERF_TENSORF_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/vec.h"
#include "nerf/adam.h"
#include "nerf/field.h"
#include "nerf/mlp.h"
#include "nerf/nerf_model.h"
#include "nerf/point_pipeline.h"

namespace fusion3d::nerf
{

/** Architecture of the CP-factorized model. */
struct TensorfModelConfig
{
    /** CP rank of the density tensor. */
    int densityRank = 16;
    /** CP rank of the appearance tensor. */
    int appearanceRank = 24;
    /** Samples per line factor (per-axis resolution). */
    int lineResolution = 128;
    /** Appearance feature channels fed to the color MLP. */
    int appearanceDim = 12;
    /** Hidden width of the color MLP. */
    int colorHidden = 32;
    /** Spherical-harmonics degree for view directions. */
    int shDegree = 2;
    /** Density activation: sigma = densityScale * softplus(raw - shift).
     *  The shift keeps freshly initialized space near-transparent so
     *  training does not have to fight an initial fog. */
    float densityShift = 4.0f;
    float densityScale = 25.0f;

    int shDims() const { return shCoefficientCount(shDegree); }
};

/**
 * Batched-evaluation scratch of TensorfModel; reuse across calls. The
 * line-factor gathers are staged level-major — every (rank, axis) line
 * is sampled across the whole batch before the per-sample rank
 * reduction — so each line's support is streamed once per batch. All
 * matrices are feature-major ([dim][N]); buffers grow on demand and
 * never shrink.
 */
struct TensorfBatchWorkspace
{
    /** Density line gathers, [densityRank * 3][N]. */
    std::vector<float> denLines;
    /** Appearance line gathers, [appearanceRank * 3][N]. */
    std::vector<float> appLines;
    /** Per-point appearance rank products (appearanceRank values,
     *  reused point by point through the basis reduction). */
    std::vector<float> appProd;
    /** Per-point SH scratch (shDims values, reused point by point). */
    std::vector<float> sh;
    /** Color-net input, [appearanceDim + shDims][N]. */
    std::vector<float> colorIn;
    /** Raw (pre-shift-activation) densities, [N]. */
    std::vector<float> rawSigma;
    /** dL/d(color-net output), [3][N]. */
    std::vector<float> dColorOut;
    /** Recomputed activations used by the batched backward. */
    std::vector<float> fwdSigmas;
    std::vector<Vec3f> fwdRgbs;
    MlpBatchWorkspace colorWs;
};

/** The CP-factorized point model. */
class TensorfModel
{
  public:
    using Config = TensorfModelConfig;
    using BatchWorkspace = TensorfBatchWorkspace;
    static constexpr BackendKind kBackendKind = BackendKind::tensorf;

    explicit TensorfModel(const TensorfModelConfig &cfg, std::uint64_t seed = 31);

    const TensorfModelConfig &config() const { return cfg_; }

    /** Density + view-dependent color at @p pos / @p dir. */
    PointEval forwardPoint(const Vec3f &pos, const Vec3f &dir);

    /** Density only (occupancy updates). */
    float queryDensity(const Vec3f &pos);

    /** Accumulate gradients (recompute-in-backward, like NerfModel). */
    void backwardPoint(const Vec3f &pos, const Vec3f &dir, float dsigma,
                       const Vec3f &drgb);

    void zeroGrads();
    void optimizerStep(float lr_factors, float lr_net);

    /** Fake-quantize all parameters through INT8 (Table II machinery). */
    void quantizeWeights();

    std::size_t paramCount() const;

    /** Allocate a batch workspace for the batched entry points. */
    BatchWorkspace makeBatchWorkspace() const { return BatchWorkspace{}; }

    /**
     * Batched forward: level-major line-factor gathers, per-sample
     * rank reduction in the scalar accumulation order, one color-net
     * forwardBatch. Per sample the arithmetic matches forwardPoint()
     * bit-exactly; const and workspace-local, so shards may run
     * concurrently.
     */
    void forwardPointBatch(std::span<const Vec3f> pos, std::span<const Vec3f> dirs,
                           BatchWorkspace &ws, std::span<float> sigmas,
                           std::span<Vec3f> rgbs) const;

    /** Batched density-only forward; bit-exact with queryDensity(). */
    void queryDensityBatch(std::span<const Vec3f> pos, BatchWorkspace &ws,
                           std::span<float> sigmas) const;

    /**
     * Batched backward into the internal gradient accumulators.
     * Recomputes the forward internally; factor scatters run
     * sample-ascending in the scalar per-sample order.
     */
    void backwardPointBatch(std::span<const Vec3f> pos, std::span<const Vec3f> dirs,
                            std::span<const float> dsigmas,
                            std::span<const Vec3f> drgbs, BatchWorkspace &ws);

    /** Length of the flat gradient vector backwardPointBatchInto fills:
     *  factor/basis grads first, then color-net grads. */
    std::size_t gradCount() const { return paramCount(); }

    /**
     * Shard entry point of parallel training: like backwardPointBatch
     * but const, accumulating into a caller-provided flat buffer
     * (gradCount() floats, factor block then color-net block). Shards
     * own private buffers; accumulateGradients() merges them in fixed
     * shard order.
     */
    void backwardPointBatchInto(std::span<const Vec3f> pos,
                                std::span<const Vec3f> dirs,
                                std::span<const float> dsigmas,
                                std::span<const Vec3f> drgbs, BatchWorkspace &ws,
                                std::span<float> grads) const;

    /** Add one shard's flat gradient buffer into the internal grads. */
    void accumulateGradients(std::span<const float> grads);

    /** All factor/basis parameters (for quantization experiments). */
    std::span<float> factorParams() { return params_; }
    std::span<const float> factorParams() const { return params_; }
    /** Gradient vector matching factorParams(). */
    std::span<const float> factorGrads() const { return grads_; }
    Mlp &colorNet() { return *color_net_; }
    const Mlp &colorNet() const { return *color_net_; }

  private:
    /** Scatter @p g into the two supports of line factor @p r at u. */
    void lineBackward(std::size_t block_offset, int r, float u, float g);

    /**
     * Shared tail of the batched backward variants: walk the recomputed
     * caches in @p ws sample-ascending and scatter basis / line /
     * density gradients into @p factor_grads (params_ layout), exactly
     * in the scalar backwardPoint() per-sample order.
     */
    void scatterFactorGradients(std::span<const Vec3f> pos,
                                std::span<const float> dsigmas,
                                const BatchWorkspace &ws,
                                std::span<float> factor_grads) const;

    /** Offsets of the parameter blocks inside params_. */
    std::size_t densityOffset(int axis) const;
    std::size_t appearanceOffset(int axis) const;
    std::size_t basisOffset() const;

    TensorfModelConfig cfg_;
    /** Flat parameters: 3 density line blocks, 3 appearance line
     *  blocks, then the appearanceDim x appearanceRank basis. */
    std::vector<float> params_;
    std::vector<float> grads_;
    std::unique_ptr<Mlp> color_net_;
    Adam adam_factors_;
    Adam adam_net_;

    // Scratch reused across calls.
    std::vector<float> sh_;
    std::vector<float> color_in_;
    std::vector<float> dcolor_out_;
    std::vector<float> app_prod_;   // per-rank axis products
    MlpWorkspace color_ws_;
    float raw_sigma_ = 0.0f;
};

/** End-to-end TensoRF pipeline: the generic point pipeline over the
 *  CP-factorized model. */
using TensorfPipelineConfig = PointPipelineConfig<TensorfModelConfig>;
using TensorfPipeline = PointPipeline<TensorfModel>;

/** Serveable-field wrapper over the CP-factorized model. */
using TensorfServeField = PointServeField<TensorfModel>;

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_TENSORF_H_
