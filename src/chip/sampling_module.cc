#include "chip/sampling_module.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fusion3d::chip
{

SamplingRunStats
SamplingModule::run(std::span<const nerf::RayWorkload> rays) const
{
    const int cores = cfg_.samplingCores;
    if (cores < 1)
        fatal("SamplingModule needs at least one core");

    SamplingRunStats stats;
    std::vector<Cycles> busy_until(static_cast<std::size_t>(cores), 0);
    std::vector<Cycles> sorted(static_cast<std::size_t>(cores));

    std::uint64_t ray_index = 0;
    for (const nerf::RayWorkload &ray : rays) {
        ++ray_index;
        ++stats.raysProcessed;

        // Pre-processing pipeline: when this ray's pairs become
        // available. The normalized path streams raysPerCycle rays per
        // cycle; the generic path serializes its divisions.
        const Cycles ready =
            normalized_
                ? static_cast<Cycles>(std::ceil(static_cast<double>(ray_index) /
                                                cfg_.preprocRaysPerCycle))
                : ray_index * static_cast<Cycles>(cfg_.genericPreprocCyclesPerRay);
        stats.preprocCycles = std::max(stats.preprocCycles, ready);

        const int pairs = static_cast<int>(ray.pairs.size());
        if (pairs == 0)
            continue;
        if (pairs > cores)
            panic("ray has %d pairs but only %d sampling cores", pairs, cores);

        // Find the dispatch time allowed by the schedule.
        std::copy(busy_until.begin(), busy_until.end(), sorted.begin());
        std::sort(sorted.begin(), sorted.end());
        Cycles dispatch = ready;
        switch (schedule_) {
          case SamplingSchedule::RaySerial:
            // Baseline: wait for every core to drain.
            dispatch = std::max(ready, sorted.back());
            break;
          case SamplingSchedule::Dynamic:
            // Wait until `pairs` cores are free, then launch the whole
            // ray (Technique T1-2's threshold).
            dispatch = std::max(ready, sorted[static_cast<std::size_t>(pairs - 1)]);
            break;
          case SamplingSchedule::PairGreedy:
            // Each pair independently takes the earliest free core.
            dispatch = ready;
            break;
        }

        // Assign each pair to the earliest-free core. Marching an empty
        // lattice step costs one cycle; emitting a valid (occupied)
        // sample costs one more (position/record generation).
        for (const nerf::RayCubePair &pair : ray.pairs) {
            auto it = std::min_element(busy_until.begin(), busy_until.end());
            const Cycles span = static_cast<Cycles>(std::max(
                pair.candidates + pair.valid * cfg_.samplingEmitCycles, 1));
            const Cycles start = schedule_ == SamplingSchedule::PairGreedy
                                     ? std::max(dispatch, *it)
                                     : dispatch;
            *it = start + span;
            stats.busyCoreCycles += span;
            ++stats.pairsProcessed;
            stats.candidatesMarched += static_cast<std::uint64_t>(pair.candidates);
            stats.validPoints += static_cast<std::uint64_t>(pair.valid);
        }
    }

    Cycles end = stats.preprocCycles;
    for (Cycles c : busy_until)
        end = std::max(end, c);
    stats.totalCycles = end;
    return stats;
}

} // namespace fusion3d::chip
