/** @file Tests of the chiplet temporal-reuse model (Fig. 14) and the
 *  Sec. VI-D host-link streaming plan. */

#include <gtest/gtest.h>

#include "multichip/chiplet.h"
#include "multichip/host_link.h"

namespace fusion3d::multichip
{
namespace
{

TEST(Chiplet, ResidentModelIsSinglePass)
{
    ChipletConfig cfg;
    const auto r = chipletFrame(cfg.residentTableBytes * 0.9, 0.01, cfg);
    EXPECT_EQ(r.passes, 1);
    EXPECT_DOUBLE_EQ(r.seconds, 0.01);
    EXPECT_DOUBLE_EQ(r.reloadSeconds, 0.0);
    EXPECT_FALSE(r.offPackageBound);
}

TEST(Chiplet, PassesScaleWithModelSize)
{
    ChipletConfig cfg;
    cfg.bufferBytes = 1e9; // large buffer: in-package reloads only
    const auto r2 = chipletFrame(cfg.residentTableBytes * 2.0, 0.01, cfg);
    const auto r4 = chipletFrame(cfg.residentTableBytes * 4.0, 0.01, cfg);
    EXPECT_EQ(r2.passes, 2);
    EXPECT_EQ(r4.passes, 4);
    EXPECT_GT(r4.seconds, r2.seconds);
    // Compute-bound: the in-package link is far faster than compute.
    EXPECT_NEAR(r2.seconds, 0.02, 1e-9);
    EXPECT_FALSE(r4.offPackageBound);
}

TEST(Chiplet, OverflowingBufferHitsOffPackageWall)
{
    ChipletConfig cfg;
    cfg.bufferBytes = 4.0 * 1024.0 * 1024.0;
    // 64 MB model, 4 MB buffer: ~60 MB crawls over 0.6 GB/s, far
    // slower than the fast per-chunk compute.
    const auto r = chipletFrame(64.0 * 1024.0 * 1024.0, 0.0005, cfg);
    EXPECT_TRUE(r.offPackageBound);
    EXPECT_GT(r.seconds, 0.05); // >= 60 MB / 0.6 GB/s = 0.1 s
    EXPECT_LT(r.fps(), 30.0);   // real-time is lost
}

TEST(Chiplet, FpsMonotoneInModelSize)
{
    ChipletConfig cfg;
    cfg.bufferBytes = 128.0 * 1024.0 * 1024.0;
    double prev = 1e9;
    for (double mb = 1.0; mb <= 128.0; mb *= 2.0) {
        const auto r = chipletFrame(mb * 1024.0 * 1024.0, 0.007, cfg);
        EXPECT_LE(r.fps(), prev + 1e-9);
        prev = r.fps();
    }
}

TEST(HostLink, PaperWorkloadFitsUsb)
{
    // 0.65 GB dataset, 50 MB model, 2 s training (the Fig. 3 workload).
    const auto plan = planTrainingSession(0.65e9, 0.05e9, 2.0);
    EXPECT_TRUE(plan.linkKeepsUp);
    EXPECT_LT(plan.totalSeconds, 2.5);
    EXPECT_NEAR(plan.datasetInSeconds, 0.65e9 / (0.625e9 * 0.9), 1e-6);
}

TEST(HostLink, OversizedDatasetStallsTraining)
{
    // A 5 GB capture cannot stream in within 2 s of training.
    const auto plan = planTrainingSession(5e9, 0.05e9, 2.0);
    EXPECT_FALSE(plan.linkKeepsUp);
    EXPECT_GT(plan.totalSeconds, 5.0);
}

TEST(HostLink, FasterLinkShortensSession)
{
    HostLinkConfig usb2x;
    usb2x.linkBytesPerSec = 1.25e9;
    const auto slow = planTrainingSession(0.65e9, 0.05e9, 0.5);
    const auto fast = planTrainingSession(0.65e9, 0.05e9, 0.5, usb2x);
    EXPECT_LT(fast.totalSeconds, slow.totalSeconds);
}

TEST(HostLink, InvalidConfigIsFatal)
{
    HostLinkConfig bad;
    bad.linkBytesPerSec = 0.0;
    EXPECT_DEATH({ (void)planTrainingSession(1e9, 1e8, 2.0, bad); },
                 "invalid link");
}

} // namespace
} // namespace fusion3d::multichip
