#include "multichip/chiplet.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fusion3d::multichip
{

TemporalReuseResult
chipletFrame(double model_bytes, double compute_seconds, const ChipletConfig &cfg)
{
    if (model_bytes < 0.0 || compute_seconds < 0.0)
        fatal("chipletFrame: negative inputs");

    TemporalReuseResult r;
    r.computeSeconds = compute_seconds;

    if (model_bytes <= cfg.residentTableBytes) {
        r.passes = 1;
        r.seconds = compute_seconds;
        return r;
    }

    r.passes = static_cast<int>(
        std::ceil(model_bytes / std::max(cfg.residentTableBytes, 1.0)));

    // Every pass evaluates the frame's rays against one model chunk.
    const double compute_total = compute_seconds * r.passes;

    // Reload traffic: the whole model streams into the chips once per
    // frame. It comes from the in-package buffer when it fits there,
    // otherwise the overflow crawls in over the off-package link.
    const double from_buffer = std::min(model_bytes, cfg.bufferBytes);
    const double from_outside = model_bytes - from_buffer;
    r.reloadSeconds = from_buffer / cfg.inPackageBytesPerSec +
                      from_outside / cfg.offPackageBytesPerSec;
    r.offPackageBound = from_outside > 0.0 &&
                        from_outside / cfg.offPackageBytesPerSec >
                            compute_total;

    // Reloading chunk k+1 overlaps computing chunk k; the frame ends
    // when both streams drain.
    r.seconds = std::max(compute_total, r.reloadSeconds);
    return r;
}

} // namespace fusion3d::multichip
