/** @file Tests for the extension modules: DDA occupancy traversal,
 *  composited depth, camera projection, image warping, serialization. */

#include <cstdio>

#include <gtest/gtest.h>

#include "common/aabb.h"
#include "nerf/image_warp.h"
#include "nerf/occupancy_grid.h"
#include "nerf/renderer.h"
#include "nerf/serialize.h"

namespace fusion3d::nerf
{
namespace
{

// ---------------------------------------------------------------------------
// DDA traversal
// ---------------------------------------------------------------------------

TEST(OccupancyTraverse, EmptyGridYieldsNoIntervals)
{
    OccupancyGrid grid(8);
    grid.clearAll();
    std::vector<OccupancyGrid::Interval> out;
    const Ray ray({0.5f, 0.5f, -1.0f}, {0.0f, 0.0f, 1.0f});
    EXPECT_EQ(grid.traverse(ray, 1.0f, 2.0f, out), 0);
}

TEST(OccupancyTraverse, FullGridYieldsOneSpan)
{
    OccupancyGrid grid(8);
    grid.markAll();
    std::vector<OccupancyGrid::Interval> out;
    const Ray ray({0.5f, 0.5f, -1.0f}, {0.0f, 0.0f, 1.0f});
    ASSERT_EQ(grid.traverse(ray, 1.0f, 2.0f, out), 1);
    EXPECT_NEAR(out[0].t0, 1.0f, 1e-3f);
    EXPECT_NEAR(out[0].t1, 2.0f, 1e-3f);
}

TEST(OccupancyTraverse, HalfSpaceSplitsCorrectly)
{
    OccupancyGrid grid(16);
    grid.markAll();
    grid.maskRegion([](const Vec3f &p) { return p.z > 0.5f; });
    std::vector<OccupancyGrid::Interval> out;
    const Ray ray({0.5f, 0.5f, -1.0f}, {0.0f, 0.0f, 1.0f});
    ASSERT_EQ(grid.traverse(ray, 1.0f, 2.0f, out), 1);
    // Occupied space is z in (0.5, 1): t in (1.5, 2).
    EXPECT_NEAR(out[0].t0, 1.5f, 0.1f);
    EXPECT_NEAR(out[0].t1, 2.0f, 0.05f);
}

/** Property: DDA intervals agree with dense per-sample probing. */
TEST(OccupancyTraverse, AgreesWithPointProbes)
{
    OccupancyGrid grid(12);
    Pcg32 seed_rng(5);
    grid.update(
        [](const Vec3f &p) {
            return (length(p - Vec3f(0.4f, 0.5f, 0.6f)) < 0.25f ||
                    length(p - Vec3f(0.75f, 0.3f, 0.3f)) < 0.15f)
                       ? 10.0f
                       : 0.0f;
        },
        seed_rng);

    Pcg32 rng(6);
    std::vector<OccupancyGrid::Interval> intervals;
    int disagreements = 0;
    int probes = 0;
    for (int trial = 0; trial < 60; ++trial) {
        const Vec3f o{rng.nextRange(-0.5f, 1.5f), rng.nextRange(-0.5f, 1.5f), -1.0f};
        const Ray ray(o, normalize(Vec3f{rng.nextRange(-0.4f, 0.4f),
                                         rng.nextRange(-0.4f, 0.4f), 1.0f}));
        const auto span = Aabb::intersectUnitCube(ray);
        if (!span || span->t1 <= std::max(span->t0, 0.0f))
            continue;
        const float t0 = std::max(span->t0, 0.0f);
        grid.traverse(ray, t0, span->t1, intervals);

        // Dense probing: every probe's occupancy must match interval
        // membership, away from cell boundaries.
        for (float t = t0 + 1e-3f; t < span->t1; t += 0.013f) {
            const Vec3f p = clamp(ray.at(t), 0.0f, 1.0f - 1e-5f);
            const bool probe = grid.occupiedAt(p);
            bool inside = false;
            for (const auto &iv : intervals) {
                if (t >= iv.t0 - 2e-3f && t <= iv.t1 + 2e-3f) {
                    inside = true;
                    break;
                }
            }
            ++probes;
            if (probe && !inside)
                ++disagreements; // missed occupied space: hard error
            // (inside && !probe near boundaries is tolerated above.)
        }
    }
    EXPECT_GT(probes, 1000);
    EXPECT_EQ(disagreements, 0);
}

// ---------------------------------------------------------------------------
// Composited depth
// ---------------------------------------------------------------------------

TEST(CompositeDepth, OpaqueSampleSetsDepth)
{
    RenderParams params;
    const std::vector<float> sigmas{1e5f};
    const std::vector<float> dts{0.1f};
    const std::vector<float> ts{1.25f};
    EXPECT_NEAR(compositeDepth(sigmas, dts, ts, params, 3.0f), 1.25f, 1e-3f);
}

TEST(CompositeDepth, EmptyRayReturnsFar)
{
    RenderParams params;
    EXPECT_FLOAT_EQ(compositeDepth({}, {}, {}, params, 2.5f), 2.5f);
}

TEST(CompositeDepth, SemiTransparentBlends)
{
    RenderParams params;
    const std::vector<float> sigmas{7.0f}; // alpha ~ 0.5 at dt 0.1
    const std::vector<float> dts{0.1f};
    const std::vector<float> ts{1.0f};
    const float d = compositeDepth(sigmas, dts, ts, params, 2.0f);
    EXPECT_GT(d, 1.0f);
    EXPECT_LT(d, 2.0f);
}

// ---------------------------------------------------------------------------
// Camera projection
// ---------------------------------------------------------------------------

TEST(CameraProject, RoundTripsRayForPixel)
{
    const Camera cam = Camera::orbit({0.5f, 0.5f, 0.5f}, 1.4f, 33.0f, 21.0f, 45.0f,
                                     64, 48);
    Pcg32 rng(7);
    for (int i = 0; i < 200; ++i) {
        const int x = static_cast<int>(rng.nextBounded(64));
        const int y = static_cast<int>(rng.nextBounded(48));
        const Ray ray = cam.rayForPixel(x, y);
        const Vec3f world = ray.at(rng.nextRange(0.5f, 2.0f));
        float px, py, depth;
        ASSERT_TRUE(cam.project(world, px, py, depth));
        EXPECT_NEAR(px, static_cast<float>(x) + 0.5f, 0.02f);
        EXPECT_NEAR(py, static_cast<float>(y) + 0.5f, 0.02f);
        EXPECT_GT(depth, 0.0f);
    }
}

TEST(CameraProject, RejectsBehindCamera)
{
    const Camera cam({0.5f, 0.5f, -2.0f}, {0.5f, 0.5f, 0.5f}, {0, 1, 0}, 45.0f, 32,
                     32);
    float px, py, depth;
    EXPECT_FALSE(cam.project({0.5f, 0.5f, -3.0f}, px, py, depth));
}

// ---------------------------------------------------------------------------
// Image warping
// ---------------------------------------------------------------------------

DepthFrame
flatFrame(const Camera &cam, float depth, const Vec3f &color)
{
    DepthFrame f;
    f.camera = cam;
    f.color = Image(cam.width(), cam.height(), color);
    f.depth.assign(static_cast<std::size_t>(cam.width()) * cam.height(), depth);
    return f;
}

TEST(ImageWarp, IdentityWarpCoversEverything)
{
    const Camera cam = Camera::orbit({0.5f, 0.5f, 0.5f}, 1.4f, 10.0f, 15.0f, 45.0f,
                                     32, 32);
    const DepthFrame frame = flatFrame(cam, 1.4f, {0.3f, 0.6f, 0.9f});
    const WarpResult r = forwardWarp(frame, cam);
    EXPECT_GT(r.coverage, 0.95);
    EXPECT_EQ(r.image.at(16, 16), Vec3f(0.3f, 0.6f, 0.9f));
}

TEST(ImageWarp, CoverageDropsWithMotion)
{
    const Vec3f c{0.5f, 0.5f, 0.5f};
    const Camera cam0 = Camera::orbit(c, 1.4f, 0.0f, 15.0f, 45.0f, 32, 32);
    const DepthFrame frame = flatFrame(cam0, 1.4f, Vec3f(0.5f));
    double prev = 1.1;
    for (float delta : {1.0f, 10.0f, 40.0f, 90.0f}) {
        const Camera cam1 = Camera::orbit(c, 1.4f, delta, 15.0f, 45.0f, 32, 32);
        const double cov = forwardWarp(frame, cam1).coverage;
        EXPECT_LE(cov, prev + 0.05);
        prev = cov;
    }
    EXPECT_LT(prev, 0.6); // 90 degrees of orbit leaves large holes
}

TEST(ImageWarp, SpeedupFormula)
{
    EXPECT_NEAR(warpAssistSpeedup(1.0, 0.05), 20.0, 1e-9);
    EXPECT_NEAR(warpAssistSpeedup(0.5, 0.0), 2.0, 1e-9);
    EXPECT_GT(warpAssistSpeedup(0.97), warpAssistSpeedup(0.5));
}

TEST(ImageWarp, MismatchedDepthIsFatal)
{
    const Camera cam({0.5f, 0.5f, -2.0f}, {0.5f, 0.5f, 0.5f}, {0, 1, 0}, 45.0f, 8, 8);
    DepthFrame bad;
    bad.camera = cam;
    bad.color = Image(8, 8);
    bad.depth.assign(3, 1.0f); // wrong size
    EXPECT_DEATH({ (void)forwardWarp(bad, cam); }, "depth map");
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

NerfModelConfig
tinyModel()
{
    NerfModelConfig cfg;
    cfg.grid.levels = 3;
    cfg.grid.log2TableSize = 9;
    cfg.grid.baseResolution = 4;
    cfg.grid.maxResolution = 16;
    cfg.geoFeatures = 7;
    cfg.densityHidden = 8;
    cfg.colorHidden = 8;
    cfg.shDegree = 2;
    return cfg;
}

TEST(Serialize, RoundTripPreservesOutputs)
{
    NerfModel model(tinyModel(), 123);
    // Perturb weights so the round trip is non-trivial.
    Pcg32 rng(9);
    for (float &p : model.encoding().params())
        p = rng.nextRange(-1.0f, 1.0f);

    const std::string path = ::testing::TempDir() + "/f3d_model.bin";
    ASSERT_TRUE(saveModel(model, path));

    const auto loaded = loadModel(path);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->paramCount(), model.paramCount());

    PointWorkspace wa = model.makeWorkspace();
    PointWorkspace wb = loaded->makeWorkspace();
    for (int i = 0; i < 50; ++i) {
        const Vec3f p = rng.nextVec3();
        const Vec3f d = rng.nextUnitVector();
        const PointEval a = model.forwardPoint(p, d, wa);
        const PointEval b = loaded->forwardPoint(p, d, wb);
        EXPECT_FLOAT_EQ(a.sigma, b.sigma);
        EXPECT_EQ(a.rgb, b.rgb);
    }
}

TEST(Serialize, RejectsGarbageFiles)
{
    const std::string path = ::testing::TempDir() + "/f3d_garbage.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a model", f);
    std::fclose(f);
    EXPECT_EQ(loadModel(path), nullptr);
    EXPECT_EQ(loadModel("/nonexistent/path/model.bin"), nullptr);
}

TEST(Serialize, FootprintMatchesParamCount)
{
    NerfModel model(tinyModel());
    EXPECT_GT(modelFootprintBytes(model), model.paramCount() * 4);
    EXPECT_LT(modelFootprintBytes(model), model.paramCount() * 4 + 256);
    // fp16 deployment halves the payload.
    EXPECT_LT(modelFootprintBytes(model, 2), modelFootprintBytes(model, 4));
}

} // namespace
} // namespace fusion3d::nerf
