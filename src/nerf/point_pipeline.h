/**
 * @file
 * Generic end-to-end pipeline over a self-contained point model: Stage
 * I sampling through the occupancy gate, batched model evaluation,
 * Stage III compositing, and the training tape. TensoRF and the
 * frequency-encoded (vanilla/MetaVRain-style) NeRF instantiate this;
 * the hash-grid pipeline keeps its dedicated class (NerfPipeline)
 * because it additionally exposes the Stage-II vertex-trace hooks the
 * chip model consumes. Both share the same hoisted RayBatchEvaluator,
 * so every backend rides the identical CSR-batch/composite machinery.
 *
 * A ModelT must provide (the "batched point model" contract):
 *   using Config = ...;
 *   using BatchWorkspace = ...;                       // batched scratch
 *   static constexpr BackendKind kBackendKind = ...;
 *   ModelT(const Config &, std::uint64_t seed);
 *   // Scalar oracle (bit-exactness reference):
 *   PointEval forwardPoint(const Vec3f &pos, const Vec3f &dir);
 *   float queryDensity(const Vec3f &pos);
 *   void backwardPoint(const Vec3f &, const Vec3f &, float, const Vec3f &);
 *   // Batched kernels (const => shard-concurrent with private ws):
 *   BatchWorkspace makeBatchWorkspace() const;
 *   void forwardPointBatch(pos, dirs, ws, sigmas, rgbs) const;  // bit-exact/sample
 *   void queryDensityBatch(pos, ws, sigmas) const;              // bit-exact/sample
 *   void backwardPointBatch(pos, dirs, dsigmas, drgbs, ws);     // into model grads
 *   std::size_t gradCount() const;
 *   void backwardPointBatchInto(pos, dirs, dsigmas, drgbs, ws, grads) const;
 *   void accumulateGradients(std::span<const float> grads);     // shard merge
 *   // Training plumbing:
 *   void zeroGrads();
 *   void optimizerStep(float lr_a, float lr_b);
 *   void quantizeWeights();
 *   std::size_t paramCount() const;
 */

#ifndef FUSION3D_NERF_POINT_PIPELINE_H_
#define FUSION3D_NERF_POINT_PIPELINE_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "nerf/batch_evaluator.h"
#include "nerf/field.h"
#include "nerf/occupancy_grid.h"
#include "nerf/parallel_render.h"
#include "nerf/radiance_field.h"
#include "nerf/renderer.h"
#include "nerf/sampler.h"

namespace fusion3d::nerf
{

/** Pipeline configuration over a model-config type. */
template <class ModelConfigT>
struct PointPipelineConfig
{
    ModelConfigT model;
    SamplerConfig sampler;
    RenderParams render;
    int occupancyResolution = 48;
    float occupancyThreshold = 0.01f;
    /** Compact occupancy-empty samples out of the batch before the
     *  model forward (RayBatchEvaluator::setCompaction). Composited
     *  colors stay bit-identical to the gated path. */
    bool occupancyCompaction = false;
    /** Learning rate of the model's field/factor parameters. */
    float lrFactors = 2e-2f;
    /** Learning rate of the model's network parameters. */
    float lrNet = 2e-3f;
    std::uint64_t seed = 31;
};

/** The generic batch-native pipeline. */
template <class ModelT>
class PointPipeline : public RadianceField
{
  public:
    using Config = PointPipelineConfig<typename ModelT::Config>;

    /** Samples per shard / shard cap of the pooled batch paths — the
     *  same partition policy as NerfModel, fixed by batch size alone so
     *  results are identical at any pool size. */
    static constexpr std::size_t kShardGrain = 256;
    static constexpr std::size_t kMaxShards = 16;

    explicit PointPipeline(const Config &cfg)
        : cfg_(cfg),
          model_(std::make_unique<ModelT>(cfg.model, cfg.seed)),
          grid_(cfg.occupancyResolution, cfg.occupancyThreshold),
          sampler_(cfg.sampler)
    {
        eval_.setCompaction(cfg.occupancyCompaction);
    }

    const Config &config() const { return cfg_; }
    ModelT &model() { return *model_; }
    const ModelT &model() const { return *model_; }
    OccupancyGrid &grid() { return grid_; }
    const OccupancyGrid &grid() const { return grid_; }

    /** Toggle occupancy-driven sample compaction at runtime. */
    void setOccupancyCompaction(bool on) { eval_.setCompaction(on); }
    bool occupancyCompaction() const { return eval_.compaction(); }
    /** Batch-vs-model sample counts of the last traceRays call. */
    RayBatchEvaluator::CompactionStats lastCompaction() const
    {
        return eval_.lastCompaction();
    }

    /**
     * Scalar reference path: per-point forwardPoint loop with its own
     * scalar tape. Kept (rather than delegating to a batch of one) as
     * the independent oracle the batch-vs-scalar bit-exactness tests
     * compare traceRays against.
     */
    RayEval
    traceRay(const Ray &ray, Pcg32 &rng, bool record,
             RayWorkload *workload = nullptr) override
    {
        std::vector<RaySample> &samples = record ? tape_samples_ : scratch_samples_;
        sampler_.sample(ray, &grid_, rng, samples, workload);

        RayEval ev;
        ev.samples = static_cast<int>(samples.size());
        ev.candidates = workload ? workload->totalCandidates : ev.samples;

        tape_sigmas_.resize(samples.size());
        tape_rgbs_.resize(samples.size());
        tape_dts_.resize(samples.size());
        const Vec3f dir = normalize(ray.dir);
        for (std::size_t i = 0; i < samples.size(); ++i) {
            const PointEval pe = model_->forwardPoint(samples[i].pos, dir);
            tape_sigmas_[i] = pe.sigma;
            tape_rgbs_[i] = pe.rgb;
            tape_dts_[i] = samples[i].dt;
        }

        const CompositeResult cr =
            composite(tape_sigmas_, tape_rgbs_, tape_dts_, cfg_.render);
        ev.color = cr.color;
        ev.transmittance = cr.transmittance;
        ev.composited = cr.used;
        if (!samples.empty())
            ev.firstHitT = samples.front().t;

        if (record) {
            tape_dir_ = dir;
            tape_result_ = cr;
            tape_valid_ = true;
        }
        return ev;
    }

    void
    backwardLastRay(const Vec3f &dcolor) override
    {
        if (!tape_valid_)
            panic("PointPipeline::backwardLastRay without a recorded ray");

        tape_dsigmas_.resize(tape_sigmas_.size());
        tape_drgbs_.resize(tape_rgbs_.size());
        compositeBackward(tape_sigmas_, tape_rgbs_, tape_dts_, cfg_.render,
                          tape_result_, dcolor, tape_dsigmas_, tape_drgbs_,
                          composite_scratch_);

        for (int i = 0; i < tape_result_.used; ++i) {
            model_->backwardPoint(tape_samples_[static_cast<std::size_t>(i)].pos,
                                  tape_dir_,
                                  tape_dsigmas_[static_cast<std::size_t>(i)],
                                  tape_drgbs_[static_cast<std::size_t>(i)]);
        }
        tape_valid_ = false;
    }

    /**
     * Batch-native override: Stage I samples every ray into one CSR
     * SampleBatch, the model's batched forward evaluates the flattened
     * samples (pool-sharded over a fixed partition when a pool is
     * attached — bit-exact at any pool size because every sample's
     * arithmetic is batch-invariant), and each ray composites over its
     * offset range. record=true keeps the batch as the backwardRays
     * tape.
     */
    void
    traceRays(std::span<const Ray> rays, Pcg32 &rng, bool record,
              std::span<RayEval> out, RayWorkload *workload = nullptr) override
    {
        eval_.traceRays(sampler_, &grid_, cfg_.render, rays, rng, record, out,
                        workload, pool_,
                        [&](SampleBatch &batch) { forwardSharded(batch); });
    }

    /**
     * Composite-backward per ray, then one batched model backward —
     * per-shard private gradient buffers merged in fixed shard order
     * when a pool is attached, so trained weights are bit-identical at
     * any pool size.
     */
    void
    backwardRays(std::span<const Vec3f> dcolors) override
    {
        eval_.backwardRays(cfg_.render, dcolors, pool_,
                           [&](const SampleBatch &batch,
                               std::span<const float> dsigmas,
                               std::span<const Vec3f> drgbs) {
                               backwardSharded(batch, dsigmas, drgbs);
                           });
    }

    void
    updateOccupancy(Pcg32 &rng) override
    {
        if (pool_) {
            // Split update: the jitter draws happen serially in cell
            // order (identical rng stream to grid_.update), then the
            // probes run as one sharded density batch — bit-exact per
            // sample with the scalar queryDensity path.
            grid_.collectProbePositions(rng, occ_positions_);
            occ_densities_.resize(occ_positions_.size());
            queryDensitySharded(occ_positions_, occ_densities_);
            grid_.applyDensities(occ_densities_);
            return;
        }
        grid_.update([this](const Vec3f &p) { return model_->queryDensity(p); }, rng);
    }

    void quantizeWeights() override { model_->quantizeWeights(); }

    std::size_t paramCount() const override { return model_->paramCount(); }

    /**
     * Tiled inference render through the backend's ServeableField
     * wrapper (parallel_render row tiling, jitter off); bit-identical
     * at any thread count. Always available here.
     */
    bool
    renderViewTiled(const Camera &camera, ThreadPool &pool, Image &out) override
    {
        TiledRenderConfig tcfg;
        tcfg.sampler = cfg_.sampler;
        tcfg.sampler.jitter = false; // inference render
        tcfg.render = cfg_.render;
        tcfg.seed = cfg_.seed;
        const PointServeField<ModelT> field(*model_);
        out = renderImageTiled(field, &grid_, camera, tcfg, &pool);
        return true;
    }

  protected:
    void zeroGradsImpl() override { model_->zeroGrads(); }

    void
    optimizerStepImpl() override
    {
        model_->optimizerStep(cfg_.lrFactors, cfg_.lrNet);
    }

    void
    invalidateTapes() override
    {
        RadianceField::invalidateTapes();
        eval_.invalidateTape();
        tape_valid_ = false;
    }

  private:
    /** Fixed shard partition: shard s of S covers [s*n/S, (s+1)*n/S). */
    static std::size_t
    shardBegin(std::size_t n, std::size_t shards, std::size_t s)
    {
        return s * n / shards;
    }

    static std::size_t
    shardCount(std::size_t n)
    {
        return std::min(kMaxShards, (n + kShardGrain - 1) / kShardGrain);
    }

    /** Grow the per-shard workspace set to at least @p shards. */
    void
    growShardWorkspaces(std::size_t shards)
    {
        while (shard_ws_.size() < shards)
            shard_ws_.push_back(model_->makeBatchWorkspace());
    }

    void
    forwardSharded(SampleBatch &batch)
    {
        const std::size_t n = batch.size();
        if (n == 0)
            return;
        const std::size_t shards = shardCount(n);
        if (!pool_ || shards <= 1) {
            model_->forwardPointBatch(batch.positions, batch.dirs, batch_ws_,
                                      batch.sigmas, batch.rgbs);
            return;
        }
        growShardWorkspaces(shards);
        const ModelT &model = *model_;
        pool_->parallelFor(
            0, static_cast<int>(shards),
            [&](int b, int e) {
                for (int s = b; s < e; ++s) {
                    const std::size_t lo =
                        shardBegin(n, shards, static_cast<std::size_t>(s));
                    const std::size_t hi =
                        shardBegin(n, shards, static_cast<std::size_t>(s) + 1);
                    if (lo == hi)
                        continue;
                    model.forwardPointBatch(
                        std::span<const Vec3f>(batch.positions).subspan(lo, hi - lo),
                        std::span<const Vec3f>(batch.dirs).subspan(lo, hi - lo),
                        shard_ws_[static_cast<std::size_t>(s)],
                        std::span<float>(batch.sigmas).subspan(lo, hi - lo),
                        std::span<Vec3f>(batch.rgbs).subspan(lo, hi - lo));
                }
            },
            /*grain=*/1);
    }

    void
    backwardSharded(const SampleBatch &batch, std::span<const float> dsigmas,
                    std::span<const Vec3f> drgbs)
    {
        const std::size_t n = batch.size();
        if (n == 0)
            return;
        const std::size_t shards = shardCount(n);
        if (!pool_ || shards <= 1) {
            model_->backwardPointBatch(batch.positions, batch.dirs, dsigmas, drgbs,
                                       batch_ws_);
            return;
        }
        growShardWorkspaces(shards);
        if (shard_grads_.size() < shards)
            shard_grads_.resize(shards);
        const ModelT &model = *model_;
        pool_->parallelFor(
            0, static_cast<int>(shards),
            [&](int b, int e) {
                for (int s = b; s < e; ++s) {
                    const std::size_t lo =
                        shardBegin(n, shards, static_cast<std::size_t>(s));
                    const std::size_t hi =
                        shardBegin(n, shards, static_cast<std::size_t>(s) + 1);
                    std::vector<float> &grads =
                        shard_grads_[static_cast<std::size_t>(s)];
                    grads.assign(model.gradCount(), 0.0f);
                    if (lo == hi)
                        continue;
                    model.backwardPointBatchInto(
                        std::span<const Vec3f>(batch.positions).subspan(lo, hi - lo),
                        std::span<const Vec3f>(batch.dirs).subspan(lo, hi - lo),
                        dsigmas.subspan(lo, hi - lo), drgbs.subspan(lo, hi - lo),
                        shard_ws_[static_cast<std::size_t>(s)], grads);
                }
            },
            /*grain=*/1);
        // Deterministic reduction: shard-ascending merge into the model
        // accumulators — the order depends only on the partition, never
        // on pool size or completion order.
        for (std::size_t s = 0; s < shards; ++s)
            model_->accumulateGradients(shard_grads_[s]);
    }

    void
    queryDensitySharded(std::span<const Vec3f> pos, std::span<float> sigmas)
    {
        const std::size_t n = pos.size();
        if (n == 0)
            return;
        const std::size_t shards = shardCount(n);
        if (!pool_ || shards <= 1) {
            model_->queryDensityBatch(pos, batch_ws_, sigmas);
            return;
        }
        growShardWorkspaces(shards);
        const ModelT &model = *model_;
        pool_->parallelFor(
            0, static_cast<int>(shards),
            [&](int b, int e) {
                for (int s = b; s < e; ++s) {
                    const std::size_t lo =
                        shardBegin(n, shards, static_cast<std::size_t>(s));
                    const std::size_t hi =
                        shardBegin(n, shards, static_cast<std::size_t>(s) + 1);
                    if (lo == hi)
                        continue;
                    model.queryDensityBatch(pos.subspan(lo, hi - lo),
                                            shard_ws_[static_cast<std::size_t>(s)],
                                            sigmas.subspan(lo, hi - lo));
                }
            },
            /*grain=*/1);
    }

    Config cfg_;
    std::unique_ptr<ModelT> model_;
    OccupancyGrid grid_;
    RaySampler sampler_;

    /** Shared Stage I/III machinery (hoisted from NerfPipeline). */
    RayBatchEvaluator eval_{"PointPipeline"};

    // Scalar-oracle tape (traceRay/backwardLastRay).
    std::vector<RaySample> tape_samples_;
    std::vector<float> tape_sigmas_;
    std::vector<Vec3f> tape_rgbs_;
    std::vector<float> tape_dts_;
    std::vector<float> tape_dsigmas_;
    std::vector<Vec3f> tape_drgbs_;
    Vec3f tape_dir_;
    CompositeResult tape_result_;
    bool tape_valid_ = false;
    std::vector<RaySample> scratch_samples_;
    CompositeBackwardScratch composite_scratch_;

    // Batched-evaluation scratch: the serial workspace plus per-shard
    // workspaces and private gradient buffers for the pooled paths.
    // Grown once, allocation-free in steady state.
    typename ModelT::BatchWorkspace batch_ws_;
    std::vector<typename ModelT::BatchWorkspace> shard_ws_;
    std::vector<std::vector<float>> shard_grads_;
    std::vector<Vec3f> occ_positions_;
    std::vector<float> occ_densities_;
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_POINT_PIPELINE_H_
