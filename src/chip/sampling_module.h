/**
 * @file
 * Cycle-level model of the Sampling Module (Stage I): a pre-processing
 * unit computing ray/cube intersections followed by 16 parallel sampling
 * cores marching candidate points (Fig. 4(a), Sec. IV-A).
 *
 * Two ablation axes reproduce the paper's Technique-T1 studies:
 *  - Pre-processing path: normalized (1 ray/cycle, folded-constant
 *    intersections) vs generic (iterative divider, ~24 cycles/ray);
 *  - Scheduling: dynamic threshold dispatch (a ray launches as soon as
 *    enough cores are free for all its ray-cube pairs) vs the baseline
 *    ray-serial dispatch that waits for all cores to drain.
 */

#ifndef FUSION3D_CHIP_SAMPLING_MODULE_H_
#define FUSION3D_CHIP_SAMPLING_MODULE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "chip/config.h"
#include "common/types.h"
#include "nerf/sampler.h"

namespace fusion3d::chip
{

/** Scheduling policy of the multi-core sampling processor. */
enum class SamplingSchedule
{
    /** Baseline of Fig. 5(c): a ray is dispatched only when every core
     *  is idle (ray-by-ray execution). */
    RaySerial,
    /** Technique T1-2: dispatch when free cores >= pairs of the ray. */
    Dynamic,
    /** Greedy per-pair dispatch to the earliest free core: maximal
     *  utilization but per-pair control logic and partial-sum buffers
     *  for every in-flight ray (the cost the threshold avoids). */
    PairGreedy,
};

/** Result of simulating a Stage-I batch. */
struct SamplingRunStats
{
    Cycles totalCycles = 0;
    Cycles preprocCycles = 0;
    /** Busy core-cycles across all sampling cores. */
    std::uint64_t busyCoreCycles = 0;
    std::uint64_t raysProcessed = 0;
    std::uint64_t pairsProcessed = 0;
    std::uint64_t candidatesMarched = 0;
    std::uint64_t validPoints = 0;

    /** Mean core utilization during the run. */
    double
    utilization(int cores) const
    {
        if (totalCycles == 0 || cores == 0)
            return 0.0;
        return static_cast<double>(busyCoreCycles) /
               (static_cast<double>(totalCycles) * cores);
    }
};

/** Cycle-level Stage-I model. */
class SamplingModule
{
  public:
    SamplingModule(const ChipConfig &cfg, SamplingSchedule schedule,
                   bool normalized_preproc = true)
        : cfg_(cfg), schedule_(schedule), normalized_(normalized_preproc)
    {}

    SamplingSchedule schedule() const { return schedule_; }
    bool normalizedPreproc() const { return normalized_; }

    /**
     * Replay a trace of per-ray Stage-I workloads and return the cycle
     * cost. Each ray-cube pair occupies one sampling core for one cycle
     * per candidate point; the pre-processing unit runs ahead of the
     * cores in pipeline fashion, so total time is the maximum of the
     * two sub-units plus the dispatch stalls the scheduler causes.
     */
    SamplingRunStats run(std::span<const nerf::RayWorkload> rays) const;

  private:
    ChipConfig cfg_;
    SamplingSchedule schedule_;
    bool normalized_;
};

} // namespace fusion3d::chip

#endif // FUSION3D_CHIP_SAMPLING_MODULE_H_
