#include "nerf/field.h"

#include "nerf/nerf_model.h"

namespace fusion3d::nerf
{

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
    case BackendKind::hashGrid:
        return "hash_grid";
    case BackendKind::freqNerf:
        return "freq_nerf";
    case BackendKind::tensorf:
        return "tensorf";
    }
    return "unknown";
}

HashGridServeField::HashGridServeField(std::unique_ptr<NerfModel> model)
    : owned_(std::move(model))
{
}

HashGridServeField::HashGridServeField(const NerfModel &model) : borrowed_(&model) {}

HashGridServeField::~HashGridServeField() = default;

std::size_t
HashGridServeField::paramCount() const
{
    return model().paramCount();
}

void
HashGridServeField::evalBatch(std::span<const Vec3f> positions,
                              std::span<const Vec3f> dirs, std::span<float> sigmas,
                              std::span<Vec3f> rgbs) const
{
    NerfBatchWorkspace ws = model().makeBatchWorkspace();
    model().forwardBatch(positions, dirs, ws, sigmas, rgbs);
}

void
HashGridServeField::evalDensityBatch(std::span<const Vec3f> positions,
                                     std::span<float> sigmas) const
{
    NerfBatchWorkspace ws = model().makeBatchWorkspace();
    model().queryDensityBatch(positions, ws, sigmas);
}

} // namespace fusion3d::nerf
