#include "scenes/reference_renderer.h"

#include <cmath>
#include <vector>

#include "common/aabb.h"

namespace fusion3d::scenes
{

namespace
{
constexpr float kSqrt3 = 1.7320508075688772f;
} // namespace

Vec3f
referenceTrace(const Scene &scene, const Ray &ray, const ReferenceConfig &cfg)
{
    const auto span = Aabb::intersectUnitCube(ray);
    if (!span || span->t1 <= std::max(span->t0, 0.0f))
        return cfg.render.background;

    const float dt = kSqrt3 / static_cast<float>(cfg.steps);
    const float t0 = std::max(span->t0, 0.0f);

    Vec3f color(0.0f);
    float trans = 1.0f;
    for (float t = t0 + 0.5f * dt; t < span->t1; t += dt) {
        const Vec3f p = ray.at(t);
        const float sigma = scene.density(p);
        if (sigma <= 0.0f)
            continue;
        const float alpha = 1.0f - std::exp(-sigma * dt);
        color += scene.albedo(p) * (trans * alpha);
        trans *= 1.0f - alpha;
        if (trans < cfg.render.terminationThreshold)
            break;
    }
    color += cfg.render.background * trans;
    return color;
}

Image
referenceRender(const Scene &scene, const nerf::Camera &camera,
                const ReferenceConfig &cfg)
{
    Image out(camera.width(), camera.height());
    for (int y = 0; y < camera.height(); ++y) {
        for (int x = 0; x < camera.width(); ++x) {
            const Ray ray = camera.rayForPixel(x, y);
            out.at(x, y) = clamp(referenceTrace(scene, ray, cfg), 0.0f, 1.0f);
        }
    }
    return out;
}

} // namespace fusion3d::scenes
