#include "serve/model_registry.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/rng.h"
#include "obs/trace.h"

namespace fusion3d::serve
{

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::closed:
        return "closed";
      case BreakerState::open:
        return "open";
      case BreakerState::halfOpen:
        return "half_open";
    }
    return "?";
}

ModelRegistry::ModelRegistry(int occupancy_resolution, float occupancy_threshold)
    : ModelRegistry([&] {
          RegistryConfig cfg;
          cfg.occupancyResolution = occupancy_resolution;
          cfg.occupancyThreshold = occupancy_threshold;
          return cfg;
      }())
{
}

ModelRegistry::ModelRegistry(const RegistryConfig &cfg) : cfg_(cfg)
{
    if (cfg_.occupancyResolution < 1)
        fatal("ModelRegistry: occupancy resolution must be positive, got %d",
              cfg_.occupancyResolution);
    if (cfg_.loadMaxAttempts < 1)
        fatal("ModelRegistry: loadMaxAttempts must be >= 1, got %d",
              cfg_.loadMaxAttempts);
    if (cfg_.breakerThreshold < 1)
        fatal("ModelRegistry: breakerThreshold must be >= 1, got %d",
              cfg_.breakerThreshold);

    // Distinct collector name per registry instance, as ServerStats does
    // for servers.
    static std::atomic<std::uint64_t> seq{0};
    char buf[64];
    std::snprintf(buf, sizeof buf, "serve.registry%llu",
                  static_cast<unsigned long long>(seq.fetch_add(1)));
    collector_name_ = buf;
    obs::MetricsRegistry::global().registerCollector(
        collector_name_, [this](obs::MetricSink &sink) { collect(sink); });
}

ModelRegistry::~ModelRegistry()
{
    obs::MetricsRegistry::global().unregisterCollector(collector_name_);
}

void
ModelRegistry::collect(obs::MetricSink &sink) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    sink.gauge("serve.registry.models", static_cast<double>(entries_.size()));
    sink.gauge("serve.registry.resident_bytes",
               static_cast<double>(resident_bytes_));
    sink.gauge("serve.registry.budget_bytes",
               static_cast<double>(cfg_.memoryBudgetBytes));
    sink.counter("serve.registry.loads_ok", loads_ok_);
    sink.counter("serve.registry.loads_failed", loads_failed_);
    sink.counter("serve.registry.load_retries", load_retries_);
    sink.counter("serve.registry.breaker_trips", breaker_trips_);
    sink.counter("serve.registry.breaker_open_rejects", breaker_rejects_);
    sink.counter("serve.registry.evictions", evictions_);
    sink.counter("serve.registry.reloads", reloads_);
    sink.counter("serve.registry.swaps", swaps_);
    sink.counter("serve.registry.acquire_hits", acquire_hits_);
    std::uint64_t open = 0;
    for (const auto &[name, b] : breakers_)
        if (b.state == BreakerState::open)
            ++open;
    sink.gauge("serve.registry.breakers_open", static_cast<double>(open));
}

void
ModelRegistry::touchLocked(Slot &slot, const std::string &name)
{
    (void)name;
    lru_.splice(lru_.begin(), lru_, slot.lruPos);
}

void
ModelRegistry::evictToBudgetLocked()
{
    if (cfg_.memoryBudgetBytes == 0)
        return;
    while (resident_bytes_ > cfg_.memoryBudgetBytes && lru_.size() > 1) {
        // Walk from the least recently used end; the MRU entry (list
        // front, typically the one just registered or acquired) is
        // never evicted, so a model larger than the whole budget still
        // serves. In-memory entries have nothing to reload from and
        // pinned entries have renders in flight — both are skipped.
        std::string victim;
        for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
            if (*rit == lru_.front())
                break;
            const auto it = entries_.find(*rit);
            if (it == entries_.end())
                fatal("ModelRegistry: LRU list out of sync with entries");
            if (it->second.entry->sourcePath.empty())
                continue; // in-memory: not reloadable, not evictable
            if (it->second.entry.use_count() > 1)
                continue; // pinned by an in-flight render
            victim = *rit;
            break;
        }
        if (victim.empty())
            break; // nothing evictable: pins/in-memory entries remain

        const auto it = entries_.find(victim);
        resident_bytes_ -= it->second.entry->bytes;
        // The evicted model's derived caches (session frames) must
        // stale-miss: the epoch moves even though the weights on disk
        // are unchanged, because a reload rebuilds a distinct entry.
        ++epochs_[victim];
        ++evictions_;
        obs::Tracer::instance().recordInstant("serve", "registry_evict");
        inform("ModelRegistry: evicted '%s' (%zu bytes; resident %zu of "
               "budget %zu)",
               victim.c_str(), it->second.entry->bytes, resident_bytes_,
               cfg_.memoryBudgetBytes);
        lru_.erase(it->second.lruPos);
        entries_.erase(it);
    }
}

const ModelEntry *
ModelRegistry::addInternal(const std::string &name,
                           std::unique_ptr<nerf::ServeableField> field,
                           const std::string &source_path)
{
    if (!field)
        fatal("ModelRegistry::add('%s'): null model", name.c_str());

    auto entry = std::make_shared<ModelEntry>(
        name, std::move(field), cfg_.occupancyResolution, cfg_.occupancyThreshold);

    // Quantize before the gate rebuild so the gate is derived from the
    // exact weights this entry will serve. Backends that don't support
    // quantization (applyQuantMode false) keep serving fp32.
    if (cfg_.quantMode != QuantMode::fp32)
        entry->model->applyQuantMode(cfg_.quantMode);
    entry->quant = entry->model->quantMode();

    // Rebuild the inference gate from the deployed weights; decay 0
    // makes it exactly the current field's occupancy, like the benches'
    // scene bootstrap. The fixed seed keeps the gate — and therefore a
    // reloaded model's renders — bit-identical across reloads. The
    // probe jitters draw serially in cell order (the same rng stream
    // the scalar grid.update consumed), then one backend-polymorphic
    // density batch evaluates them: per probe bit-exact with the
    // backend's scalar density query.
    Pcg32 rng(0x5eedf00dULL, 41);
    std::vector<Vec3f> probes;
    entry->grid.collectProbePositions(rng, probes);
    std::vector<float> densities(probes.size());
    entry->model->evalDensityBatch(probes, densities);
    entry->grid.applyDensities(densities, /*decay=*/0.0f);
    entry->sourcePath = source_path;
    entry->bytes = sizeof(ModelEntry) + name.size() + source_path.size() +
                   entry->model->residentBytes() +
                   entry->grid.cellCount() * sizeof(float) +
                   entry->grid.bitfieldBytes();

    const ModelEntry *raw = entry.get();
    std::shared_ptr<ModelEntry> replaced; // released outside the lock
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entry->epoch = ++epochs_[name];
        auto it = entries_.find(name);
        if (it != entries_.end()) {
            // Hot-swap publish: pointer swap under the lock. The old
            // version keeps serving every render pinned to it and
            // drains when the last pin drops.
            resident_bytes_ -= it->second.entry->bytes;
            replaced = std::move(it->second.entry);
            it->second.entry = std::move(entry);
            touchLocked(it->second, name);
        } else {
            lru_.push_front(name);
            Slot slot;
            slot.entry = std::move(entry);
            slot.lruPos = lru_.begin();
            entries_.emplace(name, std::move(slot));
        }
        resident_bytes_ += raw->bytes;
        if (source_path.empty()) {
            // An in-memory deploy supersedes any artifact this name had:
            // evicting it could not bring these weights back.
            source_paths_.erase(name);
        } else {
            source_paths_[name] = source_path;
        }
        evictToBudgetLocked();
    }
    return raw;
}

const ModelEntry *
ModelRegistry::add(const std::string &name, std::unique_ptr<nerf::NerfModel> model)
{
    if (!model)
        fatal("ModelRegistry::add('%s'): null model", name.c_str());
    return addInternal(name,
                       std::make_unique<nerf::HashGridServeField>(std::move(model)),
                       /*source_path=*/"");
}

const ModelEntry *
ModelRegistry::add(const std::string &name,
                   std::unique_ptr<nerf::ServeableField> field)
{
    return addInternal(name, std::move(field), /*source_path=*/"");
}

std::uint64_t
ModelRegistry::epoch(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = epochs_.find(name);
    return it == epochs_.end() ? 0 : it->second;
}

nerf::LoadStatus
ModelRegistry::addFromFile(const std::string &name, const std::string &path)
{
    F3D_TRACE_SPAN("serve", "registry_load");

    // Breaker check. An open breaker rejects until its cooldown
    // elapses, then half-opens: exactly one probe attempt, no retries.
    bool half_open = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Breaker &b = breakers_[name];
        if (b.state == BreakerState::open) {
            const auto elapsed = std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - b.openedAt);
            if (elapsed.count() < cfg_.breakerCooldownMs) {
                ++breaker_rejects_;
                warn("ModelRegistry: deploy of '%s' rejected, breaker open "
                     "(%.1f of %.1f ms cooldown elapsed)",
                     name.c_str(), elapsed.count(), cfg_.breakerCooldownMs);
                return nerf::LoadStatus::ioError;
            }
            b.state = BreakerState::halfOpen;
            inform("ModelRegistry: breaker for '%s' half-open, probing '%s'",
                   name.c_str(), path.c_str());
        }
        half_open = b.state == BreakerState::halfOpen;
    }

    const int attempts = half_open ? 1 : cfg_.loadMaxAttempts;
    double delay_ms = cfg_.backoffInitialMs;
    nerf::FieldLoadResult r;
    for (int attempt = 1; attempt <= attempts; ++attempt) {
        if (attempt > 1) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++load_retries_;
            }
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(delay_ms));
            delay_ms = std::min(delay_ms * cfg_.backoffMultiplier,
                                cfg_.backoffMaxMs);
        }
        if (F3D_FAULT_POINT("serve.load.io")) {
            r = nerf::FieldLoadResult{};
            r.status = nerf::LoadStatus::ioError;
            r.message = "injected fault (serve.load.io)";
        } else {
            r = nerf::loadFieldVerbose(path);
        }
        if (r)
            break;
        warn("ModelRegistry: deploy of '%s' from '%s' failed (attempt %d/%d): "
             "%s (%s)",
             name.c_str(), path.c_str(), attempt, attempts,
             nerf::loadStatusName(r.status), r.message.c_str());
    }

    if (!r) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++loads_failed_;
        Breaker &b = breakers_[name];
        ++b.consecutiveFailures;
        if (b.state == BreakerState::halfOpen ||
            b.consecutiveFailures >= cfg_.breakerThreshold) {
            b.state = BreakerState::open;
            b.openedAt = std::chrono::steady_clock::now();
            ++b.trips;
            ++breaker_trips_;
            obs::Tracer::instance().recordInstant("serve", "breaker_open");
            warn("ModelRegistry: breaker for '%s' open after %d consecutive "
                 "failures (cooldown %.1f ms)",
                 name.c_str(), b.consecutiveFailures, cfg_.breakerCooldownMs);
        }
        return r.status;
    }

    addInternal(name, std::move(r.field), path);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++loads_ok_;
        Breaker &b = breakers_[name];
        if (b.state != BreakerState::closed)
            inform("ModelRegistry: breaker for '%s' closed", name.c_str());
        b.state = BreakerState::closed;
        b.consecutiveFailures = 0;
    }
    inform("ModelRegistry: deployed '%s' from '%s'", name.c_str(), path.c_str());
    return nerf::LoadStatus::ok;
}

nerf::LoadStatus
ModelRegistry::swap(const std::string &name, const std::string &path)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Swappable = currently serving: resident, or evicted with an
        // artifact to reload. Never-registered and removed names have
        // nothing to swap.
        if (entries_.find(name) == entries_.end() &&
            source_paths_.find(name) == source_paths_.end()) {
            warn("ModelRegistry: swap of '%s' rejected: not deployed",
                 name.c_str());
            return nerf::LoadStatus::ioError;
        }
    }
    F3D_TRACE_SPAN("serve", "registry_swap");
    // Load + CRC-verify off to the side (retry + breaker included);
    // addInternal publishes with a pointer swap under the lock.
    const nerf::LoadStatus status = addFromFile(name, path);
    if (status != nerf::LoadStatus::ok) {
        warn("ModelRegistry: hot-swap of '%s' from '%s' failed (%s); the old "
             "version keeps serving",
             name.c_str(), path.c_str(), nerf::loadStatusName(status));
        return status;
    }
    std::uint64_t new_epoch;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++swaps_;
        new_epoch = epochs_[name];
    }
    // The instant lands in the Chrome trace and — via the always-on
    // capture bit — in the flight recorder's black-box ring.
    obs::Tracer::instance().recordInstant("serve", "hot_swap");
    inform("ModelRegistry: hot-swapped '%s' to '%s' (epoch %llu); old version "
           "drains with its in-flight pins",
           name.c_str(), path.c_str(),
           static_cast<unsigned long long>(new_epoch));
    return nerf::LoadStatus::ok;
}

ModelHandle
ModelRegistry::acquire(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end())
        return nullptr;
    touchLocked(it->second, name);
    ++acquire_hits_;
    return it->second.entry;
}

AcquireResult
ModelRegistry::acquireOrReload(const std::string &name)
{
    bool reloaded = false;
    // Bounded loop: each pass either resolves, becomes the loader, or
    // waits for a concurrent loader and re-checks.
    for (int pass = 0; pass < 4; ++pass) {
        std::string path;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            auto it = entries_.find(name);
            if (it != entries_.end()) {
                touchLocked(it->second, name);
                ++acquire_hits_;
                AcquireResult r;
                r.entry = it->second.entry;
                r.known = true;
                r.reloaded = reloaded;
                return r;
            }
            const auto pit = source_paths_.find(name);
            if (pit == source_paths_.end()) {
                // Not resident and nothing to reload from: never
                // registered, or removed. Either way the name does not
                // serve — an unknown model, not an internal failure.
                AcquireResult r;
                r.known = false;
                r.status = nerf::LoadStatus::ioError;
                return r;
            }
            if (loading_.count(name)) {
                // Another worker is already reloading this model: stall
                // on its result instead of thundering into storage.
                loader_cv_.wait(lock,
                                [&]() { return loading_.count(name) == 0; });
                reloaded = true;
                continue;
            }
            loading_.insert(name);
            path = pit->second;
        }

        // Reload-on-demand outside the lock, riding the retry +
        // circuit-breaker deploy path.
        F3D_TRACE_SPAN("serve", "registry_reload");
        const nerf::LoadStatus status = addFromFile(name, path);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            loading_.erase(name);
            if (status == nerf::LoadStatus::ok)
                ++reloads_;
        }
        loader_cv_.notify_all();
        if (status != nerf::LoadStatus::ok) {
            AcquireResult r;
            r.known = true;
            r.status = status;
            return r;
        }
        reloaded = true; // loop re-acquires the freshly loaded entry
    }
    AcquireResult r;
    r.known = true;
    r.status = nerf::LoadStatus::ioError;
    return r;
}

bool
ModelRegistry::removeModel(const std::string &name)
{
    std::shared_ptr<ModelEntry> dropped; // released outside the lock
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (entries_.find(name) == entries_.end() &&
            source_paths_.find(name) == source_paths_.end())
            return false; // never registered, or already removed
        auto it = entries_.find(name);
        if (it != entries_.end()) {
            resident_bytes_ -= it->second.entry->bytes;
            dropped = std::move(it->second.entry);
            lru_.erase(it->second.lruPos);
            entries_.erase(it);
        }
        source_paths_.erase(name);
        // Dependent caches must stale-miss even if the name returns.
        ++epochs_[name];
    }
    inform("ModelRegistry: removed '%s'%s", name.c_str(),
           dropped && dropped.use_count() > 1
               ? " (in-flight pins drain the old entry)"
               : "");
    return true;
}

const ModelEntry *
ModelRegistry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second.entry.get();
}

std::size_t
ModelRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t
ModelRegistry::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return resident_bytes_;
}

std::vector<std::string>
ModelRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, slot] : entries_)
        out.push_back(name);
    return out;
}

BreakerState
ModelRegistry::breakerState(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = breakers_.find(name);
    return it == breakers_.end() ? BreakerState::closed : it->second.state;
}

std::uint64_t
ModelRegistry::loadsSucceeded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return loads_ok_;
}

std::uint64_t
ModelRegistry::loadsFailed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return loads_failed_;
}

std::uint64_t
ModelRegistry::loadRetries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return load_retries_;
}

std::uint64_t
ModelRegistry::breakerTrips() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return breaker_trips_;
}

std::uint64_t
ModelRegistry::breakerOpenRejects() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return breaker_rejects_;
}

std::uint64_t
ModelRegistry::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

std::uint64_t
ModelRegistry::reloads() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reloads_;
}

std::uint64_t
ModelRegistry::swaps() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return swaps_;
}

std::uint64_t
ModelRegistry::acquireHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return acquire_hits_;
}

} // namespace fusion3d::serve
