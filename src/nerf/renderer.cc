#include "nerf/renderer.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace fusion3d::nerf
{

CompositeResult
composite(std::span<const float> sigmas, std::span<const Vec3f> rgbs,
          std::span<const float> dts, const RenderParams &params)
{
    if (sigmas.size() != rgbs.size() || sigmas.size() != dts.size())
        panic("composite: span length mismatch");

    CompositeResult r;
    r.color = Vec3f(0.0f);
    float trans = 1.0f;
    int used = 0;
    for (std::size_t i = 0; i < sigmas.size(); ++i) {
        const float alpha = 1.0f - std::exp(-sigmas[i] * dts[i]);
        const float w = trans * alpha;
        r.color += rgbs[i] * w;
        trans *= 1.0f - alpha;
        ++used;
        if (trans < params.terminationThreshold)
            break;
    }
    r.color += params.background * trans;
    r.transmittance = trans;
    r.used = used;
    return r;
}

float
compositeDepth(std::span<const float> sigmas, std::span<const float> dts,
               std::span<const float> ts, const RenderParams &params, float t_far)
{
    if (sigmas.size() != dts.size() || sigmas.size() != ts.size())
        panic("compositeDepth: span length mismatch");

    float depth = 0.0f;
    float trans = 1.0f;
    for (std::size_t i = 0; i < sigmas.size(); ++i) {
        const float alpha = 1.0f - std::exp(-sigmas[i] * dts[i]);
        depth += trans * alpha * ts[i];
        trans *= 1.0f - alpha;
        if (trans < params.terminationThreshold)
            break;
    }
    return depth + trans * t_far;
}

void
compositeBackward(std::span<const float> sigmas, std::span<const Vec3f> rgbs,
                  std::span<const float> dts, const RenderParams &params,
                  const CompositeResult &fwd, const Vec3f &dcolor,
                  std::span<float> dsigmas, std::span<Vec3f> drgbs,
                  CompositeBackwardScratch &scratch)
{
    if (sigmas.size() != rgbs.size() || sigmas.size() != dts.size())
        panic("compositeBackward: span length mismatch");
    if (dsigmas.size() < sigmas.size() || drgbs.size() < rgbs.size())
        panic("compositeBackward: gradient spans too small");

    const int n = fwd.used;
    std::fill(dsigmas.begin(), dsigmas.end(), 0.0f);
    std::fill(drgbs.begin(), drgbs.end(), Vec3f(0.0f));

    // Recompute the forward prefix quantities (cheap, avoids caching).
    // trans_before[i] = T_i; after the loop trans == T_end.
    float trans = 1.0f;
    // Store T_{i+1} = T_i * (1 - alpha_i) per sample for the sweep below.
    if (scratch.t_after.size() < static_cast<std::size_t>(n)) {
        scratch.t_after.resize(static_cast<std::size_t>(n));
        scratch.weight.resize(static_cast<std::size_t>(n));
    }
    std::span<float> t_after{scratch.t_after.data(), static_cast<std::size_t>(n)};
    std::span<float> weight{scratch.weight.data(), static_cast<std::size_t>(n)};
    for (int i = 0; i < n; ++i) {
        const float alpha = 1.0f - std::exp(-sigmas[i] * dts[i]);
        weight[i] = trans * alpha;
        trans *= 1.0f - alpha;
        t_after[i] = trans;
    }

    // suffix = sum_{j>i} w_j c_j + T_end * background, built back-to-front.
    Vec3f suffix = params.background * trans;
    for (int i = n - 1; i >= 0; --i) {
        drgbs[i] = dcolor * weight[i];
        // dL/dsigma_i = dt_i * <dcolor, T_{i+1} c_i - suffix_{>i}>.
        const Vec3f dalpha_term = rgbs[i] * t_after[i] - suffix;
        dsigmas[i] = dts[i] * dot(dcolor, dalpha_term);
        suffix += rgbs[i] * weight[i];
    }
}

void
compositeBackward(std::span<const float> sigmas, std::span<const Vec3f> rgbs,
                  std::span<const float> dts, const RenderParams &params,
                  const CompositeResult &fwd, const Vec3f &dcolor,
                  std::span<float> dsigmas, std::span<Vec3f> drgbs)
{
    CompositeBackwardScratch scratch;
    compositeBackward(sigmas, rgbs, dts, params, fwd, dcolor, dsigmas, drgbs, scratch);
}

} // namespace fusion3d::nerf
