#include "nerf/adam.h"

#include <cmath>

#include "common/logging.h"

namespace fusion3d::nerf
{

Adam::Adam(std::size_t param_count, const AdamConfig &cfg)
    : cfg_(cfg), m_(param_count, 0.0f), v_(param_count, 0.0f)
{
}

void
Adam::step(std::span<float> params, std::span<const float> grads)
{
    if (params.size() != m_.size() || grads.size() != m_.size())
        panic("Adam::step size mismatch (%zu params, %zu state)",
              params.size(), m_.size());

    ++t_;
    const float b1t = 1.0f - std::pow(cfg_.beta1, static_cast<float>(t_));
    const float b2t = 1.0f - std::pow(cfg_.beta2, static_cast<float>(t_));

    for (std::size_t i = 0; i < params.size(); ++i) {
        float g = grads[i];
        if (cfg_.skipZeroGrad && g == 0.0f)
            continue;
        if (cfg_.weightDecay != 0.0f)
            g += cfg_.weightDecay * params[i];
        m_[i] = cfg_.beta1 * m_[i] + (1.0f - cfg_.beta1) * g;
        v_[i] = cfg_.beta2 * v_[i] + (1.0f - cfg_.beta2) * g * g;
        const float mhat = m_[i] / b1t;
        const float vhat = v_[i] / b2t;
        params[i] -= cfg_.lr * mhat / (std::sqrt(vhat) + cfg_.epsilon);
    }
}

} // namespace fusion3d::nerf
