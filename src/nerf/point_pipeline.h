/**
 * @file
 * Generic end-to-end pipeline over a self-contained point model: Stage
 * I sampling through the occupancy gate, per-point model evaluation,
 * Stage III compositing, and the training tape. TensoRF and the
 * frequency-encoded (vanilla/MetaVRain-style) NeRF instantiate this;
 * the hash-grid pipeline keeps its dedicated class (NerfPipeline)
 * because it additionally exposes the Stage-II vertex-trace hooks the
 * chip model consumes.
 *
 * A ModelT must provide:
 *   using Config = ...;
 *   ModelT(const Config &, std::uint64_t seed);
 *   PointEval forwardPoint(const Vec3f &pos, const Vec3f &dir);
 *   float queryDensity(const Vec3f &pos);
 *   void backwardPoint(const Vec3f &, const Vec3f &, float, const Vec3f &);
 *   void zeroGrads();
 *   void optimizerStep(float lr_a, float lr_b);
 *   void quantizeWeights();
 *   std::size_t paramCount() const;
 */

#ifndef FUSION3D_NERF_POINT_PIPELINE_H_
#define FUSION3D_NERF_POINT_PIPELINE_H_

#include <memory>
#include <vector>

#include "common/logging.h"
#include "nerf/occupancy_grid.h"
#include "nerf/radiance_field.h"
#include "nerf/renderer.h"
#include "nerf/sampler.h"

namespace fusion3d::nerf
{

/** Pipeline configuration over a model-config type. */
template <class ModelConfigT>
struct PointPipelineConfig
{
    ModelConfigT model;
    SamplerConfig sampler;
    RenderParams render;
    int occupancyResolution = 48;
    float occupancyThreshold = 0.01f;
    /** Learning rate of the model's field/factor parameters. */
    float lrFactors = 2e-2f;
    /** Learning rate of the model's network parameters. */
    float lrNet = 2e-3f;
    std::uint64_t seed = 31;
};

/** The generic pipeline. */
template <class ModelT>
class PointPipeline : public RadianceField
{
  public:
    using Config = PointPipelineConfig<typename ModelT::Config>;

    explicit PointPipeline(const Config &cfg)
        : cfg_(cfg),
          model_(std::make_unique<ModelT>(cfg.model, cfg.seed)),
          grid_(cfg.occupancyResolution, cfg.occupancyThreshold),
          sampler_(cfg.sampler)
    {}

    const Config &config() const { return cfg_; }
    ModelT &model() { return *model_; }
    OccupancyGrid &grid() { return grid_; }
    const OccupancyGrid &grid() const { return grid_; }

    RayEval
    traceRay(const Ray &ray, Pcg32 &rng, bool record,
             RayWorkload *workload = nullptr) override
    {
        std::vector<RaySample> &samples = record ? tape_samples_ : scratch_samples_;
        sampler_.sample(ray, &grid_, rng, samples, workload);

        RayEval ev;
        ev.samples = static_cast<int>(samples.size());
        ev.candidates = workload ? workload->totalCandidates : ev.samples;

        tape_sigmas_.resize(samples.size());
        tape_rgbs_.resize(samples.size());
        tape_dts_.resize(samples.size());
        const Vec3f dir = normalize(ray.dir);
        for (std::size_t i = 0; i < samples.size(); ++i) {
            const PointEval pe = model_->forwardPoint(samples[i].pos, dir);
            tape_sigmas_[i] = pe.sigma;
            tape_rgbs_[i] = pe.rgb;
            tape_dts_[i] = samples[i].dt;
        }

        const CompositeResult cr =
            composite(tape_sigmas_, tape_rgbs_, tape_dts_, cfg_.render);
        ev.color = cr.color;
        ev.transmittance = cr.transmittance;
        ev.composited = cr.used;
        if (!samples.empty())
            ev.firstHitT = samples.front().t;

        if (record) {
            tape_dir_ = dir;
            tape_result_ = cr;
            tape_valid_ = true;
        }
        return ev;
    }

    void
    backwardLastRay(const Vec3f &dcolor) override
    {
        if (!tape_valid_)
            panic("PointPipeline::backwardLastRay without a recorded ray");

        tape_dsigmas_.resize(tape_sigmas_.size());
        tape_drgbs_.resize(tape_rgbs_.size());
        compositeBackward(tape_sigmas_, tape_rgbs_, tape_dts_, cfg_.render,
                          tape_result_, dcolor, tape_dsigmas_, tape_drgbs_,
                          composite_scratch_);

        for (int i = 0; i < tape_result_.used; ++i) {
            model_->backwardPoint(tape_samples_[static_cast<std::size_t>(i)].pos,
                                  tape_dir_,
                                  tape_dsigmas_[static_cast<std::size_t>(i)],
                                  tape_drgbs_[static_cast<std::size_t>(i)]);
        }
        tape_valid_ = false;
    }

    void zeroGrads() override { model_->zeroGrads(); }

    void optimizerStep() override { model_->optimizerStep(cfg_.lrFactors, cfg_.lrNet); }

    void
    updateOccupancy(Pcg32 &rng) override
    {
        grid_.update([this](const Vec3f &p) { return model_->queryDensity(p); }, rng);
    }

    void quantizeWeights() override { model_->quantizeWeights(); }

    std::size_t paramCount() const override { return model_->paramCount(); }

  private:
    Config cfg_;
    std::unique_ptr<ModelT> model_;
    OccupancyGrid grid_;
    RaySampler sampler_;

    std::vector<RaySample> tape_samples_;
    std::vector<float> tape_sigmas_;
    std::vector<Vec3f> tape_rgbs_;
    std::vector<float> tape_dts_;
    std::vector<float> tape_dsigmas_;
    std::vector<Vec3f> tape_drgbs_;
    Vec3f tape_dir_;
    CompositeResult tape_result_;
    bool tape_valid_ = false;
    std::vector<RaySample> scratch_samples_;
    CompositeBackwardScratch composite_scratch_;
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_POINT_PIPELINE_H_
