/**
 * @file
 * Regenerates Fig. 5: (a) the arithmetic saving of Model Normalization
 * & Partitioning (18 DIV + 54 MUL + 54 ADD down to 3 MUL + 3 MAC per
 * intersection) and (c) the core-utilization gain of Dynamic Workload
 * Scheduling over the ray-by-ray baseline.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "chip/sampling_module.h"
#include "common/rng.h"
#include "nerf/camera.h"
#include "nerf/sampler.h"

using namespace fusion3d;

int
main()
{
    bench::banner("Fig. 5(a): op cost of ray/model intersection");

    const Ray ray({0.5f, 0.5f, -1.0f}, normalize(Vec3f{0.1f, 0.05f, 1.0f}));
    OpCounter generic_ops, fast_ops, fast_partitioned;
    (void)Aabb::unitCube().intersectGeneric(ray, &generic_ops);
    (void)Aabb::intersectUnitCube(ray, &fast_ops);
    fast_partitioned = fast_ops;
    for (int oct = 0; oct < 8; ++oct)
        (void)Aabb::intersectOctant(ray, oct, &fast_partitioned);

    std::printf("%-42s %6s %6s %6s %6s %10s\n", "Intersection path", "DIV", "MUL",
                "ADD", "MAC", "wtd cost");
    bench::rule(84);
    std::printf("%-42s %6llu %6llu %6llu %6llu %10llu\n",
                "Generic box (paper baseline, per ray)",
                (unsigned long long)generic_ops.divs, (unsigned long long)generic_ops.muls,
                (unsigned long long)generic_ops.adds, (unsigned long long)generic_ops.macs,
                (unsigned long long)generic_ops.weightedCost());
    std::printf("%-42s %6llu %6llu %6llu %6llu %10llu\n",
                "Normalized cube (T1-1, per ray)",
                (unsigned long long)fast_ops.divs, (unsigned long long)fast_ops.muls,
                (unsigned long long)fast_ops.adds, (unsigned long long)fast_ops.macs,
                (unsigned long long)fast_ops.weightedCost());
    std::printf("%-42s %6llu %6llu %6llu %6llu %10llu\n",
                "Normalized + all 8 octants (T1-1)",
                (unsigned long long)fast_partitioned.divs,
                (unsigned long long)fast_partitioned.muls,
                (unsigned long long)fast_partitioned.adds,
                (unsigned long long)fast_partitioned.macs,
                (unsigned long long)fast_partitioned.weightedCost());
    bench::rule(84);
    std::printf("Datapath cost reduction (single cube): %.1fx; even testing all nine\n"
                "boxes stays %.1fx cheaper than one generic intersection.\n\n",
                double(generic_ops.weightedCost()) / fast_ops.weightedCost(),
                double(generic_ops.weightedCost()) / fast_partitioned.weightedCost());

    bench::banner("Fig. 5(c): dynamic scheduling vs ray-by-ray baseline");

    // A realistic ray-cube pair population: 1-3 pairs per ray with
    // widely varying candidate counts (Sec. IV-A2: 3..100).
    Pcg32 rng(12, 5);
    std::vector<nerf::RayWorkload> rays;
    for (int i = 0; i < 4000; ++i) {
        nerf::RayWorkload wl;
        const int pairs = 1 + static_cast<int>(rng.nextBounded(3));
        for (int p = 0; p < pairs; ++p) {
            nerf::RayCubePair pair;
            pair.octant = p;
            pair.candidates = 3 + static_cast<int>(rng.nextBounded(98));
            pair.valid = pair.candidates / 3;
            wl.pairs.push_back(pair);
            wl.totalCandidates += pair.candidates;
            wl.totalValid += pair.valid;
        }
        rays.push_back(wl);
    }

    const chip::ChipConfig cfg = chip::ChipConfig::scaledUp();
    std::printf("%-26s %14s %14s\n", "Schedule", "Cycles", "Utilization");
    bench::rule(58);
    const struct
    {
        const char *name;
        chip::SamplingSchedule sched;
    } rows[] = {
        {"Ray-serial (baseline)", chip::SamplingSchedule::RaySerial},
        {"Dynamic (T1-2)", chip::SamplingSchedule::Dynamic},
        {"Per-pair greedy (bound)", chip::SamplingSchedule::PairGreedy},
    };
    chip::SamplingRunStats base{}, dyn{};
    for (const auto &row : rows) {
        const chip::SamplingModule mod(cfg, row.sched);
        const chip::SamplingRunStats s = mod.run(rays);
        if (row.sched == chip::SamplingSchedule::RaySerial)
            base = s;
        if (row.sched == chip::SamplingSchedule::Dynamic)
            dyn = s;
        std::printf("%-26s %14llu %13.1f%%\n", row.name,
                    static_cast<unsigned long long>(s.totalCycles),
                    s.utilization(cfg.samplingCores) * 100.0);
    }
    bench::rule(58);
    std::printf("Dynamic scheduling speedup over ray-serial: %.1fx; utilization "
                "%.0f%% -> %.0f%%.\n",
                double(base.totalCycles) / dyn.totalCycles,
                base.utilization(cfg.samplingCores) * 100.0,
                dyn.utilization(cfg.samplingCores) * 100.0);
    std::printf("Paper: more cores utilized instead of remaining idle (Fig. 5(c)).\n");

    // --- Bonus ablation: per-step occupancy probing vs DDA skipping ---
    bench::banner("Empty-space skipping: per-sample probing vs DDA cell walk");
    {
        // DDA pays one walk per grid cell crossed, so it wins when the
        // sampling lattice is finer than the grid (the Instant-NGP
        // regime: 1024 samples/ray over a 128^3 grid).
        const auto scene = scenes::makeSyntheticScene("mic");
        nerf::OccupancyGrid gate(32);
        Pcg32 gate_rng(9, 9);
        gate.update([&](const Vec3f &p) { return scene->density(p); }, gate_rng, 0.0f);

        nerf::SamplerConfig probe_cfg;
        probe_cfg.maxSamplesPerRay = 256;
        nerf::SamplerConfig dda_cfg = probe_cfg;
        dda_cfg.ddaSkip = true;

        const nerf::Camera cam = nerf::Camera::orbit({0.5f, 0.45f, 0.5f}, 1.4f, 25.0f,
                                                     20.0f, 45.0f, 128, 128);
        Pcg32 r1(10, 1), r2(10, 1);
        std::vector<nerf::RaySample> out;
        std::uint64_t probe_candidates = 0, dda_candidates = 0, dda_steps = 0;
        for (int i = 0; i < 2000; ++i) {
            const std::uint32_t pick = r1.nextBounded(128u * 128u);
            const Ray ray = cam.rayForPixel(static_cast<int>(pick % 128),
                                            static_cast<int>(pick / 128));
            nerf::RayWorkload wl;
            nerf::RaySampler(probe_cfg).sample(ray, &gate, r1, out, &wl);
            probe_candidates += static_cast<std::uint64_t>(wl.totalCandidates);
            nerf::RaySampler(dda_cfg).sample(ray, &gate, r2, out, &wl);
            dda_candidates += static_cast<std::uint64_t>(wl.totalCandidates);
            dda_steps += static_cast<std::uint64_t>(wl.ddaSteps);
        }
        std::printf("mic scene, 2000 rays: probing marches %llu lattice steps;\n"
                    "DDA marches %llu steps + %llu cell walks (%.1fx less core "
                    "work).\n",
                    static_cast<unsigned long long>(probe_candidates),
                    static_cast<unsigned long long>(dda_candidates),
                    static_cast<unsigned long long>(dda_steps),
                    static_cast<double>(probe_candidates) /
                        std::max<double>(1.0,
                                         static_cast<double>(dda_candidates + dda_steps)));
    }
    return 0;
}
