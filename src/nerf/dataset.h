/**
 * @file
 * A posed-image dataset: the (camera, ground-truth image) pairs a NeRF
 * trains from plus held-out test views for PSNR evaluation. The scenes
 * library generates these from analytic scenes with a reference
 * renderer, standing in for NeRF-Synthetic / NeRF-360 photographs.
 */

#ifndef FUSION3D_NERF_DATASET_H_
#define FUSION3D_NERF_DATASET_H_

#include <string>
#include <vector>

#include "common/image.h"
#include "nerf/camera.h"

namespace fusion3d::nerf
{

/** One posed ground-truth view. */
struct TrainView
{
    Camera camera;
    Image image;
};

/** A train/test split of posed views of one scene. */
struct Dataset
{
    std::string sceneName;
    std::vector<TrainView> train;
    std::vector<TrainView> test;

    /** Total ground-truth pixels across training views. */
    std::size_t
    trainPixelCount() const
    {
        std::size_t n = 0;
        for (const TrainView &v : train)
            n += static_cast<std::size_t>(v.image.pixelCount());
        return n;
    }
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_DATASET_H_
