/** @file Final cross-cutting property sweeps: sampler density invariants
 *  across step counts, chip throughput monotonicity across resource
 *  scaling, scene-dataset pipelines across every scene name, and the
 *  MoE/pipeline equivalence at one expert. */

#include <gtest/gtest.h>

#include "chip/chip.h"
#include "nerf/moe.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"
#include "scenes/factory.h"

namespace fusion3d
{
namespace
{

// ---------------------------------------------------------------------------
// Sampler invariants across step counts.
// ---------------------------------------------------------------------------

class SamplerSteps : public ::testing::TestWithParam<int>
{
};

TEST_P(SamplerSteps, CandidateCountTracksStepBudget)
{
    const int steps = GetParam();
    nerf::SamplerConfig cfg;
    cfg.maxSamplesPerRay = steps;
    cfg.jitter = false;
    const nerf::RaySampler sampler(cfg);
    Pcg32 rng(1);
    std::vector<nerf::RaySample> out;
    nerf::RayWorkload wl;
    // Straight through the cube: path length 1 of a sqrt(3) diagonal
    // budget -> about steps/sqrt(3) candidates.
    const Ray ray({0.5f, 0.5f, -1.0f}, {0.0f, 0.0f, 1.0f});
    sampler.sample(ray, nullptr, rng, out, &wl);
    const double expected = steps / 1.7320508;
    EXPECT_NEAR(wl.totalCandidates, expected, expected * 0.15 + 2.0);
    // Sample spacing equals the configured dt.
    for (std::size_t i = 1; i < out.size(); ++i)
        EXPECT_NEAR(out[i].t - out[i - 1].t, 1.7320508f / steps, 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(StepBudgets, SamplerSteps,
                         ::testing::Values(8, 16, 32, 64, 128, 256));

// ---------------------------------------------------------------------------
// Chip throughput scales with provisioned resources.
// ---------------------------------------------------------------------------

TEST(ChipScaling, MoreInterpCoresMoreThroughput)
{
    chip::WorkloadProfile wl;
    wl.rays = 10000;
    wl.candidates = wl.rays * 40;
    wl.validPoints = wl.rays * 16;
    wl.compositedPoints = wl.rays * 10;
    wl.levels = 8;
    wl.macsPerPoint = 2400;
    wl.avgGroupCycles = 1.0;
    chip::SamplingRunStats s1;
    s1.raysProcessed = wl.rays;
    s1.totalCycles = wl.candidates / 13;

    double prev = 0.0;
    for (int cores : {2, 5, 10, 20}) {
        chip::ChipConfig cfg = chip::ChipConfig::scaledUp();
        cfg.interpCores = cores;
        const chip::TechModel tech(cfg);
        const chip::PerfModel pm(cfg, tech);
        const double tput = pm.inference(wl, s1).throughputPointsPerSec;
        EXPECT_GE(tput, prev);
        prev = tput;
    }
}

TEST(ChipScaling, PrototypeSlowerThanScaledUp)
{
    nerf::PipelineConfig pc;
    pc.model.grid.levels = 6;
    pc.model.grid.log2TableSize = 12;
    nerf::NerfPipeline pipe(pc);
    const nerf::Camera cam =
        nerf::Camera::orbit({0.5f, 0.5f, 0.5f}, 1.4f, 15.0f, 20.0f, 45.0f, 128, 128);

    const auto proto =
        chip::Chip(chip::ChipConfig::prototype()).evaluateInference(pipe, cam, 256);
    const auto scaled =
        chip::Chip(chip::ChipConfig::scaledUp()).evaluateInference(pipe, cam, 256);
    EXPECT_GT(scaled.perf.throughputPointsPerSec, proto.perf.throughputPointsPerSec);
}

// ---------------------------------------------------------------------------
// Every scene builds a dataset the trainer accepts.
// ---------------------------------------------------------------------------

class AllScenes : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllScenes, DatasetPipelineRoundTrip)
{
    const std::string name = GetParam();
    const bool is360 =
        std::find(scenes::nerf360SceneNames().begin(), scenes::nerf360SceneNames().end(),
                  name) != scenes::nerf360SceneNames().end();
    const auto scene =
        is360 ? scenes::makeNerf360Scene(name) : scenes::makeSyntheticScene(name);

    scenes::DatasetConfig dc = is360 ? scenes::nerf360Rig(12) : scenes::syntheticRig(12);
    dc.trainViews = 3;
    dc.testViews = 1;
    dc.reference.steps = 32;
    const nerf::Dataset ds = scenes::makeDataset(*scene, dc);
    ASSERT_GE(ds.train.size(), 3u);
    ASSERT_EQ(ds.test.size(), 1u);

    // One training iteration must run without tripping any invariant.
    nerf::PipelineConfig pc;
    pc.model.grid.levels = 4;
    pc.model.grid.log2TableSize = 10;
    pc.model.densityHidden = 8;
    pc.model.colorHidden = 8;
    pc.model.geoFeatures = 7;
    pc.model.shDegree = 2;
    pc.sampler.maxSamplesPerRay = 12;
    pc.occupancyResolution = 8;
    nerf::NerfPipeline pipe(pc);
    nerf::TrainerConfig tc;
    tc.iterations = 1;
    tc.raysPerBatch = 16;
    nerf::Trainer trainer(pipe, ds, tc);
    trainer.trainIteration();
    EXPECT_EQ(trainer.iteration(), 1);
}

INSTANTIATE_TEST_SUITE_P(Synthetic, AllScenes,
                         ::testing::Values("chair", "drums", "ficus", "hotdog", "lego",
                                           "materials", "mic", "ship", "tractor"));
INSTANTIATE_TEST_SUITE_P(Nerf360, AllScenes,
                         ::testing::Values("bicycle", "bonsai", "counter", "garden",
                                           "kitchen", "room", "stump"));

// ---------------------------------------------------------------------------
// A one-expert MoE degenerates to the plain pipeline.
// ---------------------------------------------------------------------------

TEST(MoeDegenerate, SingleExpertMatchesPlainPipeline)
{
    nerf::PipelineConfig pc;
    pc.model.grid.levels = 4;
    pc.model.grid.log2TableSize = 10;
    pc.model.densityHidden = 8;
    pc.model.colorHidden = 8;
    pc.model.geoFeatures = 7;
    pc.model.shDegree = 2;
    pc.sampler.maxSamplesPerRay = 16;
    pc.sampler.jitter = false;
    pc.occupancyResolution = 8;
    pc.render.background = Vec3f(0.0f);

    nerf::MoeConfig mc;
    mc.numExperts = 1;
    mc.expert = pc;
    mc.seed = pc.seed; // expert k=0 gets seed + 0: identical init
    nerf::MoeNerf moe(mc);
    nerf::NerfPipeline plain(pc);

    Pcg32 rng_a(5), rng_b(5);
    for (int i = 0; i < 50; ++i) {
        const Ray ray({0.2f + 0.01f * static_cast<float>(i), 0.4f, -1.0f},
                      {0.0f, 0.1f, 1.0f});
        const nerf::RayEval a = moe.traceRay(ray, rng_a, false);
        const nerf::RayEval b = plain.traceRay(ray, rng_b, false);
        EXPECT_EQ(a.samples, b.samples);
        EXPECT_NEAR(a.color.x, b.color.x, 1e-5f);
        EXPECT_NEAR(a.transmittance, b.transmittance, 1e-5f);
    }
}

} // namespace
} // namespace fusion3d
