/**
 * @file
 * Property tests for the log2-bucket quantile estimator
 * (obs::Quantiles): on *any* positive-valued distribution, every
 * reported quantile must sit within one sub-bucket of the true value —
 * a relative error bound of 1/kSubBuckets. The distributions here are
 * chosen to be adversarial for a log-bucketed sketch: bimodal with a
 * 6-decade gap, heavy-tail Pareto, values clustered just around
 * power-of-two bucket boundaries, and near-constant streams.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "obs/quantiles.h"

using namespace fusion3d;

namespace
{

/** The estimator's documented relative error: half a bucket either
 *  way, i.e. one part in kSubBuckets of the value. */
constexpr double kBound = 1.0 / obs::Quantiles::kSubBuckets;

/** Exact ceil-rank quantile over the sample set, matching the
 *  estimator's rank convention. */
double
exactQuantile(std::vector<double> values, double q)
{
    std::sort(values.begin(), values.end());
    const auto n = static_cast<double>(values.size());
    const std::size_t rank =
        static_cast<std::size_t>(std::max(1.0, std::ceil(q * n)));
    return values[std::min(rank, values.size()) - 1];
}

/**
 * Feed @p values into a fresh estimator and assert every probed
 * quantile is within the relative bound of the exact answer.
 */
void
expectWithinBound(const std::vector<double> &values, const char *label)
{
    obs::Quantiles est;
    for (const double v : values)
        est.sample(v);
    for (const double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99,
                           0.999}) {
        const double exact = exactQuantile(values, q);
        const double approx = est.quantile(q);
        // Bucket midpoints can land on either side of the exact value;
        // allow the full one-sub-bucket relative slack both ways.
        EXPECT_NEAR(approx, exact, std::abs(exact) * kBound)
            << label << " q=" << q << " exact=" << exact
            << " approx=" << approx;
    }
}

} // namespace

TEST(QuantilesProperty, BimodalSixDecadeGap)
{
    // Fast path ~1 us, stall path ~1 s: the classic latency bimode. A
    // linear-bucket histogram fails this; the log sketch must not.
    Pcg32 rng(1234, 1);
    std::vector<double> values;
    for (int i = 0; i < 20000; ++i) {
        const bool slow = rng.nextFloat() < 0.05f;
        const double base = slow ? 1e6 : 1.0;
        values.push_back(base * (0.5 + static_cast<double>(rng.nextFloat())));
    }
    expectWithinBound(values, "bimodal");
}

TEST(QuantilesProperty, ParetoHeavyTail)
{
    // Pareto(alpha=1.2): infinite variance, the tail quantiles span
    // decades. Inverse-CDF sampling from uniform.
    Pcg32 rng(99, 7);
    std::vector<double> values;
    for (int i = 0; i < 20000; ++i) {
        double u = static_cast<double>(rng.nextFloat());
        u = std::max(u, 1e-7); // avoid the infinite 1/0 tail sample
        values.push_back(std::pow(u, -1.0 / 1.2));
    }
    expectWithinBound(values, "pareto");
}

TEST(QuantilesProperty, ClusteredAtBucketBoundaries)
{
    // Values jittered tightly around powers of two — each cluster
    // straddles an octave boundary, the worst case for bucket-midpoint
    // reconstruction.
    Pcg32 rng(7, 3);
    std::vector<double> values;
    for (int i = 0; i < 20000; ++i) {
        const int octave = static_cast<int>(rng.nextBounded(12));
        const double center = std::ldexp(1.0, octave);
        const double jitter =
            1.0 + 1e-3 * (static_cast<double>(rng.nextFloat()) - 0.5);
        values.push_back(center * jitter);
    }
    expectWithinBound(values, "boundaries");
}

TEST(QuantilesProperty, NearConstantStream)
{
    Pcg32 rng(42, 42);
    std::vector<double> values;
    for (int i = 0; i < 5000; ++i)
        values.push_back(3.7 * (1.0 + 1e-6 * static_cast<double>(
                                            rng.nextFloat())));
    expectWithinBound(values, "constant");
}

TEST(QuantilesProperty, TinyAndHugeMagnitudes)
{
    // Exercise the octave clamp range without leaving it: 2^-30..2^30.
    Pcg32 rng(5, 11);
    std::vector<double> values;
    for (int i = 0; i < 20000; ++i) {
        const int octave = static_cast<int>(rng.nextBounded(61)) - 30;
        values.push_back(std::ldexp(1.0 + static_cast<double>(rng.nextFloat()),
                                    octave));
    }
    expectWithinBound(values, "magnitudes");
}

TEST(QuantilesProperty, MedianOfSmallSets)
{
    // Exactness degenerates gracefully at tiny n: a single sample must
    // be reported (within bound) at every quantile.
    obs::Quantiles est;
    est.sample(8.5);
    for (const double q : {0.0, 0.5, 0.99})
        EXPECT_NEAR(est.quantile(q), 8.5, 8.5 * kBound) << "q=" << q;
}

TEST(QuantilesProperty, ResetClears)
{
    obs::Quantiles est;
    for (int i = 0; i < 100; ++i)
        est.sample(1000.0);
    est.reset();
    EXPECT_EQ(est.count(), 0u);
    est.sample(2.0);
    EXPECT_NEAR(est.quantile(0.5), 2.0, 2.0 * kBound);
}
