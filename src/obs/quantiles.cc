#include "obs/quantiles.h"

#include <algorithm>
#include <cmath>

namespace fusion3d::obs
{

int
Quantiles::bucketIndex(double v)
{
    if (!(v > 0.0)) // also catches NaN
        return 0;
    int exp = 0;
    const double frac2 = std::frexp(v, &exp); // v = frac2 * 2^exp, frac2 in [0.5, 1)
    const int octave = exp - 1;               // v in [2^octave, 2^(octave+1))
    if (octave < kMinOctave)
        return 0;
    if (octave >= kMaxOctave)
        return kBuckets - 1;
    // frac2*2 is in [1, 2): linear position inside the octave.
    int sub = static_cast<int>((frac2 * 2.0 - 1.0) * kSubBuckets);
    sub = std::min(std::max(sub, 0), kSubBuckets - 1);
    return (octave - kMinOctave) * kSubBuckets + sub;
}

double
Quantiles::bucketMidpoint(int index)
{
    const int octave = kMinOctave + index / kSubBuckets;
    const int sub = index % kSubBuckets;
    const double lo = 1.0 + static_cast<double>(sub) / kSubBuckets;
    const double width = 1.0 / kSubBuckets;
    return std::ldexp(lo + width / 2.0, octave);
}

void
Quantiles::sample(double v, std::uint64_t weight)
{
    buckets_[static_cast<std::size_t>(bucketIndex(v))] += weight;
    count_ += weight;
}

void
Quantiles::reset()
{
    buckets_.fill(0);
    count_ = 0;
}

double
Quantiles::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    // Rank of the order statistic we report, 1-based.
    std::uint64_t rank =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
    rank = std::max<std::uint64_t>(rank, 1);
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += buckets_[static_cast<std::size_t>(i)];
        if (seen >= rank)
            return bucketMidpoint(i);
    }
    return bucketMidpoint(kBuckets - 1);
}

} // namespace fusion3d::obs
