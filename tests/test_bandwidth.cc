/** @file Parameterized sweeps of the bandwidth/data-volume model (the
 *  Fig. 3 / Table I / Fig. 13(b) machinery). */

#include <gtest/gtest.h>

#include "chip/perf_model.h"

namespace fusion3d::chip
{
namespace
{

class BoundaryOrdering : public ::testing::TestWithParam<double>
{
};

TEST_P(BoundaryOrdering, CoverageStrictlyReducesBandwidth)
{
    const double table_kb = GetParam();
    const double bytes = table_kb * 1024.0;
    BandwidthModel bm;
    const double e2e = bm.requiredBandwidthGBs(CoverageBoundary::EndToEnd, bytes);
    const double s23 = bm.requiredBandwidthGBs(CoverageBoundary::Stage23, bytes);
    const double s2 = bm.requiredBandwidthGBs(CoverageBoundary::Stage2Only, bytes);
    // More coverage -> strictly less off-chip traffic, at every size.
    EXPECT_LT(e2e, s23);
    EXPECT_LT(s23, s2);
    EXPECT_GT(e2e, 0.0);
}

INSTANTIATE_TEST_SUITE_P(TableSizes, BoundaryOrdering,
                         ::testing::Values(128.0, 256.0, 640.0, 1024.0, 4096.0,
                                           16384.0, 65536.0));

TEST(BandwidthModel, MonotoneInModelSize)
{
    BandwidthModel bm;
    double prev = 0.0;
    for (double kb = 64.0; kb <= 65536.0; kb *= 2.0) {
        const double need =
            bm.requiredBandwidthGBs(CoverageBoundary::EndToEnd, kb * 1024.0);
        EXPECT_GE(need, prev - 1e-12);
        prev = need;
    }
}

TEST(BandwidthModel, ScalesWithThroughput)
{
    BandwidthModel slow;
    slow.samplesPerSec = 1e8;
    BandwidthModel fast;
    fast.samplesPerSec = 4e8;
    EXPECT_NEAR(fast.interStageGBs(), 4.0 * slow.interStageGBs(), 1e-9);
    EXPECT_NEAR(fast.intraStageGBs(), 4.0 * slow.intraStageGBs(), 1e-9);
}

TEST(BandwidthModel, VolumeScalesWithModelWidth)
{
    BandwidthModel narrow;
    narrow.levels = 8;
    BandwidthModel wide;
    wide.levels = 16;
    EXPECT_GT(wide.totalIntermediateGb(), narrow.totalIntermediateGb());
}

TEST(BandwidthModel, OnchipTablesNeedOnlyIo)
{
    BandwidthModel bm;
    const double fits =
        bm.requiredBandwidthGBs(CoverageBoundary::EndToEnd, bm.onchipTableBytes);
    EXPECT_NEAR(fits, bm.ioGb() / bm.trainSeconds * 1.7, 1e-9);
}

TEST(BandwidthModel, SpillFractionApproachesFullTraffic)
{
    BandwidthModel bm;
    const double huge = bm.spillGBs(1e12);
    const double access_traffic =
        bm.samplesPerSec * 8.0 * bm.levels * bm.featuresPerLevel * 2.0 / 1e9;
    // With a vanishing on-chip share, spill tends to traffic x locality.
    EXPECT_NEAR(huge, access_traffic * 0.14, access_traffic * 0.01);
}

class StageRatio : public ::testing::TestWithParam<int>
{
};

TEST_P(StageRatio, TrainingToInferenceStaysNearThree)
{
    // The Stage-II three-slot update fixes the ratio regardless of the
    // workload's level count.
    const int levels = GetParam();
    const ChipConfig cfg = ChipConfig::scaledUp();
    const TechModel tech(cfg);
    const PerfModel pm(cfg, tech);

    WorkloadProfile wl;
    wl.rays = 100000;
    wl.candidates = wl.rays * 40;
    wl.validPoints = wl.rays * 16;
    wl.compositedPoints = wl.rays * 12;
    wl.levels = levels;
    wl.macsPerPoint = 2400;
    wl.avgGroupCycles = 1.0;

    SamplingRunStats s1;
    s1.raysProcessed = wl.rays;
    s1.totalCycles = wl.candidates / 13;

    const ChipRunResult inf = pm.inference(wl, s1);
    const ChipRunResult trn = pm.training(wl, s1);
    // Stage II dominates at high level counts -> ratio -> 3; at low
    // level counts other stages cap it from below 3.
    const double ratio = static_cast<double>(trn.totalCycles) / inf.totalCycles;
    EXPECT_GE(ratio, 1.4);
    EXPECT_LE(ratio, 3.2);
    if (levels >= 8) {
        EXPECT_NEAR(ratio, 3.0, 0.4);
    }
}

INSTANTIATE_TEST_SUITE_P(Levels, StageRatio, ::testing::Values(2, 4, 8, 12, 16));

} // namespace
} // namespace fusion3d::chip
