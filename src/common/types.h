/**
 * @file
 * Fundamental scalar type aliases shared across all Fusion-3D libraries.
 */

#ifndef FUSION3D_COMMON_TYPES_H_
#define FUSION3D_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace fusion3d
{

/** Simulation time expressed in clock cycles of the owning clock domain. */
using Cycles = std::uint64_t;

/** Number of bytes, used by all traffic / bandwidth accounting. */
using Bytes = std::uint64_t;

/** Identifier of a hardware resource instance (core, bank, chip, ...). */
using ResourceId = std::uint32_t;

/** An invalid / not-yet-assigned resource id. */
inline constexpr ResourceId kInvalidResource = 0xffffffffu;

} // namespace fusion3d

#endif // FUSION3D_COMMON_TYPES_H_
