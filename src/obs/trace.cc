#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

#include "obs/flight_recorder.h"

namespace fusion3d::obs
{

namespace
{

thread_local TraceContext t_context;

} // namespace

const TraceContext &
currentTraceContext()
{
    return t_context;
}

void
setCurrentTraceContext(const TraceContext &ctx)
{
    t_context = ctx;
}

std::uint64_t
traceExchangeParent(std::uint64_t parent_span_id)
{
    const std::uint64_t prev = t_context.parentSpanId;
    t_context.parentSpanId = parent_span_id;
    return prev;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

std::uint64_t
Tracer::nowNs() const
{
    return toNs(std::chrono::steady_clock::now());
}

std::uint64_t
Tracer::toNs(std::chrono::steady_clock::time_point tp) const
{
    if (tp <= epoch_)
        return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_)
            .count());
}

Tracer::ThreadBuffer &
Tracer::localBuffer()
{
    // The registry owns every buffer for the process lifetime, so the
    // raw thread_local pointer stays valid even after its thread exits
    // and writeChromeTrace() can walk buffers of joined threads.
    thread_local ThreadBuffer *buffer = nullptr;
    if (!buffer) {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        buffers_.push_back(std::make_unique<ThreadBuffer>(
            static_cast<std::uint32_t>(buffers_.size())));
        buffer = buffers_.back().get();
    }
    return *buffer;
}

void
Tracer::record(const char *category, const char *name, std::uint64_t t0_ns,
               std::uint64_t t1_ns)
{
    if (!capturing())
        return;
    recordSpan(category, name, t0_ns, t1_ns, nextSpanId(),
               t_context.parentSpanId, 0, false);
}

void
Tracer::recordArg(const char *category, const char *name, std::uint64_t t0_ns,
                  std::uint64_t t1_ns, std::uint64_t arg)
{
    if (!capturing())
        return;
    recordSpan(category, name, t0_ns, t1_ns, nextSpanId(),
               t_context.parentSpanId, arg, true);
}

void
Tracer::recordSpan(const char *category, const char *name, std::uint64_t t0_ns,
                   std::uint64_t t1_ns, std::uint64_t span_id,
                   std::uint64_t parent_id, std::uint64_t arg, bool has_arg)
{
    const unsigned mask = capture_.load(std::memory_order_relaxed);
    if (!mask)
        return;
    TraceEvent ev;
    ev.category = category;
    ev.name = name;
    ev.t0Ns = t0_ns;
    ev.t1Ns = t1_ns;
    ev.arg = arg;
    ev.hasArg = has_arg;
    ev.requestId = t_context.requestId;
    ev.spanId = span_id;
    ev.parentId = parent_id;
    if (mask & kCaptureTrace) {
        ThreadBuffer &buf = localBuffer();
        const std::size_t n = buf.size.load(std::memory_order_relaxed);
        if (n >= kThreadCapacity) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
        } else {
            buf.events[n] = ev;
            // Publish: readers acquire `size`, then read slots < n+1.
            buf.size.store(n + 1, std::memory_order_release);
        }
    }
    if (mask & kCaptureFlight)
        FlightRecorder::instance().recordEvent(ev);
}

void
Tracer::recordInstant(const char *category, const char *name)
{
    if (!capturing())
        return;
    const std::uint64_t now = nowNs();
    record(category, name, now, now);
}

std::size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(registry_mutex_);
    std::size_t n = 0;
    for (const auto &buf : buffers_)
        n += buf->size.load(std::memory_order_acquire);
    return n;
}

std::uint64_t
Tracer::dropped() const
{
    return dropped_.load(std::memory_order_relaxed);
}

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(registry_mutex_);
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    char line[384];
    bool first = true;
    std::uint64_t dropped_total = dropped_.load(std::memory_order_relaxed);
    for (const auto &buf : buffers_) {
        const std::size_t n = buf->size.load(std::memory_order_acquire);
        for (std::size_t i = 0; i < n; ++i) {
            const TraceEvent &ev = buf->events[i];
            // Complete ("X") events; ts/dur are microseconds (double).
            std::snprintf(line, sizeof(line),
                          "%s{\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                          "\"cat\":\"%s\",\"name\":\"%s\","
                          "\"ts\":%.3f,\"dur\":%.3f",
                          first ? "" : ",", buf->tid, ev.category, ev.name,
                          static_cast<double>(ev.t0Ns) / 1e3,
                          static_cast<double>(ev.t1Ns - ev.t0Ns) / 1e3);
            os << line;
            if (ev.hasArg || ev.requestId != 0) {
                os << ",\"args\":{";
                bool first_arg = true;
                if (ev.hasArg) {
                    std::snprintf(line, sizeof(line), "\"value\":%" PRIu64,
                                  ev.arg);
                    os << line;
                    first_arg = false;
                }
                if (ev.requestId != 0) {
                    std::snprintf(line, sizeof(line),
                                  "%s\"req\":%" PRIu64 ",\"span\":%" PRIu64
                                  ",\"parent\":%" PRIu64,
                                  first_arg ? "" : ",", ev.requestId, ev.spanId,
                                  ev.parentId);
                    os << line;
                }
                os << '}';
            }
            os << '}';
            first = false;
        }
    }
    // Trailing metadata (ignored by Perfetto, read by tools/f3d_trace).
    std::snprintf(line, sizeof(line), "],\"f3dDroppedSpans\":%" PRIu64 "}\n",
                  dropped_total);
    os << line;
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::lock_guard<std::mutex> lock(registry_mutex_);
    std::vector<TraceEvent> out;
    for (const auto &buf : buffers_) {
        const std::size_t n = buf->size.load(std::memory_order_acquire);
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(buf->events[i]);
    }
    return out;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(registry_mutex_);
    // Buffers stay registered (thread_local pointers reference them);
    // only the published sizes are rewound. The caller guarantees no
    // thread is concurrently recording.
    for (auto &buf : buffers_)
        buf->size.store(0, std::memory_order_release);
    dropped_.store(0, std::memory_order_relaxed);
}

} // namespace fusion3d::obs
