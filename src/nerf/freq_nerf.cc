#include "nerf/freq_nerf.h"

#include <cmath>

#include "common/logging.h"
#include "common/quant.h"
#include "nerf/sh_encoding.h"

namespace fusion3d::nerf
{

namespace
{

constexpr float kPi = 3.14159265358979323846f;

AdamConfig
adamFor(float lr)
{
    AdamConfig cfg;
    cfg.lr = lr;
    cfg.beta1 = 0.9f;
    cfg.beta2 = 0.99f;
    cfg.epsilon = 1e-15f;
    return cfg;
}

} // namespace

void
freqEncode(const Vec3f &p, int frequencies, std::span<float> out)
{
    const std::size_t need = 3 + 3 * 2 * static_cast<std::size_t>(frequencies);
    if (out.size() < need)
        panic("freqEncode: output span too small");
    out[0] = p.x;
    out[1] = p.y;
    out[2] = p.z;
    std::size_t at = 3;
    float scale = kPi;
    for (int k = 0; k < frequencies; ++k) {
        for (int axis = 0; axis < 3; ++axis) {
            const float v = p[axis] * scale;
            out[at++] = std::sin(v);
            out[at++] = std::cos(v);
        }
        scale *= 2.0f;
    }
}

FreqNerfModel::FreqNerfModel(const FreqNerfConfig &cfg, std::uint64_t seed)
    : cfg_(cfg),
      adam_trunk_(),
      adam_color_()
{
    if (cfg.posFrequencies < 1 || cfg.trunkLayers < 1)
        fatal("FreqNerfModel: invalid configuration");

    std::vector<int> trunk_sizes;
    trunk_sizes.push_back(cfg.posDims());
    for (int l = 0; l < cfg.trunkLayers; ++l)
        trunk_sizes.push_back(cfg.hidden);
    trunk_sizes.push_back(1 + cfg.geoFeatures);
    trunk_ = std::make_unique<Mlp>(trunk_sizes, seed);

    color_net_ = std::make_unique<Mlp>(
        std::vector<int>{cfg.geoFeatures + cfg.shDims(), cfg.colorHidden, 3},
        seed + 3);

    adam_trunk_ = Adam(trunk_->paramCount(), adamFor(2e-3f));
    adam_color_ = Adam(color_net_->paramCount(), adamFor(2e-3f));

    encoded_.resize(static_cast<std::size_t>(cfg.posDims()));
    sh_.resize(static_cast<std::size_t>(cfg.shDims()));
    color_in_.resize(static_cast<std::size_t>(cfg.geoFeatures + cfg.shDims()));
    dtrunk_out_.resize(static_cast<std::size_t>(1 + cfg.geoFeatures));
    dcolor_out_.resize(3);
    trunk_ws_ = trunk_->makeWorkspace();
    color_ws_ = color_net_->makeWorkspace();
}

float
FreqNerfModel::queryDensity(const Vec3f &pos)
{
    freqEncode(pos, cfg_.posFrequencies, encoded_);
    const std::span<const float> out = trunk_->forward(encoded_, trunk_ws_);
    raw_sigma_ = out[0];
    return NerfModel::densityActivation(raw_sigma_);
}

PointEval
FreqNerfModel::forwardPoint(const Vec3f &pos, const Vec3f &dir)
{
    PointEval pe;
    pe.sigma = queryDensity(pos);

    const std::span<const float> trunk_out = trunk_ws_.activations.back();
    for (int i = 0; i < cfg_.geoFeatures; ++i)
        color_in_[static_cast<std::size_t>(i)] =
            trunk_out[static_cast<std::size_t>(i) + 1];
    shEncode(dir, cfg_.shDegree, sh_);
    for (int i = 0; i < cfg_.shDims(); ++i)
        color_in_[static_cast<std::size_t>(cfg_.geoFeatures + i)] =
            sh_[static_cast<std::size_t>(i)];

    const std::span<const float> out = color_net_->forward(color_in_, color_ws_);
    for (int i = 0; i < 3; ++i) {
        const float r = out[static_cast<std::size_t>(i)];
        pe.rgb.at(i) = r >= 0.0f ? 1.0f / (1.0f + std::exp(-r))
                                 : std::exp(r) / (1.0f + std::exp(r));
    }
    return pe;
}

void
FreqNerfModel::backwardPoint(const Vec3f &pos, const Vec3f &dir, float dsigma,
                             const Vec3f &drgb)
{
    const PointEval pe = forwardPoint(pos, dir); // refresh caches

    for (int i = 0; i < 3; ++i) {
        const float s = pe.rgb[i];
        dcolor_out_[static_cast<std::size_t>(i)] = drgb[i] * s * (1.0f - s);
    }
    color_net_->backward(dcolor_out_, color_ws_);

    dtrunk_out_[0] = dsigma * NerfModel::densityActivationGrad(raw_sigma_, pe.sigma);
    for (int i = 0; i < cfg_.geoFeatures; ++i)
        dtrunk_out_[static_cast<std::size_t>(i) + 1] =
            color_ws_.dinput[static_cast<std::size_t>(i)];
    trunk_->backward(dtrunk_out_, trunk_ws_);
    // The positional encoding has no parameters; gradients stop here.
}

void
FreqNerfModel::zeroGrads()
{
    trunk_->zeroGrads();
    color_net_->zeroGrads();
}

void
FreqNerfModel::optimizerStep(float lr_trunk, float lr_color)
{
    adam_trunk_.setLearningRate(lr_trunk);
    adam_color_.setLearningRate(lr_color);
    adam_trunk_.step(trunk_->params(), trunk_->grads());
    adam_color_.step(color_net_->params(), color_net_->grads());
}

void
FreqNerfModel::quantizeWeights()
{
    fakeQuantizeInPlace(trunk_->params());
    fakeQuantizeInPlace(color_net_->params());
}

std::size_t
FreqNerfModel::paramCount() const
{
    return trunk_->paramCount() + color_net_->paramCount();
}

std::uint64_t
FreqNerfModel::macsPerPoint() const
{
    return trunk_->forwardMacs() + color_net_->forwardMacs();
}

} // namespace fusion3d::nerf
