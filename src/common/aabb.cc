#include "common/aabb.h"

#include <algorithm>
#include <cmath>

namespace fusion3d
{

namespace
{

/** Intersect [a0,a1] with [b0,b1]; empty intervals become a0 > a1. */
void
clipSpan(float &t0, float &t1, float lo_t, float hi_t)
{
    if (lo_t > hi_t)
        std::swap(lo_t, hi_t);
    t0 = std::max(t0, lo_t);
    t1 = std::min(t1, hi_t);
}

std::optional<RaySpan>
slabIntersect(const Ray &ray, const Vec3f &lo, const Vec3f &hi)
{
    float t0 = 0.0f;
    float t1 = std::numeric_limits<float>::infinity();
    for (int axis = 0; axis < 3; ++axis) {
        const float o = ray.origin[axis];
        const float inv = ray.invDir[axis];
        if (std::isinf(inv)) {
            // Ray parallel to this slab: miss unless origin lies inside.
            if (o < lo[axis] || o > hi[axis])
                return std::nullopt;
            continue;
        }
        clipSpan(t0, t1, (lo[axis] - o) * inv, (hi[axis] - o) * inv);
        if (t0 > t1)
            return std::nullopt;
    }
    return RaySpan{t0, t1};
}

} // namespace

std::optional<RaySpan>
Aabb::intersectGeneric(const Ray &ray, OpCounter *ops) const
{
    if (ops) {
        // Baseline cost of solving the six plane equations for an
        // arbitrary box (Sec. IV-A, citing [26]): per plane one division
        // of the plane offset by the direction component plus the
        // in-plane point evaluation and two containment comparisons.
        ops->divs += 18;
        ops->muls += 54;
        ops->adds += 54;
        ops->cmps += 12;
    }
    return slabIntersect(ray, lo, hi);
}

std::optional<RaySpan>
Aabb::intersectUnitCube(const Ray &ray, OpCounter *ops)
{
    if (ops) {
        // Normalized fast path (Technique T1-1): with bounds fixed at
        // {0,1}, t_lo = -o * invDir is one multiply per axis and
        // t_hi = (1 - o) * invDir folds into one MAC per axis.
        ops->muls += 3;
        ops->macs += 3;
        ops->cmps += 6;
    }
    return slabIntersect(ray, Vec3f(0.0f), Vec3f(1.0f));
}

std::optional<RaySpan>
Aabb::intersectOctant(const Ray &ray, int octant, OpCounter *ops)
{
    if (ops) {
        // Same folded-constant structure as the unit cube: bounds are
        // {0, 0.5} or {0.5, 1} per axis, still one MUL + one MAC each.
        ops->muls += 3;
        ops->macs += 3;
        ops->cmps += 6;
    }
    const Vec3f lo{(octant & 1) ? 0.5f : 0.0f,
                   (octant & 2) ? 0.5f : 0.0f,
                   (octant & 4) ? 0.5f : 0.0f};
    const Vec3f hi{lo.x + 0.5f, lo.y + 0.5f, lo.z + 0.5f};
    return slabIntersect(ray, lo, hi);
}

} // namespace fusion3d
