/**
 * @file
 * The Memory Clusters of Fig. 4(a): shared SRAM spaces between the
 * three computing modules with software-configurable connections that
 * implement a ping-pong (double-buffer) hand-off — Stage N fills one
 * buffer while Stage N+1 drains the other, which is what lets the
 * macro-pipeline run without off-chip spills for intermediate data.
 */

#ifndef FUSION3D_CHIP_MEMORY_CLUSTER_H_
#define FUSION3D_CHIP_MEMORY_CLUSTER_H_

#include <cstdint>
#include <string>

#include "chip/config.h"
#include "common/types.h"

namespace fusion3d::chip
{

/** Result of planning a batch through the ping-pong buffers. */
struct BufferPlan
{
    /** Bytes one stage hand-off carries per batch. */
    Bytes batchBytes = 0;
    /** Capacity of one ping-pong half. */
    Bytes halfCapacity = 0;
    /** True if the batch fits on-chip (no off-chip spill needed). */
    bool fits = false;
    /** Bytes that would spill off-chip per batch when it does not fit. */
    Bytes spillBytes = 0;
};

/**
 * One memory cluster: a SRAM pool split into two ping-pong halves per
 * stage boundary it serves.
 */
class MemoryCluster
{
  public:
    /**
     * @param cfg         Chip configuration (per-cluster capacity).
     * @param boundaries  Stage boundaries this cluster serves (the
     *                    capacity is divided among them, then halved
     *                    for ping-pong).
     */
    explicit MemoryCluster(const ChipConfig &cfg, int boundaries = 2)
        : capacity_bytes_(static_cast<Bytes>(cfg.sramPerClusterKb) * 1024),
          boundaries_(boundaries)
    {}

    Bytes capacityBytes() const { return capacity_bytes_; }

    /** Capacity of one ping-pong half for one boundary. */
    Bytes
    halfCapacity() const
    {
        return capacity_bytes_ / (2 * static_cast<Bytes>(boundaries_));
    }

    /**
     * Plan a hand-off of @p points samples carrying @p bytes_per_point
     * each across one stage boundary.
     */
    BufferPlan
    plan(std::uint64_t points, std::uint32_t bytes_per_point) const
    {
        BufferPlan p;
        p.batchBytes = points * bytes_per_point;
        p.halfCapacity = halfCapacity();
        p.fits = p.batchBytes <= p.halfCapacity;
        p.spillBytes = p.fits ? 0 : p.batchBytes - p.halfCapacity;
        return p;
    }

    /**
     * Largest batch (in points) that fits one ping-pong half at
     * @p bytes_per_point. The controller sizes ray batches with this.
     */
    std::uint64_t
    maxBatchPoints(std::uint32_t bytes_per_point) const
    {
        if (bytes_per_point == 0)
            return 0;
        return halfCapacity() / bytes_per_point;
    }

  private:
    Bytes capacity_bytes_;
    int boundaries_;
};

} // namespace fusion3d::chip

#endif // FUSION3D_CHIP_MEMORY_CLUSTER_H_
