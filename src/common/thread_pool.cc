#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "obs/trace.h"

namespace fusion3d
{

ThreadPool::ThreadPool(int threads)
{
    if (threads < 0)
        fatal("ThreadPool: negative thread count %d", threads);
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
    // Workers drained the queue before exiting; finish any remainder
    // (possible only on a zero-thread pool) inline.
    while (runOne()) {
    }
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Capture the submitter's trace context so the task's spans
        // attribute to the request that caused the work.
        queue_.push_back({std::move(task), obs::currentTraceContext()});
    }
    cv_.notify_one();
}

void
ThreadPool::runTask(Task &task)
{
    // Restore the enqueue-time context even when this thread is merely
    // helping (runOne() inside another request's wait): span ownership
    // follows the work, not the executing thread.
    obs::ScopedTraceContext ctx(task.ctx);
    F3D_TRACE_SPAN("thread_pool", "task");
    task.fn();
}

bool
ThreadPool::runOne()
{
    Task task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        task = std::move(queue_.front());
        queue_.pop_front();
    }
    runTask(task);
    return true;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and nothing left to do
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        runTask(task);
    }
}

void
ThreadPool::parallelFor(int begin, int end,
                        const std::function<void(int, int)> &body, int grain)
{
    if (begin >= end)
        return;
    grain = std::max(grain, 1);

    // Shared chunk cursor + completion accounting. Heap-allocated so
    // helper tasks outliving an exceptional unwind stay valid.
    struct State
    {
        std::atomic<int> next;
        std::atomic<int> live_chunks;
        int end;
        int grain;
        const std::function<void(int, int)> *body;
        std::mutex mutex;
        std::exception_ptr error;
        std::condition_variable done;
    };
    auto st = std::make_shared<State>();
    st->next.store(begin);
    const int chunks = (end - begin + grain - 1) / grain;
    st->live_chunks.store(chunks);
    st->end = end;
    st->grain = grain;
    st->body = &body;

    const auto run_chunks = [st]() {
        for (;;) {
            const int b = st->next.fetch_add(st->grain);
            if (b >= st->end)
                return;
            const int e = std::min(b + st->grain, st->end);
            try {
                (*st->body)(b, e);
            } catch (...) {
                std::lock_guard<std::mutex> lock(st->mutex);
                if (!st->error)
                    st->error = std::current_exception();
            }
            if (st->live_chunks.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lock(st->mutex);
                st->done.notify_all();
            }
        }
    };

    // One helper task per worker is enough: each loops over chunks.
    const int helpers =
        std::min(static_cast<int>(workers_.size()), chunks - 1);
    for (int i = 0; i < helpers; ++i)
        enqueue(run_chunks);

    run_chunks(); // the caller participates (work sharing)

    // Help with unrelated queued work while late helpers finish their
    // final chunk, then wait for the completion signal.
    while (st->live_chunks.load() > 0) {
        if (!runOne()) {
            std::unique_lock<std::mutex> lock(st->mutex);
            st->done.wait_for(lock, std::chrono::microseconds(100),
                              [&st]() { return st->live_chunks.load() == 0; });
        }
    }
    if (st->error)
        std::rethrow_exception(st->error);
}

void
ThreadPool::parallelForChunks(int begin, int end,
                              const std::function<void(int, int, int)> &body,
                              int grain)
{
    grain = std::max(grain, 1);
    parallelFor(
        begin, end,
        [&body, begin, grain](int b, int e) { body((b - begin) / grain, b, e); },
        grain);
}

} // namespace fusion3d
