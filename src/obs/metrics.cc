#include "obs/metrics.h"

#include "obs/build_info.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <set>

namespace fusion3d::obs
{

void
MetricsRegistry::registerCollector(const std::string &name, Collector collector)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[existing, fn] : collectors_) {
        if (existing == name) {
            fn = std::move(collector);
            return;
        }
    }
    collectors_.emplace_back(name, std::move(collector));
}

void
MetricsRegistry::unregisterCollector(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    collectors_.erase(
        std::remove_if(collectors_.begin(), collectors_.end(),
                       [&name](const auto &entry) { return entry.first == name; }),
        collectors_.end());
}

std::size_t
MetricsRegistry::collectorCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return collectors_.size();
}

std::vector<MetricSample>
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<MetricSample> samples;
    MetricSink sink(samples);
    for (const auto &[name, fn] : collectors_)
        fn(sink);
    return samples;
}

std::string
MetricsRegistry::prometheusName(const std::string &name)
{
    return prometheusName(name, "fusion3d_");
}

std::string
MetricsRegistry::prometheusName(const std::string &name,
                                const std::string &prefix)
{
    std::string out = prefix;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

void
MetricsRegistry::setPrometheusPrefix(std::string prefix)
{
    std::lock_guard<std::mutex> lock(mutex_);
    prometheus_prefix_ = std::move(prefix);
}

std::string
MetricsRegistry::prometheusPrefix() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return prometheus_prefix_;
}

namespace
{

/** Format a double the way both exporters expect (no trailing zeros
 *  surprises, NaN/inf spelled out for Prometheus). */
std::string
formatValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** Escape a string into a JSON key (names are tame, but be safe). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

void
MetricsRegistry::exportPrometheus(std::ostream &os) const
{
    const std::string prefix = prometheusPrefix();
    const std::vector<MetricSample> samples = snapshot();
    std::set<std::string> typed;
    for (const MetricSample &s : samples) {
        const std::string name = prometheusName(s.name, prefix);
        if (typed.insert(name).second) {
            os << "# TYPE " << name << ' '
               << (s.kind == MetricKind::counter ? "counter" : "gauge") << '\n';
        }
        os << name;
        if (!s.labels.empty())
            os << '{' << s.labels << '}';
        os << ' ' << formatValue(s.value) << '\n';
    }
}

void
MetricsRegistry::exportJsonLine(std::ostream &os) const
{
    const std::vector<MetricSample> samples = snapshot();
    os << '{';
    bool first = true;
    for (const MetricSample &s : samples) {
        if (!first)
            os << ',';
        first = false;
        std::string key = s.name;
        if (!s.labels.empty())
            key += '[' + s.labels + ']';
        const double v = s.value;
        os << '"' << jsonEscape(key) << "\":";
        // JSON has no NaN/Infinity literals; emit null for them.
        if (std::isnan(v) || std::isinf(v))
            os << "null";
        else
            os << formatValue(v);
    }
    os << "}\n";
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    static const bool process_registered = []() {
        registerProcessMetrics(registry);
        return true;
    }();
    (void)process_registered;
    return registry;
}

} // namespace fusion3d::obs
