/**
 * @file
 * Const-correct, thread-parallel frame rendering. Unlike
 * Trainer::renderView — which routes through the mutable training tape
 * of a RadianceField — these entry points take a `const ServeableField&`
 * (any backend: hash-grid, FreqNeRF, TensoRF) plus an occupancy gate
 * and render whole frames by splitting them into row-tiles executed on
 * a ThreadPool. This is the render path the serving subsystem
 * (src/serve) uses; `const NerfModel&` convenience overloads keep the
 * historical hash-grid call sites source-compatible.
 *
 * Determinism: every image row re-seeds its own Pcg32 from
 * (cfg.seed, row), so the rendered frame is bit-identical regardless
 * of tiling, thread count, or execution order — and, with jitter
 * disabled, bit-identical to the single-threaded Trainer::renderView
 * of the same model/grid/camera (proved in tests/test_serve.cc).
 */

#ifndef FUSION3D_NERF_PARALLEL_RENDER_H_
#define FUSION3D_NERF_PARALLEL_RENDER_H_

#include <cstdint>
#include <span>

#include "common/image.h"
#include "common/thread_pool.h"
#include "nerf/camera.h"
#include "nerf/field.h"
#include "nerf/image_warp.h"
#include "nerf/nerf_model.h"
#include "nerf/occupancy_grid.h"
#include "nerf/renderer.h"
#include "nerf/sampler.h"

namespace fusion3d::nerf
{

/** Configuration of one tiled render. */
struct TiledRenderConfig
{
    TiledRenderConfig() { sampler.jitter = false; } // inference default

    SamplerConfig sampler;
    RenderParams render;
    /** Rows per work unit handed to the pool. */
    int rowsPerTile = 4;
    /** Base seed of the per-row jitter streams (unused when !jitter). */
    std::uint64_t seed = 0;
    /** Depth assigned to fully transparent rays (compositeDepth t_far). */
    float farDepth = 2.5f;
};

/**
 * Render @p camera's view of @p field, gated by @p grid (nullptr keeps
 * every candidate sample), as parallel row-tiles on @p pool.
 * @param pool nullptr renders single-threaded on the calling thread.
 */
Image renderImageTiled(const ServeableField &field, const OccupancyGrid *grid,
                       const Camera &camera, const TiledRenderConfig &cfg,
                       ThreadPool *pool = nullptr);

/**
 * Like renderImageTiled() but also fills the per-pixel composited
 * depth map, producing the DepthFrame the image-warp degrade path
 * (frame reuse a la MetaVRain) reprojects from.
 */
DepthFrame renderDepthFrameTiled(const ServeableField &field,
                                 const OccupancyGrid *grid, const Camera &camera,
                                 const TiledRenderConfig &cfg,
                                 ThreadPool *pool = nullptr);

/** Hash-grid convenience overloads: wrap @p model in a borrowing
 *  HashGridServeField and render through the polymorphic path. */
Image renderImageTiled(const NerfModel &model, const OccupancyGrid *grid,
                       const Camera &camera, const TiledRenderConfig &cfg,
                       ThreadPool *pool = nullptr);
DepthFrame renderDepthFrameTiled(const NerfModel &model, const OccupancyGrid *grid,
                                 const Camera &camera, const TiledRenderConfig &cfg,
                                 ThreadPool *pool = nullptr);

/** A pixel rectangle [x0, x1) x [y0, y1) of the target image. */
struct TileRect
{
    int x0 = 0;
    int y0 = 0;
    int x1 = 0;
    int y1 = 0;

    std::uint64_t
    pixels() const
    {
        return static_cast<std::uint64_t>(x1 - x0) *
               static_cast<std::uint64_t>(y1 - y0);
    }
};

/**
 * Ray-march only @p tiles of @p camera's view, patching the results in
 * place into the full-resolution @p color image (and @p depth map when
 * non-null). Tiles run in parallel on @p pool, each as one ray batch
 * through the batched evaluation core.
 *
 * With jitter disabled (the inference default) every patched pixel is
 * bit-identical to the same pixel of a full renderImageTiled() /
 * renderDepthFrameTiled() pass, so selective re-rendering composes
 * losslessly with frame reuse. (With jitter enabled, a tile whose x0 is
 * not 0 samples its row RNG stream at a different offset than the full
 * render would — the serving layer never renders jittered.)
 *
 * @return the number of pixels rendered.
 */
std::uint64_t renderTilesInto(const ServeableField &field, const OccupancyGrid *grid,
                              const Camera &camera, const TiledRenderConfig &cfg,
                              std::span<const TileRect> tiles, ThreadPool *pool,
                              Image &color, float *depth);

/** Hash-grid convenience overload of renderTilesInto(). */
std::uint64_t renderTilesInto(const NerfModel &model, const OccupancyGrid *grid,
                              const Camera &camera, const TiledRenderConfig &cfg,
                              std::span<const TileRect> tiles, ThreadPool *pool,
                              Image &color, float *depth);

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_PARALLEL_RENDER_H_
