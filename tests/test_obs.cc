/**
 * @file
 * Tests of the observability subsystem (src/obs) and its sim::Stats
 * extensions: the span tracer (concurrent recording, well-formed
 * Chrome-trace JSON, disabled-mode behaviour), the log2-bucket
 * quantile estimator's accuracy bounds, MetricsRegistry export
 * round-trips, ServerStats percentiles/registration, and the reset
 * paths of sim::Histogram / sim::Distribution.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/server_stats.h"
#include "sim/stats.h"

using namespace fusion3d;

namespace
{

/**
 * Minimal structural JSON check: balanced braces/brackets outside
 * strings, no trailing comma before a closer. Sufficient for the
 * writer's machine-generated output.
 */
bool
jsonBalanced(const std::string &s)
{
    std::vector<char> stack;
    bool in_string = false;
    char prev = '\0';
    for (const char c : s) {
        if (in_string) {
            if (c == '"' && prev != '\\')
                in_string = false;
            prev = c;
            continue;
        }
        switch (c) {
          case '"':
            in_string = true;
            break;
          case '{':
          case '[':
            stack.push_back(c);
            break;
          case '}':
            if (prev == ',' || stack.empty() || stack.back() != '{')
                return false;
            stack.pop_back();
            break;
          case ']':
            if (prev == ',' || stack.empty() || stack.back() != '[')
                return false;
            stack.pop_back();
            break;
          default:
            break;
        }
        if (!std::isspace(static_cast<unsigned char>(c)))
            prev = c;
    }
    return stack.empty() && !in_string;
}

int
countOccurrences(const std::string &haystack, const std::string &needle)
{
    int n = 0;
    for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++n;
    return n;
}

class TracerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::Tracer::instance().setEnabled(false);
        obs::Tracer::instance().clear();
    }

    void
    TearDown() override
    {
        obs::Tracer::instance().setEnabled(false);
        obs::Tracer::instance().clear();
    }
};

TEST_F(TracerTest, DisabledRecordsNothing)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    ASSERT_FALSE(tracer.enabled());
    {
        F3D_TRACE_SPAN("test", "disabled_span");
    }
    tracer.record("test", "explicit", 0, 10);
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.dropped(), 0u);
}

TEST_F(TracerTest, DisabledHotPathIsCheap)
{
    // Not a benchmark — a smoke bound: a million disabled span sites
    // must cost microseconds each at most (they are one relaxed load).
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 1000000; ++i) {
        F3D_TRACE_SPAN("test", "noop");
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_EQ(obs::Tracer::instance().eventCount(), 0u);
    EXPECT_LT(seconds, 2.0);
}

TEST_F(TracerTest, RecordsScopedAndExplicitSpans)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.setEnabled(true);
    {
        F3D_TRACE_SPAN("cat_a", "scoped");
    }
    {
        F3D_TRACE_SPAN_ARG("cat_a", "scoped_arg", 42);
    }
    const std::uint64_t t = tracer.nowNs();
    tracer.record("cat_b", "explicit", t, t + 1000);
    EXPECT_EQ(tracer.eventCount(), 3u);

    std::ostringstream os;
    tracer.writeChromeTrace(os);
    const std::string json = os.str();
    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"scoped\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"scoped_arg\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"value\":42}"), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"cat_b\""), std::string::npos);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"X\""), 3);
}

TEST_F(TracerTest, ToNsIsMonotoneWithClock)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    const auto a = std::chrono::steady_clock::now();
    const auto b = a + std::chrono::microseconds(500);
    EXPECT_LT(tracer.toNs(a), tracer.toNs(b));
    EXPECT_EQ(tracer.toNs(b) - tracer.toNs(a), 500000u);
}

TEST_F(TracerTest, ConcurrentSpansAllRecordedAndWellFormed)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.setEnabled(true);

    constexpr int kThreads = 8;
    constexpr int kSpansPerThread = 500;
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&ready]() {
            ready.fetch_add(1);
            while (ready.load() < kThreads) {
            } // start together: maximal interleaving
            for (int i = 0; i < kSpansPerThread; ++i) {
                F3D_TRACE_SPAN_ARG("concurrent", "span", i);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(tracer.eventCount(),
              static_cast<std::size_t>(kThreads) * kSpansPerThread);
    EXPECT_EQ(tracer.dropped(), 0u);

    std::ostringstream os;
    tracer.writeChromeTrace(os);
    const std::string json = os.str();
    EXPECT_TRUE(jsonBalanced(json));
    EXPECT_EQ(countOccurrences(json, "\"name\":\"span\""),
              kThreads * kSpansPerThread);
}

TEST_F(TracerTest, SerializeWhileRecordingIsConsistent)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.setEnabled(true);

    std::atomic<bool> stop{false};
    std::thread writer([&stop]() {
        while (!stop.load()) {
            F3D_TRACE_SPAN("live", "background");
        }
    });
    // Each serialization taken mid-flight must still be structurally
    // valid: the reader sees each thread's published prefix only.
    for (int i = 0; i < 20; ++i) {
        std::ostringstream os;
        tracer.writeChromeTrace(os);
        EXPECT_TRUE(jsonBalanced(os.str()));
    }
    stop.store(true);
    writer.join();
}

TEST_F(TracerTest, DropsWhenThreadBufferFull)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.setEnabled(true);
    const std::size_t overfill = obs::Tracer::kThreadCapacity + 100;
    for (std::size_t i = 0; i < overfill; ++i)
        tracer.record("test", "flood", 0, 1);
    EXPECT_GE(tracer.dropped(), 100u);
    std::ostringstream os;
    tracer.writeChromeTrace(os);
    EXPECT_TRUE(jsonBalanced(os.str()));
}

// --- Quantiles ---------------------------------------------------------

TEST(QuantilesTest, EmptyReturnsZero)
{
    sim::Quantiles q("empty");
    EXPECT_EQ(q.count(), 0u);
    EXPECT_EQ(q.quantile(0.5), 0.0);
}

TEST(QuantilesTest, UniformAccuracyWithinBound)
{
    sim::Quantiles q("uniform");
    constexpr int kN = 10000;
    for (int i = 1; i <= kN; ++i)
        q.sample(static_cast<double>(i));
    EXPECT_EQ(q.count(), static_cast<std::uint64_t>(kN));

    // Documented relative-error bound of the log2 sub-bucket layout.
    const double bound = 1.0 / sim::Quantiles::kSubBuckets;
    for (const double p : {0.10, 0.50, 0.90, 0.95, 0.99}) {
        const double exact = p * kN;
        const double est = q.quantile(p);
        EXPECT_NEAR(est, exact, bound * exact)
            << "quantile " << p << " estimated " << est << " exact " << exact;
    }
}

TEST(QuantilesTest, SubMillisecondLatenciesWithinBound)
{
    // Latencies in ms can be far below 1; the estimator must stay
    // accurate across negative octaves too.
    sim::Quantiles q("sub_ms");
    std::vector<double> values;
    for (int i = 1; i <= 2000; ++i)
        values.push_back(0.001 * i); // 1 us .. 2 ms in ms units
    for (const double v : values)
        q.sample(v);
    const double bound = 1.0 / sim::Quantiles::kSubBuckets;
    const double exact50 = values[values.size() / 2 - 1];
    EXPECT_NEAR(q.quantile(0.5), exact50, bound * exact50 + 1e-12);
}

TEST(QuantilesTest, SingleValueAllQuantilesAgree)
{
    sim::Quantiles q("single");
    for (int i = 0; i < 100; ++i)
        q.sample(7.0);
    const double p50 = q.quantile(0.5);
    EXPECT_EQ(p50, q.quantile(0.01));
    EXPECT_EQ(p50, q.quantile(0.99));
    EXPECT_NEAR(p50, 7.0, 7.0 / sim::Quantiles::kSubBuckets);
}

TEST(QuantilesTest, NonPositiveAndHugeValuesAreClamped)
{
    sim::Quantiles q("clamped");
    q.sample(0.0);
    q.sample(-3.0);
    q.sample(1e300);
    EXPECT_EQ(q.count(), 3u);
    // Smallest representable bucket for the non-positives...
    EXPECT_LE(q.quantile(0.01), std::ldexp(2.0, sim::Quantiles::kMinOctave));
    // ...largest for the huge value; both finite.
    EXPECT_TRUE(std::isfinite(q.quantile(1.0)));
    EXPECT_GE(q.quantile(1.0), std::ldexp(1.0, sim::Quantiles::kMaxOctave - 1));
}

TEST(QuantilesTest, ResetClearsState)
{
    sim::Quantiles q("reset");
    for (int i = 1; i <= 100; ++i)
        q.sample(i);
    q.reset();
    EXPECT_EQ(q.count(), 0u);
    EXPECT_EQ(q.quantile(0.5), 0.0);
    q.sample(4.0);
    EXPECT_NEAR(q.quantile(0.5), 4.0, 4.0 / sim::Quantiles::kSubBuckets);
}

TEST(QuantilesTest, WeightedSamples)
{
    sim::Quantiles q("weighted");
    q.sample(1.0, 99);
    q.sample(1024.0, 1);
    EXPECT_EQ(q.count(), 100u);
    EXPECT_NEAR(q.quantile(0.5), 1.0, 1.0 / sim::Quantiles::kSubBuckets);
    EXPECT_NEAR(q.quantile(1.0), 1024.0, 1024.0 / sim::Quantiles::kSubBuckets);
}

// --- sim::Stats reset paths (previously untested) ----------------------

TEST(StatsResetTest, DistributionResetRestoresPristineState)
{
    sim::Distribution d("lat");
    d.sample(2.0);
    d.sample(6.0);
    ASSERT_EQ(d.count(), 2u);
    ASSERT_DOUBLE_EQ(d.mean(), 4.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.variance(), 0.0);
    EXPECT_EQ(d.min(), 0.0);
    EXPECT_EQ(d.max(), 0.0);
    EXPECT_EQ(d.total(), 0.0);
    // Sampling after reset behaves like a fresh distribution (min/max
    // re-seed from the first sample, Welford restarts).
    d.sample(-5.0);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_DOUBLE_EQ(d.mean(), -5.0);
    EXPECT_DOUBLE_EQ(d.min(), -5.0);
    EXPECT_DOUBLE_EQ(d.max(), -5.0);
}

TEST(StatsResetTest, HistogramResetClearsBuckets)
{
    sim::Histogram h("hist");
    h.sample(3, 2);
    h.sample(7);
    ASSERT_EQ(h.count(), 3u);
    ASSERT_DOUBLE_EQ(h.fraction(3), 2.0 / 3.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(h.buckets().empty());
    EXPECT_EQ(h.fraction(3), 0.0);
    h.sample(5);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.fraction(5), 1.0);
}

TEST(StatsResetTest, StatGroupResetAllCoversQuantiles)
{
    sim::StatGroup group("g");
    sim::Counter &c = group.addCounter("c");
    sim::Quantiles &q = group.addQuantiles("q");
    c.inc(5);
    q.sample(10.0);
    group.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(q.count(), 0u);
}

// --- MetricsRegistry ---------------------------------------------------

TEST(MetricsRegistryTest, SnapshotRunsCollectorsInOrder)
{
    obs::MetricsRegistry registry;
    registry.registerCollector("b", [](obs::MetricSink &sink) {
        sink.gauge("b.v", 2.0);
    });
    registry.registerCollector("a", [](obs::MetricSink &sink) {
        sink.counter("a.v", 1.0);
    });
    const auto samples = registry.snapshot();
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_EQ(samples[0].name, "b.v"); // registration order, not name order
    EXPECT_EQ(samples[1].name, "a.v");
    EXPECT_EQ(samples[0].kind, obs::MetricKind::gauge);
    EXPECT_EQ(samples[1].kind, obs::MetricKind::counter);
}

TEST(MetricsRegistryTest, UnregisterAndReplace)
{
    obs::MetricsRegistry registry;
    registry.registerCollector("x", [](obs::MetricSink &sink) {
        sink.gauge("x.old", 1.0);
    });
    registry.registerCollector("x", [](obs::MetricSink &sink) {
        sink.gauge("x.new", 2.0);
    });
    EXPECT_EQ(registry.collectorCount(), 1u);
    auto samples = registry.snapshot();
    ASSERT_EQ(samples.size(), 1u);
    EXPECT_EQ(samples[0].name, "x.new");

    registry.unregisterCollector("x");
    EXPECT_EQ(registry.collectorCount(), 0u);
    EXPECT_TRUE(registry.snapshot().empty());
}

TEST(MetricsRegistryTest, PrometheusExportFormat)
{
    obs::MetricsRegistry registry;
    registry.registerCollector("test", [](obs::MetricSink &sink) {
        sink.counter("serve.submitted", 128);
        sink.gauge("serve.latency_ms.p99", 3.5);
        sink.bucket("serve.latency_log2_us", "bucket=\"7\"", 12);
    });
    std::ostringstream os;
    registry.exportPrometheus(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("# TYPE fusion3d_serve_submitted counter"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("fusion3d_serve_submitted 128"), std::string::npos);
    EXPECT_NE(text.find("# TYPE fusion3d_serve_latency_ms_p99 gauge"),
              std::string::npos);
    EXPECT_NE(text.find("fusion3d_serve_latency_ms_p99 3.5"),
              std::string::npos);
    EXPECT_NE(text.find("fusion3d_serve_latency_log2_us{bucket=\"7\"} 12"),
              std::string::npos);
}

TEST(MetricsRegistryTest, JsonLineExportRoundTrip)
{
    obs::MetricsRegistry registry;
    registry.registerCollector("test", [](obs::MetricSink &sink) {
        sink.counter("a.count", 42);
        sink.gauge("a.mean", 1.25);
        sink.gauge("a.nan", std::nan(""));
    });
    std::ostringstream os;
    registry.exportJsonLine(os);
    const std::string json = os.str();
    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_NE(json.find("\"a.count\":42"), std::string::npos) << json;
    EXPECT_NE(json.find("\"a.mean\":1.25"), std::string::npos);
    EXPECT_NE(json.find("\"a.nan\":null"), std::string::npos);
    // Exactly one line.
    EXPECT_EQ(countOccurrences(json, "\n"), 1);
    EXPECT_EQ(json.back(), '\n');
}

TEST(MetricsRegistryTest, StatGroupCollectSurfacesEveryStatKind)
{
    sim::StatGroup group("grp");
    group.addCounter("hits").inc(9);
    sim::Distribution &d = group.addDistribution("size");
    d.sample(2.0);
    d.sample(4.0);
    group.addHistogram("hist").sample(3, 5);
    group.addQuantiles("lat").sample(8.0);

    std::vector<obs::MetricSample> samples;
    obs::MetricSink sink(samples);
    group.collect(sink);

    const auto find = [&samples](const std::string &name) -> const obs::MetricSample * {
        for (const auto &s : samples)
            if (s.name == name)
                return &s;
        return nullptr;
    };
    ASSERT_NE(find("grp.hits"), nullptr);
    EXPECT_EQ(find("grp.hits")->value, 9.0);
    ASSERT_NE(find("grp.size.mean"), nullptr);
    EXPECT_DOUBLE_EQ(find("grp.size.mean")->value, 3.0);
    ASSERT_NE(find("grp.size.count"), nullptr);
    ASSERT_NE(find("grp.hist"), nullptr);
    EXPECT_EQ(find("grp.hist")->labels, "bucket=\"3\"");
    EXPECT_EQ(find("grp.hist")->value, 5.0);
    ASSERT_NE(find("grp.lat.p99"), nullptr);
    EXPECT_NEAR(find("grp.lat.p99")->value, 8.0,
                8.0 / sim::Quantiles::kSubBuckets);
}

TEST(MetricsRegistryTest, PrometheusNameSanitization)
{
    EXPECT_EQ(obs::MetricsRegistry::prometheusName("serve.latency_ms.p50"),
              "fusion3d_serve_latency_ms_p50");
    EXPECT_EQ(obs::MetricsRegistry::prometheusName("a-b c/d"),
              "fusion3d_a_b_c_d");
}

// --- ServerStats percentiles and registration --------------------------

TEST(ServerStatsObsTest, LatencyPercentilesWithinBound)
{
    serve::ServerStats stats;
    // 1..100 ms, one outcome each: p50 ~ 50, p95 ~ 95, p99 ~ 99.
    for (int i = 1; i <= 100; ++i)
        stats.recordOutcome(serve::Outcome::renderedFull,
                            static_cast<double>(i));
    const double bound = 1.0 / sim::Quantiles::kSubBuckets;
    EXPECT_NEAR(stats.p50LatencyMs(), 50.0, 50.0 * bound);
    EXPECT_NEAR(stats.p95LatencyMs(), 95.0, 95.0 * bound);
    EXPECT_NEAR(stats.p99LatencyMs(), 99.0, 99.0 * bound);
    // Percentile keys appear in the dump alongside the distribution.
    std::ostringstream os;
    stats.dump(os);
    EXPECT_NE(os.str().find("serve.latency_ms.p99"), std::string::npos);
}

TEST(ServerStatsObsTest, RegisterWithExportsAndUnregistersOnDestruction)
{
    obs::MetricsRegistry registry;
    {
        serve::ServerStats stats;
        stats.registerWith(registry, "serve.test");
        stats.recordSubmitted(3);
        stats.recordOutcome(serve::Outcome::renderedHalf, 12.0);
        stats.recordBatch(2);

        std::ostringstream os;
        registry.exportJsonLine(os);
        const std::string json = os.str();
        EXPECT_NE(json.find("\"serve.submitted\":1"), std::string::npos) << json;
        EXPECT_NE(json.find("\"serve.rendered_half\":1"), std::string::npos);
        EXPECT_NE(json.find("\"serve.latency_ms.p50\":"), std::string::npos);
        EXPECT_EQ(registry.collectorCount(), 1u);
    }
    // Destruction must unregister, or the registry would call into a
    // dead object on the next snapshot.
    EXPECT_EQ(registry.collectorCount(), 0u);
    EXPECT_TRUE(registry.snapshot().empty());
}

} // namespace
