#include "chip/hw_cost.h"

#include <cmath>

namespace fusion3d::chip
{

namespace hw
{

namespace
{

/** Build a cost from gates and a per-op switching-activity factor. */
constexpr HwCost
cost(double gates, double activity)
{
    return HwCost{gates, gates * activity};
}

} // namespace

HwCost
adder(int bits)
{
    // One full adder ~ 5 NAND2 equivalents.
    return cost(5.0 * bits, 0.5);
}

HwCost
multiplier(int a_bits, int b_bits)
{
    // Array/Booth-Wallace multiplier: one gate-dense cell per partial
    // product bit plus a final carry-propagate adder.
    return cost(6.0 * a_bits * b_bits + 5.0 * (a_bits + b_bits), 0.5);
}

HwCost
mux2(int bits)
{
    return cost(3.0 * bits, 0.3);
}

HwCost
barrelShifter(int bits)
{
    const int stages = bits <= 1 ? 1 : static_cast<int>(std::ceil(std::log2(bits)));
    return cost(3.0 * bits * stages, 0.4);
}

HwCost
priorityEncoder(int bits)
{
    return cost(6.0 * bits, 0.4);
}

HwCost
registerBits(int bits)
{
    // A DFF ~ 8 NAND2 equivalents; clocked every cycle.
    return cost(8.0 * bits, 0.6);
}

HwCost
comparator(int bits)
{
    return cost(3.0 * bits, 0.3);
}

HwCost
control(int states)
{
    return cost(30.0 + 10.0 * states, 0.2);
}

HwCost
divider(int bits)
{
    // Radix-4 SRT: quotient-selection logic plus a carry-save adder per
    // iteration stage; ~2.5x the area of a same-width multiplier with
    // near-continuous switching while iterating.
    return cost(2.5 * (6.0 * bits * bits + 5.0 * 2.0 * bits), 0.85);
}

HwCost
sramMacro(double bits)
{
    // Dense 6T macro layout (0.05 NAND2-equivalents/bit); per-access
    // energy is dominated by bitline/sense-amp switching, a ~10%
    // activity-equivalent of the array.
    return HwCost{bits * 0.05, bits * 0.05 * 0.1};
}

} // namespace hw

namespace fiem_cost
{

namespace
{

/** FP32 significand width (training precision, cf. Table II). */
constexpr int kFracBits = 24;
/** FP32 exponent width. */
constexpr int kExpBits = 8;

} // namespace

HwCost
int2fpPlusFpmul(int int_bits)
{
    // INT2FP: sign/absolute conversion, leading-one detection, left
    // shift into the significand field, exponent formation, and the
    // pipeline register between the two sub-units.
    HwCost int2fp;
    int2fp += hw::adder(int_bits);                 // two's-complement abs
    int2fp += hw::priorityEncoder(int_bits);       // leading-one detect
    int2fp += hw::barrelShifter(kFracBits);        // align into fraction
    int2fp += hw::adder(kExpBits);                 // exponent formation
    int2fp += hw::registerBits(1 + kExpBits + kFracBits - 1);

    // Full FPMUL: significand array multiplier, exponent adder,
    // 1-bit normalization, round-to-nearest-even, exception flags,
    // input/output registers.
    HwCost fpmul;
    fpmul += hw::multiplier(kFracBits, kFracBits);
    fpmul += hw::adder(kExpBits + 1);
    fpmul += hw::mux2(kFracBits + 1);              // normalize select
    fpmul += hw::adder(kFracBits);                 // rounding increment
    fpmul += hw::control(4);                       // inf/nan/zero flags
    fpmul += hw::registerBits(2 * 32);             // operand staging
    fpmul += hw::registerBits(32);                 // result register

    return int2fp + fpmul;
}

HwCost
fiem(int int_bits)
{
    // FIEM: the integer multiplies the significand directly. The array
    // shrinks from kFracBits^2 to kFracBits*int_bits partial products,
    // and the INT2FP stage (and its pipeline register) disappears;
    // only a wider post-normalization remains.
    HwCost c;
    c += hw::adder(int_bits);                          // abs of the int
    c += hw::multiplier(kFracBits, int_bits);          // frac x int
    c += hw::adder(kExpBits + 1);                      // exponent combine
    c += hw::priorityEncoder(int_bits);                // product MSB find
    c += hw::barrelShifter(kFracBits + 1);             // renormalize
    c += hw::adder(kFracBits);                         // rounding
    c += hw::control(2);
    c += hw::registerBits(32);                         // result register
    return c;
}

} // namespace fiem_cost

StageTwoSharing
stageTwoSharing(int feature_bits, int levels)
{
    // SRAM density in NAND2 equivalents per bit (6T cell vs ~4T/gate,
    // but far denser layout): calibrated so the datapath/SRAM split
    // matches the paper's post-layout observation that roughly half of
    // the interpolation module is SRAM.
    constexpr double kSramUnitsPerBit = 0.1;
    constexpr double kFeatureSramBits = 2.0 * 64.0 * 1024.0 * 8.0; // 2x64 KB

    StageTwoSharing s;

    // --- Directly shared between inference and training ---
    HwCost shared;
    // Vertex coordinate generation: floor/scale and the +1 offsets.
    shared += hw::multiplier(16, 16);     // position scaling per axis
    shared += hw::adder(16);
    shared += hw::adder(16);
    shared += hw::adder(16);
    // Hash index computation: two constant multipliers (y, z primes)
    // plus XOR folding; constant multipliers are ~1/3 of a full array.
    const HwCost const_mult = hw::multiplier(16, 32);
    shared.areaUnits += 2.0 * const_mult.areaUnits / 3.0;
    shared.energyUnits += 2.0 * const_mult.energyUnits / 3.0;
    // Interpolation weight computation (fraction products, fixed point).
    shared += hw::multiplier(8, 8);
    shared += hw::multiplier(8, 8);
    shared += hw::multiplier(8, 8);
    // SRAM banks with decoders and sense amps (feature tables).
    shared.areaUnits += kFeatureSramBits * kSramUnitsPerBit;
    shared.energyUnits += kFeatureSramBits * kSramUnitsPerBit * 0.02;
    // Address/bank routing registers and control.
    shared += hw::registerBits(8 * 32);
    shared += hw::control(levels);

    // --- Reused via reconfiguration: the interpolation array ---
    // Eight mixed-precision (FIEM) multipliers feeding either a MAC
    // tree (forward) or a scatter path (backward).
    HwCost reconf;
    for (int i = 0; i < 8; ++i)
        reconf += fiem_cost::fiem(8);
    for (int i = 0; i < 7; ++i)
        reconf += hw::adder(feature_bits + 3); // adder tree / inverse tree
    reconf += hw::mux2(8 * feature_bits);      // mode steering

    s.sharedUnits = shared.areaUnits;
    s.reconfiguredUnits = reconf.areaUnits;
    // A naive design would instantiate the array once per mode.
    s.duplicatedSavingUnits = reconf.areaUnits;
    return s;
}

TensorfAdaptation
tensorfAdaptation()
{
    // The retained TensoRF feature-interpolation module: factor-plane
    // SRAM with its interpolation datapath. Identical in both designs.
    HwCost feature;
    feature += hw::sramMacro(2.0 * 1024.0 * 1024.0 * 8.0); // 2 MB factors
    for (int i = 0; i < 8; ++i)
        feature += hw::multiplier(16, 16); // bilinear/line interp lanes
    for (int i = 0; i < 4; ++i)
        feature += hw::adder(24);

    // RT-NeRF-style sampling: generic ray/box intersection needs a
    // divider bank plus the plane-evaluation multipliers/adders.
    HwCost base_sampling;
    for (int i = 0; i < 6; ++i)
        base_sampling += hw::divider(24);
    for (int i = 0; i < 18; ++i)
        base_sampling += hw::multiplier(16, 16);
    for (int i = 0; i < 18; ++i)
        base_sampling += hw::adder(24);
    base_sampling += hw::control(8);

    // RT-NeRF-style post-processing: separate render and accumulation
    // paths, duplicated per color channel plus a density path.
    HwCost base_postproc;
    for (int ch = 0; ch < 4; ++ch) {
        for (int i = 0; i < 6; ++i)
            base_postproc += hw::multiplier(16, 16);
        for (int i = 0; i < 6; ++i)
            base_postproc += hw::adder(24);
        base_postproc += hw::barrelShifter(24);
        base_postproc += hw::registerBits(6 * 32);
    }
    base_postproc += hw::control(6);

    // Fusion-3D sampling module: folded-constant intersections (3 MUL +
    // 3 MAC per box), no dividers.
    HwCost our_sampling;
    for (int i = 0; i < 3; ++i)
        our_sampling += hw::multiplier(16, 16);
    for (int i = 0; i < 3; ++i) {
        our_sampling += hw::multiplier(16, 16); // MAC = mul + add
        our_sampling += hw::adder(24);
    }
    our_sampling += hw::control(4);

    // Fusion-3D post-processing: the shared reconfigurable render path
    // (one datapath, mode-multiplexed) instead of per-channel copies.
    HwCost our_postproc;
    for (int i = 0; i < 3; ++i)
        our_postproc += hw::multiplier(16, 16);
    for (int i = 0; i < 3; ++i)
        our_postproc += hw::adder(24);
    our_postproc += hw::mux2(3 * 24);
    our_postproc += hw::registerBits(3 * 32);
    our_postproc += hw::control(4);

    TensorfAdaptation t;
    t.baseline = feature + base_sampling + base_postproc;
    t.adapted = feature + our_sampling + our_postproc;
    return t;
}

} // namespace fusion3d::chip
