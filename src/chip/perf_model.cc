#include "chip/perf_model.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/logging.h"
#include "obs/metrics.h"
#include "sim/stats.h"

namespace fusion3d::chip
{

namespace
{

/**
 * Process-wide accounting of every PerfModel run's per-module cycles,
 * exported through obs::MetricsRegistry ("chip.perf" collector) so a
 * metrics snapshot attributes modeled time to Stage I/II/III the same
 * way a trace attributes wall-clock to serving stages.
 */
class PerfModelStats
{
  public:
    static PerfModelStats &
    instance()
    {
        static PerfModelStats stats;
        return stats;
    }

    void
    recordRun(const ChipRunResult &r)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        runs_.inc();
        stage1_.sample(static_cast<double>(r.stage1Cycles));
        stage2_.sample(static_cast<double>(r.stage2Cycles));
        stage3_.sample(static_cast<double>(r.stage3Cycles));
        total_.sample(static_cast<double>(r.totalCycles));
    }

  private:
    PerfModelStats()
        : group_("chip.perf"),
          runs_(group_.addCounter("runs")),
          stage1_(group_.addDistribution("stage1_cycles")),
          stage2_(group_.addDistribution("stage2_cycles")),
          stage3_(group_.addDistribution("stage3_cycles")),
          total_(group_.addDistribution("total_cycles"))
    {
        obs::MetricsRegistry::global().registerCollector(
            "chip.perf", [this](obs::MetricSink &sink) {
                std::lock_guard<std::mutex> lock(mutex_);
                group_.collect(sink);
            });
    }

    std::mutex mutex_;
    sim::StatGroup group_;
    sim::Counter &runs_;
    sim::Distribution &stage1_;
    sim::Distribution &stage2_;
    sim::Distribution &stage3_;
    sim::Distribution &total_;
};

} // namespace

ChipRunResult
PerfModel::combine(const WorkloadProfile &wl, Cycles s1, Cycles s2, Cycles s3) const
{
    ChipRunResult r;
    r.stage1Cycles = s1;
    r.stage2Cycles = s2;
    r.stage3Cycles = s3;
    // The three stages run as a macro-pipeline over ray batches
    // (ping-pong memory clusters): steady-state time is the slowest
    // stage; fill/drain adds ~2%.
    const Cycles slowest = std::max({s1, s2, s3});
    r.totalCycles = slowest + slowest / 50;
    r.seconds = static_cast<double>(r.totalCycles) / cfg_.clockHz;
    r.energyJ = tech_.energyJ(static_cast<double>(r.totalCycles));
    if (r.seconds > 0.0) {
        r.throughputPointsPerSec = static_cast<double>(wl.validPoints) / r.seconds;
    }
    if (wl.validPoints > 0)
        r.energyPerPointNj = r.energyJ * 1e9 / static_cast<double>(wl.validPoints);
    PerfModelStats::instance().recordRun(r);
    return r;
}

namespace
{

/** Stage-II pipeline overhead beyond the steady-state group rate,
 *  calibrated against the published 591 M samples/s. */
constexpr double kStage2Overhead = 1.25;

/** Extrapolate trace-replay Stage-I cycles to the full workload. */
Cycles
scaleStage1(const SamplingRunStats &stage1, std::uint64_t total_rays)
{
    if (stage1.raysProcessed == 0)
        return 0;
    const double scale = static_cast<double>(total_rays) /
                         static_cast<double>(stage1.raysProcessed);
    return static_cast<Cycles>(static_cast<double>(stage1.totalCycles) * scale);
}

} // namespace

ChipRunResult
PerfModel::inference(const WorkloadProfile &wl, const SamplingRunStats &stage1) const
{
    const Cycles s1 = scaleStage1(stage1, wl.rays);

    // Stage II: one group access per (point, level), spread over cores;
    // kStage2Overhead covers refill bubbles and bank-write turnaround
    // the steady-state group rate hides.
    const double groups =
        static_cast<double>(wl.validPoints) * static_cast<double>(wl.levels);
    const Cycles s2 = static_cast<Cycles>(
        kStage2Overhead * groups * wl.avgGroupCycles / std::max(cfg_.interpCores, 1));

    const PostprocModule post(cfg_, wl.macsPerPoint);
    const Cycles s3 = post.inference(wl.validPoints, wl.compositedPoints).totalCycles;

    return combine(wl, s1, s2, s3);
}

ChipRunResult
PerfModel::training(const WorkloadProfile &wl, const SamplingRunStats &stage1,
                    bool tdm_inference) const
{
    const Cycles s1 = scaleStage1(stage1, wl.rays);

    // Stage II training: the three-step feature update (read, compute,
    // write back) occupies each group for three memory slots. The TDM
    // optimization does not shorten training; it donates the idle
    // compute-slot to concurrent inference work (reported by callers
    // that co-schedule rendering) -- so the training time is 3x either
    // way, exactly the ~1/3 training/inference throughput ratio of
    // Table III.
    (void)tdm_inference;
    const double groups =
        static_cast<double>(wl.validPoints) * static_cast<double>(wl.levels);
    const Cycles s2 = static_cast<Cycles>(
        3.0 * kStage2Overhead * groups * wl.avgGroupCycles /
        std::max(cfg_.interpCores, 1));

    const PostprocModule post(cfg_, wl.macsPerPoint);
    const Cycles s3 = post.training(wl.validPoints, wl.compositedPoints).totalCycles;

    return combine(wl, s1, s2, s3);
}

double
BandwidthModel::interStageGBs() const
{
    // Stage 1 -> 2: packed position + step (8 B). Stage 2 -> 3: the
    // encoded features in fp16.
    const double per_sample =
        8.0 + static_cast<double>(levels) * featuresPerLevel * 2.0;
    return samplesPerSec * per_sample / 1e9;
}

double
BandwidthModel::intraStageGBs() const
{
    // Hash-table update traffic (8 vertices x levels x features, read +
    // write in the backward pass) with a 4x coalescing factor, plus the
    // MLP activation save/restore between forward and backward with a
    // batch-locality factor.
    const double hash_update = 8.0 * levels * featuresPerLevel * 2.0 * 2.0 * 0.25;
    const double activations = 2.0 * mlpHidden * 2.0 * 2.0 * 0.15;
    return samplesPerSec * (hash_update + activations) / 1e9;
}

double
BandwidthModel::spillGBs(double table_bytes) const
{
    // Feature-read traffic that misses the on-chip table share.
    if (table_bytes <= onchipTableBytes)
        return 0.0;
    const double access_bytes = 8.0 * levels * featuresPerLevel * 2.0;
    const double spill_frac = 1.0 - onchipTableBytes / table_bytes;
    constexpr double kLocality = 0.14; // occupancy + batch reuse
    return samplesPerSec * access_bytes * spill_frac * kLocality / 1e9;
}

double
BandwidthModel::totalIntermediateGb() const
{
    return (interStageGBs() + intraStageGBs()) * trainSeconds;
}

double
BandwidthModel::requiredBandwidthGBs(CoverageBoundary boundary,
                                     double table_bytes) const
{
    // Streaming the dataset in and the model out, with double-buffering
    // overhead.
    const double io = ioGb() / trainSeconds * 1.7;

    switch (boundary) {
      case CoverageBoundary::EndToEnd:
        return io + spillGBs(table_bytes);
      case CoverageBoundary::Stage23:
        // Stage-I results cross off-chip, and splitting the pipeline
        // amplifies spill traffic (partial sums are refetched instead
        // of forwarded on-chip).
        return io + interStageGBs() + spillGBs(table_bytes) * 5.0;
      case CoverageBoundary::Stage2Only:
        // Additionally ships Stage-III activations off-chip.
        return io + interStageGBs() + intraStageGBs() * 0.5 +
               spillGBs(table_bytes) * 5.0;
    }
    panic("BandwidthModel: bad boundary");
}

} // namespace fusion3d::chip
