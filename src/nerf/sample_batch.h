/**
 * @file
 * Structure-of-arrays sample batch: the flattened Stage I output of a
 * whole *batch* of rays, ready for one pass through the batched
 * encoding→MLP→composite core. Per-ray membership is kept CSR-style in
 * `rayOffsets` (ray r owns samples [rayOffsets[r], rayOffsets[r+1])),
 * which is exactly how the Fusion-3D chip streams ray samples through
 * its shared SIMD pipeline: wide sample batches with per-ray ranges for
 * the compositing stage.
 */

#ifndef FUSION3D_NERF_SAMPLE_BATCH_H_
#define FUSION3D_NERF_SAMPLE_BATCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/vec.h"
#include "nerf/sampler.h"

namespace fusion3d::nerf
{

/** SoA batch of ray samples with CSR per-ray ranges. */
struct SampleBatch
{
    // One entry per sample, across all rays of the batch.
    std::vector<Vec3f> positions;
    std::vector<Vec3f> dirs; ///< normalized view direction of the owning ray
    std::vector<float> ts;
    std::vector<float> dts;
    /** Filled by the batched forward pass. */
    std::vector<float> sigmas;
    std::vector<Vec3f> rgbs;

    /** CSR ray ranges: size numRays()+1, rayOffsets[0] == 0. */
    std::vector<std::uint32_t> rayOffsets{0};

    std::size_t size() const { return positions.size(); }
    int numRays() const { return static_cast<int>(rayOffsets.size()) - 1; }

    std::size_t rayBegin(int r) const { return rayOffsets[static_cast<std::size_t>(r)]; }
    std::size_t rayEnd(int r) const { return rayOffsets[static_cast<std::size_t>(r) + 1]; }
    std::size_t raySampleCount(int r) const { return rayEnd(r) - rayBegin(r); }

    void
    clear()
    {
        positions.clear();
        dirs.clear();
        ts.clear();
        dts.clear();
        sigmas.clear();
        rgbs.clear();
        rayOffsets.assign(1, 0);
    }

    /** Append one ray's samples (all sharing @p dir) and close the ray. */
    void
    appendRay(const Vec3f &dir, std::span<const RaySample> samples)
    {
        for (const RaySample &s : samples) {
            positions.push_back(s.pos);
            dirs.push_back(dir);
            ts.push_back(s.t);
            dts.push_back(s.dt);
        }
        rayOffsets.push_back(static_cast<std::uint32_t>(positions.size()));
    }

    /** Size the forward-output arrays to match the sample count. */
    void
    prepareOutputs()
    {
        sigmas.resize(size());
        rgbs.resize(size());
    }
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_SAMPLE_BATCH_H_
