#include "multichip/host_link.h"

#include <algorithm>

#include "common/logging.h"

namespace fusion3d::multichip
{

StreamingPlan
planTrainingSession(double dataset_bytes, double model_bytes, double train_seconds,
                    const HostLinkConfig &cfg)
{
    if (cfg.linkBytesPerSec <= 0.0 || cfg.efficiency <= 0.0)
        fatal("planTrainingSession: invalid link configuration");

    const double bw = cfg.linkBytesPerSec * cfg.efficiency;
    StreamingPlan plan;
    plan.datasetInSeconds = dataset_bytes / bw;
    plan.modelOutSeconds = model_bytes / bw;
    plan.trainSeconds = train_seconds;

    // Training consumes batches as they arrive (double buffering), so
    // input streaming overlaps training; the model ships afterwards.
    plan.linkKeepsUp = plan.datasetInSeconds <= train_seconds;
    plan.totalSeconds =
        std::max(plan.datasetInSeconds, train_seconds) + plan.modelOutSeconds;
    return plan;
}

} // namespace fusion3d::multichip
