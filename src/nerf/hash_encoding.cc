#include "nerf/hash_encoding.h"

#include <algorithm>
#include <cmath>

#include "common/half.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#define F3D_HASH_SIMD_X86 1
#include <immintrin.h>
#endif

namespace fusion3d::nerf
{

namespace
{

/** Corner indices and trilinear weights of one point at one level. */
struct LevelCorners
{
    std::uint32_t indices[8];
    float weights[8];
};

/**
 * Corner gather with the level constants (resolution, dense flag,
 * vertex-row stride, hash mask) hoisted by the caller. The arithmetic
 * — and therefore every float result — is identical to
 * HashGridEncoding::gatherCorners; this variant just drops the
 * per-corner dense/hashed branch through vertexIndex and the coords
 * bookkeeping the visitor path needs.
 */
inline void
cornerIndicesWeights(const Vec3f &pos, float fres, bool dense, std::uint32_t n1,
                     std::uint32_t mask, LevelCorners &lc)
{
    const Vec3f p = clamp(pos, 0.0f, 1.0f);
    const Vec3f scaled{std::min(p.x * fres, fres - 1e-4f),
                       std::min(p.y * fres, fres - 1e-4f),
                       std::min(p.z * fres, fres - 1e-4f)};
    const Vec3i base = floorToInt(scaled);
    const Vec3f frac = scaled - toFloat(base);

    for (int c = 0; c < 8; ++c) {
        const int dx = c & 1;
        const int dy = (c >> 1) & 1;
        const int dz = (c >> 2) & 1;
        const Vec3i v{base.x + dx, base.y + dy, base.z + dz};
        lc.indices[c] =
            dense ? (static_cast<std::uint32_t>(v.z) * n1 +
                     static_cast<std::uint32_t>(v.y)) *
                            n1 +
                        static_cast<std::uint32_t>(v.x)
                  : HashGridEncoding::hashCoords(v, mask);
        const float wx = dx ? frac.x : 1.0f - frac.x;
        const float wy = dy ? frac.y : 1.0f - frac.y;
        const float wz = dz ? frac.z : 1.0f - frac.z;
        lc.weights[c] = wx * wy * wz;
    }
}

#if defined(F3D_HASH_SIMD_X86)

/**
 * AVX2 block staging: cornerIndicesWeights for 8 points per iteration,
 * lanes mapping to samples, results stored corner-major into the
 * [8][kGatherBlock] idx/wts arrays. Every float op mirrors the scalar
 * helper exactly — clamp as min(max(v,0),1) (== std::clamp for finite
 * inputs), floor via _mm256_floor_ps, frac as scaled - floor, weights
 * as (wx*wy)*wz — and the integer index math (32-bit wraparound
 * multiplies, xor, mask) is bitwise by construction, so staged indices
 * and weights match the scalar path bit for bit. (For a -0.0 input
 * component the clamp yields +0.0 where std::clamp keeps -0.0; the
 * downstream products and sums are identical either way.)
 */
__attribute__((target("avx2"))) void
stageCornersAvx2(const Vec3f *pos, std::size_t n8, float fres, bool dense,
                 std::uint32_t n1, std::uint32_t mask, std::uint32_t prime_x,
                 std::uint32_t prime_y, std::uint32_t prime_z,
                 std::uint32_t *idx, float *wts)
{
    const __m256 zero = _mm256_setzero_ps();
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 vres = _mm256_set1_ps(fres);
    const __m256 vmaxc = _mm256_set1_ps(fres - 1e-4f);
    const __m256i ione = _mm256_set1_epi32(1);
    const __m256i vn1 = _mm256_set1_epi32(static_cast<int>(n1));
    const __m256i vmask = _mm256_set1_epi32(static_cast<int>(mask));
    const __m256i vpx = _mm256_set1_epi32(static_cast<int>(prime_x));
    const __m256i vpy = _mm256_set1_epi32(static_cast<int>(prime_y));
    const __m256i vpz = _mm256_set1_epi32(static_cast<int>(prime_z));
    // Vec3f is three packed floats; gather x/y/z lanes at stride 3.
    const __m256i stride = _mm256_setr_epi32(0, 3, 6, 9, 12, 15, 18, 21);

    for (std::size_t j = 0; j < n8; j += 8) {
        const float *pf = reinterpret_cast<const float *>(pos + j);
        __m256 px = _mm256_i32gather_ps(pf + 0, stride, 4);
        __m256 py = _mm256_i32gather_ps(pf + 1, stride, 4);
        __m256 pz = _mm256_i32gather_ps(pf + 2, stride, 4);
        px = _mm256_min_ps(_mm256_max_ps(px, zero), one);
        py = _mm256_min_ps(_mm256_max_ps(py, zero), one);
        pz = _mm256_min_ps(_mm256_max_ps(pz, zero), one);
        const __m256 sx = _mm256_min_ps(_mm256_mul_ps(px, vres), vmaxc);
        const __m256 sy = _mm256_min_ps(_mm256_mul_ps(py, vres), vmaxc);
        const __m256 sz = _mm256_min_ps(_mm256_mul_ps(pz, vres), vmaxc);
        const __m256 fx = _mm256_floor_ps(sx);
        const __m256 fy = _mm256_floor_ps(sy);
        const __m256 fz = _mm256_floor_ps(sz);
        const __m256i bx = _mm256_cvttps_epi32(fx);
        const __m256i by = _mm256_cvttps_epi32(fy);
        const __m256i bz = _mm256_cvttps_epi32(fz);
        const __m256 frx = _mm256_sub_ps(sx, fx);
        const __m256 fry = _mm256_sub_ps(sy, fy);
        const __m256 frz = _mm256_sub_ps(sz, fz);
        const __m256 ivx = _mm256_sub_ps(one, frx);
        const __m256 ivy = _mm256_sub_ps(one, fry);
        const __m256 ivz = _mm256_sub_ps(one, frz);
        const __m256i bx1 = _mm256_add_epi32(bx, ione);
        const __m256i by1 = _mm256_add_epi32(by, ione);
        const __m256i bz1 = _mm256_add_epi32(bz, ione);

        for (int c = 0; c < 8; ++c) {
            const bool dx = (c & 1) != 0;
            const bool dy = ((c >> 1) & 1) != 0;
            const bool dz = ((c >> 2) & 1) != 0;
            const __m256i vx = dx ? bx1 : bx;
            const __m256i vy = dy ? by1 : by;
            const __m256i vz = dz ? bz1 : bz;
            __m256i vi;
            if (dense)
                vi = _mm256_add_epi32(
                    _mm256_mullo_epi32(
                        _mm256_add_epi32(_mm256_mullo_epi32(vz, vn1), vy),
                        vn1),
                    vx);
            else
                vi = _mm256_and_si256(
                    _mm256_xor_si256(
                        _mm256_xor_si256(_mm256_mullo_epi32(vx, vpx),
                                         _mm256_mullo_epi32(vy, vpy)),
                        _mm256_mullo_epi32(vz, vpz)),
                    vmask);
            const __m256 w = _mm256_mul_ps(
                _mm256_mul_ps(dx ? frx : ivx, dy ? fry : ivy),
                dz ? frz : ivz);
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(
                    idx + static_cast<std::size_t>(c) * simd::kGatherBlock + j),
                vi);
            _mm256_storeu_ps(
                wts + static_cast<std::size_t>(c) * simd::kGatherBlock + j, w);
        }
    }
}

#endif // F3D_HASH_SIMD_X86

} // namespace

HashGridEncoding::HashGridEncoding(const HashGridConfig &cfg, std::uint64_t seed)
    : cfg_(cfg)
{
    if (cfg.levels < 1)
        fatal("HashGridEncoding needs at least one level");
    if (cfg.featuresPerLevel < 1 || cfg.featuresPerLevel > 8)
        fatal("HashGridEncoding supports 1..8 features per level (got %d)",
              cfg.featuresPerLevel);
    if (cfg.baseResolution < 1 || cfg.maxResolution < cfg.baseResolution)
        fatal("HashGridEncoding resolution range invalid (%d..%d)",
              cfg.baseResolution, cfg.maxResolution);

    // Per-level geometric growth factor, as in Instant-NGP eq. (3).
    const double growth =
        cfg.levels > 1
            ? std::exp((std::log(static_cast<double>(cfg.maxResolution)) -
                        std::log(static_cast<double>(cfg.baseResolution))) /
                       static_cast<double>(cfg.levels - 1))
            : 1.0;

    resolutions_.resize(cfg.levels);
    dense_.resize(cfg.levels);
    entries_.resize(cfg.levels);
    offsets_.resize(cfg.levels);

    std::size_t total_floats = 0;
    for (int l = 0; l < cfg.levels; ++l) {
        const double r = static_cast<double>(cfg.baseResolution) * std::pow(growth, l);
        resolutions_[l] = static_cast<int>(std::floor(r));
        const std::uint64_t dense_entries =
            static_cast<std::uint64_t>(resolutions_[l] + 1) * (resolutions_[l] + 1) *
            (resolutions_[l] + 1);
        if (dense_entries <= cfg.tableSize()) {
            dense_[l] = true;
            entries_[l] = static_cast<std::uint32_t>(dense_entries);
        } else {
            dense_[l] = false;
            entries_[l] = cfg.tableSize();
        }
        offsets_[l] = total_floats;
        total_floats += static_cast<std::size_t>(entries_[l]) * cfg.featuresPerLevel;
    }

    params_.resize(total_floats);
    grads_.assign(total_floats, 0.0f);
    param_count_ = total_floats;

    // Small uniform init, as in Instant-NGP (U[-1e-4, 1e-4]).
    Pcg32 rng(seed, 0x9e3779b97f4a7c15ULL);
    for (float &p : params_)
        p = rng.nextRange(-1e-4f, 1e-4f);
}

std::uint32_t
HashGridEncoding::vertexIndex(int level, const Vec3i &c) const
{
    if (dense_[level]) {
        const std::uint32_t n = static_cast<std::uint32_t>(resolutions_[level] + 1);
        return (static_cast<std::uint32_t>(c.z) * n + static_cast<std::uint32_t>(c.y)) * n +
               static_cast<std::uint32_t>(c.x);
    }
    return hashCoords(c, cfg_.tableSize() - 1);
}

void
HashGridEncoding::gatherCorners(int level, const Vec3f &pos, CornerSet &cs) const
{
    const float n = static_cast<float>(resolutions_[level]);
    // Clamp so base+1 stays a valid vertex even at pos == 1.0.
    const Vec3f p = clamp(pos, 0.0f, 1.0f);
    const Vec3f scaled{std::min(p.x * n, n - 1e-4f),
                       std::min(p.y * n, n - 1e-4f),
                       std::min(p.z * n, n - 1e-4f)};
    const Vec3i base = floorToInt(scaled);
    const Vec3f frac = scaled - toFloat(base);

    for (int c = 0; c < 8; ++c) {
        const int dx = c & 1;
        const int dy = (c >> 1) & 1;
        const int dz = (c >> 2) & 1;
        const Vec3i v{base.x + dx, base.y + dy, base.z + dz};
        cs.coords[c] = v;
        cs.indices[c] = vertexIndex(level, v);
        const float wx = dx ? frac.x : 1.0f - frac.x;
        const float wy = dy ? frac.y : 1.0f - frac.y;
        const float wz = dz ? frac.z : 1.0f - frac.z;
        cs.weights[c] = wx * wy * wz;
    }
}

void
HashGridEncoding::encode(const Vec3f &pos, std::span<float> out,
                         VertexVisitor *visitor) const
{
    const int fpl = cfg_.featuresPerLevel;
    if (out.size() < static_cast<std::size_t>(cfg_.encodedDims()))
        panic("HashGridEncoding::encode output span too small");
    if (!has_fp32_)
        panic("HashGridEncoding::encode requires fp32 table (dropped)");

    CornerSet cs;
    for (int l = 0; l < cfg_.levels; ++l) {
        gatherCorners(l, pos, cs);
        float acc[8]; // featuresPerLevel <= 8 supported
        for (int f = 0; f < fpl; ++f)
            acc[f] = 0.0f;
        const std::size_t base = offsets_[l];
        for (int c = 0; c < 8; ++c) {
            const std::size_t at = base + static_cast<std::size_t>(cs.indices[c]) * fpl;
            const float w = cs.weights[c];
            for (int f = 0; f < fpl; ++f)
                acc[f] += w * params_[at + f];
            if (visitor)
                visitor->visit(l, c, cs.coords[c], cs.indices[c], dense_[l]);
        }
        for (int f = 0; f < fpl; ++f)
            out[static_cast<std::size_t>(l) * fpl + f] = acc[f];
    }
}

void
HashGridEncoding::backward(const Vec3f &pos, std::span<const float> dout)
{
    const int fpl = cfg_.featuresPerLevel;
    if (dout.size() < static_cast<std::size_t>(cfg_.encodedDims()))
        panic("HashGridEncoding::backward gradient span too small");
    if (!has_fp32_)
        panic("HashGridEncoding::backward requires fp32 table (dropped)");

    CornerSet cs;
    for (int l = 0; l < cfg_.levels; ++l) {
        gatherCorners(l, pos, cs);
        const std::size_t base = offsets_[l];
        for (int c = 0; c < 8; ++c) {
            const std::size_t at = base + static_cast<std::size_t>(cs.indices[c]) * fpl;
            const float w = cs.weights[c];
            for (int f = 0; f < fpl; ++f)
                grads_[at + f] += w * dout[static_cast<std::size_t>(l) * fpl + f];
        }
    }
}

void
HashGridEncoding::encodeBatch(std::span<const Vec3f> pos, std::span<float> out,
                              VertexVisitor *visitor) const
{
    const int fpl = cfg_.featuresPerLevel;
    const std::size_t n = pos.size();
    if (out.size() < static_cast<std::size_t>(cfg_.encodedDims()) * n)
        panic("HashGridEncoding::encodeBatch output span too small (%zu < %zu)",
              out.size(), static_cast<std::size_t>(cfg_.encodedDims()) * n);

    // One dispatch lookup per call; block-staged SoA corner
    // indices/weights ([8][kGatherBlock], corner-major) feed the gather
    // kernels, whose lanes map to samples — per point the corner
    // accumulation order matches encode() exactly.
    const simd::Kernels &kern = simd::kernels();
    std::uint32_t idx[8 * simd::kGatherBlock];
    float wts[8 * simd::kGatherBlock];
#if defined(F3D_HASH_SIMD_X86)
    // Corner staging (clamp/scale/floor/hash/trilinear weights) dominates
    // encodeBatch; vectorize it under the same dispatch pin as the
    // gather kernels so forceScalar() still exercises the scalar loop.
    const bool stage_avx2 = simd::activeDispatch() == simd::Dispatch::avx2;
#endif

    CornerSet cs;
    LevelCorners lc;
    for (int l = 0; l < cfg_.levels; ++l) {
        const std::size_t base = offsets_[l];
        const std::size_t row = static_cast<std::size_t>(l) * fpl * n;
        if (visitor) {
            // Access-trace observation always runs over the fp32 master
            // table (the chip model traces training-precision runs).
            if (!has_fp32_)
                panic("HashGridEncoding::encodeBatch visitor path requires "
                      "fp32 table (dropped)");
            // Observed path: full gatherCorners so the visitor sees
            // coords, in the same contiguous 8-corner groups.
            for (std::size_t j = 0; j < n; ++j) {
                gatherCorners(l, pos[j], cs);
                float acc[8]; // featuresPerLevel <= 8 supported
                for (int f = 0; f < fpl; ++f)
                    acc[f] = 0.0f;
                for (int c = 0; c < 8; ++c) {
                    const std::size_t at =
                        base + static_cast<std::size_t>(cs.indices[c]) * fpl;
                    const float w = cs.weights[c];
                    for (int f = 0; f < fpl; ++f)
                        acc[f] += w * params_[at + f];
                    visitor->visit(l, c, cs.coords[c], cs.indices[c], dense_[l]);
                }
                for (int f = 0; f < fpl; ++f)
                    out[row + static_cast<std::size_t>(f) * n + j] = acc[f];
            }
            continue;
        }

        // Hot path: level constants hoisted out of the point loop,
        // gather specialized for the common two-feature tables. Per
        // point the accumulation order matches encode() exactly.
        const float fres = static_cast<float>(resolutions_[l]);
        const bool dense = dense_[l];
        const std::uint32_t n1 = static_cast<std::uint32_t>(resolutions_[l] + 1);
        const std::uint32_t mask = cfg_.tableSize() - 1;
        const float *lp = has_fp32_ ? params_.data() + base : nullptr;
        const std::uint16_t *lq16 = quant_mode_ == QuantMode::fp16
                                        ? qtab_fp16_.data() + base
                                        : nullptr;
        const std::int8_t *lq8 = quant_mode_ == QuantMode::int8
                                     ? qtab_int8_.data() + base
                                     : nullptr;
        const float scale =
            lq8 != nullptr ? qlevel_scales_[static_cast<std::size_t>(l)].scale
                           : 1.0f;
        if (lp == nullptr && lq16 == nullptr && lq8 == nullptr)
            panic("HashGridEncoding::encodeBatch fp32 table dropped without "
                  "a packed table");
        if (fpl == 2) {
            for (std::size_t j0 = 0; j0 < n; j0 += simd::kGatherBlock) {
                const std::size_t nb = std::min(simd::kGatherBlock, n - j0);
                std::size_t j = 0;
#if defined(F3D_HASH_SIMD_X86)
                if (stage_avx2) {
                    const std::size_t n8 = nb & ~std::size_t(7);
                    if (n8 > 0)
                        stageCornersAvx2(pos.data() + j0, n8, fres, dense, n1,
                                         mask, kPrimeX, kPrimeY, kPrimeZ, idx,
                                         wts);
                    j = n8;
                }
#endif
                for (; j < nb; ++j) {
                    cornerIndicesWeights(pos[j0 + j], fres, dense, n1, mask,
                                         lc);
                    for (int c = 0; c < 8; ++c) {
                        idx[c * simd::kGatherBlock + j] = lc.indices[c];
                        wts[c * simd::kGatherBlock + j] = lc.weights[c];
                    }
                }
                float *out0 = out.data() + row + j0;
                float *out1 = out.data() + row + n + j0;
                if (lq16 != nullptr)
                    kern.gatherInterp2F16(lq16, idx, wts, nb, out0, out1);
                else if (lq8 != nullptr)
                    kern.gatherInterp2I8(lq8, scale, idx, wts, nb, out0, out1);
                else
                    kern.gatherInterp2(lp, idx, wts, nb, out0, out1);
            }
        } else {
            for (std::size_t j = 0; j < n; ++j) {
                cornerIndicesWeights(pos[j], fres, dense, n1, mask, lc);
                float acc[8];
                for (int f = 0; f < fpl; ++f)
                    acc[f] = 0.0f;
                for (int c = 0; c < 8; ++c) {
                    const std::size_t at =
                        static_cast<std::size_t>(lc.indices[c]) * fpl;
                    const float w = lc.weights[c];
                    if (lq16 != nullptr) {
                        for (int f = 0; f < fpl; ++f)
                            acc[f] += w * simd::halfBitsToFloat(lq16[at + f]);
                    } else if (lq8 != nullptr) {
                        for (int f = 0; f < fpl; ++f)
                            acc[f] +=
                                w * (static_cast<float>(lq8[at + f]) * scale);
                    } else {
                        for (int f = 0; f < fpl; ++f)
                            acc[f] += w * lp[at + f];
                    }
                }
                for (int f = 0; f < fpl; ++f)
                    out[row + static_cast<std::size_t>(f) * n + j] = acc[f];
            }
        }
    }
}

void
HashGridEncoding::backwardBatch(std::span<const Vec3f> pos, std::span<const float> dout)
{
    const int fpl = cfg_.featuresPerLevel;
    const std::size_t n = pos.size();
    if (dout.size() < static_cast<std::size_t>(cfg_.encodedDims()) * n)
        panic("HashGridEncoding::backwardBatch gradient span too small");
    if (!has_fp32_)
        panic("HashGridEncoding::backwardBatch requires fp32 table (dropped)");

    LevelCorners lc;
    for (int l = 0; l < cfg_.levels; ++l) {
        const std::size_t base = offsets_[l];
        const std::size_t row = static_cast<std::size_t>(l) * fpl * n;
        const float fres = static_cast<float>(resolutions_[l]);
        const bool dense = dense_[l];
        const std::uint32_t n1 = static_cast<std::uint32_t>(resolutions_[l] + 1);
        const std::uint32_t mask = cfg_.tableSize() - 1;
        float *lg = grads_.data() + base;
        for (std::size_t j = 0; j < n; ++j) {
            cornerIndicesWeights(pos[j], fres, dense, n1, mask, lc);
            for (int c = 0; c < 8; ++c) {
                float *g = lg + static_cast<std::size_t>(lc.indices[c]) * fpl;
                const float w = lc.weights[c];
                for (int f = 0; f < fpl; ++f)
                    g[f] += w * dout[row + static_cast<std::size_t>(f) * n + j];
            }
        }
    }
}

void
HashGridEncoding::backwardBatchInto(std::span<const Vec3f> pos,
                                    std::span<const float> dout,
                                    HashGradAccumulator &acc) const
{
    const int fpl = cfg_.featuresPerLevel;
    const std::size_t n = pos.size();
    if (dout.size() < static_cast<std::size_t>(cfg_.encodedDims()) * n)
        panic("HashGridEncoding::backwardBatchInto gradient span too small");
    if (!has_fp32_)
        panic("HashGridEncoding::backwardBatchInto requires fp32 table "
              "(dropped)");

    // Lazy one-time sizing; a reused accumulator never reallocates.
    if (acc.acc_.size() != params_.size()) {
        acc.acc_.assign(params_.size(), 0.0f);
        acc.seen_.assign(params_.size() / static_cast<std::size_t>(fpl), 0);
        acc.touched_.assign(static_cast<std::size_t>(cfg_.levels), {});
        acc.total_touched_ = 0;
    }

    LevelCorners lc;
    for (int l = 0; l < cfg_.levels; ++l) {
        const std::size_t base = offsets_[l];
        const std::size_t entry_base = base / static_cast<std::size_t>(fpl);
        const std::size_t row = static_cast<std::size_t>(l) * fpl * n;
        const float fres = static_cast<float>(resolutions_[l]);
        const bool dense = dense_[l];
        const std::uint32_t n1 = static_cast<std::uint32_t>(resolutions_[l] + 1);
        const std::uint32_t mask = cfg_.tableSize() - 1;
        float *lg = acc.acc_.data() + base;
        std::uint8_t *seen = acc.seen_.data() + entry_base;
        std::vector<std::uint32_t> &touched =
            acc.touched_[static_cast<std::size_t>(l)];
        for (std::size_t j = 0; j < n; ++j) {
            cornerIndicesWeights(pos[j], fres, dense, n1, mask, lc);
            for (int c = 0; c < 8; ++c) {
                const std::uint32_t idx = lc.indices[c];
                if (!seen[idx]) {
                    seen[idx] = 1;
                    touched.push_back(idx);
                    ++acc.total_touched_;
                }
                float *g = lg + static_cast<std::size_t>(idx) * fpl;
                const float w = lc.weights[c];
                for (int f = 0; f < fpl; ++f)
                    g[f] += w * dout[row + static_cast<std::size_t>(f) * n + j];
            }
        }
    }
}

void
HashGridEncoding::mergeGradShards(std::span<HashGradAccumulator *const> shards)
{
    const int fpl = cfg_.featuresPerLevel;
    for (int l = 0; l < cfg_.levels; ++l) {
        const std::size_t base = offsets_[l];
        const std::size_t entry_base = base / static_cast<std::size_t>(fpl);
        for (HashGradAccumulator *acc : shards) {
            if (!acc || acc->empty() ||
                acc->touched_.size() <= static_cast<std::size_t>(l))
                continue;
            for (const std::uint32_t idx :
                 acc->touched_[static_cast<std::size_t>(l)]) {
                const std::size_t at = base + static_cast<std::size_t>(idx) * fpl;
                for (int f = 0; f < fpl; ++f) {
                    grads_[at + f] += acc->acc_[at + f];
                    acc->acc_[at + f] = 0.0f;
                }
                acc->seen_[entry_base + idx] = 0;
            }
        }
    }
    for (HashGradAccumulator *acc : shards) {
        if (!acc)
            continue;
        for (std::vector<std::uint32_t> &t : acc->touched_)
            t.clear();
        acc->total_touched_ = 0;
    }
}

void
HashGridEncoding::zeroGrads()
{
    std::fill(grads_.begin(), grads_.end(), 0.0f);
}

void
HashGridEncoding::buildQuantized(QuantMode mode)
{
    if (!has_fp32_)
        panic("HashGridEncoding::buildQuantized requires fp32 master table "
              "(dropped)");
    qtab_fp16_.clear();
    qtab_int8_.clear();
    qlevel_scales_.clear();
    quant_mode_ = mode;
    if (mode == QuantMode::fp32)
        return;

    if (mode == QuantMode::fp16) {
        qtab_fp16_.resize(param_count_);
        for (std::size_t k = 0; k < param_count_; ++k)
            qtab_fp16_[k] = Half::fromFloat(params_[k]).bits();
        return;
    }

    // INT8: per-level symmetric scales; +4 pad bytes for the AVX2
    // 32-bit entry gathers (byte stride 2 over-reads the last entry).
    qtab_int8_.resize(param_count_ + 4, 0);
    qlevel_scales_.resize(static_cast<std::size_t>(cfg_.levels));
    for (int l = 0; l < cfg_.levels; ++l) {
        const std::size_t base = offsets_[l];
        const std::size_t count =
            static_cast<std::size_t>(entries_[l]) * cfg_.featuresPerLevel;
        const QuantScale qs = computeScale({params_.data() + base, count});
        qlevel_scales_[static_cast<std::size_t>(l)] = qs;
        const std::vector<std::int8_t> q =
            quantize({params_.data() + base, count}, qs);
        std::copy(q.begin(), q.end(), qtab_int8_.begin() + base);
    }
}

void
HashGridEncoding::dropFp32Weights()
{
    if (quant_mode_ == QuantMode::fp32)
        panic("HashGridEncoding::dropFp32Weights needs a packed table "
              "(quantMode fp32)");
    params_.clear();
    params_.shrink_to_fit();
    grads_.clear();
    grads_.shrink_to_fit();
    has_fp32_ = false;
}

std::size_t
HashGridEncoding::residentParamBytes() const
{
    return params_.size() * sizeof(float) +
           qtab_fp16_.size() * sizeof(std::uint16_t) +
           qtab_int8_.size() * sizeof(std::int8_t) +
           qlevel_scales_.size() * sizeof(QuantScale);
}

std::vector<float>
HashGridEncoding::dequantizedParams() const
{
    if (quant_mode_ == QuantMode::fp32) {
        if (!has_fp32_)
            panic("HashGridEncoding::dequantizedParams fp32 table dropped");
        return params_;
    }
    std::vector<float> out(param_count_);
    if (quant_mode_ == QuantMode::fp16) {
        for (std::size_t k = 0; k < param_count_; ++k)
            out[k] = simd::halfBitsToFloat(qtab_fp16_[k]);
        return out;
    }
    for (int l = 0; l < cfg_.levels; ++l) {
        const std::size_t base = offsets_[l];
        const std::size_t count =
            static_cast<std::size_t>(entries_[l]) * cfg_.featuresPerLevel;
        const float s = qlevel_scales_[static_cast<std::size_t>(l)].scale;
        for (std::size_t k = 0; k < count; ++k)
            out[base + k] = static_cast<float>(qtab_int8_[base + k]) * s;
    }
    return out;
}

} // namespace fusion3d::nerf
