/**
 * @file
 * Serving-layer throughput bench: closed-loop frame throughput of the
 * RenderServer across render-thread counts, on the Sec. VI-D style
 * deployment path (deserialized model -> registry -> tiled render).
 * Prints the usual table plus one machine-readable JSON summary line
 * (prefixed "JSON:") for scripted harvesting.
 *
 * Usage: bench_serve_throughput [frames_per_config] [resolution]
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "nerf/nerf_model.h"
#include "serve/model_registry.h"
#include "serve/scheduler.h"

using namespace fusion3d;

namespace
{

struct ThroughputPoint
{
    int threads;
    double fps;
    double meanLatencyMs;
    double meanBatchSize;
};

nerf::Camera
orbitFrame(int i, int size)
{
    return nerf::Camera::orbit({0.5f, 0.5f, 0.5f}, 1.4f, 35.0f, 20.0f,
                               static_cast<float>(i * 7 % 360), size, size);
}

ThroughputPoint
measure(const serve::ModelRegistry &registry, int threads, int frames, int size)
{
    serve::ServeConfig sc;
    sc.renderThreads = threads;
    sc.render.sampler.maxSamplesPerRay = 24;
    serve::RenderServer server(registry, sc);

    // Closed loop: four clients, each submitting its next frame only
    // after the previous one returned.
    std::atomic<int> next{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&server, &next, frames, size]() {
            for (int i = next.fetch_add(1); i < frames; i = next.fetch_add(1)) {
                serve::RenderRequest req;
                req.model = "bench";
                req.camera = orbitFrame(i, size);
                if (serve::isRejected(server.submit(req).get().outcome))
                    fatal("unloaded server rejected frame %d", i);
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    server.shutdown();

    return {threads, static_cast<double>(frames) / seconds,
            server.stats().meanLatencyMs(), server.stats().meanBatchSize()};
}

} // namespace

int
main(int argc, char **argv)
{
    const int frames = argc > 1 ? std::atoi(argv[1]) : 24;
    const int size = argc > 2 ? std::atoi(argv[2]) : 48;

    nerf::NerfModelConfig mc;
    mc.grid.levels = 6;
    mc.grid.featuresPerLevel = 2;
    mc.grid.log2TableSize = 12;
    mc.grid.baseResolution = 8;
    mc.grid.maxResolution = 64;
    mc.geoFeatures = 7;
    mc.densityHidden = 16;
    mc.colorHidden = 16;
    mc.shDegree = 2;

    serve::ModelRegistry registry(/*occupancy_resolution=*/16);
    registry.add("bench", std::make_unique<nerf::NerfModel>(mc, 2024));

    bench::banner("Serving throughput: closed-loop frames/s vs render threads");
    std::printf("%-16s %12s %18s %16s\n", "render threads", "frames/s",
                "mean latency (ms)", "mean batch size");

    std::vector<ThroughputPoint> points;
    for (const int threads : {1, 2, 4}) {
        points.push_back(measure(registry, threads, frames, size));
        const ThroughputPoint &p = points.back();
        std::printf("%-16d %12.2f %18.2f %16.2f\n", p.threads, p.fps,
                    p.meanLatencyMs, p.meanBatchSize);
    }
    bench::rule();

    std::string json = "{\"bench\":\"serve_throughput\",\"resolution\":" +
                       std::to_string(size) +
                       ",\"frames\":" + std::to_string(frames) + ",\"points\":[";
    char buf[160];
    for (std::size_t i = 0; i < points.size(); ++i) {
        std::snprintf(buf, sizeof(buf),
                      "%s{\"threads\":%d,\"fps\":%.3f,\"mean_latency_ms\":%.3f}",
                      i ? "," : "", points[i].threads, points[i].fps,
                      points[i].meanLatencyMs);
        json += buf;
    }
    std::snprintf(buf, sizeof(buf), "],\"speedup_4v1\":%.3f}",
                  points.back().fps / points.front().fps);
    json += buf;
    std::printf("JSON: %s\n", json.c_str());
    return 0;
}
