/** @file Tests of the TensoRF (CP-factorized) substrate and its MoE
 *  instantiation — the Sec. VI-C adaptation targets. */

#include <gtest/gtest.h>

#include "chip/hw_cost.h"
#include "nerf/moe.h"
#include "nerf/tensorf.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"
#include "scenes/factory.h"

namespace fusion3d::nerf
{
namespace
{

TensorfPipelineConfig
tinyConfig()
{
    TensorfPipelineConfig tc;
    tc.model.densityRank = 6;
    tc.model.appearanceRank = 8;
    tc.model.lineResolution = 48;
    tc.model.appearanceDim = 8;
    tc.model.colorHidden = 16;
    tc.sampler.maxSamplesPerRay = 24;
    tc.occupancyResolution = 16;
    return tc;
}

TEST(TensorfModel, OutputRanges)
{
    TensorfModel model(tinyConfig().model);
    Pcg32 rng(1);
    for (int i = 0; i < 100; ++i) {
        const PointEval pe = model.forwardPoint(rng.nextVec3(), rng.nextUnitVector());
        EXPECT_GE(pe.sigma, 0.0f); // softplus
        EXPECT_TRUE(std::isfinite(pe.sigma));
        for (int c = 0; c < 3; ++c) {
            EXPECT_GE(pe.rgb[c], 0.0f);
            EXPECT_LE(pe.rgb[c], 1.0f);
        }
    }
}

TEST(TensorfModel, DensityIsViewIndependent)
{
    TensorfModel model(tinyConfig().model);
    const Vec3f p{0.3f, 0.6f, 0.4f};
    const PointEval a = model.forwardPoint(p, {0.0f, 0.0f, 1.0f});
    const PointEval b = model.forwardPoint(p, {1.0f, 0.0f, 0.0f});
    EXPECT_FLOAT_EQ(a.sigma, b.sigma);
    EXPECT_FLOAT_EQ(model.queryDensity(p), a.sigma);
}

TEST(TensorfModel, GradientCheckFactors)
{
    TensorfModelConfig cfg = tinyConfig().model;
    TensorfModel model(cfg, 77);
    const Vec3f pos{0.37f, 0.61f, 0.22f};
    const Vec3f dir = normalize(Vec3f{0.2f, -0.6f, 0.77f});
    const float dsigma = 0.35f;
    const Vec3f drgb{0.8f, -0.4f, 0.2f};

    const auto loss = [&]() {
        const PointEval pe = model.forwardPoint(pos, dir);
        return pe.sigma * dsigma + dot(pe.rgb, drgb);
    };

    model.zeroGrads();
    model.backwardPoint(pos, dir, dsigma, drgb);

    // Central-difference check on a spread of touched factor/basis
    // parameters.
    int checked = 0;
    for (std::size_t i = 0; i < model.factorParams().size(); i += 11) {
        const float g = model.factorGrads()[i];
        if (g == 0.0f)
            continue; // untouched support
        const float eps = 1e-3f;
        float &p = model.factorParams()[i];
        const float orig = p;
        p = orig + eps;
        const float lp = loss();
        p = orig - eps;
        const float lm = loss();
        p = orig;
        EXPECT_NEAR(g, (lp - lm) / (2.0f * eps), 0.05f * (1.0f + std::fabs(g)))
            << "factor param " << i;
        ++checked;
    }
    EXPECT_GT(checked, 5);

    // And a directional-derivative sanity check: one optimizer step
    // along the accumulated gradients reduces the loss.
    const float before = loss();
    model.optimizerStep(1e-3f, 1e-3f);
    EXPECT_LT(loss(), before);
}

TEST(TensorfPipeline, TrainsOnToyScene)
{
    const auto scene = scenes::makeSyntheticScene("lego");
    scenes::DatasetConfig dc = scenes::syntheticRig(24);
    dc.trainViews = 6;
    dc.testViews = 1;
    dc.reference.steps = 96;
    const Dataset data = scenes::makeDataset(*scene, dc);

    TensorfPipeline pipe(tinyConfig());
    TrainerConfig tc;
    tc.iterations = 150;
    tc.raysPerBatch = 96;
    tc.occupancyWarmup = 60;
    tc.occupancyUpdateEvery = 40;
    Trainer trainer(pipe, data, tc);
    const double before = trainer.evalPsnr();
    const TrainResult result = trainer.run();
    EXPECT_GT(result.finalPsnr, before + 3.0);
    EXPECT_GT(result.finalPsnr, 15.0);
}

TEST(TensorfPipeline, QuantizeAndOccupancyHooksWork)
{
    TensorfPipeline pipe(tinyConfig());
    Pcg32 rng(3);
    pipe.updateOccupancy(rng);
    EXPECT_GE(pipe.grid().occupiedFraction(), 0.0);
    const std::size_t params = pipe.paramCount();
    pipe.quantizeWeights(); // must not crash or change the param count
    EXPECT_EQ(pipe.paramCount(), params);
}

std::vector<Ray>
cameraRays(int size = 12)
{
    const Camera cam = Camera::orbit({0.5f, 0.5f, 0.5f}, 1.2f, 30.0f, 15.0f,
                                     45.0f, size, size);
    std::vector<Ray> rays;
    for (int y = 0; y < cam.height(); ++y)
        for (int x = 0; x < cam.width(); ++x)
            rays.push_back(cam.rayForPixel(x, y));
    return rays;
}

/** The batch-native traceRays override is bit-exact with the scalar
 *  per-ray oracle (traceRay): level-major factor gathers change the
 *  memory access pattern, never a sample's arithmetic. */
TEST(TensorfPipeline, TraceRaysMatchesScalarOracleBitExact)
{
    TensorfPipeline batched(tinyConfig());
    TensorfPipeline scalar(tinyConfig()); // same seed -> same weights

    const std::vector<Ray> rays = cameraRays();
    Pcg32 rng_a(5, 1), rng_b(5, 1);
    std::vector<RayEval> evals(rays.size());
    batched.traceRays(rays, rng_a, /*record=*/false, evals);

    for (std::size_t r = 0; r < rays.size(); ++r) {
        const RayEval ref = scalar.traceRay(rays[r], rng_b, /*record=*/false);
        EXPECT_EQ(evals[r].color, ref.color) << "ray " << r;
        EXPECT_EQ(evals[r].transmittance, ref.transmittance) << "ray " << r;
        EXPECT_EQ(evals[r].samples, ref.samples) << "ray " << r;
    }
    EXPECT_EQ(rng_a.nextUint(), rng_b.nextUint());
}

/** A recorded batch tape dies loudly after zeroGrads dropped it —
 *  never a silent re-trace against a cleared accumulator state. */
TEST(TensorfPipeline, StaleTapeAfterZeroGradsFailsLoudly)
{
    TensorfPipeline pipe(tinyConfig());
    const std::vector<Ray> rays = cameraRays(4);
    Pcg32 rng(9, 2);
    std::vector<RayEval> evals(rays.size());
    pipe.traceRays(rays, rng, /*record=*/true, evals);
    pipe.zeroGrads();
    const std::vector<Vec3f> dcolors(rays.size(), Vec3f{0.1f, 0.1f, 0.1f});
    EXPECT_DEATH(pipe.backwardRays(dcolors), "without a recorded");
}

TEST(TensorfMoe, BuildsAndTraces)
{
    MoeConfigT<TensorfPipeline> mc;
    mc.numExperts = 2;
    mc.expert = tinyConfig();
    MoeField<TensorfPipeline> moe(mc);
    EXPECT_EQ(moe.numExperts(), 2);

    Pcg32 rng(4);
    const Ray ray({0.5f, 0.5f, -1.0f}, {0.0f, 0.0f, 1.0f});
    const RayEval ev = moe.traceRay(ray, rng, true);
    EXPECT_TRUE(std::isfinite(ev.color.x));
    moe.backwardLastRay({0.1f, 0.1f, 0.1f});
    moe.optimizerStep();
}

TEST(TensorfAdaptationModel, MatchesPaperRegime)
{
    const chip::TensorfAdaptation a = chip::tensorfAdaptation();
    // Paper: 11% area, 39% power reduction vs RT-NeRF.
    EXPECT_GT(a.areaSaving(), 0.05);
    EXPECT_LT(a.areaSaving(), 0.25);
    EXPECT_GT(a.powerSaving(), 0.30);
    EXPECT_LT(a.powerSaving(), 0.60);
    // Power saves proportionally more than area (dividers switch hard).
    EXPECT_GT(a.powerSaving(), a.areaSaving());
}

} // namespace
} // namespace fusion3d::nerf
