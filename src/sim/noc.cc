#include "sim/noc.h"

#include <algorithm>

#include "common/logging.h"

namespace fusion3d::sim
{

namespace
{

/**
 * Unit-gate area of an N x B crossbar: B N-input multiplexers for the
 * data path plus an N-requester arbiter per bank. Mux area scales with
 * the number of inputs; arbitration adds a per-bank fixed-priority tree.
 */
double
crossbarArea(std::uint32_t ports, std::uint32_t banks, std::uint32_t width_bits = 32)
{
    // Mux trees (ports-1 mux2 cells per bit per bank, ~3 gates each)
    // and per-bank arbiters, doubled for the global routing congestion
    // a full crossbar's wiring imposes at this width.
    const double mux_gates =
        static_cast<double>(banks) * (ports - 1) * width_bits * 3.0;
    const double arb_gates = static_cast<double>(banks) * ports * 4.0;
    return (mux_gates + arb_gates) * 2.0;
}

} // namespace

Crossbar::Crossbar(std::uint32_t ports, std::uint32_t banks, const std::string &name)
    : ports_(ports), banks_(banks), stats_(name),
      groups_(stats_.addCounter("groups")),
      scratch_(banks, 0)
{
    if (ports == 0 || banks == 0)
        fatal("Crossbar requires at least one port and one bank");
}

Cycles
Crossbar::routeGroup(std::span<const std::uint32_t> banks)
{
    std::fill(scratch_.begin(), scratch_.end(), 0u);
    std::uint32_t worst = 0;
    for (std::uint32_t b : banks) {
        if (b >= banks_)
            panic("Crossbar bank id %u out of range (%u banks)", b, banks_);
        worst = std::max(worst, ++scratch_[b]);
    }
    groups_.inc();
    return profile().traversalLatency + std::max<std::uint32_t>(worst, 1);
}

InterconnectProfile
Crossbar::profile() const
{
    InterconnectProfile p;
    // A switched fabric with arbitration adds a pipeline stage.
    p.traversalLatency = 1;
    p.areaUnits = crossbarArea(ports_, banks_);
    return p;
}

DirectConnect::DirectConnect(std::uint32_t ports, const std::string &name)
    : ports_(ports), stats_(name), groups_(stats_.addCounter("groups"))
{
    if (ports == 0)
        fatal("DirectConnect requires at least one port");
}

Cycles
DirectConnect::routeGroup(std::span<const std::uint32_t> banks)
{
    for (std::size_t i = 0; i < banks.size(); ++i) {
        if (banks[i] != i) {
            panic("DirectConnect: port %zu targeted bank %u; the tiled "
                  "mapping must be one-to-one", i, banks[i]);
        }
    }
    groups_.inc();
    return 1;
}

InterconnectProfile
DirectConnect::profile() const
{
    InterconnectProfile p;
    p.traversalLatency = 0;
    // Point-to-point wires only: a driver/repeater per bit per port,
    // no multiplexing or arbitration logic at all.
    p.areaUnits = static_cast<double>(ports_) * 32.0 * 0.5;
    return p;
}

} // namespace fusion3d::sim
