/**
 * @file
 * Top-level single-chip accelerator model. Captures real workload
 * traces from a functional NeRF pipeline (Stage-I ray-cube pairs and
 * Stage-II vertex accesses), replays them through the cycle models,
 * and reports end-to-end throughput / latency / energy — the quantities
 * of Tables III-V and Figs. 11-13.
 */

#ifndef FUSION3D_CHIP_CHIP_H_
#define FUSION3D_CHIP_CHIP_H_

#include <cstdint>
#include <memory>

#include "chip/config.h"
#include "chip/hash_tiler.h"
#include "chip/interp_module.h"
#include "chip/perf_model.h"
#include "chip/sampling_module.h"
#include "chip/tech_model.h"
#include "nerf/camera.h"
#include "nerf/dataset.h"
#include "nerf/pipeline.h"

namespace fusion3d::chip
{

/** Result of characterizing an inference (rendering) workload. */
struct InferenceReport
{
    ChipRunResult perf;
    SamplingRunStats stage1;
    InterpRunStats stage2;
    WorkloadProfile workload;
    /** Frames per second for the characterized camera. */
    double fps = 0.0;
};

/** Result of characterizing one training iteration's workload. */
struct TrainingReport
{
    ChipRunResult perf;
    SamplingRunStats stage1;
    InterpRunStats stage2;
    WorkloadProfile workload;
    /** Wall-clock seconds per training iteration of @p raysPerBatch. */
    double secondsPerIteration = 0.0;
    int raysPerBatch = 0;
};

/** The single-chip accelerator model. */
class Chip
{
  public:
    /**
     * @param cfg      Hardware configuration.
     * @param policy   Stage-II bank mapping (tiled by default).
     * @param schedule Stage-I scheduling (dynamic by default).
     */
    explicit Chip(const ChipConfig &cfg,
                  BankPolicy policy = BankPolicy::TwoLevelTiling,
                  SamplingSchedule schedule = SamplingSchedule::Dynamic,
                  bool normalized_preproc = true);

    const ChipConfig &config() const { return cfg_; }
    const TechModel &tech() const { return tech_; }
    const PerfModel &perfModel() const { return perf_; }

    /**
     * Characterize rendering @p camera's frame with @p pipeline.
     * Traces @p trace_rays pixel rays (stratified over the frame) and
     * extrapolates to the full frame.
     */
    InferenceReport evaluateInference(nerf::NerfPipeline &pipeline,
                                      const nerf::Camera &camera,
                                      int trace_rays = 2048,
                                      std::uint64_t seed = 99) const;

    /**
     * Characterize one training iteration of @p rays_per_batch random
     * rays from @p dataset with the pipeline's current state.
     */
    TrainingReport evaluateTraining(nerf::NerfPipeline &pipeline,
                                    const nerf::Dataset &dataset,
                                    int rays_per_batch = 4096,
                                    std::uint64_t seed = 99) const;

  private:
    ChipConfig cfg_;
    BankPolicy policy_;
    SamplingSchedule schedule_;
    bool normalized_;
    TechModel tech_;
    PerfModel perf_;
};

} // namespace fusion3d::chip

#endif // FUSION3D_CHIP_CHIP_H_
