/** @file Tests of the training loop's bookkeeping and scheduling hooks. */

#include <gtest/gtest.h>

#include "nerf/pipeline.h"
#include "nerf/serialize.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"
#include "scenes/factory.h"

namespace fusion3d::nerf
{
namespace
{

PipelineConfig
tinyPipeline()
{
    PipelineConfig pc;
    pc.model.grid.levels = 4;
    pc.model.grid.log2TableSize = 10;
    pc.model.grid.baseResolution = 4;
    pc.model.grid.maxResolution = 32;
    pc.model.densityHidden = 16;
    pc.model.colorHidden = 16;
    pc.model.geoFeatures = 7;
    pc.model.shDegree = 2;
    pc.sampler.maxSamplesPerRay = 16;
    pc.occupancyResolution = 12;
    return pc;
}

Dataset
tinyDataset()
{
    const auto scene = scenes::makeSyntheticScene("mic");
    scenes::DatasetConfig dc = scenes::syntheticRig(12);
    dc.trainViews = 4;
    dc.testViews = 1;
    dc.reference.steps = 48;
    return scenes::makeDataset(*scene, dc);
}

TEST(Trainer, CountsRaysAndIterations)
{
    const Dataset data = tinyDataset();
    NerfPipeline pipe(tinyPipeline());
    TrainerConfig tc;
    tc.iterations = 9;
    tc.raysPerBatch = 13;
    Trainer trainer(pipe, data, tc);
    const TrainResult r = trainer.run();
    EXPECT_EQ(r.iterationsRun, 9);
    EXPECT_EQ(r.totalRays, 9u * 13u);
    EXPECT_EQ(trainer.iteration(), 9);
    EXPECT_GE(r.totalCandidates, r.totalSamples);
}

TEST(Trainer, EvalHistorySchedule)
{
    const Dataset data = tinyDataset();
    NerfPipeline pipe(tinyPipeline());
    TrainerConfig tc;
    tc.iterations = 30;
    tc.raysPerBatch = 8;
    tc.evalEvery = 10;
    Trainer trainer(pipe, data, tc);
    const TrainResult r = trainer.run();
    // Evaluations at 10, 20, 30 plus the final entry.
    ASSERT_EQ(r.history.size(), 4u);
    EXPECT_EQ(r.history[0].first, 10);
    EXPECT_EQ(r.history[1].first, 20);
    EXPECT_EQ(r.history[2].first, 30);
    EXPECT_EQ(r.history[3].first, 30);
}

TEST(Trainer, ItersTo25NeverWhenUntrained)
{
    const Dataset data = tinyDataset();
    NerfPipeline pipe(tinyPipeline());
    TrainerConfig tc;
    tc.iterations = 2;
    tc.raysPerBatch = 4;
    Trainer trainer(pipe, data, tc);
    const TrainResult r = trainer.run();
    // Two iterations of a tiny model will not reach 25 dB on mic.
    EXPECT_EQ(r.itersTo25Psnr, -1);
}

TEST(Trainer, RenderViewDimensions)
{
    const Dataset data = tinyDataset();
    NerfPipeline pipe(tinyPipeline());
    Trainer trainer(pipe, data, TrainerConfig{});
    const Camera cam = Camera::orbit({0.5f, 0.5f, 0.5f}, 1.2f, 10.0f, 10.0f, 45.0f,
                                     7, 5);
    const Image img = trainer.renderView(cam);
    EXPECT_EQ(img.width(), 7);
    EXPECT_EQ(img.height(), 5);
    for (const Vec3f &p : img.pixels()) {
        EXPECT_GE(minComp(p), 0.0f);
        EXPECT_LE(maxComp(p), 1.0f);
    }
}

TEST(Trainer, QuantizeHookChangesParams)
{
    const Dataset data = tinyDataset();
    NerfPipeline pipe(tinyPipeline());

    // Train a few steps so weights leave their tiny init.
    TrainerConfig warm;
    warm.iterations = 10;
    warm.raysPerBatch = 16;
    Trainer(pipe, data, warm).run();

    const std::vector<float> before(pipe.model().densityNet().params().begin(),
                                    pipe.model().densityNet().params().end());
    pipe.quantizeWeights();
    int changed = 0;
    for (std::size_t i = 0; i < before.size(); ++i) {
        if (pipe.model().densityNet().params()[i] != before[i])
            ++changed;
    }
    EXPECT_GT(changed, 0);
}

TEST(Trainer, LossDecreasesOverTraining)
{
    const Dataset data = tinyDataset();
    NerfPipeline pipe(tinyPipeline());
    TrainerConfig tc;
    tc.iterations = 60;
    tc.raysPerBatch = 48;
    Trainer trainer(pipe, data, tc);
    const double before = trainer.evalPsnr();
    trainer.run();
    EXPECT_GT(trainer.evalPsnr(), before);
}

TEST(Trainer, EmptyDatasetIsFatal)
{
    NerfPipeline pipe(tinyPipeline());
    const Dataset empty;
    EXPECT_DEATH({ Trainer t(pipe, empty, TrainerConfig{}); }, "no training views");
}

TEST(Trainer, CheckpointScheduleWritesLoadableArtifacts)
{
    const Dataset data = tinyDataset();
    NerfPipeline pipe(tinyPipeline());
    TrainerConfig tc;
    tc.iterations = 4;
    tc.raysPerBatch = 4;
    tc.checkpointEvery = 2;
    tc.checkpointPath = testing::TempDir() + "trainer_ckpt.f3dm";
    Trainer trainer(pipe, data, tc);
    trainer.setCheckpointModel(&pipe.model());
    trainer.run();

    // Checkpoints at iterations 2 and 4, all atomic-renamed into place.
    EXPECT_EQ(trainer.checkpointsWritten(), 2u);
    EXPECT_EQ(trainer.checkpointsFailed(), 0u);
    const LoadResult r = loadModelVerbose(tc.checkpointPath);
    ASSERT_EQ(r.status, LoadStatus::ok) << r.message;
    EXPECT_EQ(r.model->paramCount(), pipe.model().paramCount());
}

TEST(Trainer, DeterministicWithSameSeed)
{
    const Dataset data = tinyDataset();
    TrainerConfig tc;
    tc.iterations = 15;
    tc.raysPerBatch = 16;
    tc.seed = 777;

    NerfPipeline a(tinyPipeline());
    NerfPipeline b(tinyPipeline());
    const double pa = Trainer(a, data, tc).run().finalPsnr;
    const double pb = Trainer(b, data, tc).run().finalPsnr;
    EXPECT_DOUBLE_EQ(pa, pb);
}

} // namespace
} // namespace fusion3d::nerf
