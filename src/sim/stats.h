/**
 * @file
 * Lightweight statistics package for the cycle-level models, loosely
 * following gem5's Stats: named scalar counters, averages, and
 * fixed-bucket histograms (used for the feature-fetch latency variance
 * of Fig. 12(d)). All stats belong to a StatGroup that can dump itself.
 */

#ifndef FUSION3D_SIM_STATS_H_
#define FUSION3D_SIM_STATS_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/quantiles.h"

namespace fusion3d::sim
{

/** A named monotonically increasing counter. */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name) : name_(std::move(name)) {}

    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::uint64_t value_ = 0;
};

/** Streaming mean/variance/min/max accumulator (Welford). */
class Distribution
{
  public:
    Distribution() = default;
    explicit Distribution(std::string name) : name_(std::move(name)) {}

    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Population variance. */
    double variance() const { return count_ ? m2_ / static_cast<double>(count_) : 0.0; }
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double total() const { return sum_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Integer-bucket histogram: one bucket per distinct sampled value. */
class Histogram
{
  public:
    Histogram() = default;
    explicit Histogram(std::string name) : name_(std::move(name)) {}

    void sample(std::uint64_t v, std::uint64_t weight = 1);
    void reset();

    std::uint64_t count() const { return count_; }
    const std::map<std::uint64_t, std::uint64_t> &buckets() const { return buckets_; }
    /** Fraction of samples equal to @p v. */
    double fraction(std::uint64_t v) const;
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::map<std::uint64_t, std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
};

/**
 * Streaming quantile estimator for tail-latency percentiles. The
 * implementation lives in obs (see obs/quantiles.h) so the SLO monitor
 * can share it; the sim alias keeps every existing call site intact.
 */
using Quantiles = obs::Quantiles;

/**
 * A registry of stats that dumps them in a stable text format. Models
 * register their stats at construction; benches call dump().
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    Counter &addCounter(const std::string &name);
    Distribution &addDistribution(const std::string &name);
    Histogram &addHistogram(const std::string &name);
    Quantiles &addQuantiles(const std::string &name);

    /** Reset every registered stat. */
    void resetAll();

    /** Write "<group>.<stat> <value>" lines. */
    void dump(std::ostream &os) const;

    /**
     * Append every stat as flat "<group>.<stat>" metric samples
     * (counters as counters; distribution moments, quantiles and
     * histogram buckets as gauges/labelled counters). Not synchronized:
     * thread-safe wrappers (serve::ServerStats) call this under their
     * own lock from a registered obs::MetricsRegistry collector.
     */
    void collect(obs::MetricSink &sink) const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    // Deques-of-values via unique ownership keeps references stable.
    std::vector<std::unique_ptr<Counter>> counters_;
    std::vector<std::unique_ptr<Distribution>> distributions_;
    std::vector<std::unique_ptr<Histogram>> histograms_;
    std::vector<std::unique_ptr<Quantiles>> quantiles_;
};

} // namespace fusion3d::sim

#endif // FUSION3D_SIM_STATS_H_
