/**
 * @file
 * Image-warping frame reuse, the technique MetaVRain [13] relies on for
 * real-time rates (Table III footnote: real-time only when > 97% of
 * pixels overlap the previous frame). Originally an extension so the
 * bench could quantify when warping suffices; now also the first rung
 * of the serving layer's *accelerate* ladder (src/serve/reproject):
 * a session's previous frame is forward-warped into the new view and
 * only the tiles the warp could not reconstruct are ray-marched.
 *
 * The previous frame's pixels are lifted to 3D with the composited
 * depth map and splatted into the new view (forward warping with a
 * z-buffer); uncovered pixels must be re-rendered. The warp also
 * reports a per-target-pixel depth map (so a warped frame can itself
 * seed the next warp) and flags pixels where splats from meaningfully
 * different depths collided — occlusion boundaries, the tell-tale of
 * a disocclusion that nearest-surface splatting papered over.
 */

#ifndef FUSION3D_NERF_IMAGE_WARP_H_
#define FUSION3D_NERF_IMAGE_WARP_H_

#include <vector>

#include "common/image.h"
#include "nerf/camera.h"

namespace fusion3d::nerf
{

/** A rendered frame with its per-pixel termination depth. */
struct DepthFrame
{
    Image color;
    /** Ray-parameter depth per pixel (same layout as color). */
    std::vector<float> depth;
    Camera camera;
};

/** Tunables of forwardWarp(). */
struct WarpOptions
{
    /**
     * Two splats from *non-adjacent* source pixels landing in the same
     * target pixel whose view-space depths differ by more than this
     * tolerance mark an occlusion boundary (a fold of the warp): the
     * pixel is flagged in WarpResult::depthConflict so tile
     * invalidation has a depth-consistency signal, not just a coverage
     * one. Adjacent source pixels collide on every warp — their 2x2
     * footprints overlap — so their depth gaps are surface gradient,
     * not occlusion, and are never flagged.
     */
    float depthTolerance = 0.1f;
};

/** Result of warping a frame into a new view. */
struct WarpResult
{
    Image image;
    /** Per-pixel flag: true where the warp produced a value. */
    std::vector<bool> covered;
    /** Fraction of target pixels covered by the warp. */
    double coverage = 0.0;
    /**
     * Ray-parameter depth of each covered target pixel (0 where
     * uncovered), making the warped frame reusable as the next warp's
     * DepthFrame source.
     */
    std::vector<float> depth;
    /** Per-pixel flag: splats from non-adjacent source pixels disagreed
     *  by more than depthTolerance (see WarpOptions). */
    std::vector<bool> depthConflict;
};

/**
 * Forward-warp @p prev into @p target_camera with z-buffered splatting.
 * Each source pixel is splatted into a 2x2 footprint so small motions
 * do not leave pinholes.
 */
WarpResult forwardWarp(const DepthFrame &prev, const Camera &target_camera,
                       const WarpOptions &options = WarpOptions{});

/** Per-tile warp statistics over a fixed square tiling of the target. */
struct WarpTileStats
{
    int tileSize = 0;
    int tilesX = 0;
    int tilesY = 0;
    /** Fraction of the tile's pixels the warp covered, per tile. */
    std::vector<double> coverage;
    /** Fraction of the tile's pixels flagged depth-conflict, per tile. */
    std::vector<double> conflict;

    int tiles() const { return tilesX * tilesY; }
};

/**
 * Classify @p result into @p tile_size x @p tile_size tiles (edge tiles
 * clipped to the image) and report per-tile coverage and depth-conflict
 * fractions — the invalidation signal of the reprojection renderer.
 */
WarpTileStats warpTileStats(const WarpResult &result, int tile_size);

/**
 * Effective speedup of warp-assisted rendering: only uncovered pixels
 * are re-rendered, plus @p warp_overhead — the warp pass's cost as a
 * fraction of a full render. The default is a modeling fallback only;
 * benches measure the actual warp pass and pass the measured ratio
 * (see bench_ablation_warp / bench_reproject).
 */
double warpAssistSpeedup(double coverage, double warp_overhead = 0.05);

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_IMAGE_WARP_H_
