/**
 * @file
 * Core vocabulary of the render-serving subsystem: requests, outcomes,
 * responses, and the server configuration. `fusion3d::serve` turns a
 * deserialized `.f3dm` model (the paper's ~10 MB deployment artifact,
 * Sec. VI-D) into a render *service*: requests are admitted into a
 * bounded queue, batched by model, rendered as parallel row-tiles on a
 * work-sharing thread pool, and degraded or shed under deadline
 * pressure instead of blocking.
 */

#ifndef FUSION3D_SERVE_SERVE_H_
#define FUSION3D_SERVE_SERVE_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/image.h"
#include "nerf/camera.h"
#include "nerf/parallel_render.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serve/reproject.h"
#include "serve/session.h"

namespace fusion3d::serve
{

/** Clock all deadlines are expressed in. */
using Clock = std::chrono::steady_clock;

/** How the server disposed of a request. */
enum class Outcome
{
    /** Rendered at the requested resolution. */
    renderedFull,
    /** Degrade step 1: rendered at half resolution, upsampled. */
    renderedHalf,
    /** Degrade step 2: reprojected from the model's last rendered
     *  frame via the image-warp path (frame reuse a la MetaVRain). */
    renderedWarp,
    /** Accelerate rung: the session's previous frame was warped into
     *  the requested view and only the invalidated tiles were
     *  ray-marched (temporal reprojection cache). Full fidelity at a
     *  fraction of the rays — not a degraded outcome. */
    renderedReproject,
    /** Shed at admission: the bounded queue was full. */
    rejectedQueueFull,
    /** Shed at dispatch: the deadline had passed, or no degrade step
     *  could meet it. */
    rejectedDeadline,
    /** The named model is not in the registry. */
    rejectedUnknownModel,
    /** Shed because the server stopped: submitted after stop()/
     *  shutdown(), or still queued when stop() shed the backlog. */
    rejectedShutdown,
    /** The render worker failed (an exception, possibly injected via
     *  the "serve.dispatch.throw" fault point). Terminal: the waiter
     *  gets this response instead of hanging on a dead promise. */
    failedInternal,
    /** Shed at admission by per-tenant QoS: the submitting tenant
     *  already holds its configured share of the queue. Other tenants
     *  are unaffected — this is the isolation working, not overload. */
    rejectedTenantQuota,
};

/** Number of Outcome values (counters, per-outcome tables). */
inline constexpr int kOutcomeCount = 10;

/** Human-readable name of @p outcome. */
const char *outcomeName(Outcome outcome);

/** True for the shed (non-image-producing) outcomes. */
bool isRejected(Outcome outcome);

/** One render request. */
struct RenderRequest
{
    /** Registry name of the model to render. */
    std::string model;
    /** View to render; its width/height set the requested resolution. */
    nerf::Camera camera;
    /** Completion deadline; max() means "no deadline". */
    Clock::time_point deadline = Clock::time_point::max();
    /** Higher priority is dequeued first. */
    int priority = 0;
    /**
     * Tenant this request bills to ("" = the anonymous default
     * tenant). Per-tenant QoS — admission quotas, in-flight caps,
     * priority aging, latency quantiles — keys on this id, so one
     * zipf-heavy tenant cannot starve the tail of the fleet.
     */
    std::string tenant;
    /**
     * Client/session id of a camera stream; empty = stateless request.
     * Session requests cache their rendered frame in the server's
     * SessionStore, and follow-up requests with the same id are served
     * by temporal reprojection (warp + partial re-render) instead of a
     * full render whenever the cached frame holds up.
     */
    std::string session;
    /**
     * Causal trace context, minted by RenderServer::submit (request id
     * + root span id). Every span emitted on behalf of this request —
     * on the dispatcher, on pool workers, inside nested tile renders —
     * is tagged with it, so the Chrome/Perfetto dump reassembles into
     * one tree per request (tools/f3d_trace). Callers leave it zero.
     */
    obs::TraceContext trace;
};

/** What the server returns for one request. */
struct RenderResponse
{
    Outcome outcome = Outcome::rejectedDeadline;
    /** Rendered (or warped) frame at the requested resolution; empty
     *  when the request was rejected. */
    Image image;
    /** Submit-to-completion latency. */
    double latencyMs = 0.0;
    /** Server-assigned request id (submission order). */
    std::uint64_t id = 0;
};

/**
 * Per-tenant quality-of-service policy, enforced in the request queue.
 * Defaults disable every mechanism, preserving the single-tenant
 * behaviour bit for bit.
 */
struct TenantQosConfig
{
    /**
     * Requests of one tenant allowed in flight (popped but not yet
     * completed) at once; 0 = unlimited. A tenant at its cap keeps its
     * requests *queued* — they are passed over at dispatch, not
     * rejected — so the cap throttles without dropping.
     */
    int maxInFlightPerTenant = 0;
    /**
     * Fraction of the queue capacity one tenant may occupy, in
     * (0, 1]. A tenant over its share is shed at admission
     * (Outcome::rejectedTenantQuota) while other tenants still admit.
     */
    double maxQueueShare = 1.0;
    /**
     * Priority aging: effective priority grows by this much per second
     * a request has waited in the queue, so a low-priority tenant
     * behind a zipf-heavy high-priority one is guaranteed eventual
     * dispatch. 0 disables aging (strict static priority).
     */
    double agingPriorityPerSecond = 0.0;
};

/** Server configuration. */
struct ServeConfig
{
    /** Worker threads of the render pool. Requests run as pool tasks
     *  and split their frames into row-tiles on the same pool, so idle
     *  workers help finish a neighbour's frame (work sharing). */
    int renderThreads = 2;
    /** Bounded request-queue capacity (admission control). */
    int queueCapacity = 64;
    /** Max same-model requests dispatched as one batch. */
    int maxBatch = 8;
    /** Requests in flight before the dispatcher stops pulling from the
     *  queue; 0 = 2 * renderThreads. Backpressure makes overload land
     *  in the bounded queue, where admission control can see it. */
    int maxInFlight = 0;
    /** Tiled-render parameters (sampler, compositing, tile height). */
    nerf::TiledRenderConfig render;
    /** Safety factor on the cost estimate used by the degrade ladder:
     *  a request is degraded when estimated cost * headroom exceeds
     *  the time remaining until its deadline. */
    double estimateHeadroom = 1.2;
    /** Injected render delay when the "serve.dispatch.slow" fault point
     *  fires (chaos testing only; the point never fires unarmed). */
    double faultSlowRenderMs = 5.0;
    /** Per-tenant admission quotas, in-flight caps, and priority
     *  aging (multi-tenant fleets). */
    TenantQosConfig qos;
    /** Temporal reprojection of session requests (the accelerate rung
     *  above the degrade ladder). */
    ReprojectConfig reproject;
    /** Per-session frame cache behind the reprojection mode. */
    SessionStoreConfig sessionStore;
    /** SLO watchdog (latency + error burn rates over the completed
     *  requests; disabled by default). A breaching window trips a
     *  flight-recorder dump so the offending spans are preserved. */
    obs::SloConfig slo;
};

} // namespace fusion3d::serve

#endif // FUSION3D_SERVE_SERVE_H_
