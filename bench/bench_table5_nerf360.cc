/**
 * @file
 * Regenerates Table V: per-scene speedup and energy efficiency of the
 * multi-chip system over the Nvidia 2080Ti on the seven NeRF-360-style
 * large scenes, for both inference and training.
 */

#include <cstdio>
#include <vector>

#include "baselines/platforms.h"
#include "bench/bench_util.h"
#include "multichip/system.h"
#include "nerf/moe.h"
#include "scenes/dataset_gen.h"

using namespace fusion3d;

int
main()
{
    bench::banner(
        "Table V: multi-chip speedup & energy efficiency vs 2080Ti (NeRF-360 scenes)");

    const auto &gpu = baselines::platform("Nvidia 2080Ti");
    const multichip::SystemConfig sc;
    const multichip::MultiChipSystem sys(sc);

    std::printf("%-10s %14s %14s %14s %14s\n", "Scene", "Inf speedup", "Trn speedup",
                "Inf energy", "Trn energy");
    bench::rule(72);

    double worst_inf = 1e9, best_inf = 0.0;
    for (const std::string &name : scenes::nerf360SceneNames()) {
        const auto scene = scenes::makeNerf360Scene(name);

        nerf::MoeConfig mc;
        mc.numExperts = 4;
        mc.expert = bench::defaultPipeline();
        mc.expert.model.grid.log2TableSize = 14;
        mc.expert.sampler.maxSamplesPerRay = 48;
        nerf::MoeNerf moe(mc);
        bench::bootstrapMoeGates(moe, *scene);

        const nerf::Camera cam = nerf::Camera::orbit({0.5f, 0.4f, 0.5f}, 0.38f, 60.0f,
                                                     12.0f, 70.0f, 800, 800);
        const auto inf = sys.evaluateInference(moe, cam, 700);

        scenes::DatasetConfig dc = scenes::nerf360Rig(24);
        dc.trainViews = 4;
        dc.testViews = 1;
        dc.reference.steps = 64;
        const nerf::Dataset ds = scenes::makeDataset(*scene, dc);
        const auto trn = sys.evaluateTraining(moe, ds, 1024);

        // The GPU runs the same number of sampled points at its
        // published throughput; energy at its typical power.
        const double pts_inf = static_cast<double>(inf.totalPoints);
        const double pts_trn = static_cast<double>(trn.totalPoints);
        const double gpu_inf_s = *gpu.inferenceSeconds(pts_inf);
        const double gpu_trn_s = *gpu.trainingSeconds(pts_trn);
        const double gpu_inf_j = gpu_inf_s * *gpu.typicalPowerW;
        const double gpu_trn_j = gpu_trn_s * *gpu.typicalPowerW;

        const double inf_speedup = gpu_inf_s / inf.seconds;
        const double trn_speedup = gpu_trn_s / trn.seconds;
        const double inf_energy = gpu_inf_j / inf.energyJ;
        const double trn_energy = gpu_trn_j / trn.energyJ;
        worst_inf = std::min(worst_inf, inf_speedup);
        best_inf = std::max(best_inf, inf_speedup);

        std::printf("%-10s %13.1fx %13.1fx %13.0fx %13.0fx\n", name.c_str(),
                    inf_speedup, trn_speedup, inf_energy, trn_energy);
        std::fflush(stdout);
    }
    bench::rule(72);
    std::printf("Paper: inference speedup 3.1x (garden) .. 9.2x (bicycle); training "
                "5.5x .. 8.8x;\n       inference energy eff. 128x .. 380x; training "
                "229x .. 365x.\n");
    std::printf("Reproduced spread across scenes: %.1fx .. %.1fx inference speedup.\n",
                worst_inf, best_inf);
    return 0;
}
