/**
 * @file
 * Temporal-reprojection serving bench: renders an orbiting-camera
 * session trace twice — once frame-by-frame through the full tiled
 * renderer, once through serve::reprojectRender chained on its own
 * output, exactly as the session store feeds it — and compares rays
 * marched, frame rate, and PSNR against the full-render truth.
 *
 * Prints the usual table plus one machine-readable JSON summary line
 * (prefixed "JSON:") and exits non-zero when the acceptance gates of
 * the reprojection mode fail: the reprojected chain must ray-march
 * <= 30 % of the full-render rays at a minimum PSNR >= 30 dB. The warp
 * overhead is *measured* (warp seconds vs full-render seconds), not
 * modeled; both the measured ratio and the resulting speedup are
 * reported.
 *
 * Usage: bench_reproject [--quick] [size]
 *
 *  --quick  smaller frames and a shorter trace for CI smoke runs (the
 *           gates, not the absolute rates, are what CI enforces).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/simd.h"
#include "nerf/parallel_render.h"
#include "serve/model_registry.h"
#include "serve/reproject.h"

using namespace fusion3d;

namespace
{

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

nerf::Camera
orbitFrame(int i, float delta_deg, int size)
{
    return nerf::Camera::orbit({0.5f, 0.5f, 0.5f}, 1.4f, 35.0f + delta_deg * i,
                               20.0f, 45.0f, size, size);
}

} // namespace

int
main(int argc, char **argv)
{
    int size = 128;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::atoi(argv[i]) > 0)
            size = std::atoi(argv[i]);
        else
            fatal("usage: %s [--quick] [size]", argv[0]);
    }
    if (quick)
        size = std::min(size, 96);
    const int frames = quick ? 8 : 16;
    const float delta_deg = 0.5f;

    bench::banner("Temporal reprojection serving (orbit session trace)");
    std::printf("frame size %dx%d, %d frames, %.1f deg/frame orbit\n\n", size,
                size, frames, static_cast<double>(delta_deg));

    serve::ModelRegistry registry(/*occupancy_resolution=*/16);
    registry.add("bench", std::make_unique<nerf::NerfModel>(
                              bench::defaultPipeline().model, 2024));
    const serve::ModelEntry *entry = registry.find("bench");

    nerf::TiledRenderConfig rc;
    rc.sampler.maxSamplesPerRay = 32;
    const serve::ReprojectConfig cfg;
    const std::uint64_t pixels = static_cast<std::uint64_t>(size) * size;

    // Full-render truth chain (also the PSNR reference).
    std::vector<nerf::DepthFrame> truth;
    truth.reserve(static_cast<std::size_t>(frames) + 1);
    const auto t_full = std::chrono::steady_clock::now();
    for (int i = 0; i <= frames; ++i)
        truth.push_back(nerf::renderDepthFrameTiled(
            *entry->model, &entry->grid, orbitFrame(i, delta_deg, size), rc));
    const double full_s = secondsSince(t_full);
    const double full_frame_s = full_s / (frames + 1);

    // Reprojection chain: frame 0 is the session seed (a full render,
    // already counted in neither chain's gated totals); each further
    // frame warps the previous *served* frame, as the server does.
    serve::SessionFrame session;
    session.frame = std::make_shared<const nerf::DepthFrame>(truth[0]);
    session.model = "bench";
    session.epoch = entry->epoch;
    session.tileSize = cfg.tileSize;
    session.tileAge =
        serve::freshTileAges(truth[0].camera, cfg.tileSize, cfg.maxTileAge);

    std::printf("%-7s %14s %12s %12s %11s\n", "frame", "rays marched",
                "tiles", "PSNR (dB)", "warp (ms)");
    bench::rule(62);

    std::uint64_t rays_reproject = 0;
    double min_psnr = 1e9, warp_s = 0.0, reproject_s = 0.0;
    int fallbacks = 0;
    for (int i = 1; i <= frames; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        serve::ReprojectOutput out = serve::reprojectRender(
            *entry->model, &entry->grid, orbitFrame(i, delta_deg, size),
            session, rc, cfg, nullptr);
        reproject_s += secondsSince(t0);

        rays_reproject += out.stats.raysRendered;
        warp_s += out.stats.warpSeconds;
        fallbacks += out.stats.reprojected ? 0 : 1;
        const double db =
            psnr(out.frame.color, truth[static_cast<std::size_t>(i)].color);
        min_psnr = std::min(min_psnr, db);
        std::printf("%-7d %14llu %6d/%-5d %12.1f %11.2f\n", i,
                    static_cast<unsigned long long>(out.stats.raysRendered),
                    out.stats.tilesRerendered, out.stats.tilesTotal, db,
                    out.stats.warpSeconds * 1e3);

        session.frame =
            std::make_shared<const nerf::DepthFrame>(std::move(out.frame));
        session.tileAge = std::move(out.tileAge);
    }
    bench::rule(62);

    const std::uint64_t rays_full = pixels * static_cast<std::uint64_t>(frames);
    const double ray_fraction = static_cast<double>(rays_reproject) /
                                static_cast<double>(rays_full);
    const double fps_full = (frames + 1) / full_s;
    const double fps_reproject = frames / reproject_s;
    // Measured warp overhead: the warp pass's cost as a fraction of one
    // full render — the ratio warpAssistSpeedup() models as 5 % by
    // default. Feed the measurement back so the reported speedup is
    // empirical, not assumed.
    const double warp_overhead = (warp_s / frames) / full_frame_s;
    const double speedup_measured =
        nerf::warpAssistSpeedup(1.0 - ray_fraction, warp_overhead);

    std::printf("rays: %llu of %llu (%.1f%%), min PSNR %.1f dB, "
                "%d fallback(s)\n",
                static_cast<unsigned long long>(rays_reproject),
                static_cast<unsigned long long>(rays_full),
                ray_fraction * 100.0, min_psnr, fallbacks);
    std::printf("frames/s: full %.2f, reprojected %.2f  |  measured warp "
                "overhead %.1f%% of a full render -> %.2fx speedup\n",
                fps_full, fps_reproject, warp_overhead * 100.0,
                speedup_measured);

    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"bench\":\"reproject\",\"dispatch\":\"%s\",\"quick\":%s,\"size\":%d,"
        "\"frames\":%d,"
        "\"rays_full\":%llu,\"rays_reproject\":%llu,\"ray_fraction\":%.4f,"
        "\"min_psnr_db\":%.2f,\"fallbacks\":%d,\"fps_full\":%.3f,"
        "\"fps_reproject\":%.3f,\"warp_overhead_measured\":%.4f,"
        "\"speedup_measured\":%.3f}",
        simd::dispatchName(), quick ? "true" : "false", size, frames,
        static_cast<unsigned long long>(rays_full),
        static_cast<unsigned long long>(rays_reproject), ray_fraction, min_psnr,
        fallbacks, fps_full, fps_reproject, warp_overhead, speedup_measured);
    std::printf("JSON: %s\n", buf);

    bool fail = false;
    if (ray_fraction > 0.30) {
        std::fprintf(stderr,
                     "FAIL: reprojection marched %.1f%% of full-render rays "
                     "(gate: <= 30%%)\n",
                     ray_fraction * 100.0);
        fail = true;
    }
    if (min_psnr < 30.0) {
        std::fprintf(stderr,
                     "FAIL: min PSNR %.1f dB vs full render (gate: >= 30 dB)\n",
                     min_psnr);
        fail = true;
    }
    return fail ? 1 : 0;
}
