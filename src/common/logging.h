/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal invariant was violated (a Fusion-3D bug); aborts.
 * fatal()  - the user supplied an impossible configuration; exits cleanly.
 * warn()   - something is suspicious but the run can continue.
 * inform() - plain status output.
 *
 * All writers serialize on one mutex, so lines from concurrent pool
 * workers never interleave. Environment knobs (read once, at first use):
 *
 *  - FUSION3D_LOG_LEVEL = silent | warn | info (default info): "warn"
 *    suppresses inform(), "silent" also suppresses warn(). panic() and
 *    fatal() always print.
 *  - FUSION3D_LOG_TIMESTAMPS = 1 prefixes each line with seconds since
 *    process logging start, e.g. "[  12.345]".
 */

#ifndef FUSION3D_COMMON_LOGGING_H_
#define FUSION3D_COMMON_LOGGING_H_

#include <cstdarg>
#include <string>

namespace fusion3d
{

/** Verbosity threshold of warn()/inform(). */
enum class LogLevel
{
    silent = 0, ///< only panic/fatal
    warning = 1,
    info = 2,
};

/** Current threshold (from FUSION3D_LOG_LEVEL unless overridden). */
LogLevel logLevel();

/** Override the threshold programmatically (wins over the env var). */
void setLogLevel(LogLevel level);

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Abort with a message; call when an internal invariant is broken. */
[[noreturn]] void panic(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Exit(1) with a message; call on invalid user configuration. */
[[noreturn]] void fatal(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace fusion3d

#endif // FUSION3D_COMMON_LOGGING_H_
