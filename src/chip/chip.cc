#include "chip/chip.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace fusion3d::chip
{

Chip::Chip(const ChipConfig &cfg, BankPolicy policy, SamplingSchedule schedule,
           bool normalized_preproc)
    : cfg_(cfg), policy_(policy), schedule_(schedule), normalized_(normalized_preproc),
      tech_(cfg), perf_(cfg, tech_)
{
}

namespace
{

/** Shared trace-capture result. */
struct Capture
{
    std::vector<nerf::RayWorkload> workloads;
    std::uint64_t candidates = 0;
    std::uint64_t valid = 0;
    std::uint64_t composited = 0;
};

} // namespace

InferenceReport
Chip::evaluateInference(nerf::NerfPipeline &pipeline, const nerf::Camera &camera,
                        int trace_rays, std::uint64_t seed) const
{
    InterpModule interp(cfg_, policy_);
    pipeline.setVertexVisitor(&interp);

    Pcg32 rng(seed, 0xb5297a4d3f84d5a3ULL);
    Capture cap;
    cap.workloads.reserve(static_cast<std::size_t>(trace_rays));

    // Stratified pixel picks across the frame.
    const std::uint32_t pixels =
        static_cast<std::uint32_t>(camera.width()) * camera.height();
    for (int i = 0; i < trace_rays; ++i) {
        const std::uint32_t pick = rng.nextBounded(pixels);
        const int px = static_cast<int>(pick % camera.width());
        const int py = static_cast<int>(pick / camera.width());
        const Ray ray = camera.rayForPixel(px, py);
        nerf::RayWorkload wl;
        const nerf::RayEval ev = pipeline.traceRay(ray, rng, /*record=*/false, &wl);
        cap.candidates += static_cast<std::uint64_t>(ev.candidates);
        cap.valid += static_cast<std::uint64_t>(ev.samples);
        cap.composited += static_cast<std::uint64_t>(ev.composited);
        cap.workloads.push_back(std::move(wl));
    }
    pipeline.setVertexVisitor(nullptr);

    const SamplingModule sampling(cfg_, schedule_, normalized_);
    const SamplingRunStats s1 = sampling.run(cap.workloads);
    const InterpRunStats s2 = interp.stats();

    // Extrapolate the traced subset to the full frame.
    const double scale = static_cast<double>(pixels) /
                         std::max<double>(static_cast<double>(trace_rays), 1.0);
    WorkloadProfile wl;
    wl.rays = pixels;
    wl.candidates = static_cast<std::uint64_t>(static_cast<double>(cap.candidates) * scale);
    wl.validPoints = static_cast<std::uint64_t>(static_cast<double>(cap.valid) * scale);
    wl.compositedPoints =
        static_cast<std::uint64_t>(static_cast<double>(cap.composited) * scale);
    wl.levels = pipeline.model().config().grid.levels;
    wl.macsPerPoint = pipeline.model().macsPerPoint();
    wl.avgGroupCycles = s2.groups ? s2.meanGroupLatency : 1.0;

    InferenceReport report;
    report.stage1 = s1;
    report.stage2 = s2;
    report.workload = wl;
    report.perf = perf_.inference(wl, s1);
    report.fps = report.perf.seconds > 0.0 ? 1.0 / report.perf.seconds : 0.0;
    return report;
}

TrainingReport
Chip::evaluateTraining(nerf::NerfPipeline &pipeline, const nerf::Dataset &dataset,
                       int rays_per_batch, std::uint64_t seed) const
{
    if (dataset.train.empty())
        fatal("Chip::evaluateTraining: dataset has no training views");

    InterpModule interp(cfg_, policy_);
    pipeline.setVertexVisitor(&interp);

    Pcg32 rng(seed, 0x9e3779b97f4a7c15ULL);
    Capture cap;
    cap.workloads.reserve(static_cast<std::size_t>(rays_per_batch));
    for (int i = 0; i < rays_per_batch; ++i) {
        const nerf::TrainView &view = dataset.train[rng.nextBounded(
            static_cast<std::uint32_t>(dataset.train.size()))];
        const int px =
            static_cast<int>(rng.nextBounded(static_cast<std::uint32_t>(
                view.image.width())));
        const int py =
            static_cast<int>(rng.nextBounded(static_cast<std::uint32_t>(
                view.image.height())));
        const Ray ray = view.camera.rayForPixel(px, py, rng.nextFloat(), rng.nextFloat());
        nerf::RayWorkload wl;
        const nerf::RayEval ev = pipeline.traceRay(ray, rng, /*record=*/false, &wl);
        cap.candidates += static_cast<std::uint64_t>(ev.candidates);
        cap.valid += static_cast<std::uint64_t>(ev.samples);
        cap.composited += static_cast<std::uint64_t>(ev.composited);
        cap.workloads.push_back(std::move(wl));
    }
    pipeline.setVertexVisitor(nullptr);

    const SamplingModule sampling(cfg_, schedule_, normalized_);
    const SamplingRunStats s1 = sampling.run(cap.workloads);
    const InterpRunStats s2 = interp.stats();

    WorkloadProfile wl;
    wl.rays = static_cast<std::uint64_t>(rays_per_batch);
    wl.candidates = cap.candidates;
    wl.validPoints = cap.valid;
    wl.compositedPoints = cap.composited;
    wl.levels = pipeline.model().config().grid.levels;
    wl.macsPerPoint = pipeline.model().macsPerPoint();
    wl.avgGroupCycles = s2.groups ? s2.meanGroupLatency : 1.0;

    TrainingReport report;
    report.stage1 = s1;
    report.stage2 = s2;
    report.workload = wl;
    report.perf = perf_.training(wl, s1);
    report.secondsPerIteration = report.perf.seconds;
    report.raysPerBatch = rays_per_batch;
    return report;
}

} // namespace fusion3d::chip
