/** @file Bit-exactness contracts of the SIMD dispatch layer: hardware
 *  kernels vs forced-scalar for the MLP GEMM, the hash-grid encode, and
 *  the whole-model forward; the packed fp16/INT8 inference path vs a
 *  dequantize-then-fp32 oracle; occupancy compaction vs the gated
 *  evaluator; and the v4 quantized artifact round-trip. */

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/half.h"
#include "common/rng.h"
#include "common/simd.h"
#include "nerf/mlp.h"
#include "nerf/nerf_model.h"
#include "nerf/pipeline.h"
#include "nerf/serialize.h"

namespace fusion3d::nerf
{
namespace
{

/** Restores the dispatch pin on scope exit so a failing test cannot
 *  leak forced-scalar state into later tests. */
struct ScopedForceScalar
{
    explicit ScopedForceScalar(bool on) { simd::forceScalar(on); }
    ~ScopedForceScalar() { simd::forceScalar(false); }
};

NerfModelConfig
tinyModel()
{
    NerfModelConfig mc;
    mc.grid.levels = 6;
    mc.grid.featuresPerLevel = 2;
    mc.grid.log2TableSize = 12;
    mc.grid.baseResolution = 8;
    mc.grid.maxResolution = 64;
    mc.geoFeatures = 7;
    mc.densityHidden = 16;
    mc.colorHidden = 16;
    mc.shDegree = 2;
    return mc;
}

void
randomBatch(std::size_t n, std::uint64_t seed, std::vector<Vec3f> &pos,
            std::vector<Vec3f> &dirs)
{
    Pcg32 rng(seed);
    pos.resize(n);
    dirs.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
        pos[j] = clamp(rng.nextVec3(), 0.01f, 0.99f);
        dirs[j] = rng.nextUnitVector();
    }
}

std::uint32_t
floatBits(float f)
{
    std::uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

/** Batch sizes crossing the gather block (64) and MLP tile boundaries,
 *  including ragged tails. */
const std::size_t kBatches[] = {1, 7, 32, 256, 333};

/**
 * The table-driven half decode agrees with the arithmetic Half class
 * on every one of the 65536 bit patterns (NaNs compared as NaN-ness:
 * payload propagation through a float widen is value-identical here,
 * but keep the comparison robust).
 */
TEST(Simd, HalfBitsToFloatMatchesHalfExhaustive)
{
    for (std::uint32_t b = 0; b < 0x10000u; ++b) {
        const std::uint16_t bits = static_cast<std::uint16_t>(b);
        const float got = simd::halfBitsToFloat(bits);
        const float want = Half::fromBits(bits).toFloat();
        if (std::isnan(want))
            EXPECT_TRUE(std::isnan(got)) << "bits " << b;
        else
            EXPECT_EQ(floatBits(got), floatBits(want)) << "bits " << b;
    }
}

TEST(Simd, ForceScalarPinsDispatch)
{
    ASSERT_NE(simd::dispatchName(), nullptr);
    {
        ScopedForceScalar pin(true);
        EXPECT_EQ(simd::activeDispatch(), simd::Dispatch::scalar);
        EXPECT_STREQ(simd::dispatchName(), "scalar");
    }
    // The env var keeps the pin latched regardless of forceScalar(false).
    if (std::getenv("FUSION3D_SIMD_DISABLED") == nullptr)
        EXPECT_FALSE(simd::scalarForced());
    else
        EXPECT_TRUE(simd::scalarForced());
}

/**
 * The dispatched GEMM microkernel is bit-exact with the scalar batched
 * loop at every batch size, including ragged SIMD tails: lanes map to
 * samples, so each sample's fan-in accumulation order is unchanged.
 */
TEST(Simd, MlpForwardBatchBitExactAcrossDispatch)
{
    Mlp mlp({30, 32, 16}, 41);
    MlpBatchWorkspace ws_hw = mlp.makeBatchWorkspace();
    MlpBatchWorkspace ws_sc = mlp.makeBatchWorkspace();

    for (const std::size_t n : kBatches) {
        Pcg32 rng(1000 + n);
        std::vector<float> input(static_cast<std::size_t>(mlp.inputDim()) * n);
        for (float &v : input)
            v = rng.nextFloat() * 2.0f - 1.0f;

        std::vector<float> out_hw, out_sc;
        {
            ScopedForceScalar pin(false);
            const auto out = mlp.forwardBatch(input, n, ws_hw);
            out_hw.assign(out.begin(), out.end());
        }
        {
            ScopedForceScalar pin(true);
            const auto out = mlp.forwardBatch(input, n, ws_sc);
            out_sc.assign(out.begin(), out.end());
        }
        ASSERT_EQ(out_hw.size(), out_sc.size());
        for (std::size_t i = 0; i < out_hw.size(); ++i)
            EXPECT_EQ(floatBits(out_hw[i]), floatBits(out_sc[i]))
                << "batch " << n << " element " << i;
    }
}

/**
 * The dispatched gather/interpolate (and the AVX2 corner staging that
 * feeds it) is bit-exact with the scalar encode at every batch size.
 */
TEST(Simd, EncodeBatchBitExactAcrossDispatch)
{
    const NerfModelConfig mc = tinyModel();
    HashGridEncoding enc(mc.grid, 42);
    const std::size_t dims = static_cast<std::size_t>(mc.grid.encodedDims());

    for (const std::size_t n : kBatches) {
        std::vector<Vec3f> pos, dirs;
        randomBatch(n, 2000 + n, pos, dirs);
        std::vector<float> out_hw(dims * n), out_sc(dims * n);
        {
            ScopedForceScalar pin(false);
            enc.encodeBatch(pos, out_hw);
        }
        {
            ScopedForceScalar pin(true);
            enc.encodeBatch(pos, out_sc);
        }
        for (std::size_t i = 0; i < out_hw.size(); ++i)
            EXPECT_EQ(floatBits(out_hw[i]), floatBits(out_sc[i]))
                << "batch " << n << " element " << i;
    }
}

TEST(Simd, NerfModelForwardBatchBitExactAcrossDispatch)
{
    NerfModel model(tinyModel(), 43);
    NerfBatchWorkspace ws_hw = model.makeBatchWorkspace();
    NerfBatchWorkspace ws_sc = model.makeBatchWorkspace();

    for (const std::size_t n : kBatches) {
        std::vector<Vec3f> pos, dirs;
        randomBatch(n, 3000 + n, pos, dirs);
        std::vector<float> sig_hw(n), sig_sc(n);
        std::vector<Vec3f> rgb_hw(n), rgb_sc(n);
        {
            ScopedForceScalar pin(false);
            model.forwardBatch(pos, dirs, ws_hw, sig_hw, rgb_hw);
        }
        {
            ScopedForceScalar pin(true);
            model.forwardBatch(pos, dirs, ws_sc, sig_sc, rgb_sc);
        }
        for (std::size_t j = 0; j < n; ++j) {
            EXPECT_EQ(floatBits(sig_hw[j]), floatBits(sig_sc[j]))
                << "batch " << n << " sample " << j;
            EXPECT_EQ(rgb_hw[j], rgb_sc[j]) << "batch " << n << " sample " << j;
        }
    }
}

/**
 * The packed-weight inference path is bitwise identical to an fp32
 * model whose masters hold the dequantized values: the quantized
 * forward dequantizes into the same fp32 arithmetic, it never computes
 * in reduced precision.
 */
TEST(Simd, QuantizedForwardMatchesDequantizedOracle)
{
    for (const QuantMode mode : {QuantMode::fp16, QuantMode::int8}) {
        NerfModel quant(tinyModel(), 44);
        quant.setInferenceQuant(mode, /*dropFp32=*/false);

        NerfModel oracle(tinyModel(), 44);
        const std::vector<float> enc_w = quant.encoding().dequantizedParams();
        const std::vector<float> den_w = quant.densityNet().dequantizedParams();
        const std::vector<float> col_w = quant.colorNet().dequantizedParams();
        std::copy(enc_w.begin(), enc_w.end(), oracle.encoding().params().begin());
        std::copy(den_w.begin(), den_w.end(), oracle.densityNet().params().begin());
        std::copy(col_w.begin(), col_w.end(), oracle.colorNet().params().begin());

        NerfBatchWorkspace ws_q = quant.makeBatchWorkspace();
        NerfBatchWorkspace ws_o = oracle.makeBatchWorkspace();
        const std::size_t n = 97;
        std::vector<Vec3f> pos, dirs;
        randomBatch(n, 45, pos, dirs);
        std::vector<float> sig_q(n), sig_o(n);
        std::vector<Vec3f> rgb_q(n), rgb_o(n);
        quant.forwardBatch(pos, dirs, ws_q, sig_q, rgb_q);
        oracle.forwardBatch(pos, dirs, ws_o, sig_o, rgb_o);
        for (std::size_t j = 0; j < n; ++j) {
            EXPECT_EQ(floatBits(sig_q[j]), floatBits(sig_o[j]))
                << "mode " << static_cast<int>(mode) << " sample " << j;
            EXPECT_EQ(rgb_q[j], rgb_o[j])
                << "mode " << static_cast<int>(mode) << " sample " << j;
        }
    }
}

/** Dropping the fp32 masters frees memory without changing the packed
 *  inference result, and the quantized path stays scalar-consistent. */
TEST(Simd, DropFp32WeightsKeepsQuantizedForward)
{
    NerfModel kept(tinyModel(), 46);
    kept.setInferenceQuant(QuantMode::int8, /*dropFp32=*/false);
    NerfModel dropped(tinyModel(), 46);
    dropped.setInferenceQuant(QuantMode::int8, /*dropFp32=*/true);
    EXPECT_TRUE(kept.encoding().hasFp32Weights());
    EXPECT_FALSE(dropped.encoding().hasFp32Weights());
    EXPECT_FALSE(dropped.densityNet().hasFp32Weights());

    NerfBatchWorkspace ws_k = kept.makeBatchWorkspace();
    NerfBatchWorkspace ws_d = dropped.makeBatchWorkspace();
    const std::size_t n = 70;
    std::vector<Vec3f> pos, dirs;
    randomBatch(n, 47, pos, dirs);
    std::vector<float> sig_k(n), sig_d(n);
    std::vector<Vec3f> rgb_k(n), rgb_d(n);
    kept.forwardBatch(pos, dirs, ws_k, sig_k, rgb_k);
    dropped.forwardBatch(pos, dirs, ws_d, sig_d, rgb_d);
    for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(floatBits(sig_k[j]), floatBits(sig_d[j])) << "sample " << j;
        EXPECT_EQ(rgb_k[j], rgb_d[j]) << "sample " << j;
    }

    // The quantized arms must also agree across dispatch.
    {
        ScopedForceScalar pin(true);
        std::vector<float> sig_s(n);
        std::vector<Vec3f> rgb_s(n);
        kept.forwardBatch(pos, dirs, ws_k, sig_s, rgb_s);
        for (std::size_t j = 0; j < n; ++j) {
            EXPECT_EQ(floatBits(sig_s[j]), floatBits(sig_k[j]));
            EXPECT_EQ(rgb_s[j], rgb_k[j]);
        }
    }
}

PipelineConfig
compactionPipeline(bool compaction)
{
    PipelineConfig pc;
    pc.model = tinyModel();
    pc.sampler.maxSamplesPerRay = 32;
    pc.occupancyResolution = 24;
    pc.occupancyCompaction = compaction;
    return pc;
}

/**
 * Occupancy compaction is an exact optimization: with the same grid,
 * rays, and rng stream, the compacted evaluator composites bit-identical
 * colors to the gated path, evaluates strictly fewer samples than the
 * batch carries, and the recorded tape backpropagates bit-identical
 * parameter gradients.
 */
TEST(Simd, CompactionBitIdenticalToGatedPath)
{
    NerfPipeline gated(compactionPipeline(false));
    NerfPipeline compact(compactionPipeline(true));
    ASSERT_TRUE(compact.occupancyCompaction());

    // Identical partially-occupied grids: keep a sphere around the
    // cube centre so a good fraction of candidates are prunable.
    const auto keep = [](const Vec3f &p) {
        const Vec3f d = p - Vec3f{0.5f, 0.5f, 0.5f};
        return dot(d, d) < 0.09f;
    };
    gated.grid().maskRegion(keep);
    compact.grid().maskRegion(keep);

    std::vector<Ray> rays;
    for (int i = 0; i < 8; ++i)
        rays.emplace_back(Vec3f{0.15f + 0.1f * static_cast<float>(i), 0.4f, -1.0f},
                          Vec3f{0.0f, 0.05f, 1.0f});

    Pcg32 rng_a(71), rng_b(71);
    std::vector<RayEval> ev_g(rays.size()), ev_c(rays.size());
    gated.traceRays(rays, rng_a, /*record=*/true, ev_g);
    compact.traceRays(rays, rng_b, /*record=*/true, ev_c);

    for (std::size_t r = 0; r < rays.size(); ++r) {
        EXPECT_EQ(ev_g[r].color, ev_c[r].color) << "ray " << r;
        EXPECT_EQ(ev_g[r].samples, ev_c[r].samples) << "ray " << r;
        EXPECT_EQ(floatBits(ev_g[r].transmittance),
                  floatBits(ev_c[r].transmittance))
            << "ray " << r;
        EXPECT_EQ(floatBits(ev_g[r].firstHitT), floatBits(ev_c[r].firstHitT))
            << "ray " << r;
    }

    const auto stats = compact.lastCompaction();
    EXPECT_GT(stats.batchSamples, 0u);
    EXPECT_GT(stats.mlpSamples, 0u);
    EXPECT_LT(stats.mlpSamples, stats.batchSamples);

    // Backward through both tapes accumulates identical gradients.
    std::vector<Vec3f> dcolors(rays.size(), Vec3f{0.7f, -0.3f, 0.5f});
    gated.backwardRays(dcolors);
    compact.backwardRays(dcolors);
    const auto grads = [](NerfModel &m) {
        std::vector<float> g;
        auto append = [&g](std::span<const float> s) {
            g.insert(g.end(), s.begin(), s.end());
        };
        append(m.encoding().grads());
        append(m.densityNet().grads());
        append(m.colorNet().grads());
        return g;
    };
    const std::vector<float> gg = grads(gated.model()),
                             gc = grads(compact.model());
    ASSERT_EQ(gg.size(), gc.size());
    for (std::size_t i = 0; i < gg.size(); ++i)
        EXPECT_EQ(floatBits(gg[i]), floatBits(gc[i])) << "grad " << i;
}

/**
 * A model saved with a non-fp32 inference image round-trips through
 * the v4 artifact: the loaded model carries the same QuantMode and
 * produces bit-identical forwards, because the dequantized values
 * requantize to the same packed image (the max-abs element pins the
 * recomputed scale).
 */
TEST(Simd, QuantizedSerializeRoundTripBitExact)
{
    for (const QuantMode mode : {QuantMode::fp16, QuantMode::int8}) {
        NerfModel model(tinyModel(), 48);
        model.setInferenceQuant(mode, /*dropFp32=*/false);

        const std::string path =
            testing::TempDir() + "quant_roundtrip_" +
            std::to_string(static_cast<int>(mode)) + ".f3dm";
        ASSERT_TRUE(saveModel(model, path));
        const std::unique_ptr<NerfModel> loaded = loadModel(path);
        ASSERT_NE(loaded, nullptr);
        EXPECT_EQ(loaded->inferenceQuantMode(), mode);

        NerfBatchWorkspace ws_a = model.makeBatchWorkspace();
        NerfBatchWorkspace ws_b = loaded->makeBatchWorkspace();
        const std::size_t n = 64;
        std::vector<Vec3f> pos, dirs;
        randomBatch(n, 49, pos, dirs);
        std::vector<float> sig_a(n), sig_b(n);
        std::vector<Vec3f> rgb_a(n), rgb_b(n);
        model.forwardBatch(pos, dirs, ws_a, sig_a, rgb_a);
        loaded->forwardBatch(pos, dirs, ws_b, sig_b, rgb_b);
        for (std::size_t j = 0; j < n; ++j) {
            EXPECT_EQ(floatBits(sig_a[j]), floatBits(sig_b[j]))
                << "mode " << static_cast<int>(mode) << " sample " << j;
            EXPECT_EQ(rgb_a[j], rgb_b[j])
                << "mode " << static_cast<int>(mode) << " sample " << j;
        }
        std::remove(path.c_str());
    }
}

} // namespace
} // namespace fusion3d::nerf
