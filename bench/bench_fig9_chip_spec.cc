/**
 * @file
 * Regenerates Fig. 9(b)/(c): the prototype chip's specification table
 * and per-module resource breakdown, alongside the scaled-up
 * configuration used in Table III.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "chip/config.h"
#include "chip/tech_model.h"

using namespace fusion3d;

namespace
{

void
printChip(const chip::ChipConfig &cfg)
{
    const chip::TechModel tech(cfg);
    std::printf("%s\n", cfg.name.c_str());
    std::printf("  Process            28 nm CMOS\n");
    std::printf("  Die area           %.1f mm^2\n", cfg.dieAreaMm2);
    std::printf("  Clock              %.0f MHz @ %.2f V\n", cfg.clockHz / 1e6,
                cfg.coreVoltage);
    std::printf("  Typical power      %.2f W\n", cfg.typicalPowerW);
    std::printf("  Total SRAM         %d KB\n", cfg.totalSramKb());
    std::printf("  Sampling cores     %d\n", cfg.samplingCores);
    std::printf("  Interp cores       %d (8 SRAM banks each)\n", cfg.interpCores);
    std::printf("  Memory clusters    %d x %d KB\n", cfg.memoryClusters,
                cfg.sramPerClusterKb);
    std::printf("  Hash-table SRAM    %d KB\n", cfg.hashTableSramKb);
    std::printf("  MLP engine         %d MAC/cycle\n", cfg.mlpMacsPerCycle);
    std::printf("  Module breakdown (area mm^2 / power W):\n");
    for (const chip::ModuleShare &m : tech.breakdown()) {
        std::printf("    %-10s %6.2f mm^2 (%4.0f%%)   %5.2f W (%4.0f%%)\n",
                    m.name.c_str(), m.areaFraction * cfg.dieAreaMm2,
                    m.areaFraction * 100.0, m.powerFraction * cfg.typicalPowerW,
                    m.powerFraction * 100.0);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    bench::banner("Fig. 9(b)/(c): chip specification and resource breakdown");
    printChip(chip::ChipConfig::prototype());
    printChip(chip::ChipConfig::scaledUp());
    std::printf("Paper (scaled-up, Table III column): 8.7 mm^2, 600 MHz, 0.95 V, "
                "1,099 KB SRAM, silicon prototype measured at 1.21 W / 36 FPS / "
                "1.8 s training.\n");
    return 0;
}
