#include "chip/postproc_module.h"

#include <algorithm>

namespace fusion3d::chip
{

PostprocRunStats
PostprocModule::run(std::uint64_t points, std::uint64_t composited, int mlp_passes,
                    int render_passes) const
{
    PostprocRunStats s;
    s.macs = points * macs_per_point_ * static_cast<std::uint64_t>(mlp_passes);
    const std::uint64_t macs_per_cycle =
        std::max<std::uint64_t>(static_cast<std::uint64_t>(cfg_.mlpMacsPerCycle), 1);
    s.mlpCycles = (s.macs + macs_per_cycle - 1) / macs_per_cycle;

    const double render_ops =
        static_cast<double>(composited) * static_cast<double>(render_passes);
    s.renderCycles =
        static_cast<Cycles>(render_ops / std::max(cfg_.renderSamplesPerCycle, 1e-9));

    // The MLP engine and the render unit form a pipeline over points;
    // steady-state time is bounded by the slower of the two.
    s.totalCycles = std::max(s.mlpCycles, s.renderCycles);
    return s;
}

PostprocRunStats
PostprocModule::inference(std::uint64_t points, std::uint64_t composited) const
{
    return run(points, composited, /*mlp_passes=*/1, /*render_passes=*/1);
}

PostprocRunStats
PostprocModule::training(std::uint64_t points, std::uint64_t composited) const
{
    // Forward, dL/d(input) and dL/d(weights) passes through the MAC
    // array; compositing runs forward and backward.
    return run(points, composited, /*mlp_passes=*/3, /*render_passes=*/2);
}

} // namespace fusion3d::chip
