/**
 * @file
 * Stage I of the NeRF pipeline: per-ray point sampling inside the
 * normalized model cube, with the two techniques of Sec. IV-A modeled
 * explicitly:
 *
 *  - T1-1 Model Normalization & Partitioning: rays intersect the fixed
 *    unit cube (3 MUL + 3 MAC per bound instead of the 18-division
 *    generic path), then the eight half-size octants; only ray-octant
 *    pairs with a valid overlap produce sampling work.
 *  - Occupancy filtering: uniform candidates inside the span are kept
 *    only where the occupancy grid is non-empty.
 *
 * The sampler also emits the workload trace (candidates, valid points,
 * per-octant pair list) the sampling-module hardware model replays.
 */

#ifndef FUSION3D_NERF_SAMPLER_H_
#define FUSION3D_NERF_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/aabb.h"
#include "common/op_counter.h"
#include "common/ray.h"
#include "common/rng.h"
#include "nerf/occupancy_grid.h"

namespace fusion3d::nerf
{

/** One sampled point on a ray. */
struct RaySample
{
    Vec3f pos;
    float t = 0.0f;
    float dt = 0.0f;
};

/** One valid ray-octant pair and the sampling work it produced. */
struct RayCubePair
{
    /** Octant index 0..7 (Technique T1-1 partitioning). */
    int octant = 0;
    /** Candidate points marched inside this octant's span. */
    int candidates = 0;
    /** Candidates that survived the occupancy filter. */
    int valid = 0;
};

/** Per-ray Stage-I workload summary consumed by the chip model. */
struct RayWorkload
{
    std::vector<RayCubePair> pairs;
    int totalCandidates = 0;
    int totalValid = 0;
    /** Grid cells stepped by the DDA walk (ddaSkip mode only). */
    int ddaSteps = 0;
    /** Arithmetic spent on intersection tests for this ray. */
    OpCounter intersectionOps;

    /** Accumulate another ray's workload (batch-trace aggregation). */
    void
    mergeFrom(const RayWorkload &o)
    {
        pairs.insert(pairs.end(), o.pairs.begin(), o.pairs.end());
        totalCandidates += o.totalCandidates;
        totalValid += o.totalValid;
        ddaSteps += o.ddaSteps;
        intersectionOps += o.intersectionOps;
    }
};

/** Sampling configuration. */
struct SamplerConfig
{
    /** Uniform marching steps across the full cube diagonal. */
    int maxSamplesPerRay = 64;
    /** Jitter the first sample within a step (training uses true). */
    bool jitter = true;
    /**
     * Use the normalized fast-path intersection (Technique T1-1). When
     * false the generic 18-division path is charged, for the ablation.
     */
    bool normalized = true;
    /** Partition into eight octant sub-cubes (Technique T1-1). */
    bool partition = true;
    /**
     * Skip empty space with a DDA walk of the occupancy grid instead of
     * probing the bitfield at every lattice step: marching work only
     * accrues inside occupied intervals, at the cost of one grid-cell
     * step per crossed cell (counted in RayWorkload::ddaSteps).
     */
    bool ddaSkip = false;
};

/** Stage-I sampler over the normalized unit cube. */
class RaySampler
{
  public:
    explicit RaySampler(const SamplerConfig &cfg = {}) : cfg_(cfg) {}

    const SamplerConfig &config() const { return cfg_; }

    /**
     * Sample one ray.
     * @param ray       Ray in normalized coordinates.
     * @param grid      Occupancy gate; nullptr keeps every candidate.
     * @param rng       Jitter source.
     * @param out       Receives the surviving samples (cleared first).
     * @param workload  Optional Stage-I trace for the hardware model.
     * @return Number of surviving samples.
     */
    int sample(const Ray &ray, const OccupancyGrid *grid, Pcg32 &rng,
               std::vector<RaySample> &out, RayWorkload *workload = nullptr) const;

  private:
    SamplerConfig cfg_;
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_SAMPLER_H_
