/** @file Tests for ray/box intersection: generic vs normalized fast path. */

#include <gtest/gtest.h>

#include "common/aabb.h"
#include "common/rng.h"

namespace fusion3d
{
namespace
{

TEST(Aabb, ContainsAndGeometry)
{
    const Aabb box({0.0f, 0.0f, 0.0f}, {2.0f, 4.0f, 8.0f});
    EXPECT_TRUE(box.contains({1.0f, 1.0f, 1.0f}));
    EXPECT_FALSE(box.contains({3.0f, 1.0f, 1.0f}));
    EXPECT_EQ(box.extent(), Vec3f(2.0f, 4.0f, 8.0f));
    EXPECT_EQ(box.center(), Vec3f(1.0f, 2.0f, 4.0f));
    EXPECT_FLOAT_EQ(box.volume(), 64.0f);
}

TEST(Aabb, ExpandGrowsToCover)
{
    Aabb box({0.0f, 0.0f, 0.0f}, {1.0f, 1.0f, 1.0f});
    box.expand({2.0f, -1.0f, 0.5f});
    EXPECT_TRUE(box.contains({2.0f, -1.0f, 0.5f}));
    EXPECT_EQ(box.lo, Vec3f(0.0f, -1.0f, 0.0f));
    EXPECT_EQ(box.hi, Vec3f(2.0f, 1.0f, 1.0f));
}

TEST(Aabb, NormalizeRoundTrip)
{
    const Aabb box({-2.0f, 1.0f, 4.0f}, {6.0f, 5.0f, 8.0f});
    Pcg32 rng(3);
    for (int i = 0; i < 100; ++i) {
        const Vec3f p{rng.nextRange(-2, 6), rng.nextRange(1, 5), rng.nextRange(4, 8)};
        const Vec3f u = box.normalizePoint(p);
        EXPECT_GE(u.x, 0.0f);
        EXPECT_LE(u.x, 1.0f);
        const Vec3f back = box.denormalizePoint(u);
        EXPECT_NEAR(back.x, p.x, 1e-4f);
        EXPECT_NEAR(back.y, p.y, 1e-4f);
        EXPECT_NEAR(back.z, p.z, 1e-4f);
    }
}

TEST(Aabb, UnitCubeHitThroughCenter)
{
    const Ray ray({0.5f, 0.5f, -1.0f}, {0.0f, 0.0f, 1.0f});
    const auto span = Aabb::intersectUnitCube(ray);
    ASSERT_TRUE(span.has_value());
    EXPECT_NEAR(span->t0, 1.0f, 1e-5f);
    EXPECT_NEAR(span->t1, 2.0f, 1e-5f);
}

TEST(Aabb, UnitCubeMiss)
{
    const Ray ray({2.0f, 2.0f, -1.0f}, {0.0f, 0.0f, 1.0f});
    EXPECT_FALSE(Aabb::intersectUnitCube(ray).has_value());
}

TEST(Aabb, ParallelRayInsideSlab)
{
    // Ray parallel to x slabs, passing inside the cube.
    const Ray ray({-1.0f, 0.5f, 0.5f}, {1.0f, 0.0f, 0.0f});
    const auto span = Aabb::intersectUnitCube(ray);
    ASSERT_TRUE(span.has_value());
    EXPECT_NEAR(span->t0, 1.0f, 1e-5f);
}

TEST(Aabb, ParallelRayOutsideSlab)
{
    const Ray ray({-1.0f, 2.0f, 0.5f}, {1.0f, 0.0f, 0.0f});
    EXPECT_FALSE(Aabb::intersectUnitCube(ray).has_value());
}

/** Property: the fast unit-cube path agrees with the generic slab path. */
TEST(Aabb, FastPathMatchesGenericProperty)
{
    Pcg32 rng(11);
    const Aabb unit = Aabb::unitCube();
    int hits = 0;
    for (int i = 0; i < 2000; ++i) {
        const Vec3f o{rng.nextRange(-2, 3), rng.nextRange(-2, 3), rng.nextRange(-2, 3)};
        const Ray ray(o, rng.nextUnitVector());
        const auto fast = Aabb::intersectUnitCube(ray);
        const auto slow = unit.intersectGeneric(ray);
        ASSERT_EQ(fast.has_value(), slow.has_value()) << "iteration " << i;
        if (fast) {
            ++hits;
            EXPECT_NEAR(fast->t0, slow->t0, 1e-4f);
            EXPECT_NEAR(fast->t1, slow->t1, 1e-4f);
        }
    }
    EXPECT_GT(hits, 50); // the sweep actually exercised hits
}

/** Property: octant spans partition the unit-cube span. */
TEST(Aabb, OctantSpansCoverCubeSpan)
{
    Pcg32 rng(13);
    for (int i = 0; i < 500; ++i) {
        const Vec3f o{rng.nextRange(-1.5f, 2.5f), rng.nextRange(-1.5f, 2.5f),
                      rng.nextRange(-1.5f, 2.5f)};
        const Ray ray(o, rng.nextUnitVector());
        const auto cube = Aabb::intersectUnitCube(ray);
        if (!cube || cube->t1 <= std::max(cube->t0, 0.0f))
            continue;
        double covered = 0.0;
        for (int oct = 0; oct < 8; ++oct) {
            const auto s = Aabb::intersectOctant(ray, oct);
            if (s)
                covered += std::max(0.0f, s->t1 - std::max(s->t0, cube->t0));
        }
        const double full = cube->t1 - std::max(cube->t0, 0.0f);
        // Octants tile the cube, so their spans sum to the cube span
        // (entry points clip to >= the cube entry).
        EXPECT_NEAR(covered, full, 1e-3) << "iteration " << i;
    }
}

TEST(Aabb, OpCountsMatchPaperFigure5a)
{
    const Ray ray({0.5f, 0.5f, -1.0f}, {0.0f, 0.0f, 1.0f});
    OpCounter generic_ops;
    OpCounter fast_ops;
    (void)Aabb::unitCube().intersectGeneric(ray, &generic_ops);
    (void)Aabb::intersectUnitCube(ray, &fast_ops);

    // Generic path: 18 DIV + 54 MUL + 54 ADD (Sec. IV-A).
    EXPECT_EQ(generic_ops.divs, 18u);
    EXPECT_EQ(generic_ops.muls, 54u);
    EXPECT_EQ(generic_ops.adds, 54u);

    // Normalized path: 3 MUL + 3 MAC.
    EXPECT_EQ(fast_ops.divs, 0u);
    EXPECT_EQ(fast_ops.muls, 3u);
    EXPECT_EQ(fast_ops.macs, 3u);

    // The weighted datapath cost collapses by more than 10x.
    EXPECT_GT(generic_ops.weightedCost(),
              10 * fast_ops.weightedCost());
}

TEST(Aabb, OctantIndexingConvention)
{
    // A +z ray at (x, y) = (0.75, 0.25) crosses exactly the two octants
    // in the +x/-y column: bit0 = +x, bit1 = +y, bit2 = +z.
    const Ray ray({0.75f, 0.25f, -1.0f}, {0.0f, 0.0f, 1.0f});
    for (int oct = 0; oct < 8; ++oct) {
        const bool expect_hit = (oct == 1) || (oct == 5);
        EXPECT_EQ(Aabb::intersectOctant(ray, oct).has_value(), expect_hit)
            << "octant " << oct;
    }
}

} // namespace
} // namespace fusion3d
