/**
 * @file
 * Registry of deployed models. Owns the deserialized `.f3dm` NeRF
 * models keyed by name, each paired with an occupancy gate rebuilt
 * from its own density field at registration time — after which an
 * entry is immutable, so render workers share it without locks.
 */

#ifndef FUSION3D_SERVE_MODEL_REGISTRY_H_
#define FUSION3D_SERVE_MODEL_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nerf/nerf_model.h"
#include "nerf/occupancy_grid.h"
#include "nerf/serialize.h"

namespace fusion3d::serve
{

/** One deployed model: weights plus its inference occupancy gate. */
struct ModelEntry
{
    std::string name;
    std::unique_ptr<nerf::NerfModel> model;
    nerf::OccupancyGrid grid;

    ModelEntry(std::string n, std::unique_ptr<nerf::NerfModel> m, int grid_res,
               float grid_threshold)
        : name(std::move(n)), model(std::move(m)), grid(grid_res, grid_threshold)
    {
    }
};

/** Thread-safe name → model map; entries are immutable once added. */
class ModelRegistry
{
  public:
    /**
     * @param occupancy_resolution Gate resolution of registered models.
     * @param occupancy_threshold  Density above which a cell is live.
     */
    explicit ModelRegistry(int occupancy_resolution = 48,
                           float occupancy_threshold = 0.01f);

    /**
     * Register @p model under @p name, building its occupancy gate
     * from the model's density field. Replaces an existing entry of
     * the same name.
     * @return the registered (immutable) entry.
     */
    const ModelEntry *add(const std::string &name,
                          std::unique_ptr<nerf::NerfModel> model);

    /**
     * Deserialize a `.f3dm` artifact and register it. Failures are
     * logged with their reason (satellite of the diagnosable-load
     * work: I/O vs magic vs version vs header mismatch vs truncation).
     * @return LoadStatus::ok on success.
     */
    nerf::LoadStatus addFromFile(const std::string &name, const std::string &path);

    /** @return the entry named @p name, or nullptr. */
    const ModelEntry *find(const std::string &name) const;

    /** Registered model count. */
    std::size_t size() const;

    /** Names of all registered models, sorted. */
    std::vector<std::string> names() const;

  private:
    mutable std::mutex mutex_;
    int grid_resolution_;
    float grid_threshold_;
    std::map<std::string, std::unique_ptr<ModelEntry>> entries_;
    /** Replaced entries are retired, not destroyed, so workers still
     *  rendering from them never hold a dangling pointer. */
    std::vector<std::unique_ptr<ModelEntry>> retired_;
};

} // namespace fusion3d::serve

#endif // FUSION3D_SERVE_MODEL_REGISTRY_H_
