/**
 * @file
 * Mixture-of-Experts radiance fields (Technique T3, "Level 1 Tiling").
 * The model is split into K complete small models ("experts"), each
 * owning a spatial region of the normalized cube enforced through its
 * private occupancy grid — the paper's insight that the occupancy grid
 * is a built-in gating function. Expert partials are fused at the I/O
 * module from per-expert scalars only (depth-ordered attenuated sum),
 * which is what lets the multi-chip system exchange pixels instead of
 * activations.
 *
 * MoeField is generic over the expert pipeline type; the paper's two
 * instantiations are MoeNerf (Instant-NGP experts, the main system) and
 * MoeTensorf (TensoRF experts, the Sec. VI-C adaptation study).
 */

#ifndef FUSION3D_NERF_MOE_H_
#define FUSION3D_NERF_MOE_H_

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "nerf/pipeline.h"
#include "nerf/radiance_field.h"

namespace fusion3d::nerf
{

/** MoE configuration over an expert pipeline type. */
template <class PipelineT>
struct MoeConfigT
{
    /** Number of experts (= chips in the multi-chip system). */
    int numExperts = 4;
    /** Per-expert pipeline config; hash tables are typically 4x smaller
     *  than the equivalent single large model (2^14 vs 2^16, Fig. 13a). */
    typename PipelineT::Config expert;
    /** Background color fused once at the I/O module. */
    Vec3f background{0.0f, 0.0f, 0.0f};
    std::uint64_t seed = 11;
};

/** The MoE radiance field over experts of type PipelineT. */
template <class PipelineT>
class MoeField : public RadianceField
{
  public:
    using Config = MoeConfigT<PipelineT>;

    explicit MoeField(const Config &cfg)
        : cfg_(cfg)
    {
        if (cfg.numExperts < 1)
            fatal("MoeField needs at least one expert");

        // Seeds on a circle in the XZ plane around the cube center: a
        // deterministic, evenly spread spatial partition whose Voronoi
        // wedges mirror the region specialization of Fig. 8.
        constexpr float kTau = 6.28318530717958647692f;
        seeds_.reserve(static_cast<std::size_t>(cfg.numExperts));
        for (int k = 0; k < cfg.numExperts; ++k) {
            if (cfg.numExperts == 1) {
                seeds_.push_back(Vec3f{0.5f, 0.5f, 0.5f});
                break;
            }
            const float a =
                kTau * static_cast<float>(k) / static_cast<float>(cfg.numExperts);
            seeds_.push_back(
                Vec3f{0.5f + 0.25f * std::cos(a), 0.5f, 0.5f + 0.25f * std::sin(a)});
        }

        experts_.reserve(static_cast<std::size_t>(cfg.numExperts));
        for (int k = 0; k < cfg.numExperts; ++k) {
            typename PipelineT::Config pc = cfg.expert;
            // Experts composite against a black background; the fused
            // background term is added once below (the I/O module).
            pc.render.background = Vec3f(0.0f);
            pc.seed = cfg.seed + static_cast<std::uint64_t>(k) * 101;
            experts_.push_back(std::make_unique<PipelineT>(pc));
        }
        last_partials_.resize(static_cast<std::size_t>(cfg.numExperts));
        fusion_weights_.assign(static_cast<std::size_t>(cfg.numExperts), 1.0f);
        expert_workloads_.resize(static_cast<std::size_t>(cfg.numExperts));
        applyRegionMasks();
    }

    int numExperts() const { return static_cast<int>(experts_.size()); }
    PipelineT &expert(int k) { return *experts_[static_cast<std::size_t>(k)]; }
    const PipelineT &expert(int k) const { return *experts_[static_cast<std::size_t>(k)]; }

    /** Voronoi seed point of expert @p k's region. */
    const Vec3f &seedPoint(int k) const { return seeds_[static_cast<std::size_t>(k)]; }

    /** Region (expert) owning point @p p: nearest seed. */
    int
    regionOf(const Vec3f &p) const
    {
        int best = 0;
        float best_d = lengthSquared(p - seeds_[0]);
        for (int k = 1; k < numExperts(); ++k) {
            const float d = lengthSquared(p - seeds_[static_cast<std::size_t>(k)]);
            if (d < best_d) {
                best_d = d;
                best = k;
            }
        }
        return best;
    }

    /**
     * Per-expert results of the last traceRay, in expert order. Used
     * for the expert-specialization visualization (Fig. 8) and the
     * chip-load accounting of the multi-chip simulator.
     */
    const std::vector<RayEval> &lastPartials() const { return last_partials_; }

    /**
     * Per-expert fusion weights of the last traceRay: the transmittance
     * of all experts whose content the ray crossed earlier. The fused
     * pixel is sum_k weight_k * partial_k, computed from per-expert
     * scalars only — the I/O module never sees per-sample data.
     */
    const std::vector<float> &lastFusionWeights() const { return fusion_weights_; }

    /** Scalar entry point; a batch of one through traceRays, so MoE
     *  rays also ride the experts' batched SoA cores. */
    RayEval
    traceRay(const Ray &ray, Pcg32 &rng, bool record,
             RayWorkload *workload = nullptr) override
    {
        RayEval ev;
        traceRays({&ray, 1}, rng, record, {&ev, 1}, workload);
        return ev;
    }

    void
    backwardLastRay(const Vec3f &dcolor) override
    {
        backwardRays({&dcolor, 1});
    }

    /**
     * Batch-native override: every expert traces the whole ray batch
     * through its own batched pipeline (expert-major, so each expert's
     * flattened SampleBatch spans all rays), then partials fuse per ray
     * at the I/O module exactly as the scalar path did.
     */
    void
    traceRays(std::span<const Ray> rays, Pcg32 &rng, bool record,
              std::span<RayEval> out, RayWorkload *workload = nullptr) override
    {
        const std::size_t n = rays.size();
        if (out.size() < n)
            fatal("MoeField::traceRays: output span too small");

        if (workload) {
            workload->pairs.clear();
            workload->totalCandidates = 0;
            workload->totalValid = 0;
            workload->intersectionOps.reset();
        }
        if (n == 0)
            return;

        expert_evals_.resize(static_cast<std::size_t>(numExperts()));
        for (int k = 0; k < numExperts(); ++k) {
            auto &evals = expert_evals_[static_cast<std::size_t>(k)];
            evals.resize(n);
            RayWorkload &wl = expert_workloads_[static_cast<std::size_t>(k)];
            experts_[static_cast<std::size_t>(k)]->traceRays(rays, rng, record, evals,
                                                             &wl);
            if (workload) {
                workload->totalCandidates += wl.totalCandidates;
                workload->totalValid += wl.totalValid;
                workload->intersectionOps += wl.intersectionOps;
            }
        }

        // The I/O module's fusion, per ray: expert partials are summed
        // after each is attenuated by the transmittance of the experts
        // the ray crossed earlier (the spatial regions are disjoint, so
        // depth order is well defined per ray). Only per-expert scalars
        // are used, preserving the Level-1 tiling's communication
        // profile.
        fusion_weights_batch_.resize(n * static_cast<std::size_t>(numExperts()));
        for (std::size_t r = 0; r < n; ++r) {
            RayEval total;
            total.color = Vec3f(0.0f);
            float trans_product = 1.0f;
            for (int k = 0; k < numExperts(); ++k) {
                const RayEval &ev = expert_evals_[static_cast<std::size_t>(k)][r];
                last_partials_[static_cast<std::size_t>(k)] = ev;
                total.samples += ev.samples;
                total.candidates += ev.candidates;
                total.composited += ev.composited;
                total.firstHitT = std::min(total.firstHitT, ev.firstHitT);
                trans_product *= ev.transmittance;
            }

            fusion_order_.resize(static_cast<std::size_t>(numExperts()));
            for (int k = 0; k < numExperts(); ++k)
                fusion_order_[static_cast<std::size_t>(k)] = k;
            std::sort(fusion_order_.begin(), fusion_order_.end(),
                      [this](int a, int b) {
                          return last_partials_[static_cast<std::size_t>(a)].firstHitT <
                                 last_partials_[static_cast<std::size_t>(b)].firstHitT;
                      });
            float prefix = 1.0f;
            for (int idx : fusion_order_) {
                const RayEval &p = last_partials_[static_cast<std::size_t>(idx)];
                fusion_weights_[static_cast<std::size_t>(idx)] = prefix;
                fusion_weights_batch_[r * static_cast<std::size_t>(numExperts()) +
                                      static_cast<std::size_t>(idx)] = prefix;
                total.color += p.color * prefix;
                prefix *= p.transmittance;
            }

            // One background term behind the joint transmittance.
            total.color += cfg_.background * trans_product;
            total.transmittance = trans_product;
            out[r] = total;
        }
        // last_partials_/fusion_weights_ now reflect the batch's final
        // ray, which for a batch of one is exactly the scalar contract.
    }

    /**
     * Attach a pool to the MoE and every expert. Forward stays serial
     * over experts (the jitter rng is consumed expert by expert) while
     * each expert shards internally; backward runs expert-major in
     * parallel, each expert accumulating into its own pipeline — so
     * expert gradients stay thread-local by construction.
     */
    void
    setThreadPool(ThreadPool *pool) override
    {
        RadianceField::setThreadPool(pool);
        for (auto &e : experts_)
            e->setThreadPool(pool);
    }

    /**
     * Batched backward: d(total)/d(expert color) = that expert's fusion
     * weight per ray. The weights' own dependence on earlier
     * transmittances is treated as constant (stop-gradient), as is the
     * background product term (MoE experiments composite on black).
     * With a pool attached the experts run in parallel, expert-major:
     * each expert writes only its own pipeline's gradient state and its
     * own dcolor buffer, so no state is shared and the per-expert
     * reductions stay deterministic.
     */
    void
    backwardRays(std::span<const Vec3f> dcolors) override
    {
        const std::size_t n = dcolors.size();
        const std::size_t experts = static_cast<std::size_t>(numExperts());
        if (fusion_weights_batch_.size() < n * experts)
            fatal("MoeField::backwardRays without a recorded traceRays batch");

        expert_dcolors_.resize(experts);
        const auto backward_expert = [&](std::size_t k) {
            std::vector<Vec3f> &dc = expert_dcolors_[k];
            dc.resize(n);
            for (std::size_t r = 0; r < n; ++r)
                dc[r] = dcolors[r] * fusion_weights_batch_[r * experts + k];
            experts_[k]->backwardRays(dc);
        };
        if (pool_ && experts > 1) {
            pool_->parallelFor(
                0, static_cast<int>(experts),
                [&](int b, int e) {
                    for (int k = b; k < e; ++k)
                        backward_expert(static_cast<std::size_t>(k));
                },
                1);
        } else {
            for (std::size_t k = 0; k < experts; ++k)
                backward_expert(k);
        }
    }

    void
    updateOccupancy(Pcg32 &rng) override
    {
        for (auto &e : experts_)
            e->updateOccupancy(rng);
        applyRegionMasks();
    }

    void
    quantizeWeights() override
    {
        for (auto &e : experts_)
            e->quantizeWeights();
    }

    std::size_t
    paramCount() const override
    {
        std::size_t n = 0;
        for (const auto &e : experts_)
            n += e->paramCount();
        return n;
    }

  protected:
    void
    zeroGradsImpl() override
    {
        // Each expert's public zeroGrads() runs the template method, so
        // expert tapes invalidate alongside the MoE batch tape.
        for (auto &e : experts_)
            e->zeroGrads();
    }

    void
    optimizerStepImpl() override
    {
        for (auto &e : experts_)
            e->optimizerStep();
    }

    void
    invalidateTapes() override
    {
        RadianceField::invalidateTapes();
        fusion_weights_batch_.clear();
    }

  private:
    /** Re-apply the region mask to every expert's occupancy gate. */
    void
    applyRegionMasks()
    {
        for (int k = 0; k < numExperts(); ++k) {
            experts_[static_cast<std::size_t>(k)]->grid().maskRegion(
                [this, k](const Vec3f &p) { return regionOf(p) == k; });
        }
    }

    Config cfg_;
    std::vector<std::unique_ptr<PipelineT>> experts_;
    std::vector<Vec3f> seeds_;
    std::vector<RayEval> last_partials_;
    std::vector<float> fusion_weights_;
    std::vector<int> fusion_order_;
    std::vector<RayWorkload> expert_workloads_;
    /** Per-expert RayEvals of the current batch, [expert][ray]. */
    std::vector<std::vector<RayEval>> expert_evals_;
    /** Fusion weights of the recorded batch, [ray * numExperts + expert]. */
    std::vector<float> fusion_weights_batch_;
    /** Per-expert dL/d(color) scratch for backwardRays (one buffer per
     *  expert so the expert-major parallel backward shares nothing). */
    std::vector<std::vector<Vec3f>> expert_dcolors_;
};

/** The paper's main MoE: Instant-NGP experts (the multi-chip system). */
using MoeNerf = MoeField<NerfPipeline>;
/** Configuration alias for MoeNerf. */
using MoeConfig = MoeConfigT<NerfPipeline>;

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_MOE_H_
