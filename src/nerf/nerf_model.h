/**
 * @file
 * The point-wise Instant-NGP radiance model: hash-grid encoding feeding
 * a density MLP whose geometry features, concatenated with a spherical-
 * harmonics view encoding, feed a color MLP. This is the per-sample
 * computation Stages II and III of the Fusion-3D pipeline execute.
 */

#ifndef FUSION3D_NERF_NERF_MODEL_H_
#define FUSION3D_NERF_NERF_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/vec.h"
#include "nerf/hash_encoding.h"
#include "nerf/mlp.h"
#include "nerf/sh_encoding.h"

namespace fusion3d::nerf
{

/** Architecture configuration of one radiance model. */
struct NerfModelConfig
{
    HashGridConfig grid;
    /** Geometry feature channels passed from density to color net. */
    int geoFeatures = 15;
    /** Hidden width of the density MLP (one hidden layer). */
    int densityHidden = 32;
    /** Hidden width of the color MLP (one hidden layer). */
    int colorHidden = 32;
    /** Spherical-harmonics degree for the view direction (1..4). */
    int shDegree = 3;

    int shDims() const { return shCoefficientCount(shDegree); }
};

/** Density + color of one evaluated point. */
struct PointEval
{
    float sigma = 0.0f;
    Vec3f rgb;
};

/** Scratch buffers for point evaluation; reuse across calls. */
struct PointWorkspace
{
    std::vector<float> encoding;
    std::vector<float> sh;
    std::vector<float> colorIn;
    std::vector<float> dDensityOut;
    std::vector<float> dColorOut;
    MlpWorkspace densityWs;
    MlpWorkspace colorWs;
    /** Raw (pre-activation) density output cached by forwardPoint. */
    float rawSigma = 0.0f;
    /** Raw color-net outputs cached by forwardPoint. */
    float rawRgb[3] = {0.0f, 0.0f, 0.0f};
};

/** A trainable radiance field over the normalized unit cube. */
class NerfModel
{
  public:
    explicit NerfModel(const NerfModelConfig &cfg, std::uint64_t seed = 7);

    const NerfModelConfig &config() const { return cfg_; }
    HashGridEncoding &encoding() { return *encoding_; }
    const HashGridEncoding &encoding() const { return *encoding_; }
    Mlp &densityNet() { return *density_net_; }
    const Mlp &densityNet() const { return *density_net_; }
    Mlp &colorNet() { return *color_net_; }
    const Mlp &colorNet() const { return *color_net_; }

    PointWorkspace makeWorkspace() const;

    /**
     * Evaluate density and view-dependent color of one point.
     * @param pos     Position in [0,1]^3.
     * @param dir     Unit view direction.
     * @param ws      Workspace (activation cache for a following backward).
     * @param visitor Optional Stage-II vertex-access observer.
     */
    PointEval forwardPoint(const Vec3f &pos, const Vec3f &dir, PointWorkspace &ws,
                           VertexVisitor *visitor = nullptr) const;

    /** Density-only evaluation (occupancy-grid updates). */
    float queryDensity(const Vec3f &pos, PointWorkspace &ws) const;

    /**
     * Accumulate parameter gradients for a point. Recomputes the forward
     * pass internally (recompute-in-backward strategy), so it does NOT
     * require a prior forwardPoint on the same workspace.
     *
     * @param dsigma dL/d(sigma).
     * @param drgb   dL/d(rgb).
     */
    void backwardPoint(const Vec3f &pos, const Vec3f &dir, float dsigma,
                       const Vec3f &drgb, PointWorkspace &ws);

    /** Zero all parameter gradients (encoding and both MLPs). */
    void zeroGrads();

    /** Total trainable parameter count. */
    std::size_t paramCount() const;

    /** MLP multiply-accumulates per point evaluation (forward). */
    std::uint64_t macsPerPoint() const;

    /** Density activation: sigma = exp(clamped raw). */
    static float densityActivation(float raw);
    /** Derivative of densityActivation w.r.t. raw, given the output. */
    static float densityActivationGrad(float raw, float sigma);

  private:
    NerfModelConfig cfg_;
    std::unique_ptr<HashGridEncoding> encoding_;
    std::unique_ptr<Mlp> density_net_;
    std::unique_ptr<Mlp> color_net_;
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_NERF_MODEL_H_
