/**
 * @file
 * Regenerates Table IV: the four-chip multi-chip system versus cloud
 * baselines (2080Ti GPU, RT-NeRF-Cloud, NeuRex-Server) in resources and
 * throughput-per-watt, on a large-scale (NeRF-360-style) scene.
 */

#include <cstdio>

#include "baselines/platforms.h"
#include "bench/bench_util.h"
#include "multichip/system.h"
#include "nerf/moe.h"
#include "scenes/dataset_gen.h"

using namespace fusion3d;

namespace
{

nerf::MoeConfig
moeConfig()
{
    nerf::MoeConfig mc;
    mc.numExperts = 4;
    mc.expert = bench::defaultPipeline();
    // Experts carry 2^14 tables vs the single model's 2^16 (Fig. 13a).
    mc.expert.model.grid.log2TableSize = 14;
    mc.expert.sampler.maxSamplesPerRay = 48;
    return mc;
}

} // namespace

int
main()
{
    bench::banner("Table IV: multi-chip system vs SOTA cloud accelerators");

    // Large-scale scene with ground-truth-bootstrapped expert gates.
    const auto scene = scenes::makeNerf360Scene("garden");
    nerf::MoeNerf moe(moeConfig());
    bench::bootstrapMoeGates(moe, *scene);

    const multichip::SystemConfig sc;
    const multichip::MultiChipSystem sys(sc);

    const nerf::Camera cam =
        nerf::Camera::orbit({0.5f, 0.4f, 0.5f}, 0.38f, 40.0f, 12.0f, 70.0f, 800, 800);
    const auto inf = sys.evaluateInference(moe, cam, 1200);

    scenes::DatasetConfig dc = scenes::nerf360Rig(32);
    dc.trainViews = 6;
    dc.testViews = 1;
    dc.reference.steps = 96;
    const nerf::Dataset ds = scenes::makeDataset(*scene, dc);
    const auto trn = sys.evaluateTraining(moe, ds, 2048);

    const double power = sys.totalPowerW();
    const double inf_mpts_w = inf.throughputPointsPerSec() / 1e6 / power;
    const double trn_mpts_w = trn.throughputPointsPerSec() / 1e6 / power;

    std::printf("%-22s %8s %10s %10s %10s %12s %12s %10s\n", "Platform", "Proc",
                "Area mm2", "SRAM KB", "Power W", "Inf M/s/W", "Trn M/s/W",
                "BW GB/s");
    bench::rule(102);
    for (const auto &p : baselines::cloudBaselines()) {
        std::printf("%-22s %6dnm %10.0f %10.0f %10.1f %12s %12s %10.0f\n",
                    p.name.c_str(), p.processNm, p.dieAreaMm2, p.sramKb,
                    p.typicalPowerW.value_or(0.0),
                    bench::fmtOpt(p.inferenceMpts.has_value(),
                                  p.inferenceMpts.value_or(0) /
                                      p.typicalPowerW.value_or(1.0))
                        .c_str(),
                    bench::fmtOpt(p.trainingMpts.has_value(),
                                  p.trainingMpts.value_or(0) /
                                      p.typicalPowerW.value_or(1.0))
                        .c_str(),
                    p.offChipGBs.value_or(0.0));
    }
    std::printf("%-22s %6dnm %10.1f %10.0f %10.1f %12.1f %12.1f %10.1f\n",
                "This Work (4 chips)", 28, sys.totalAreaMm2(), sys.totalSramKb(),
                power, inf_mpts_w, trn_mpts_w, 0.6);
    bench::rule(102);

    const auto &neurex = baselines::platform("NeuRex-Server");
    const auto &gpu = baselines::platform("Nvidia 2080Ti");
    std::printf("Inference throughput/W vs NeuRex-Server (50 M/s/W): %.2fx "
                "(paper: 1.97x)\n",
                inf_mpts_w / (*neurex.inferenceMpts / *neurex.typicalPowerW));
    std::printf("Training throughput/W vs 2080Ti (0.1 M/s/W): %.0fx (paper: 332x)\n",
                trn_mpts_w / (*gpu.trainingMpts / *gpu.typicalPowerW));
    std::printf("\nChip workload balance: slowest/mean = %.3f "
                "(Technique T4 target: ~1.0)\n", inf.imbalance);
    std::printf("MoE chip-to-chip traffic: %.2f MB/frame; layer-split would move "
                "%.2f MB (saving %.1f%%)\n",
                inf.moeCommBytes / 1e6, inf.layerSplitCommBytes / 1e6,
                inf.commSavingFraction() * 100.0);
    return 0;
}
