#include "nerf/image_warp.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace fusion3d::nerf
{

WarpResult
forwardWarp(const DepthFrame &prev, const Camera &target_camera)
{
    if (static_cast<int>(prev.depth.size()) != prev.color.pixelCount())
        fatal("forwardWarp: depth map size does not match the color image");

    const int tw = target_camera.width();
    const int th = target_camera.height();
    WarpResult result;
    result.image = Image(tw, th, Vec3f(0.0f));
    result.covered.assign(static_cast<std::size_t>(tw) * th, false);
    std::vector<float> zbuf(static_cast<std::size_t>(tw) * th,
                            std::numeric_limits<float>::infinity());

    for (int y = 0; y < prev.color.height(); ++y) {
        for (int x = 0; x < prev.color.width(); ++x) {
            const float d =
                prev.depth[static_cast<std::size_t>(y) * prev.color.width() + x];
            if (!(d > 0.0f))
                continue;
            const Ray ray = prev.camera.rayForPixel(x, y);
            const Vec3f world = ray.at(d);

            float px, py, vdepth;
            if (!target_camera.project(world, px, py, vdepth))
                continue;

            // 2x2 splat around the projected position.
            const int bx = static_cast<int>(px);
            const int by = static_cast<int>(py);
            for (int dy = 0; dy <= 1; ++dy) {
                for (int dx = 0; dx <= 1; ++dx) {
                    const int tx = bx + dx;
                    const int ty = by + dy;
                    if (tx < 0 || ty < 0 || tx >= tw || ty >= th)
                        continue;
                    const std::size_t idx =
                        static_cast<std::size_t>(ty) * tw + tx;
                    if (vdepth < zbuf[idx]) {
                        zbuf[idx] = vdepth;
                        result.image.at(tx, ty) = prev.color.at(x, y);
                        result.covered[idx] = true;
                    }
                }
            }
        }
    }

    std::size_t n = 0;
    for (const bool c : result.covered)
        n += c ? 1 : 0;
    result.coverage =
        static_cast<double>(n) / static_cast<double>(result.covered.size());
    return result;
}

double
warpAssistSpeedup(double coverage, double warp_overhead)
{
    const double work = (1.0 - coverage) + warp_overhead;
    return work > 0.0 ? 1.0 / work : 1.0;
}

} // namespace fusion3d::nerf
