#include "chip/config.h"

namespace fusion3d::chip
{

ChipConfig
ChipConfig::prototype()
{
    ChipConfig c;
    c.name = "fusion3d-prototype";
    c.clockHz = 600e6;
    c.coreVoltage = 0.95;
    c.samplingCores = 16;
    c.interpCores = 5;
    c.memoryClusters = 2;
    c.sramPerClusterKb = 92;
    c.hashTableSramKb = 320; // 2 x 64 KB tables across 5 interp cores
    c.scratchSramKb = 16;
    c.mlpMacsPerCycle = 1536;
    c.dieAreaMm2 = 5.0;
    c.typicalPowerW = 1.21;
    return c;
}

ChipConfig
ChipConfig::scaledUp()
{
    ChipConfig c;
    c.name = "fusion3d-scaled";
    c.clockHz = 600e6;
    c.coreVoltage = 0.95;
    c.samplingCores = 16;
    c.interpCores = 10;
    c.memoryClusters = 5;
    c.sramPerClusterKb = 92;
    c.hashTableSramKb = 640; // 2 x 5 x 64 KB (Sec. VI-C)
    c.scratchSramKb = 0;
    c.mlpMacsPerCycle = 3072;
    c.dieAreaMm2 = 8.7;
    c.typicalPowerW = 1.5;
    return c;
}

} // namespace fusion3d::chip
