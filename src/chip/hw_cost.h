/**
 * @file
 * Unit-gate hardware cost model. The paper's area/power ablation claims
 * (FIEM: 55% area / 65% power saving over INT2FP+FPMUL, Fig. 6(d);
 * Stage-II sharing: 87.4% directly shared + 12.6% reused, Sec. IV-B3;
 * crossbar-elimination area saving, Fig. 12(b)) are *ratios* of datapath
 * costs, which a standard unit-gate model reproduces without needing the
 * authors' Cadence flow. One "unit" is a 2-input NAND equivalent.
 */

#ifndef FUSION3D_CHIP_HW_COST_H_
#define FUSION3D_CHIP_HW_COST_H_

#include <cstdint>

namespace fusion3d::chip
{

/** Area (NAND2-equivalent gates) and switching energy of a datapath. */
struct HwCost
{
    double areaUnits = 0.0;
    /** Relative dynamic energy per operation (gate count x activity). */
    double energyUnits = 0.0;

    constexpr HwCost &
    operator+=(const HwCost &o)
    {
        areaUnits += o.areaUnits;
        energyUnits += o.energyUnits;
        return *this;
    }

    constexpr HwCost
    operator+(const HwCost &o) const
    {
        HwCost r = *this;
        r += o;
        return r;
    }
};

/** Cost library: classic unit-gate estimates for datapath blocks. */
namespace hw
{

/** Ripple/carry-select adder of @p bits (full adder ~ 5 gates). */
HwCost adder(int bits);

/** Array multiplier of @p a_bits x @p b_bits partial products. */
HwCost multiplier(int a_bits, int b_bits);

/** 2:1 multiplexer of @p bits. */
HwCost mux2(int bits);

/** Barrel shifter over @p bits (log2(bits) mux stages). */
HwCost barrelShifter(int bits);

/** Leading-zero/priority encoder over @p bits. */
HwCost priorityEncoder(int bits);

/** Flip-flop register of @p bits. */
HwCost registerBits(int bits);

/** Comparator of @p bits. */
HwCost comparator(int bits);

/** Small constant control overhead. */
HwCost control(int states);

/** Iterative (radix-4 SRT) divider of @p bits; area ~2.5x a same-width
 *  multiplier and high switching activity. */
HwCost divider(int bits);

/** SRAM macro of @p bits capacity (dense layout, low activity). */
HwCost sramMacro(double bits);

} // namespace hw

/** Datapath models of the two Stage-II mixed multipliers (Fig. 6(d)). */
namespace fiem_cost
{

/**
 * Traditional path: INT2FP conversion (priority encoder + barrel
 * shifter + exponent adder) followed by a full FP16 multiplier (11x11
 * significand array, exponent adder, normalizer, rounding).
 */
HwCost int2fpPlusFpmul(int int_bits = 8);

/**
 * FIEM: the integer multiplies the significand directly (11 x int_bits
 * array), followed by one shared normalize/round stage; the INT2FP
 * stage and the wider 11x11 array disappear.
 */
HwCost fiem(int int_bits = 8);

} // namespace fiem_cost

/** Stage-II pipeline sharing accounting (Technique T2-1). */
struct StageTwoSharing
{
    /** Area directly shared between inference and training. */
    double sharedUnits = 0.0;
    /** Area of the reconfigurable (mode-switched) interpolation array. */
    double reconfiguredUnits = 0.0;
    /** Area a naive design would duplicate per mode. */
    double duplicatedSavingUnits = 0.0;

    double totalUnits() const { return sharedUnits + reconfiguredUnits; }
    /** Fraction of Stage-II area that is directly shared (paper: 87.4%). */
    double sharedFraction() const { return sharedUnits / totalUnits(); }
    /** Fraction that is reused via reconfiguration (paper: 12.6%). */
    double reconfiguredFraction() const { return reconfiguredUnits / totalUnits(); }
};

/**
 * Gate-level accounting of one feature-interpolation core: coordinate
 * generation, hash index computation, and weight computation are shared
 * verbatim between the forward and backward passes; the interpolation
 * array (MAC tree forward / scatter-multiply backward) is reconfigured.
 */
StageTwoSharing stageTwoSharing(int feature_bits = 16, int levels = 8);

/** Result of adapting the Fusion-3D modules to a TensoRF accelerator. */
struct TensorfAdaptation
{
    /** RT-NeRF-style baseline: generic sampling + separate post proc. */
    HwCost baseline;
    /** With the Fusion-3D sampling and post-processing modules dropped
     *  in (feature-interpolation module retained). */
    HwCost adapted;

    double areaSaving() const { return 1.0 - adapted.areaUnits / baseline.areaUnits; }
    double powerSaving() const
    {
        return 1.0 - adapted.energyUnits / baseline.energyUnits;
    }
};

/**
 * Gate-level model of the Sec. VI-C adaptation study: integrating the
 * proposed Sampling and Post-Processing modules into a TensoRF
 * accelerator while retaining its feature-interpolation module
 * (paper: 39% power and 11% area reduction vs RT-NeRF).
 */
TensorfAdaptation tensorfAdaptation();

} // namespace fusion3d::chip

#endif // FUSION3D_CHIP_HW_COST_H_
