/** @file Tests of the chip's cycle-level modules: hash tiler, sampling
 *  scheduler, interpolation memory system, post-processing and the
 *  technology model. */

#include <array>
#include <set>

#include <gtest/gtest.h>

#include "chip/hash_tiler.h"
#include "chip/interp_module.h"
#include "chip/postproc_module.h"
#include "chip/sampling_module.h"
#include "chip/tech_model.h"
#include "common/rng.h"
#include "nerf/hash_encoding.h"

namespace fusion3d::chip
{
namespace
{

/**
 * THE Technique-T4 property: for any query point, the tiled mapping
 * sends the eight corner accesses to eight distinct banks.
 */
TEST(HashTiler, TiledMappingIsBijectivePerGroup)
{
    const HashTiler tiler(BankPolicy::TwoLevelTiling, 8);
    const std::uint32_t mask = (1u << 14) - 1;
    Pcg32 rng(1);
    for (int trial = 0; trial < 5000; ++trial) {
        const Vec3i base{static_cast<int>(rng.nextBounded(1 << 16)),
                         static_cast<int>(rng.nextBounded(1 << 16)),
                         static_cast<int>(rng.nextBounded(1 << 16))};
        std::set<std::uint32_t> banks;
        for (int c = 0; c < 8; ++c) {
            const Vec3i v{base.x + (c & 1), base.y + ((c >> 1) & 1),
                          base.z + ((c >> 2) & 1)};
            const std::uint32_t addr = nerf::HashGridEncoding::hashCoords(v, mask);
            banks.insert(tiler.bankOf(v, addr));
        }
        ASSERT_EQ(banks.size(), 8u)
            << "collision at base " << base.x << "," << base.y << "," << base.z;
    }
}

TEST(HashTiler, BankIsDeterministicPerVertex)
{
    // Storage consistency: a vertex's bank does not depend on which
    // corner role it is accessed through.
    const HashTiler tiler(BankPolicy::TwoLevelTiling, 8);
    const std::uint32_t mask = (1u << 12) - 1;
    Pcg32 rng(2);
    for (int i = 0; i < 1000; ++i) {
        const Vec3i v{static_cast<int>(rng.nextBounded(4096)),
                      static_cast<int>(rng.nextBounded(4096)),
                      static_cast<int>(rng.nextBounded(4096))};
        const std::uint32_t addr = nerf::HashGridEncoding::hashCoords(v, mask);
        const std::uint32_t b1 = tiler.bankOf(v, addr);
        const std::uint32_t b2 = tiler.bankOf(v, addr);
        EXPECT_EQ(b1, b2);
        EXPECT_LT(b1, 8u);
    }
}

TEST(HashTiler, ModuloMappingCollides)
{
    const HashTiler tiler(BankPolicy::ModuloInterleave, 8);
    const std::uint32_t mask = (1u << 14) - 1;
    Pcg32 rng(3);
    int collisions = 0;
    const int trials = 2000;
    for (int trial = 0; trial < trials; ++trial) {
        const Vec3i base{static_cast<int>(rng.nextBounded(1 << 16)),
                         static_cast<int>(rng.nextBounded(1 << 16)),
                         static_cast<int>(rng.nextBounded(1 << 16))};
        std::set<std::uint32_t> banks;
        for (int c = 0; c < 8; ++c) {
            const Vec3i v{base.x + (c & 1), base.y + ((c >> 1) & 1),
                          base.z + ((c >> 2) & 1)};
            banks.insert(tiler.bankOf(v, nerf::HashGridEncoding::hashCoords(v, mask)));
        }
        if (banks.size() < 8)
            ++collisions;
    }
    // Random 8-into-8 placement almost always collides somewhere.
    EXPECT_GT(collisions, trials / 2);
}

nerf::RayWorkload
makeRay(std::initializer_list<std::pair<int, int>> pairs)
{
    nerf::RayWorkload wl;
    for (const auto &[oct, cand] : pairs) {
        nerf::RayCubePair p;
        p.octant = oct;
        p.candidates = cand;
        p.valid = cand;
        wl.pairs.push_back(p);
        wl.totalCandidates += cand;
        wl.totalValid += cand;
    }
    return wl;
}

TEST(SamplingModule, DynamicBeatsRaySerialUtilization)
{
    ChipConfig cfg = ChipConfig::scaledUp();
    std::vector<nerf::RayWorkload> rays;
    Pcg32 rng(4);
    for (int i = 0; i < 400; ++i) {
        const int pairs = 1 + static_cast<int>(rng.nextBounded(3));
        nerf::RayWorkload wl;
        for (int p = 0; p < pairs; ++p) {
            nerf::RayCubePair pair;
            pair.octant = p;
            pair.candidates = 3 + static_cast<int>(rng.nextBounded(60));
            pair.valid = pair.candidates / 2;
            wl.pairs.push_back(pair);
            wl.totalCandidates += pair.candidates;
            wl.totalValid += pair.valid;
        }
        rays.push_back(wl);
    }

    const SamplingModule dynamic(cfg, SamplingSchedule::Dynamic);
    const SamplingModule serial(cfg, SamplingSchedule::RaySerial);
    const SamplingRunStats d = dynamic.run(rays);
    const SamplingRunStats s = serial.run(rays);

    EXPECT_LT(d.totalCycles, s.totalCycles);
    EXPECT_GT(d.utilization(cfg.samplingCores), s.utilization(cfg.samplingCores));
    // Identical work content either way.
    EXPECT_EQ(d.candidatesMarched, s.candidatesMarched);
    EXPECT_EQ(d.validPoints, s.validPoints);
}

TEST(SamplingModule, SingleRayTiming)
{
    ChipConfig cfg = ChipConfig::scaledUp();
    const SamplingModule mod(cfg, SamplingSchedule::Dynamic);
    const std::vector<nerf::RayWorkload> rays{makeRay({{0, 10}, {7, 20}})};
    const SamplingRunStats s = mod.run(rays);
    // Ready at cycle 1, both pairs run in parallel; each pair costs
    // candidates + 2 x valid cycles (all candidates valid here), so the
    // 20-candidate pair finishes at 1 + 60.
    EXPECT_EQ(s.totalCycles, 61u);
    EXPECT_EQ(s.busyCoreCycles, 90u);
    EXPECT_EQ(s.pairsProcessed, 2u);
}

TEST(SamplingModule, GenericPreprocSlowsPipeline)
{
    ChipConfig cfg = ChipConfig::scaledUp();
    std::vector<nerf::RayWorkload> rays(200, makeRay({{0, 4}}));
    const SamplingModule fast(cfg, SamplingSchedule::Dynamic, true);
    const SamplingModule slow(cfg, SamplingSchedule::Dynamic, false);
    // With tiny per-ray sampling work the pre-processing path dominates:
    // 24 cycles/ray vs 1 ray/cycle.
    EXPECT_GT(slow.run(rays).totalCycles, 10 * fast.run(rays).totalCycles);
}

TEST(SamplingModule, EmptyRaysOnlyCostPreprocessing)
{
    ChipConfig cfg = ChipConfig::scaledUp();
    std::vector<nerf::RayWorkload> rays(100); // all miss the model
    const SamplingModule mod(cfg, SamplingSchedule::Dynamic);
    const SamplingRunStats s = mod.run(rays);
    EXPECT_EQ(s.totalCycles, 100u);
    EXPECT_EQ(s.busyCoreCycles, 0u);
}

/** Replay real encoding traces: tiling makes Stage II conflict-free. */
TEST(InterpModule, TilingEliminatesConflictsOnRealTraces)
{
    nerf::HashGridConfig gc;
    gc.levels = 6;
    gc.log2TableSize = 12;
    gc.baseResolution = 8;
    gc.maxResolution = 64;
    const nerf::HashGridEncoding enc(gc);
    std::vector<float> out(static_cast<std::size_t>(gc.encodedDims()));

    const ChipConfig cfg = ChipConfig::scaledUp();
    InterpModule tiled(cfg, BankPolicy::TwoLevelTiling);
    InterpModule baseline(cfg, BankPolicy::ModuloInterleave);

    Pcg32 rng(5);
    for (int i = 0; i < 500; ++i) {
        const Vec3f p = rng.nextVec3();
        enc.encode(p, out, &tiled);
        enc.encode(p, out, &baseline);
    }

    const InterpRunStats t = tiled.stats();
    const InterpRunStats b = baseline.stats();
    ASSERT_EQ(t.groups, b.groups);

    // Fig. 12(d): latency variance collapses to zero with tiling.
    EXPECT_EQ(t.conflicts, 0u);
    EXPECT_DOUBLE_EQ(t.latencyVariance, 0.0);
    EXPECT_DOUBLE_EQ(t.meanGroupLatency, 1.0);

    // The baseline suffers 1..8-cycle accesses (Sec. V-B).
    EXPECT_GT(b.conflicts, 0u);
    EXPECT_GT(b.latencyVariance, 0.0);
    EXPECT_GT(b.meanGroupLatency, 1.5);
    EXPECT_LE(b.maxGroupLatency, 8.0 + 1.0); // 8 + crossbar latency

    // Fig. 12(b): the one-to-one wiring is far smaller than a crossbar.
    EXPECT_GT(baseline.interconnectProfile().areaUnits,
              10.0 * tiled.interconnectProfile().areaUnits);
}

TEST(TdmCoSchedule, AbsorbsInferenceIntoIdleSlots)
{
    // Fig. 6(c): with fewer inference groups than training updates,
    // the render stream rides entirely in the idle compute slots.
    const TdmResult r = tdmCoSchedule(1000, 600, 10);
    EXPECT_EQ(r.trainingCycles, 300u);
    EXPECT_EQ(r.inferenceAloneCycles, 60u);
    EXPECT_EQ(r.inferenceAbsorbed, 600u);
    EXPECT_EQ(r.tdmCycles, r.trainingCycles); // inference is free
    EXPECT_EQ(r.savedCycles(), 60u);
}

TEST(TdmCoSchedule, LeftoverInferenceRunsAfterwards)
{
    const TdmResult r = tdmCoSchedule(100, 500, 10);
    EXPECT_EQ(r.inferenceAbsorbed, 100u);
    // 400 leftover groups at one slot each over 10 cores.
    EXPECT_EQ(r.tdmCycles, 30u + 40u);
    EXPECT_EQ(r.savedCycles(), 10u);
}

TEST(TdmCoSchedule, NoTrainingMeansNoSaving)
{
    const TdmResult r = tdmCoSchedule(0, 500, 10);
    EXPECT_EQ(r.inferenceAbsorbed, 0u);
    EXPECT_EQ(r.tdmCycles, r.inferenceAloneCycles);
    EXPECT_EQ(r.savedCycles(), 0u);
}

TEST(PostprocModule, CycleAccounting)
{
    ChipConfig cfg = ChipConfig::scaledUp();
    const PostprocModule post(cfg, 2400);
    const PostprocRunStats inf = post.inference(1000, 800);
    EXPECT_EQ(inf.macs, 2400u * 1000u);
    EXPECT_EQ(inf.mlpCycles,
              (2400u * 1000u + cfg.mlpMacsPerCycle - 1) / cfg.mlpMacsPerCycle);
    EXPECT_EQ(inf.renderCycles, static_cast<Cycles>(800 / cfg.renderSamplesPerCycle));
    EXPECT_EQ(inf.totalCycles, std::max(inf.mlpCycles, inf.renderCycles));

    const PostprocRunStats tr = post.training(1000, 800);
    EXPECT_EQ(tr.macs, 3u * inf.macs);
    EXPECT_GE(tr.totalCycles, 2 * inf.totalCycles);
}

TEST(TechModel, NominalPointOnCurve)
{
    const TechModel tech(ChipConfig::scaledUp());
    EXPECT_NEAR(tech.frequencyAtVoltage(0.95), 600e6, 1e3);
    EXPECT_NEAR(tech.voltageForFrequency(600e6), 0.95, 1e-3);
}

TEST(TechModel, FrequencyMonotonicInVoltage)
{
    const TechModel tech(ChipConfig::scaledUp());
    double prev = 0.0;
    for (double v = 0.6; v <= 1.2; v += 0.05) {
        const double f = tech.frequencyAtVoltage(v);
        EXPECT_GT(f, prev);
        prev = f;
    }
    EXPECT_EQ(tech.frequencyAtVoltage(0.4), 0.0); // below threshold
}

TEST(TechModel, PowerScalesWithVoltageAndFrequency)
{
    const ChipConfig cfg = ChipConfig::scaledUp();
    const TechModel tech(cfg);
    EXPECT_NEAR(tech.powerAt(cfg.coreVoltage, cfg.clockHz), cfg.typicalPowerW, 1e-9);
    EXPECT_LT(tech.powerAt(0.8, 300e6), cfg.typicalPowerW);
    EXPECT_GT(tech.powerAt(1.05, 750e6), cfg.typicalPowerW);
}

TEST(TechModel, BreakdownSumsToWhole)
{
    const TechModel tech(ChipConfig::prototype());
    double area = 0.0, power = 0.0;
    for (const ModuleShare &m : tech.breakdown()) {
        area += m.areaFraction;
        power += m.powerFraction;
    }
    EXPECT_NEAR(area, 1.0, 1e-9);
    EXPECT_NEAR(power, 1.0, 1e-9);
    EXPECT_GT(tech.moduleAreaMm2("interp"), tech.moduleAreaMm2("sampling"));
}

TEST(TechModel, EnergyForCycles)
{
    const ChipConfig cfg = ChipConfig::scaledUp();
    const TechModel tech(cfg);
    // One second of cycles at nominal = typical power in joules.
    EXPECT_NEAR(tech.energyJ(cfg.clockHz), cfg.typicalPowerW, 1e-9);
}

TEST(ChipConfig, SramBudgetsMatchPaper)
{
    const ChipConfig scaled = ChipConfig::scaledUp();
    // Table III: 1,099 KB total SRAM on the scaled-up chip.
    EXPECT_NEAR(scaled.totalSramKb(), 1099, 15);
    EXPECT_EQ(scaled.interpCores, 10);
    EXPECT_EQ(scaled.memoryClusters, 5);
    EXPECT_NEAR(scaled.dieAreaMm2, 8.7, 1e-9);

    const ChipConfig proto = ChipConfig::prototype();
    EXPECT_EQ(proto.interpCores, 5);
    EXPECT_EQ(proto.memoryClusters, 2);
    EXPECT_LT(proto.totalSramKb(), scaled.totalSramKb());
}

} // namespace
} // namespace fusion3d::chip
