/**
 * @file
 * Process-wide metrics registry. Subsystems register named *collectors*
 * — callbacks that append flat (name, value) samples when a snapshot is
 * taken — so the registry never needs to know about `sim::StatGroup`,
 * `serve::ServerStats`, or any other stats holder, and each holder can
 * snapshot under its own lock. Two export formats:
 *
 *  - Prometheus text exposition (`exportPrometheus`): names sanitized
 *    to [a-zA-Z0-9_:], prefixed `fusion3d_`, with `# TYPE` lines;
 *  - a one-line JSON object (`exportJsonLine`) for scripted harvesting,
 *    keyed by the raw dotted metric names.
 *
 * Like the tracer, this layer depends only on the standard library.
 */

#ifndef FUSION3D_OBS_METRICS_H_
#define FUSION3D_OBS_METRICS_H_

#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace fusion3d::obs
{

/** Prometheus-style metric kind. */
enum class MetricKind
{
    counter, ///< monotonically increasing
    gauge,   ///< instantaneous value
};

/** One flat sample of a snapshot. */
struct MetricSample
{
    /** Dotted hierarchical name, e.g. "serve.latency_ms.p99". */
    std::string name;
    /**
     * Optional pre-formatted Prometheus label body (without braces),
     * e.g. `le="7"`; appended as `[...]` to the JSON key.
     */
    std::string labels;
    double value = 0.0;
    MetricKind kind = MetricKind::gauge;
};

/** Append helper used by collectors. */
class MetricSink
{
  public:
    explicit MetricSink(std::vector<MetricSample> &out) : out_(out) {}

    void
    counter(std::string name, double value)
    {
        out_.push_back({std::move(name), {}, value, MetricKind::counter});
    }

    void
    gauge(std::string name, double value)
    {
        out_.push_back({std::move(name), {}, value, MetricKind::gauge});
    }

    void
    bucket(std::string name, std::string labels, double value)
    {
        out_.push_back(
            {std::move(name), std::move(labels), value, MetricKind::counter});
    }

    /** Gauge with a pre-formatted label body (e.g. build-info). */
    void
    labeledGauge(std::string name, std::string labels, double value)
    {
        out_.push_back(
            {std::move(name), std::move(labels), value, MetricKind::gauge});
    }

  private:
    std::vector<MetricSample> &out_;
};

/**
 * A registry of metric collectors. Thread-safe; collectors run in
 * registration order under the registry mutex, so snapshots have a
 * stable sample order.
 */
class MetricsRegistry
{
  public:
    using Collector = std::function<void(MetricSink &)>;

    MetricsRegistry() = default;

    /**
     * Register @p collector under @p name (used only for
     * unregistration; sample names come from the collector itself).
     * Re-registering a live name replaces the previous collector.
     */
    void registerCollector(const std::string &name, Collector collector);

    /** Remove the collector registered as @p name (no-op if absent). */
    void unregisterCollector(const std::string &name);

    /** Number of registered collectors. */
    std::size_t collectorCount() const;

    /** Run every collector and return the flattened samples. */
    std::vector<MetricSample> snapshot() const;

    /** Prometheus text exposition format. */
    void exportPrometheus(std::ostream &os) const;

    /** One-line JSON object keyed by raw dotted names. */
    void exportJsonLine(std::ostream &os) const;

    /**
     * The process-wide registry. The `process.*` collector (uptime +
     * build info, obs/build_info.h) is auto-registered on first use.
     */
    static MetricsRegistry &global();

    /**
     * Metric-name prefix used by exportPrometheus ("fusion3d_" by
     * default; "" removes the prefix entirely). Lets dumps from
     * different deployments of the same binary be distinguished.
     */
    void setPrometheusPrefix(std::string prefix);
    std::string prometheusPrefix() const;

    /** Sanitize a dotted name into a Prometheus metric name, using the
     *  default "fusion3d_" prefix. */
    static std::string prometheusName(const std::string &name);

    /** Same, with an explicit prefix. */
    static std::string prometheusName(const std::string &name,
                                      const std::string &prefix);

  private:
    mutable std::mutex mutex_;
    std::vector<std::pair<std::string, Collector>> collectors_;
    std::string prometheus_prefix_ = "fusion3d_";
};

} // namespace fusion3d::obs

#endif // FUSION3D_OBS_METRICS_H_
