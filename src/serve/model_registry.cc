#include "serve/model_registry.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/rng.h"
#include "obs/trace.h"

namespace fusion3d::serve
{

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::closed:
        return "closed";
      case BreakerState::open:
        return "open";
      case BreakerState::halfOpen:
        return "half_open";
    }
    return "?";
}

ModelRegistry::ModelRegistry(int occupancy_resolution, float occupancy_threshold)
    : ModelRegistry([&] {
          RegistryConfig cfg;
          cfg.occupancyResolution = occupancy_resolution;
          cfg.occupancyThreshold = occupancy_threshold;
          return cfg;
      }())
{
}

ModelRegistry::ModelRegistry(const RegistryConfig &cfg) : cfg_(cfg)
{
    if (cfg_.occupancyResolution < 1)
        fatal("ModelRegistry: occupancy resolution must be positive, got %d",
              cfg_.occupancyResolution);
    if (cfg_.loadMaxAttempts < 1)
        fatal("ModelRegistry: loadMaxAttempts must be >= 1, got %d",
              cfg_.loadMaxAttempts);
    if (cfg_.breakerThreshold < 1)
        fatal("ModelRegistry: breakerThreshold must be >= 1, got %d",
              cfg_.breakerThreshold);

    // Distinct collector name per registry instance, as ServerStats does
    // for servers.
    static std::atomic<std::uint64_t> seq{0};
    char buf[64];
    std::snprintf(buf, sizeof buf, "serve.registry%llu",
                  static_cast<unsigned long long>(seq.fetch_add(1)));
    collector_name_ = buf;
    obs::MetricsRegistry::global().registerCollector(
        collector_name_, [this](obs::MetricSink &sink) { collect(sink); });
}

ModelRegistry::~ModelRegistry()
{
    obs::MetricsRegistry::global().unregisterCollector(collector_name_);
}

void
ModelRegistry::collect(obs::MetricSink &sink) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    sink.gauge("serve.registry.models", static_cast<double>(entries_.size()));
    sink.counter("serve.registry.loads_ok", loads_ok_);
    sink.counter("serve.registry.loads_failed", loads_failed_);
    sink.counter("serve.registry.load_retries", load_retries_);
    sink.counter("serve.registry.breaker_trips", breaker_trips_);
    sink.counter("serve.registry.breaker_open_rejects", breaker_rejects_);
    std::uint64_t open = 0;
    for (const auto &[name, b] : breakers_)
        if (b.state == BreakerState::open)
            ++open;
    sink.gauge("serve.registry.breakers_open", static_cast<double>(open));
}

const ModelEntry *
ModelRegistry::add(const std::string &name, std::unique_ptr<nerf::NerfModel> model)
{
    if (!model)
        fatal("ModelRegistry::add('%s'): null model", name.c_str());

    auto entry = std::make_unique<ModelEntry>(
        name, std::move(model), cfg_.occupancyResolution, cfg_.occupancyThreshold);

    // Rebuild the inference gate from the deployed weights; decay 0
    // makes it exactly the current field's occupancy, like the benches'
    // scene bootstrap.
    nerf::PointWorkspace ws = entry->model->makeWorkspace();
    Pcg32 rng(0x5eedf00dULL, 41);
    const nerf::NerfModel *m = entry->model.get();
    entry->grid.update(
        [m, &ws](const Vec3f &p) { return m->queryDensity(p, ws); }, rng,
        /*decay=*/0.0f);

    const ModelEntry *raw = entry.get();
    std::lock_guard<std::mutex> lock(mutex_);
    entry->epoch = ++epochs_[name];
    std::unique_ptr<ModelEntry> &slot = entries_[name];
    if (slot)
        retired_.push_back(std::move(slot));
    slot = std::move(entry);
    return raw;
}

std::uint64_t
ModelRegistry::epoch(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = epochs_.find(name);
    return it == epochs_.end() ? 0 : it->second;
}

nerf::LoadStatus
ModelRegistry::addFromFile(const std::string &name, const std::string &path)
{
    F3D_TRACE_SPAN("serve", "registry_load");

    // Breaker check. An open breaker rejects until its cooldown
    // elapses, then half-opens: exactly one probe attempt, no retries.
    bool half_open = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Breaker &b = breakers_[name];
        if (b.state == BreakerState::open) {
            const auto elapsed = std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - b.openedAt);
            if (elapsed.count() < cfg_.breakerCooldownMs) {
                ++breaker_rejects_;
                warn("ModelRegistry: deploy of '%s' rejected, breaker open "
                     "(%.1f of %.1f ms cooldown elapsed)",
                     name.c_str(), elapsed.count(), cfg_.breakerCooldownMs);
                return nerf::LoadStatus::ioError;
            }
            b.state = BreakerState::halfOpen;
            inform("ModelRegistry: breaker for '%s' half-open, probing '%s'",
                   name.c_str(), path.c_str());
        }
        half_open = b.state == BreakerState::halfOpen;
    }

    const int attempts = half_open ? 1 : cfg_.loadMaxAttempts;
    double delay_ms = cfg_.backoffInitialMs;
    nerf::LoadResult r;
    for (int attempt = 1; attempt <= attempts; ++attempt) {
        if (attempt > 1) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++load_retries_;
            }
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(delay_ms));
            delay_ms = std::min(delay_ms * cfg_.backoffMultiplier,
                                cfg_.backoffMaxMs);
        }
        if (F3D_FAULT_POINT("serve.load.io")) {
            r = nerf::LoadResult{};
            r.status = nerf::LoadStatus::ioError;
            r.message = "injected fault (serve.load.io)";
        } else {
            r = nerf::loadModelVerbose(path);
        }
        if (r)
            break;
        warn("ModelRegistry: deploy of '%s' from '%s' failed (attempt %d/%d): "
             "%s (%s)",
             name.c_str(), path.c_str(), attempt, attempts,
             nerf::loadStatusName(r.status), r.message.c_str());
    }

    if (!r) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++loads_failed_;
        Breaker &b = breakers_[name];
        ++b.consecutiveFailures;
        if (b.state == BreakerState::halfOpen ||
            b.consecutiveFailures >= cfg_.breakerThreshold) {
            b.state = BreakerState::open;
            b.openedAt = std::chrono::steady_clock::now();
            ++b.trips;
            ++breaker_trips_;
            obs::Tracer::instance().recordInstant("serve", "breaker_open");
            warn("ModelRegistry: breaker for '%s' open after %d consecutive "
                 "failures (cooldown %.1f ms)",
                 name.c_str(), b.consecutiveFailures, cfg_.breakerCooldownMs);
        }
        return r.status;
    }

    add(name, std::move(r.model));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++loads_ok_;
        Breaker &b = breakers_[name];
        if (b.state != BreakerState::closed)
            inform("ModelRegistry: breaker for '%s' closed", name.c_str());
        b.state = BreakerState::closed;
        b.consecutiveFailures = 0;
    }
    inform("ModelRegistry: deployed '%s' from '%s' (%zu params)", name.c_str(),
           path.c_str(), find(name)->model->paramCount());
    return nerf::LoadStatus::ok;
}

const ModelEntry *
ModelRegistry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second.get();
}

std::size_t
ModelRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::vector<std::string>
ModelRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.push_back(name);
    return out;
}

BreakerState
ModelRegistry::breakerState(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = breakers_.find(name);
    return it == breakers_.end() ? BreakerState::closed : it->second.state;
}

std::uint64_t
ModelRegistry::loadsSucceeded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return loads_ok_;
}

std::uint64_t
ModelRegistry::loadsFailed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return loads_failed_;
}

std::uint64_t
ModelRegistry::loadRetries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return load_retries_;
}

std::uint64_t
ModelRegistry::breakerTrips() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return breaker_trips_;
}

std::uint64_t
ModelRegistry::breakerOpenRejects() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return breaker_rejects_;
}

} // namespace fusion3d::serve
