/**
 * @file
 * Symmetric INT8 tensor quantization used by the Table-II experiment
 * (quantized training hurts model quality) and by the chip's
 * mixed-precision inference path.
 */

#ifndef FUSION3D_COMMON_QUANT_H_
#define FUSION3D_COMMON_QUANT_H_

#include <cstdint>
#include <span>
#include <vector>

namespace fusion3d
{

/**
 * Numeric format of an inference weight image. `fp32` is the training
 * master copy; `fp16`/`int8` select the packed images built by
 * Mlp::buildQuantized / HashGridEncoding::buildQuantized, which the
 * batched inference kernels read directly (weight-only quantization —
 * activations stay fp32).
 */
enum class QuantMode
{
    fp32,
    fp16,
    int8,
};

/** Stable lowercase name of a quant mode ("fp32"/"fp16"/"int8"). */
const char *quantModeName(QuantMode mode);

/** Parse "fp32"/"fp16"/"int8"; returns false on anything else. */
bool parseQuantMode(const char *text, QuantMode *out);

/** Per-tensor symmetric quantization parameters. */
struct QuantScale
{
    /** Dequantized value = scale * q. */
    float scale = 1.0f;
};

/** Compute the symmetric scale mapping max|v| onto 127. */
QuantScale computeScale(std::span<const float> values);

/** Quantize @p values to INT8 with round-to-nearest, saturating. */
std::vector<std::int8_t> quantize(std::span<const float> values, QuantScale qs);

/** Dequantize back to float. */
std::vector<float> dequantize(std::span<const std::int8_t> q, QuantScale qs);

/**
 * Round-trip every value through INT8 in place (quantize-dequantize).
 * This is the fake-quantization step applied to weights every N training
 * iterations in Table II.
 */
void fakeQuantizeInPlace(std::span<float> values);

/** RMS quantization error of a round trip through INT8. */
double quantizationRmse(std::span<const float> values);

} // namespace fusion3d

#endif // FUSION3D_COMMON_QUANT_H_
