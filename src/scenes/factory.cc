#include "scenes/factory.h"

#include "common/logging.h"
#include "common/rng.h"

namespace fusion3d::scenes
{

namespace
{

Primitive
sphere(const Vec3f &c, float r, const Vec3f &color, float density = 400.0f)
{
    Primitive p;
    p.type = Primitive::Type::Sphere;
    p.a = c;
    p.b = Vec3f{r, 0.0f, 0.0f};
    p.color = color;
    p.density = density;
    return p;
}

Primitive
box(const Vec3f &lo, const Vec3f &hi, const Vec3f &color, float density = 400.0f)
{
    Primitive p;
    p.type = Primitive::Type::Box;
    p.a = lo;
    p.b = hi;
    p.color = color;
    p.density = density;
    return p;
}

Primitive
torus(const Vec3f &c, float major, float minor, const Vec3f &color,
      float density = 400.0f)
{
    Primitive p;
    p.type = Primitive::Type::Torus;
    p.a = c;
    p.b = Vec3f{major, minor, 0.0f};
    p.color = color;
    p.density = density;
    return p;
}

Primitive
cylinder(const Vec3f &c, float radius, float half_height, const Vec3f &color,
         float density = 400.0f)
{
    Primitive p;
    p.type = Primitive::Type::CylinderY;
    p.a = c;
    p.b = Vec3f{radius, half_height, 0.0f};
    p.color = color;
    p.density = density;
    return p;
}

/** "chair": a boxy seat + back + four legs; medium fill. */
std::unique_ptr<Scene>
makeChair()
{
    std::vector<Primitive> prims;
    const Vec3f wood{0.55f, 0.35f, 0.2f};
    const Vec3f cushion{0.7f, 0.15f, 0.15f};
    prims.push_back(box({0.3f, 0.42f, 0.3f}, {0.7f, 0.5f, 0.7f}, cushion));   // seat
    prims.push_back(box({0.3f, 0.5f, 0.64f}, {0.7f, 0.85f, 0.7f}, wood));     // back
    prims.push_back(box({0.3f, 0.15f, 0.3f}, {0.36f, 0.42f, 0.36f}, wood));   // legs
    prims.push_back(box({0.64f, 0.15f, 0.3f}, {0.7f, 0.42f, 0.36f}, wood));
    prims.push_back(box({0.3f, 0.15f, 0.64f}, {0.36f, 0.42f, 0.7f}, wood));
    prims.push_back(box({0.64f, 0.15f, 0.64f}, {0.7f, 0.42f, 0.7f}, wood));
    return std::make_unique<Scene>("chair", std::move(prims));
}

/** "drums": a kit of cylinders and small toruses; sparse-medium fill. */
std::unique_ptr<Scene>
makeDrums()
{
    std::vector<Primitive> prims;
    const Vec3f shell{0.75f, 0.1f, 0.1f};
    const Vec3f chrome{0.8f, 0.8f, 0.85f};
    prims.push_back(cylinder({0.5f, 0.4f, 0.45f}, 0.1f, 0.08f, shell));
    prims.push_back(cylinder({0.33f, 0.45f, 0.6f}, 0.07f, 0.05f, shell));
    prims.push_back(cylinder({0.67f, 0.45f, 0.6f}, 0.07f, 0.05f, shell));
    prims.push_back(torus({0.3f, 0.62f, 0.35f}, 0.07f, 0.012f, chrome));
    prims.push_back(torus({0.7f, 0.62f, 0.35f}, 0.07f, 0.012f, chrome));
    return std::make_unique<Scene>("drums", std::move(prims));
}

/** "ficus": a thin trunk with a cloud of small leaf spheres; sparse. */
std::unique_ptr<Scene>
makeFicus()
{
    std::vector<Primitive> prims;
    const Vec3f leaf{0.15f, 0.55f, 0.2f};
    const Vec3f pot{0.5f, 0.25f, 0.15f};
    prims.push_back(cylinder({0.5f, 0.22f, 0.5f}, 0.08f, 0.07f, pot));
    prims.push_back(cylinder({0.5f, 0.45f, 0.5f}, 0.015f, 0.18f, {0.4f, 0.3f, 0.2f}));
    Pcg32 rng(42, 7);
    for (int i = 0; i < 14; ++i) {
        const Vec3f c{0.5f + 0.14f * (rng.nextFloat() - 0.5f) * 2.0f,
                      0.62f + 0.12f * (rng.nextFloat() - 0.5f) * 2.0f,
                      0.5f + 0.14f * (rng.nextFloat() - 0.5f) * 2.0f};
        prims.push_back(sphere(c, 0.035f, leaf));
    }
    return std::make_unique<Scene>("ficus", std::move(prims));
}

/** "hotdog": two long buns + sausage on a plate; medium fill. */
std::unique_ptr<Scene>
makeHotdog()
{
    std::vector<Primitive> prims;
    prims.push_back(box({0.2f, 0.3f, 0.2f}, {0.8f, 0.34f, 0.8f}, {0.9f, 0.9f, 0.92f}));
    prims.push_back(box({0.28f, 0.34f, 0.42f}, {0.72f, 0.43f, 0.5f}, {0.85f, 0.6f, 0.3f}));
    prims.push_back(box({0.28f, 0.34f, 0.52f}, {0.72f, 0.43f, 0.6f}, {0.85f, 0.6f, 0.3f}));
    prims.push_back(cylinder({0.5f, 0.45f, 0.51f}, 0.035f, 0.2f, {0.7f, 0.25f, 0.1f}));
    return std::make_unique<Scene>("hotdog", std::move(prims));
}

/** "lego": a stepped block model; medium-dense fill. */
std::unique_ptr<Scene>
makeLego()
{
    std::vector<Primitive> prims;
    const Vec3f yellow{0.85f, 0.7f, 0.1f};
    const Vec3f gray{0.45f, 0.45f, 0.5f};
    prims.push_back(box({0.25f, 0.2f, 0.3f}, {0.75f, 0.32f, 0.7f}, gray));
    prims.push_back(box({0.3f, 0.32f, 0.35f}, {0.7f, 0.45f, 0.65f}, yellow));
    prims.push_back(box({0.35f, 0.45f, 0.4f}, {0.65f, 0.58f, 0.6f}, gray));
    prims.push_back(box({0.42f, 0.58f, 0.44f}, {0.58f, 0.7f, 0.56f}, yellow));
    return std::make_unique<Scene>("lego", std::move(prims));
}

/** "materials": a grid of small shiny spheres; sparse-medium. */
std::unique_ptr<Scene>
makeMaterials()
{
    std::vector<Primitive> prims;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            const float fx = 0.28f + 0.15f * static_cast<float>(i);
            const float fz = 0.28f + 0.15f * static_cast<float>(j);
            const Vec3f color{0.2f + 0.2f * static_cast<float>(i),
                              0.3f + 0.15f * static_cast<float>(j), 0.6f};
            prims.push_back(sphere({fx, 0.35f, fz}, 0.05f, color));
        }
    }
    prims.push_back(box({0.2f, 0.26f, 0.2f}, {0.8f, 0.3f, 0.8f}, {0.2f, 0.2f, 0.22f}));
    return std::make_unique<Scene>("materials", std::move(prims));
}

/** "mic": a tiny head on a thin stand; the sparsest scene. */
std::unique_ptr<Scene>
makeMic()
{
    std::vector<Primitive> prims;
    prims.push_back(sphere({0.5f, 0.62f, 0.5f}, 0.055f, {0.75f, 0.75f, 0.8f}));
    prims.push_back(cylinder({0.5f, 0.42f, 0.5f}, 0.012f, 0.15f, {0.3f, 0.3f, 0.32f}));
    prims.push_back(cylinder({0.5f, 0.26f, 0.5f}, 0.06f, 0.015f, {0.25f, 0.25f, 0.28f}));
    return std::make_unique<Scene>("mic", std::move(prims));
}

/** "ship": a hull in a large water slab; the densest scene. */
std::unique_ptr<Scene>
makeShip()
{
    std::vector<Primitive> prims;
    const Vec3f water{0.1f, 0.3f, 0.45f};
    const Vec3f hull{0.45f, 0.3f, 0.2f};
    prims.push_back(box({0.08f, 0.2f, 0.08f}, {0.92f, 0.38f, 0.92f}, water, 250.0f));
    prims.push_back(box({0.3f, 0.36f, 0.42f}, {0.7f, 0.48f, 0.58f}, hull));
    prims.push_back(box({0.42f, 0.48f, 0.46f}, {0.58f, 0.56f, 0.54f}, hull));
    prims.push_back(cylinder({0.5f, 0.64f, 0.5f}, 0.012f, 0.1f, {0.35f, 0.25f, 0.15f}));
    return std::make_unique<Scene>("ship", std::move(prims));
}

/**
 * Large "360" scene helper: central content plus surrounding structure
 * (walls / ground / scattered props) giving the wider occupancy spread
 * of real-world unbounded captures.
 */
std::unique_ptr<Scene>
make360(const std::string &name, float clutter, float ground_h, std::uint64_t seed,
        const Vec3f &theme)
{
    std::vector<Primitive> prims;
    // Ground slab.
    prims.push_back(box({0.02f, 0.02f, 0.02f}, {0.98f, ground_h, 0.98f},
                        {0.35f, 0.3f, 0.25f}, 300.0f));
    // Central object cluster.
    prims.push_back(sphere({0.5f, ground_h + 0.12f, 0.5f}, 0.1f, theme));
    prims.push_back(cylinder({0.5f, ground_h + 0.05f, 0.5f}, 0.05f, 0.05f,
                             theme * 0.7f));
    // Scattered props proportional to the clutter factor.
    Pcg32 rng(seed, 13);
    const int props = static_cast<int>(clutter * 24.0f);
    for (int i = 0; i < props; ++i) {
        const Vec3f c{0.12f + 0.76f * rng.nextFloat(),
                      ground_h + 0.04f + 0.25f * rng.nextFloat(),
                      0.12f + 0.76f * rng.nextFloat()};
        const Vec3f color{0.3f + 0.6f * rng.nextFloat(), 0.3f + 0.6f * rng.nextFloat(),
                          0.3f + 0.6f * rng.nextFloat()};
        if (i % 3 == 0) {
            prims.push_back(sphere(c, 0.025f + 0.05f * rng.nextFloat(), color));
        } else if (i % 3 == 1) {
            const Vec3f h{0.03f + 0.05f * rng.nextFloat(),
                          0.03f + 0.07f * rng.nextFloat(),
                          0.03f + 0.05f * rng.nextFloat()};
            prims.push_back(box(c - h, c + h, color));
        } else {
            prims.push_back(cylinder(c, 0.02f + 0.03f * rng.nextFloat(),
                                     0.04f + 0.06f * rng.nextFloat(), color));
        }
    }
    return std::make_unique<Scene>(name, std::move(prims));
}

/** "tractor": the scene Fig. 8 visualizes expert specialization on —
 *  a body, cab, big wheels and an exhaust pipe spread across space so
 *  different experts dominate different regions. */
std::unique_ptr<Scene>
makeTractor()
{
    std::vector<Primitive> prims;
    const Vec3f red{0.75f, 0.15f, 0.1f};
    const Vec3f black{0.12f, 0.12f, 0.14f};
    const Vec3f glass{0.6f, 0.75f, 0.85f};
    prims.push_back(box({0.3f, 0.34f, 0.38f}, {0.72f, 0.5f, 0.62f}, red));   // body
    prims.push_back(box({0.52f, 0.5f, 0.4f}, {0.7f, 0.68f, 0.6f}, glass));   // cab
    prims.push_back(torus({0.34f, 0.3f, 0.36f}, 0.07f, 0.035f, black));      // wheels
    prims.push_back(torus({0.34f, 0.3f, 0.64f}, 0.07f, 0.035f, black));
    prims.push_back(torus({0.66f, 0.33f, 0.34f}, 0.1f, 0.045f, black));
    prims.push_back(torus({0.66f, 0.33f, 0.66f}, 0.1f, 0.045f, black));
    prims.push_back(cylinder({0.38f, 0.58f, 0.5f}, 0.02f, 0.09f, black));    // exhaust
    return std::make_unique<Scene>("tractor", std::move(prims));
}

} // namespace

const std::vector<std::string> &
syntheticSceneNames()
{
    static const std::vector<std::string> names{"chair", "drums", "ficus", "hotdog",
                                                "lego", "materials", "mic", "ship"};
    return names;
}

const std::vector<std::string> &
nerf360SceneNames()
{
    static const std::vector<std::string> names{"bicycle", "bonsai", "counter",
                                                "garden", "kitchen", "room", "stump"};
    return names;
}

std::unique_ptr<Scene>
makeSyntheticScene(const std::string &name)
{
    if (name == "chair")
        return makeChair();
    if (name == "drums")
        return makeDrums();
    if (name == "ficus")
        return makeFicus();
    if (name == "hotdog")
        return makeHotdog();
    if (name == "lego")
        return makeLego();
    if (name == "materials")
        return makeMaterials();
    if (name == "mic")
        return makeMic();
    if (name == "ship")
        return makeShip();
    if (name == "tractor")
        return makeTractor(); // Fig. 8's scene, beyond the canonical eight
    fatal("unknown synthetic scene '%s'", name.c_str());
}

std::unique_ptr<Scene>
makeNerf360Scene(const std::string &name)
{
    // Clutter/ground parameters chosen so the per-scene workload spread
    // (garden busiest, bicycle lightest central content) follows the
    // relative ordering of the paper's Table V.
    if (name == "bicycle")
        return make360(name, 0.25f, 0.08f, 101, {0.2f, 0.4f, 0.8f});
    if (name == "bonsai")
        return make360(name, 0.35f, 0.10f, 102, {0.2f, 0.6f, 0.25f});
    if (name == "counter")
        return make360(name, 0.55f, 0.14f, 103, {0.7f, 0.6f, 0.5f});
    if (name == "garden")
        return make360(name, 0.95f, 0.12f, 104, {0.3f, 0.65f, 0.3f});
    if (name == "kitchen")
        return make360(name, 0.6f, 0.12f, 105, {0.8f, 0.8f, 0.75f});
    if (name == "room")
        return make360(name, 0.45f, 0.10f, 106, {0.6f, 0.5f, 0.4f});
    if (name == "stump")
        return make360(name, 0.4f, 0.16f, 107, {0.5f, 0.35f, 0.2f});
    fatal("unknown NeRF-360 scene '%s'", name.c_str());
}

} // namespace fusion3d::scenes
