/**
 * @file
 * Binary model serialization. The paper's deployment story leans on the
 * small NeRF footprint (~10 MB) for transmission over the bandwidth-
 * constrained edge link; this is the writer/reader for that artifact.
 *
 * Format v2 (little-endian): magic "F3DM", u32 version, the
 * HashGridConfig and MLP dimensions, a CRC32 of the parameter payload,
 * then the three parameter blocks as raw float32. The CRC catches the
 * corruption truncation checks cannot (bit flips inside a full-length
 * payload), which matters once artifacts cross the paper's bandwidth-
 * constrained edge link.
 *
 * Checkpointing uses saveModelAtomic(): write to "<path>.tmp", fsync,
 * then rename over the destination — a crash mid-write (exercised by
 * the "trainer.ckpt.write" fault point) can orphan a temp file but can
 * never leave a partial artifact at the final path.
 */

#ifndef FUSION3D_NERF_SERIALIZE_H_
#define FUSION3D_NERF_SERIALIZE_H_

#include <memory>
#include <string>

#include "nerf/nerf_model.h"

namespace fusion3d::nerf
{

/** Serialize @p model to @p path. @return true on success. */
bool saveModel(const NerfModel &model, const std::string &path);

/**
 * Crash-safe save: write to "<path>.tmp", flush + fsync, then atomically
 * rename onto @p path. On any failure (including an injected crash via
 * the "trainer.ckpt.write" fault point) the destination is untouched:
 * it either keeps its previous complete artifact or stays absent.
 * @return true when @p path holds the new artifact.
 */
bool saveModelAtomic(const NerfModel &model, const std::string &path);

/** Why a load failed (LoadStatus::ok means it did not). */
enum class LoadStatus
{
    ok,
    /** The file could not be opened. */
    ioError,
    /** The magic bytes are not "F3DM". */
    badMagic,
    /** The format version is not one this build reads. */
    badVersion,
    /** The header is self-inconsistent (bad dimensions, or stored
     *  parameter counts that do not match the declared architecture). */
    headerMismatch,
    /** The file ends before the parameter blocks do. */
    truncated,
    /** The parameter payload does not match the header's CRC32. */
    badChecksum,
};

/** Human-readable name of @p status. */
const char *loadStatusName(LoadStatus status);

/** Outcome of loadModelVerbose(): a model, or a diagnosable failure. */
struct LoadResult
{
    std::unique_ptr<NerfModel> model;
    LoadStatus status = LoadStatus::ioError;
    /** One-line diagnosis, empty on success. */
    std::string message;

    explicit operator bool() const { return status == LoadStatus::ok; }
};

/**
 * Load a model saved by saveModel(), reporting *why* a failure
 * happened — I/O error, bad magic, unsupported version, inconsistent
 * header, or a truncated parameter payload.
 */
LoadResult loadModelVerbose(const std::string &path);

/**
 * Load a model saved by saveModel().
 * @return nullptr on any failure (the reason is logged via warn();
 *         use loadModelVerbose() to inspect it programmatically).
 */
std::unique_ptr<NerfModel> loadModel(const std::string &path);

/**
 * Copy all parameters of @p src into @p dst (encoding and both MLPs).
 * The serving ModelRegistry and the deployment example use this to
 * install deserialized weights into a live pipeline.
 * @return false (and copy nothing) if any parameter-block size differs.
 */
bool loadInto(NerfModel &dst, const NerfModel &src);

/** On-disk footprint of a model at the given parameter width. */
std::size_t modelFootprintBytes(const NerfModel &model, int bytes_per_param = 4);

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_SERIALIZE_H_
