#include "sim/sram.h"

#include <algorithm>

#include "common/logging.h"

namespace fusion3d::sim
{

Sram::Sram(const SramConfig &cfg, const std::string &name)
    : cfg_(cfg),
      stats_(name),
      group_accesses_(stats_.addCounter("group_accesses")),
      requests_(stats_.addCounter("requests")),
      conflicts_(stats_.addCounter("conflicts")),
      latency_(stats_.addDistribution("latency")),
      latency_hist_(stats_.addHistogram("latency_hist")),
      bank_load_(cfg.numBanks, 0),
      scratch_(cfg.numBanks, 0)
{
    if (cfg.numBanks == 0)
        fatal("Sram requires at least one bank");
}

Bytes
Sram::capacityBytes() const
{
    return static_cast<Bytes>(cfg_.numBanks) * cfg_.wordsPerBank * cfg_.bytesPerWord;
}

SramAccessResult
Sram::accessGroup(std::span<const std::uint32_t> banks)
{
    std::fill(scratch_.begin(), scratch_.end(), 0u);
    for (std::uint32_t b : banks) {
        if (b >= cfg_.numBanks)
            panic("Sram bank id %u out of range (%u banks)", b, cfg_.numBanks);
        ++scratch_[b];
        ++bank_load_[b];
    }
    std::uint32_t worst = 0;
    std::uint32_t extra = 0;
    for (std::uint32_t c : scratch_) {
        worst = std::max(worst, c);
        if (c > 1)
            extra += c - 1;
    }
    const Cycles cycles = std::max<std::uint32_t>(worst, 1);

    group_accesses_.inc();
    requests_.inc(banks.size());
    conflicts_.inc(extra);
    latency_.sample(static_cast<double>(cycles));
    latency_hist_.sample(cycles);
    return {cycles, extra};
}

void
Sram::resetStats()
{
    stats_.resetAll();
    std::fill(bank_load_.begin(), bank_load_.end(), 0);
}

} // namespace fusion3d::sim
