/**
 * @file
 * Regenerates Fig. 14(b): the chiplet-based system's I/O-module area
 * needed to hold off-package bandwidth at 0.6 GB/s as the model grows —
 * everything beyond the compute chips' resident tables must live in the
 * in-package buffer, and its SRAM area grows sharply with model size.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "multichip/chiplet.h"
#include "multichip/io_module.h"

using namespace fusion3d;

int
main()
{
    bench::banner("Fig. 14(b): chiplet I/O-module area vs model size @ 0.6 GB/s");

    const multichip::ChipletIoModel model;
    std::printf("Compute-chip resident tables: %.1f MB across 4 chips\n\n",
                model.onchipTableBytes / (1024.0 * 1024.0));
    std::printf("%-16s %16s %18s %8s %10s %8s\n", "model size (MB)", "buffer (MB)",
                "I/O module (mm^2)", "passes", "frame ms", "FPS");
    bench::rule(84);
    // Frame compute at full residency: the 4-chip system's ~7 ms frame.
    constexpr double kBaseFrameSeconds = 7.2e-3;
    for (double mb : {1.0, 2.0, 2.5, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0}) {
        const double bytes = mb * 1024.0 * 1024.0;
        const double buffer =
            bytes > model.onchipTableBytes ? bytes - model.onchipTableBytes : 0.0;
        multichip::ChipletConfig cc;
        cc.bufferBytes = buffer;
        const multichip::TemporalReuseResult run =
            multichip::chipletFrame(bytes, kBaseFrameSeconds, cc);
        std::printf("%-16.1f %16.2f %18.2f %8d %10.2f %8.1f%s\n", mb,
                    buffer / (1024.0 * 1024.0), model.areaMm2(bytes), run.passes,
                    run.seconds * 1e3, run.fps(),
                    run.offPackageBound ? "  (off-package bound)" : "");
    }
    bench::rule(84);
    std::printf("Paper: the I/O module area must increase significantly with model "
                "size (and frame rate falls with temporal reuse), motivating the "
                "area/communication/runtime balance as future work.\n");
    return 0;
}
