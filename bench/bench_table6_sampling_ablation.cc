/**
 * @file
 * Regenerates Table VI: the Stage-I speedup of Technique T1 (model
 * normalization & partitioning + dynamic workload scheduling) over a
 * naive sampling module, per synthetic scene (paper: 5.4x on ship to
 * 20.2x on mic).
 *
 * The naive module marches the full un-normalized scene volume for
 * every ray with the generic 18-division intersection and ray-serial
 * dispatch. The T1 module normalizes the content bounding box to the
 * unit cube (rays missing the content produce no work), partitions it
 * into octants, filters through the occupancy gate, and dispatches
 * dynamically. The spread across scenes tracks how small the content
 * box is relative to the scene — exactly the fill-factor dependence in
 * the paper's numbers.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "chip/sampling_module.h"
#include "nerf/camera.h"
#include "nerf/sampler.h"

using namespace fusion3d;

namespace
{

struct SceneResult
{
    std::string name;
    double fill = 0.0;
    double speedup = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    const int rays = argc > 1 ? std::atoi(argv[1]) : 3000;
    bench::banner("Table VI: sampling-module (Technique T1) ablation per scene");

    const chip::ChipConfig cfg = chip::ChipConfig::scaledUp();
    const chip::SamplingModule t1_module(cfg, chip::SamplingSchedule::Dynamic,
                                         /*normalized=*/true);
    // Naive module: generic (18-division) intersection against the
    // un-normalized scene box, no partitioning, no gating; one ray per
    // core (a fair multi-core baseline -- the generic intersection
    // unit is its bottleneck, as Sec. IV-A argues).
    const chip::SamplingModule naive_module(cfg, chip::SamplingSchedule::PairGreedy,
                                            /*normalized=*/false);

    std::printf("%-11s %10s %12s %12s %12s %10s\n", "Scene", "Fill %", "Naive cyc",
                "T1 cyc", "T1 util %", "Speedup");
    bench::rule(74);

    std::vector<SceneResult> results;
    for (const std::string &name : scenes::syntheticSceneNames()) {
        const auto scene = scenes::makeSyntheticScene(name);
        const Aabb content = bench::contentBox(*scene);

        // Occupancy gate expressed in the normalized content frame.
        nerf::OccupancyGrid gate(48);
        Pcg32 gate_rng(3, 3);
        gate.update(
            [&](const Vec3f &p) { return scene->density(content.denormalizePoint(p)); },
            gate_rng, 0.0f);

        // Stage-I traces for a full orbit camera.
        const nerf::Camera cam = nerf::Camera::orbit({0.5f, 0.45f, 0.5f}, 1.4f, 30.0f,
                                                     20.0f, 45.0f, 256, 256);
        nerf::SamplerConfig t1_cfg;
        t1_cfg.maxSamplesPerRay = 64;
        t1_cfg.normalized = true;
        t1_cfg.partition = true;
        nerf::SamplerConfig naive_cfg;
        naive_cfg.maxSamplesPerRay = 64;
        naive_cfg.normalized = false;
        naive_cfg.partition = false;
        const nerf::RaySampler t1_sampler(t1_cfg);
        const nerf::RaySampler naive_sampler(naive_cfg);

        Pcg32 rng(99, 1);
        std::vector<nerf::RaySample> scratch;
        std::vector<nerf::RayWorkload> t1_rays, naive_rays;
        t1_rays.reserve(static_cast<std::size_t>(rays));
        naive_rays.reserve(static_cast<std::size_t>(rays));
        const std::uint32_t pixels = 256 * 256;
        for (int i = 0; i < rays; ++i) {
            const std::uint32_t pick = rng.nextBounded(pixels);
            const Ray world = cam.rayForPixel(static_cast<int>(pick % 256),
                                              static_cast<int>(pick / 256));
            // T1: ray in the normalized content frame, occupancy-gated.
            // Rays that miss the (tight) content box produce no work.
            nerf::RayWorkload t1_wl;
            t1_sampler.sample(bench::normalizeRay(world, content), &gate, rng, scratch,
                              &t1_wl);
            t1_rays.push_back(std::move(t1_wl));

            // Naive: full scene volume, no gate, single pair.
            nerf::RayWorkload naive_wl;
            naive_sampler.sample(world, nullptr, rng, scratch, &naive_wl);
            naive_rays.push_back(std::move(naive_wl));
        }

        const chip::SamplingRunStats t1 = t1_module.run(t1_rays);
        const chip::SamplingRunStats naive = naive_module.run(naive_rays);

        SceneResult r;
        r.name = name;
        r.fill = scene->occupiedFraction() * 100.0;
        r.speedup = static_cast<double>(naive.totalCycles) /
                    static_cast<double>(std::max<Cycles>(t1.totalCycles, 1));
        results.push_back(r);

        std::printf("%-11s %10.1f %12llu %12llu %12.1f %9.1fx\n", name.c_str(), r.fill,
                    static_cast<unsigned long long>(naive.totalCycles),
                    static_cast<unsigned long long>(t1.totalCycles),
                    t1.utilization(cfg.samplingCores) * 100.0, r.speedup);
        std::fflush(stdout);
    }
    bench::rule(74);
    std::printf("Paper: ship 5.4x | mic 20.2x | materials 10.6x | lego 7.8x | "
                "hotdog 7.3x | ficus 18.8x | drums 14.4x | chair 9.0x\n");
    std::printf("Reproduced shape: sparse scenes (mic, ficus) gain the most; dense "
                "scenes (ship) the least.\n");
    return 0;
}
