/**
 * @file
 * Regenerates Fig. 13:
 *  (a) test PSNR vs training iterations for the MoE model (2 and 4
 *      experts with 2^14-entry tables) against the single large model
 *      (2^16 tables) on the Room scene — the MoE matches the large
 *      model's convergence;
 *  (b) the off-chip bandwidth needed for 2-second training across
 *      model sizes, end-to-end vs the Stage-II+III (SOTA trainer)
 *      boundary, including the 76% saving at the Instant-3D size.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "chip/perf_model.h"
#include "nerf/moe.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"

using namespace fusion3d;

namespace
{

nerf::PipelineConfig
pipelineWithTable(int log2_table)
{
    nerf::PipelineConfig pc = bench::defaultPipeline();
    pc.model.grid.log2TableSize = log2_table;
    pc.sampler.maxSamplesPerRay = 32;
    return pc;
}

std::vector<std::pair<int, double>>
trainCurve(nerf::RadianceField &field, const nerf::Dataset &data, int iterations)
{
    nerf::TrainerConfig tc;
    tc.iterations = iterations;
    tc.raysPerBatch = 128;
    tc.evalEvery = std::max(iterations / 6, 1);
    tc.occupancyWarmup = 96;
    tc.occupancyUpdateEvery = 48;
    nerf::Trainer trainer(field, data, tc);
    return trainer.run().history;
}

} // namespace

int
main(int argc, char **argv)
{
    const int iterations = argc > 1 ? std::atoi(argv[1]) : 360;

    bench::banner("Fig. 13(a): MoE vs single large model, PSNR vs iterations (room)");
    const auto scene = scenes::makeNerf360Scene("room");
    scenes::DatasetConfig dc = scenes::nerf360Rig(32);
    dc.trainViews = 10;
    dc.testViews = 2;
    dc.reference.steps = 96;
    const nerf::Dataset data = scenes::makeDataset(*scene, dc);

    // Single large model: 2^16 tables.
    nerf::NerfPipeline large(pipelineWithTable(16));
    std::printf("training single large model (2^16 tables, %zu params) ...\n",
                large.paramCount());
    const auto large_curve = trainCurve(large, data, iterations);

    // MoE with 2 and 4 experts, 2^14 tables each (paper's setup).
    std::vector<std::pair<int, std::vector<std::pair<int, double>>>> moe_curves;
    for (int experts : {2, 4}) {
        nerf::MoeConfig mc;
        mc.numExperts = experts;
        mc.expert = pipelineWithTable(14);
        nerf::MoeNerf moe(mc);
        std::printf("training MoE with %d experts (2^14 tables each, %zu params) ...\n",
                    experts, moe.paramCount());
        moe_curves.emplace_back(experts, trainCurve(moe, data, iterations));
    }

    std::printf("\n%10s %14s %14s %14s\n", "iteration", "large 2^16", "MoE-2 x2^14",
                "MoE-4 x2^14");
    bench::rule(56);
    for (std::size_t i = 0; i < large_curve.size(); ++i) {
        std::printf("%10d %14.2f", large_curve[i].first, large_curve[i].second);
        for (const auto &[experts, curve] : moe_curves) {
            if (i < curve.size())
                std::printf(" %14.2f", curve[i].second);
        }
        std::printf("\n");
    }
    bench::rule(56);
    const double large_final = large_curve.back().second;
    const double moe4_final = moe_curves.back().second.back().second;
    std::printf("Final: large %.2f dB vs 4-expert MoE %.2f dB (delta %+.2f dB).\n",
                large_final, moe4_final, moe4_final - large_final);
    std::printf("Paper: the 4-expert MoE matches the large model's convergence, and "
                "PSNR improves with more experts.\n\n");

    bench::banner("Fig. 13(b): bandwidth for 2 s training vs model size");
    chip::BandwidthModel bm;
    std::printf("%-14s %12s %18s %18s\n", "hash tables", "size (KB)", "end-to-end GB/s",
                "stage-II/III GB/s");
    bench::rule(66);
    for (int log2_t : {12, 13, 14, 15, 16, 17, 18, 19}) {
        const double bytes = static_cast<double>(1ull << log2_t) * 16.0 * 2.0 * 2.0;
        std::printf("16 x 2^%-6d %12.0f %18.2f %18.1f\n", log2_t, bytes / 1024.0,
                    bm.requiredBandwidthGBs(chip::CoverageBoundary::EndToEnd, bytes),
                    bm.requiredBandwidthGBs(chip::CoverageBoundary::Stage23, bytes));
    }
    bench::rule(66);
    const double i3d_table = (65536.0 + 262144.0) * 2.0 * 2.0;
    const double ours = bm.requiredBandwidthGBs(chip::CoverageBoundary::EndToEnd,
                                                i3d_table);
    const double sota = bm.requiredBandwidthGBs(chip::CoverageBoundary::Stage23,
                                                i3d_table);
    std::printf("At the Instant-3D model size (2^16 + 2^18): ours %.1f vs SOTA "
                "boundary %.1f GB/s -> %.0f%% reduction from the end-to-end pipeline "
                "(paper: 76%%, 44 GB/s).\n",
                ours, sota, (1.0 - ours / sota) * 100.0);
    std::printf("With all tables in the 2x5x64 KB on-chip SRAM: %.2f GB/s (paper: "
                "0.6 GB/s).\n",
                bm.requiredBandwidthGBs(chip::CoverageBoundary::EndToEnd,
                                        640.0 * 1024.0));
    return 0;
}
