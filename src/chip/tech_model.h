/**
 * @file
 * 28 nm technology model calibrated against the published silicon
 * measurements: 600 MHz at 0.95 V, 1.21 W prototype / 1.5 W scaled-up
 * typical power, 8.7 mm^2 scaled-up die, the module-level area/power
 * breakdown of Fig. 9(c)/10(c) and the voltage-frequency curve of
 * Fig. 10(d). Everything downstream (energy/point, throughput/W,
 * Tables III-V) derives from this model.
 */

#ifndef FUSION3D_CHIP_TECH_MODEL_H_
#define FUSION3D_CHIP_TECH_MODEL_H_

#include <string>
#include <vector>

#include "chip/config.h"

namespace fusion3d::chip
{

/** One module's share of die area and power. */
struct ModuleShare
{
    std::string name;
    double areaFraction = 0.0;
    double powerFraction = 0.0;
};

/** The calibrated technology/physical model. */
class TechModel
{
  public:
    explicit TechModel(const ChipConfig &cfg);

    const ChipConfig &config() const { return cfg_; }

    /**
     * Achievable clock frequency at supply @p voltage, alpha-power-law
     * fit (alpha = 2) through the measured 600 MHz @ 0.95 V point.
     */
    double frequencyAtVoltage(double voltage) const;

    /** Inverse of frequencyAtVoltage (lowest voltage reaching @p hz). */
    double voltageForFrequency(double hz) const;

    /**
     * Total power at operating point (@p voltage, @p hz): dynamic
     * CV^2f scaling plus leakage ~ V, anchored at the typical power of
     * the configuration's nominal point.
     */
    double powerAt(double voltage, double hz) const;

    /** Power at the nominal operating point. */
    double nominalPower() const { return cfg_.typicalPowerW; }

    /** Module-level area/power breakdown (Fig. 9(c)/10(c)). */
    const std::vector<ModuleShare> &breakdown() const { return breakdown_; }

    /** Area of module @p name in mm^2. */
    double moduleAreaMm2(const std::string &name) const;

    /** Power of module @p name at nominal operation, in W. */
    double modulePowerW(const std::string &name) const;

    /** Energy for @p cycles of execution at nominal operation, joules. */
    double
    energyJ(double cycles) const
    {
        return cfg_.typicalPowerW * cycles / cfg_.clockHz;
    }

  private:
    ChipConfig cfg_;
    std::vector<ModuleShare> breakdown_;
    double vth_ = 0.53;   // fitted threshold voltage
    double kfit_ = 0.0;   // alpha-power constant
};

} // namespace fusion3d::chip

#endif // FUSION3D_CHIP_TECH_MODEL_H_
