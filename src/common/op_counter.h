/**
 * @file
 * Arithmetic operation tally used to reproduce the paper's op-count
 * arguments (Fig. 5(a): generic ray/box intersection costs 18 DIV +
 * 54 MUL + 54 ADD, the normalized fast path costs 3 MUL + 3 MAC).
 */

#ifndef FUSION3D_COMMON_OP_COUNTER_H_
#define FUSION3D_COMMON_OP_COUNTER_H_

#include <cstdint>
#include <string>

namespace fusion3d
{

/**
 * Tally of scalar arithmetic operations. The hardware-cost model weights
 * these per-op to estimate datapath energy; the ablation benches report
 * them raw.
 */
struct OpCounter
{
    std::uint64_t divs = 0;
    std::uint64_t muls = 0;
    std::uint64_t adds = 0;
    /** Fused multiply-accumulate, counted as one op as in the paper. */
    std::uint64_t macs = 0;
    std::uint64_t cmps = 0;

    constexpr OpCounter &
    operator+=(const OpCounter &o)
    {
        divs += o.divs;
        muls += o.muls;
        adds += o.adds;
        macs += o.macs;
        cmps += o.cmps;
        return *this;
    }

    constexpr OpCounter
    operator+(const OpCounter &o) const
    {
        OpCounter r = *this;
        r += o;
        return r;
    }

    constexpr bool operator==(const OpCounter &o) const = default;

    constexpr void
    reset()
    {
        *this = OpCounter{};
    }

    /** Total op count, all kinds weighted equally. */
    constexpr std::uint64_t total() const { return divs + muls + adds + macs + cmps; }

    /**
     * Latency-weighted cost in equivalent adder delays. Division is far
     * more expensive than multiply/add on a fixed-function datapath;
     * the weights follow standard unit-gate estimates (radix-4 SRT
     * divider ~ 12x an adder, array multiplier ~ 3x, MAC ~ 4x).
     */
    constexpr std::uint64_t
    weightedCost() const
    {
        return divs * 12 + muls * 3 + adds * 1 + macs * 4 + cmps * 1;
    }

    std::string toString() const;
};

} // namespace fusion3d

#endif // FUSION3D_COMMON_OP_COUNTER_H_
