/** @file Equivalence tests of the batched SoA evaluation core against
 *  the scalar reference oracle (forwardPoint/backwardPoint) for all
 *  three backends (hash-grid, FreqNeRF, TensoRF), plus the
 *  nerf.batch.* metrics and the compositeBackward scratch overload. */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nerf/freq_nerf.h"
#include "nerf/nerf_model.h"
#include "nerf/renderer.h"
#include "nerf/tensorf.h"
#include "obs/metrics.h"

namespace fusion3d::nerf
{
namespace
{

NerfModelConfig
tinyModel()
{
    NerfModelConfig mc;
    mc.grid.levels = 6;
    mc.grid.featuresPerLevel = 2;
    mc.grid.log2TableSize = 12;
    mc.grid.baseResolution = 8;
    mc.grid.maxResolution = 64;
    mc.geoFeatures = 7;
    mc.densityHidden = 16;
    mc.colorHidden = 16;
    mc.shDegree = 2;
    return mc;
}

void
randomBatch(std::size_t n, std::uint64_t seed, std::vector<Vec3f> &pos,
            std::vector<Vec3f> &dirs)
{
    Pcg32 rng(seed);
    pos.resize(n);
    dirs.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
        pos[j] = clamp(rng.nextVec3(), 0.01f, 0.99f);
        dirs[j] = rng.nextUnitVector();
    }
}

/**
 * forwardBatch is bit-exact with forwardPoint: same encoding gather
 * order, same MLP accumulation order, same activations — only the
 * loop nest differs. n = 70 crosses the MLP's 64-sample block.
 */
TEST(BatchEval, ForwardBatchMatchesForwardPointBitExact)
{
    NerfModel model(tinyModel(), 101);
    PointWorkspace pws = model.makeWorkspace();
    NerfBatchWorkspace bws = model.makeBatchWorkspace();

    const std::size_t n = 70;
    std::vector<Vec3f> pos, dirs;
    randomBatch(n, 102, pos, dirs);

    std::vector<float> sigmas(n);
    std::vector<Vec3f> rgbs(n);
    model.forwardBatch(pos, dirs, bws, sigmas, rgbs);

    for (std::size_t j = 0; j < n; ++j) {
        const PointEval ref = model.forwardPoint(pos[j], dirs[j], pws);
        EXPECT_EQ(sigmas[j], ref.sigma) << "sample " << j;
        EXPECT_EQ(rgbs[j], ref.rgb) << "sample " << j;
    }
}

/**
 * backwardBatch accumulates the same parameter gradients as per-point
 * backwardPoint; tolerance covers the cross-sample reassociation of
 * the batch reduction (within a sample the order is identical).
 */
TEST(BatchEval, BackwardBatchMatchesBackwardPoint)
{
    NerfModel batched(tinyModel(), 111);
    NerfModel scalar(tinyModel(), 111); // same seed -> identical params

    const std::size_t n = 23;
    std::vector<Vec3f> pos, dirs;
    randomBatch(n, 112, pos, dirs);

    Pcg32 rng(113);
    std::vector<float> dsigmas(n);
    std::vector<Vec3f> drgbs(n);
    for (std::size_t j = 0; j < n; ++j) {
        dsigmas[j] = rng.nextRange(-1.0f, 1.0f);
        drgbs[j] = {rng.nextRange(-1.0f, 1.0f), rng.nextRange(-1.0f, 1.0f),
                    rng.nextRange(-1.0f, 1.0f)};
    }

    PointWorkspace pws = scalar.makeWorkspace();
    scalar.zeroGrads();
    for (std::size_t j = 0; j < n; ++j)
        scalar.backwardPoint(pos[j], dirs[j], dsigmas[j], drgbs[j], pws);

    NerfBatchWorkspace bws = batched.makeBatchWorkspace();
    batched.zeroGrads();
    batched.backwardBatch(pos, dirs, dsigmas, drgbs, bws);

    const auto check = [](std::span<float> got, std::span<float> want,
                          const char *what) {
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            ASSERT_NEAR(got[i], want[i], 1e-5f + 1e-4f * std::fabs(want[i]))
                << what << " grad " << i;
    };
    check(batched.densityNet().grads(), scalar.densityNet().grads(), "density");
    check(batched.colorNet().grads(), scalar.colorNet().grads(), "color");
    check(batched.encoding().grads(), scalar.encoding().grads(), "encoding");
}

/**
 * Central-difference gradient check of backwardBatch through the whole
 * model: L = sum_j dsigma_j * sigma_j + dot(drgb_j, rgb_j).
 */
TEST(BatchEval, BackwardBatchMatchesFiniteDifference)
{
    NerfModel model(tinyModel(), 121);
    NerfBatchWorkspace bws = model.makeBatchWorkspace();

    const std::size_t n = 9;
    std::vector<Vec3f> pos, dirs;
    randomBatch(n, 122, pos, dirs);

    Pcg32 rng(123);
    std::vector<float> dsigmas(n);
    std::vector<Vec3f> drgbs(n);
    for (std::size_t j = 0; j < n; ++j) {
        // Keep the sigma term small: sigma = exp(raw) amplifies eps.
        dsigmas[j] = rng.nextRange(-0.1f, 0.1f);
        drgbs[j] = {rng.nextRange(-1.0f, 1.0f), rng.nextRange(-1.0f, 1.0f),
                    rng.nextRange(-1.0f, 1.0f)};
    }

    std::vector<float> sigmas(n);
    std::vector<Vec3f> rgbs(n);
    const auto loss = [&]() {
        model.forwardBatch(pos, dirs, bws, sigmas, rgbs);
        double acc = 0.0;
        for (std::size_t j = 0; j < n; ++j)
            acc += static_cast<double>(dsigmas[j]) * sigmas[j] +
                   static_cast<double>(dot(drgbs[j], rgbs[j]));
        return acc;
    };

    model.zeroGrads();
    model.backwardBatch(pos, dirs, dsigmas, drgbs, bws);

    // Sample parameters from both MLPs (the encoding's FD coverage
    // lives in test_hash_encoding's BackwardMatchesFiniteDifference).
    const auto fd_check = [&](Mlp &net, const char *what) {
        int checked = 0;
        for (std::size_t i = 0; i < net.paramCount(); i += 11) {
            const float g = net.grads()[i];
            const float eps = 1e-3f;
            const float orig = net.params()[i];
            net.params()[i] = orig + eps;
            const double lp = loss();
            net.params()[i] = orig - eps;
            const double lm = loss();
            net.params()[i] = orig;
            const double fd = (lp - lm) / (2.0 * eps);
            EXPECT_NEAR(g, fd, 5e-2 + 1e-2 * std::fabs(fd)) << what << " param " << i;
            ++checked;
        }
        EXPECT_GT(checked, 10) << what;
    };
    fd_check(model.densityNet(), "density");
    fd_check(model.colorNet(), "color");
}

/** The nerf.batch.samples counter advances by the batch size. */
TEST(BatchEval, SamplesMetricCountsBatchedWork)
{
    NerfModel model(tinyModel(), 131);
    NerfBatchWorkspace bws = model.makeBatchWorkspace();

    const std::size_t n = 25;
    std::vector<Vec3f> pos, dirs;
    randomBatch(n, 132, pos, dirs);
    std::vector<float> sigmas(n);
    std::vector<Vec3f> rgbs(n);

    const auto read = [](const char *name) {
        for (const obs::MetricSample &s : obs::MetricsRegistry::global().snapshot())
            if (s.name == name)
                return s.value;
        return -1.0;
    };

    // First call registers the collector; read, run again, re-read.
    model.forwardBatch(pos, dirs, bws, sigmas, rgbs);
    const double before = read("nerf.batch.samples");
    ASSERT_GE(before, static_cast<double>(n));
    model.forwardBatch(pos, dirs, bws, sigmas, rgbs);
    EXPECT_EQ(read("nerf.batch.samples"), before + static_cast<double>(n));
}

// ---------------------------------------------------------------------------
// Point-model backends (FreqNeRF, TensoRF): the same batched-vs-scalar
// contract through the forwardPointBatch/backwardPointBatch kernels.
// ---------------------------------------------------------------------------

FreqNerfConfig
tinyFreqConfig()
{
    FreqNerfConfig cfg;
    cfg.posFrequencies = 4;
    cfg.hidden = 24;
    cfg.trunkLayers = 2;
    cfg.geoFeatures = 7;
    cfg.colorHidden = 16;
    return cfg;
}

TensorfModelConfig
tinyTensorfConfig()
{
    TensorfModelConfig cfg;
    cfg.densityRank = 6;
    cfg.appearanceRank = 8;
    cfg.lineResolution = 48;
    cfg.appearanceDim = 8;
    cfg.colorHidden = 16;
    return cfg;
}

/** Batched forward + density query are bit-exact with the scalar
 *  oracles per sample. n = 70 crosses the 64-sample factor/MLP block
 *  boundary, so both the blocked and the tail path are covered. */
template <class ModelT>
void
expectPointBatchBitExact(ModelT &model, std::uint64_t seed)
{
    const std::size_t n = 70;
    std::vector<Vec3f> pos, dirs;
    randomBatch(n, seed, pos, dirs);

    typename ModelT::BatchWorkspace ws = model.makeBatchWorkspace();
    std::vector<float> sigmas(n), densities(n);
    std::vector<Vec3f> rgbs(n);
    model.forwardPointBatch(pos, dirs, ws, sigmas, rgbs);
    model.queryDensityBatch(pos, ws, densities);

    for (std::size_t j = 0; j < n; ++j) {
        const PointEval ref = model.forwardPoint(pos[j], dirs[j]);
        EXPECT_EQ(sigmas[j], ref.sigma) << "sample " << j;
        EXPECT_EQ(rgbs[j], ref.rgb) << "sample " << j;
        EXPECT_EQ(densities[j], model.queryDensity(pos[j])) << "sample " << j;
    }
}

TEST(BatchEval, FreqForwardBatchMatchesForwardPointBitExact)
{
    FreqNerfModel model(tinyFreqConfig(), 201);
    expectPointBatchBitExact(model, 202);
}

TEST(BatchEval, TensorfForwardBatchMatchesForwardPointBitExact)
{
    TensorfModel model(tinyTensorfConfig(), 211);
    expectPointBatchBitExact(model, 212);
}

void
randomAdjoints(std::size_t n, std::uint64_t seed, std::vector<float> &dsigmas,
               std::vector<Vec3f> &drgbs, float sigma_scale = 1.0f)
{
    Pcg32 rng(seed);
    dsigmas.resize(n);
    drgbs.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
        dsigmas[j] = rng.nextRange(-sigma_scale, sigma_scale);
        drgbs[j] = {rng.nextRange(-1.0f, 1.0f), rng.nextRange(-1.0f, 1.0f),
                    rng.nextRange(-1.0f, 1.0f)};
    }
}

void
expectGradsClose(std::span<const float> got, std::span<const float> want,
                 const char *what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_NEAR(got[i], want[i], 1e-5f + 1e-4f * std::fabs(want[i]))
            << what << " grad " << i;
}

/** backwardPointBatch accumulates the same gradients as the per-point
 *  backwardPoint loop (tolerance covers cross-sample reassociation of
 *  the basis/net reductions; within a sample the order is identical). */
TEST(BatchEval, FreqBackwardBatchMatchesBackwardPoint)
{
    FreqNerfModel batched(tinyFreqConfig(), 221);
    FreqNerfModel scalar(tinyFreqConfig(), 221); // same seed

    const std::size_t n = 23;
    std::vector<Vec3f> pos, dirs;
    randomBatch(n, 222, pos, dirs);
    std::vector<float> dsigmas;
    std::vector<Vec3f> drgbs;
    randomAdjoints(n, 223, dsigmas, drgbs);

    scalar.zeroGrads();
    for (std::size_t j = 0; j < n; ++j)
        scalar.backwardPoint(pos[j], dirs[j], dsigmas[j], drgbs[j]);

    typename FreqNerfModel::BatchWorkspace ws = batched.makeBatchWorkspace();
    batched.zeroGrads();
    batched.backwardPointBatch(pos, dirs, dsigmas, drgbs, ws);

    expectGradsClose(batched.trunk().grads(), scalar.trunk().grads(), "trunk");
    expectGradsClose(batched.colorNet().grads(), scalar.colorNet().grads(),
                     "color");
}

TEST(BatchEval, TensorfBackwardBatchMatchesBackwardPoint)
{
    TensorfModel batched(tinyTensorfConfig(), 231);
    TensorfModel scalar(tinyTensorfConfig(), 231); // same seed

    const std::size_t n = 23;
    std::vector<Vec3f> pos, dirs;
    randomBatch(n, 232, pos, dirs);
    std::vector<float> dsigmas;
    std::vector<Vec3f> drgbs;
    randomAdjoints(n, 233, dsigmas, drgbs);

    scalar.zeroGrads();
    for (std::size_t j = 0; j < n; ++j)
        scalar.backwardPoint(pos[j], dirs[j], dsigmas[j], drgbs[j]);

    typename TensorfModel::BatchWorkspace ws = batched.makeBatchWorkspace();
    batched.zeroGrads();
    batched.backwardPointBatch(pos, dirs, dsigmas, drgbs, ws);

    expectGradsClose(batched.factorGrads(), scalar.factorGrads(), "factor");
    expectGradsClose(batched.colorNet().grads(), scalar.colorNet().grads(),
                     "color");
}

/** Central-difference gradient check of the batched backward through
 *  the whole model: L = sum_j dsigma_j * sigma_j + dot(drgb_j, rgb_j). */
template <class ModelT>
double
batchLoss(ModelT &model, typename ModelT::BatchWorkspace &ws,
          const std::vector<Vec3f> &pos, const std::vector<Vec3f> &dirs,
          const std::vector<float> &dsigmas, const std::vector<Vec3f> &drgbs)
{
    const std::size_t n = pos.size();
    std::vector<float> sigmas(n);
    std::vector<Vec3f> rgbs(n);
    model.forwardPointBatch(pos, dirs, ws, sigmas, rgbs);
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j)
        acc += static_cast<double>(dsigmas[j]) * sigmas[j] +
               static_cast<double>(dot(drgbs[j], rgbs[j]));
    return acc;
}

TEST(BatchEval, FreqBackwardBatchMatchesFiniteDifference)
{
    FreqNerfModel model(tinyFreqConfig(), 241);
    typename FreqNerfModel::BatchWorkspace ws = model.makeBatchWorkspace();

    const std::size_t n = 9;
    std::vector<Vec3f> pos, dirs;
    randomBatch(n, 242, pos, dirs);
    std::vector<float> dsigmas;
    std::vector<Vec3f> drgbs;
    // Keep the sigma term small: the density activation amplifies eps.
    randomAdjoints(n, 243, dsigmas, drgbs, /*sigma_scale=*/0.1f);

    model.zeroGrads();
    model.backwardPointBatch(pos, dirs, dsigmas, drgbs, ws);

    const auto fd_check = [&](Mlp &net, const char *what) {
        int checked = 0;
        for (std::size_t i = 0; i < net.paramCount(); i += 11) {
            const float g = net.grads()[i];
            const float eps = 1e-3f;
            const float orig = net.params()[i];
            net.params()[i] = orig + eps;
            const double lp = batchLoss(model, ws, pos, dirs, dsigmas, drgbs);
            net.params()[i] = orig - eps;
            const double lm = batchLoss(model, ws, pos, dirs, dsigmas, drgbs);
            net.params()[i] = orig;
            const double fd = (lp - lm) / (2.0 * eps);
            EXPECT_NEAR(g, fd, 5e-2 + 1e-2 * std::fabs(fd))
                << what << " param " << i;
            ++checked;
        }
        EXPECT_GT(checked, 10) << what;
    };
    fd_check(model.trunk(), "trunk");
    fd_check(model.colorNet(), "color");
}

TEST(BatchEval, TensorfBackwardBatchMatchesFiniteDifference)
{
    TensorfModel model(tinyTensorfConfig(), 251);
    typename TensorfModel::BatchWorkspace ws = model.makeBatchWorkspace();

    const std::size_t n = 9;
    std::vector<Vec3f> pos, dirs;
    randomBatch(n, 252, pos, dirs);
    std::vector<float> dsigmas;
    std::vector<Vec3f> drgbs;
    randomAdjoints(n, 253, dsigmas, drgbs, /*sigma_scale=*/0.1f);

    model.zeroGrads();
    model.backwardPointBatch(pos, dirs, dsigmas, drgbs, ws);

    int checked = 0;
    for (std::size_t i = 0; i < model.factorParams().size(); i += 11) {
        const float g = model.factorGrads()[i];
        if (g == 0.0f)
            continue; // untouched line support
        const float eps = 1e-3f;
        const float orig = model.factorParams()[i];
        model.factorParams()[i] = orig + eps;
        const double lp = batchLoss(model, ws, pos, dirs, dsigmas, drgbs);
        model.factorParams()[i] = orig - eps;
        const double lm = batchLoss(model, ws, pos, dirs, dsigmas, drgbs);
        model.factorParams()[i] = orig;
        const double fd = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(g, fd, 5e-2 + 1e-2 * std::fabs(fd)) << "factor param " << i;
        ++checked;
    }
    EXPECT_GT(checked, 5);
}

/** The scratch overload of compositeBackward matches the legacy
 *  allocating overload exactly, including scratch reuse across rays
 *  of different lengths. */
TEST(BatchEval, CompositeBackwardScratchMatchesLegacy)
{
    Pcg32 rng(141);
    RenderParams params;
    CompositeBackwardScratch scratch;

    for (const std::size_t n : {std::size_t{16}, std::size_t{5}, std::size_t{32}}) {
        std::vector<float> sigmas(n), dts(n);
        std::vector<Vec3f> rgbs(n);
        for (std::size_t i = 0; i < n; ++i) {
            sigmas[i] = rng.nextRange(0.0f, 8.0f);
            dts[i] = rng.nextRange(0.01f, 0.05f);
            rgbs[i] = rng.nextVec3();
        }
        const CompositeResult fwd = composite(sigmas, rgbs, dts, params);
        const Vec3f dcolor{0.4f, -0.2f, 0.7f};

        std::vector<float> ds_a(n), ds_b(n);
        std::vector<Vec3f> dr_a(n), dr_b(n);
        compositeBackward(sigmas, rgbs, dts, params, fwd, dcolor, ds_a, dr_a);
        compositeBackward(sigmas, rgbs, dts, params, fwd, dcolor, ds_b, dr_b,
                          scratch);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(ds_a[i], ds_b[i]) << "n " << n << " sample " << i;
            EXPECT_EQ(dr_a[i], dr_b[i]) << "n " << n << " sample " << i;
        }
    }
}

} // namespace
} // namespace fusion3d::nerf
