#include "nerf/field.h"

#include "nerf/nerf_model.h"

namespace fusion3d::nerf
{

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
    case BackendKind::hashGrid:
        return "hash_grid";
    case BackendKind::freqNerf:
        return "freq_nerf";
    case BackendKind::tensorf:
        return "tensorf";
    }
    return "unknown";
}

HashGridServeField::HashGridServeField(std::unique_ptr<NerfModel> model)
    : owned_(std::move(model))
{
}

HashGridServeField::HashGridServeField(const NerfModel &model) : borrowed_(&model) {}

HashGridServeField::~HashGridServeField() = default;

std::size_t
HashGridServeField::paramCount() const
{
    return model().paramCount();
}

void
HashGridServeField::evalBatch(std::span<const Vec3f> positions,
                              std::span<const Vec3f> dirs, std::span<float> sigmas,
                              std::span<Vec3f> rgbs) const
{
    NerfBatchWorkspace ws = model().makeBatchWorkspace();
    model().forwardBatch(positions, dirs, ws, sigmas, rgbs);
}

void
HashGridServeField::evalDensityBatch(std::span<const Vec3f> positions,
                                     std::span<float> sigmas) const
{
    NerfBatchWorkspace ws = model().makeBatchWorkspace();
    model().queryDensityBatch(positions, ws, sigmas);
}

std::size_t
HashGridServeField::residentBytes() const
{
    return model().residentParamBytes();
}

QuantMode
HashGridServeField::quantMode() const
{
    return model().inferenceQuantMode();
}

bool
HashGridServeField::applyQuantMode(QuantMode mode)
{
    // A borrowed model can't be mutated; once the fp32 masters are
    // dropped the mode is pinned. Both cases succeed only as no-ops.
    if (owned_ == nullptr || !owned_->encoding().hasFp32Weights())
        return model().inferenceQuantMode() == mode;
    owned_->setInferenceQuant(mode);
    return true;
}

} // namespace fusion3d::nerf
