/** @file Tests of the frequency-encoded (vanilla/MetaVRain-style) NeRF. */

#include <cmath>

#include <gtest/gtest.h>

#include "nerf/freq_nerf.h"
#include "nerf/trainer.h"
#include "scenes/dataset_gen.h"
#include "scenes/factory.h"

namespace fusion3d::nerf
{
namespace
{

TEST(FreqEncode, DimsAndIdentityPrefix)
{
    FreqNerfConfig cfg;
    cfg.posFrequencies = 4;
    std::vector<float> out(static_cast<std::size_t>(cfg.posDims()));
    const Vec3f p{0.25f, 0.5f, 0.75f};
    freqEncode(p, cfg.posFrequencies, out);
    EXPECT_EQ(cfg.posDims(), 3 + 3 * 2 * 4);
    EXPECT_FLOAT_EQ(out[0], 0.25f);
    EXPECT_FLOAT_EQ(out[1], 0.5f);
    EXPECT_FLOAT_EQ(out[2], 0.75f);
}

TEST(FreqEncode, SinCosPairsAreConsistent)
{
    std::vector<float> out(3 + 3 * 2 * 6);
    const Vec3f p{0.37f, 0.61f, 0.12f};
    freqEncode(p, 6, out);
    // Every (sin, cos) pair satisfies sin^2 + cos^2 = 1.
    for (std::size_t i = 3; i + 1 < out.size(); i += 2) {
        EXPECT_NEAR(out[i] * out[i] + out[i + 1] * out[i + 1], 1.0f, 1e-5f);
    }
    // Octave 0 of axis x is sin(pi x), cos(pi x).
    EXPECT_NEAR(out[3], std::sin(3.14159265f * 0.37f), 1e-5f);
    EXPECT_NEAR(out[4], std::cos(3.14159265f * 0.37f), 1e-5f);
}

TEST(FreqEncode, HighOctavesDistinguishNearbyPoints)
{
    std::vector<float> a(3 + 3 * 2 * 8), b(3 + 3 * 2 * 8);
    freqEncode({0.500f, 0.5f, 0.5f}, 8, a);
    freqEncode({0.505f, 0.5f, 0.5f}, 8, b);
    // The identity prefix barely moves but the top octave swings.
    EXPECT_NEAR(a[0], b[0], 0.01f);
    float top_delta = 0.0f;
    for (std::size_t i = a.size() - 6; i < a.size(); ++i)
        top_delta = std::max(top_delta, std::fabs(a[i] - b[i]));
    EXPECT_GT(top_delta, 0.5f);
}

FreqNerfConfig
tinyConfig()
{
    FreqNerfConfig cfg;
    cfg.posFrequencies = 4;
    cfg.hidden = 24;
    cfg.trunkLayers = 2;
    cfg.geoFeatures = 7;
    cfg.colorHidden = 16;
    return cfg;
}

TEST(FreqNerfModel, OutputRangesAndDeterminism)
{
    FreqNerfModel model(tinyConfig());
    Pcg32 rng(1);
    for (int i = 0; i < 100; ++i) {
        const Vec3f p = rng.nextVec3();
        const Vec3f d = rng.nextUnitVector();
        const PointEval a = model.forwardPoint(p, d);
        const PointEval b = model.forwardPoint(p, d);
        EXPECT_GT(a.sigma, 0.0f);
        EXPECT_FLOAT_EQ(a.sigma, b.sigma);
        EXPECT_EQ(a.rgb, b.rgb);
        EXPECT_GE(minComp(a.rgb), 0.0f);
        EXPECT_LE(maxComp(a.rgb), 1.0f);
    }
}

TEST(FreqNerfModel, MacCostDwarfsHashGrid)
{
    FreqNerfConfig cfg; // defaults: 64-wide, 3 trunk layers
    FreqNerfModel model(cfg);
    // Table III context: the MLP field costs several times the
    // hash-grid pipeline's ~2k MACs/point.
    EXPECT_GT(model.macsPerPoint(), 6000u);
}

TEST(FreqNerfModel, GradientStepReducesLoss)
{
    FreqNerfModel model(tinyConfig(), 99);
    const Vec3f pos{0.4f, 0.3f, 0.7f};
    const Vec3f dir = normalize(Vec3f{0.1f, 0.9f, 0.3f});
    const auto loss = [&]() {
        const PointEval pe = model.forwardPoint(pos, dir);
        return pe.sigma * 0.4f + dot(pe.rgb, Vec3f{1.0f, -0.5f, 0.25f});
    };
    const float before = loss();
    model.zeroGrads();
    model.backwardPoint(pos, dir, 0.4f, {1.0f, -0.5f, 0.25f});
    model.optimizerStep(1e-3f, 1e-3f);
    EXPECT_LT(loss(), before);
}

TEST(FreqPipeline, TrainsOnToyScene)
{
    const auto scene = scenes::makeSyntheticScene("lego");
    scenes::DatasetConfig dc = scenes::syntheticRig(20);
    dc.trainViews = 6;
    dc.testViews = 1;
    dc.reference.steps = 64;
    const Dataset data = scenes::makeDataset(*scene, dc);

    FreqPipelineConfig fc;
    fc.model = tinyConfig();
    fc.lrFactors = 2e-3f;
    fc.sampler.maxSamplesPerRay = 20;
    fc.occupancyResolution = 12;
    FreqPipeline pipe(fc);

    TrainerConfig tc;
    tc.iterations = 150;
    tc.raysPerBatch = 96;
    Trainer trainer(pipe, data, tc);
    const double before = trainer.evalPsnr();
    const TrainResult r = trainer.run();
    EXPECT_GT(r.finalPsnr, before + 2.0);
}

TEST(FreqPipeline, QuantizeHookWorks)
{
    FreqPipelineConfig fc;
    fc.model = tinyConfig();
    FreqPipeline pipe(fc);
    const std::size_t n = pipe.paramCount();
    pipe.quantizeWeights();
    EXPECT_EQ(pipe.paramCount(), n);
}

FreqPipelineConfig
tinyPipelineConfig()
{
    FreqPipelineConfig fc;
    fc.model = tinyConfig();
    fc.sampler.maxSamplesPerRay = 16;
    fc.occupancyResolution = 12;
    return fc;
}

std::vector<Ray>
cameraRays(int size = 12)
{
    const Camera cam = Camera::orbit({0.5f, 0.5f, 0.5f}, 1.2f, 30.0f, 15.0f,
                                     45.0f, size, size);
    std::vector<Ray> rays;
    for (int y = 0; y < cam.height(); ++y)
        for (int x = 0; x < cam.width(); ++x)
            rays.push_back(cam.rayForPixel(x, y));
    return rays;
}

/** The batch-native traceRays override is bit-exact with the scalar
 *  per-ray oracle (traceRay): the CSR batch draws jitter in the same
 *  ray order and every sample's arithmetic is batch-invariant. */
TEST(FreqPipeline, TraceRaysMatchesScalarOracleBitExact)
{
    FreqPipeline batched(tinyPipelineConfig());
    FreqPipeline scalar(tinyPipelineConfig()); // same seed -> same weights

    const std::vector<Ray> rays = cameraRays();
    Pcg32 rng_a(5, 1), rng_b(5, 1);
    std::vector<RayEval> evals(rays.size());
    batched.traceRays(rays, rng_a, /*record=*/false, evals);

    for (std::size_t r = 0; r < rays.size(); ++r) {
        const RayEval ref = scalar.traceRay(rays[r], rng_b, /*record=*/false);
        EXPECT_EQ(evals[r].color, ref.color) << "ray " << r;
        EXPECT_EQ(evals[r].transmittance, ref.transmittance) << "ray " << r;
        EXPECT_EQ(evals[r].samples, ref.samples) << "ray " << r;
    }
    // Both paths consumed the identical jitter stream.
    EXPECT_EQ(rng_a.nextUint(), rng_b.nextUint());
}

/** A recorded batch tape dies loudly after the optimizer moved the
 *  weights — never a silent re-trace against the updated model. */
TEST(FreqPipeline, StaleTapeAfterStepFailsLoudly)
{
    FreqPipeline pipe(tinyPipelineConfig());
    const std::vector<Ray> rays = cameraRays(4);
    Pcg32 rng(9, 2);
    std::vector<RayEval> evals(rays.size());
    pipe.traceRays(rays, rng, /*record=*/true, evals);
    pipe.optimizerStep();
    const std::vector<Vec3f> dcolors(rays.size(), Vec3f{0.1f, 0.1f, 0.1f});
    EXPECT_DEATH(pipe.backwardRays(dcolors), "without a recorded");
}

} // namespace
} // namespace fusion3d::nerf
