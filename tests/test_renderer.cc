/** @file Tests of volumetric compositing, forward and backward. */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nerf/renderer.h"

namespace fusion3d::nerf
{
namespace
{

TEST(Composite, EmptyRayShowsBackground)
{
    RenderParams params;
    params.background = {0.2f, 0.4f, 0.6f};
    const auto r = composite({}, {}, {}, params);
    EXPECT_EQ(r.color, params.background);
    EXPECT_FLOAT_EQ(r.transmittance, 1.0f);
    EXPECT_EQ(r.used, 0);
}

TEST(Composite, OpaqueFirstSampleDominates)
{
    RenderParams params;
    const std::vector<float> sigmas{1e5f, 1e5f};
    const std::vector<Vec3f> rgbs{{1.0f, 0.0f, 0.0f}, {0.0f, 1.0f, 0.0f}};
    const std::vector<float> dts{0.1f, 0.1f};
    const auto r = composite(sigmas, rgbs, dts, params);
    EXPECT_NEAR(r.color.x, 1.0f, 1e-4f);
    EXPECT_NEAR(r.color.y, 0.0f, 1e-4f);
    EXPECT_EQ(r.used, 1); // early termination after the opaque sample
    EXPECT_LT(r.transmittance, params.terminationThreshold);
}

TEST(Composite, ZeroDensityPassesThrough)
{
    RenderParams params;
    params.background = {1.0f, 1.0f, 1.0f};
    const std::vector<float> sigmas{0.0f, 0.0f, 0.0f};
    const std::vector<Vec3f> rgbs{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
    const std::vector<float> dts{0.1f, 0.1f, 0.1f};
    const auto r = composite(sigmas, rgbs, dts, params);
    EXPECT_EQ(r.color, params.background);
    EXPECT_FLOAT_EQ(r.transmittance, 1.0f);
}

TEST(Composite, AlphaMatchesAnalyticForm)
{
    RenderParams params;
    const float sigma = 3.0f;
    const float dt = 0.25f;
    const std::vector<float> sigmas{sigma};
    const std::vector<Vec3f> rgbs{{1.0f, 1.0f, 1.0f}};
    const std::vector<float> dts{dt};
    const auto r = composite(sigmas, rgbs, dts, params);
    const float alpha = 1.0f - std::exp(-sigma * dt);
    EXPECT_NEAR(r.color.x, alpha, 1e-6f);
    EXPECT_NEAR(r.transmittance, 1.0f - alpha, 1e-6f);
}

TEST(Composite, WeightsSumPlusTransmittanceIsOne)
{
    Pcg32 rng(3);
    RenderParams params;
    for (int trial = 0; trial < 100; ++trial) {
        const int n = 1 + static_cast<int>(rng.nextBounded(30));
        std::vector<float> sigmas, dts;
        std::vector<Vec3f> rgbs;
        for (int i = 0; i < n; ++i) {
            sigmas.push_back(rng.nextRange(0.0f, 20.0f));
            dts.push_back(rng.nextRange(0.01f, 0.05f));
            rgbs.push_back(Vec3f(1.0f)); // white -> color.x == weight sum
        }
        const auto r = composite(sigmas, rgbs, dts, params);
        EXPECT_NEAR(r.color.x + r.transmittance, 1.0f, 1e-4f);
    }
}

/** Property: backward gradients match central finite differences. */
TEST(CompositeBackward, FiniteDifferenceSigmas)
{
    Pcg32 rng(7);
    RenderParams params;
    params.background = {0.3f, 0.1f, 0.2f};
    const int n = 8;
    std::vector<float> sigmas, dts;
    std::vector<Vec3f> rgbs;
    for (int i = 0; i < n; ++i) {
        sigmas.push_back(rng.nextRange(0.5f, 8.0f));
        dts.push_back(rng.nextRange(0.02f, 0.06f));
        rgbs.push_back(rng.nextVec3());
    }
    const Vec3f dcolor{0.5f, -1.0f, 0.25f};

    const auto fwd = composite(sigmas, rgbs, dts, params);
    ASSERT_EQ(fwd.used, n); // no early termination in this setup

    std::vector<float> dsigmas(n);
    std::vector<Vec3f> drgbs(n);
    compositeBackward(sigmas, rgbs, dts, params, fwd, dcolor, dsigmas, drgbs);

    const auto loss = [&]() {
        const auto r = composite(sigmas, rgbs, dts, params);
        return dot(r.color, dcolor);
    };
    for (int i = 0; i < n; ++i) {
        const float eps = 1e-3f;
        const float orig = sigmas[static_cast<std::size_t>(i)];
        sigmas[static_cast<std::size_t>(i)] = orig + eps;
        const float lp = loss();
        sigmas[static_cast<std::size_t>(i)] = orig - eps;
        const float lm = loss();
        sigmas[static_cast<std::size_t>(i)] = orig;
        EXPECT_NEAR(dsigmas[static_cast<std::size_t>(i)], (lp - lm) / (2 * eps), 2e-3f)
            << "sample " << i;
    }
}

TEST(CompositeBackward, FiniteDifferenceColors)
{
    Pcg32 rng(8);
    RenderParams params;
    const int n = 6;
    std::vector<float> sigmas, dts;
    std::vector<Vec3f> rgbs;
    for (int i = 0; i < n; ++i) {
        sigmas.push_back(rng.nextRange(0.5f, 10.0f));
        dts.push_back(rng.nextRange(0.02f, 0.06f));
        rgbs.push_back(rng.nextVec3());
    }
    const Vec3f dcolor{1.0f, 0.5f, -0.5f};
    const auto fwd = composite(sigmas, rgbs, dts, params);
    std::vector<float> dsigmas(n);
    std::vector<Vec3f> drgbs(n);
    compositeBackward(sigmas, rgbs, dts, params, fwd, dcolor, dsigmas, drgbs);

    for (int i = 0; i < fwd.used; ++i) {
        for (int ch = 0; ch < 3; ++ch) {
            const float eps = 1e-3f;
            Vec3f &c = rgbs[static_cast<std::size_t>(i)];
            const float orig = c[ch];
            c.at(ch) = orig + eps;
            const float lp = dot(composite(sigmas, rgbs, dts, params).color, dcolor);
            c.at(ch) = orig - eps;
            const float lm = dot(composite(sigmas, rgbs, dts, params).color, dcolor);
            c.at(ch) = orig;
            EXPECT_NEAR(drgbs[static_cast<std::size_t>(i)][ch], (lp - lm) / (2 * eps),
                        2e-3f);
        }
    }
}

TEST(CompositeBackward, TerminatedTailGetsZeroGradient)
{
    RenderParams params;
    const std::vector<float> sigmas{1e5f, 2.0f, 3.0f};
    const std::vector<Vec3f> rgbs{{1, 1, 1}, {1, 0, 0}, {0, 1, 0}};
    const std::vector<float> dts{0.1f, 0.1f, 0.1f};
    const auto fwd = composite(sigmas, rgbs, dts, params);
    ASSERT_EQ(fwd.used, 1);
    std::vector<float> dsigmas(3, 99.0f);
    std::vector<Vec3f> drgbs(3, Vec3f(99.0f));
    compositeBackward(sigmas, rgbs, dts, params, fwd, {1, 1, 1}, dsigmas, drgbs);
    EXPECT_FLOAT_EQ(dsigmas[1], 0.0f);
    EXPECT_FLOAT_EQ(dsigmas[2], 0.0f);
    EXPECT_EQ(drgbs[2], Vec3f(0.0f));
}

} // namespace
} // namespace fusion3d::nerf
