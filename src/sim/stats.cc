#include "sim/stats.h"

#include <algorithm>
#include <cmath>

namespace fusion3d::sim
{

void
Distribution::sample(double v)
{
    ++count_;
    sum_ += v;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
    if (count_ == 1) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
}

void
Distribution::reset()
{
    count_ = 0;
    mean_ = m2_ = sum_ = min_ = max_ = 0.0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

void
Histogram::sample(std::uint64_t v, std::uint64_t weight)
{
    buckets_[v] += weight;
    count_ += weight;
}

void
Histogram::reset()
{
    buckets_.clear();
    count_ = 0;
}

double
Histogram::fraction(std::uint64_t v) const
{
    if (count_ == 0)
        return 0.0;
    const auto it = buckets_.find(v);
    if (it == buckets_.end())
        return 0.0;
    return static_cast<double>(it->second) / static_cast<double>(count_);
}

Counter &
StatGroup::addCounter(const std::string &name)
{
    counters_.push_back(std::make_unique<Counter>(name));
    return *counters_.back();
}

Distribution &
StatGroup::addDistribution(const std::string &name)
{
    distributions_.push_back(std::make_unique<Distribution>(name));
    return *distributions_.back();
}

Histogram &
StatGroup::addHistogram(const std::string &name)
{
    histograms_.push_back(std::make_unique<Histogram>(name));
    return *histograms_.back();
}

void
StatGroup::resetAll()
{
    for (auto &c : counters_)
        c->reset();
    for (auto &d : distributions_)
        d->reset();
    for (auto &h : histograms_)
        h->reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &c : counters_)
        os << name_ << '.' << c->name() << ' ' << c->value() << '\n';
    for (const auto &d : distributions_) {
        os << name_ << '.' << d->name() << ".mean " << d->mean() << '\n';
        os << name_ << '.' << d->name() << ".stddev " << d->stddev() << '\n';
        os << name_ << '.' << d->name() << ".min " << d->min() << '\n';
        os << name_ << '.' << d->name() << ".max " << d->max() << '\n';
    }
    for (const auto &h : histograms_) {
        for (const auto &[bucket, n] : h->buckets())
            os << name_ << '.' << h->name() << '[' << bucket << "] " << n << '\n';
    }
}

} // namespace fusion3d::sim
