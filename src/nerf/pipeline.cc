#include "nerf/pipeline.h"

#include "common/logging.h"
#include "common/quant.h"
#include "common/thread_pool.h"
#include "nerf/parallel_render.h"

namespace fusion3d::nerf
{

namespace
{

AdamConfig
adamFor(float lr, bool sparse)
{
    AdamConfig cfg;
    cfg.lr = lr;
    cfg.beta1 = 0.9f;
    cfg.beta2 = 0.99f;
    cfg.epsilon = 1e-15f;
    cfg.skipZeroGrad = sparse;
    return cfg;
}

} // namespace

NerfPipeline::NerfPipeline(const PipelineConfig &cfg)
    : cfg_(cfg),
      model_(std::make_unique<NerfModel>(cfg.model, cfg.seed)),
      grid_(cfg.occupancyResolution, cfg.occupancyThreshold),
      sampler_(cfg.sampler),
      ws_(model_->makeWorkspace()),
      adam_encoding_(model_->encoding().paramCount(), adamFor(cfg.lrEncoding, true)),
      adam_density_(model_->densityNet().paramCount(), adamFor(cfg.lrNet, false)),
      adam_color_(model_->colorNet().paramCount(), adamFor(cfg.lrNet, false))
{
    eval_.setCompaction(cfg.occupancyCompaction);
}

RayEval
NerfPipeline::traceRay(const Ray &ray, Pcg32 &rng, bool record, RayWorkload *workload)
{
    RayEval ev;
    traceRays({&ray, 1}, rng, record, {&ev, 1}, workload);
    return ev;
}

void
NerfPipeline::backwardLastRay(const Vec3f &dcolor)
{
    backwardRays({&dcolor, 1});
}

void
NerfPipeline::traceRays(std::span<const Ray> rays, Pcg32 &rng, bool record,
                        std::span<RayEval> out, RayWorkload *workload)
{
    // Model evaluation is sharded across the pool when one is attached.
    // Sharding is bit-exact with the serial call (forwardBatch is
    // batch-size invariant per sample); the visitor path stays serial
    // so access traces keep their canonical order.
    eval_.traceRays(sampler_, &grid_, cfg_.render, rays, rng, record, out, workload,
                    pool_, [&](SampleBatch &batch) {
                        if (pool_ && !visitor_) {
                            model_->forwardBatchParallel(batch.positions, batch.dirs,
                                                         par_ws_, batch.sigmas,
                                                         batch.rgbs, pool_);
                        } else {
                            model_->forwardBatch(batch.positions, batch.dirs,
                                                 batch_ws_, batch.sigmas, batch.rgbs,
                                                 visitor_);
                        }
                    });
}

void
NerfPipeline::backwardRays(std::span<const Vec3f> dcolors)
{
    // One batched backward through both MLPs and the hash encoding,
    // sharded with deterministic gradient reduction when a pool is
    // attached.
    eval_.backwardRays(cfg_.render, dcolors, pool_,
                       [&](const SampleBatch &batch, std::span<const float> dsigmas,
                           std::span<const Vec3f> drgbs) {
                           if (pool_) {
                               model_->backwardBatchParallel(batch.positions,
                                                             batch.dirs, dsigmas,
                                                             drgbs, par_ws_, pool_);
                           } else {
                               model_->backwardBatch(batch.positions, batch.dirs,
                                                     dsigmas, drgbs, batch_ws_);
                           }
                       });
}

void
NerfPipeline::zeroGradsImpl()
{
    model_->zeroGrads();
}

void
NerfPipeline::invalidateTapes()
{
    RadianceField::invalidateTapes();
    eval_.invalidateTape();
}

void
NerfPipeline::optimizerStepImpl()
{
    // Each parameter's Adam update is independent, so the parameter-
    // range split is bit-exact with the serial step.
    adam_encoding_.step(model_->encoding().params(), model_->encoding().grads(), pool_);
    adam_density_.step(model_->densityNet().params(), model_->densityNet().grads(),
                       pool_);
    adam_color_.step(model_->colorNet().params(), model_->colorNet().grads(), pool_);
}

void
NerfPipeline::updateOccupancy(Pcg32 &rng)
{
    if (pool_) {
        // Split update: the jitter draws happen serially in cell order
        // (identical rng stream to grid_.update), then the probes run
        // as one sharded density batch — bit-exact per sample with the
        // scalar queryDensity path, so the refreshed grid is identical
        // to the serial update's.
        grid_.collectProbePositions(rng, occ_positions_);
        occ_densities_.resize(occ_positions_.size());
        model_->queryDensityBatchParallel(occ_positions_, par_ws_, occ_densities_,
                                          pool_);
        grid_.applyDensities(occ_densities_);
        return;
    }
    grid_.update([this](const Vec3f &p) { return model_->queryDensity(p, ws_); }, rng);
}

void
NerfPipeline::quantizeWeights()
{
    fakeQuantizeInPlace(model_->encoding().params());
    fakeQuantizeInPlace(model_->densityNet().params());
    fakeQuantizeInPlace(model_->colorNet().params());
}

std::size_t
NerfPipeline::paramCount() const
{
    return model_->paramCount();
}

bool
NerfPipeline::renderViewTiled(const Camera &camera, ThreadPool &pool, Image &out)
{
    TiledRenderConfig tcfg;
    tcfg.sampler = cfg_.sampler;
    tcfg.sampler.jitter = false; // inference render
    tcfg.render = cfg_.render;
    tcfg.seed = cfg_.seed;
    out = renderImageTiled(*model_, &grid_, camera, tcfg, &pool);
    return true;
}

} // namespace fusion3d::nerf
