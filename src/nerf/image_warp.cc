#include "nerf/image_warp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace fusion3d::nerf
{

WarpResult
forwardWarp(const DepthFrame &prev, const Camera &target_camera,
            const WarpOptions &options)
{
    if (static_cast<int>(prev.depth.size()) != prev.color.pixelCount())
        fatal("forwardWarp: depth map size does not match the color image");

    const int tw = target_camera.width();
    const int th = target_camera.height();
    const std::size_t n_target = static_cast<std::size_t>(tw) * th;
    WarpResult result;
    result.image = Image(tw, th, Vec3f(0.0f));
    result.covered.assign(n_target, false);
    result.depth.assign(n_target, 0.0f);
    result.depthConflict.assign(n_target, false);
    std::vector<float> zbuf(n_target, std::numeric_limits<float>::infinity());
    // World position of each pixel's winning splat, for the exact
    // target-ray depth recovered in the final pass — and its source
    // pixel, for the occlusion test below.
    std::vector<Vec3f> world_pos(n_target);
    std::vector<int> src_x(n_target), src_y(n_target);

    for (int y = 0; y < prev.color.height(); ++y) {
        for (int x = 0; x < prev.color.width(); ++x) {
            const float d =
                prev.depth[static_cast<std::size_t>(y) * prev.color.width() + x];
            if (!(d > 0.0f))
                continue;
            const Ray ray = prev.camera.rayForPixel(x, y);
            const Vec3f world = ray.at(d);

            float px, py, vdepth;
            if (!target_camera.project(world, px, py, vdepth))
                continue;

            // 2x2 splat around the projected position.
            const int bx = static_cast<int>(px);
            const int by = static_cast<int>(py);
            for (int dy = 0; dy <= 1; ++dy) {
                for (int dx = 0; dx <= 1; ++dx) {
                    const int tx = bx + dx;
                    const int ty = by + dy;
                    if (tx < 0 || ty < 0 || tx >= tw || ty >= th)
                        continue;
                    const std::size_t idx =
                        static_cast<std::size_t>(ty) * tw + tx;
                    // A depth conflict marks a *fold*: splats from
                    // non-adjacent source pixels landing on the same
                    // target pixel at view depths further apart than
                    // the tolerance. Adjacent source pixels collide on
                    // every warp (their 2x2 footprints overlap), so a
                    // depth gap between them is just the local surface
                    // gradient, not an occlusion.
                    if (result.covered[idx] &&
                        std::abs(vdepth - zbuf[idx]) > options.depthTolerance &&
                        (std::abs(x - src_x[idx]) > 1 ||
                         std::abs(y - src_y[idx]) > 1))
                        result.depthConflict[idx] = true;
                    if (vdepth < zbuf[idx]) {
                        zbuf[idx] = vdepth;
                        result.image.at(tx, ty) = prev.color.at(x, y);
                        result.covered[idx] = true;
                        world_pos[idx] = world;
                        src_x[idx] = x;
                        src_y[idx] = y;
                    }
                }
            }
        }
    }

    // Recover ray-parameter depth in the target camera: rayForPixel
    // directions are normalized, so the parameter is the euclidean
    // distance from the eye to the splatted surface point.
    std::size_t n = 0;
    const Vec3f eye = target_camera.position();
    for (std::size_t idx = 0; idx < n_target; ++idx) {
        if (!result.covered[idx])
            continue;
        ++n;
        result.depth[idx] = length(world_pos[idx] - eye);
    }
    result.coverage =
        static_cast<double>(n) / static_cast<double>(result.covered.size());
    return result;
}

WarpTileStats
warpTileStats(const WarpResult &result, int tile_size)
{
    const int w = result.image.width();
    const int h = result.image.height();
    if (tile_size < 1)
        fatal("warpTileStats: tile size must be positive, got %d", tile_size);
    if (static_cast<int>(result.covered.size()) != w * h)
        fatal("warpTileStats: coverage mask does not match the image");

    WarpTileStats stats;
    stats.tileSize = tile_size;
    stats.tilesX = (w + tile_size - 1) / tile_size;
    stats.tilesY = (h + tile_size - 1) / tile_size;
    stats.coverage.assign(static_cast<std::size_t>(stats.tiles()), 0.0);
    stats.conflict.assign(static_cast<std::size_t>(stats.tiles()), 0.0);

    const bool has_conflict = !result.depthConflict.empty();
    for (int ty = 0; ty < stats.tilesY; ++ty) {
        for (int tx = 0; tx < stats.tilesX; ++tx) {
            const int x0 = tx * tile_size;
            const int y0 = ty * tile_size;
            const int x1 = std::min(x0 + tile_size, w);
            const int y1 = std::min(y0 + tile_size, h);
            std::size_t covered = 0, conflicts = 0;
            for (int y = y0; y < y1; ++y) {
                for (int x = x0; x < x1; ++x) {
                    const std::size_t idx = static_cast<std::size_t>(y) * w + x;
                    covered += result.covered[idx] ? 1 : 0;
                    if (has_conflict)
                        conflicts += result.depthConflict[idx] ? 1 : 0;
                }
            }
            const double pixels = static_cast<double>((x1 - x0) * (y1 - y0));
            const std::size_t t = static_cast<std::size_t>(ty) * stats.tilesX + tx;
            stats.coverage[t] = static_cast<double>(covered) / pixels;
            stats.conflict[t] = static_cast<double>(conflicts) / pixels;
        }
    }
    return stats;
}

double
warpAssistSpeedup(double coverage, double warp_overhead)
{
    const double work = (1.0 - coverage) + warp_overhead;
    return work > 0.0 ? 1.0 / work : 1.0;
}

} // namespace fusion3d::nerf
