#include "obs/build_info.h"

#include <chrono>

#include "obs/metrics.h"

#ifndef FUSION3D_GIT_DESCRIBE
#define FUSION3D_GIT_DESCRIBE "unknown"
#endif
#ifndef FUSION3D_BUILD_TYPE
#define FUSION3D_BUILD_TYPE "unknown"
#endif
#ifndef FUSION3D_SANITIZE_NAME
#define FUSION3D_SANITIZE_NAME ""
#endif

namespace fusion3d::obs
{

namespace
{

/** Initialized at static-init time: close enough to process start. */
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

std::string
compilerVersion()
{
#if defined(__clang__)
    return std::string("clang ") + std::to_string(__clang_major__) + "." +
           std::to_string(__clang_minor__) + "." +
           std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
    return std::string("gcc ") + std::to_string(__GNUC__) + "." +
           std::to_string(__GNUC_MINOR__) + "." +
           std::to_string(__GNUC_PATCHLEVEL__);
#else
    return "unknown";
#endif
}

/** Strip characters that would break a Prometheus label value. */
std::string
labelSafe(const std::string &s)
{
    std::string out;
    for (const char c : s)
        if (c != '"' && c != '\\' && c != '\n')
            out += c;
    return out;
}

} // namespace

const BuildInfo &
buildInfo()
{
    static const BuildInfo info = []() {
        BuildInfo b;
        b.git = FUSION3D_GIT_DESCRIBE;
        b.compiler = compilerVersion();
        b.sanitizer = *FUSION3D_SANITIZE_NAME ? FUSION3D_SANITIZE_NAME : "none";
        b.buildType = FUSION3D_BUILD_TYPE;
        return b;
    }();
    return info;
}

double
processUptimeSeconds()
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         g_process_start)
        .count();
}

void
registerProcessMetrics(MetricsRegistry &registry)
{
    registry.registerCollector("process", [](MetricSink &sink) {
        sink.gauge("process.uptime_seconds", processUptimeSeconds());
        const BuildInfo &b = buildInfo();
        sink.labeledGauge("process.build_info",
                          "git=\"" + labelSafe(b.git) + "\",compiler=\"" +
                              labelSafe(b.compiler) + "\",sanitizer=\"" +
                              labelSafe(b.sanitizer) + "\",build=\"" +
                              labelSafe(b.buildType) + "\"",
                          1.0);
    });
}

} // namespace fusion3d::obs
