#include "nerf/adam.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace fusion3d::nerf
{

namespace
{
/** Parameters per parallelFor chunk; amortizes task dispatch. */
constexpr int kAdamGrain = 16384;
} // namespace

Adam::Adam(std::size_t param_count, const AdamConfig &cfg)
    : cfg_(cfg), m_(param_count, 0.0f), v_(param_count, 0.0f)
{
}

void
Adam::step(std::span<float> params, std::span<const float> grads)
{
    step(params, grads, nullptr);
}

void
Adam::step(std::span<float> params, std::span<const float> grads, ThreadPool *pool)
{
    if (params.size() != m_.size() || grads.size() != m_.size())
        panic("Adam::step size mismatch (%zu params, %zu state)",
              params.size(), m_.size());

    ++t_;
    const float b1t = 1.0f - std::pow(cfg_.beta1, static_cast<float>(t_));
    const float b2t = 1.0f - std::pow(cfg_.beta2, static_cast<float>(t_));

    const auto update_range = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            float g = grads[i];
            if (cfg_.skipZeroGrad && g == 0.0f)
                continue;
            if (cfg_.weightDecay != 0.0f)
                g += cfg_.weightDecay * params[i];
            m_[i] = cfg_.beta1 * m_[i] + (1.0f - cfg_.beta1) * g;
            v_[i] = cfg_.beta2 * v_[i] + (1.0f - cfg_.beta2) * g * g;
            const float mhat = m_[i] / b1t;
            const float vhat = v_[i] / b2t;
            params[i] -= cfg_.lr * mhat / (std::sqrt(vhat) + cfg_.epsilon);
        }
    };

    if (pool && params.size() > static_cast<std::size_t>(kAdamGrain)) {
        pool->parallelFor(
            0, static_cast<int>(params.size()),
            [&update_range](int b, int e) {
                update_range(static_cast<std::size_t>(b), static_cast<std::size_t>(e));
            },
            kAdamGrain);
    } else {
        update_range(0, params.size());
    }
}

} // namespace fusion3d::nerf
