/**
 * @file
 * Host-integration model (Sec. VI-D): the accelerator plugs into an
 * existing AR/VR SoC "like a USB drive". This plans the dataset/model
 * streaming over the USB-class link against the training timeline and
 * reports whether the link keeps the accelerator fed.
 */

#ifndef FUSION3D_MULTICHIP_HOST_LINK_H_
#define FUSION3D_MULTICHIP_HOST_LINK_H_

namespace fusion3d::multichip
{

/** Host-link streaming configuration. */
struct HostLinkConfig
{
    /** Link bandwidth, bytes/second (USB 3.2 Gen 1: 0.625 GB/s). */
    double linkBytesPerSec = 0.625e9;
    /** Protocol efficiency (framing/turnaround overhead). */
    double efficiency = 0.9;
};

/** The streaming plan for one training session. */
struct StreamingPlan
{
    /** Seconds to stream the posed-image dataset in. */
    double datasetInSeconds = 0.0;
    /** Seconds to stream the trained model out. */
    double modelOutSeconds = 0.0;
    /** Seconds of training compute (input). */
    double trainSeconds = 0.0;
    /** End-to-end session seconds with input streaming overlapped
     *  against training (double-buffered batches) and the model
     *  written out afterwards. */
    double totalSeconds = 0.0;
    /** True if the link sustains training without stalling it: the
     *  dataset streams in no slower than training consumes it. */
    bool linkKeepsUp = false;
};

/**
 * Plan a training session.
 * @param dataset_bytes Posed-image payload streamed to the accelerator.
 * @param model_bytes   Trained-model payload streamed back.
 * @param train_seconds Training wall-clock at full data availability.
 */
StreamingPlan planTrainingSession(double dataset_bytes, double model_bytes,
                                  double train_seconds,
                                  const HostLinkConfig &cfg = {});

} // namespace fusion3d::multichip

#endif // FUSION3D_MULTICHIP_HOST_LINK_H_
