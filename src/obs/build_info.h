/**
 * @file
 * Build identity and process-level metrics. Exports
 * `process.uptime_seconds` and a `process.build_info` gauge whose
 * labels carry git describe / compiler / sanitizer / build type, so
 * Prometheus dumps and JSON metric lines from different runs are
 * distinguishable. Auto-registered on the global MetricsRegistry.
 */

#ifndef FUSION3D_OBS_BUILD_INFO_H_
#define FUSION3D_OBS_BUILD_INFO_H_

#include <string>

namespace fusion3d::obs
{

class MetricsRegistry;

/** Compile-time identity of this binary. */
struct BuildInfo
{
    std::string git;       ///< `git describe --always --dirty` at configure
    std::string compiler;  ///< e.g. "gcc 13.2.0"
    std::string sanitizer; ///< FUSION3D_SANITIZE value ("none" if off)
    std::string buildType; ///< CMAKE_BUILD_TYPE
};

const BuildInfo &buildInfo();

/** Seconds since process start (first obs initialization). */
double processUptimeSeconds();

/** Register the `process.*` collector (idempotent). */
void registerProcessMetrics(MetricsRegistry &registry);

} // namespace fusion3d::obs

#endif // FUSION3D_OBS_BUILD_INFO_H_
