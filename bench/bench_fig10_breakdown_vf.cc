/**
 * @file
 * Regenerates Fig. 10(c)/(d): the fabricated chip's area & power
 * breakdown and the measured voltage-frequency curve (modeled with an
 * alpha-power law fitted through the published 600 MHz @ 0.95 V point).
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "chip/tech_model.h"

using namespace fusion3d;

int
main()
{
    const chip::ChipConfig cfg = chip::ChipConfig::prototype();
    const chip::TechModel tech(cfg);

    bench::banner("Fig. 10(c): prototype area & power breakdown");
    std::printf("%-12s %12s %12s\n", "Module", "Area mm^2", "Power W");
    bench::rule(40);
    for (const chip::ModuleShare &m : tech.breakdown()) {
        std::printf("%-12s %12.2f %12.3f\n", m.name.c_str(),
                    m.areaFraction * cfg.dieAreaMm2,
                    m.powerFraction * cfg.typicalPowerW);
    }
    bench::rule(40);
    std::printf("Total: %.1f mm^2, %.2f W (paper prototype: 1.21 W at 600 MHz)\n\n",
                cfg.dieAreaMm2, cfg.typicalPowerW);

    bench::banner("Fig. 10(d): voltage-frequency curve");
    std::printf("%8s %14s %12s\n", "V (V)", "f (MHz)", "Power (W)");
    bench::rule(38);
    for (double v = 0.60; v <= 1.101; v += 0.05) {
        const double f = tech.frequencyAtVoltage(v);
        std::printf("%8.2f %14.0f %12.2f\n", v, f / 1e6, tech.powerAt(v, f));
    }
    bench::rule(38);
    std::printf("Anchor point: %.0f MHz at %.2f V (paper: 600 MHz @ 0.95 V).\n",
                tech.frequencyAtVoltage(cfg.coreVoltage) / 1e6, cfg.coreVoltage);
    std::printf("Voltage needed for 800 MHz: %.2f V\n",
                tech.voltageForFrequency(800e6));
    return 0;
}
