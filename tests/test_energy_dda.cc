/** @file Tests of the bottom-up energy model and the DDA sampling mode. */

#include <gtest/gtest.h>

#include "chip/energy_model.h"
#include "chip/tech_model.h"
#include "nerf/sampler.h"

namespace fusion3d
{
namespace
{

chip::WorkloadProfile
frameWorkload()
{
    chip::WorkloadProfile wl;
    wl.rays = 800 * 800;
    wl.candidates = wl.rays * 40;
    wl.validPoints = wl.rays * 16;
    wl.compositedPoints = wl.rays * 10;
    wl.levels = 8;
    wl.macsPerPoint = 2400;
    wl.avgGroupCycles = 1.0;
    return wl;
}

TEST(EnergyModel, BottomUpAgreesWithTopDownWithinFactor)
{
    const chip::ChipConfig cfg = chip::ChipConfig::scaledUp();
    const chip::TechModel tech(cfg);
    const chip::PerfModel pm(cfg, tech);
    const chip::WorkloadProfile wl = frameWorkload();
    chip::SamplingRunStats s1;
    s1.raysProcessed = wl.rays;
    s1.totalCycles = wl.candidates / 13;

    const chip::ChipRunResult inf = pm.inference(wl, s1);
    const chip::EnergyBreakdown bottom =
        chip::estimateEnergy(wl, inf, /*training=*/false);

    // Two independent estimates of the same frame's energy: they must
    // land within a factor of 3 of each other.
    EXPECT_GT(bottom.totalJ(), inf.energyJ / 3.0);
    EXPECT_LT(bottom.totalJ(), inf.energyJ * 3.0);
}

TEST(EnergyModel, TrainingCostsMoreThanInference)
{
    const chip::ChipConfig cfg = chip::ChipConfig::scaledUp();
    const chip::TechModel tech(cfg);
    const chip::PerfModel pm(cfg, tech);
    const chip::WorkloadProfile wl = frameWorkload();
    chip::SamplingRunStats s1;
    s1.raysProcessed = wl.rays;
    s1.totalCycles = wl.candidates / 13;

    const chip::ChipRunResult inf = pm.inference(wl, s1);
    const chip::ChipRunResult trn = pm.training(wl, s1);
    const double e_inf = chip::estimateEnergy(wl, inf, false).totalJ();
    const double e_trn = chip::estimateEnergy(wl, trn, true).totalJ();
    EXPECT_GT(e_trn, 2.0 * e_inf);
}

TEST(EnergyModel, BreakdownComponentsAllPositive)
{
    const chip::WorkloadProfile wl = frameWorkload();
    chip::ChipRunResult run;
    run.totalCycles = 10'000'000;
    const chip::EnergyBreakdown e = chip::estimateEnergy(wl, run, false);
    EXPECT_GT(e.mlpJ, 0.0);
    EXPECT_GT(e.sramJ, 0.0);
    EXPECT_GT(e.nocJ, 0.0);
    EXPECT_GT(e.staticJ, 0.0);
    EXPECT_NEAR(e.totalJ(), e.mlpJ + e.sramJ + e.nocJ + e.staticJ, 1e-15);
}

TEST(DdaSampling, SameValidSamplesAsProbing)
{
    nerf::OccupancyGrid grid(16);
    Pcg32 grid_rng(2);
    grid.update(
        [](const Vec3f &p) {
            return length(p - Vec3f(0.5f, 0.5f, 0.5f)) < 0.3f ? 10.0f : 0.0f;
        },
        grid_rng);

    nerf::SamplerConfig probe_cfg;
    probe_cfg.jitter = false;
    nerf::SamplerConfig dda_cfg = probe_cfg;
    dda_cfg.ddaSkip = true;

    const nerf::RaySampler probe(probe_cfg);
    const nerf::RaySampler dda(dda_cfg);

    Pcg32 rng_a(3), rng_b(3);
    std::vector<nerf::RaySample> out_a, out_b;
    nerf::RayWorkload wl_a, wl_b;
    int compared = 0;
    Pcg32 gen(4);
    for (int i = 0; i < 100; ++i) {
        const Vec3f o{gen.nextRange(-0.3f, 1.3f), gen.nextRange(-0.3f, 1.3f), -1.0f};
        const Ray ray(o, normalize(Vec3f{gen.nextRange(-0.3f, 0.3f),
                                         gen.nextRange(-0.3f, 0.3f), 1.0f}));
        const int na = probe.sample(ray, &grid, rng_a, out_a, &wl_a);
        const int nb = dda.sample(ray, &grid, rng_b, out_b, &wl_b);
        // The DDA intervals cover every occupied cell, so the valid
        // sample sets agree (up to the interval-boundary epsilon).
        EXPECT_NEAR(na, nb, 2) << "ray " << i;
        // DDA mode never marches more candidates than probing.
        EXPECT_LE(wl_b.totalCandidates, wl_a.totalCandidates + 2);
        if (na > 0) {
            ++compared;
            // DDA pays cell steps instead of empty-lattice probes.
            EXPECT_GT(wl_b.ddaSteps, 0);
        }
    }
    EXPECT_GT(compared, 10);
}

TEST(DdaSampling, SkipsFarMoreInSparseScenes)
{
    nerf::OccupancyGrid grid(16);
    Pcg32 grid_rng(5);
    grid.update(
        [](const Vec3f &p) {
            return length(p - Vec3f(0.5f, 0.5f, 0.5f)) < 0.08f ? 10.0f : 0.0f;
        },
        grid_rng);

    nerf::SamplerConfig dda_cfg;
    dda_cfg.jitter = false;
    dda_cfg.ddaSkip = true;
    nerf::SamplerConfig probe_cfg = dda_cfg;
    probe_cfg.ddaSkip = false;

    Pcg32 rng_a(6), rng_b(6);
    std::vector<nerf::RaySample> out;
    nerf::RayWorkload wl_probe, wl_dda;
    const Ray ray({0.5f, 0.5f, -1.0f}, {0.0f, 0.0f, 1.0f});
    nerf::RaySampler(probe_cfg).sample(ray, &grid, rng_a, out, &wl_probe);
    nerf::RaySampler(dda_cfg).sample(ray, &grid, rng_b, out, &wl_dda);

    // Probing marches the whole cube span; DDA only the tiny blob.
    EXPECT_LT(wl_dda.totalCandidates, wl_probe.totalCandidates / 3);
}

} // namespace
} // namespace fusion3d
