/**
 * @file
 * Const-correct, thread-parallel frame rendering. Unlike
 * Trainer::renderView — which routes through the mutable training tape
 * of a RadianceField — these entry points take a `const NerfModel&`
 * plus an occupancy gate and render whole frames by splitting them
 * into row-tiles executed on a ThreadPool. This is the render path the
 * serving subsystem (src/serve) uses.
 *
 * Determinism: every image row re-seeds its own Pcg32 from
 * (cfg.seed, row), so the rendered frame is bit-identical regardless
 * of tiling, thread count, or execution order — and, with jitter
 * disabled, bit-identical to the single-threaded Trainer::renderView
 * of the same model/grid/camera (proved in tests/test_serve.cc).
 */

#ifndef FUSION3D_NERF_PARALLEL_RENDER_H_
#define FUSION3D_NERF_PARALLEL_RENDER_H_

#include <cstdint>

#include "common/image.h"
#include "common/thread_pool.h"
#include "nerf/camera.h"
#include "nerf/image_warp.h"
#include "nerf/nerf_model.h"
#include "nerf/occupancy_grid.h"
#include "nerf/renderer.h"
#include "nerf/sampler.h"

namespace fusion3d::nerf
{

/** Configuration of one tiled render. */
struct TiledRenderConfig
{
    TiledRenderConfig() { sampler.jitter = false; } // inference default

    SamplerConfig sampler;
    RenderParams render;
    /** Rows per work unit handed to the pool. */
    int rowsPerTile = 4;
    /** Base seed of the per-row jitter streams (unused when !jitter). */
    std::uint64_t seed = 0;
    /** Depth assigned to fully transparent rays (compositeDepth t_far). */
    float farDepth = 2.5f;
};

/**
 * Render @p camera's view of @p model, gated by @p grid (nullptr keeps
 * every candidate sample), as parallel row-tiles on @p pool.
 * @param pool nullptr renders single-threaded on the calling thread.
 */
Image renderImageTiled(const NerfModel &model, const OccupancyGrid *grid,
                       const Camera &camera, const TiledRenderConfig &cfg,
                       ThreadPool *pool = nullptr);

/**
 * Like renderImageTiled() but also fills the per-pixel composited
 * depth map, producing the DepthFrame the image-warp degrade path
 * (frame reuse a la MetaVRain) reprojects from.
 */
DepthFrame renderDepthFrameTiled(const NerfModel &model, const OccupancyGrid *grid,
                                 const Camera &camera, const TiledRenderConfig &cfg,
                                 ThreadPool *pool = nullptr);

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_PARALLEL_RENDER_H_
