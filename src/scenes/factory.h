/**
 * @file
 * Scene factory: the eight "synthetic" object scenes (stand-ins for
 * NeRF-Synthetic: chair, drums, ficus, hotdog, lego, materials, mic,
 * ship) and the seven "360" large scenes (stand-ins for NeRF-360:
 * bicycle, bonsai, counter, garden, kitchen, room, stump). Scenes are
 * constructed with deliberately different occupancy fill factors so the
 * per-scene workload spread of the paper's Tables V/VI and Fig. 11
 * reproduces.
 */

#ifndef FUSION3D_SCENES_FACTORY_H_
#define FUSION3D_SCENES_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "scenes/scene.h"

namespace fusion3d::scenes
{

/** Names of the eight synthetic object scenes. */
const std::vector<std::string> &syntheticSceneNames();

/** Names of the seven large "360" scenes. */
const std::vector<std::string> &nerf360SceneNames();

/** Build a synthetic object scene by name; fatal on unknown name. */
std::unique_ptr<Scene> makeSyntheticScene(const std::string &name);

/** Build a large "360" scene by name; fatal on unknown name. */
std::unique_ptr<Scene> makeNerf360Scene(const std::string &name);

} // namespace fusion3d::scenes

#endif // FUSION3D_SCENES_FACTORY_H_
