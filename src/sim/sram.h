/**
 * @file
 * Banked SRAM timing model. The unit of simulation is a *group access*:
 * the eight vertex-feature reads a sampled point issues in Stage II.
 * Each bank serves one request per cycle, so a group access takes as
 * many cycles as the most-loaded bank receives requests — between 1
 * (conflict free) and 8 (all requests on one bank), exactly the range
 * the paper describes in Sec. V-B.
 */

#ifndef FUSION3D_SIM_SRAM_H_
#define FUSION3D_SIM_SRAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "sim/stats.h"

namespace fusion3d::sim
{

/** Configuration of a banked SRAM array. */
struct SramConfig
{
    /** Number of independently addressable banks. */
    std::uint32_t numBanks = 8;
    /** Words per bank (capacity accounting only). */
    std::uint32_t wordsPerBank = 8192;
    /** Bytes per word (capacity accounting only). */
    std::uint32_t bytesPerWord = 4;
};

/** Result of one group access. */
struct SramAccessResult
{
    /** Cycles to serve the whole group (= max per-bank load). */
    Cycles cycles = 0;
    /** Number of requests beyond the first on their bank. */
    std::uint32_t conflicts = 0;
};

/** A banked SRAM with per-group conflict accounting. */
class Sram
{
  public:
    explicit Sram(const SramConfig &cfg, const std::string &name = "sram");

    /**
     * Serve a group of simultaneous requests given the bank id of each
     * request. Bank ids must be < numBanks.
     */
    SramAccessResult accessGroup(std::span<const std::uint32_t> banks);

    const SramConfig &config() const { return cfg_; }
    Bytes capacityBytes() const;

    /** Total group accesses served. */
    std::uint64_t groupAccesses() const { return group_accesses_.value(); }
    /** Total individual requests served. */
    std::uint64_t requests() const { return requests_.value(); }
    /** Total conflict cycles (requests serialized behind another). */
    std::uint64_t conflictCount() const { return conflicts_.value(); }
    /** Distribution of group-access latencies in cycles. */
    const Distribution &latency() const { return latency_; }
    /** Histogram of group-access latencies. */
    const Histogram &latencyHistogram() const { return latency_hist_; }
    /** Per-bank request totals (workload balance). */
    const std::vector<std::uint64_t> &bankLoad() const { return bank_load_; }

    void resetStats();
    StatGroup &stats() { return stats_; }

  private:
    SramConfig cfg_;
    StatGroup stats_;
    Counter &group_accesses_;
    Counter &requests_;
    Counter &conflicts_;
    Distribution &latency_;
    Histogram &latency_hist_;
    std::vector<std::uint64_t> bank_load_;
    std::vector<std::uint32_t> scratch_; // per-bank counts for one group
};

} // namespace fusion3d::sim

#endif // FUSION3D_SIM_SRAM_H_
