#include "nerf/nerf_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fusion3d::nerf
{

NerfModel::NerfModel(const NerfModelConfig &cfg, std::uint64_t seed)
    : cfg_(cfg)
{
    if (cfg.geoFeatures < 1)
        fatal("NerfModel needs at least one geometry feature");
    encoding_ = std::make_unique<HashGridEncoding>(cfg.grid, seed);
    density_net_ = std::make_unique<Mlp>(
        std::vector<int>{cfg.grid.encodedDims(), cfg.densityHidden, 1 + cfg.geoFeatures},
        seed + 1);
    color_net_ = std::make_unique<Mlp>(
        std::vector<int>{cfg.geoFeatures + cfg.shDims(), cfg.colorHidden, 3}, seed + 2);
}

PointWorkspace
NerfModel::makeWorkspace() const
{
    PointWorkspace ws;
    ws.encoding.resize(static_cast<std::size_t>(cfg_.grid.encodedDims()));
    ws.sh.resize(static_cast<std::size_t>(cfg_.shDims()));
    ws.colorIn.resize(static_cast<std::size_t>(cfg_.geoFeatures + cfg_.shDims()));
    ws.dDensityOut.resize(static_cast<std::size_t>(1 + cfg_.geoFeatures));
    ws.dColorOut.resize(3);
    ws.densityWs = density_net_->makeWorkspace();
    ws.colorWs = color_net_->makeWorkspace();
    return ws;
}

float
NerfModel::densityActivation(float raw)
{
    // Exponential activation as in Instant-NGP, clamped for stability.
    return std::exp(std::clamp(raw, -15.0f, 10.0f));
}

float
NerfModel::densityActivationGrad(float raw, float sigma)
{
    // d/draw exp(raw) = exp(raw); zero outside the clamp range.
    if (raw <= -15.0f || raw >= 10.0f)
        return 0.0f;
    return sigma;
}

PointEval
NerfModel::forwardPoint(const Vec3f &pos, const Vec3f &dir, PointWorkspace &ws,
                        VertexVisitor *visitor) const
{
    encoding_->encode(pos, ws.encoding, visitor);
    const std::span<const float> dens_out = density_net_->forward(ws.encoding, ws.densityWs);

    ws.rawSigma = dens_out[0];
    PointEval pe;
    pe.sigma = densityActivation(ws.rawSigma);

    shEncode(dir, cfg_.shDegree, ws.sh);
    for (int i = 0; i < cfg_.geoFeatures; ++i)
        ws.colorIn[static_cast<std::size_t>(i)] = dens_out[static_cast<std::size_t>(i) + 1];
    for (int i = 0; i < cfg_.shDims(); ++i)
        ws.colorIn[static_cast<std::size_t>(cfg_.geoFeatures + i)] = ws.sh[i];

    const std::span<const float> col_out = color_net_->forward(ws.colorIn, ws.colorWs);
    for (int i = 0; i < 3; ++i) {
        ws.rawRgb[i] = col_out[static_cast<std::size_t>(i)];
        // Numerically safe logistic sigmoid.
        const float r = col_out[static_cast<std::size_t>(i)];
        pe.rgb.at(i) = r >= 0.0f ? 1.0f / (1.0f + std::exp(-r))
                                 : std::exp(r) / (1.0f + std::exp(r));
    }
    return pe;
}

float
NerfModel::queryDensity(const Vec3f &pos, PointWorkspace &ws) const
{
    encoding_->encode(pos, ws.encoding);
    const std::span<const float> out = density_net_->forward(ws.encoding, ws.densityWs);
    return densityActivation(out[0]);
}

void
NerfModel::backwardPoint(const Vec3f &pos, const Vec3f &dir, float dsigma,
                         const Vec3f &drgb, PointWorkspace &ws)
{
    // Recompute the forward pass to refresh the activation caches.
    const PointEval pe = forwardPoint(pos, dir, ws);

    // Color net backward: dL/draw = drgb * sigmoid'(raw).
    for (int i = 0; i < 3; ++i) {
        const float s = pe.rgb[i];
        ws.dColorOut[static_cast<std::size_t>(i)] = drgb[i] * s * (1.0f - s);
    }
    color_net_->backward(ws.dColorOut, ws.colorWs);

    // Density net backward: raw-sigma grad fused with the activation,
    // geometry features receive the color net's input gradient.
    ws.dDensityOut[0] = dsigma * densityActivationGrad(ws.rawSigma, pe.sigma);
    for (int i = 0; i < cfg_.geoFeatures; ++i)
        ws.dDensityOut[static_cast<std::size_t>(i) + 1] =
            ws.colorWs.dinput[static_cast<std::size_t>(i)];
    density_net_->backward(ws.dDensityOut, ws.densityWs);

    // Encoding backward: scatter into the hash tables.
    encoding_->backward(pos, ws.densityWs.dinput);
}

void
NerfModel::zeroGrads()
{
    encoding_->zeroGrads();
    density_net_->zeroGrads();
    color_net_->zeroGrads();
}

std::size_t
NerfModel::paramCount() const
{
    return encoding_->paramCount() + density_net_->paramCount() + color_net_->paramCount();
}

std::uint64_t
NerfModel::macsPerPoint() const
{
    return density_net_->forwardMacs() + color_net_->forwardMacs();
}

} // namespace fusion3d::nerf
