/**
 * @file
 * Chip-level performance model: combines the Stage I/II/III cycle
 * models into pipelined end-to-end throughput, wall-clock, FPS and
 * energy (the Table III/IV/V metrics), plus the training data-volume /
 * off-chip bandwidth model behind Fig. 3, Table I and Fig. 13(b).
 *
 * Methodology mirrors the paper: the cycle models are exercised on real
 * workload traces captured from the functional NeRF pipeline, and the
 * resulting per-unit rates are extrapolated to the full workload.
 */

#ifndef FUSION3D_CHIP_PERF_MODEL_H_
#define FUSION3D_CHIP_PERF_MODEL_H_

#include <cstdint>

#include "chip/config.h"
#include "chip/interp_module.h"
#include "chip/postproc_module.h"
#include "chip/sampling_module.h"
#include "chip/tech_model.h"

namespace fusion3d::chip
{

/** Workload description extracted from a functional run. */
struct WorkloadProfile
{
    std::uint64_t rays = 0;
    /** Candidate samples marched in Stage I. */
    std::uint64_t candidates = 0;
    /** Valid samples reaching Stages II/III. */
    std::uint64_t validPoints = 0;
    /** Samples actually composited (early termination). */
    std::uint64_t compositedPoints = 0;
    /** Hash-grid levels per point. */
    int levels = 8;
    /** MLP MACs per point (forward). */
    std::uint64_t macsPerPoint = 2400;
    /** Mean Stage-II group latency in cycles (from InterpModule). */
    double avgGroupCycles = 1.0;
};

/** Per-stage and end-to-end cycles of a run. */
struct ChipRunResult
{
    Cycles stage1Cycles = 0;
    Cycles stage2Cycles = 0;
    Cycles stage3Cycles = 0;
    /** Pipelined end-to-end cycles: slowest stage plus fill/drain. */
    Cycles totalCycles = 0;
    double seconds = 0.0;
    double energyJ = 0.0;
    /** Valid samples per second. */
    double throughputPointsPerSec = 0.0;
    double energyPerPointNj = 0.0;
};

/** The combined chip performance model. */
class PerfModel
{
  public:
    PerfModel(const ChipConfig &cfg, const TechModel &tech)
        : cfg_(cfg), tech_(tech)
    {}

    const ChipConfig &config() const { return cfg_; }

    /**
     * Inference run: Stage II serves one read pass per point-level.
     * @param wl      Aggregate workload.
     * @param stage1  Cycle stats from the SamplingModule trace replay.
     */
    ChipRunResult inference(const WorkloadProfile &wl,
                            const SamplingRunStats &stage1) const;

    /**
     * Training run: Stage II performs the 3-step feature update (read /
     * compute / write). With @p tdm_inference the idle memory slot of
     * the update serves interleaved inference work (Technique T2-1,
     * Fig. 6(c)), effectively hiding one of the three slots.
     */
    ChipRunResult training(const WorkloadProfile &wl, const SamplingRunStats &stage1,
                           bool tdm_inference = true) const;

  private:
    ChipRunResult combine(const WorkloadProfile &wl, Cycles s1, Cycles s2,
                          Cycles s3) const;

    ChipConfig cfg_;
    TechModel tech_;
};

/** Design boundary: which pipeline stages an accelerator covers. */
enum class CoverageBoundary
{
    /** All three stages on-chip (this work). */
    EndToEnd,
    /** Stages II+III on-chip, Stage I on the host (Instant-3D style). */
    Stage23,
    /** Stage II only (NGPC/NeuRex style). */
    Stage2Only,
};

/** Training data-volume / bandwidth model (paper-scale workload). */
struct BandwidthModel
{
    /** Valid samples per second the accelerator sustains. */
    double samplesPerSec = 2.0e8;
    /** Target training wall-clock in seconds (instant training). */
    double trainSeconds = 2.0;
    /** Hash-grid levels / features per level at paper scale. */
    int levels = 16;
    int featuresPerLevel = 2;
    /** Hidden widths of the two MLPs at paper scale. */
    int mlpHidden = 64;
    /** On-chip SRAM available for hash tables, bytes. */
    double onchipTableBytes = 640.0 * 1024.0;
    /** Input dataset size in GB (posed images). */
    double datasetGb = 0.65;
    /** Output model size in GB. */
    double modelOutGb = 0.05;

    /** GB/s crossing stage boundaries (Fig. 3's inter-stage band). */
    double interStageGBs() const;
    /** GB/s of intra-stage traffic (activations + weight updates). */
    double intraStageGBs() const;
    /** GB/s of hash-table spill traffic for a given table size. */
    double spillGBs(double table_bytes) const;
    /** Total intermediate volume of one training run, GB (Fig. 3). */
    double totalIntermediateGb() const;
    /** Pipeline input/output volume of one run, GB (Fig. 3's 0.7 GB). */
    double ioGb() const { return datasetGb + modelOutGb; }

    /**
     * Off-chip bandwidth an accelerator with coverage @p boundary needs
     * to finish training in trainSeconds, GB/s (Table I, Fig. 13(b)).
     * @param table_bytes Total hash-table size of the model trained.
     */
    double requiredBandwidthGBs(CoverageBoundary boundary, double table_bytes) const;
};

} // namespace fusion3d::chip

#endif // FUSION3D_CHIP_PERF_MODEL_H_
