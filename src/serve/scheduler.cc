#include "serve/scheduler.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "nerf/parallel_render.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace fusion3d::serve
{

namespace
{

/** Outcomes that consume the SLO error budget. Shutdown shedding is
 *  excluded: draining a stopping server is not a service failure. */
bool
isSloError(Outcome outcome)
{
    return outcome == Outcome::failedInternal ||
           outcome == Outcome::rejectedDeadline ||
           outcome == Outcome::rejectedQueueFull ||
           outcome == Outcome::rejectedUnknownModel ||
           outcome == Outcome::rejectedTenantQuota;
}

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double
secondsUntil(Clock::time_point deadline)
{
    if (deadline == Clock::time_point::max())
        return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(deadline - Clock::now()).count();
}

/** Nearest-neighbour upsample of a degraded render back to the
 *  requested resolution, so clients always receive w x h frames. */
Image
upsample(const Image &src, int w, int h)
{
    Image out(w, h);
    for (int y = 0; y < h; ++y) {
        const int sy = std::min(y * src.height() / h, src.height() - 1);
        for (int x = 0; x < w; ++x) {
            const int sx = std::min(x * src.width() / w, src.width() - 1);
            out.at(x, y) = src.at(sx, sy);
        }
    }
    return out;
}

} // namespace

RenderServer::RenderServer(ModelRegistry &registry, const ServeConfig &cfg)
    : registry_(registry),
      cfg_(cfg),
      sessions_(cfg.sessionStore),
      queue_([&cfg] {
          QueueConfig qc;
          qc.capacity = static_cast<std::size_t>(std::max(cfg.queueCapacity, 1));
          qc.qos = cfg.qos;
          return qc;
      }()),
      pool_(std::max(cfg.renderThreads, 1))
{
    if (cfg_.maxInFlight <= 0)
        cfg_.maxInFlight = 2 * std::max(cfg.renderThreads, 1);
    // Expose this server's stats process-wide; the collector name only
    // keys unregistration (~ServerStats), so a counter keeps servers
    // that coexist (benches sweep thread counts) from colliding.
    static std::atomic<std::uint64_t> server_seq{0};
    const unsigned long long seq = server_seq.fetch_add(1);
    stats_.registerWith(obs::MetricsRegistry::global(),
                        strprintf("serve.server%llu", seq));
    sessions_.registerWith(obs::MetricsRegistry::global(),
                           strprintf("serve.sessions%llu", seq));
    if (cfg_.slo.enabled) {
        slo_ = std::make_unique<obs::SloMonitor>(
            cfg_.slo, [](const obs::SloWindowReport &report) {
                obs::Tracer::instance().recordInstant(
                    "slo", report.errorBurn > report.latencyBurn
                               ? "breach_error_budget"
                               : "breach_latency_budget");
                warn("SLO breach: %llu/%llu requests over target "
                     "(burn latency %.2f error %.2f), worst id %llu "
                     "(%.2f ms)",
                     static_cast<unsigned long long>(report.overTarget),
                     static_cast<unsigned long long>(report.requests),
                     report.latencyBurn, report.errorBurn,
                     static_cast<unsigned long long>(report.worstRequestId),
                     report.worstLatencyMs);
                obs::FlightRecorder::instance().triggerDump("slo_breach");
            });
        slo_->registerWith(obs::MetricsRegistry::global(),
                           strprintf("serve.slo%llu", seq));
    }
    dispatcher_ = std::thread([this]() { dispatchLoop(); });
}

RenderServer::~RenderServer()
{
    shutdown();
}

std::future<RenderResponse>
RenderServer::submit(RenderRequest request)
{
    QueuedRequest qr;
    qr.request = std::move(request);
    qr.enqueued = Clock::now();
    qr.id = next_id_.fetch_add(1);
    // Mint the request's causal trace context: the request id plus the
    // id of the root "request" span finish() will emit. Every span from
    // here to completion — including tile renders on pool workers —
    // parents into this tree.
    obs::Tracer &tracer = obs::Tracer::instance();
    qr.request.trace.requestId = qr.id;
    qr.request.trace.parentSpanId =
        tracer.capturing() ? tracer.nextSpanId() : 0;
    obs::ScopedTraceContext trace_ctx(qr.request.trace);
    F3D_TRACE_SPAN("serve", "submit");
    std::future<RenderResponse> future = qr.promise.get_future();

    stats_.recordSubmitted(queue_.depth());

    {
        // Count the request as pending *before* the push so drain()
        // never misses it, then roll back if admission failed.
        std::lock_guard<std::mutex> lock(flight_mutex_);
        ++pending_;
    }
    const PushResult admitted = queue_.push(std::move(qr));
    if (admitted != PushResult::ok) {
        // NB: push leaves qr intact on failure.
        RenderResponse response;
        switch (admitted) {
          case PushResult::closed:
            response.outcome = Outcome::rejectedShutdown;
            break;
          case PushResult::tenantQuota:
            response.outcome = Outcome::rejectedTenantQuota;
            break;
          default:
            response.outcome = Outcome::rejectedQueueFull;
            break;
        }
        response.id = qr.id;
        response.latencyMs = msSince(qr.enqueued);
        finish(qr, std::move(response));
    }
    return future;
}

void
RenderServer::dispatchLoop()
{
    std::vector<QueuedRequest> batch;
    while (queue_.popBatch(batch, cfg_.maxBatch)) {
        F3D_TRACE_SPAN_ARG("serve", "dispatch_batch", batch.size());
        stats_.recordBatch(static_cast<int>(batch.size()));

        // One queue-wait span per request, backdated to its enqueue
        // time: in a Perfetto view the wait sits directly before the
        // render span of the same request id.
        {
            obs::Tracer &tracer = obs::Tracer::instance();
            const auto popped = Clock::now();
            for (QueuedRequest &qr : batch)
                qr.dispatched = popped;
            if (tracer.capturing()) {
                const std::uint64_t now = tracer.toNs(popped);
                for (const QueuedRequest &qr : batch) {
                    obs::ScopedTraceContext trace_ctx(qr.request.trace);
                    tracer.recordArg("serve", "queue_wait",
                                     tracer.toNs(qr.enqueued), now, qr.id);
                }
            }
        }

        for (QueuedRequest &qr : batch) {
            // Dispatcher-side work runs under the request's context so
            // shed outcomes and the backpressure wait attribute to it.
            obs::ScopedTraceContext trace_ctx(qr.request.trace);
            if (shed_on_close_.load(std::memory_order_relaxed)) {
                // stop() is shedding the backlog: terminal outcome,
                // no render.
                RenderResponse response;
                response.outcome = Outcome::rejectedShutdown;
                finish(qr, std::move(response));
                continue;
            }

            // Model resolution happens on the pool worker
            // (executeRequest), not here: resolving an evicted model
            // can stall on a reload, and that stall must cost one
            // worker, never the dispatcher serving the whole fleet.

            // Backpressure: keep at most maxInFlight requests in the
            // pool so overload accumulates in the bounded queue.
            {
                std::unique_lock<std::mutex> lock(flight_mutex_);
                flight_cv_.wait(lock,
                                [this]() { return in_flight_ < cfg_.maxInFlight; });
                ++in_flight_;
            }
            auto task = std::make_shared<QueuedRequest>(std::move(qr));
            // The pool captures the current (= this request's) context
            // at enqueue and restores it around the task, so the
            // executing worker inherits it even when stolen by a
            // helping thread.
            pool_.submit([this, task]() {
                executeRequest(std::move(*task));
                // Notify under the lock: a drain()ing thread may destroy
                // this condition variable as soon as it observes the
                // decrement, so the broadcast must be ordered before it.
                std::lock_guard<std::mutex> lock(flight_mutex_);
                --in_flight_;
                flight_cv_.notify_all();
            });
        }
        batch.clear();
    }
}

void
RenderServer::executeRequest(QueuedRequest qr)
{
    // Belt and braces: the pool already restored the enqueue context,
    // but executeRequest must also be correct when called inline.
    obs::ScopedTraceContext trace_ctx(qr.request.trace);
    obs::Tracer &tracer = obs::Tracer::instance();
    if (tracer.capturing() && qr.dispatched.time_since_epoch().count() != 0) {
        // Backdated span for the pop-to-execution gap (backpressure
        // wait plus pool queueing), so the causal tree accounts for it.
        tracer.recordArg("serve", "dispatch_wait", tracer.toNs(qr.dispatched),
                         tracer.nowNs(), qr.id);
    }
    F3D_TRACE_SPAN("serve", "execute");

    // Resolve-and-pin: the handle keeps this entry alive for the whole
    // request even if it is evicted, swapped, or removed mid-render, so
    // every tile of the request sees one model version (never a torn
    // read). An evicted model transparently reloads here, riding the
    // retry + breaker path — the request stalls bounded, the dispatcher
    // keeps flowing.
    const AcquireResult acq = registry_.acquireOrReload(qr.request.model);
    if (!acq.entry) {
        RenderResponse response;
        // Unknown name → client error; known-but-unloadable (reload
        // failed, breaker open) → server fault.
        response.outcome = acq.known ? Outcome::failedInternal
                                     : Outcome::rejectedUnknownModel;
        if (acq.known)
            warn("RenderServer: request %llu for '%s' failed to reload (%s)",
                 static_cast<unsigned long long>(qr.id),
                 qr.request.model.c_str(), nerf::loadStatusName(acq.status));
        finish(qr, std::move(response));
        return;
    }
    if (acq.reloaded)
        F3D_TRACE_SPAN_ARG("serve", "reload_on_demand", qr.id);
    const ModelEntry *entry = acq.entry.get();

    RenderResponse response;
    try {
        response = runLadder(qr, entry);
    } catch (const std::exception &e) {
        // A worker exception must still resolve the promise: without
        // this, the waiter blocks forever and in_flight_ never drops
        // (the packaged_task inside ThreadPool::submit would swallow
        // the exception into a future nobody reads).
        F3D_TRACE_SPAN_ARG("serve", "worker_exception", qr.id);
        warn("RenderServer: request %llu failed in worker: %s",
             static_cast<unsigned long long>(qr.id), e.what());
        // Preserve the spans and log lines leading up to the failure.
        obs::FlightRecorder::instance().triggerDump("worker_exception");
        response = RenderResponse{};
        response.outcome = Outcome::failedInternal;
    }
    finish(qr, std::move(response));
}

RenderResponse
RenderServer::runLadder(QueuedRequest &qr, const ModelEntry *entry)
{
    if (F3D_FAULT_POINT("serve.dispatch.slow")) {
        // Chaos: pretend this worker stalled (page fault, thermal
        // throttle, noisy neighbour) for faultSlowRenderMs.
        F3D_TRACE_SPAN_ARG("serve", "fault_slow", qr.id);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(cfg_.faultSlowRenderMs));
    }
    if (F3D_FAULT_POINT("serve.dispatch.throw"))
        throw std::runtime_error("injected worker fault (serve.dispatch.throw)");

    const nerf::Camera &camera = qr.request.camera;
    const std::uint64_t pixels =
        static_cast<std::uint64_t>(camera.width()) * camera.height();

    RenderResponse response;
    response.id = qr.id;

    const double budget = secondsUntil(qr.request.deadline);
    if (budget <= 0.0) {
        F3D_TRACE_SPAN_ARG("serve", "shed_deadline_expired", qr.id);
        response.outcome = Outcome::rejectedDeadline;
        return response;
    }

    // Accelerate rung, above the degrade ladder: a session request
    // whose previous frame is still valid (same model, same deploy
    // epoch, within TTL) is served by temporal reprojection — warp the
    // cached frame, ray-march only the invalidated tiles.
    if (tryReproject(qr, entry, response))
        return response;

    const double est_full = estimatedSecondsPerPixel() *
                            static_cast<double>(pixels) * cfg_.estimateHeadroom;

    // Every render below hands this request's rays to the batched SoA
    // evaluation core (tiles submit ray batches through
    // NerfModel::forwardBatch); the span records the ray count so batch
    // occupancy is visible next to the ladder decisions.
    F3D_TRACE_SPAN_ARG("serve", "dispatch_rays", pixels);

    const auto t0 = Clock::now();
    if (est_full <= budget) {
        // Full-resolution render; this frame also refreshes the
        // model's warp source.
        F3D_TRACE_SPAN_ARG("serve", "render_full", qr.id);
        nerf::DepthFrame frame = nerf::renderDepthFrameTiled(
            *entry->model, &entry->grid, camera, cfg_.render, &pool_);
        noteRenderCost(std::chrono::duration<double>(Clock::now() - t0).count(),
                       pixels);
        stats_.recordRaysMarched(pixels);
        response.image = frame.color;
        response.outcome = Outcome::renderedFull;
        rememberFullFrame(qr, entry, std::move(frame));
        return response;
    }

    if (est_full / 4.0 <= budget) {
        // Degrade step 1: drop resolution 2x per axis and upsample.
        F3D_TRACE_SPAN_ARG("serve", "render_half", qr.id);
        const nerf::Camera half = camera.withResolution(
            std::max(camera.width() / 2, 1), std::max(camera.height() / 2, 1));
        const Image small = nerf::renderImageTiled(*entry->model, &entry->grid,
                                                   half, cfg_.render, &pool_);
        noteRenderCost(std::chrono::duration<double>(Clock::now() - t0).count(),
                       static_cast<std::uint64_t>(half.width()) * half.height());
        stats_.recordRaysMarched(static_cast<std::uint64_t>(half.width()) *
                                 half.height());
        response.image = upsample(small, camera.width(), camera.height());
        response.outcome = Outcome::renderedHalf;
        return response;
    }

    if (const auto prev = cachedFrame(entry->name)) {
        // Degrade step 2: reproject the model's last rendered frame
        // (frame reuse a la MetaVRain); uncovered pixels keep the
        // background colour rather than costing a re-render.
        F3D_TRACE_SPAN_ARG("serve", "render_warp", qr.id);
        nerf::WarpResult warped = nerf::forwardWarp(*prev, camera);
        for (int y = 0; y < camera.height(); ++y) {
            for (int x = 0; x < camera.width(); ++x) {
                const std::size_t idx =
                    static_cast<std::size_t>(y) * camera.width() + x;
                if (!warped.covered[idx])
                    warped.image.at(x, y) = cfg_.render.render.background;
            }
        }
        response.image = std::move(warped.image);
        response.outcome = Outcome::renderedWarp;
        return response;
    }

    // Out of degrade steps: shed explicitly instead of blocking.
    F3D_TRACE_SPAN_ARG("serve", "shed_no_degrade_left", qr.id);
    response.outcome = Outcome::rejectedDeadline;
    return response;
}

void
RenderServer::finish(QueuedRequest &qr, RenderResponse &&response)
{
    response.id = qr.id;
    response.latencyMs = msSince(qr.enqueued);
    obs::Tracer &tracer = obs::Tracer::instance();
    if (tracer.capturing() && qr.request.trace.parentSpanId != 0) {
        // The root span of this request's causal tree, backdated to
        // submit time: its duration IS the measured latency, its span
        // id was minted at submit so every other span parents into it,
        // and its arg records the outcome.
        obs::ScopedTraceContext trace_ctx(
            obs::TraceContext{qr.id, 0});
        tracer.recordSpan("serve", "request", tracer.toNs(qr.enqueued),
                          tracer.nowNs(), qr.request.trace.parentSpanId, 0,
                          static_cast<std::uint64_t>(response.outcome), true);
    }
    stats_.recordOutcome(response.outcome, response.latencyMs, qr.id);
    stats_.recordTenant(qr.request.tenant, response.outcome,
                        response.latencyMs);
    if (slo_)
        slo_->record(response.latencyMs, isSloError(response.outcome), qr.id);
    if (qr.tenantSlot) {
        // Give the tenant's in-flight slot back; a dispatcher blocked
        // on this tenant's cap wakes here. Every popped request passes
        // through finish() exactly once (render, shed, or throw), so
        // slots cannot leak.
        qr.tenantSlot = false;
        queue_.release(qr.request.tenant);
    }
    qr.promise.set_value(std::move(response));
    // Notify under the lock (see dispatchLoop): keeps the broadcast
    // ordered before any waiter that goes on to destroy the server.
    std::lock_guard<std::mutex> lock(flight_mutex_);
    --pending_;
    flight_cv_.notify_all();
}

void
RenderServer::noteRenderCost(double seconds, std::uint64_t pixels)
{
    if (pixels == 0)
        return;
    const double per_pixel = seconds / static_cast<double>(pixels);
    std::lock_guard<std::mutex> lock(estimate_mutex_);
    est_seconds_per_pixel_ = est_seconds_per_pixel_ == 0.0
                                 ? per_pixel
                                 : 0.7 * est_seconds_per_pixel_ + 0.3 * per_pixel;
}

double
RenderServer::estimatedSecondsPerPixel() const
{
    std::lock_guard<std::mutex> lock(estimate_mutex_);
    return est_seconds_per_pixel_;
}

bool
RenderServer::tryReproject(QueuedRequest &qr, const ModelEntry *entry,
                           RenderResponse &response)
{
    if (!cfg_.reproject.enabled || qr.request.session.empty())
        return false;
    auto prev = sessions_.get(qr.request.session, entry->name, entry->epoch);
    stats_.recordSessionLookup(prev.has_value());
    if (!prev)
        return false;

    F3D_TRACE_SPAN_ARG("serve", "render_reproject", qr.id);
    ReprojectOutput out =
        reprojectRender(*entry->model, &entry->grid, qr.request.camera, *prev,
                        cfg_.render, cfg_.reproject, &pool_);
    // Feed the cost model with the pixels that were actually marched —
    // the estimate stays in per-ray-marched-pixel units either way.
    if (out.stats.raysRendered > 0 && out.stats.renderSeconds > 0.0)
        noteRenderCost(out.stats.renderSeconds, out.stats.raysRendered);
    stats_.recordReproject(out.stats);

    response.image = out.frame.color;
    response.outcome = out.stats.reprojected ? Outcome::renderedReproject
                                             : Outcome::renderedFull;

    auto shared = std::make_shared<const nerf::DepthFrame>(std::move(out.frame));
    SessionFrame sf;
    sf.frame = shared;
    sf.model = entry->name;
    sf.epoch = entry->epoch;
    sf.tileSize = cfg_.reproject.tileSize;
    sf.tileAge = std::move(out.tileAge);
    sessions_.put(qr.request.session, std::move(sf));
    if (!out.stats.reprojected) {
        // The fallback was a true full render: refresh the model-level
        // warp-degrade source too.
        cacheFrame(entry->name, std::move(shared));
    }
    return true;
}

void
RenderServer::rememberFullFrame(const QueuedRequest &qr, const ModelEntry *entry,
                                nerf::DepthFrame &&frame)
{
    auto shared = std::make_shared<const nerf::DepthFrame>(std::move(frame));
    if (cfg_.reproject.enabled && !qr.request.session.empty()) {
        // Seed the session cache: the next request on this stream can
        // reproject instead of full-rendering.
        SessionFrame sf;
        sf.frame = shared;
        sf.model = entry->name;
        sf.epoch = entry->epoch;
        sf.tileSize = cfg_.reproject.tileSize;
        sf.tileAge = freshTileAges(qr.request.camera, cfg_.reproject.tileSize,
                                   cfg_.reproject.maxTileAge);
        sessions_.put(qr.request.session, std::move(sf));
    }
    cacheFrame(entry->name, std::move(shared));
}

void
RenderServer::cacheFrame(const std::string &model,
                         std::shared_ptr<const nerf::DepthFrame> frame)
{
    std::lock_guard<std::mutex> lock(cache_mutex_);
    last_frames_[model] = std::move(frame);
}

std::shared_ptr<const nerf::DepthFrame>
RenderServer::cachedFrame(const std::string &model) const
{
    std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = last_frames_.find(model);
    return it == last_frames_.end() ? nullptr : it->second;
}

void
RenderServer::drain()
{
    // in_flight_ drops after the request's promise is set; waiting for
    // both means no worker still has its hands on server state when
    // drain() returns (the destructor relies on this).
    std::unique_lock<std::mutex> lock(flight_mutex_);
    flight_cv_.wait(lock, [this]() { return pending_ == 0 && in_flight_ == 0; });
}

void
RenderServer::drainAndPrintStats(std::ostream &os)
{
    drain();
    stats_.dump(os);
}

void
RenderServer::shutdown()
{
    if (!queue_.closed())
        queue_.close();
    drain();
    if (dispatcher_.joinable())
        dispatcher_.join();
    // Close the partial SLO window so short runs still report burn
    // rates (and can still breach) before the server goes away.
    if (slo_)
        slo_->closeWindow();
}

void
RenderServer::stop()
{
    // Order matters: flag first, so anything the dispatcher pops after
    // the close() drains as rejectedShutdown instead of rendering.
    shed_on_close_.store(true, std::memory_order_relaxed);
    shutdown();
}

} // namespace fusion3d::serve
