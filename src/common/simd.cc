#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define F3D_SIMD_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define F3D_SIMD_NEON 1
#endif

namespace fusion3d::simd
{

namespace
{

std::atomic<bool> g_force_scalar{false};

bool
envDisabled()
{
    static const bool disabled = [] {
        const char *e = std::getenv("FUSION3D_SIMD_DISABLED");
        return e != nullptr && *e != '\0';
    }();
    return disabled;
}

Caps
detectCaps()
{
    Caps c;
#if defined(F3D_SIMD_X86)
    c.avx2 = __builtin_cpu_supports("avx2");
    c.fma = __builtin_cpu_supports("fma");
    c.f16c = __builtin_cpu_supports("f16c");
    c.avx512f = __builtin_cpu_supports("avx512f");
#endif
#if defined(F3D_SIMD_NEON)
    c.neon = true;
#endif
    return c;
}

// ---------------------------------------------------------------------------
// Scalar variants. These are the reference loops the AVX2/NEON kernels
// must match bit-for-bat (lane = sample, accumulation order preserved);
// they are also what the existing Mlp/HashGridEncoding batch loops
// compiled to, so routing through them changes nothing.
// ---------------------------------------------------------------------------

/** Samples per GEMM tile: accumulators stay register/L1-resident while
 *  each weight row is reused across the whole tile. */
constexpr std::size_t kBatchBlock = 64;

void
mlpLayerScalar(const float *w, const float *b, const float *x, float *z,
               float *a, int fan_in, int fan_out, std::size_t n, bool relu)
{
    for (std::size_t n0 = 0; n0 < n; n0 += kBatchBlock) {
        const std::size_t nb = std::min(kBatchBlock, n - n0);
        for (int o = 0; o < fan_out; ++o) {
            const float *wrow = w + static_cast<std::size_t>(o) * fan_in;
            // Per sample this accumulates bias-first then fan-in
            // ascending — the exact order of the scalar Mlp::forward().
            float acc[kBatchBlock];
            for (std::size_t j = 0; j < nb; ++j)
                acc[j] = b[o];
            for (int i = 0; i < fan_in; ++i) {
                const float wv = wrow[i];
                const float *xrow = x + static_cast<std::size_t>(i) * n + n0;
                for (std::size_t j = 0; j < nb; ++j)
                    acc[j] += wv * xrow[j];
            }
            float *zrow = z + static_cast<std::size_t>(o) * n + n0;
            float *arow = a + static_cast<std::size_t>(o) * n + n0;
            for (std::size_t j = 0; j < nb; ++j) {
                zrow[j] = acc[j];
                arow[j] = relu ? std::max(acc[j], 0.0f) : acc[j];
            }
        }
    }
}

void
gatherInterp2Scalar(const float *tab, const std::uint32_t *idx,
                    const float *wts, std::size_t nb, float *out0, float *out1)
{
    for (std::size_t j = 0; j < nb; ++j) {
        float a0 = 0.0f, a1 = 0.0f;
        for (int c = 0; c < 8; ++c) {
            const std::size_t at = c * kGatherBlock + j;
            const float *q =
                tab + static_cast<std::size_t>(idx[at]) * 2;
            const float wv = wts[at];
            a0 += wv * q[0];
            a1 += wv * q[1];
        }
        out0[j] = a0;
        out1[j] = a1;
    }
}

void
gatherInterp2F16Scalar(const std::uint16_t *tab, const std::uint32_t *idx,
                       const float *wts, std::size_t nb, float *out0,
                       float *out1)
{
    for (std::size_t j = 0; j < nb; ++j) {
        float a0 = 0.0f, a1 = 0.0f;
        for (int c = 0; c < 8; ++c) {
            const std::size_t at = c * kGatherBlock + j;
            const std::uint16_t *q =
                tab + static_cast<std::size_t>(idx[at]) * 2;
            const float wv = wts[at];
            a0 += wv * halfBitsToFloat(q[0]);
            a1 += wv * halfBitsToFloat(q[1]);
        }
        out0[j] = a0;
        out1[j] = a1;
    }
}

void
gatherInterp2I8Scalar(const std::int8_t *tab, float scale,
                      const std::uint32_t *idx, const float *wts,
                      std::size_t nb, float *out0, float *out1)
{
    for (std::size_t j = 0; j < nb; ++j) {
        float a0 = 0.0f, a1 = 0.0f;
        for (int c = 0; c < 8; ++c) {
            const std::size_t at = c * kGatherBlock + j;
            const std::int8_t *q =
                tab + static_cast<std::size_t>(idx[at]) * 2;
            const float wv = wts[at];
            a0 += wv * (static_cast<float>(q[0]) * scale);
            a1 += wv * (static_cast<float>(q[1]) * scale);
        }
        out0[j] = a0;
        out1[j] = a1;
    }
}

constexpr Kernels kScalarKernels = {
    "scalar",           mlpLayerScalar,        gatherInterp2Scalar,
    gatherInterp2F16Scalar, gatherInterp2I8Scalar,
};

// ---------------------------------------------------------------------------
// AVX2 variants (x86-64). Compiled per-function with target attributes
// so no file needs -mavx2; the dispatcher only selects them when CPUID
// reports avx2+fma+f16c. Multiplies and adds stay SEPARATE intrinsics:
// with -ffp-contract=off the scalar baseline never fuses, so a
// single-rounding FMA here would break bit-equality.
// ---------------------------------------------------------------------------
#if defined(F3D_SIMD_X86)

__attribute__((target("avx2,fma,f16c"))) void
mlpLayerAvx2(const float *w, const float *b, const float *x, float *z,
             float *a, int fan_in, int fan_out, std::size_t n, bool relu)
{
    const __m256 zero = _mm256_setzero_ps();
    for (int o = 0; o < fan_out; ++o) {
        const float *wrow = w + static_cast<std::size_t>(o) * fan_in;
        float *zrow = z + static_cast<std::size_t>(o) * n;
        float *arow = a + static_cast<std::size_t>(o) * n;
        const __m256 bias = _mm256_set1_ps(b[o]);
        std::size_t j = 0;
        for (; j + 16 <= n; j += 16) {
            __m256 acc0 = bias;
            __m256 acc1 = bias;
            for (int i = 0; i < fan_in; ++i) {
                const __m256 wv = _mm256_set1_ps(wrow[i]);
                const float *xrow = x + static_cast<std::size_t>(i) * n + j;
                acc0 = _mm256_add_ps(acc0,
                                     _mm256_mul_ps(wv, _mm256_loadu_ps(xrow)));
                acc1 = _mm256_add_ps(
                    acc1, _mm256_mul_ps(wv, _mm256_loadu_ps(xrow + 8)));
            }
            _mm256_storeu_ps(zrow + j, acc0);
            _mm256_storeu_ps(zrow + j + 8, acc1);
            if (relu) {
                acc0 = _mm256_max_ps(zero, acc0);
                acc1 = _mm256_max_ps(zero, acc1);
            }
            _mm256_storeu_ps(arow + j, acc0);
            _mm256_storeu_ps(arow + j + 8, acc1);
        }
        for (; j + 8 <= n; j += 8) {
            __m256 acc = bias;
            for (int i = 0; i < fan_in; ++i) {
                const __m256 wv = _mm256_set1_ps(wrow[i]);
                const float *xrow = x + static_cast<std::size_t>(i) * n + j;
                acc = _mm256_add_ps(acc,
                                    _mm256_mul_ps(wv, _mm256_loadu_ps(xrow)));
            }
            _mm256_storeu_ps(zrow + j, acc);
            if (relu)
                acc = _mm256_max_ps(zero, acc);
            _mm256_storeu_ps(arow + j, acc);
        }
        for (; j < n; ++j) {
            float acc = b[o];
            for (int i = 0; i < fan_in; ++i)
                acc += wrow[i] * x[static_cast<std::size_t>(i) * n + j];
            zrow[j] = acc;
            arow[j] = relu ? std::max(acc, 0.0f) : acc;
        }
    }
}

__attribute__((target("avx2,fma,f16c"))) void
gatherInterp2Avx2(const float *tab, const std::uint32_t *idx, const float *wts,
                  std::size_t nb, float *out0, float *out1)
{
    std::size_t j = 0;
    for (; j + 8 <= nb; j += 8) {
        __m256 acc0 = _mm256_setzero_ps();
        __m256 acc1 = _mm256_setzero_ps();
        for (int c = 0; c < 8; ++c) {
            const std::size_t at = c * kGatherBlock + j;
            const __m256i vi = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(idx + at));
            const __m256i vi2 = _mm256_slli_epi32(vi, 1);
            const __m256 q0 = _mm256_i32gather_ps(tab, vi2, 4);
            const __m256 q1 = _mm256_i32gather_ps(tab + 1, vi2, 4);
            const __m256 wv = _mm256_loadu_ps(wts + at);
            acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(wv, q0));
            acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(wv, q1));
        }
        _mm256_storeu_ps(out0 + j, acc0);
        _mm256_storeu_ps(out1 + j, acc1);
    }
    if (j < nb)
        gatherInterp2Scalar(tab, idx + j, wts + j, nb - j, out0 + j, out1 + j);
}

__attribute__((target("avx2,fma,f16c"))) void
gatherInterp2F16Avx2(const std::uint16_t *tab, const std::uint32_t *idx,
                     const float *wts, std::size_t nb, float *out0,
                     float *out1)
{
    // A two-feature binary16 entry is one 32-bit word: one gather
    // fetches both features, F16C widens them exactly.
    const int *tab32 = reinterpret_cast<const int *>(tab);
    const __m256i lomask = _mm256_set1_epi32(0xffff);
    std::size_t j = 0;
    for (; j + 8 <= nb; j += 8) {
        __m256 acc0 = _mm256_setzero_ps();
        __m256 acc1 = _mm256_setzero_ps();
        for (int c = 0; c < 8; ++c) {
            const std::size_t at = c * kGatherBlock + j;
            const __m256i vi = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(idx + at));
            const __m256i words = _mm256_i32gather_epi32(tab32, vi, 4);
            const __m256i lo = _mm256_and_si256(words, lomask);
            const __m256i hi = _mm256_srli_epi32(words, 16);
            const __m128i lo16 = _mm_packus_epi32(
                _mm256_castsi256_si128(lo), _mm256_extracti128_si256(lo, 1));
            const __m128i hi16 = _mm_packus_epi32(
                _mm256_castsi256_si128(hi), _mm256_extracti128_si256(hi, 1));
            const __m256 q0 = _mm256_cvtph_ps(lo16);
            const __m256 q1 = _mm256_cvtph_ps(hi16);
            const __m256 wv = _mm256_loadu_ps(wts + at);
            acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(wv, q0));
            acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(wv, q1));
        }
        _mm256_storeu_ps(out0 + j, acc0);
        _mm256_storeu_ps(out1 + j, acc1);
    }
    if (j < nb)
        gatherInterp2F16Scalar(tab, idx + j, wts + j, nb - j, out0 + j,
                               out1 + j);
}

__attribute__((target("avx2,fma,f16c"))) void
gatherInterp2I8Avx2(const std::int8_t *tab, float scale,
                    const std::uint32_t *idx, const float *wts, std::size_t nb,
                    float *out0, float *out1)
{
    // 32-bit gathers at byte stride 2 over-read 2 bytes past the entry;
    // callers pad the packed table (see HashGridEncoding::buildQuantized).
    const int *tab32 = reinterpret_cast<const int *>(tab);
    const __m256 vscale = _mm256_set1_ps(scale);
    std::size_t j = 0;
    for (; j + 8 <= nb; j += 8) {
        __m256 acc0 = _mm256_setzero_ps();
        __m256 acc1 = _mm256_setzero_ps();
        for (int c = 0; c < 8; ++c) {
            const std::size_t at = c * kGatherBlock + j;
            const __m256i vi = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(idx + at));
            const __m256i words = _mm256_i32gather_epi32(tab32, vi, 2);
            const __m256i b0 =
                _mm256_srai_epi32(_mm256_slli_epi32(words, 24), 24);
            const __m256i b1 =
                _mm256_srai_epi32(_mm256_slli_epi32(words, 16), 24);
            const __m256 q0 =
                _mm256_mul_ps(_mm256_cvtepi32_ps(b0), vscale);
            const __m256 q1 =
                _mm256_mul_ps(_mm256_cvtepi32_ps(b1), vscale);
            const __m256 wv = _mm256_loadu_ps(wts + at);
            acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(wv, q0));
            acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(wv, q1));
        }
        _mm256_storeu_ps(out0 + j, acc0);
        _mm256_storeu_ps(out1 + j, acc1);
    }
    if (j < nb)
        gatherInterp2I8Scalar(tab, scale, idx + j, wts + j, nb - j, out0 + j,
                              out1 + j);
}

constexpr Kernels kAvx2Kernels = {
    "avx2",           mlpLayerAvx2,        gatherInterp2Avx2,
    gatherInterp2F16Avx2, gatherInterp2I8Avx2,
};

#endif // F3D_SIMD_X86

// ---------------------------------------------------------------------------
// NEON variants (aarch64). The GEMM microkernel vectorizes 4-wide with
// separate mul/add (no vfma — same contraction contract as AVX2); the
// gather kernels stay scalar since NEON has no gather instruction and
// the index loads dominate either way.
// ---------------------------------------------------------------------------
#if defined(F3D_SIMD_NEON)

void
mlpLayerNeon(const float *w, const float *b, const float *x, float *z,
             float *a, int fan_in, int fan_out, std::size_t n, bool relu)
{
    const float32x4_t zero = vdupq_n_f32(0.0f);
    for (int o = 0; o < fan_out; ++o) {
        const float *wrow = w + static_cast<std::size_t>(o) * fan_in;
        float *zrow = z + static_cast<std::size_t>(o) * n;
        float *arow = a + static_cast<std::size_t>(o) * n;
        const float32x4_t bias = vdupq_n_f32(b[o]);
        std::size_t j = 0;
        for (; j + 8 <= n; j += 8) {
            float32x4_t acc0 = bias;
            float32x4_t acc1 = bias;
            for (int i = 0; i < fan_in; ++i) {
                const float32x4_t wv = vdupq_n_f32(wrow[i]);
                const float *xrow = x + static_cast<std::size_t>(i) * n + j;
                acc0 = vaddq_f32(acc0, vmulq_f32(wv, vld1q_f32(xrow)));
                acc1 = vaddq_f32(acc1, vmulq_f32(wv, vld1q_f32(xrow + 4)));
            }
            vst1q_f32(zrow + j, acc0);
            vst1q_f32(zrow + j + 4, acc1);
            if (relu) {
                acc0 = vmaxq_f32(zero, acc0);
                acc1 = vmaxq_f32(zero, acc1);
            }
            vst1q_f32(arow + j, acc0);
            vst1q_f32(arow + j + 4, acc1);
        }
        for (; j < n; ++j) {
            float acc = b[o];
            for (int i = 0; i < fan_in; ++i)
                acc += wrow[i] * x[static_cast<std::size_t>(i) * n + j];
            zrow[j] = acc;
            arow[j] = relu ? std::max(acc, 0.0f) : acc;
        }
    }
}

constexpr Kernels kNeonKernels = {
    "neon",           mlpLayerNeon,        gatherInterp2Scalar,
    gatherInterp2F16Scalar, gatherInterp2I8Scalar,
};

#endif // F3D_SIMD_NEON

Dispatch
hardwareDispatch()
{
    static const Dispatch d = [] {
        const Caps &c = caps();
#if defined(F3D_SIMD_X86)
        if (c.avx2 && c.fma && c.f16c)
            return Dispatch::avx2;
#endif
#if defined(F3D_SIMD_NEON)
        if (c.neon)
            return Dispatch::neon;
#endif
        (void)c;
        return Dispatch::scalar;
    }();
    return d;
}

void
registerCpuFeatureMetrics()
{
    static const bool once = [] {
        obs::MetricsRegistry::global().registerCollector(
            "process.cpu_features", [](obs::MetricSink &sink) {
                const Caps &c = caps();
                sink.labeledGauge(
                    "process.cpu_features",
                    std::string("avx2=\"") + (c.avx2 ? "1" : "0") +
                        "\",fma=\"" + (c.fma ? "1" : "0") + "\",f16c=\"" +
                        (c.f16c ? "1" : "0") + "\",avx512f=\"" +
                        (c.avx512f ? "1" : "0") + "\",neon=\"" +
                        (c.neon ? "1" : "0") + "\",dispatch=\"" +
                        dispatchName() + "\"",
                    1.0);
            });
        return true;
    }();
    (void)once;
}

} // namespace

const Caps &
caps()
{
    static const Caps c = detectCaps();
    return c;
}

const char *
dispatchName(Dispatch d)
{
    switch (d) {
    case Dispatch::scalar:
        return "scalar";
    case Dispatch::avx2:
        return "avx2";
    case Dispatch::neon:
        return "neon";
    }
    return "scalar";
}

Dispatch
activeDispatch()
{
    registerCpuFeatureMetrics();
    if (envDisabled() || g_force_scalar.load(std::memory_order_relaxed))
        return Dispatch::scalar;
    return hardwareDispatch();
}

const char *
dispatchName()
{
    return dispatchName(activeDispatch());
}

void
forceScalar(bool on)
{
    g_force_scalar.store(on, std::memory_order_relaxed);
}

bool
scalarForced()
{
    return envDisabled() || g_force_scalar.load(std::memory_order_relaxed);
}

const Kernels &
kernels()
{
    switch (activeDispatch()) {
#if defined(F3D_SIMD_X86)
    case Dispatch::avx2:
        return kAvx2Kernels;
#endif
#if defined(F3D_SIMD_NEON)
    case Dispatch::neon:
        return kNeonKernels;
#endif
    default:
        return kScalarKernels;
    }
}

} // namespace fusion3d::simd
