/**
 * @file
 * Chiplet-based system model (Fig. 14(a), Discussion): an in-package
 * buffer lets the four compute chips be *temporally* reused for models
 * larger than their resident hash tables — the model is processed in
 * chunks, reloading tables from the buffer over the high-bandwidth
 * in-package interconnect while off-package traffic stays at 0.6 GB/s.
 */

#ifndef FUSION3D_MULTICHIP_CHIPLET_H_
#define FUSION3D_MULTICHIP_CHIPLET_H_

#include "multichip/io_module.h"

namespace fusion3d::multichip
{

/** Chiplet-package configuration. */
struct ChipletConfig
{
    /** Hash-table bytes resident across the compute chips. */
    double residentTableBytes = 4.0 * 640.0 * 1024.0;
    /** In-package interconnect bandwidth (the paper cites an InFO
     *  package at 89.6 GB/s [25]). */
    double inPackageBytesPerSec = 89.6e9;
    /** Off-package bandwidth budget (the USB-class link). */
    double offPackageBytesPerSec = 0.6e9;
    /** In-package buffer capacity, bytes (sized by ChipletIoModel). */
    double bufferBytes = 32.0 * 1024.0 * 1024.0;
};

/** Timing of one frame on the chiplet system. */
struct TemporalReuseResult
{
    /** Chunks the model is split into (1 = fully resident). */
    int passes = 1;
    /** Seconds spent reloading tables per frame. */
    double reloadSeconds = 0.0;
    /** Seconds of compute per frame (input). */
    double computeSeconds = 0.0;
    /** End-to-end frame seconds. */
    double seconds = 0.0;
    /** True when the model exceeds even the in-package buffer and the
     *  off-package link becomes the bottleneck. */
    bool offPackageBound = false;

    double fps() const { return seconds > 0.0 ? 1.0 / seconds : 0.0; }
};

/**
 * Run one frame of a model with @p model_bytes of tables on the chiplet
 * system, given the frame's compute time at full table residency.
 * Each extra pass re-runs the frame's rays against another model chunk,
 * so compute scales with the pass count while reloads overlap compute
 * of the previous pass.
 */
TemporalReuseResult chipletFrame(double model_bytes, double compute_seconds,
                                 const ChipletConfig &cfg = {});

} // namespace fusion3d::multichip

#endif // FUSION3D_MULTICHIP_CHIPLET_H_
