/**
 * @file
 * Static configuration of a Fusion-3D chip. Two canonical instances
 * mirror the paper: the taped-out prototype (Fig. 9) and the scaled-up
 * single-chip accelerator used for the Table-III comparison (five more
 * feature-interpolation cores and three more memory clusters).
 */

#ifndef FUSION3D_CHIP_CONFIG_H_
#define FUSION3D_CHIP_CONFIG_H_

#include <cstdint>
#include <string>

namespace fusion3d::chip
{

/** Hardware configuration of one chip. */
struct ChipConfig
{
    std::string name = "fusion3d";

    /** Nominal clock frequency in Hz (silicon: 600 MHz at 0.95 V). */
    double clockHz = 600e6;
    /** Nominal core supply voltage. */
    double coreVoltage = 0.95;

    // --- Sampling module (Stage I) ---
    /** Parallel sampling cores. */
    int samplingCores = 16;
    /** Pipelined rays/cycle through the normalized pre-processing unit. */
    double preprocRaysPerCycle = 1.0;
    /** Cycles per ray for the un-normalized (generic) intersection path:
     *  18 serialized divisions on an iterative divider. */
    int genericPreprocCyclesPerRay = 24;
    /** Extra cycles a sampling core spends emitting one valid sample
     *  (position/step record generation and buffer write) on top of
     *  the one-cycle occupancy probe every lattice step costs. */
    int samplingEmitCycles = 2;

    // --- Feature interpolation module (Stage II) ---
    /** Feature interpolation cores (prototype 5, scaled-up 10). */
    int interpCores = 10;
    /** SRAM banks per interpolation core (Level 2/3 tiling needs 8). */
    int sramBanksPerCore = 8;
    /** Feature bytes fetched per vertex access. */
    int bytesPerVertexFeature = 4;

    // --- Post-processing module (Stage III) ---
    /** MAC units in the MLP engine. */
    int mlpMacsPerCycle = 3072;
    /** Samples composited per cycle by the volume-rendering unit. */
    double renderSamplesPerCycle = 2.0;

    // --- Memory ---
    /** Memory clusters (prototype 2, scaled-up 5). */
    int memoryClusters = 2;
    /** SRAM per memory cluster in KB. */
    int sramPerClusterKb = 92;
    /** Hash-table SRAM in KB (paper: 2 x 5 x 64 KB on the scaled chip). */
    int hashTableSramKb = 640;

    // --- Physical ---
    /** Die area in mm^2 (scaled-up: 8.7). */
    double dieAreaMm2 = 8.7;
    /** Typical total power at nominal voltage/frequency in W. */
    double typicalPowerW = 1.5;

    /** Total on-chip SRAM in KB. */
    int
    totalSramKb() const
    {
        return memoryClusters * sramPerClusterKb + hashTableSramKb +
               scratchSramKb;
    }

    /** Controller/interface scratch SRAM in KB. */
    int scratchSramKb = 0;

    /** The taped-out 28 nm prototype chip (Fig. 9). */
    static ChipConfig prototype();

    /** The scaled-up single-chip accelerator of Table III. */
    static ChipConfig scaledUp();
};

} // namespace fusion3d::chip

#endif // FUSION3D_CHIP_CONFIG_H_
