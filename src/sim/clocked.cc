#include "sim/clocked.h"

#include "common/logging.h"

namespace fusion3d::sim
{

bool
Simulator::allDone() const
{
    for (const Clocked *m : modules_) {
        if (!m->done())
            return false;
    }
    return true;
}

Cycles
Simulator::run(Cycles max_cycles)
{
    const Cycles start = now_;
    while (!allDone()) {
        if (now_ - start >= max_cycles) {
            panic("Simulator::run exceeded %llu cycles without draining",
                  static_cast<unsigned long long>(max_cycles));
        }
        for (Clocked *m : modules_)
            m->tick(now_);
        ++now_;
    }
    return now_ - start;
}

void
Simulator::runFor(Cycles n)
{
    for (Cycles i = 0; i < n; ++i) {
        for (Clocked *m : modules_)
            m->tick(now_);
        ++now_;
    }
}

} // namespace fusion3d::sim
