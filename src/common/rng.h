/**
 * @file
 * PCG32 pseudo-random generator (O'Neill 2014). Small, fast, and fully
 * deterministic across platforms, which the reproduction benches rely on.
 */

#ifndef FUSION3D_COMMON_RNG_H_
#define FUSION3D_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "common/vec.h"

namespace fusion3d
{

/** PCG-XSH-RR 64/32 random number generator. */
class Pcg32
{
  public:
    /** Seed with a stream id so parallel consumers stay uncorrelated. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (stream << 1) | 1u;
        nextUint();
        state_ += seed;
        nextUint();
    }

    /** Next uniformly distributed 32-bit value. */
    std::uint32_t
    nextUint()
    {
        const std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        const std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        const std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint32_t
    nextBounded(std::uint32_t bound)
    {
        // Lemire-style rejection-free mapping is fine here; exact
        // uniformity is not statistically load-bearing for sampling.
        return static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(nextUint()) * bound) >> 32);
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(nextUint() >> 8) * (1.0f / 16777216.0f);
    }

    /** Uniform float in [lo, hi). */
    float
    nextRange(float lo, float hi)
    {
        return lo + (hi - lo) * nextFloat();
    }

    /** Standard normal deviate via Box-Muller. */
    float
    nextGaussian()
    {
        if (have_cached_) {
            have_cached_ = false;
            return cached_;
        }
        float u1 = nextFloat();
        const float u2 = nextFloat();
        if (u1 < 1e-12f)
            u1 = 1e-12f;
        const float r = std::sqrt(-2.0f * std::log(u1));
        const float theta = 6.28318530717958647692f * u2;
        cached_ = r * std::sin(theta);
        have_cached_ = true;
        return r * std::cos(theta);
    }

    /** Uniform point inside the unit cube. */
    Vec3f
    nextVec3()
    {
        return {nextFloat(), nextFloat(), nextFloat()};
    }

    /** Uniform direction on the unit sphere. */
    Vec3f
    nextUnitVector()
    {
        const float z = nextRange(-1.0f, 1.0f);
        const float phi = nextRange(0.0f, 6.28318530717958647692f);
        const float r = std::sqrt(std::max(0.0f, 1.0f - z * z));
        return {r * std::cos(phi), r * std::sin(phi), z};
    }

  private:
    std::uint64_t state_ = 0;
    std::uint64_t inc_ = 0;
    float cached_ = 0.0f;
    bool have_cached_ = false;
};

} // namespace fusion3d

#endif // FUSION3D_COMMON_RNG_H_
