#include "serve/session.h"

#include <utility>

#include "common/logging.h"

namespace fusion3d::serve
{

SessionStore::SessionStore(const SessionStoreConfig &cfg) : cfg_(cfg)
{
    if (cfg_.maxSessions < 1)
        fatal("SessionStore: maxSessions must be >= 1, got %zu",
              cfg_.maxSessions);
}

SessionStore::~SessionStore()
{
    if (registry_)
        registry_->unregisterCollector(registered_name_);
}

std::size_t
SessionStore::frameBytes(const SessionFrame &frame)
{
    std::size_t n = sizeof(Entry) + frame.model.size();
    if (frame.frame) {
        const std::size_t pixels =
            static_cast<std::size_t>(frame.frame->color.pixelCount());
        n += pixels * (sizeof(Vec3f) + sizeof(float));
    }
    n += frame.tileAge.size() * sizeof(std::uint16_t);
    return n;
}

void
SessionStore::put(const std::string &session, SessionFrame frame,
                  Clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t new_bytes = frameBytes(frame);

    auto it = entries_.find(session);
    if (it == entries_.end()) {
        lru_.push_front(session);
        Entry entry;
        entry.frame = std::move(frame);
        entry.bytes = new_bytes;
        entry.lastAccess = now;
        entry.lruPos = lru_.begin();
        entries_.emplace(session, std::move(entry));
    } else {
        bytes_ -= it->second.bytes;
        it->second.frame = std::move(frame);
        it->second.bytes = new_bytes;
        it->second.lastAccess = now;
        lru_.splice(lru_.begin(), lru_, it->second.lruPos);
    }
    bytes_ += new_bytes;
    enforceLimitsLocked(now);
}

std::optional<SessionFrame>
SessionStore::get(const std::string &session, const std::string &model,
                  std::uint64_t epoch, Clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(session);
    if (it == entries_.end()) {
        ++miss_absent_;
        return std::nullopt;
    }

    const double idle =
        std::chrono::duration<double>(now - it->second.lastAccess).count();
    if (idle > cfg_.ttlSeconds) {
        ++miss_expired_;
        eraseLocked(it);
        return std::nullopt;
    }

    const SessionFrame &cached = it->second.frame;
    if (cached.model != model || cached.epoch != epoch) {
        // Stale provenance (model replaced, or a hot-swap bumped the
        // epoch): the frame shows a scene the registry no longer
        // serves. Drop it; the caller full-renders and re-seeds.
        ++miss_stale_;
        eraseLocked(it);
        return std::nullopt;
    }

    ++hits_;
    it->second.lastAccess = now;
    lru_.splice(lru_.begin(), lru_, it->second.lruPos);
    return cached;
}

void
SessionStore::erase(const std::string &session)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(session);
    if (it != entries_.end())
        eraseLocked(it);
}

void
SessionStore::eraseLocked(std::map<std::string, Entry>::iterator it)
{
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.lruPos);
    entries_.erase(it);
}

void
SessionStore::enforceLimitsLocked(Clock::time_point now)
{
    // TTL sweep first: expired entries should not push live ones out.
    for (auto it = entries_.begin(); it != entries_.end();) {
        const double idle =
            std::chrono::duration<double>(now - it->second.lastAccess).count();
        if (idle > cfg_.ttlSeconds) {
            auto doomed = it++;
            ++miss_expired_;
            eraseLocked(doomed);
        } else {
            ++it;
        }
    }
    // LRU eviction to the byte budget and session cap. The newest entry
    // is evicted last — a single frame larger than the whole budget
    // still gets cached for exactly one round trip, then goes.
    while ((bytes_ > cfg_.maxBytes || entries_.size() > cfg_.maxSessions) &&
           !lru_.empty()) {
        auto it = entries_.find(lru_.back());
        if (it == entries_.end())
            fatal("SessionStore: LRU list out of sync with the entry map");
        ++evictions_;
        eraseLocked(it);
    }
}

std::size_t
SessionStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t
SessionStore::bytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
}

std::uint64_t
SessionStore::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
SessionStore::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return miss_absent_ + miss_expired_ + miss_stale_;
}

std::uint64_t
SessionStore::missesAbsent() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return miss_absent_;
}

std::uint64_t
SessionStore::missesExpired() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return miss_expired_;
}

std::uint64_t
SessionStore::missesStale() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return miss_stale_;
}

std::uint64_t
SessionStore::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

void
SessionStore::collect(obs::MetricSink &sink) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    sink.gauge("serve.session.sessions", static_cast<double>(entries_.size()));
    sink.gauge("serve.session.bytes", static_cast<double>(bytes_));
    sink.counter("serve.session.hits", hits_);
    sink.counter("serve.session.misses_absent", miss_absent_);
    sink.counter("serve.session.misses_expired", miss_expired_);
    sink.counter("serve.session.misses_stale", miss_stale_);
    sink.counter("serve.session.evictions", evictions_);
}

void
SessionStore::registerWith(obs::MetricsRegistry &registry,
                           const std::string &name)
{
    if (registry_)
        registry_->unregisterCollector(registered_name_);
    registry_ = &registry;
    registered_name_ = name;
    registry.registerCollector(
        name, [this](obs::MetricSink &sink) { collect(sink); });
}

} // namespace fusion3d::serve
