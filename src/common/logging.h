/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal invariant was violated (a Fusion-3D bug); aborts.
 * fatal()  - the user supplied an impossible configuration; exits cleanly.
 * warn()   - something is suspicious but the run can continue.
 * inform() - plain status output.
 */

#ifndef FUSION3D_COMMON_LOGGING_H_
#define FUSION3D_COMMON_LOGGING_H_

#include <cstdarg>
#include <string>

namespace fusion3d
{

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Abort with a message; call when an internal invariant is broken. */
[[noreturn]] void panic(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Exit(1) with a message; call on invalid user configuration. */
[[noreturn]] void fatal(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace fusion3d

#endif // FUSION3D_COMMON_LOGGING_H_
