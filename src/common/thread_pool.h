/**
 * @file
 * A fixed-size work-sharing thread pool, the repo's first real
 * concurrency primitive. The serving layer (src/serve) uses it to
 * render frames as parallel row-tiles; anything CPU-bound can reuse it.
 *
 * Design points:
 *  - one shared FIFO task queue, no work stealing: contention on the
 *    queue is negligible at tile granularity and FIFO keeps request
 *    ordering predictable;
 *  - *work sharing*: a thread that blocks waiting for other tasks
 *    (parallelFor(), waitHelping()) executes pending queue tasks while
 *    it waits, so nested parallelism cannot deadlock a fixed pool;
 *  - exceptions thrown by tasks propagate: through the future for
 *    submit(), rethrown on the calling thread for parallelFor();
 *  - *trace-context propagation*: the submitter's obs::TraceContext is
 *    captured at enqueue and restored around each task run (including
 *    tasks picked up by an unrelated thread helping via runOne()), so
 *    spans emitted inside pool tasks attribute to the request that
 *    caused the work, not to whichever thread happened to execute it.
 */

#ifndef FUSION3D_COMMON_THREAD_POOL_H_
#define FUSION3D_COMMON_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace fusion3d
{

/** Fixed-size pool of worker threads sharing one task queue. */
class ThreadPool
{
  public:
    /**
     * @param threads Worker-thread count; 0 makes every operation run
     *        inline on the calling thread (useful to switch parallelism
     *        off without changing call sites).
     */
    explicit ThreadPool(int threads);

    /** Joins all workers; pending tasks are still executed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const { return static_cast<int>(workers_.size()); }

    /**
     * Enqueue @p fn for execution and return a future for its result.
     * Safe to call from inside a pool task (the queue is unbounded);
     * waiting on the future from inside a task should go through
     * waitHelping() to stay deadlock-free.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /**
     * Run one pending task on the calling thread, if any.
     * @return true if a task was executed.
     */
    bool runOne();

    /**
     * Block until @p future is ready, executing pending pool tasks on
     * this thread while waiting. This is the deadlock-free way for a
     * pool task to wait on work it submitted itself.
     */
    template <typename R>
    R
    waitHelping(std::future<R> &future)
    {
        while (future.wait_for(std::chrono::seconds(0)) !=
               std::future_status::ready) {
            if (!runOne())
                future.wait_for(std::chrono::microseconds(50));
        }
        return future.get();
    }

    /**
     * Apply @p body to [begin, end) split into chunks of up to
     * @p grain indices, body(chunk_begin, chunk_end). The calling
     * thread participates, so this works (serially) even on a pool
     * with zero threads and nests safely inside pool tasks. The first
     * exception thrown by any chunk is rethrown here once all chunks
     * finished.
     */
    void parallelFor(int begin, int end, const std::function<void(int, int)> &body,
                     int grain = 1);

    /**
     * parallelFor variant whose body also receives the chunk index:
     * body(chunk, chunk_begin, chunk_end), where chunk k always covers
     * [begin + k*grain, begin + (k+1)*grain) regardless of thread count
     * or execution order. Callers bind per-chunk arenas (workspaces,
     * gradient shards) to the index, so parallel work needs no shared
     * mutable state and stays deterministic.
     */
    void parallelForChunks(int begin, int end,
                           const std::function<void(int, int, int)> &body,
                           int grain = 1);

  private:
    /** A queued task plus the trace context captured at enqueue. */
    struct Task
    {
        std::function<void()> fn;
        obs::TraceContext ctx;
    };

    void enqueue(std::function<void()> task);
    void runTask(Task &task);
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<Task> queue_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace fusion3d

#endif // FUSION3D_COMMON_THREAD_POOL_H_
