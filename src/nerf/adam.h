/**
 * @file
 * Adam optimizer over a flat parameter vector. Instant-NGP-style NeRF
 * training (the paper's Stage II/III workload) uses Adam for both the
 * hash tables and the MLPs.
 */

#ifndef FUSION3D_NERF_ADAM_H_
#define FUSION3D_NERF_ADAM_H_

#include <cstddef>
#include <span>
#include <vector>

namespace fusion3d
{
class ThreadPool;
}

namespace fusion3d::nerf
{

/** Adam hyper-parameters. */
struct AdamConfig
{
    float lr = 1e-2f;
    float beta1 = 0.9f;
    float beta2 = 0.99f;
    float epsilon = 1e-10f;
    /** L2 weight decay applied to the gradient (0 disables). */
    float weightDecay = 0.0f;
    /**
     * Skip parameters whose gradient is exactly zero this step, as
     * Instant-NGP does for the sparsely touched hash tables.
     */
    bool skipZeroGrad = false;
};

/** Adam state (first/second moments) for one parameter vector. */
class Adam
{
  public:
    Adam() = default;
    Adam(std::size_t param_count, const AdamConfig &cfg);

    /**
     * Apply one update: params -= lr * mhat / (sqrt(vhat) + eps).
     * @param params Parameter vector, modified in place.
     * @param grads  Gradient of the loss w.r.t. params (same length).
     */
    void step(std::span<float> params, std::span<const float> grads);

    /**
     * step() with the parameter range split across @p pool (inline when
     * null). Every parameter's update reads and writes only its own
     * state, so any partition gives bit-identical results to the serial
     * step at any thread count.
     */
    void step(std::span<float> params, std::span<const float> grads,
              ThreadPool *pool);

    /** Override the learning rate (for schedules). */
    void setLearningRate(float lr) { cfg_.lr = lr; }
    float learningRate() const { return cfg_.lr; }
    std::size_t stepCount() const { return t_; }

  private:
    AdamConfig cfg_;
    std::vector<float> m_;
    std::vector<float> v_;
    std::size_t t_ = 0;
};

} // namespace fusion3d::nerf

#endif // FUSION3D_NERF_ADAM_H_
